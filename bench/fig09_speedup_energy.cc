/**
 * @file
 * Reproduces Figure 9: ANT speedup and relative energy vs SCNN+ on
 * DenseNet-121, ResNet18, VGG16, WRN-16-8 (CIFAR, SWAT-style 90%) and
 * ResNet50 (ImageNet, synthetic top-K 90%).
 *
 * Expected (paper): geometric-mean speedup 3.71x and 4.40x lower
 * energy; per-network speedups vary with the fraction of RCPs avoided
 * (Table 5).
 */

#include <cstdio>

#include "ant/ant_pe.hh"
#include "bench_common.hh"
#include "report/rollup.hh"
#include "scnn/scnn_pe.hh"
#include "sim/energy.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Figure 9: ANT vs SCNN+ at 90% target sparsity",
        "geomean 3.71x speedup, 4.40x lower energy across the five "
        "networks");

    ScnnPe scnn;
    AntPe ant;
    const EnergyModel energy;

    Table table({"Network", "Speedup", "Energy reduction",
                 "ANT RCPs avoided"});
    Rollup rollup;

    for (const auto &network :
         bench::selectNetworks(figure9Networks(), options)) {
        const auto scnn_stats =
            bench::runNetwork(scnn, network, 0.9, options);
        const auto ant_stats =
            bench::runNetwork(ant, network, 0.9, options);
        const auto row =
            compareNetworks(network.name, scnn_stats, ant_stats, energy);
        table.addRow({row.label, Table::times(row.speedup),
                      Table::times(row.energyReduction),
                      Table::percent(row.rcpAvoidedFraction, 1)});
        rollup.add(row);
        bench::reportNetwork("scnn/" + network.name, scnn_stats, scnn,
                             options);
        bench::reportNetwork("ant/" + network.name, ant_stats, ant, options);
    }
    rollup.recordMetrics(bench::report());
    table.addRow({"geomean", Table::times(rollup.speedupGeomean()),
                  Table::times(rollup.energyReductionGeomean()), "-"});
    bench::emitTable(table, options);

    std::printf("paper reference: geomean 3.71x speedup / 4.40x energy; "
                "per-network RCP avoidance 74.9-98.0%%.\n");
    return bench::finish(options);
}
