/**
 * @file
 * Reproduces Figure 14: ablation of the two anticipation conditions --
 * r-condition only (Eq. 9), s-condition only (Eq. 10), and both --
 * on ResNet18 SWAT 90%.
 *
 * Expected (paper): each condition alone already yields speedup and
 * energy savings over SCNN+; combining both adds ~1.06x over r-only
 * (the individually eliminated RCP sets overlap heavily).
 */

#include <cstdio>

#include "ant/ant_pe.hh"
#include "bench_common.hh"
#include "scnn/scnn_pe.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Figure 14: r/s condition ablation (ResNet18 SWAT 90%)",
        "either condition alone wins over SCNN+; both together add "
        "~1.06x over r-only");

    const auto layers = resnet18Cifar();
    const auto profile = SparsityProfile::swat(0.9);
    const EnergyModel energy;

    ScnnPe scnn;
    const auto scnn_stats =
        bench::runConv(scnn, layers, profile, options);

    struct Variant
    {
        const char *name;
        bool use_r;
        bool use_s;
    };
    const Variant variants[] = {{"r condition only", true, false},
                                {"s condition only", false, true},
                                {"both conditions", true, true}};

    Table table({"Variant", "Speedup vs SCNN+", "Energy reduction",
                 "RCPs avoided"});
    double r_only_speedup = 0.0;
    double both_speedup = 0.0;
    for (const auto &variant : variants) {
        AntPeConfig acfg;
        acfg.useRCondition = variant.use_r;
        acfg.useSCondition = variant.use_s;
        AntPe ant(acfg);
        const auto ant_stats =
            bench::runConv(ant, layers, profile, options);
        const double speedup = speedupOf(scnn_stats, ant_stats);
        if (variant.use_r && !variant.use_s)
            r_only_speedup = speedup;
        if (variant.use_r && variant.use_s)
            both_speedup = speedup;
        table.addRow(
            {variant.name, Table::times(speedup),
             Table::times(energyRatioOf(scnn_stats, ant_stats, energy)),
             Table::percent(ant_stats.rcpAvoidedFraction(), 1)});
    }
    bench::emitTable(table, options);
    std::printf("both-vs-r-only improvement: %.2fx (paper: ~1.06x)\n",
                both_speedup / r_only_speedup);
    return bench::finish(options);
}
