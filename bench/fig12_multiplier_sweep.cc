/**
 * @file
 * Reproduces Figure 12: effect of the multiplier-array size (n x n)
 * on ANT's speedup and energy vs SCNN+ with the same array size.
 * Workload: ResNet18 with SWAT-style 90% sparsity.
 *
 * Expected (paper): ANT outperforms SCNN+ at 4x4, 6x6, and 8x8 -- the
 * benefit persists across a wide range of multiplier configurations
 * (though relative gains shrink as bigger arrays get harder to fill).
 */

#include <cstdio>
#include <sstream>

#include "ant/ant_pe.hh"
#include "bench_common.hh"
#include "scnn/scnn_pe.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Figure 12: multiplier-array size sweep (ResNet18 SWAT 90%)",
        "ANT beats SCNN+ at 4x4, 6x6 and 8x8 multiplier arrays");

    const auto layers = resnet18Cifar();
    const auto profile = SparsityProfile::swat(0.9);
    const EnergyModel energy;

    Table table({"Multiplier array", "Speedup", "Energy reduction"});
    for (std::uint32_t n : {4u, 6u, 8u}) {
        ScnnPeConfig scfg;
        scfg.n = n;
        ScnnPe scnn(scfg);
        AntPeConfig acfg;
        acfg.n = n;
        acfg.k = 4 * n; // keep the FNIR window proportionally sized
        AntPe ant(acfg);
        const auto scnn_stats =
            bench::runConv(scnn, layers, profile, options);
        const auto ant_stats =
            bench::runConv(ant, layers, profile, options);
        std::ostringstream label;
        label << n << "x" << n;
        table.addRow(
            {label.str(), Table::times(speedupOf(scnn_stats, ant_stats)),
             Table::times(energyRatioOf(scnn_stats, ant_stats, energy))});
    }
    bench::emitTable(table, options);
    return bench::finish(options);
}
