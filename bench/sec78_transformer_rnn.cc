/**
 * @file
 * Reproduces Sec. 7.8: ANT on the matmul implementation of a text
 * translation transformer and an IMDB text-classification RNN.
 *
 * Expected (paper): ANT anticipates and eliminates >= 99% of the RCPs
 * at 0%, 50%, and 90% sparsity.
 */

#include <cstdio>
#include <sstream>

#include "ant/ant_pe.hh"
#include "bench_common.hh"
#include "scnn/scnn_pe.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Sec. 7.8: transformer/RNN matmuls (ANT matmul mode)",
        ">= 99% of RCPs anticipated and eliminated at 0%, 50% and 90% "
        "sparsity");

    AntPe ant;
    ScnnPe scnn;
    const EnergyModel energy;

    struct Workload
    {
        const char *name;
        std::vector<MatmulLayer> layers;
    };
    const Workload workloads[] = {
        {"transformer", transformerLayers()},
        {"RNN (IMDB)", rnnLayers()},
    };

    Table table({"Workload", "Sparsity", "RCPs avoided",
                 "Speedup vs SCNN+", "Energy reduction"});
    for (const auto &workload : workloads) {
        for (double sparsity : {0.0, 0.5, 0.9}) {
            const auto ant_stats = bench::runMatmul(
                ant, workload.layers, sparsity, SparsifyMethod::TopK,
                options);
            const auto scnn_stats = bench::runMatmul(
                scnn, workload.layers, sparsity, SparsifyMethod::TopK,
                options);
            std::ostringstream sp;
            sp << static_cast<int>(sparsity * 100) << "%";
            table.addRow(
                {workload.name, sp.str(),
                 Table::percent(ant_stats.rcpAvoidedFraction(), 2),
                 Table::times(speedupOf(scnn_stats, ant_stats)),
                 Table::times(energyRatioOf(scnn_stats, ant_stats,
                                            energy))});
            // Record both runs with their PE so the matmul suites show
            // up in --json networks and the --csv-path
            // stall-attribution tables like every conv suite does.
            const std::string run = std::string(workload.name) + "@" +
                sp.str();
            bench::reportNetwork("ant/" + run, ant_stats, ant, options);
            bench::reportNetwork("scnn/" + run, scnn_stats, scnn,
                                 options);
        }
    }
    bench::emitTable(table, options);
    return bench::finish(options);
}
