/**
 * @file
 * Reproduces Figure 1: partial-product breakdown of the three training
 * phases on ImageNet/ResNet18 convolutions mapped to an SCNN-like
 * outer-product accelerator.
 *
 * Expected (paper): in W*A and W*G_A, useful products form a large
 * fraction of the non-zero products; in G_A*A under sparse training,
 * RCPs consume up to 96% of the non-zero computation -- useful work is
 * "vanishingly small".
 */

#include <cstdio>

#include "bench_common.hh"
#include "conv/census.hh"
#include "conv/outer_product.hh"
#include "workload/networks.hh"
#include "workload/tracegen.hh"

using namespace antsim;

namespace {

/** Aggregate the product census of one phase over sampled pairs. */
ProductCensus
phaseCensus(const std::vector<ConvLayer> &layers, TrainingPhase phase,
            const SparsityProfile &profile, const RunConfig &config)
{
    ProductCensus total;
    for (std::size_t li = 0; li < layers.size(); ++li) {
        const ConvLayer &layer = layers[li];
        const std::uint64_t pairs_total = layer.planePairs();
        const std::uint64_t samples =
            std::min<std::uint64_t>(pairs_total, config.sampleCap);
        ProductCensus layer_census;
        for (std::uint64_t s = 0; s < samples; ++s) {
            const std::uint64_t pair_index = s * pairs_total / samples;
            Rng rng(mixSeed(config.seed, li,
                            static_cast<std::uint64_t>(phase), pair_index));
            const PlanePair pair =
                makeConvPhasePair(layer, phase, profile, rng);
            const CensusContext context(pair.spec, pair.image);
            layer_census += context.countProducts(pair.kernel);
        }
        // Scale the sampled census to the full layer.
        const double scale = static_cast<double>(pairs_total) /
            static_cast<double>(samples);
        total.denseProducts += static_cast<std::uint64_t>(
            static_cast<double>(layer_census.denseProducts) * scale);
        total.nonzeroProducts += static_cast<std::uint64_t>(
            static_cast<double>(layer_census.nonzeroProducts) * scale);
        total.validProducts += static_cast<std::uint64_t>(
            static_cast<double>(layer_census.validProducts) * scale);
        total.rcpProducts += static_cast<std::uint64_t>(
            static_cast<double>(layer_census.rcpProducts) * scale);
    }
    return total;
}

void
addRow(Table &table, const char *scenario, const char *phase,
       const ProductCensus &census)
{
    const double dense = static_cast<double>(census.denseProducts);
    const double zero_products =
        dense - static_cast<double>(census.nonzeroProducts);
    table.addRow(
        {scenario, phase, Table::percent(zero_products / dense),
         Table::percent(static_cast<double>(census.rcpProducts) / dense),
         Table::percent(static_cast<double>(census.validProducts) / dense),
         Table::percent(census.rcpFraction())});
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::parseOptions(argc, argv);
    // The census is cheap but ImageNet planes are big; a modest sample
    // cap keeps this fast while covering all layers.
    options.run.sampleCap = std::min(options.run.sampleCap, 8u);
    bench::printHeader(
        "Figure 1: partial products on an SCNN-like accelerator "
        "(ImageNet/ResNet18)",
        "RCPs are a large share of non-zero products, and sparse "
        "training pushes the G_A*A phase to ~90%+ RCPs (useful work "
        "vanishingly small)");

    const auto layers = resnet18Imagenet();
    // (a,b) natural sparsity: dense-ish weights, ReLU-sparse A / G_A.
    const SparsityProfile natural{0.1, 0.5, 0.5,
                                  SparsifyMethod::Bernoulli};
    // (c) sparse training at 90% targets.
    const SparsityProfile sparse_training{0.9, 0.9, 0.9,
                                          SparsifyMethod::Bernoulli};

    Table table({"Scenario", "Phase", "zero-operand %", "RCP %",
                 "useful %", "RCP share of non-zero"});
    for (const auto phase :
         {TrainingPhase::Forward, TrainingPhase::Backward,
          TrainingPhase::Update}) {
        const auto census =
            phaseCensus(layers, phase, natural, options.run);
        addRow(table, "natural", phaseName(phase), census);
    }
    for (const auto phase :
         {TrainingPhase::Forward, TrainingPhase::Backward,
          TrainingPhase::Update}) {
        const auto census =
            phaseCensus(layers, phase, sparse_training, options.run);
        addRow(table, "sparse-90%", phaseName(phase), census);
    }
    bench::emitTable(table, options);

    std::printf("takeaway: the G_A*A rows' 'RCP share of non-zero' is the "
                "paper's headline (up to 96%%).\n");
    return bench::finish(options);
}
