/**
 * @file
 * Reproduces Table 2: outer-product efficiency of typical training
 * convolution shapes (ImageNet/ResNet50 and CIFAR/ResNet18).
 *
 * Expected (paper): 96.52%, 0.07%, 23.71%, 0.09%, 100.00%, 0.03%,
 * 76.58%, 3.53% (the last pair prints 76.56% / 3.52% under exact
 * arithmetic -- 196/256 and 9/256).
 */

#include <cstdio>
#include <sstream>

#include "bench_common.hh"
#include "conv/rcp_model.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Table 2: outer-product efficiency of training conv phases",
        "update-phase (G_A*A) efficiency collapses to <0.1% while "
        "forward/backward stay 24-100%");

    Table table({"Training Phase", "RxS", "HxW", "Hout x Wout",
                 "Outer-product Efficiency"});
    for (const auto &row : table2Rows()) {
        const ProblemSpec &s = row.spec;
        std::ostringstream k, i, o;
        k << s.kernelH() << "x" << s.kernelW();
        i << s.imageH() << "x" << s.imageW();
        o << s.outH() << "x" << s.outW();
        table.addRow({row.phase, k.str(), i.str(), o.str(),
                      Table::percent(row.efficiency)});
    }
    bench::emitTable(table, options);
    return bench::finish(options);
}
