/**
 * @file
 * Reproduces Sec. 7.7: relative performance of DaDianNao (dense IP),
 * TensorDash (one-sided sparse IP), SCNN+, and ANT on the 90%-sparse
 * networks.
 *
 * Expected (paper): TensorDash ~2.25x over dense (vs 1.95x reported by
 * its authors); ANT ~8.9x over TensorDash -- the value of two-sided
 * dynamic sparsity.
 */

#include <cstdio>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "bench_common.hh"
#include "scnn/scnn_pe.hh"
#include "util/stats.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Sec. 7.7: inner-product baselines vs outer-product (90% "
        "sparsity)",
        "TensorDash ~2.25x over dense; ANT ~8.9x over TensorDash");

    DenseInnerProductPe dense;
    TensorDashPe tensordash;
    ScnnPe scnn;
    AntPe ant;

    Table table({"Network", "TensorDash vs dense", "SCNN+ vs dense",
                 "ANT vs dense", "ANT vs TensorDash"});
    std::vector<double> td_over_dense;
    std::vector<double> ant_over_td;
    for (const auto &network :
         bench::selectNetworks(figure9Networks(), options)) {
        const auto dense_stats =
            bench::runNetwork(dense, network, 0.9, options);
        const auto td_stats =
            bench::runNetwork(tensordash, network, 0.9, options);
        const auto scnn_stats =
            bench::runNetwork(scnn, network, 0.9, options);
        const auto ant_stats =
            bench::runNetwork(ant, network, 0.9, options);

        const double td_speedup = speedupOf(dense_stats, td_stats);
        const double ant_td = speedupOf(td_stats, ant_stats);
        td_over_dense.push_back(td_speedup);
        ant_over_td.push_back(ant_td);
        table.addRow({network.name, Table::times(td_speedup),
                      Table::times(speedupOf(dense_stats, scnn_stats)),
                      Table::times(speedupOf(dense_stats, ant_stats)),
                      Table::times(ant_td)});
    }
    table.addRow({"geomean", Table::times(geomean(td_over_dense)), "-",
                  "-", Table::times(geomean(ant_over_td))});
    bench::emitTable(table, options);
    return bench::finish(options);
}
