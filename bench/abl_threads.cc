/**
 * @file
 * Extension bench: parallel-engine scaling (speedup vs threads).
 *
 * Runs the ANT and SCNN+ ResNet18 sweeps (SWAT 90%, all phases) at
 * thread counts 1, 2, 4, ... up to --threads (0 = every hardware
 * thread) and reports the wall-clock speedup over the 1-thread run.
 * Because the engine is deterministic (clone-per-worker + ordered
 * reduction, DESIGN.md), the bench also asserts that every thread
 * count reproduces the 1-thread cycle and multiply totals bit for bit
 * -- a live end-to-end check of the guarantee the test tier pins.
 *
 * antsim-lint: allow-file(no-wall-clock-in-sim) -- this bench measures
 * host wall-clock scaling of the thread pool by design; no simulated
 * statistic derives from the timings (the bit-identity assert proves
 * it).
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "ant/ant_pe.hh"
#include "bench_common.hh"
#include "scnn/scnn_pe.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

using namespace antsim;

namespace {

/** Thread counts to sweep: powers of two up to @p limit, plus limit. */
std::vector<std::uint32_t>
sweepPoints(std::uint32_t limit)
{
    std::vector<std::uint32_t> points;
    for (std::uint32_t t = 1; t <= limit; t *= 2)
        points.push_back(t);
    if (points.back() != limit)
        points.push_back(limit);
    return points;
}

/**
 * Wall-clock seconds of one full run at @p threads workers. Always
 * the cycle-level engine, never the --estimate fast path: the whole
 * point of this bench is the engine's thread-scaling curve.
 */
double
timedRun(PeModel &pe, const RunConfig &base, std::uint32_t threads,
         NetworkStats &stats_out)
{
    RunConfig config = base;
    config.numThreads = threads;
    const auto start = std::chrono::steady_clock::now();
    stats_out = runConvNetwork(pe, resnet18Cifar(),
                               SparsityProfile::swat(0.9), config);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Extension: parallel-engine scaling (ResNet18 SWAT 90%)",
        "deterministic clone-per-worker engine: identical counters at "
        "every thread count, wall-clock scaling with cores");

    const std::uint32_t limit =
        ThreadPool::resolveThreadCount(options.run.numThreads);
    std::printf("sweeping 1..%u threads (%u hardware threads)\n\n", limit,
                ThreadPool::resolveThreadCount(0));

    Table table({"Model", "Threads", "Wall (s)", "Speedup", "Efficiency",
                 "Cycles"});
    ScnnPe scnn;
    AntPe ant;
    const std::pair<const char *, PeModel *> models[] = {{"SCNN+", &scnn},
                                                         {"ANT", &ant}};
    for (const auto &[name, pe] : models) {
        double serial_wall = 0.0;
        NetworkStats serial_stats;
        for (const std::uint32_t threads : sweepPoints(limit)) {
            NetworkStats stats;
            const double wall = timedRun(*pe, options.run, threads, stats);
            if (threads == 1) {
                serial_wall = wall;
                serial_stats = stats;
            } else {
                // The determinism guarantee, checked live: the
                // parallel run must reproduce the serial totals
                // bit for bit.
                for (std::size_t c = 0; c < kNumCounters; ++c) {
                    const auto counter = static_cast<Counter>(c);
                    ANT_ASSERT(stats.total.get(counter) ==
                                   serial_stats.total.get(counter),
                               name, " at ", threads,
                               " threads diverged on ",
                               counterName(counter));
                }
            }
            const double speedup = serial_wall / wall;
            char wall_str[32];
            std::snprintf(wall_str, sizeof(wall_str), "%.3f", wall);
            table.addRow({name, std::to_string(threads), wall_str,
                          Table::times(speedup),
                          Table::percent(speedup / threads, 1),
                          std::to_string(
                              stats.total.get(Counter::Cycles))});
            const std::string prefix =
                std::string(name) + ".t" + std::to_string(threads);
            bench::reportMetric(prefix + ".wall_seconds", wall);
            bench::reportMetric(prefix + ".speedup", speedup);
        }
        bench::reportNetwork(std::string(name) + "/resnet18",
                             serial_stats, *pe, options);
    }
    bench::emitTable(table, options);

    std::printf("note: counters are bit-identical at every point by "
                "construction; wall-clock speedup tracks physical "
                "cores.\n");
    return bench::finish(options);
}
