#include "bench_common.hh"

#include <cstdio>
#include <memory>

#include "util/audit.hh"

namespace antsim {
namespace bench {

namespace {

std::unique_ptr<Cli> g_cli;

} // namespace

BenchOptions
parseOptions(int argc, const char *const *argv,
             const std::vector<std::string> &extra_flags, Cli **cli_out)
{
    std::vector<std::string> known = {"samples", "seed", "pes", "csv",
                                      "chunk", "audit", "threads"};
    known.insert(known.end(), extra_flags.begin(), extra_flags.end());
    g_cli = std::make_unique<Cli>(argc, argv, known);

    BenchOptions options;
    options.run.sampleCap =
        static_cast<std::uint32_t>(g_cli->getInt("samples", 16));
    options.run.seed = static_cast<std::uint64_t>(g_cli->getInt("seed", 42));
    options.run.numPes =
        static_cast<std::uint32_t>(g_cli->getInt("pes", 64));
    options.run.chunkCapacity =
        static_cast<std::uint32_t>(g_cli->getInt("chunk", 4096));
    // Benches default to every hardware thread: the parallel engine is
    // deterministic, so the tables cannot depend on the thread count.
    options.run.numThreads =
        static_cast<std::uint32_t>(g_cli->getInt("threads", 0));
    options.csv = g_cli->getBool("csv");
    if (g_cli->getBool("audit"))
        audit::setEnabled(true);
    if (cli_out != nullptr)
        *cli_out = g_cli.get();
    return options;
}

void
printHeader(const std::string &experiment, const std::string &paper_claim)
{
    std::printf("=== %s ===\n", experiment.c_str());
    std::printf("paper: %s\n\n", paper_claim.c_str());
}

void
emitTable(const Table &table, const BenchOptions &options)
{
    table.print();
    if (options.csv) {
        std::printf("\n[csv]\n%s", table.toCsv().c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
}

NetworkStats
runNetwork(PeModel &pe, const NamedNetwork &network, double target_sparsity,
           const RunConfig &config)
{
    const SparsityProfile profile = network.syntheticTopK
        ? SparsityProfile::topK(target_sparsity)
        : SparsityProfile::swat(target_sparsity);
    return runConvNetwork(pe, network.layers, profile, config);
}

} // namespace bench
} // namespace antsim
