#include "bench_common.hh"

#include <cstdio>
#include <limits>
#include <memory>
#include <sstream>

#include "estimate/estimate.hh"
#include "obs/host_trace.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/energy.hh"
#include "sim/pe_model.hh"
#include "util/audit.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "workload/trace_cache.hh"

namespace antsim {
namespace bench {

namespace {

std::unique_ptr<Cli> g_cli;
RunReport g_report;
/** Experiment id of the last printHeader, names recorded tables. */
std::string g_experiment = "run";
std::size_t g_tables_emitted = 0;

std::string
basenameOf(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/** Read a flag that must be a non-negative integer fitting uint32. */
std::uint32_t
getCount(const Cli &cli, const std::string &name, std::uint32_t fallback)
{
    const std::int64_t v = cli.getInt(name, fallback);
    if (v < 0)
        ANT_FATAL("flag --", name, " must be non-negative, got ", v);
    if (v > std::numeric_limits<std::uint32_t>::max())
        ANT_FATAL("flag --", name, " value ", v, " is too large");
    return static_cast<std::uint32_t>(v);
}

} // namespace

BenchOptions
parseOptions(int argc, const char *const *argv,
             const std::vector<std::string> &extra_flags, Cli **cli_out)
{
    std::vector<std::string> known = {
        "samples",   "seed",        "pes",         "csv",
        "chunk",     "audit",       "threads",     "json",
        "networks",  "trace-cache", "trace-out",   "log-level",
        "simd",      "estimate",    "metrics-out", "host-trace-out"};
    known.insert(known.end(), extra_flags.begin(), extra_flags.end());
    // Environment first, flags after: --log-level wins over
    // ANTSIM_LOG_LEVEL, --trace-out wins over ANTSIM_TRACE.
    initLogLevelFromEnv();
    g_cli = std::make_unique<Cli>(argc, argv, known);
    if (g_cli->has("log-level")) {
        const std::string level = g_cli->get("log-level");
        if (level == "true")
            ANT_FATAL("flag --log-level expects error, warn, info, or debug");
        setLogLevel(parseLogLevel(level));
    }

    BenchOptions options;
    options.run.sampleCap = getCount(*g_cli, "samples", 16);
    const std::int64_t seed = g_cli->getInt("seed", 42);
    if (seed < 0)
        ANT_FATAL("flag --seed must be non-negative, got ", seed);
    options.run.seed = static_cast<std::uint64_t>(seed);
    options.run.numPes = getCount(*g_cli, "pes", 64);
    options.run.chunkCapacity = getCount(*g_cli, "chunk", 4096);
    // Benches default to every hardware thread: the parallel engine is
    // deterministic, so the tables cannot depend on the thread count.
    options.run.numThreads = getCount(*g_cli, "threads", 0);
    options.run.validate();

    // Bare --csv keeps the historical print-to-stdout behaviour; a
    // value is the output path. ("true" cannot be a path: flag values
    // never get that spelling from a real file name.)
    if (g_cli->has("csv")) {
        const std::string value = g_cli->get("csv");
        if (value == "true")
            options.csv = true;
        else
            options.csvPath = value;
    }
    if (g_cli->has("json")) {
        options.jsonPath = g_cli->get("json");
        if (options.jsonPath == "true")
            ANT_FATAL("flag --json expects an output path");
    }
    options.networksFilter = g_cli->get("networks");
    if (g_cli->has("trace-out")) {
        options.traceOutPath = g_cli->get("trace-out");
        if (options.traceOutPath == "true")
            ANT_FATAL("flag --trace-out expects an output path");
    } else if (const char *env = std::getenv("ANTSIM_TRACE");
               env != nullptr && env[0] != '\0') {
        options.traceOutPath = env;
    }
    if (!options.traceOutPath.empty())
        obs::setEnabled(true);
    // --metrics-out wins over ANTSIM_METRICS, --host-trace-out over
    // ANTSIM_HOST_TRACE (same precedence as --trace-out/ANTSIM_TRACE).
    // A non-empty path switches the collector on for the whole run and
    // attaches the main thread; pool workers attach themselves.
    if (g_cli->has("metrics-out")) {
        options.metricsOutPath = g_cli->get("metrics-out");
        if (options.metricsOutPath == "true")
            ANT_FATAL("flag --metrics-out expects an output path");
    } else if (const char *env = std::getenv("ANTSIM_METRICS");
               env != nullptr && env[0] != '\0') {
        options.metricsOutPath = env;
    }
    if (g_cli->has("host-trace-out")) {
        options.hostTraceOutPath = g_cli->get("host-trace-out");
        if (options.hostTraceOutPath == "true")
            ANT_FATAL("flag --host-trace-out expects an output path");
    } else if (const char *env = std::getenv("ANTSIM_HOST_TRACE");
               env != nullptr && env[0] != '\0') {
        options.hostTraceOutPath = env;
    }
    if (!options.metricsOutPath.empty()) {
        obs::metrics::setEnabled(true);
        obs::metrics::threadAttach();
    }
    if (!options.hostTraceOutPath.empty()) {
        obs::host::setEnabled(true);
        obs::host::threadAttach("main");
    }
    if (g_cli->getBool("audit"))
        audit::setEnabled(true);
    // --simd wins over the ANTSIM_SIMD environment setting (resolved
    // at startup). The mode never influences results -- AVX2 and
    // scalar kernels are bit-identical (simd_equivalence_test) -- only
    // wall time, so it is safe to flip per run.
    if (g_cli->has("simd")) {
        const std::string text = g_cli->get("simd");
        simd::Mode mode = simd::Mode::Auto;
        if (text == "true" || !simd::parseMode(text, mode))
            ANT_FATAL("flag --simd expects auto, scalar, or avx2; got '",
                      text, "'");
        simd::setMode(mode);
    }
    // --estimate wins over ANTSIM_ESTIMATE (same precedence as every
    // other env-backed flag). Any non-empty env value enables it.
    if (g_cli->has("estimate")) {
        options.estimate = g_cli->getBool("estimate");
    } else if (const char *env = std::getenv("ANTSIM_ESTIMATE");
               env != nullptr && env[0] != '\0') {
        options.estimate = true;
    }
    // --trace-cache=false turns the plane cache off (A/B timing runs);
    // the default is the ANTSIM_TRACE_CACHE environment setting.
    trace_cache::setEnabled(
        g_cli->getBool("trace-cache", trace_cache::enabled()));
    if (cli_out != nullptr)
        *cli_out = g_cli.get();

    RunMetadata metadata;
    metadata.binary = argc > 0 ? basenameOf(argv[0]) : "unknown";
    metadata.seed = options.run.seed;
    metadata.threads = options.run.numThreads;
    // The runner silently clamps to hardware concurrency; record what
    // a run will actually use so --threads 64 reports from an 8-way
    // machine are distinguishable from genuine 64-way runs.
    metadata.threadsEffective =
        effectiveWorkerCount(options.run.numThreads);
    metadata.pes = options.run.numPes;
    metadata.samples = options.run.sampleCap;
    metadata.chunk = options.run.chunkCapacity;
    metadata.audit = audit::enabled();
    metadata.energyTableVersion = kEnergyTableVersion;
    metadata.mode = options.estimate ? "estimated" : "simulated";
    g_report.setMetadata(std::move(metadata));
    return options;
}

void
printHeader(const std::string &experiment, const std::string &paper_claim)
{
    std::printf("=== %s ===\n", experiment.c_str());
    std::printf("paper: %s\n\n", paper_claim.c_str());
    g_experiment = experiment;
}

void
emitTable(const Table &table, const BenchOptions &options)
{
    table.print();
    if (options.csv) {
        std::printf("\n[csv]\n%s", table.toCsv().c_str());
    }
    std::printf("\n");
    std::fflush(stdout);

    ++g_tables_emitted;
    std::string name = g_experiment;
    if (g_tables_emitted > 1)
        name += " #" + std::to_string(g_tables_emitted);
    g_report.addTable(name, table);
}

NetworkStats
runNetwork(PeModel &pe, const NamedNetwork &network, double target_sparsity,
           const RunConfig &config)
{
    const SparsityProfile profile = network.syntheticTopK
        ? SparsityProfile::topK(target_sparsity)
        : SparsityProfile::swat(target_sparsity);
    // Label the trace run and heartbeat lines after the model and
    // network; the label never influences simulation results.
    RunConfig labeled = config;
    labeled.runLabel = pe.name() + "/" + network.name;
    return runConvNetwork(pe, network.layers, profile, labeled);
}

namespace {

/** Describe @p pe for estimation; fatal when no analytical model. */
estimate::PeDescriptor
describeOrDie(const PeModel &pe)
{
    const std::optional<estimate::PeDescriptor> desc =
        estimate::describePe(pe);
    if (!desc)
        ANT_FATAL("--estimate: no analytical model for PE '", pe.name(),
                  "'; run without --estimate");
    return *desc;
}

} // namespace

NetworkStats
runNetwork(PeModel &pe, const NamedNetwork &network, double target_sparsity,
           const BenchOptions &options)
{
    if (!options.estimate)
        return runNetwork(pe, network, target_sparsity, options.run);
    const SparsityProfile profile = network.syntheticTopK
        ? SparsityProfile::topK(target_sparsity)
        : SparsityProfile::swat(target_sparsity);
    return estimate::estimateConvNetwork(describeOrDie(pe), network.layers,
                                         profile, options.run);
}

NetworkStats
runConv(PeModel &pe, const std::vector<ConvLayer> &layers,
        const SparsityProfile &profile, const BenchOptions &options)
{
    if (!options.estimate) {
        RunConfig labeled = options.run;
        labeled.runLabel = pe.name();
        return runConvNetwork(pe, layers, profile, labeled);
    }
    return estimate::estimateConvNetwork(describeOrDie(pe), layers, profile,
                                         options.run);
}

NetworkStats
runMatmul(PeModel &pe, const std::vector<MatmulLayer> &layers,
          double sparsity, SparsifyMethod method, const BenchOptions &options)
{
    if (!options.estimate)
        return runMatmulNetwork(pe, layers, sparsity, method, options.run);
    return estimate::estimateMatmulNetwork(describeOrDie(pe), layers,
                                           sparsity, method, options.run);
}

RunReport &
report()
{
    return g_report;
}

void
markEstimated()
{
    RunMetadata metadata = g_report.metadata();
    metadata.mode = "estimated";
    g_report.setMetadata(std::move(metadata));
}

void
reportMetric(const std::string &name, double value)
{
    g_report.addMetric(name, value);
}

void
reportMetric(const std::string &name, std::uint64_t value)
{
    g_report.addMetric(name, value);
}

void
reportNetwork(const std::string &name, const NetworkStats &stats,
              const BenchOptions &options)
{
    g_report.addNetwork(name, stats, options.run.numPes);
}

void
reportNetwork(const std::string &name, const NetworkStats &stats,
              const PeModel &pe, const BenchOptions &options)
{
    g_report.addNetwork(name, stats, options.run.numPes);
    g_report.addStallAttribution(name, stats, pe.name(),
                                 pe.multiplierCount());
}

std::vector<NamedNetwork>
selectNetworks(std::vector<NamedNetwork> all, const BenchOptions &options)
{
    if (options.networksFilter.empty())
        return all;

    auto available = [&all] {
        std::string names;
        for (const NamedNetwork &network : all) {
            if (!names.empty())
                names += ", ";
            names += network.name;
        }
        return names;
    };

    std::vector<NamedNetwork> selected;
    std::istringstream filter(options.networksFilter);
    std::string wanted;
    while (std::getline(filter, wanted, ',')) {
        if (wanted.empty())
            continue;
        bool found = false;
        for (const NamedNetwork &network : all) {
            if (network.name == wanted) {
                selected.push_back(network);
                found = true;
                break;
            }
        }
        if (!found)
            ANT_FATAL("--networks names unknown network '", wanted,
                      "'; available: ", available());
    }
    // Zero selected networks would otherwise die much later as a
    // geomean/mean assertion over an empty measurement set.
    if (selected.empty())
        ANT_FATAL("--networks '", options.networksFilter,
                  "' selects no networks; available: ", available());
    return selected;
}

int
finish(const BenchOptions &options)
{
    // Audit state can change after parseOptions (ANTSIM_AUDIT builds,
    // test harnesses); re-snapshot it so the report tells the truth.
    RunMetadata metadata = g_report.metadata();
    metadata.audit = audit::enabled();
    g_report.setMetadata(std::move(metadata));

    if (obs::enabled())
        g_report.setHistograms(obs::globalSink().mergedHistograms());
    if (!options.traceOutPath.empty())
        obs::globalSink().writeChromeJson(options.traceOutPath,
                                          options.run.numPes);
    // Host metrics ride the report only when collection was on, so
    // metrics-off report bytes stay identical (obs_overhead_test).
    if (obs::metrics::enabled())
        g_report.setHostMetrics(obs::metrics::snapshot());
    if (!options.metricsOutPath.empty()) {
        obs::metrics::writePrometheus(options.metricsOutPath);
        std::printf("[metrics] wrote %s\n", options.metricsOutPath.c_str());
    }
    if (!options.hostTraceOutPath.empty()) {
        obs::host::writeChromeJson(options.hostTraceOutPath);
        std::printf("[host-trace] wrote %s\n",
                    options.hostTraceOutPath.c_str());
    }
    if (!options.jsonPath.empty()) {
        g_report.writeJson(options.jsonPath);
        std::printf("[report] wrote %s\n", options.jsonPath.c_str());
    }
    if (!options.csvPath.empty()) {
        g_report.writeCsv(options.csvPath);
        std::printf("[report] wrote %s\n", options.csvPath.c_str());
    }
    std::fflush(stdout);
    return 0;
}

} // namespace bench
} // namespace antsim
