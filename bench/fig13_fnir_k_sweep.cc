/**
 * @file
 * Reproduces Figure 13: effect of the FNIR input-window width k on
 * ANT's speedup and energy vs SCNN+ (4x4 multiplier array, ResNet18
 * SWAT 90%).
 *
 * Expected (paper): ANT outperforms SCNN+ for k >= 8; at k = 4 the
 * FNIR has no excess scan capability over the 4x4 multiplier and
 * becomes the throughput bottleneck.
 */

#include <cstdio>

#include "ant/ant_pe.hh"
#include "bench_common.hh"
#include "scnn/scnn_pe.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Figure 13: FNIR window width (k) sweep (ResNet18 SWAT 90%)",
        "speedup saturates for k >= 8; k = 4 makes the FNIR the "
        "bottleneck");

    const auto layers = resnet18Cifar();
    const auto profile = SparsityProfile::swat(0.9);
    const EnergyModel energy;

    ScnnPe scnn;
    const auto scnn_stats =
        bench::runConv(scnn, layers, profile, options);

    Table table({"FNIR inputs (k)", "Speedup vs SCNN+",
                 "Energy reduction"});
    for (std::uint32_t k : {4u, 8u, 16u, 32u}) {
        AntPeConfig acfg;
        acfg.k = k;
        AntPe ant(acfg);
        const auto ant_stats =
            bench::runConv(ant, layers, profile, options);
        table.addRow(
            {std::to_string(k),
             Table::times(speedupOf(scnn_stats, ant_stats)),
             Table::times(energyRatioOf(scnn_stats, ant_stats, energy))});
    }
    bench::emitTable(table, options);
    return bench::finish(options);
}
