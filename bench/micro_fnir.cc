/**
 * @file
 * Google-benchmark microbenchmarks of the FNIR block and the ANT PE
 * inner loop -- host-side throughput of the simulator itself (useful
 * when scaling simulations up, not a paper figure).
 */

#include <benchmark/benchmark.h>

#include "ant/ant_pe.hh"
#include "ant/fnir.hh"
#include "scnn/scnn_pe.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

void
BM_FnirEvaluate(benchmark::State &state)
{
    const auto n = static_cast<std::uint32_t>(state.range(0));
    const auto k = static_cast<std::uint32_t>(state.range(1));
    const Fnir fnir(n, k);
    Rng rng(1);
    std::vector<std::int64_t> window(k);
    for (auto &v : window)
        v = rng.range(0, 31);
    CounterSet counters;
    for (auto _ : state) {
        auto result = fnir.evaluate(window, 8, 23, counters);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_FnirEvaluate)
    ->Args({4, 16})
    ->Args({4, 32})
    ->Args({8, 32});

void
BM_AntPePair(benchmark::State &state)
{
    const auto sparsity = static_cast<double>(state.range(0)) / 100.0;
    Rng rng(7);
    const auto kernel =
        CsrMatrix::fromDense(bernoulliPlane(14, 14, sparsity, rng));
    const auto image =
        CsrMatrix::fromDense(bernoulliPlane(16, 16, sparsity, rng));
    const auto spec = ProblemSpec::conv(14, 14, 16, 16);
    AntPe pe;
    for (auto _ : state) {
        auto result = pe.runPair(spec, kernel, image, false);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_AntPePair)->Arg(50)->Arg(90);

void
BM_ScnnPePairCounting(benchmark::State &state)
{
    const auto sparsity = static_cast<double>(state.range(0)) / 100.0;
    Rng rng(7);
    const auto kernel =
        CsrMatrix::fromDense(bernoulliPlane(14, 14, sparsity, rng));
    const auto image =
        CsrMatrix::fromDense(bernoulliPlane(16, 16, sparsity, rng));
    const auto spec = ProblemSpec::conv(14, 14, 16, 16);
    ScnnPe pe;
    for (auto _ : state) {
        auto result = pe.runPair(spec, kernel, image, false);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_ScnnPePairCounting)->Arg(50)->Arg(90);

} // namespace
} // namespace antsim

BENCHMARK_MAIN();
