/**
 * @file
 * Reproduces Figure 10: ANT speedup and energy vs a *dense* (zero
 * sparsity) SCNN+ baseline across ReSprop-style G_A/A sparsity pairs
 * on CIFAR/ResNet18.
 *
 * Expected (paper): up to 28.1x speedup and ~40x energy savings at
 * high sparsity; both grow monotonically with sparsity (modulo
 * distribution effects).
 */

#include <cstdio>
#include <sstream>

#include "ant/ant_pe.hh"
#include "bench_common.hh"
#include "report/rollup.hh"
#include "scnn/scnn_pe.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Figure 10: ANT (sparse) vs dense SCNN+ baseline "
        "(CIFAR/ResNet18, ReSprop-style sparsity)",
        "up to 28.1x speedup and 40x energy savings; gains grow with "
        "sparsity");

    const auto layers = resnet18Cifar();
    ScnnPe scnn;
    AntPe ant;
    const EnergyModel energy;

    // The dense baseline is fixed.
    const auto dense_stats = bench::runConv(
        scnn, layers, SparsityProfile::dense(), options);

    // ReSprop-style operating points (G_A sparsity / A sparsity): the
    // activation sparsity is naturally high (ReLU) and creeps up as the
    // gradient reuse threshold rises; the paper highlights 42%/85%.
    const std::pair<double, double> points[] = {
        {0.30, 0.80}, {0.42, 0.85}, {0.50, 0.86}, {0.70, 0.88},
        {0.80, 0.90}, {0.90, 0.91}, {0.95, 0.92}};

    Table table({"G_A/A sparsity", "Speedup vs dense SCNN+",
                 "Energy reduction vs dense SCNN+"});
    Rollup rollup;
    for (const auto &[grad_sp, act_sp] : points) {
        const auto ant_stats = bench::runConv(
            ant, layers, SparsityProfile::resprop(grad_sp, act_sp),
            options);
        std::ostringstream label;
        label << static_cast<int>(grad_sp * 100) << "%/"
              << static_cast<int>(act_sp * 100) << "%";
        const auto row =
            compareNetworks(label.str(), dense_stats, ant_stats, energy);
        table.addRow({row.label, Table::times(row.speedup),
                      Table::times(row.energyReduction)});
        rollup.add(row);
    }
    rollup.recordMetrics(bench::report());
    bench::emitTable(table, options);
    return bench::finish(options);
}
