/**
 * @file
 * Extension bench: perfect vs greedy-LPT load balancing.
 *
 * The paper assumes a perfect load balancer (Sec. 6.1) and leaves the
 * real scheduling problem to future work. This ablation quantifies how
 * much a simple LPT scheduler loses against the perfect assumption for
 * ANT's task mix -- i.e., how much headroom that assumption hides.
 */

#include <cstdio>
#include <vector>

#include "ant/ant_pe.hh"
#include "bench_common.hh"
#include "scnn/scnn_pe.hh"
#include "sim/accelerator.hh"
#include "sim/chunking.hh"
#include "workload/tracegen.hh"

using namespace antsim;

namespace {

/** Collect per-task PE cycles of a network at one sparsity. */
std::vector<std::uint64_t>
collectTaskCycles(PeModel &pe, const std::vector<ConvLayer> &layers,
                  const SparsityProfile &profile, const RunConfig &config)
{
    std::vector<std::uint64_t> cycles;
    for (std::size_t li = 0; li < layers.size(); ++li) {
        for (unsigned pi = 0; pi < 3; ++pi) {
            const auto phase = static_cast<TrainingPhase>(pi);
            const std::uint64_t total =
                stackTaskCount(layers[li], phase);
            const std::uint64_t samples =
                std::min<std::uint64_t>(total, config.sampleCap);
            for (std::uint64_t s = 0; s < samples; ++s) {
                const std::uint64_t idx = s * total / samples;
                Rng rng(mixSeed(config.seed, li, pi, idx));
                const StackTask task =
                    makeConvPhaseTask(layers[li], phase, profile, rng);
                const auto ptrs = task.kernelPtrs();
                for (const CsrMatrix &chunk : chunkByCapacity(
                         *task.image, config.chunkCapacity)) {
                    cycles.push_back(
                        pe.runStack(task.spec, ptrs, chunk, false)
                            .counters.get(Counter::Cycles));
                }
            }
        }
    }
    return cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Extension: load-balance ablation (ResNet18 SWAT 90%)",
        "the paper assumes perfect balancing (Sec. 6.1); greedy LPT "
        "shows the assumption's headroom");

    const auto layers = resnet18Cifar();
    const auto profile = SparsityProfile::swat(0.9);

    Table table({"Model", "PEs", "perfect cycles", "greedy-LPT cycles",
                 "LPT / perfect"});
    ScnnPe scnn;
    AntPe ant;
    const std::pair<const char *, PeModel *> models[] = {{"SCNN+", &scnn},
                                                         {"ANT", &ant}};
    for (const auto &[name, pe] : models) {
        const auto cycles =
            collectTaskCycles(*pe, layers, profile, options.run);
        for (std::uint32_t pes : {16u, 64u, 256u}) {
            const std::uint64_t perfect =
                scheduleCycles(cycles, pes, LoadBalance::Perfect);
            const std::uint64_t greedy =
                scheduleCycles(cycles, pes, LoadBalance::GreedyLpt);
            table.addRow({name, std::to_string(pes),
                          std::to_string(perfect), std::to_string(greedy),
                          Table::times(static_cast<double>(greedy) /
                                           static_cast<double>(perfect),
                                       3)});
        }
    }
    bench::emitTable(table, options);
    std::printf("note: sampled tasks only -- the full task count per "
                "layer would smooth LPT further.\n");
    return bench::finish(options);
}
