/**
 * @file
 * Google-benchmark microbenchmarks of the census engine: brute-force
 * countProducts vs CensusContext, single-kernel and stack-amortized
 * (the SCNN counting path runs one context against every kernel of a
 * stack), plus the fused CSR plane generator vs the legacy dense
 * pipeline it replaces.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "conv/census.hh"
#include "conv/outer_product.hh"
#include "tensor/csr.hh"
#include "tensor/sparsify.hh"
#include "util/bfloat16.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "workload/trace_cache.hh"
#include "workload/tracegen.hh"

namespace antsim {
namespace {

CsrMatrix
csrPlane(std::uint32_t height, std::uint32_t width, double sparsity,
         std::uint64_t seed)
{
    Rng rng(seed);
    return CsrMatrix::fromDense(
        bernoulliPlane(height, width, sparsity, rng));
}

/** The ResNet-like stack shape the SCNN counting path sees. */
constexpr std::uint32_t kStackKernels = 64;

std::vector<CsrMatrix>
kernelStack(std::uint32_t kernel, double sparsity)
{
    std::vector<CsrMatrix> kernels;
    kernels.reserve(kStackKernels);
    for (std::uint32_t k = 0; k < kStackKernels; ++k)
        kernels.push_back(csrPlane(kernel, kernel, sparsity, 1000 + k));
    return kernels;
}

void
BM_BruteCensusStack(benchmark::State &state)
{
    const auto dim = static_cast<std::uint32_t>(state.range(0));
    const ProblemSpec spec = ProblemSpec::conv(3, 3, dim, dim);
    const CsrMatrix image = csrPlane(dim, dim, 0.9, 7);
    const auto kernels = kernelStack(3, 0.9);
    for (auto _ : state) {
        ProductCensus census;
        for (const CsrMatrix &kernel : kernels)
            census += countProducts(spec, kernel, image);
        benchmark::DoNotOptimize(census);
    }
    state.SetItemsProcessed(state.iterations() * kStackKernels);
}
BENCHMARK(BM_BruteCensusStack)->Arg(16)->Arg(32)->Arg(56);

void
BM_CensusContextStack(benchmark::State &state)
{
    const auto dim = static_cast<std::uint32_t>(state.range(0));
    const ProblemSpec spec = ProblemSpec::conv(3, 3, dim, dim);
    const CsrMatrix image = csrPlane(dim, dim, 0.9, 7);
    const auto kernels = kernelStack(3, 0.9);
    for (auto _ : state) {
        const CensusContext context(spec, image);
        ProductCensus census;
        for (const CsrMatrix &kernel : kernels)
            census += context.countProducts(kernel);
        benchmark::DoNotOptimize(census);
    }
    state.SetItemsProcessed(state.iterations() * kStackKernels);
}
BENCHMARK(BM_CensusContextStack)->Arg(16)->Arg(32)->Arg(56);

void
BM_CensusContextBuild(benchmark::State &state)
{
    const auto dim = static_cast<std::uint32_t>(state.range(0));
    // Stride 2 exercises all four residue-class tables.
    const ProblemSpec spec = ProblemSpec::conv(3, 3, dim, dim, 2);
    const CsrMatrix image = csrPlane(dim, dim, 0.9, 7);
    for (auto _ : state) {
        const CensusContext context(spec, image);
        benchmark::DoNotOptimize(context);
    }
    state.SetItemsProcessed(state.iterations() * image.nnz());
}
BENCHMARK(BM_CensusContextBuild)->Arg(16)->Arg(32)->Arg(56);

void
BM_LegacyPlanePipeline(benchmark::State &state)
{
    const auto dim = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        Rng rng(42);
        Dense2d<float> plane =
            generatePlane(dim, dim, 0.9, SparsifyMethod::TopK, rng);
        auto csr = CsrMatrix::fromDense(
            embedPlane(plane, dim + 2, dim + 2, 1));
        benchmark::DoNotOptimize(csr);
    }
    state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_LegacyPlanePipeline)->Arg(32)->Arg(128);

void
BM_FusedPlaneGenerator(benchmark::State &state)
{
    const auto dim = static_cast<std::uint32_t>(state.range(0));
    PlaneRecipe recipe =
        PlaneRecipe::plain(dim, dim, 0.9, SparsifyMethod::TopK);
    recipe.outHeight = dim + 2;
    recipe.outWidth = dim + 2;
    recipe.offset = 1;
    for (auto _ : state) {
        Rng rng(42);
        auto csr = generateCsrPlane(recipe, rng);
        benchmark::DoNotOptimize(csr);
    }
    state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_FusedPlaneGenerator)->Arg(32)->Arg(128);

} // namespace

/**
 * Scalar-vs-AVX2 pairs for the perf gate (scripts/check_perf.py reads
 * the pair names from perf_baseline.json "micro_speedups"): the same
 * body with the dispatch mode pinned, so the ratio isolates the vector
 * kernels. The AVX2 variants are registered only on AVX2 hardware
 * (see main below); the gate skips a pair whose AVX2 half is absent.
 * Namespace-scope (not anonymous) so main can register the AVX2 halves.
 */
void
censusBuildWithMode(benchmark::State &state, simd::Mode mode)
{
    const simd::Mode saved = simd::mode();
    simd::setMode(mode);
    const std::uint32_t dim = 56;
    const ProblemSpec spec = ProblemSpec::conv(3, 3, dim, dim, 2);
    const CsrMatrix image = csrPlane(dim, dim, 0.9, 7);
    for (auto _ : state) {
        const CensusContext context(spec, image);
        benchmark::DoNotOptimize(context);
    }
    state.SetItemsProcessed(state.iterations() * image.nnz());
    simd::setMode(saved);
}

namespace {

void
BM_CensusBuildScalar(benchmark::State &state)
{
    censusBuildWithMode(state, simd::Mode::Scalar);
}
BENCHMARK(BM_CensusBuildScalar);

} // namespace

void
censusStackWithMode(benchmark::State &state, simd::Mode mode)
{
    const simd::Mode saved = simd::mode();
    simd::setMode(mode);
    const std::uint32_t dim = 56;
    const ProblemSpec spec = ProblemSpec::conv(3, 3, dim, dim);
    const CsrMatrix image = csrPlane(dim, dim, 0.9, 7);
    const auto kernels = kernelStack(3, 0.9);
    for (auto _ : state) {
        const CensusContext context(spec, image);
        ProductCensus census;
        for (const CsrMatrix &kernel : kernels)
            census += context.countProducts(kernel);
        benchmark::DoNotOptimize(census);
    }
    state.SetItemsProcessed(state.iterations() * kStackKernels);
    simd::setMode(saved);
}

namespace {

void
BM_CensusStackScalar(benchmark::State &state)
{
    censusStackWithMode(state, simd::Mode::Scalar);
}
BENCHMARK(BM_CensusStackScalar);

} // namespace

/**
 * Kernel-level gate pairs: the two census hot loops in isolation
 * (census_kernels, conv/census.hh), where the speedup target of the
 * SIMD work is defined. The whole-build pairs above include table
 * allocation and the O(nnz) census-point scatter, which dilute the
 * kernel ratio on small conv shapes.
 */
void
satIntegrateWithMode(benchmark::State &state, simd::Mode mode)
{
    const simd::Mode saved = simd::mode();
    simd::setMode(mode);
    // L1-resident working set (8 x 1024 x 4B = 32 KB): the production
    // tables are one image row per integration step, so the kernel is
    // compute-bound in situ; a larger set here would measure DRAM.
    constexpr std::size_t kRows = 8;
    constexpr std::size_t kCols = 1024;
    std::vector<std::uint32_t> table(kRows * kCols);
    for (std::size_t i = 0; i < table.size(); ++i)
        table[i] = static_cast<std::uint32_t>(i % 3 == 0);
    for (auto _ : state) {
        for (std::size_t v = 1; v < kRows; ++v)
            census_kernels::satIntegrateRow(table.data() + v * kCols,
                                            table.data() + (v - 1) * kCols,
                                            kCols);
        benchmark::DoNotOptimize(table.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * (kRows - 1) * kCols);
    simd::setMode(saved);
}

void
gatherSumWithMode(benchmark::State &state, simd::Mode mode)
{
    const simd::Mode saved = simd::mode();
    simd::setMode(mode);
    constexpr std::size_t kTable = 1 << 16;
    constexpr std::size_t kIndices = 4096;
    std::vector<std::uint64_t> table(kTable);
    for (std::size_t i = 0; i < kTable; ++i)
        table[i] = i * 7;
    std::vector<std::uint32_t> idx(kIndices);
    Rng rng(3);
    for (std::size_t i = 0; i < kIndices; ++i)
        idx[i] = static_cast<std::uint32_t>(rng.below(kTable));
    for (auto _ : state) {
        const std::uint64_t sum =
            census_kernels::gatherSum(table.data(), idx.data(), kIndices);
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * kIndices);
    simd::setMode(saved);
}

namespace {

void
BM_SatIntegrateScalar(benchmark::State &state)
{
    satIntegrateWithMode(state, simd::Mode::Scalar);
}
BENCHMARK(BM_SatIntegrateScalar);

void
BM_GatherSumScalar(benchmark::State &state)
{
    gatherSumWithMode(state, simd::Mode::Scalar);
}
BENCHMARK(BM_GatherSumScalar);

} // namespace
} // namespace antsim

int
main(int argc, char **argv)
{
    // The AVX2 halves of the perf-gate pairs exist only where they can
    // run; scripts/check_perf.py treats a missing AVX2 benchmark as
    // "skip the pair", not as a regression.
    if (antsim::simd::cpuHasAvx2()) {
        benchmark::RegisterBenchmark(
            "BM_CensusBuildAvx2", [](benchmark::State &state) {
                antsim::censusBuildWithMode(state, antsim::simd::Mode::Avx2);
            });
        benchmark::RegisterBenchmark(
            "BM_CensusStackAvx2", [](benchmark::State &state) {
                antsim::censusStackWithMode(state, antsim::simd::Mode::Avx2);
            });
        benchmark::RegisterBenchmark(
            "BM_SatIntegrateAvx2", [](benchmark::State &state) {
                antsim::satIntegrateWithMode(state, antsim::simd::Mode::Avx2);
            });
        benchmark::RegisterBenchmark(
            "BM_GatherSumAvx2", [](benchmark::State &state) {
                antsim::gatherSumWithMode(state, antsim::simd::Mode::Avx2);
            });
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
