/**
 * @file
 * Google-benchmark microbenchmarks of the census engine: brute-force
 * countProducts vs CensusContext, single-kernel and stack-amortized
 * (the SCNN counting path runs one context against every kernel of a
 * stack), plus the fused CSR plane generator vs the legacy dense
 * pipeline it replaces.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "conv/census.hh"
#include "conv/outer_product.hh"
#include "tensor/csr.hh"
#include "tensor/sparsify.hh"
#include "util/bfloat16.hh"
#include "util/rng.hh"
#include "workload/trace_cache.hh"
#include "workload/tracegen.hh"

namespace antsim {
namespace {

CsrMatrix
csrPlane(std::uint32_t height, std::uint32_t width, double sparsity,
         std::uint64_t seed)
{
    Rng rng(seed);
    return CsrMatrix::fromDense(
        bernoulliPlane(height, width, sparsity, rng));
}

/** The ResNet-like stack shape the SCNN counting path sees. */
constexpr std::uint32_t kStackKernels = 64;

std::vector<CsrMatrix>
kernelStack(std::uint32_t kernel, double sparsity)
{
    std::vector<CsrMatrix> kernels;
    kernels.reserve(kStackKernels);
    for (std::uint32_t k = 0; k < kStackKernels; ++k)
        kernels.push_back(csrPlane(kernel, kernel, sparsity, 1000 + k));
    return kernels;
}

void
BM_BruteCensusStack(benchmark::State &state)
{
    const auto dim = static_cast<std::uint32_t>(state.range(0));
    const ProblemSpec spec = ProblemSpec::conv(3, 3, dim, dim);
    const CsrMatrix image = csrPlane(dim, dim, 0.9, 7);
    const auto kernels = kernelStack(3, 0.9);
    for (auto _ : state) {
        ProductCensus census;
        for (const CsrMatrix &kernel : kernels)
            census += countProducts(spec, kernel, image);
        benchmark::DoNotOptimize(census);
    }
    state.SetItemsProcessed(state.iterations() * kStackKernels);
}
BENCHMARK(BM_BruteCensusStack)->Arg(16)->Arg(32)->Arg(56);

void
BM_CensusContextStack(benchmark::State &state)
{
    const auto dim = static_cast<std::uint32_t>(state.range(0));
    const ProblemSpec spec = ProblemSpec::conv(3, 3, dim, dim);
    const CsrMatrix image = csrPlane(dim, dim, 0.9, 7);
    const auto kernels = kernelStack(3, 0.9);
    for (auto _ : state) {
        const CensusContext context(spec, image);
        ProductCensus census;
        for (const CsrMatrix &kernel : kernels)
            census += context.countProducts(kernel);
        benchmark::DoNotOptimize(census);
    }
    state.SetItemsProcessed(state.iterations() * kStackKernels);
}
BENCHMARK(BM_CensusContextStack)->Arg(16)->Arg(32)->Arg(56);

void
BM_CensusContextBuild(benchmark::State &state)
{
    const auto dim = static_cast<std::uint32_t>(state.range(0));
    // Stride 2 exercises all four residue-class tables.
    const ProblemSpec spec = ProblemSpec::conv(3, 3, dim, dim, 2);
    const CsrMatrix image = csrPlane(dim, dim, 0.9, 7);
    for (auto _ : state) {
        const CensusContext context(spec, image);
        benchmark::DoNotOptimize(context);
    }
    state.SetItemsProcessed(state.iterations() * image.nnz());
}
BENCHMARK(BM_CensusContextBuild)->Arg(16)->Arg(32)->Arg(56);

void
BM_LegacyPlanePipeline(benchmark::State &state)
{
    const auto dim = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        Rng rng(42);
        Dense2d<float> plane =
            generatePlane(dim, dim, 0.9, SparsifyMethod::TopK, rng);
        auto csr = CsrMatrix::fromDense(
            embedPlane(plane, dim + 2, dim + 2, 1));
        benchmark::DoNotOptimize(csr);
    }
    state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_LegacyPlanePipeline)->Arg(32)->Arg(128);

void
BM_FusedPlaneGenerator(benchmark::State &state)
{
    const auto dim = static_cast<std::uint32_t>(state.range(0));
    PlaneRecipe recipe =
        PlaneRecipe::plain(dim, dim, 0.9, SparsifyMethod::TopK);
    recipe.outHeight = dim + 2;
    recipe.outWidth = dim + 2;
    recipe.offset = 1;
    for (auto _ : state) {
        Rng rng(42);
        auto csr = generateCsrPlane(recipe, rng);
        benchmark::DoNotOptimize(csr);
    }
    state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_FusedPlaneGenerator)->Arg(32)->Arg(128);

} // namespace
} // namespace antsim

BENCHMARK_MAIN();
