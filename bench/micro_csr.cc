/**
 * @file
 * Google-benchmark microbenchmarks of the sparse-tensor substrate:
 * CSR compression, rotation (Algorithm 3), transpose, and chunking.
 */

#include <benchmark/benchmark.h>

#include "sim/chunking.hh"
#include "tensor/csr.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace antsim {
namespace {

Dense2d<float>
plane(std::uint32_t dim, double sparsity)
{
    Rng rng(dim);
    return bernoulliPlane(dim, dim, sparsity, rng);
}

void
BM_CsrFromDense(benchmark::State &state)
{
    const auto dense = plane(static_cast<std::uint32_t>(state.range(0)),
                             0.9);
    for (auto _ : state) {
        auto csr = CsrMatrix::fromDense(dense);
        benchmark::DoNotOptimize(csr);
    }
    state.SetItemsProcessed(state.iterations() * dense.size());
}
BENCHMARK(BM_CsrFromDense)->Arg(32)->Arg(128)->Arg(256);

void
BM_CsrRotate(benchmark::State &state)
{
    const auto csr = CsrMatrix::fromDense(
        plane(static_cast<std::uint32_t>(state.range(0)), 0.9));
    for (auto _ : state) {
        auto rotated = csr.rotated180();
        benchmark::DoNotOptimize(rotated);
    }
    state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_CsrRotate)->Arg(32)->Arg(128)->Arg(256);

void
BM_CsrTranspose(benchmark::State &state)
{
    const auto csr = CsrMatrix::fromDense(
        plane(static_cast<std::uint32_t>(state.range(0)), 0.9));
    for (auto _ : state) {
        auto transposed = csr.transposed();
        benchmark::DoNotOptimize(transposed);
    }
    state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_CsrTranspose)->Arg(32)->Arg(128)->Arg(256);

void
BM_ChunkByCapacity(benchmark::State &state)
{
    const auto csr = CsrMatrix::fromDense(plane(256, 0.5));
    for (auto _ : state) {
        auto chunks = chunkByCapacity(csr, 4096);
        benchmark::DoNotOptimize(chunks);
    }
    state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_ChunkByCapacity);

} // namespace

/**
 * Scalar-vs-AVX2 pair for the perf gate (scripts/check_perf.py reads
 * the pair names from perf_baseline.json "micro_speedups"): dense
 * compression with the dispatch mode pinned, isolating the vectorized
 * nonzero-count and row-compress kernels. Namespace-scope (not
 * anonymous) so main can register the AVX2 half conditionally.
 */
void
csrFromDenseWithMode(benchmark::State &state, simd::Mode mode)
{
    const simd::Mode saved = simd::mode();
    simd::setMode(mode);
    const auto dense = plane(256, 0.9);
    for (auto _ : state) {
        auto csr = CsrMatrix::fromDense(dense);
        benchmark::DoNotOptimize(csr);
    }
    state.SetItemsProcessed(state.iterations() * dense.size());
    simd::setMode(saved);
}

namespace {

void
BM_CsrFromDenseScalar(benchmark::State &state)
{
    csrFromDenseWithMode(state, simd::Mode::Scalar);
}
BENCHMARK(BM_CsrFromDenseScalar);

} // namespace
} // namespace antsim

int
main(int argc, char **argv)
{
    if (antsim::simd::cpuHasAvx2()) {
        benchmark::RegisterBenchmark(
            "BM_CsrFromDenseAvx2", [](benchmark::State &state) {
                antsim::csrFromDenseWithMode(state,
                                             antsim::simd::Mode::Avx2);
            });
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
