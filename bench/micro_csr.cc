/**
 * @file
 * Google-benchmark microbenchmarks of the sparse-tensor substrate:
 * CSR compression, rotation (Algorithm 3), transpose, and chunking.
 */

#include <benchmark/benchmark.h>

#include "sim/chunking.hh"
#include "tensor/csr.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

Dense2d<float>
plane(std::uint32_t dim, double sparsity)
{
    Rng rng(dim);
    return bernoulliPlane(dim, dim, sparsity, rng);
}

void
BM_CsrFromDense(benchmark::State &state)
{
    const auto dense = plane(static_cast<std::uint32_t>(state.range(0)),
                             0.9);
    for (auto _ : state) {
        auto csr = CsrMatrix::fromDense(dense);
        benchmark::DoNotOptimize(csr);
    }
    state.SetItemsProcessed(state.iterations() * dense.size());
}
BENCHMARK(BM_CsrFromDense)->Arg(32)->Arg(128)->Arg(256);

void
BM_CsrRotate(benchmark::State &state)
{
    const auto csr = CsrMatrix::fromDense(
        plane(static_cast<std::uint32_t>(state.range(0)), 0.9));
    for (auto _ : state) {
        auto rotated = csr.rotated180();
        benchmark::DoNotOptimize(rotated);
    }
    state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_CsrRotate)->Arg(32)->Arg(128)->Arg(256);

void
BM_CsrTranspose(benchmark::State &state)
{
    const auto csr = CsrMatrix::fromDense(
        plane(static_cast<std::uint32_t>(state.range(0)), 0.9));
    for (auto _ : state) {
        auto transposed = csr.transposed();
        benchmark::DoNotOptimize(transposed);
    }
    state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_CsrTranspose)->Arg(32)->Arg(128)->Arg(256);

void
BM_ChunkByCapacity(benchmark::State &state)
{
    const auto csr = CsrMatrix::fromDense(plane(256, 0.5));
    for (auto _ : state) {
        auto chunks = chunkByCapacity(csr, 4096);
        benchmark::DoNotOptimize(chunks);
    }
    state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_ChunkByCapacity);

} // namespace
} // namespace antsim

BENCHMARK_MAIN();
