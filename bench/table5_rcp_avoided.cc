/**
 * @file
 * Reproduces Table 5: fraction of RCPs that ANT anticipates and
 * eliminates per network at 90% target sparsity.
 *
 * Expected (paper): DenseNet-121 93.6%, ResNet18 98.0%, VGG16 74.9%,
 * WRN-16-8 94.8%, ResNet50 91.9% (mean 90.3%).
 */

#include <cstdio>

#include "ant/ant_pe.hh"
#include "bench_common.hh"
#include "util/stats.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Table 5: proportion of RCPs avoided by ANT (90% sparsity)",
        "74.9%-98.0% per network, on average 90.3% of RCPs eliminated");

    AntPe ant;
    Table table({"Network", "RCPs avoided", "residual RCP mults",
                 "avoided RCP mults"});
    std::vector<double> fractions;
    for (const auto &network :
         bench::selectNetworks(figure9Networks(), options)) {
        const auto stats = bench::runNetwork(ant, network, 0.9,
                                             options);
        fractions.push_back(stats.rcpAvoidedFraction());
        table.addRow(
            {network.name, Table::percent(stats.rcpAvoidedFraction(), 1),
             std::to_string(stats.total.get(Counter::MultsRcp)),
             std::to_string(stats.total.get(Counter::RcpsAvoided))});
        bench::reportMetric("rcp_avoided." + network.name,
                            stats.rcpAvoidedFraction());
        bench::reportNetwork("ant/" + network.name, stats, ant, options);
    }
    bench::reportMetric("rcp_avoided_mean", mean(fractions));
    table.addRow({"mean", Table::percent(mean(fractions), 1), "-", "-"});
    bench::emitTable(table, options);
    return bench::finish(options);
}
