/**
 * @file
 * Reproduces Table 3: outer-product efficiency of transformer / RNN
 * matmul shapes (Sec. 5).
 *
 * Expected (paper): 1.39%, 0.20%, 10.00%, 10.00%, 1.56%, 33.33%,
 * 33.33%, 0.33%, 12.50%, 12.50%, 0.33% -- i.e. efficiency = 1/R.
 */

#include <sstream>

#include "bench_common.hh"
#include "conv/rcp_model.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Table 3: outer-product efficiency of matmul training phases",
        "efficiency = 1/R; update phases (A x G_A) are the worst at "
        "0.2-0.33%");

    Table table({"Training Phase", "HxW", "RxS",
                 "Outer-product Efficiency"});
    for (const auto &row : table3Rows()) {
        const ProblemSpec &s = row.spec;
        std::ostringstream i, k;
        i << s.imageH() << "x" << s.imageW();
        k << s.kernelH() << "x" << s.kernelW();
        table.addRow(
            {row.phase, i.str(), k.str(), Table::percent(row.efficiency)});
    }
    bench::emitTable(table, options);
    return bench::finish(options);
}
