/**
 * @file
 * Extension bench: sensitivity of the Fig. 9-style energy conclusion
 * to the per-op energy calibration.
 *
 * The absolute pJ constants in sim/energy.hh are order-of-magnitude
 * figures (the paper's own are taken from TPU measurements we cannot
 * reproduce). This ablation sweeps the two dominant ratios -- SRAM
 * access cost vs multiply cost, and index-op cost vs multiply cost --
 * and shows that "ANT uses several times less energy than SCNN+"
 * holds across the plausible range, i.e. the headline does not hinge
 * on the calibration.
 */

#include <cstdio>

#include "ant/ant_pe.hh"
#include "bench_common.hh"
#include "scnn/scnn_pe.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Extension: energy-parameter sensitivity (ResNet18 SWAT 90%)",
        "the ANT-vs-SCNN+ energy win is robust to the per-op energy "
        "calibration");

    const auto layers = resnet18Cifar();
    const auto profile = SparsityProfile::swat(0.9);
    ScnnPe scnn;
    AntPe ant;
    // Counters are independent of the energy table: run once.
    const auto scnn_stats =
        bench::runConv(scnn, layers, profile, options);
    const auto ant_stats =
        bench::runConv(ant, layers, profile, options);

    Table table({"SRAM read (pJ)", "index op (pJ)", "SCNN+ energy (uJ)",
                 "ANT energy (uJ)", "Energy reduction"});
    for (double sram : {1.0, 2.2, 5.4}) {
        for (double index_op : {0.05, 0.10, 0.20}) {
            EnergyParams params;
            params.sramRead64Pj = sram;
            params.sramRowPtrPj = sram;
            params.addInt32Pj = index_op;
            const EnergyModel model(params);
            const double s = scnn_stats.energyPj(model) / 1e6;
            const double a = ant_stats.energyPj(model) / 1e6;
            table.addRow({Table::num(sram, 2), Table::num(index_op, 2),
                          Table::num(s, 1), Table::num(a, 1),
                          Table::times(s / a)});
        }
    }
    bench::emitTable(table, options);
    std::printf("counters are energy-table-independent; only the "
                "attribution changes across rows.\n");
    return bench::finish(options);
}
