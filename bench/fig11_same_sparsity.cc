/**
 * @file
 * Reproduces Figure 11: ANT vs SCNN+ at the *same* sparsity level, on
 * CIFAR/ResNet18 with ReSprop-style sparsity pairs.
 *
 * Expected (paper): ANT is 1.9x-2.6x faster and uses 2.6x-4.4x less
 * energy at every operating point -- the gain comes purely from
 * avoiding RCPs and their SRAM accesses.
 */

#include <cstdio>
#include <sstream>

#include "ant/ant_pe.hh"
#include "bench_common.hh"
#include "report/rollup.hh"
#include "scnn/scnn_pe.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Figure 11: ANT vs SCNN+ at matched sparsity (CIFAR/ResNet18)",
        "1.9x-2.6x speedup and 2.6x-4.4x energy reduction across all "
        "sparsity levels");

    const auto layers = resnet18Cifar();
    ScnnPe scnn;
    AntPe ant;
    const EnergyModel energy;

    // ReSprop-style operating points (G_A sparsity / A sparsity): the
    // activation sparsity is naturally high (ReLU) and creeps up as the
    // gradient reuse threshold rises; the paper highlights 42%/85%.
    const std::pair<double, double> points[] = {
        {0.30, 0.80}, {0.42, 0.85}, {0.50, 0.86}, {0.70, 0.88},
        {0.80, 0.90}, {0.90, 0.91}, {0.95, 0.92}};

    Table table({"G_A/A sparsity", "Speedup", "Energy reduction",
                 "RCPs avoided"});
    Rollup rollup;
    for (const auto &[grad_sp, act_sp] : points) {
        const auto profile = SparsityProfile::resprop(grad_sp, act_sp);
        const auto scnn_stats =
            bench::runConv(scnn, layers, profile, options);
        const auto ant_stats =
            bench::runConv(ant, layers, profile, options);
        std::ostringstream label;
        label << static_cast<int>(grad_sp * 100) << "%/"
              << static_cast<int>(act_sp * 100) << "%";
        const auto row =
            compareNetworks(label.str(), scnn_stats, ant_stats, energy);
        table.addRow({row.label, Table::times(row.speedup),
                      Table::times(row.energyReduction),
                      Table::percent(row.rcpAvoidedFraction, 1)});
        rollup.add(row);
    }
    rollup.recordMetrics(bench::report(), /*with_rcp=*/true);
    bench::emitTable(table, options);
    return bench::finish(options);
}
