/**
 * @file
 * Reproduces Sec. 7.5-7.6: FNIR synthesis area and scaling trends.
 *
 * Expected (paper): 0.0017 mm^2 for the default n=4, k=16 block at the
 * 15 nm node (with 50% wire overhead) -- 0.02% of an SCNN PE, or
 * 21.25% of the 4x4 multiplier array; the serial Arbiter Select depth
 * grows with n, favouring more PEs over bigger PEs.
 */

#include <cstdio>
#include <sstream>

#include "ant/area_model.hh"
#include "bench_common.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Sec. 7.5/7.6: FNIR area model",
        "0.0017 mm^2 at n=4, k=16; area grows with n and k, critical "
        "path grows with n");

    Table table({"n", "k", "gate equivalents", "area (mm^2)",
                 "critical path (gates)", "fraction of nxn mult array"});
    for (std::uint32_t n : {2u, 4u, 6u, 8u}) {
        for (std::uint32_t k : {8u, 16u, 32u}) {
            const auto est = estimateFnirArea(n, k);
            std::ostringstream area;
            area.precision(4);
            area << est.areaMm2;
            table.addRow({std::to_string(n), std::to_string(k),
                          std::to_string(est.gateEquivalents), area.str(),
                          std::to_string(est.criticalPathGates),
                          Table::percent(est.fractionOfMultiplierArray,
                                         1)});
        }
    }
    bench::emitTable(table, options);
    return bench::finish(options);
}
