/**
 * @file
 * Shared harness for the per-table/per-figure benchmark binaries.
 *
 * Every bench binary reproduces one table or figure from the paper's
 * evaluation (see DESIGN.md experiment index): it prints the paper's
 * expectation, runs the simulation, and prints the measured rows in
 * the same form. Common flags:
 *   --samples N   plane pairs sampled per (layer, phase)  [default 16]
 *   --seed S      trace-generation seed                   [default 42]
 *   --pes N       number of PEs                           [default 64]
 *   --threads N   simulation worker threads; 0 = all hardware threads
 *                 [default 0]. Results are bit-identical for every
 *                 value (deterministic parallel engine, DESIGN.md)
 *   --csv         additionally dump rows as CSV
 *   --audit       run the invariant audits (src/verify) on every
 *                 model execution; violations abort the bench
 */

#ifndef ANTSIM_BENCH_BENCH_COMMON_HH
#define ANTSIM_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "util/cli.hh"
#include "util/table.hh"
#include "workload/runner.hh"

namespace antsim {
namespace bench {

/** Parsed common options. */
struct BenchOptions
{
    RunConfig run;
    bool csv = false;
};

/**
 * Parse argv with the standard flags plus @p extra_flags.
 * Exits with a usage error on unknown flags.
 */
BenchOptions parseOptions(int argc, const char *const *argv,
                          const std::vector<std::string> &extra_flags = {},
                          Cli **cli_out = nullptr);

/** Print the bench header: experiment id and the paper's claim. */
void printHeader(const std::string &experiment,
                 const std::string &paper_claim);

/** Print a table, optionally followed by its CSV form. */
void emitTable(const Table &table, const BenchOptions &options);

/** Memoized network stats: run a PE model over a named network. */
NetworkStats runNetwork(PeModel &pe, const NamedNetwork &network,
                        double target_sparsity, const RunConfig &config);

} // namespace bench
} // namespace antsim

#endif // ANTSIM_BENCH_BENCH_COMMON_HH
