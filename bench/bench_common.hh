/**
 * @file
 * Shared harness for the per-table/per-figure benchmark binaries.
 *
 * Every bench binary reproduces one table or figure from the paper's
 * evaluation (see DESIGN.md experiment index): it prints the paper's
 * expectation, runs the simulation, and prints the measured rows in
 * the same form. Common flags:
 *   --samples N   plane pairs sampled per (layer, phase)  [default 16]
 *   --seed S      trace-generation seed                   [default 42]
 *   --pes N       number of PEs                           [default 64]
 *   --threads N   simulation worker threads; 0 = all hardware threads
 *                 [default 0]. Results are bit-identical for every
 *                 value (deterministic parallel engine, DESIGN.md)
 *   --csv [path]  dump rows as CSV: bare --csv prints to stdout,
 *                 --csv out.csv writes the file
 *   --json path   write the structured run report (src/report,
 *                 docs/report_schema.json) to @p path
 *   --networks A,B  restrict network-suite benches to the named
 *                 networks; an empty selection is a fatal error
 *   --audit       run the invariant audits (src/verify) on every
 *                 model execution; violations abort the bench
 *   --estimate    replace cycle-level simulation with the analytical
 *                 fast path (src/estimate) in every bench::runNetwork
 *                 / runConv / runMatmul call; defaults on when the
 *                 ANTSIM_ESTIMATE environment variable is non-empty.
 *                 Reports carry metadata.mode = "estimated" so
 *                 downstream tooling never mixes them into the
 *                 simulated headline numbers
 *   --trace-out path  write the simulated-time Chrome trace (src/obs,
 *                 docs/OBSERVABILITY.md) to @p path; defaults to the
 *                 ANTSIM_TRACE environment variable when set
 *   --metrics-out path  write the host-side metrics registry
 *                 (src/obs/metrics.hh) as Prometheus text exposition
 *                 to @p path and embed a host_metrics section in the
 *                 --json report; defaults to the ANTSIM_METRICS
 *                 environment variable when set. Never changes
 *                 results, only host-side accounting
 *   --host-trace-out path  write the host-execution Chrome trace
 *                 (src/obs/host_trace.hh: per-stage / per-unit /
 *                 per-worker wall-clock spans) to @p path; defaults to
 *                 the ANTSIM_HOST_TRACE environment variable when set
 *   --log-level L verbosity: error, warn (default), info (adds the
 *                 progress heartbeat), or debug; defaults to the
 *                 ANTSIM_LOG_LEVEL environment variable when set
 *   --simd M      vector-kernel dispatch: auto (default), scalar, or
 *                 avx2; defaults to the ANTSIM_SIMD environment
 *                 variable. Never changes results (the kernels are
 *                 bit-identical across modes), only wall time
 *
 * Besides printing, every table, key metric, and network run is
 * recorded in a process-wide RunReport; main() ends with
 * `return bench::finish(options);` which writes the --json/--csv
 * outputs (including the stage-profiler section, report/profiler.hh).
 */

#ifndef ANTSIM_BENCH_BENCH_COMMON_HH
#define ANTSIM_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "report/report.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workload/runner.hh"

namespace antsim {
namespace bench {

/** Parsed common options. */
struct BenchOptions
{
    RunConfig run;
    /** Print each table's CSV to stdout (bare --csv). */
    bool csv = false;
    /** Write the merged CSV here when non-empty (--csv path). */
    std::string csvPath;
    /** Write the JSON run report here when non-empty (--json path). */
    std::string jsonPath;
    /** Comma-separated network-name filter (--networks). */
    std::string networksFilter;
    /**
     * Write the simulated-time Chrome trace here when non-empty
     * (--trace-out path, or the ANTSIM_TRACE environment variable).
     * A non-empty path enables tracing for the whole run.
     */
    std::string traceOutPath;
    /**
     * Write the Prometheus text exposition of the host metrics
     * registry here when non-empty (--metrics-out path, or the
     * ANTSIM_METRICS environment variable). A non-empty path enables
     * metrics collection for the whole run and adds a host_metrics
     * section to the JSON report.
     */
    std::string metricsOutPath;
    /**
     * Write the host-execution Chrome trace here when non-empty
     * (--host-trace-out path, or the ANTSIM_HOST_TRACE environment
     * variable). A non-empty path enables host span collection.
     */
    std::string hostTraceOutPath;
    /**
     * Use the analytical estimator instead of the cycle-level engine
     * (--estimate, or the ANTSIM_ESTIMATE environment variable). Only
     * honoured by call sites that go through the BenchOptions-taking
     * run helpers below; benches that measure the engine itself (e.g.
     * abl_threads' scaling curve) call the simulator directly and say
     * so at the call site.
     */
    bool estimate = false;
};

/**
 * Parse argv with the standard flags plus @p extra_flags.
 * Exits with a usage error on unknown flags.
 */
BenchOptions parseOptions(int argc, const char *const *argv,
                          const std::vector<std::string> &extra_flags = {},
                          Cli **cli_out = nullptr);

/** Print the bench header: experiment id and the paper's claim. */
void printHeader(const std::string &experiment,
                 const std::string &paper_claim);

/**
 * Print a table, optionally followed by its CSV form, and record it
 * in the run report under the current experiment header.
 */
void emitTable(const Table &table, const BenchOptions &options);

/** Memoized network stats: run a PE model over a named network. */
NetworkStats runNetwork(PeModel &pe, const NamedNetwork &network,
                        double target_sparsity, const RunConfig &config);

/**
 * Estimate-aware counterpart: cycle-level simulation by default, the
 * analytical fast path under --estimate. Fatal when --estimate is set
 * and no analytical model exists for @p pe's dynamic type.
 */
NetworkStats runNetwork(PeModel &pe, const NamedNetwork &network,
                        double target_sparsity,
                        const BenchOptions &options);

/**
 * Estimate-aware runConvNetwork for benches that build their own
 * SparsityProfile (fig10/fig11 resprop points) instead of a
 * NamedNetwork's default.
 */
NetworkStats runConv(PeModel &pe, const std::vector<ConvLayer> &layers,
                     const SparsityProfile &profile,
                     const BenchOptions &options);

/** Estimate-aware runMatmulNetwork (transformer/RNN suites). */
NetworkStats runMatmul(PeModel &pe, const std::vector<MatmulLayer> &layers,
                       double sparsity, SparsifyMethod method,
                       const BenchOptions &options);

/** The process-wide run report the binary accumulates into. */
RunReport &report();

/**
 * Force metadata.mode to "estimated" regardless of --estimate.
 * For benches whose headline numbers come from the analytical model by
 * design (sweep_dse): downstream tooling must never mistake their
 * output for cycle-level measurement, even though they may also run
 * the exact engine internally (frontier escalation).
 */
void markEstimated();

/** Record a named scalar result in the run report. */
void reportMetric(const std::string &name, double value);
void reportMetric(const std::string &name, std::uint64_t value);

/** Record a full network run in the run report. */
void reportNetwork(const std::string &name, const NetworkStats &stats,
                   const BenchOptions &options);

/**
 * Record a full network run plus its per-layer stall-attribution table
 * (active / startup / idle-scan / imbalance + multiplier utilization,
 * derived from @p pe's name and multiplier count). Prefer this
 * overload whenever the PE model is at hand.
 */
void reportNetwork(const std::string &name, const NetworkStats &stats,
                   const PeModel &pe, const BenchOptions &options);

/**
 * Apply the --networks filter to a network suite. Unknown names and
 * an empty selection are fatal (they would otherwise surface much
 * later as an assertion inside geomean/mean over zero measurements).
 */
std::vector<NamedNetwork> selectNetworks(std::vector<NamedNetwork> all,
                                         const BenchOptions &options);

/**
 * Finalize the run: write --json / --csv outputs. Every bench main()
 * returns this. Always 0 (failures are fatal).
 */
int finish(const BenchOptions &options);

} // namespace bench
} // namespace antsim

#endif // ANTSIM_BENCH_BENCH_COMMON_HH
