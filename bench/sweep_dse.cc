/**
 * @file
 * Extension bench: seconds-scale design-space sweep over the ANT
 * configuration grid (multiplier array n x n, FNIR window k, workload
 * density) driven by the analytical estimator (src/estimate).
 *
 * The sweep enumerates the full grid analytically -- n in {2,4,8},
 * k in {8,16,32}, 12 density points, 108 designs, all of ResNet18's
 * training phases each -- in milliseconds, computes the per-density
 * Pareto frontier on (cycles, energy), and escalates only a bounded
 * number of frontier candidates (--escalate, default 4) to the exact
 * cycle-level engine. It reports the wall-clock advantage
 * (estimate_speedup: mean seconds per simulated point over mean
 * seconds per estimated point; perf_baseline.json pins a floor) and
 * the estimator's cycle error on every escalated point.
 *
 * antsim-lint: allow-file(no-wall-clock-in-sim) -- this bench measures
 * the host wall-clock advantage of estimation over simulation by
 * design; no simulated statistic derives from the timings (design
 * ranking uses only deterministic estimated/simulated counters).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <vector>

#include "ant/ant_pe.hh"
#include "bench_common.hh"
#include "estimate/estimate.hh"
#include "sim/energy.hh"
#include "util/logging.hh"

using namespace antsim;

namespace {

/** One (n, k, density) grid point and everything measured on it. */
struct DesignPoint
{
    std::uint32_t n = 0;
    std::uint32_t k = 0;
    double sparsity = 0.0;
    std::uint64_t cycles = 0;
    double energyPj = 0.0;
    bool onFrontier = false;
    bool simulated = false;
    std::uint64_t simulatedCycles = 0;

    double
    density() const
    {
        return 1.0 - sparsity;
    }

    std::string
    label() const
    {
        std::ostringstream out;
        out << n << "x" << n << "/k" << k << "/d"
            << static_cast<int>(density() * 100 + 0.5) << "%";
        return out.str();
    }

    /** Relative cycle error of the estimate vs the exact engine. */
    double
    cycleError() const
    {
        if (simulatedCycles == 0)
            return 0.0;
        const double sim = static_cast<double>(simulatedCycles);
        const double est = static_cast<double>(cycles);
        return std::abs(est - sim) / sim;
    }
};

/**
 * Mark the Pareto frontier within each density slice: a design is kept
 * when no other design at the *same* workload density has both fewer
 * cycles and less energy (densities are workload scenarios, not design
 * choices, so designs only compete at equal density -- a global
 * frontier would collapse onto the sparsest workloads).
 */
void
markFrontier(std::vector<DesignPoint> &grid)
{
    for (DesignPoint &p : grid) {
        bool dominated = false;
        for (const DesignPoint &q : grid) {
            if (q.sparsity != p.sparsity)
                continue;
            if (q.cycles <= p.cycles && q.energyPj <= p.energyPj &&
                (q.cycles < p.cycles || q.energyPj < p.energyPj)) {
                dominated = true;
                break;
            }
        }
        p.onFrontier = !dominated;
    }
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

} // namespace

int
main(int argc, char **argv)
{
    Cli *cli = nullptr;
    const auto options =
        bench::parseOptions(argc, argv, {"escalate"}, &cli);
    bench::printHeader(
        "Design-space sweep: n x n array, FNIR k, density (estimated)",
        "analytical estimation explores 100+ design points in "
        "milliseconds; only the Pareto frontier pays for exact "
        "simulation");

    // The grid is analytical by design; tag the report so downstream
    // tooling never folds these numbers into measured headlines.
    bench::markEstimated();

    const std::int64_t escalate_limit = cli->getInt("escalate", 4);
    if (escalate_limit < 0)
        ANT_FATAL("flag --escalate must be non-negative, got ",
                  escalate_limit);

    const auto layers = resnet18Cifar();
    const EnergyModel energy;
    const std::uint32_t ns[] = {2, 4, 8};
    const std::uint32_t ks[] = {8, 16, 32};
    const double sparsities[] = {0.0,  0.1, 0.2, 0.3,   0.4,  0.5,
                                 0.6,  0.7, 0.8, 0.875, 0.9,  0.95};

    // Phase 1: enumerate the whole grid analytically.
    std::vector<DesignPoint> grid;
    const auto estimate_start = std::chrono::steady_clock::now();
    for (std::uint32_t n : ns) {
        for (std::uint32_t k : ks) {
            AntPeConfig cfg;
            cfg.n = n;
            cfg.k = k;
            const auto pe = estimate::PeDescriptor::of(cfg);
            for (double sparsity : sparsities) {
                const NetworkStats stats = estimate::estimateConvNetwork(
                    pe, layers, SparsityProfile::swat(sparsity),
                    options.run);
                DesignPoint point;
                point.n = n;
                point.k = k;
                point.sparsity = sparsity;
                point.cycles = stats.total.get(Counter::Cycles);
                point.energyPj = energy.totalPj(stats.total);
                grid.push_back(point);
            }
        }
    }
    const double estimate_seconds = secondsSince(estimate_start);
    markFrontier(grid);

    // Phase 2: escalate a bounded, evenly spread subset of the
    // frontier to the exact engine and measure the estimator's error.
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < grid.size(); ++i)
        if (grid[i].onFrontier)
            frontier.push_back(i);
    std::vector<std::size_t> escalated;
    const std::size_t budget = std::min<std::size_t>(
        static_cast<std::size_t>(escalate_limit), frontier.size());
    for (std::size_t j = 0; j < budget; ++j) {
        // Even spread over the frontier (first and last included).
        const std::size_t pick = budget == 1
            ? frontier.size() / 2
            : j * (frontier.size() - 1) / (budget - 1);
        escalated.push_back(frontier[pick]);
    }
    escalated.erase(std::unique(escalated.begin(), escalated.end()),
                    escalated.end());

    double simulate_seconds = 0.0;
    double worst_error = 0.0;
    for (std::size_t index : escalated) {
        DesignPoint &point = grid[index];
        AntPeConfig cfg;
        cfg.n = point.n;
        cfg.k = point.k;
        AntPe pe(cfg);
        const auto sim_start = std::chrono::steady_clock::now();
        const NetworkStats stats =
            runConvNetwork(pe, layers,
                           SparsityProfile::swat(point.sparsity),
                           options.run);
        simulate_seconds += secondsSince(sim_start);
        point.simulated = true;
        point.simulatedCycles = stats.total.get(Counter::Cycles);
        worst_error = std::max(worst_error, point.cycleError());
    }

    // Wall-clock advantage: mean seconds per point in each mode. Zero
    // (sentinel: unmeasurable) when escalation is disabled.
    const double est_per_point = estimate_seconds / grid.size();
    const double sim_per_point = escalated.empty()
        ? 0.0
        : simulate_seconds / escalated.size();
    const double speedup = est_per_point > 0.0 && sim_per_point > 0.0
        ? sim_per_point / est_per_point
        : 0.0;

    Table table({"Design", "est cycles", "est energy (uJ)", "sim cycles",
                 "cycle err"});
    Json frontier_json = Json::array();
    for (std::size_t index : frontier) {
        const DesignPoint &point = grid[index];
        table.addRow(
            {point.label(), std::to_string(point.cycles),
             Table::num(point.energyPj / 1e6, 2),
             point.simulated ? std::to_string(point.simulatedCycles)
                             : std::string("-"),
             point.simulated ? Table::percent(point.cycleError(), 1)
                             : std::string("-")});
        Json row = Json::object();
        row.set("label", point.label());
        row.set("n", static_cast<std::uint64_t>(point.n));
        row.set("k", static_cast<std::uint64_t>(point.k));
        row.set("density", point.density());
        row.set("cycles", point.cycles);
        row.set("energy_pj", point.energyPj);
        if (point.simulated) {
            row.set("simulated_cycles", point.simulatedCycles);
            row.set("cycle_error", point.cycleError());
        }
        frontier_json.push(std::move(row));
    }
    bench::emitTable(table, options);

    std::printf("grid: %zu points estimated in %.3fs (%.2f ms/point)\n",
                grid.size(), estimate_seconds, est_per_point * 1e3);
    if (!escalated.empty()) {
        std::printf("frontier: %zu points, %zu simulated in %.3fs "
                    "(%.2f s/point); estimate advantage %.0fx, worst "
                    "cycle error %.1f%%\n",
                    frontier.size(), escalated.size(), simulate_seconds,
                    sim_per_point, speedup, worst_error * 100);
    }

    bench::reportMetric("grid_points",
                        static_cast<std::uint64_t>(grid.size()));
    bench::reportMetric("frontier_points",
                        static_cast<std::uint64_t>(frontier.size()));
    bench::reportMetric("simulated_points",
                        static_cast<std::uint64_t>(escalated.size()));
    bench::reportMetric("estimate_seconds", estimate_seconds);
    bench::reportMetric("simulate_seconds", simulate_seconds);
    bench::reportMetric("estimate_speedup", speedup);
    bench::reportMetric("worst_cycle_error", worst_error);

    Json detail = Json::object();
    detail.set("design_points",
               static_cast<std::uint64_t>(grid.size()));
    detail.set("estimate_seconds", estimate_seconds);
    detail.set("simulate_seconds", simulate_seconds);
    detail.set("estimate_speedup", speedup);
    detail.set("frontier", std::move(frontier_json));
    bench::report().setEstimate(std::move(detail));

    return bench::finish(options);
}
