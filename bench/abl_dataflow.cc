/**
 * @file
 * Extension bench (Sec. 4.6): ANT under the image-stationary and the
 * kernel-stationary dataflows. The paper states ANT is dataflow-
 * agnostic -- kernel-stationary swaps the operand buffers and replaces
 * the s/r range computations with x/y ranges. Both should beat SCNN+,
 * with the better choice depending on which operand is denser.
 */

#include <cstdio>

#include "ant/ant_pe.hh"
#include "bench_common.hh"
#include "scnn/scnn_pe.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Sec. 4.6 extension: image- vs kernel-stationary ANT dataflow "
        "(ResNet18)",
        "ANT is dataflow-agnostic: RCP anticipation helps either way");

    const auto layers = resnet18Cifar();
    const EnergyModel energy;
    ScnnPe scnn;

    Table table({"Sparsity", "image-stationary speedup",
                 "kernel-stationary speedup", "img-stat energy red.",
                 "ker-stat energy red."});
    for (double sparsity : {0.5, 0.9}) {
        const auto profile = SparsityProfile::swat(sparsity);
        const auto scnn_stats =
            bench::runConv(scnn, layers, profile, options);

        AntPeConfig img_cfg;
        AntPe img_pe(img_cfg);
        AntPeConfig ker_cfg;
        ker_cfg.dataflow = AntDataflow::KernelStationary;
        AntPe ker_pe(ker_cfg);

        const auto img_stats =
            bench::runConv(img_pe, layers, profile, options);
        const auto ker_stats =
            bench::runConv(ker_pe, layers, profile, options);
        char label[16];
        std::snprintf(label, sizeof(label), "%.0f%%", sparsity * 100);
        table.addRow({label,
                      Table::times(speedupOf(scnn_stats, img_stats)),
                      Table::times(speedupOf(scnn_stats, ker_stats)),
                      Table::times(energyRatioOf(scnn_stats, img_stats,
                                                 energy)),
                      Table::times(energyRatioOf(scnn_stats, ker_stats,
                                                 energy))});
    }
    bench::emitTable(table, options);
    return bench::finish(options);
}
