/**
 * @file
 * Design-space exploration: sweep the ANT PE's (n, k) parameters and
 * the load-balancing policy on one network, reporting speedup, energy,
 * and the FNIR's area cost (Sec. 7.3, 7.5-7.6 combined).
 *
 * Flags: --sparsity S (default 0.9), --samples N, --seed S
 */

#include <cstdio>
#include <sstream>

#include "ant/ant_pe.hh"
#include "ant/area_model.hh"
#include "scnn/scnn_pe.hh"
#include "sim/energy.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workload/runner.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv, {"sparsity", "samples", "seed"});
    const double sparsity = cli.getDouble("sparsity", 0.9);
    RunConfig config;
    config.sampleCap = static_cast<std::uint32_t>(cli.getInt("samples", 8));
    config.seed = static_cast<std::uint64_t>(cli.getInt("seed", 42));

    const auto layers = resnet18Cifar();
    const auto profile = SparsityProfile::swat(sparsity);

    std::printf("ANT design-space sweep on ResNet18 at %.0f%% sparsity\n\n",
                sparsity * 100.0);

    Table table({"n", "k", "Speedup vs SCNN+(n)", "Energy reduction",
                 "FNIR area (mm^2)", "FNIR critical path"});
    for (std::uint32_t n : {2u, 4u, 8u}) {
        ScnnPeConfig scfg;
        scfg.n = n;
        ScnnPe scnn(scfg);
        const auto scnn_stats =
            runConvNetwork(scnn, layers, profile, config);
        for (std::uint32_t k : {8u, 16u, 32u}) {
            if (k < n)
                continue;
            AntPeConfig acfg;
            acfg.n = n;
            acfg.k = k;
            AntPe ant(acfg);
            const auto ant_stats =
                runConvNetwork(ant, layers, profile, config);
            const auto area = estimateFnirArea(n, k);
            std::ostringstream area_str;
            area_str.precision(4);
            area_str << area.areaMm2;
            table.addRow(
                {std::to_string(n), std::to_string(k),
                 Table::times(speedupOf(scnn_stats, ant_stats)),
                 Table::times(energyRatioOf(scnn_stats, ant_stats)),
                 area_str.str(),
                 std::to_string(area.criticalPathGates) + " gates"});
        }
    }
    table.print();

    std::printf("\ntakeaway (Sec. 7.6): area and critical path grow with "
                "n and k while the speedup saturates -- beyond the "
                "default 4x4/k=16 point it is better to add PEs than to "
                "grow the PE.\n");
    return 0;
}
