/**
 * @file
 * Per-phase diagnostics: simulate a network on ANT and SCNN+ and print
 * cycles/energy/mult counters broken down by training phase. This is
 * the tool for understanding *where* ANT's gains come from (the G_A*A
 * update phase) and where its overheads sit (small dense kernels).
 *
 * Flags: --network resnet18|vgg16|densenet121|wrn|resnet50
 *        --wsp/--asp/--gsp  per-tensor sparsities [default SWAT 90%]
 *        --samples N, --seed S
 */

#include <cstdio>
#include <string>

#include "ant/ant_pe.hh"
#include "scnn/scnn_pe.hh"
#include "sim/energy.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workload/runner.hh"

using namespace antsim;

namespace {

std::vector<ConvLayer>
pickNetwork(const std::string &name)
{
    if (name == "resnet18")
        return resnet18Cifar();
    if (name == "resnet18-imagenet")
        return resnet18Imagenet();
    if (name == "vgg16")
        return vgg16Cifar();
    if (name == "densenet121")
        return densenet121Cifar();
    if (name == "wrn")
        return wrn16x8Cifar();
    if (name == "resnet50")
        return resnet50Imagenet();
    ANT_FATAL("unknown network '", name, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv, {"network", "wsp", "asp", "gsp", "samples",
                               "seed"});
    const auto layers = pickNetwork(cli.get("network", "resnet18"));
    SparsityProfile profile = SparsityProfile::swat(0.9);
    profile.weight = cli.getDouble("wsp", profile.weight);
    profile.act = cli.getDouble("asp", profile.act);
    profile.grad = cli.getDouble("gsp", profile.grad);

    RunConfig config;
    config.sampleCap =
        static_cast<std::uint32_t>(cli.getInt("samples", 16));
    config.seed = static_cast<std::uint64_t>(cli.getInt("seed", 42));

    std::printf("sparsities: W %.0f%% / A %.0f%% / G_A %.0f%%\n\n",
                profile.weight * 100, profile.act * 100,
                profile.grad * 100);

    ScnnPe scnn;
    AntPe ant;
    const EnergyModel energy;
    const auto scnn_stats = runConvNetwork(scnn, layers, profile, config);
    const auto ant_stats = runConvNetwork(ant, layers, profile, config);

    Table table({"Phase", "Model", "PE cycles", "mults", "valid", "RCP",
                 "avoided", "energy (uJ)"});
    const std::pair<const char *, const NetworkStats *> models[] = {
        {"SCNN+", &scnn_stats}, {"ANT", &ant_stats}};
    for (unsigned pi = 0; pi < 3; ++pi) {
        for (const auto &[model_name, stats] : models) {
            CounterSet phase_total;
            for (const auto &layer : stats->layers)
                phase_total += layer.phases[pi].counters;
            table.addRow(
                {phaseName(static_cast<TrainingPhase>(pi)), model_name,
                 std::to_string(phase_total.get(Counter::Cycles)),
                 std::to_string(phase_total.get(Counter::MultsExecuted)),
                 std::to_string(phase_total.get(Counter::MultsValid)),
                 std::to_string(phase_total.get(Counter::MultsRcp)),
                 std::to_string(phase_total.get(Counter::RcpsAvoided)),
                 Table::num(energy.totalPj(phase_total) / 1e6, 2)});
        }
    }
    table.print();

    std::printf("\nenergy breakdown (uJ):\n");
    for (const auto &[model_name, stats] : models) {
        const EnergyBreakdown b = energy.evaluate(stats->total);
        std::printf("  %-6s mult %8.1f  accum %8.1f  index %8.1f  sram "
                    "%8.1f  total %8.1f\n",
                    model_name, b.multiplyPj / 1e6, b.accumulatePj / 1e6,
                    b.indexLogicPj / 1e6, b.sramPj / 1e6,
                    b.totalPj() / 1e6);
        std::printf("         sram detail: value %llu idx %llu rowptr "
                    "%llu writes %llu (64-bit accesses)\n",
                    static_cast<unsigned long long>(
                        stats->total.get(Counter::SramValueReads)),
                    static_cast<unsigned long long>(
                        stats->total.get(Counter::SramIndexReads)),
                    static_cast<unsigned long long>(
                        stats->total.get(Counter::SramRowPtrReads)),
                    static_cast<unsigned long long>(
                        stats->total.get(Counter::SramWrites)));
    }

    std::printf("\noverall: speedup %.2fx, energy reduction %.2fx, RCPs "
                "avoided %.1f%%\n",
                speedupOf(scnn_stats, ant_stats),
                energyRatioOf(scnn_stats, ant_stats, energy),
                ant_stats.rcpAvoidedFraction() * 100.0);
    return 0;
}
