/**
 * @file
 * Simulate one full sparse-training step of ResNet18 (all three
 * Backprop phases of every convolution layer) on ANT and on the
 * SCNN-like baseline, and print a per-layer report.
 *
 * Flags: --sparsity S (target, default 0.9), --samples N, --seed S,
 *        --imagenet (use the ImageNet-resolution variant)
 */

#include <cstdio>

#include "ant/ant_pe.hh"
#include "scnn/scnn_pe.hh"
#include "sim/energy.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workload/runner.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv, {"sparsity", "samples", "seed", "imagenet"});
    const double sparsity = cli.getDouble("sparsity", 0.9);
    RunConfig config;
    config.sampleCap = static_cast<std::uint32_t>(cli.getInt("samples", 8));
    config.seed = static_cast<std::uint64_t>(cli.getInt("seed", 42));

    const auto layers =
        cli.getBool("imagenet") ? resnet18Imagenet() : resnet18Cifar();
    const auto profile = SparsityProfile::swat(sparsity);

    std::printf("simulating one training step of ResNet18 (%s, %zu conv "
                "layers) at %.0f%% target sparsity...\n\n",
                cli.getBool("imagenet") ? "ImageNet" : "CIFAR",
                layers.size(), sparsity * 100.0);

    ScnnPe scnn;
    AntPe ant;
    const EnergyModel energy;
    const auto scnn_stats = runConvNetwork(scnn, layers, profile, config);
    const auto ant_stats = runConvNetwork(ant, layers, profile, config);

    Table table({"Layer", "SCNN+ PE cycles", "ANT PE cycles", "Speedup",
                 "ANT RCPs avoided"});
    for (std::size_t li = 0; li < scnn_stats.layers.size(); ++li) {
        CounterSet scnn_layer;
        CounterSet ant_layer;
        std::uint64_t avoided = 0;
        std::uint64_t suffered = 0;
        for (unsigned pi = 0; pi < 3; ++pi) {
            scnn_layer += scnn_stats.layers[li].phases[pi].counters;
            ant_layer += ant_stats.layers[li].phases[pi].counters;
            avoided += ant_stats.layers[li].phases[pi].counters.get(
                Counter::RcpsAvoided);
            suffered += ant_stats.layers[li].phases[pi].counters.get(
                Counter::MultsRcp);
        }
        const auto sc = scnn_layer.get(Counter::Cycles);
        const auto ac = ant_layer.get(Counter::Cycles);
        table.addRow(
            {scnn_stats.layers[li].name, std::to_string(sc),
             std::to_string(ac),
             Table::times(static_cast<double>(sc) /
                          static_cast<double>(ac)),
             avoided + suffered == 0
                 ? std::string("-")
                 : Table::percent(static_cast<double>(avoided) /
                                      static_cast<double>(avoided +
                                                          suffered),
                                  1)});
    }
    table.print();

    std::printf("\naccelerator cycles (64 PEs, perfect balance): SCNN+ "
                "%llu, ANT %llu\n",
                static_cast<unsigned long long>(
                    scnn_stats.acceleratorCycles(64)),
                static_cast<unsigned long long>(
                    ant_stats.acceleratorCycles(64)));
    std::printf("speedup %.2fx, energy reduction %.2fx, RCPs avoided "
                "%.1f%%\n",
                speedupOf(scnn_stats, ant_stats),
                energyRatioOf(scnn_stats, ant_stats, energy),
                ant_stats.rcpAvoidedFraction() * 100.0);
    return 0;
}
