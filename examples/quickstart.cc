/**
 * @file
 * Quickstart: simulate one sparse convolution on the ANT PE and the
 * SCNN-like baseline, verify both against the dense reference, and
 * print the cycle/energy comparison.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "ant/ant_pe.hh"
#include "conv/dense_conv.hh"
#include "scnn/scnn_pe.hh"
#include "sim/energy.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

using namespace antsim;

int
main()
{
    // An update-phase-shaped convolution (G_A * A): a large 14x14
    // gradient kernel slides over a 16x16 activation image, producing
    // the 3x3 weight gradient. This is where RCPs dominate (Table 2).
    const ProblemSpec spec = ProblemSpec::conv(14, 14, 16, 16);
    std::printf("problem: %s\n", spec.toString().c_str());
    std::printf("outer-product efficiency (dense): %.2f%%\n\n",
                spec.outerProductEfficiency() * 100.0);

    // Synthesize 90%-sparse operands.
    Rng rng(42);
    const Dense2d<float> kernel_plane = bernoulliPlane(14, 14, 0.9, rng);
    const Dense2d<float> image_plane = bernoulliPlane(16, 16, 0.9, rng);
    const CsrMatrix kernel = CsrMatrix::fromDense(kernel_plane);
    const CsrMatrix image = CsrMatrix::fromDense(image_plane);
    std::printf("kernel nnz %u / %u, image nnz %u / %u\n\n", kernel.nnz(),
                14 * 14, image.nnz(), 16 * 16);

    // Run both PE models.
    ScnnPe scnn;
    AntPe ant;
    const PeResult scnn_result = scnn.runPair(spec, kernel, image, true);
    const PeResult ant_result = ant.runPair(spec, kernel, image, true);

    // Both must equal the dense reference convolution.
    const Dense2d<double> reference =
        referenceExecute(spec, kernel_plane, image_plane);
    std::printf("max |SCNN - reference| = %.2e\n",
                maxAbsDiff(scnn_result.output, reference));
    std::printf("max |ANT  - reference| = %.2e\n\n",
                maxAbsDiff(ant_result.output, reference));

    // Compare the models.
    const EnergyModel energy;
    const auto report = [&](const char *name, const PeResult &r) {
        const CounterSet &c = r.counters;
        std::printf("%-10s cycles %6llu  mults %6llu (valid %llu, RCP "
                    "%llu, avoided %llu)  energy %.1f pJ\n",
                    name,
                    static_cast<unsigned long long>(c.get(Counter::Cycles)),
                    static_cast<unsigned long long>(
                        c.get(Counter::MultsExecuted)),
                    static_cast<unsigned long long>(
                        c.get(Counter::MultsValid)),
                    static_cast<unsigned long long>(
                        c.get(Counter::MultsRcp)),
                    static_cast<unsigned long long>(
                        c.get(Counter::RcpsAvoided)),
                    energy.totalPj(c));
    };
    report("SCNN-like", scnn_result);
    report("ANT", ant_result);

    const double speedup =
        static_cast<double>(scnn_result.counters.get(Counter::Cycles)) /
        static_cast<double>(ant_result.counters.get(Counter::Cycles));
    std::printf("\nANT speedup on this pair: %.2fx\n", speedup);
    return 0;
}
