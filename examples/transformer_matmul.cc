/**
 * @file
 * ANT's matmul mode (Sec. 5) on the transformer / RNN projection
 * layers: demonstrates the CSC image traversal, the FNIR bypass, and
 * the near-total RCP elimination on fully-connected training matmuls.
 *
 * Flags: --sparsity S (default 0.9), --seed S, --rnn (use the IMDB RNN
 *        layer set instead of the transformer)
 */

#include <cstdio>

#include "ant/ant_pe.hh"
#include "conv/dense_conv.hh"
#include "scnn/scnn_pe.hh"
#include "sim/energy.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workload/runner.hh"

using namespace antsim;

int
main(int argc, char **argv)
{
    const Cli cli(argc, argv, {"sparsity", "seed", "rnn"});
    const double sparsity = cli.getDouble("sparsity", 0.9);
    const auto layers =
        cli.getBool("rnn") ? rnnLayers() : transformerLayers();

    std::printf("ANT matmul mode on the %s layers at %.0f%% sparsity\n\n",
                cli.getBool("rnn") ? "IMDB RNN" : "transformer",
                sparsity * 100.0);

    AntPe ant;
    ScnnPe scnn;
    const EnergyModel energy;

    Table table({"Layer", "HxW * RxS", "dense efficiency",
                 "ANT RCPs avoided", "Speedup vs SCNN+"});
    Rng seed_rng(static_cast<std::uint64_t>(cli.getInt("seed", 42)));
    for (const auto &layer : layers) {
        Rng rng = seed_rng.split();
        const PlanePair pair = makeMatmulPair(
            layer, sparsity, SparsifyMethod::TopK, rng);

        // Functional check on the first (smallest) chunk-free layers.
        PeResult ant_result =
            ant.runPair(pair.spec, pair.kernel, pair.image,
                        /*collect_output=*/pair.spec.outH() *
                                pair.spec.outW() <
                            100000);
        if (ant_result.output.size() > 0) {
            const auto ref = referenceExecute(
                pair.spec, pair.kernel.toDense(), pair.image.toDense());
            ANT_ASSERT(maxAbsDiff(ant_result.output, ref) < 1e-6,
                       "functional mismatch on ", layer.name);
        }
        const PeResult scnn_result =
            scnn.runPair(pair.spec, pair.kernel, pair.image, false);

        const auto avoided =
            ant_result.counters.get(Counter::RcpsAvoided);
        const auto suffered = ant_result.counters.get(Counter::MultsRcp);
        char dims[64];
        std::snprintf(dims, sizeof(dims), "%ux%u * %ux%u", layer.imageH,
                      layer.imageW, layer.kernelR, layer.kernelS);
        table.addRow(
            {layer.name, dims,
             Table::percent(pair.spec.outerProductEfficiency()),
             Table::percent(static_cast<double>(avoided) /
                                static_cast<double>(avoided + suffered),
                            2),
             Table::times(
                 static_cast<double>(
                     scnn_result.counters.get(Counter::Cycles)) /
                 static_cast<double>(
                     ant_result.counters.get(Counter::Cycles)))});
    }
    table.print();

    std::printf("\nnote: SCNN-like outer products waste ~ (1 - 1/R) of "
                "their multiplies on matmuls; ANT's CSC grouping plus the "
                "r = x row window (Eq. 15) removes nearly all of it.\n");
    return 0;
}
