/**
 * @file
 * Inner-product baseline accelerators (Sec. 6.1, Sec. 7.7).
 *
 * The paper compares ANT against two inner-product designs configured
 * with 16 multipliers per tile and enough tiles to match ANT's total
 * multiplier count:
 *
 *  - DaDianNao-like: dense. Executes every MAC of the convolution
 *    (R*S*Hout*Wout per plane pair), including zero operands.
 *  - TensorDash-like: exploits *one-sided* dynamic sparsity. Zero MACs
 *    of the sparse operand are skipped when the lookahead/lookaside
 *    packing window can promote a later non-zero into the slot; the
 *    paper observes ~2.25x over dense at 90% sparsity because packing,
 *    not sparsity, becomes the limit.
 *
 * Both are modeled at MAC-count granularity: a visible-window depth of
 * 3 (lookahead 2) bounds compression at 3x, and a scheduler efficiency
 * of 0.75 accounts for fragmentation -- together calibrated to the
 * ~2.25x the paper reports for TensorDash on these workloads. Neither
 * design suffers RCPs (inner products map every MAC to its output),
 * but neither can exploit the second operand's sparsity, which is
 * exactly the Sec. 7.7 comparison.
 */

#ifndef ANTSIM_BASELINES_INNER_PRODUCT_HH
#define ANTSIM_BASELINES_INNER_PRODUCT_HH

#include "sim/pe_model.hh"

namespace antsim {

/** Shared configuration of the inner-product tiles. */
struct InnerProductConfig
{
    /** Multipliers per tile (paper: 16). */
    std::uint32_t multipliers = 16;
    /** Pipeline start-up cost per chunk pair. */
    std::uint32_t startupCycles = 5;
    /** Visible packing window depth (lookahead 2 => 3 rows). */
    std::uint32_t packWindow = 3;
    /** Fraction of ideal packing the scheduler achieves. */
    double packEfficiency = 0.75;
};

/** Dense inner-product tile (DaDianNao-like). */
class DenseInnerProductPe : public PeModel
{
  public:
    explicit DenseInnerProductPe(
        const InnerProductConfig &config = InnerProductConfig{});

    std::string name() const override { return "DaDianNao-like"; }

    std::uint32_t
    multiplierCount() const override
    {
        return config_.multipliers;
    }

    std::unique_ptr<PeModel>
    clone() const override
    {
        return std::make_unique<DenseInnerProductPe>(config_);
    }

    bool usesCompressedOperands() const override { return false; }

    PeResult runPair(const ProblemSpec &spec, const CsrMatrix &kernel,
                     const CsrMatrix &image, bool collect_output) override;

    PeResult runStack(const ProblemSpec &spec,
                      const std::vector<const CsrMatrix *> &kernels,
                      const CsrMatrix &image, bool collect_output) override;

    /** Static parameters (read by the analytical estimator). */
    const InnerProductConfig &config() const { return config_; }

  private:
    InnerProductConfig config_;
};

/**
 * One-sided sparse inner-product tile (TensorDash-like). Skips zero
 * MACs of the *image* operand (dynamic side); the kernel operand is
 * processed densely.
 */
class TensorDashPe : public PeModel
{
  public:
    explicit TensorDashPe(
        const InnerProductConfig &config = InnerProductConfig{});

    std::string name() const override { return "TensorDash-like"; }

    std::uint32_t
    multiplierCount() const override
    {
        return config_.multipliers;
    }

    std::unique_ptr<PeModel>
    clone() const override
    {
        return std::make_unique<TensorDashPe>(config_);
    }

    bool usesCompressedOperands() const override { return false; }

    PeResult runPair(const ProblemSpec &spec, const CsrMatrix &kernel,
                     const CsrMatrix &image, bool collect_output) override;

    PeResult runStack(const ProblemSpec &spec,
                      const std::vector<const CsrMatrix *> &kernels,
                      const CsrMatrix &image, bool collect_output) override;

    /** Static parameters (read by the analytical estimator). */
    const InnerProductConfig &config() const { return config_; }

  private:
    InnerProductConfig config_;
};

/**
 * Exact count of convolution MACs whose image operand is non-zero:
 * sum over image non-zeros of the number of (s, r) kernel positions
 * pairing with them, computed with per-axis position-count tables.
 */
std::uint64_t nonzeroImageMacs(const ProblemSpec &spec,
                               const CsrMatrix &image);

} // namespace antsim

#endif // ANTSIM_BASELINES_INNER_PRODUCT_HH
