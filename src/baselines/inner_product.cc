#include "inner_product.hh"

#include <algorithm>
#include <cmath>

#include "conv/dense_conv.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "verify/audit_hooks.hh"

namespace antsim {

namespace {

/**
 * Per-axis count of valid kernel positions for each image coordinate:
 * positions[i] = #{k : (i - dil*k) >= 0, divisible by stride,
 *                     quotient < out_dim, k < kernel_dim}.
 */
std::vector<std::uint32_t>
axisPositionCounts(std::uint32_t image_dim, std::uint32_t kernel_dim,
                   std::uint32_t out_dim, std::uint32_t stride,
                   std::uint32_t dil)
{
    std::vector<std::uint32_t> counts(image_dim, 0);
    for (std::uint32_t k = 0; k < kernel_dim; ++k) {
        for (std::uint32_t o = 0; o < out_dim; ++o) {
            const std::uint64_t i =
                static_cast<std::uint64_t>(stride) * o +
                static_cast<std::uint64_t>(dil) * k;
            if (i < image_dim)
                ++counts[static_cast<std::size_t>(i)];
        }
    }
    return counts;
}

/** Charge dense-format SRAM traffic: 4 x 16-bit values per access. */
void
chargeDenseReads(std::uint64_t elements, CounterSet &counters)
{
    counters.add(Counter::SramValueReads, (elements + 3) / 4);
}

/** Sum a kernel stack into one dense plane (for functional checks). */
Dense2d<float>
sumKernels(const std::vector<const CsrMatrix *> &kernels)
{
    Dense2d<float> sum = kernels.front()->toDense();
    for (std::size_t i = 1; i < kernels.size(); ++i) {
        const Dense2d<float> d = kernels[i]->toDense();
        for (std::size_t j = 0; j < sum.data().size(); ++j)
            sum.data()[j] += d.data()[j];
    }
    return sum;
}

} // namespace

std::uint64_t
nonzeroImageMacs(const ProblemSpec &spec, const CsrMatrix &image)
{
    ANT_ASSERT(spec.kind() == ProblemSpec::Kind::Conv,
               "inner-product baselines model convolutions only");
    const auto x_counts =
        axisPositionCounts(spec.imageW(), spec.kernelW(), spec.outW(),
                           spec.stride(), spec.dilation());
    const auto y_counts =
        axisPositionCounts(spec.imageH(), spec.kernelH(), spec.outH(),
                           spec.stride(), spec.dilation());

    std::uint64_t macs = 0;
    const auto &row_ptr = image.rowPtr();
    const auto &columns = image.columns();
    for (std::uint32_t y = 0; y < image.height(); ++y) {
        const std::uint64_t yc = y_counts[y];
        if (yc == 0)
            continue;
        for (std::uint32_t i = row_ptr[y]; i < row_ptr[y + 1]; ++i)
            macs += yc * x_counts[columns[i]];
    }
    return macs;
}

DenseInnerProductPe::DenseInnerProductPe(const InnerProductConfig &config)
    : config_(config)
{
    ANT_ASSERT(config_.multipliers > 0, "tile needs multipliers");
}

PeResult
DenseInnerProductPe::runPair(const ProblemSpec &spec,
                             const CsrMatrix &kernel, const CsrMatrix &image,
                             bool collect_output)
{
    return runStack(spec, {&kernel}, image, collect_output);
}

PeResult
DenseInnerProductPe::runStack(const ProblemSpec &spec,
                              const std::vector<const CsrMatrix *> &kernels,
                              const CsrMatrix &image, bool collect_output)
{
    ANT_ASSERT(!kernels.empty(), "kernel stack must not be empty");
    PeResult result;
    CounterSet &c = result.counters;

    // The dense datapath executes every MAC of every kernel plane: all
    // of them are useful (inner products have no RCPs), but zero
    // operands are multiplied anyway.
    const std::uint64_t macs =
        spec.denseValidProducts() * kernels.size();
    c.add(Counter::MultsExecuted, macs);
    c.add(Counter::MultsValid, macs);
    c.add(Counter::AccumAdds, macs);

    // IM2COL-style streaming: each MAC reads one kernel and one image
    // element in dense format.
    chargeDenseReads(2 * macs, c);
    // One output write per output element per kernel plane.
    c.add(Counter::SramWrites,
          kernels.size() *
              ((static_cast<std::uint64_t>(spec.outH()) * spec.outW() +
                3) /
               4));

    const std::uint64_t cycles = config_.startupCycles +
        (macs + config_.multipliers - 1) / config_.multipliers;
    c.add(Counter::StartupCycles, config_.startupCycles);
    c.add(Counter::ActiveCycles, cycles - config_.startupCycles);
    c.set(Counter::Cycles, cycles);
    if (auto *rec = obs::recorder()) {
        rec->advance(obs::SpanKind::Startup, config_.startupCycles);
        rec->advance(obs::SpanKind::Active, cycles - config_.startupCycles);
    }

    if (collect_output) {
        result.output =
            referenceExecute(spec, sumKernels(kernels), image.toDense());
    }
    verify::auditPeRunOrPanic("DaDianNao-like PE", spec, kernels, image,
                              result, ProductSpace::InnerProduct);
    return result;
}

TensorDashPe::TensorDashPe(const InnerProductConfig &config)
    : config_(config)
{
    ANT_ASSERT(config_.packWindow >= 1, "pack window must be at least 1");
    ANT_ASSERT(config_.packEfficiency > 0.0 &&
               config_.packEfficiency <= 1.0,
               "pack efficiency must be in (0, 1]");
}

PeResult
TensorDashPe::runPair(const ProblemSpec &spec, const CsrMatrix &kernel,
                      const CsrMatrix &image, bool collect_output)
{
    return runStack(spec, {&kernel}, image, collect_output);
}

PeResult
TensorDashPe::runStack(const ProblemSpec &spec,
                       const std::vector<const CsrMatrix *> &kernels,
                       const CsrMatrix &image, bool collect_output)
{
    ANT_ASSERT(!kernels.empty(), "kernel stack must not be empty");
    PeResult result;
    CounterSet &c = result.counters;

    const std::uint64_t dense_macs =
        spec.denseValidProducts() * kernels.size();
    const std::uint64_t nz_macs =
        nonzeroImageMacs(spec, image) * kernels.size();

    // Only the non-zero-image MACs execute; they are all useful.
    c.add(Counter::MultsExecuted, nz_macs);
    c.add(Counter::MultsValid, nz_macs);
    c.add(Counter::AccumAdds, nz_macs);
    c.set(Counter::RcpsAvoided, 0);

    // Packing model: compression is bounded by the visible window
    // depth, then derated by scheduler efficiency (see file header).
    const double m = static_cast<double>(config_.multipliers);
    const double window_bound =
        static_cast<double>(dense_macs) /
        (m * static_cast<double>(config_.packWindow));
    const double work_bound = static_cast<double>(nz_macs) / m;
    const double compute_cycles =
        std::max(window_bound, work_bound) / config_.packEfficiency;

    // Single rounding site: packEfficiency is a fractional model
    // parameter, so the cycle bound is inherently float-domain; it is
    // rounded to an integer exactly once here, and every counter below
    // derives from this value in integer arithmetic (previously the
    // ceil was taken independently at two sites).
    // antsim-lint: allow(counter-exactness) -- one documented rounding
    const std::uint64_t compute_cycle_count =
        static_cast<std::uint64_t>(std::ceil(compute_cycles));
    const std::uint64_t cycles =
        config_.startupCycles + compute_cycle_count;
    c.add(Counter::StartupCycles, config_.startupCycles);
    c.add(Counter::ActiveCycles, cycles - config_.startupCycles);
    c.set(Counter::Cycles, cycles);
    if (auto *rec = obs::recorder()) {
        rec->advance(obs::SpanKind::Startup, config_.startupCycles);
        rec->advance(obs::SpanKind::Active, cycles - config_.startupCycles);
    }

    // Traffic: the sparse (image) side streams compressed value+index
    // pairs; the dense (kernel) side streams every scheduled slot.
    c.add(Counter::SramValueReads, (nz_macs + 1) / 2);
    c.add(Counter::SramIndexReads, (nz_macs + 1) / 2);
    chargeDenseReads(compute_cycle_count * config_.multipliers, c);
    c.add(Counter::SramWrites,
          kernels.size() *
              ((static_cast<std::uint64_t>(spec.outH()) * spec.outW() +
                3) /
               4));

    if (collect_output) {
        result.output =
            referenceExecute(spec, sumKernels(kernels), image.toDense());
    }
    verify::auditPeRunOrPanic("TensorDash-like PE", spec, kernels, image,
                              result, ProductSpace::InnerProduct);
    return result;
}

} // namespace antsim
