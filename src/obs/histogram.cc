#include "histogram.hh"

#include "util/logging.hh"

namespace antsim {
namespace obs {

namespace {

/** floor(log2(v)) for v > 0. */
std::uint32_t
floorLog2(std::uint64_t v)
{
    std::uint32_t log = 0;
    while (v >>= 1)
        ++log;
    return log;
}

constexpr HistogramSpec kSpecs[kNumHists] = {
    // TaskCycles: log2 buckets up to 2^38 cycles, far above any single
    // chunk-pair task the 8 KB buffers admit.
    {HistogramSpec::Kind::Log2, 0, 1, 40},
    // ImageRowNnz: log2 buckets; a row holds at most the image width.
    {HistogramSpec::Kind::Log2, 0, 1, 16},
    // RcpPermille: 50-permille buckets over [0, 1000].
    {HistogramSpec::Kind::Linear, 0, 50, 21},
    // FnirValidPartners: one bucket per count, 0..15 then overflow.
    {HistogramSpec::Kind::Linear, 0, 1, 17},
};

constexpr const char *kNames[kNumHists] = {
    "task_cycles",
    "image_row_nnz",
    "rcp_permille",
    "fnir_valid_partners",
};

} // namespace

const char *
histName(HistId id)
{
    const auto index = static_cast<std::size_t>(id);
    ANT_ASSERT(index < kNumHists, "histogram id out of range");
    return kNames[index];
}

const HistogramSpec &
histSpec(HistId id)
{
    const auto index = static_cast<std::size_t>(id);
    ANT_ASSERT(index < kNumHists, "histogram id out of range");
    return kSpecs[index];
}

std::uint32_t
Histogram::bucketFor(std::uint64_t value) const
{
    std::uint32_t bucket = 0;
    if (spec_.kind == HistogramSpec::Kind::Log2) {
        // Bucket 0 holds {0}; bucket i >= 1 holds [2^(i-1), 2^i).
        bucket = value == 0 ? 0 : floorLog2(value) + 1;
    } else {
        bucket = value <= spec_.lo
            ? 0
            : static_cast<std::uint32_t>(
                  (value - spec_.lo) / spec_.binWidth);
    }
    return bucket < spec_.bins ? bucket : spec_.bins - 1;
}

Histogram &
Histogram::operator+=(const Histogram &other)
{
    ANT_ASSERT(bins_.size() == other.bins_.size(),
               "merging histograms with different layouts");
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ > 0) {
        min_ = other.min_ < min_ ? other.min_ : min_;
        max_ = other.max_ > max_ ? other.max_ : max_;
    }
    return *this;
}

bool
Histogram::operator==(const Histogram &other) const
{
    return bins_ == other.bins_ && count_ == other.count_ &&
        sum_ == other.sum_ && min() == other.min() && max() == other.max();
}

HistogramRegistry::HistogramRegistry()
{
    hists_.reserve(kNumHists);
    for (std::size_t i = 0; i < kNumHists; ++i)
        hists_.emplace_back(kSpecs[i]);
}

HistogramRegistry &
HistogramRegistry::operator+=(const HistogramRegistry &other)
{
    for (std::size_t i = 0; i < kNumHists; ++i)
        hists_[i] += other.hists_[i];
    return *this;
}

bool
HistogramRegistry::operator==(const HistogramRegistry &other) const
{
    for (std::size_t i = 0; i < kNumHists; ++i) {
        if (!(hists_[i] == other.hists_[i]))
            return false;
    }
    return true;
}

} // namespace obs
} // namespace antsim
