#include "host_trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/logging.hh"

namespace antsim {
namespace obs {
namespace host {

namespace {

/** Same JSON string escaping as the simulated-time exporter. */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
}

void
appendU64(std::string &out, std::uint64_t v)
{
    out += std::to_string(v);
}

} // namespace

std::string
toChromeJson()
{
    detail::Registry &reg = detail::registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);

    // Rebase to the earliest recorded span so timestamps are small
    // and runs of the same workload produce structurally comparable
    // documents.
    std::uint64_t min_start = ~0ull;
    for (const auto &thread : reg.threads) {
        for (const Span &span : thread->spans)
            min_start = std::min(min_start, span.startNs);
    }
    if (min_start == ~0ull)
        min_start = 0;

    std::string out;
    out.reserve(1u << 20);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

    for (std::size_t t = 0; t < reg.threads.size(); ++t) {
        out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
        appendU64(out, t);
        out += ",\"args\":{\"name\":";
        appendJsonString(out, reg.threads[t]->role);
        out += "}},\n";
    }

    for (std::size_t t = 0; t < reg.threads.size(); ++t) {
        for (const Span &span : reg.threads[t]->spans) {
            // Floor start and end independently, then subtract: child
            // bounds can never escape their parent's (floor is
            // monotone), so microsecond rounding preserves nesting.
            const std::uint64_t ts = (span.startNs - min_start) / 1000;
            const std::uint64_t end = (span.endNs - min_start) / 1000;
            out += "{\"name\":";
            appendJsonString(out, span.name);
            out += ",\"cat\":\"";
            out += span.cat;
            out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
            appendU64(out, t);
            out += ",\"ts\":";
            appendU64(out, ts);
            out += ",\"dur\":";
            appendU64(out, end - ts);
            if (!span.argsJson.empty()) {
                out += ",\"args\":";
                out += span.argsJson;
            }
            out += "},\n";
        }
        if (reg.threads[t]->truncated) {
            out += "{\"name\":\"span_budget_exceeded\",\"cat\":\"host\","
                   "\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":";
            appendU64(out, t);
            out += ",\"ts\":0},\n";
        }
    }

    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"args\":{\"name\":\"antsim host\"}}\n]}\n";
    return out;
}

void
writeChromeJson(const std::string &path)
{
    const std::string doc = toChromeJson();
    std::ofstream out(path, std::ios::binary);
    if (!out)
        ANT_FATAL("cannot open host trace output file '", path, "'");
    out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    out.flush();
    if (!out)
        ANT_FATAL("failed writing host trace output file '", path, "'");
}

void
clear()
{
    detail::Registry &reg = detail::registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &thread : reg.threads) {
        thread->spans.clear();
        thread->truncated = false;
    }
}

} // namespace host
} // namespace obs
} // namespace antsim
