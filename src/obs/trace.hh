/**
 * @file
 * Deterministic simulated-time tracing for the accelerator models.
 *
 * The profiler (src/report/profiler.hh) answers "where did the *host*
 * spend wall-clock time"; this layer answers "where did the *modeled
 * hardware* spend cycles". PE models mirror their cycle accounting
 * into a per-unit UnitRecorder as run-length-coded spans (startup /
 * active / idle-scan), mark instants (accumulator-bank conflicts,
 * trace-cache lookups), and record distribution samples
 * (src/obs/histogram.hh). The runner wraps every simulated (layer,
 * phase, sample) unit in a ScopedUnitTrace, so each unit's buffer is
 * filled on whichever worker runs it and then filed into the
 * TraceSink's slot for that unit index.
 *
 * Determinism: unit content is a pure function of the seed hierarchy
 * (DESIGN.md), buffers land in preallocated task-index slots, and the
 * exporter walks runs and units in index order -- so the emitted
 * Chrome trace JSON is byte-identical for every --threads value
 * (trace_determinism_test). Trace-cache lookups are recorded as key
 * hashes and classified hit/miss *logically* at export time (first
 * occurrence in unit order = miss), because the physical outcome
 * depends on worker scheduling.
 *
 * Overhead: when tracing is off (the default), every instrumentation
 * site reduces to one thread-local pointer load and branch --
 * obs::recorder() returns nullptr -- so the hot simulation loops keep
 * their perf-smoke budgets (obs_overhead_test asserts NetworkStats is
 * bit-identical with tracing on and off).
 *
 * Export format: Chrome trace-event JSON (chrome://tracing, Perfetto's
 * "Open trace file"). Timestamps are modeled cycles in the `ts`
 * microsecond field; each PE lane of the reconstructed schedule is a
 * `tid`. See docs/OBSERVABILITY.md for the event taxonomy.
 */

#ifndef ANTSIM_OBS_TRACE_HH
#define ANTSIM_OBS_TRACE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.hh"

namespace antsim {
namespace obs {

/** Cycle-span classes a PE timeline decomposes into. */
enum class SpanKind : unsigned {
    /** Pipeline start-up on a new matrix pair (Sec. 6.1). */
    Startup = 0,
    /** The multiplier array was issued at least one product. */
    Active,
    /** Scan/controller logic advanced without issuing products. */
    IdleScan,
    NumKinds
};

/** Number of span kinds. */
constexpr std::size_t kNumSpanKinds =
    static_cast<std::size_t>(SpanKind::NumKinds);

/** Stable snake_case name of a span kind (trace event name). */
const char *spanKindName(SpanKind kind);

/** Point-event classes. */
enum class InstantKind : unsigned {
    /** Two same-cycle valid products mapped to one accumulator bank. */
    AccumBankConflict = 0,
    /** Plane lookup in the workload trace cache (arg = key hash). */
    TraceCacheLookup,
    /** The unit exceeded the span budget; later spans were dropped. */
    SpanBudgetExceeded,
    NumKinds
};

/** One recorded cycle interval, relative to the unit's own cycle 0. */
struct Span
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    SpanKind kind = SpanKind::Active;
};

/** One chunk-pair task interval within a unit. */
struct TaskSpan
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
};

/** One point event within a unit. */
struct Instant
{
    std::uint64_t at = 0;
    InstantKind kind = InstantKind::AccumBankConflict;
    /** Kind-specific payload (TraceCacheLookup: plane-key hash). */
    std::uint64_t arg = 0;
};

/**
 * Per-unit event buffer. Instrumentation sites obtain the current
 * thread's recorder via obs::recorder() (nullptr when tracing is off)
 * and append; the owning ScopedUnitTrace files the buffer into the
 * sink when the unit finishes.
 */
class UnitRecorder
{
  public:
    /** Spans kept per unit before the tail is dropped (marked). */
    static constexpr std::size_t kMaxSpans = 1u << 16;

    /**
     * Advance the unit's cycle cursor by @p cycles of class @p kind.
     * Adjacent same-kind spans coalesce, so a per-cycle caller and a
     * closed-form caller produce identical traces.
     */
    void
    advance(SpanKind kind, std::uint64_t cycles)
    {
        if (cycles == 0)
            return;
        if (!spans_.empty() && spans_.back().kind == kind &&
            spans_.back().end == cursor_) {
            spans_.back().end += cycles;
        } else if (spans_.size() < kMaxSpans) {
            spans_.push_back({cursor_, cursor_ + cycles, kind});
        } else if (!truncated_) {
            truncated_ = true;
            instants_.push_back(
                {cursor_, InstantKind::SpanBudgetExceeded, 0});
        }
        cursor_ += cycles;
    }

    /** Record a point event at the current cursor. */
    void
    instant(InstantKind kind, std::uint64_t arg = 0)
    {
        instants_.push_back({cursor_, kind, arg});
    }

    /** Open a chunk-pair task span at the current cursor. */
    void
    beginTask()
    {
        taskBegin_ = cursor_;
    }

    /**
     * Close the open task span; its duration (in modeled cycles, as
     * accumulated by advance) feeds the task-cycles histogram.
     */
    void
    endTask()
    {
        tasks_.push_back({taskBegin_, cursor_});
        hists_.add(HistId::TaskCycles, cursor_ - taskBegin_);
    }

    /** Record a distribution sample. */
    void
    hist(HistId id, std::uint64_t value)
    {
        hists_.add(id, value);
    }

    /** Cycles recorded so far (the unit's local clock). */
    std::uint64_t cursor() const { return cursor_; }

    const std::vector<Span> &spans() const { return spans_; }
    const std::vector<TaskSpan> &tasks() const { return tasks_; }
    const std::vector<Instant> &instants() const { return instants_; }
    const HistogramRegistry &histograms() const { return hists_; }

    /** Display label ("layer/phase#sample"), set by ScopedUnitTrace. */
    const std::string &label() const { return label_; }
    void setLabel(std::string label) { label_ = std::move(label); }

  private:
    std::vector<Span> spans_;
    std::vector<TaskSpan> tasks_;
    std::vector<Instant> instants_;
    HistogramRegistry hists_;
    std::uint64_t cursor_ = 0;
    std::uint64_t taskBegin_ = 0;
    std::string label_;
    bool truncated_ = false;
};

namespace detail {
// constinit: guarantees constant initialization, so cross-TU access
// compiles to a direct TLS load instead of going through the compiler
// generated init-on-first-use wrapper (which gcc's UBSan null check
// flags, and which would put a function call on the tracing-off fast
// path).
extern thread_local constinit UnitRecorder *t_recorder;
} // namespace detail

/** The calling thread's live recorder; nullptr when tracing is off. */
inline UnitRecorder *
recorder()
{
    return detail::t_recorder;
}

/**
 * Process-wide collector of per-unit buffers, grouped into runs (one
 * run per runConvNetwork / runMatmulNetwork invocation). beginRun is
 * called from the orchestrating thread before workers start; submit
 * is thread-safe and slot-addressed, so arrival order cannot affect
 * the exported document.
 */
class TraceSink
{
  public:
    /** Register a run of @p unit_count units; returns its run id. */
    std::size_t beginRun(std::string name, std::size_t unit_count);

    /** File the finished buffer of unit @p unit_index of run @p run. */
    void submit(std::size_t run, std::size_t unit_index, UnitRecorder rec);

    /** Runs registered so far. */
    std::size_t runCount() const;

    /** Histograms of every submitted unit, merged. */
    HistogramRegistry mergedHistograms() const;

    /**
     * Busy (startup + active) cycles per PE lane of the reconstructed
     * schedule over @p num_pes lanes -- the load-imbalance signal
     * (max minus mean) the stall table and trace_summary.py report.
     */
    std::vector<std::uint64_t> laneBusyCycles(std::uint32_t num_pes) const;

    /**
     * Serialize everything as Chrome trace-event JSON with one thread
     * lane per PE of the reconstructed @p num_pes-PE schedule.
     * Deterministic: byte-identical for identical submitted content.
     */
    std::string toChromeJson(std::uint32_t num_pes) const;

    /** Write toChromeJson to @p path (fatal on I/O failure). */
    void writeChromeJson(const std::string &path,
                         std::uint32_t num_pes) const;

    /** Drop all recorded runs (tests, multi-run binaries). */
    void clear();

  private:
    struct Run
    {
        std::string name;
        std::vector<UnitRecorder> units;
        std::vector<char> present;
    };

    mutable std::mutex mutex_;
    std::vector<Run> runs_;
};

/**
 * Enable or disable tracing process-wide. Enabling installs the
 * global sink (creating it on first use); disabling detaches it
 * without clearing recorded content.
 */
void setEnabled(bool enabled);

/** Whether tracing is enabled. */
bool enabled();

/** The global sink when tracing is enabled, nullptr otherwise. */
TraceSink *traceSink();

/** The global sink regardless of the enabled flag (export, tests). */
TraceSink &globalSink();

/**
 * RAII scope for one simulated unit: installs a fresh thread-local
 * recorder on construction (when @p sink is non-null) and submits the
 * buffer into (run, unit_index) on destruction. With a null sink the
 * scope is a no-op, so call sites need no branching.
 */
class ScopedUnitTrace
{
  public:
    ScopedUnitTrace(TraceSink *sink, std::size_t run,
                    std::size_t unit_index, std::string label);
    ~ScopedUnitTrace();

    ScopedUnitTrace(const ScopedUnitTrace &) = delete;
    ScopedUnitTrace &operator=(const ScopedUnitTrace &) = delete;

  private:
    TraceSink *sink_;
    std::size_t run_;
    std::size_t unit_;
    UnitRecorder rec_;
    UnitRecorder *prev_ = nullptr;
};

} // namespace obs
} // namespace antsim

#endif // ANTSIM_OBS_TRACE_HH
