#include "trace.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <unordered_set>

#include "util/logging.hh"

namespace antsim {
namespace obs {

namespace detail {
thread_local constinit UnitRecorder *t_recorder = nullptr;
} // namespace detail

namespace {

constexpr const char *kSpanNames[kNumSpanKinds] = {
    "startup",
    "active",
    "idle_scan",
};

std::atomic<bool> g_enabled{false};

/** Append a JSON-escaped string literal (with quotes) to @p out. */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
}

void
appendU64(std::string &out, std::uint64_t v)
{
    out += std::to_string(v);
}

/**
 * Emit one trace event object. All timestamps are exact modeled-cycle
 * integers, so serialization never goes through floating point and the
 * document is byte-stable.
 */
void
appendCompleteEvent(std::string &out, const char *name,
                    const std::string &cat, std::uint32_t tid,
                    std::uint64_t ts, std::uint64_t dur,
                    const std::string &args_json)
{
    out += "{\"name\":";
    appendJsonString(out, name);
    out += ",\"cat\":\"";
    out += cat;
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    appendU64(out, tid);
    out += ",\"ts\":";
    appendU64(out, ts);
    out += ",\"dur\":";
    appendU64(out, dur);
    if (!args_json.empty()) {
        out += ",\"args\":";
        out += args_json;
    }
    out += "},\n";
}

void
appendInstantEvent(std::string &out, const char *name,
                   const std::string &cat, std::uint32_t tid,
                   std::uint64_t ts, const std::string &args_json)
{
    out += "{\"name\":";
    appendJsonString(out, name);
    out += ",\"cat\":\"";
    out += cat;
    out += "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":";
    appendU64(out, tid);
    out += ",\"ts\":";
    appendU64(out, ts);
    if (!args_json.empty()) {
        out += ",\"args\":";
        out += args_json;
    }
    out += "},\n";
}

/**
 * Deterministic reconstruction of the num_pes-wide schedule the
 * Accelerator cost model assumes: walk units in index order, place
 * each on the currently least-loaded lane (lowest index breaks ties).
 * This mirrors scheduleCycles()'s greedy bound and is a pure function
 * of unit content + order, never of worker scheduling.
 */
struct LanePlan
{
    /** Lane of each unit, per run (outer index = run). */
    std::vector<std::vector<std::uint32_t>> lane;
    /** Start cycle of each unit on its lane, per run. */
    std::vector<std::vector<std::uint64_t>> start;
    /** Final per-lane load after all runs. */
    std::vector<std::uint64_t> load;
};

} // namespace

const char *
spanKindName(SpanKind kind)
{
    const auto index = static_cast<std::size_t>(kind);
    ANT_ASSERT(index < kNumSpanKinds, "span kind out of range");
    return kSpanNames[index];
}

std::size_t
TraceSink::beginRun(std::string name, std::size_t unit_count)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Run run;
    run.name = std::move(name);
    run.units.resize(unit_count);
    run.present.assign(unit_count, 0);
    runs_.push_back(std::move(run));
    return runs_.size() - 1;
}

void
TraceSink::submit(std::size_t run, std::size_t unit_index, UnitRecorder rec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ANT_ASSERT(run < runs_.size(), "trace submit to unknown run");
    ANT_ASSERT(unit_index < runs_[run].units.size(),
               "trace submit to unknown unit slot");
    ANT_ASSERT(!runs_[run].present[unit_index],
               "trace unit slot submitted twice");
    runs_[run].units[unit_index] = std::move(rec);
    runs_[run].present[unit_index] = 1;
}

std::size_t
TraceSink::runCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return runs_.size();
}

HistogramRegistry
TraceSink::mergedHistograms() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    HistogramRegistry merged;
    for (const Run &run : runs_) {
        for (std::size_t u = 0; u < run.units.size(); ++u) {
            if (run.present[u])
                merged += run.units[u].histograms();
        }
    }
    return merged;
}

namespace {

LanePlan
planLanes(const std::vector<const UnitRecorder *> &units_by_run_flat,
          const std::vector<std::size_t> &run_sizes, std::uint32_t num_pes)
{
    ANT_ASSERT(num_pes > 0, "lane plan needs at least one PE lane");
    LanePlan plan;
    plan.load.assign(num_pes, 0);
    std::size_t flat = 0;
    for (std::size_t run_size : run_sizes) {
        std::vector<std::uint32_t> lanes(run_size, 0);
        std::vector<std::uint64_t> starts(run_size, 0);
        for (std::size_t u = 0; u < run_size; ++u, ++flat) {
            std::uint32_t best = 0;
            for (std::uint32_t l = 1; l < num_pes; ++l) {
                if (plan.load[l] < plan.load[best])
                    best = l;
            }
            lanes[u] = best;
            starts[u] = plan.load[best];
            const UnitRecorder *rec = units_by_run_flat[flat];
            plan.load[best] += rec ? rec->cursor() : 0;
        }
        plan.lane.push_back(std::move(lanes));
        plan.start.push_back(std::move(starts));
        // Barrier between runs: the next run starts after every lane
        // has drained, matching the serial run boundaries in runner.cc.
        const std::uint64_t barrier =
            *std::max_element(plan.load.begin(), plan.load.end());
        plan.load.assign(num_pes, barrier);
    }
    return plan;
}

} // namespace

std::vector<std::uint64_t>
TraceSink::laneBusyCycles(std::uint32_t num_pes) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const UnitRecorder *> flat;
    std::vector<std::size_t> run_sizes;
    for (const Run &run : runs_) {
        run_sizes.push_back(run.units.size());
        for (std::size_t u = 0; u < run.units.size(); ++u)
            flat.push_back(run.present[u] ? &run.units[u] : nullptr);
    }
    std::vector<std::uint64_t> busy(num_pes, 0);
    if (flat.empty())
        return busy;
    const LanePlan plan = planLanes(flat, run_sizes, num_pes);
    std::size_t i = 0;
    for (std::size_t r = 0; r < run_sizes.size(); ++r) {
        for (std::size_t u = 0; u < run_sizes[r]; ++u, ++i) {
            const UnitRecorder *rec = flat[i];
            if (!rec)
                continue;
            for (const Span &span : rec->spans()) {
                if (span.kind != SpanKind::IdleScan)
                    busy[plan.lane[r][u]] += span.end - span.begin;
            }
        }
    }
    return busy;
}

std::string
TraceSink::toChromeJson(std::uint32_t num_pes) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ANT_ASSERT(num_pes > 0, "trace export needs at least one PE lane");

    std::vector<const UnitRecorder *> flat;
    std::vector<std::size_t> run_sizes;
    for (const Run &run : runs_) {
        run_sizes.push_back(run.units.size());
        for (std::size_t u = 0; u < run.units.size(); ++u)
            flat.push_back(run.present[u] ? &run.units[u] : nullptr);
    }
    const LanePlan plan = planLanes(flat, run_sizes, num_pes);

    std::string out;
    out.reserve(1u << 20);
    out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";

    // Lane metadata: one named "thread" per PE of the modeled array.
    for (std::uint32_t l = 0; l < num_pes; ++l) {
        out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
        appendU64(out, l);
        out += ",\"args\":{\"name\":";
        appendJsonString(out, "PE " + std::to_string(l));
        out += "}},\n";
    }

    // Logical trace-cache classification: the first lookup of a key in
    // unit order is a miss, later ones hits. The physical outcome
    // depends on worker interleaving; this logical view is what a
    // single-threaded run would observe and is thread-count stable.
    std::unordered_set<std::uint64_t> seen_keys;

    std::size_t i = 0;
    for (std::size_t r = 0; r < run_sizes.size(); ++r) {
        for (std::size_t u = 0; u < run_sizes[r]; ++u, ++i) {
            const UnitRecorder *rec = flat[i];
            if (!rec)
                continue;
            const std::uint32_t tid = plan.lane[r][u];
            const std::uint64_t base = plan.start[r][u];

            if (rec->cursor() > 0) {
                std::string args = "{\"run\":";
                appendJsonString(args, runs_[r].name);
                args += ",\"unit\":";
                appendU64(args, u);
                args += "}";
                appendCompleteEvent(out, rec->label().c_str(), "unit", tid,
                                    base, rec->cursor(), args);
            }
            for (const Span &span : rec->spans()) {
                appendCompleteEvent(out, spanKindName(span.kind), "pe",
                                    tid, base + span.begin,
                                    span.end - span.begin, "");
            }
            for (const TaskSpan &task : rec->tasks()) {
                appendCompleteEvent(out, "chunk_task", "task", tid,
                                    base + task.begin,
                                    task.end - task.begin, "");
            }
            for (const Instant &ins : rec->instants()) {
                switch (ins.kind) {
                  case InstantKind::AccumBankConflict:
                    appendInstantEvent(out, "accum_bank_conflict", "accum",
                                       tid, base + ins.at, "");
                    break;
                  case InstantKind::TraceCacheLookup: {
                      const bool hit = !seen_keys.insert(ins.arg).second;
                      std::string args = "{\"key_hash\":";
                      appendU64(args, ins.arg);
                      args += "}";
                      appendInstantEvent(out,
                                         hit ? "trace_cache_hit"
                                             : "trace_cache_miss",
                                         "cache", tid, base + ins.at, args);
                      break;
                  }
                  case InstantKind::SpanBudgetExceeded:
                    appendInstantEvent(out, "span_budget_exceeded", "pe",
                                       tid, base + ins.at, "");
                    break;
                  default:
                    ANT_PANIC("unknown instant kind");
                }
            }
        }
    }

    // Trailing no-op metadata event avoids dangling-comma bookkeeping.
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"args\":{\"name\":\"antsim\"}}\n]}\n";
    return out;
}

void
TraceSink::writeChromeJson(const std::string &path,
                           std::uint32_t num_pes) const
{
    const std::string doc = toChromeJson(num_pes);
    std::ofstream out(path, std::ios::binary);
    if (!out)
        ANT_FATAL("cannot open trace output file '", path, "'");
    out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    out.flush();
    if (!out)
        ANT_FATAL("failed writing trace output file '", path, "'");
    ANT_INFORM("wrote trace with ", runCount(), " run(s) to ", path);
}

void
TraceSink::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    runs_.clear();
}

void
setEnabled(bool enabled)
{
    g_enabled.store(enabled, std::memory_order_relaxed);
}

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

TraceSink &
globalSink()
{
    static TraceSink sink;
    return sink;
}

TraceSink *
traceSink()
{
    return enabled() ? &globalSink() : nullptr;
}

ScopedUnitTrace::ScopedUnitTrace(TraceSink *sink, std::size_t run,
                                 std::size_t unit_index, std::string label)
    : sink_(sink), run_(run), unit_(unit_index)
{
    if (!sink_)
        return;
    rec_.setLabel(std::move(label));
    prev_ = detail::t_recorder;
    detail::t_recorder = &rec_;
}

ScopedUnitTrace::~ScopedUnitTrace()
{
    if (!sink_)
        return;
    detail::t_recorder = prev_;
    sink_->submit(run_, unit_, std::move(rec_));
}

} // namespace obs
} // namespace antsim
