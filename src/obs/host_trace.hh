/**
 * @file
 * Host-execution span tracer: where did the *simulator process* spend
 * wall-clock time, per stage, per run, per unit, per worker thread --
 * the host-side complement of the simulated-time trace (obs/trace.hh),
 * exported in the same Chrome trace-event JSON so the two open in the
 * same viewer. Unit spans carry {"run", "unit"} args matching the
 * simulated trace's unit events, which is the cross-link: pick a unit
 * in one trace, find it in the other.
 *
 * Layering mirrors obs/metrics.hh: the producer API is header-inline
 * (instrumented ant_util / workload code never links ant_obs); the
 * exporter lives in host_trace.cc and is called from bench code.
 *
 * Threading: each recording thread owns a ThreadBuf (installed by
 * threadAttach at the pool's thread entry points) and appends spans
 * with no locking. Worker threads only record inside parallelFor item
 * lambdas, whose completion happens-before parallelFor returns, so an
 * exporter running after the runs finish reads quiescent buffers. The
 * registry mutex covers only attach and export.
 *
 * Overhead: when host tracing is off (the default), every site is one
 * thread-local pointer branch (detail::t_buf stays nullptr), the same
 * discipline -- and the same obs_overhead_test proof obligation -- as
 * the simulated-time recorder and the metrics registry.
 *
 * Host wall-clock readings are confined to this whitelisted header
 * (antsim-lint no-wall-clock-in-sim): instrumented code calls nowNs()
 * and never names a clock type itself.
 */

#ifndef ANTSIM_OBS_HOST_TRACE_HH
#define ANTSIM_OBS_HOST_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace antsim {
namespace obs {
namespace host {

/** One recorded host span (wall-clock, steady-clock nanoseconds). */
struct Span
{
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0;
    /** Static category literal: "run", "unit", "stage". */
    const char *cat = "";
    std::string name;
    /** Pre-rendered JSON object for the event's args, or empty. */
    std::string argsJson;
};

/** Spans kept per thread before the tail is dropped (marked). */
constexpr std::size_t kMaxSpansPerThread = 1u << 20;

/** One thread's span buffer; owned by the registry, written lock-free
 *  by the owning thread. */
struct ThreadBuf
{
    /** Lane label for the exported thread_name metadata. */
    std::string role;
    std::vector<Span> spans;
    bool truncated = false;
};

namespace detail {

/** Same constinit-TLS fast path as obs::detail::t_recorder. */
inline thread_local constinit ThreadBuf *t_buf = nullptr;

inline std::atomic<bool> g_enabled{false};

struct Registry
{
    std::mutex mutex;
    /** Buffers outlive their threads (export runs after workers may
     *  have parked or died); clearHostTrace empties, never frees. */
    std::vector<std::unique_ptr<ThreadBuf>> threads;
};

inline Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace detail

/** Whether host tracing is collecting. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn host tracing on or off process-wide (attach is lazy). */
inline void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

/** The calling thread's buffer; nullptr when it never attached. */
inline ThreadBuf *
buf()
{
    return detail::t_buf;
}

/** Host steady-clock nanoseconds (same clock as metrics::nowNs). */
inline std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Install a span buffer for the calling thread under lane label
 * @p role ("main", "worker 3"); no-op when disabled or attached.
 */
inline void
threadAttach(const std::string &role)
{
    if (!enabled() || detail::t_buf != nullptr)
        return;
    detail::Registry &reg = detail::registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.threads.push_back(std::make_unique<ThreadBuf>());
    reg.threads.back()->role = role;
    detail::t_buf = reg.threads.back().get();
}

/** Append a finished span to the calling thread's buffer. */
inline void
emitSpan(const char *cat, std::string name, std::uint64_t start_ns,
         std::uint64_t end_ns, std::string args_json = std::string())
{
    if (ThreadBuf *b = detail::t_buf) {
        if (b->spans.size() < kMaxSpansPerThread) {
            b->spans.push_back({start_ns, end_ns, cat, std::move(name),
                                std::move(args_json)});
        } else {
            b->truncated = true;
        }
    }
}

/**
 * RAII span: stamps the start on construction, appends on
 * destruction. Per-thread RAII scoping is what guarantees the
 * exported spans nest properly (trace_summary.py --host --check).
 * With host tracing off the constructor is one pointer branch.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *cat, std::string name,
               std::string args_json = std::string())
        : active_(detail::t_buf != nullptr)
    {
        if (active_) {
            cat_ = cat;
            name_ = std::move(name);
            args_ = std::move(args_json);
            start_ = nowNs();
        }
    }

    ~ScopedSpan()
    {
        if (active_) {
            emitSpan(cat_, std::move(name_), start_, nowNs(),
                     std::move(args_));
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    bool active_;
    const char *cat_ = "";
    std::string name_;
    std::string args_;
    std::uint64_t start_ = 0;
};

// ------------------------------------------------------------------
// Consumer API (host_trace.cc, ant_obs).

/**
 * Serialize every thread's spans as Chrome trace-event JSON: one tid
 * per recording thread (registration order), ts/dur in integer
 * microseconds rebased to the earliest span. Deterministic for
 * identical recorded content.
 */
std::string toChromeJson();

/** Write toChromeJson() to @p path (fatal on I/O failure). */
void writeChromeJson(const std::string &path);

/** Drop all recorded spans; buffers stay attached (tests). */
void clear();

} // namespace host
} // namespace obs
} // namespace antsim

#endif // ANTSIM_OBS_HOST_TRACE_HH
