/**
 * @file
 * Fixed-bin histogram registry for deterministic run metrics.
 *
 * The observability layer (src/obs/trace.hh) wants distributions, not
 * just totals: how long tasks take, how skewed the per-row non-zero
 * counts are, how many valid partners the FNIR selects per window.
 * Each histogram has a compile-time bin layout (log2 or fixed-width
 * linear buckets over uint64 samples), so recording is one array
 * increment and merging two histograms is element-wise addition --
 * associative and commutative, which makes the merged result
 * independent of worker scheduling (the same argument the parallel
 * counter reduction rests on, DESIGN.md "Parallel execution model").
 *
 * All state is exact integers; no floating point enters until a
 * consumer derives rates, so serialized histograms are byte-stable
 * across thread counts.
 */

#ifndef ANTSIM_OBS_HISTOGRAM_HH
#define ANTSIM_OBS_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace antsim {
namespace obs {

/** Identity of each tracked distribution. */
enum class HistId : unsigned {
    /** Modeled cycles of one (kernel, image) chunk-pair task. */
    TaskCycles = 0,
    /** Non-zeros per image row of each simulated task's image plane. */
    ImageRowNnz,
    /** Residual-RCP fraction of executed multiplies, in permille. */
    RcpPermille,
    /** Valid partners the FNIR selects per scan window (0..n). */
    FnirValidPartners,
    NumHists
};

/** Number of distinct histograms. */
constexpr std::size_t kNumHists = static_cast<std::size_t>(HistId::NumHists);

/** Stable snake_case name of a histogram (report key). */
const char *histName(HistId id);

/** Bin layout of one histogram. */
struct HistogramSpec
{
    enum class Kind { Log2, Linear };
    Kind kind = Kind::Log2;
    /** Linear only: lowest representable sample. */
    std::uint64_t lo = 0;
    /** Linear only: width of each bucket. */
    std::uint64_t binWidth = 1;
    /** Bucket count; the last bucket absorbs the overflow tail. */
    std::uint32_t bins = 1;
};

/** Bin layout of histogram @p id. */
const HistogramSpec &histSpec(HistId id);

/** One fixed-layout histogram with exact summary statistics. */
class Histogram
{
  public:
    explicit Histogram(const HistogramSpec &spec)
        : spec_(spec), bins_(spec.bins, 0)
    {}

    /** Bucket index a sample lands in. */
    std::uint32_t bucketFor(std::uint64_t value) const;

    /** Record one sample. */
    void
    add(std::uint64_t value)
    {
        ++bins_[bucketFor(value)];
        ++count_;
        sum_ += value;
        min_ = value < min_ ? value : min_;
        max_ = value > max_ ? value : max_;
    }

    /**
     * Element-wise merge; associative and commutative, so any merge
     * tree over the same samples yields the same histogram.
     */
    Histogram &operator+=(const Histogram &other);

    const HistogramSpec &spec() const { return spec_; }
    const std::vector<std::uint64_t> &bins() const { return bins_; }
    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    /** Smallest recorded sample (0 when empty). */
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    /** Largest recorded sample (0 when empty). */
    std::uint64_t max() const { return count_ == 0 ? 0 : max_; }

    bool operator==(const Histogram &other) const;

  private:
    HistogramSpec spec_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

/** The fixed set of histograms one recording scope accumulates. */
class HistogramRegistry
{
  public:
    HistogramRegistry();

    /** Record @p value into histogram @p id. */
    void
    add(HistId id, std::uint64_t value)
    {
        hists_[static_cast<std::size_t>(id)].add(value);
    }

    const Histogram &
    get(HistId id) const
    {
        return hists_[static_cast<std::size_t>(id)];
    }

    /** Merge another registry in (element-wise per histogram). */
    HistogramRegistry &operator+=(const HistogramRegistry &other);

    bool operator==(const HistogramRegistry &other) const;

  private:
    std::vector<Histogram> hists_;
};

} // namespace obs
} // namespace antsim

#endif // ANTSIM_OBS_HISTOGRAM_HH
