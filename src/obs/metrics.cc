#include "metrics.hh"

#include <algorithm>
#include <fstream>

#include "util/logging.hh"

namespace antsim {
namespace obs {
namespace metrics {

namespace {

/** Bare snake_case names; the exposition prefixes antsim_ and, for
 *  counters, suffixes _total. Stable schema keys -- extend, never
 *  rename (docs/OBSERVABILITY.md catalog). */
constexpr const char *kCounterNames[kNumCounters] = {
    "pool_parallel_fors",
    "pool_items",
    "trace_cache_hits",
    "trace_cache_misses",
    "trace_cache_inserts",
    "trace_cache_evictions",
    "trace_cache_evicted_bytes",
    "arena_allocs",
    "arena_alloc_bytes",
    "arena_slabs",
    "arena_slab_bytes",
    "aligned_vec_grows",
    "aligned_vec_grow_bytes",
    "runner_runs",
    "runner_units",
};

constexpr const char *kCounterHelp[kNumCounters] = {
    "parallelFor jobs issued by the thread pool",
    "work items scheduled across all parallelFor jobs",
    "trace-cache lookups served from the cache",
    "trace-cache lookups that generated a plane",
    "planes inserted into the trace cache",
    "planes evicted from the trace cache (FIFO over budget)",
    "payload bytes released by trace-cache evictions",
    "blocks carved by Arena::alloc",
    "bytes carved by Arena::alloc including alignment padding",
    "slabs (re)allocated by Arena::reset",
    "slab bytes allocated by Arena::reset",
    "AlignedVec growth reallocations",
    "bytes allocated by AlignedVec growths",
    "network-run invocations (conv or matmul)",
    "simulated (layer, phase, sample) units completed",
};

constexpr const char *kWorkerCounterNames[kNumWorkerCounters] = {
    "pool_worker_busy_ns",
    "pool_worker_idle_ns",
    "pool_worker_chunks",
    "pool_worker_items",
};

constexpr const char *kWorkerCounterHelp[kNumWorkerCounters] = {
    "nanoseconds the worker spent executing claimed chunks",
    "nanoseconds the worker spent parked on the wake condition",
    "chunks the worker claimed from the shared cursor",
    "work items the worker executed",
};

constexpr const char *kGaugeNames[kNumGauges] = {
    "trace_cache_resident_bytes",
    "trace_cache_entries",
    "pool_max_job_items",
    "pool_workers",
    "arena_highwater_bytes",
    "aligned_vec_highwater_bytes",
};

constexpr const char *kGaugeHelp[kNumGauges] = {
    "payload bytes currently resident in the trace cache",
    "planes currently resident in the trace cache",
    "largest parallelFor item count seen (pending-depth proxy)",
    "largest pool worker count seen",
    "largest Arena used() watermark seen across all arenas",
    "largest AlignedVec capacity in bytes seen across all vectors",
};

constexpr const char *kHistNames[kNumHists] = {
    "unit_wall_ns",
    "pool_job_items",
    "trace_cache_plane_bytes",
};

constexpr const char *kHistHelp[kNumHists] = {
    "host wall nanoseconds per simulated unit",
    "item count per parallelFor job",
    "payload bytes per plane inserted into the trace cache",
};

/**
 * Host-stage names, index-matched to report/profiler.hh's Stage enum.
 * Duplicated here because ant_obs cannot include report headers
 * (layering); profiler.cc static_asserts the sizes agree and the
 * stage_profile_test report keys pin the spellings.
 */
constexpr const char *kStageNames[kNumStages] = {
    "trace_generation",
    "plan_construction",
    "pe_simulation",
    "reduction",
};

void
appendSample(std::string &out, const std::string &series, std::uint64_t v)
{
    out += series;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
}

void
appendSampleI(std::string &out, const std::string &series, std::int64_t v)
{
    out += series;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
}

void
appendFamilyHeader(std::string &out, const std::string &family,
                   const char *help, const char *type)
{
    out += "# HELP ";
    out += family;
    out += ' ';
    out += help;
    out += '\n';
    out += "# TYPE ";
    out += family;
    out += ' ';
    out += type;
    out += '\n';
}

} // namespace

const char *
counterName(Counter c)
{
    const auto i = static_cast<std::size_t>(c);
    ANT_ASSERT(i < kNumCounters, "counter id out of range");
    return kCounterNames[i];
}

const char *
workerCounterName(WorkerCounter c)
{
    const auto i = static_cast<std::size_t>(c);
    ANT_ASSERT(i < kNumWorkerCounters, "worker counter id out of range");
    return kWorkerCounterNames[i];
}

const char *
gaugeName(Gauge g)
{
    const auto i = static_cast<std::size_t>(g);
    ANT_ASSERT(i < kNumGauges, "gauge id out of range");
    return kGaugeNames[i];
}

const char *
histName(Hist h)
{
    const auto i = static_cast<std::size_t>(h);
    ANT_ASSERT(i < kNumHists, "histogram id out of range");
    return kHistNames[i];
}

const char *
stageMetricName(std::size_t stage_index)
{
    ANT_ASSERT(stage_index < kNumStages, "stage index out of range");
    return kStageNames[stage_index];
}

Snapshot
snapshot()
{
    detail::Registry &reg = detail::registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    Snapshot snap;

    // Shard merge: plain summation of relaxed-atomic cells, so the
    // result is independent of shard (thread) order -- the same
    // order-independent discipline HistogramRegistry::operator+= gives
    // the simulated-time histograms.
    for (const auto &shard : reg.shards) {
        for (std::size_t c = 0; c < kNumCounters; ++c) {
            snap.counters[c] +=
                shard->counters[c].load(std::memory_order_relaxed);
        }
        for (std::size_t w = 0; w < kMaxWorkers; ++w) {
            for (std::size_t c = 0; c < kNumWorkerCounters; ++c) {
                snap.workers[w][c] +=
                    shard->workers[w][c].load(std::memory_order_relaxed);
            }
        }
        for (std::size_t s = 0; s < kNumStages; ++s) {
            snap.stageNs[s] +=
                shard->stageNs[s].load(std::memory_order_relaxed);
            snap.stageCalls[s] +=
                shard->stageCalls[s].load(std::memory_order_relaxed);
        }
        for (std::size_t h = 0; h < kNumHists; ++h) {
            const MetricShard::HistCells &cells = shard->hists[h];
            Snapshot::HistData &data = snap.hists[h];
            for (std::size_t b = 0; b < kHistBins; ++b) {
                data.bins[b] +=
                    cells.bins[b].load(std::memory_order_relaxed);
            }
            const std::uint64_t count =
                cells.count.load(std::memory_order_relaxed);
            if (count > 0) {
                const std::uint64_t lo =
                    cells.min.load(std::memory_order_relaxed);
                const std::uint64_t hi =
                    cells.max.load(std::memory_order_relaxed);
                data.min = data.count == 0 ? lo : std::min(data.min, lo);
                data.max = std::max(data.max, hi);
            }
            data.count += count;
            data.sum += cells.sum.load(std::memory_order_relaxed);
        }
    }
    for (std::size_t g = 0; g < kNumGauges; ++g) {
        snap.gaugeValue[g] =
            reg.gaugeValue[g].load(std::memory_order_relaxed);
        snap.gaugePeak[g] =
            reg.gaugePeak[g].load(std::memory_order_relaxed);
    }
    snap.cacheShardsUsed =
        reg.cacheShardCount.load(std::memory_order_relaxed);
    for (std::size_t s = 0; s < snap.cacheShardsUsed; ++s) {
        snap.cacheShardEntries[s] =
            reg.cacheShardEntries[s].load(std::memory_order_relaxed);
    }
    for (std::size_t w = kMaxWorkers; w-- > 0;) {
        for (std::size_t c = 0; c < kNumWorkerCounters; ++c) {
            if (snap.workers[w][c] != 0) {
                snap.workersUsed = static_cast<std::uint32_t>(w + 1);
                break;
            }
        }
        if (snap.workersUsed != 0)
            break;
    }
    return snap;
}

std::string
toPrometheus(const Snapshot &snap)
{
    std::string out;
    out.reserve(1u << 14);

    for (std::size_t c = 0; c < kNumCounters; ++c) {
        const std::string family =
            std::string("antsim_") + kCounterNames[c] + "_total";
        appendFamilyHeader(out, family, kCounterHelp[c], "counter");
        appendSample(out, family, snap.counters[c]);
    }

    for (std::size_t c = 0; c < kNumWorkerCounters; ++c) {
        const std::string family =
            std::string("antsim_") + kWorkerCounterNames[c] + "_total";
        appendFamilyHeader(out, family, kWorkerCounterHelp[c], "counter");
        for (std::uint32_t w = 0; w < snap.workersUsed; ++w) {
            appendSample(out,
                         family + "{worker=\"" + std::to_string(w) + "\"}",
                         snap.workers[w][c]);
        }
    }

    for (std::size_t g = 0; g < kNumGauges; ++g) {
        const std::string family =
            std::string("antsim_") + kGaugeNames[g];
        appendFamilyHeader(out, family, kGaugeHelp[g], "gauge");
        appendSampleI(out, family, snap.gaugeValue[g]);
        const std::string peak = family + "_peak";
        appendFamilyHeader(out, peak,
                           (std::string(kGaugeHelp[g]) + " (peak)").c_str(),
                           "gauge");
        appendSampleI(out, peak, snap.gaugePeak[g]);
    }

    {
        const std::string family = "antsim_trace_cache_shard_entries";
        appendFamilyHeader(out, family,
                           "planes resident per trace-cache shard",
                           "gauge");
        for (std::uint32_t s = 0; s < snap.cacheShardsUsed; ++s) {
            appendSampleI(out,
                          family + "{shard=\"" + std::to_string(s) + "\"}",
                          snap.cacheShardEntries[s]);
        }
    }

    {
        const std::string ns_family = "antsim_stage_ns_total";
        appendFamilyHeader(out, ns_family,
                           "host wall nanoseconds per profiled stage",
                           "counter");
        for (std::size_t s = 0; s < kNumStages; ++s) {
            appendSample(out,
                         ns_family + "{stage=\"" + kStageNames[s] + "\"}",
                         snap.stageNs[s]);
        }
        const std::string calls_family = "antsim_stage_calls_total";
        appendFamilyHeader(out, calls_family,
                           "profiled regions entered per stage",
                           "counter");
        for (std::size_t s = 0; s < kNumStages; ++s) {
            appendSample(
                out,
                calls_family + "{stage=\"" + kStageNames[s] + "\"}",
                snap.stageCalls[s]);
        }
    }

    for (std::size_t h = 0; h < kNumHists; ++h) {
        const std::string family =
            std::string("antsim_") + kHistNames[h];
        appendFamilyHeader(out, family, kHistHelp[h], "histogram");
        const Snapshot::HistData &data = snap.hists[h];
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < kHistBins - 1; ++b) {
            cumulative += data.bins[b];
            // Bucket b holds values <= 2^b - 1 (log2 layout, exact
            // integer upper bounds -- no floating point anywhere).
            const std::uint64_t le = (1ull << b) - 1;
            appendSample(out,
                         family + "_bucket{le=\"" + std::to_string(le) +
                             "\"}",
                         cumulative);
        }
        appendSample(out, family + "_bucket{le=\"+Inf\"}", data.count);
        appendSample(out, family + "_sum", data.sum);
        appendSample(out, family + "_count", data.count);
    }
    return out;
}

void
writePrometheus(const std::string &path)
{
    const std::string doc = toPrometheus(snapshot());
    std::ofstream out(path, std::ios::binary);
    if (!out)
        ANT_FATAL("cannot open metrics output file '", path, "'");
    out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    out.flush();
    if (!out)
        ANT_FATAL("failed writing metrics output file '", path, "'");
}

void
reset()
{
    detail::Registry &reg = detail::registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto &shard : reg.shards) {
        for (auto &cell : shard->counters)
            cell.store(0, std::memory_order_relaxed);
        for (auto &worker : shard->workers) {
            for (auto &cell : worker)
                cell.store(0, std::memory_order_relaxed);
        }
        for (auto &cell : shard->stageNs)
            cell.store(0, std::memory_order_relaxed);
        for (auto &cell : shard->stageCalls)
            cell.store(0, std::memory_order_relaxed);
        for (auto &hist : shard->hists) {
            for (auto &cell : hist.bins)
                cell.store(0, std::memory_order_relaxed);
            hist.count.store(0, std::memory_order_relaxed);
            hist.sum.store(0, std::memory_order_relaxed);
            hist.min.store(~0ull, std::memory_order_relaxed);
            hist.max.store(0, std::memory_order_relaxed);
        }
    }
    for (auto &cell : reg.gaugeValue)
        cell.store(0, std::memory_order_relaxed);
    for (auto &cell : reg.gaugePeak)
        cell.store(0, std::memory_order_relaxed);
    for (auto &cell : reg.cacheShardEntries)
        cell.store(0, std::memory_order_relaxed);
    reg.cacheShardCount.store(0, std::memory_order_relaxed);
}

} // namespace metrics
} // namespace obs
} // namespace antsim
