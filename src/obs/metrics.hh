/**
 * @file
 * Host-side metrics registry: counters, gauges, and fixed-bin
 * histograms describing the *simulator's own* execution (thread-pool
 * utilization, trace-cache residency, arena high-water marks, stage
 * wall-clock) -- the complement of src/obs/trace.hh, which records the
 * *modeled hardware's* cycles.
 *
 * Layering: the producer API below is entirely header-inline (C++17
 * inline variables hold the registry state), so ant_util code -- the
 * thread pool, the arena -- can record without linking ant_obs, which
 * itself links ant_util. Consumer-side code (snapshot, Prometheus
 * exposition, reset) lives in metrics.cc and is only called from
 * bench/report/test code, all of which links ant_obs.
 *
 * Sharding and determinism: every recording thread owns a MetricShard
 * of relaxed atomics (obtained via threadAttach), so the hot path is
 * uncontended and TSan-clean even while another thread snapshots a
 * live heartbeat. A snapshot merges shards by summation (counters,
 * histogram bins) -- associative and commutative, the same merge
 * discipline as the simulated-time HistogramRegistry -- so the merged
 * totals of a deterministic workload are independent of worker count
 * and scheduling (tests/metrics_test.cc).
 *
 * Overhead: when metrics are off (the default), every instrumentation
 * site reduces to one thread-local pointer load and branch --
 * detail::t_shard stays nullptr because threadAttach refuses to
 * install a shard while disabled. tests/obs_overhead_test.cc asserts
 * stats, report JSON, and simulated-time trace bytes are identical
 * with metrics on and off; host wall-clock readings live only here
 * and in host_trace.hh/profiler.hh (antsim-lint whitelist), never in
 * model code.
 */

#ifndef ANTSIM_OBS_METRICS_HH
#define ANTSIM_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace antsim {
namespace obs {
namespace metrics {

/** Process-wide monotonic counters. */
enum class Counter : unsigned {
    /** parallelFor jobs issued. */
    PoolParallelFors = 0,
    /** Work items scheduled across all parallelFor jobs. */
    PoolItems,
    /** Trace-cache lookups served from the cache. */
    TraceCacheHits,
    /** Trace-cache lookups that generated (cache off counts too). */
    TraceCacheMisses,
    /** Planes inserted into the trace cache. */
    TraceCacheInserts,
    /** Planes evicted from the trace cache (FIFO, over budget). */
    TraceCacheEvictions,
    /** Payload bytes released by trace-cache evictions. */
    TraceCacheEvictedBytes,
    /** Arena blocks carved by Arena::alloc. */
    ArenaAllocs,
    /** Bytes carved by Arena::alloc (with alignment padding). */
    ArenaAllocBytes,
    /** Arena slabs (re)allocated by Arena::reset. */
    ArenaSlabs,
    /** Slab bytes allocated by Arena::reset. */
    ArenaSlabBytes,
    /** AlignedVec growth reallocations. */
    AlignedVecGrows,
    /** Bytes allocated by AlignedVec growths. */
    AlignedVecGrowBytes,
    /** runConvNetwork / runMatmulNetwork invocations. */
    RunnerRuns,
    /** Simulated (layer, phase, sample) units completed. */
    RunnerUnits,
    NumCounters
};

constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::NumCounters);

/** Per-worker counters (label: pool-relative worker id). */
enum class WorkerCounter : unsigned {
    /** Nanoseconds spent executing claimed chunks. */
    BusyNs = 0,
    /** Nanoseconds spent parked on the pool's wake condition. */
    IdleNs,
    /** Chunks claimed from the shared cursor. */
    Chunks,
    /** Work items executed. */
    Items,
    NumWorkerCounters
};

constexpr std::size_t kNumWorkerCounters =
    static_cast<std::size_t>(WorkerCounter::NumWorkerCounters);

/** Worker ids at or beyond this are folded into the last label. */
constexpr std::size_t kMaxWorkers = 64;

/** Process-wide gauges (live value + tracked peak). */
enum class Gauge : unsigned {
    /** Payload bytes currently resident in the trace cache. */
    TraceCacheResidentBytes = 0,
    /** Planes currently resident in the trace cache. */
    TraceCacheEntries,
    /** Largest parallelFor item count seen (queue-depth proxy: the
     *  pool runs one job at a time, so pending depth == job items). */
    PoolMaxJobItems,
    /** Largest pool worker count seen. */
    PoolWorkers,
    /** Largest Arena::used() watermark seen across all arenas. */
    ArenaHighWaterBytes,
    /** Largest AlignedVec capacity in bytes seen across all vectors. */
    AlignedVecHighWaterBytes,
    NumGauges
};

constexpr std::size_t kNumGauges =
    static_cast<std::size_t>(Gauge::NumGauges);

/** Trace-cache shard slots for the occupancy gauge (>= kShards). */
constexpr std::size_t kMaxCacheShards = 32;

/** Host-side distributions. */
enum class Hist : unsigned {
    /** Wall nanoseconds of one simulated unit. */
    UnitWallNs = 0,
    /** Item count of each parallelFor job. */
    PoolJobItems,
    /** Payload bytes of each plane inserted into the trace cache. */
    TraceCachePlaneBytes,
    NumHists
};

constexpr std::size_t kNumHists = static_cast<std::size_t>(Hist::NumHists);

/** Log2 bucket count of every host histogram (last bin = overflow). */
constexpr std::size_t kHistBins = 40;

/**
 * Log2 bucket of @p value: bucket 0 holds {0}, bucket i >= 1 holds
 * [2^(i-1), 2^i), the last bucket absorbs the overflow tail -- the
 * same layout discipline as obs::Histogram's Log2 kind, so merged
 * bins stay exact integers.
 */
constexpr std::uint32_t
histBucket(std::uint64_t value)
{
    if (value == 0)
        return 0;
    std::uint32_t bit = 0;
    while (value >>= 1)
        ++bit;
    const std::uint32_t bucket = bit + 1;
    return bucket < kHistBins ? bucket
                              : static_cast<std::uint32_t>(kHistBins - 1);
}

/**
 * Number of profiled host stages, mirrored from report/profiler.hh's
 * Stage enum (ant_obs cannot include report headers without inverting
 * the library layering; profiler.cc static_asserts the two agree).
 */
constexpr std::size_t kNumStages = 4;

/**
 * One thread's slice of the registry. All cells are relaxed atomics:
 * the owning thread is the only writer, but a heartbeat or snapshot
 * may read concurrently, and relaxed uncontended atomics cost the
 * same as plain loads/stores on every target this simulator runs on.
 */
struct MetricShard
{
    std::array<std::atomic<std::uint64_t>, kNumCounters> counters{};
    std::array<std::array<std::atomic<std::uint64_t>, kNumWorkerCounters>,
               kMaxWorkers>
        workers{};
    std::array<std::atomic<std::uint64_t>, kNumStages> stageNs{};
    std::array<std::atomic<std::uint64_t>, kNumStages> stageCalls{};
    struct HistCells
    {
        std::array<std::atomic<std::uint64_t>, kHistBins> bins{};
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> min{~0ull};
        std::atomic<std::uint64_t> max{0};
    };
    std::array<HistCells, kNumHists> hists{};
};

namespace detail {

/**
 * constinit thread-local pointer: the one branch every hot site pays
 * when metrics are off (same pattern -- and same rationale -- as
 * obs::detail::t_recorder in trace.hh). C++17 inline variables give
 * exactly one instance per process without an ant_obs symbol.
 */
inline thread_local constinit MetricShard *t_shard = nullptr;

inline std::atomic<bool> g_enabled{false};

/** Shard list plus the registry-global gauges. */
struct Registry
{
    std::mutex mutex;
    /** Shards live for the process lifetime: a detached thread's
     *  totals must survive it, and t_shard pointers must never
     *  dangle. reset() zeroes cells instead of freeing shards. */
    std::vector<std::unique_ptr<MetricShard>> shards;
    std::array<std::atomic<std::int64_t>, kNumGauges> gaugeValue{};
    std::array<std::atomic<std::int64_t>, kNumGauges> gaugePeak{};
    std::array<std::atomic<std::int64_t>, kMaxCacheShards>
        cacheShardEntries{};
    std::atomic<std::uint32_t> cacheShardCount{0};
};

inline Registry &
registry()
{
    static Registry r;
    return r;
}

/** Raise @p cell to at least @p v (relaxed CAS max; uncontended). */
inline void
raiseTo(std::atomic<std::int64_t> &cell, std::int64_t v)
{
    std::int64_t cur = cell.load(std::memory_order_relaxed);
    while (cur < v &&
           !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

inline void
raiseToU(std::atomic<std::uint64_t> &cell, std::uint64_t v)
{
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (cur < v &&
           !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

inline void
lowerToU(std::atomic<std::uint64_t> &cell, std::uint64_t v)
{
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (cur > v &&
           !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

} // namespace detail

/** Whether the registry is collecting. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * Turn collection on or off process-wide. Threads attach lazily via
 * threadAttach; disabling stops new attachments but leaves existing
 * shards in place (their totals remain snapshot-visible).
 */
inline void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

/** The calling thread's shard; nullptr when it never attached. */
inline MetricShard *
shard()
{
    return detail::t_shard;
}

/**
 * Install a shard for the calling thread (no-op when disabled or
 * already attached). Called at the known thread entry points -- bench
 * parseOptions (main thread), ThreadPool workerLoop / parallelFor --
 * so hot recording sites stay a single pointer branch.
 */
inline void
threadAttach()
{
    if (!enabled() || detail::t_shard != nullptr)
        return;
    detail::Registry &reg = detail::registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.shards.push_back(std::make_unique<MetricShard>());
    detail::t_shard = reg.shards.back().get();
}

/** Bump counter @p c by @p delta. */
inline void
count(Counter c, std::uint64_t delta = 1)
{
    if (MetricShard *s = detail::t_shard) {
        s->counters[static_cast<std::size_t>(c)].fetch_add(
            delta, std::memory_order_relaxed);
    }
}

/** Bump per-worker counter @p c of worker @p worker by @p delta. */
inline void
workerCount(std::uint32_t worker, WorkerCounter c, std::uint64_t delta)
{
    if (MetricShard *s = detail::t_shard) {
        const std::size_t w =
            worker < kMaxWorkers ? worker : kMaxWorkers - 1;
        s->workers[w][static_cast<std::size_t>(c)].fetch_add(
            delta, std::memory_order_relaxed);
    }
}

/** Add @p delta (may be negative) to gauge @p g; tracks the peak. */
inline void
gaugeAdd(Gauge g, std::int64_t delta)
{
    if (detail::t_shard == nullptr)
        return;
    detail::Registry &reg = detail::registry();
    const std::size_t i = static_cast<std::size_t>(g);
    const std::int64_t now =
        reg.gaugeValue[i].fetch_add(delta, std::memory_order_relaxed) +
        delta;
    detail::raiseTo(reg.gaugePeak[i], now);
}

/**
 * Overwrite gauge @p g with @p value without touching its peak.
 * Unlike the guarded hot-path helpers this works unattached: it is
 * for cold-path corrections (e.g. trace_cache::reset zeroing the
 * residency gauges after dropping every shard).
 */
inline void
gaugeSet(Gauge g, std::int64_t value)
{
    detail::registry().gaugeValue[static_cast<std::size_t>(g)].store(
        value, std::memory_order_relaxed);
}

/** Raise gauge @p g to at least @p value (max-watermark semantics). */
inline void
gaugeMax(Gauge g, std::int64_t value)
{
    if (detail::t_shard == nullptr)
        return;
    detail::Registry &reg = detail::registry();
    const std::size_t i = static_cast<std::size_t>(g);
    detail::raiseTo(reg.gaugeValue[i], value);
    detail::raiseTo(reg.gaugePeak[i], value);
}

/**
 * Publish the live entry count of trace-cache shard @p index out of
 * @p shard_count total shards (drives the per-shard occupancy gauge).
 */
inline void
cacheShardSet(std::size_t index, std::int64_t entries,
              std::size_t shard_count)
{
    if (detail::t_shard == nullptr || index >= kMaxCacheShards)
        return;
    detail::Registry &reg = detail::registry();
    reg.cacheShardEntries[index].store(entries,
                                       std::memory_order_relaxed);
    std::uint32_t cur =
        reg.cacheShardCount.load(std::memory_order_relaxed);
    const auto want = static_cast<std::uint32_t>(
        shard_count < kMaxCacheShards ? shard_count : kMaxCacheShards);
    while (cur < want &&
           !reg.cacheShardCount.compare_exchange_weak(
               cur, want, std::memory_order_relaxed)) {
    }
}

/** Record one sample into host histogram @p h. */
inline void
histRecord(Hist h, std::uint64_t value)
{
    if (MetricShard *s = detail::t_shard) {
        MetricShard::HistCells &cells =
            s->hists[static_cast<std::size_t>(h)];
        cells.bins[histBucket(value)].fetch_add(
            1, std::memory_order_relaxed);
        cells.count.fetch_add(1, std::memory_order_relaxed);
        cells.sum.fetch_add(value, std::memory_order_relaxed);
        detail::lowerToU(cells.min, value);
        detail::raiseToU(cells.max, value);
    }
}

/** Add one profiled stage region (index = report/profiler.hh Stage). */
inline void
stageAdd(std::size_t stage_index, std::uint64_t nanos)
{
    if (MetricShard *s = detail::t_shard) {
        if (stage_index < kNumStages) {
            s->stageNs[stage_index].fetch_add(nanos,
                                              std::memory_order_relaxed);
            s->stageCalls[stage_index].fetch_add(
                1, std::memory_order_relaxed);
        }
    }
}

/**
 * Host wall-clock in nanoseconds (steady, epoch = clock's own).
 * Confined to this whitelisted header so instrumented code never
 * names a clock type itself (antsim-lint no-wall-clock-in-sim).
 */
inline std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Live process-wide total of counter @p c (heartbeat; locks). */
inline std::uint64_t
counterTotal(Counter c)
{
    detail::Registry &reg = detail::registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    std::uint64_t total = 0;
    for (const auto &s : reg.shards) {
        total += s->counters[static_cast<std::size_t>(c)].load(
            std::memory_order_relaxed);
    }
    return total;
}

/** Live value of gauge @p g. */
inline std::int64_t
gaugeValue(Gauge g)
{
    return detail::registry()
        .gaugeValue[static_cast<std::size_t>(g)]
        .load(std::memory_order_relaxed);
}

// ------------------------------------------------------------------
// Consumer API (metrics.cc, ant_obs): snapshot/merge, name catalog,
// Prometheus text exposition, reset. Callers link ant_obs.

/** Order-independent merge of every shard, plus the global gauges. */
struct Snapshot
{
    std::array<std::uint64_t, kNumCounters> counters{};
    std::array<std::array<std::uint64_t, kNumWorkerCounters>, kMaxWorkers>
        workers{};
    /** Highest worker label with any activity, plus one. */
    std::uint32_t workersUsed = 0;
    std::array<std::uint64_t, kNumStages> stageNs{};
    std::array<std::uint64_t, kNumStages> stageCalls{};
    std::array<std::int64_t, kNumGauges> gaugeValue{};
    std::array<std::int64_t, kNumGauges> gaugePeak{};
    std::array<std::int64_t, kMaxCacheShards> cacheShardEntries{};
    std::uint32_t cacheShardsUsed = 0;
    struct HistData
    {
        std::array<std::uint64_t, kHistBins> bins{};
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        /** 0 when empty (same convention as obs::Histogram). */
        std::uint64_t min = 0;
        std::uint64_t max = 0;
    };
    std::array<HistData, kNumHists> hists{};
};

/** Stable snake_case metric names (exposition / report keys). */
const char *counterName(Counter c);
const char *workerCounterName(WorkerCounter c);
const char *gaugeName(Gauge g);
const char *histName(Hist h);
const char *stageMetricName(std::size_t stage_index);

/** Merge every shard into one Snapshot (sum; order-independent). */
Snapshot snapshot();

/**
 * Serialize @p snap in the Prometheus text exposition format
 * (# HELP/# TYPE + samples; counters end in _total, histograms emit
 * cumulative _bucket/_sum/_count). Deterministic: fixed catalog
 * order, exact integers only.
 */
std::string toPrometheus(const Snapshot &snap);

/** Write toPrometheus(snapshot()) to @p path (fatal on I/O error). */
void writePrometheus(const std::string &path);

/** Zero every cell and gauge; shards stay attached (tests). */
void reset();

} // namespace metrics
} // namespace obs
} // namespace antsim

#endif // ANTSIM_OBS_METRICS_HH
