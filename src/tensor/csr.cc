#include "csr.hh"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/audit.hh"
#include "util/simd.hh"

#if defined(__x86_64__)
#define ANTSIM_X86_SIMD 1
#include <immintrin.h>
#endif

namespace antsim {

namespace {

/**
 * Count the non-zeros of one row-major float buffer. Ground-truth
 * scalar form; the AVX2 form below must agree bit for bit (a float is
 * counted iff v != 0.0f, which keeps NaNs like the scalar compare).
 */
std::size_t
countNonzerosScalar(const float *data, std::size_t n)
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i)
        count += data[i] != 0.0f ? 1 : 0;
    return count;
}

/**
 * Compress one dense row: append the non-zero values and their column
 * indices at @p out_values / @p out_columns, returning how many were
 * written. Scalar ground truth for the AVX2 left-pack kernel.
 */
std::uint32_t
compressRowScalar(const float *row, std::uint32_t n, float *out_values,
                  std::uint32_t *out_columns)
{
    std::uint32_t cur = 0;
    for (std::uint32_t x = 0; x < n; ++x) {
        if (row[x] != 0.0f) {
            out_values[cur] = row[x];
            out_columns[cur] = x;
            ++cur;
        }
    }
    return cur;
}

#ifdef ANTSIM_X86_SIMD

/**
 * Left-pack permutation LUT: perm[mask] lists the set-bit positions of
 * the 8-bit @p mask in ascending order (slack lanes repeat 0; their
 * stores land in the tail pad and are overwritten or ignored).
 */
struct PackLut
{
    alignas(32) std::uint32_t perm[256][8];
};

const PackLut &
packLut()
{
    static const PackLut lut = [] {
        PackLut l{};
        for (int mask = 0; mask < 256; ++mask) {
            int k = 0;
            for (int bit = 0; bit < 8; ++bit) {
                if (mask & (1 << bit))
                    l.perm[mask][k++] = static_cast<std::uint32_t>(bit);
            }
            for (; k < 8; ++k)
                l.perm[mask][k] = 0;
        }
        return l;
    }();
    return lut;
}

__attribute__((target("avx2"))) std::size_t
countNonzerosAvx2(const float *data, std::size_t n)
{
    const __m256 zero = _mm256_setzero_ps();
    std::size_t count = 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(data + i);
        // NEQ_UQ: true for NaN operands, exactly like scalar v != 0.
        const int mask =
            _mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_NEQ_UQ));
        count += static_cast<unsigned>(__builtin_popcount(
            static_cast<unsigned>(mask)));
    }
    for (; i < n; ++i)
        count += data[i] != 0.0f ? 1 : 0;
    return count;
}

__attribute__((target("avx2"))) std::uint32_t
compressRowAvx2(const float *row, std::uint32_t n, float *out_values,
                std::uint32_t *out_columns)
{
    const PackLut &lut = packLut();
    const __m256 zero = _mm256_setzero_ps();
    std::uint32_t cur = 0;
    std::uint32_t x = 0;
    for (; x + 8 <= n; x += 8) {
        const __m256 v = _mm256_loadu_ps(row + x);
        const int mask =
            _mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_NEQ_UQ));
        const __m256i perm = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(lut.perm[mask]));
        // Full-vector stores; the lanes beyond popcount(mask) land in
        // the tail pad allocateStorage reserves and are overwritten by
        // the next iteration or ignored.
        _mm256_storeu_ps(out_values + cur,
                         _mm256_permutevar8x32_ps(v, perm));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out_columns + cur),
            _mm256_add_epi32(perm, _mm256_set1_epi32(
                                       static_cast<int>(x))));
        cur += static_cast<unsigned>(__builtin_popcount(
            static_cast<unsigned>(mask)));
    }
    for (; x < n; ++x) {
        if (row[x] != 0.0f) {
            out_values[cur] = row[x];
            out_columns[cur] = x;
            ++cur;
        }
    }
    return cur;
}

#endif // ANTSIM_X86_SIMD

std::size_t
countNonzeros(const float *data, std::size_t n)
{
#ifdef ANTSIM_X86_SIMD
    if (simd::avx2Enabled())
        return countNonzerosAvx2(data, n);
#endif
    return countNonzerosScalar(data, n);
}

std::uint32_t
compressRow(const float *row, std::uint32_t n, float *out_values,
            std::uint32_t *out_columns)
{
#ifdef ANTSIM_X86_SIMD
    if (simd::avx2Enabled())
        return compressRowAvx2(row, n, out_values, out_columns);
#endif
    return compressRowScalar(row, n, out_values, out_columns);
}

} // namespace

std::uint32_t
narrowNnz(std::size_t nnz)
{
    ANT_ASSERT(nnz <= std::numeric_limits<std::uint32_t>::max(),
               "sparse matrix nnz ", nnz,
               " overflows the uint32 CSR index arrays");
    return static_cast<std::uint32_t>(nnz);
}

void
CsrMatrix::allocateStorage(std::size_t nnz)
{
    nnz_ = narrowNnz(nnz);
    // 8 elements of tail slack behind the values and columns blocks:
    // the AVX2 compress kernels store full 8-lane vectors and advance
    // the cursor by the pack count, so the final store of a row may
    // spill up to 7 lanes past the data.
    const std::size_t padded = nnz + 8;
    const std::size_t rows = static_cast<std::size_t>(height_) + 1;
    arena_.reset(Arena::aligned(padded * sizeof(float)) +
                 Arena::aligned(padded * sizeof(std::uint32_t)) +
                 Arena::aligned(rows * sizeof(std::uint32_t)));
    valuesOff_ = arena_.alloc<float>(padded);
    columnsOff_ = arena_.alloc<std::uint32_t>(padded);
    rowPtrOff_ = arena_.alloc<std::uint32_t>(rows);
}

void
CsrMatrix::maybeValidate() const
{
    if (audit::enabled())
        validate();
}

CsrMatrix::CsrMatrix(std::uint32_t height, std::uint32_t width)
    : height_(height), width_(width)
{
    allocateStorage(0);
}

CsrMatrix
CsrMatrix::fromDense(const Dense2d<float> &dense)
{
    CsrMatrix csr(dense.height(), dense.width());
    const float *data = dense.data().data();
    const std::size_t cells = dense.data().size();
    csr.allocateStorage(countNonzeros(data, cells));

    float *values = csr.valuesData();
    std::uint32_t *columns = csr.columnsData();
    std::uint32_t *row_ptr = csr.rowPtrData();
    std::uint32_t cur = 0;
    for (std::uint32_t y = 0; y < dense.height(); ++y) {
        cur += compressRow(data + static_cast<std::size_t>(y) *
                               dense.width(),
                           dense.width(), values + cur, columns + cur);
        row_ptr[y + 1] = cur;
    }
    ANT_ASSERT(cur == csr.nnz_, "fromDense fill wrote ", cur,
               " entries but the counting pass saw ", csr.nnz_);
    csr.maybeValidate();
    return csr;
}

CsrMatrix
CsrMatrix::fromRaw(std::uint32_t height, std::uint32_t width,
                   std::vector<float> values,
                   std::vector<std::uint32_t> columns,
                   std::vector<std::uint32_t> row_ptr)
{
    ANT_ASSERT(row_ptr.size() == static_cast<std::size_t>(height) + 1,
               "rowPtr size ", row_ptr.size(), " != height+1 ", height + 1);
    ANT_ASSERT(values.size() == columns.size(),
               "values/columns size mismatch");
    CsrMatrix csr(height, width);
    csr.allocateStorage(values.size());
    if (!values.empty()) {
        std::memcpy(csr.valuesData(), values.data(),
                    values.size() * sizeof(float));
        std::memcpy(csr.columnsData(), columns.data(),
                    columns.size() * sizeof(std::uint32_t));
    }
    std::memcpy(csr.rowPtrData(), row_ptr.data(),
                row_ptr.size() * sizeof(std::uint32_t));
    csr.validate();
    return csr;
}

CsrMatrix
CsrMatrix::fromCoo(std::uint32_t height, std::uint32_t width,
                   std::vector<SparseEntry> entries)
{
    for (const auto &e : entries) {
        ANT_ASSERT(e.x < width && e.y < height, "COO entry (", e.x, ",",
                   e.y, ") outside ", width, "x", height);
    }
    std::sort(entries.begin(), entries.end(),
              [](const SparseEntry &a, const SparseEntry &b) {
                  return a.y != b.y ? a.y < b.y : a.x < b.x;
              });

    // Counting pass: distinct (y, x) pairs after duplicate folding.
    std::size_t unique = 0;
    for (std::size_t i = 0; i < entries.size(); ++unique) {
        const std::size_t first = i;
        for (++i; i < entries.size() && entries[i].y == entries[first].y &&
             entries[i].x == entries[first].x;
             ++i) {
        }
    }

    CsrMatrix csr(height, width);
    csr.allocateStorage(unique);
    float *values = csr.valuesData();
    std::uint32_t *columns = csr.columnsData();
    std::uint32_t *row_ptr = csr.rowPtrData();
    std::uint32_t cur = 0;
    for (std::size_t i = 0; i < entries.size();) {
        float v = entries[i].value;
        const std::uint32_t x = entries[i].x;
        const std::uint32_t y = entries[i].y;
        for (++i;
             i < entries.size() && entries[i].y == y && entries[i].x == x;
             ++i) {
            v += entries[i].value;
        }
        values[cur] = v;
        columns[cur] = x;
        ++cur;
        ++row_ptr[y + 1];
    }
    for (std::uint32_t y = 0; y < height; ++y)
        row_ptr[y + 1] += row_ptr[y];
    csr.maybeValidate();
    return csr;
}

double
CsrMatrix::sparsity() const
{
    const std::size_t total =
        static_cast<std::size_t>(height_) * static_cast<std::size_t>(width_);
    if (total == 0)
        return 1.0;
    return 1.0 - static_cast<double>(nnz()) / static_cast<double>(total);
}

std::uint32_t
CsrMatrix::rowOfPosition(std::uint32_t pos) const
{
    ANT_ASSERT(pos < nnz(), "position ", pos, " beyond nnz ", nnz());
    // Binary search in rowPtr for the containing row.
    const auto row_ptr = rowPtr();
    const auto it = std::upper_bound(row_ptr.begin(), row_ptr.end(), pos);
    return static_cast<std::uint32_t>(it - row_ptr.begin()) - 1;
}

SparseEntry
CsrMatrix::entry(std::uint32_t pos) const
{
    return {values()[pos], columns()[pos], rowOfPosition(pos)};
}

Dense2d<float>
CsrMatrix::toDense() const
{
    Dense2d<float> dense(height_, width_);
    const auto row_ptr = rowPtr();
    const auto cols = columns();
    const auto vals = values();
    for (std::uint32_t y = 0; y < height_; ++y)
        for (std::uint32_t i = row_ptr[y]; i < row_ptr[y + 1]; ++i)
            dense.at(cols[i], y) = vals[i];
    return dense;
}

std::vector<SparseEntry>
CsrMatrix::entries() const
{
    std::vector<SparseEntry> out;
    out.reserve(nnz());
    const auto row_ptr = rowPtr();
    const auto cols = columns();
    const auto vals = values();
    for (std::uint32_t y = 0; y < height_; ++y)
        for (std::uint32_t i = row_ptr[y]; i < row_ptr[y + 1]; ++i)
            out.push_back({vals[i], cols[i], y});
    return out;
}

CsrMatrix
CsrMatrix::rotated180() const
{
    // Algorithm 3: remap indices only; the Values array contents do not
    // change (their order does, to restore row-major ordering).
    CsrMatrix out(height_, width_);
    out.allocateStorage(nnz());
    const auto row_ptr = rowPtr();
    const auto cols = columns();
    const auto vals = values();
    float *out_values = out.valuesData();
    std::uint32_t *out_columns = out.columnsData();
    std::uint32_t *out_row_ptr = out.rowPtrData();
    std::uint32_t cur = 0;
    // The rotated row H-1-y enumerates source rows in reverse; within a
    // row, rotated columns W-1-x reverse the column order.
    for (std::uint32_t y_rot = 0; y_rot < height_; ++y_rot) {
        const std::uint32_t y = height_ - 1 - y_rot;
        const std::uint32_t begin = row_ptr[y];
        const std::uint32_t end = row_ptr[y + 1];
        for (std::uint32_t i = end; i > begin; --i) {
            out_values[cur] = vals[i - 1];
            out_columns[cur] = width_ - 1 - cols[i - 1];
            ++cur;
        }
        out_row_ptr[y_rot + 1] = cur;
    }
    out.maybeValidate();
    return out;
}

CsrMatrix
CsrMatrix::transposed() const
{
    CsrMatrix out(width_, height_);
    out.allocateStorage(nnz());
    const auto row_ptr = rowPtr();
    const auto cols = columns();
    const auto vals = values();
    std::uint32_t *out_row_ptr = out.rowPtrData();
    // Count entries per column, prefix-sum into the row pointers.
    for (std::uint32_t c : cols)
        ++out_row_ptr[c + 1];
    for (std::uint32_t c = 0; c < width_; ++c)
        out_row_ptr[c + 1] += out_row_ptr[c];
    float *out_values = out.valuesData();
    std::uint32_t *out_columns = out.columnsData();
    std::vector<std::uint32_t> cursor(out_row_ptr, out_row_ptr + width_);
    for (std::uint32_t y = 0; y < height_; ++y) {
        for (std::uint32_t i = row_ptr[y]; i < row_ptr[y + 1]; ++i) {
            const std::uint32_t c = cols[i];
            out_values[cursor[c]] = vals[i];
            out_columns[cursor[c]] = y;
            ++cursor[c];
        }
    }
    out.maybeValidate();
    return out;
}

void
CsrMatrix::validate() const
{
    const auto row_ptr = rowPtr();
    const auto cols = columns();
    ANT_ASSERT(row_ptr.size() == static_cast<std::size_t>(height_) + 1,
               "rowPtr size ", row_ptr.size(), " != height+1 ", height_ + 1);
    ANT_ASSERT(row_ptr.front() == 0, "rowPtr[0] must be 0");
    ANT_ASSERT(row_ptr.back() == nnz(),
               "rowPtr back ", row_ptr.back(), " != values size ", nnz());
    // Check the row-pointer structure completely before dereferencing
    // columns through it.
    for (std::uint32_t y = 0; y < height_; ++y) {
        ANT_ASSERT(row_ptr[y] <= row_ptr[y + 1],
                   "rowPtr must be non-decreasing at row ", y);
        ANT_ASSERT(row_ptr[y + 1] <= nnz(),
                   "rowPtr exceeds storage at row ", y);
    }
    for (std::uint32_t y = 0; y < height_; ++y) {
        for (std::uint32_t i = row_ptr[y]; i < row_ptr[y + 1]; ++i) {
            ANT_ASSERT(cols[i] < width_, "column ", cols[i],
                       " out of width ", width_);
            if (i > row_ptr[y]) {
                ANT_ASSERT(cols[i - 1] < cols[i],
                           "columns must be strictly increasing in row ", y);
            }
        }
    }
}

bool
CsrMatrix::operator==(const CsrMatrix &o) const
{
    return height_ == o.height_ && width_ == o.width_ && nnz_ == o.nnz_ &&
        std::equal(values().begin(), values().end(), o.values().begin()) &&
        std::equal(columns().begin(), columns().end(),
                   o.columns().begin()) &&
        std::equal(rowPtr().begin(), rowPtr().end(), o.rowPtr().begin());
}

void
CscMatrix::allocateStorage(std::size_t nnz)
{
    nnz_ = narrowNnz(nnz);
    const std::size_t padded = nnz + 8;
    const std::size_t cols = static_cast<std::size_t>(width_) + 1;
    arena_.reset(Arena::aligned(padded * sizeof(float)) +
                 Arena::aligned(padded * sizeof(std::uint32_t)) +
                 Arena::aligned(cols * sizeof(std::uint32_t)));
    valuesOff_ = arena_.alloc<float>(padded);
    rowsOff_ = arena_.alloc<std::uint32_t>(padded);
    colPtrOff_ = arena_.alloc<std::uint32_t>(cols);
}

CscMatrix
CscMatrix::fromDense(const Dense2d<float> &dense)
{
    CscMatrix csc(dense.height(), dense.width());
    csc.allocateStorage(countNonzerosScalar(dense.data().data(),
                                            dense.data().size()));
    float *values = csc.valuesData();
    std::uint32_t *rows = csc.rowsData();
    std::uint32_t *col_ptr = csc.colPtrData();
    std::uint32_t cur = 0;
    for (std::uint32_t x = 0; x < dense.width(); ++x) {
        for (std::uint32_t y = 0; y < dense.height(); ++y) {
            const float v = dense.at(x, y);
            if (v != 0.0f) {
                values[cur] = v;
                rows[cur] = y;
                ++cur;
            }
        }
        col_ptr[x + 1] = cur;
    }
    return csc;
}

CscMatrix
CscMatrix::fromCsr(const CsrMatrix &csr)
{
    const CsrMatrix t = csr.transposed();
    CscMatrix csc(csr.height(), csr.width());
    csc.allocateStorage(t.nnz());
    if (t.nnz() > 0) {
        std::memcpy(csc.valuesData(), t.values().data(),
                    t.nnz() * sizeof(float));
        std::memcpy(csc.rowsData(), t.columns().data(),
                    t.nnz() * sizeof(std::uint32_t));
    }
    std::memcpy(csc.colPtrData(), t.rowPtr().data(),
                t.rowPtr().size() * sizeof(std::uint32_t));
    return csc;
}

std::uint32_t
CscMatrix::colOfPosition(std::uint32_t pos) const
{
    ANT_ASSERT(pos < nnz(), "position ", pos, " beyond nnz ", nnz());
    const auto col_ptr = colPtr();
    const auto it = std::upper_bound(col_ptr.begin(), col_ptr.end(), pos);
    return static_cast<std::uint32_t>(it - col_ptr.begin()) - 1;
}

SparseEntry
CscMatrix::entry(std::uint32_t pos) const
{
    return {values()[pos], colOfPosition(pos), rows()[pos]};
}

Dense2d<float>
CscMatrix::toDense() const
{
    Dense2d<float> dense(height_, width_);
    const auto col_ptr = colPtr();
    const auto row_idx = rows();
    const auto vals = values();
    for (std::uint32_t x = 0; x < width_; ++x)
        for (std::uint32_t i = col_ptr[x]; i < col_ptr[x + 1]; ++i)
            dense.at(x, row_idx[i]) = vals[i];
    return dense;
}

} // namespace antsim
