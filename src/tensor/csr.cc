#include "csr.hh"

#include <algorithm>

namespace antsim {

CsrMatrix::CsrMatrix(std::uint32_t height, std::uint32_t width)
    : height_(height), width_(width), rowPtr_(height + 1, 0)
{}

CsrMatrix
CsrMatrix::fromDense(const Dense2d<float> &dense)
{
    CsrMatrix csr(dense.height(), dense.width());
    for (std::uint32_t y = 0; y < dense.height(); ++y) {
        for (std::uint32_t x = 0; x < dense.width(); ++x) {
            const float v = dense.at(x, y);
            if (v != 0.0f) {
                csr.values_.push_back(v);
                csr.columns_.push_back(x);
            }
        }
        csr.rowPtr_[y + 1] = static_cast<std::uint32_t>(csr.values_.size());
    }
    return csr;
}

CsrMatrix
CsrMatrix::fromRaw(std::uint32_t height, std::uint32_t width,
                   std::vector<float> values,
                   std::vector<std::uint32_t> columns,
                   std::vector<std::uint32_t> row_ptr)
{
    CsrMatrix csr(height, width);
    csr.values_ = std::move(values);
    csr.columns_ = std::move(columns);
    csr.rowPtr_ = std::move(row_ptr);
    csr.validate();
    return csr;
}

CsrMatrix
CsrMatrix::fromCoo(std::uint32_t height, std::uint32_t width,
                   std::vector<SparseEntry> entries)
{
    for (const auto &e : entries) {
        ANT_ASSERT(e.x < width && e.y < height, "COO entry (", e.x, ",",
                   e.y, ") outside ", width, "x", height);
    }
    std::sort(entries.begin(), entries.end(),
              [](const SparseEntry &a, const SparseEntry &b) {
                  return a.y != b.y ? a.y < b.y : a.x < b.x;
              });
    CsrMatrix csr(height, width);
    std::size_t i = 0;
    for (std::uint32_t y = 0; y < height; ++y) {
        while (i < entries.size() && entries[i].y == y) {
            float v = entries[i].value;
            const std::uint32_t x = entries[i].x;
            ++i;
            while (i < entries.size() && entries[i].y == y &&
                   entries[i].x == x) {
                v += entries[i].value;
                ++i;
            }
            csr.values_.push_back(v);
            csr.columns_.push_back(x);
        }
        csr.rowPtr_[y + 1] = static_cast<std::uint32_t>(csr.values_.size());
    }
    return csr;
}

double
CsrMatrix::sparsity() const
{
    const std::size_t total =
        static_cast<std::size_t>(height_) * static_cast<std::size_t>(width_);
    if (total == 0)
        return 1.0;
    return 1.0 - static_cast<double>(nnz()) / static_cast<double>(total);
}

std::uint32_t
CsrMatrix::rowOfPosition(std::uint32_t pos) const
{
    ANT_ASSERT(pos < nnz(), "position ", pos, " beyond nnz ", nnz());
    // Binary search in rowPtr for the containing row.
    const auto it =
        std::upper_bound(rowPtr_.begin(), rowPtr_.end(), pos);
    return static_cast<std::uint32_t>(it - rowPtr_.begin()) - 1;
}

SparseEntry
CsrMatrix::entry(std::uint32_t pos) const
{
    return {values_[pos], columns_[pos], rowOfPosition(pos)};
}

Dense2d<float>
CsrMatrix::toDense() const
{
    Dense2d<float> dense(height_, width_);
    for (std::uint32_t y = 0; y < height_; ++y)
        for (std::uint32_t i = rowPtr_[y]; i < rowPtr_[y + 1]; ++i)
            dense.at(columns_[i], y) = values_[i];
    return dense;
}

std::vector<SparseEntry>
CsrMatrix::entries() const
{
    std::vector<SparseEntry> out;
    out.reserve(nnz());
    for (std::uint32_t y = 0; y < height_; ++y)
        for (std::uint32_t i = rowPtr_[y]; i < rowPtr_[y + 1]; ++i)
            out.push_back({values_[i], columns_[i], y});
    return out;
}

CsrMatrix
CsrMatrix::rotated180() const
{
    // Algorithm 3: remap indices only; the Values array contents do not
    // change (their order does, to restore row-major ordering).
    CsrMatrix out(height_, width_);
    out.values_.reserve(nnz());
    out.columns_.reserve(nnz());
    // The rotated row H-1-y enumerates source rows in reverse; within a
    // row, rotated columns W-1-x reverse the column order.
    for (std::uint32_t y_rot = 0; y_rot < height_; ++y_rot) {
        const std::uint32_t y = height_ - 1 - y_rot;
        const std::uint32_t begin = rowPtr_[y];
        const std::uint32_t end = rowPtr_[y + 1];
        for (std::uint32_t i = end; i > begin; --i) {
            out.values_.push_back(values_[i - 1]);
            out.columns_.push_back(width_ - 1 - columns_[i - 1]);
        }
        out.rowPtr_[y_rot + 1] =
            static_cast<std::uint32_t>(out.values_.size());
    }
    return out;
}

CsrMatrix
CsrMatrix::transposed() const
{
    CsrMatrix out(width_, height_);
    // Count entries per column.
    std::vector<std::uint32_t> counts(width_, 0);
    for (std::uint32_t c : columns_)
        ++counts[c];
    for (std::uint32_t c = 0; c < width_; ++c)
        out.rowPtr_[c + 1] = out.rowPtr_[c] + counts[c];
    out.values_.resize(nnz());
    out.columns_.resize(nnz());
    std::vector<std::uint32_t> cursor(out.rowPtr_.begin(),
                                      out.rowPtr_.end() - 1);
    for (std::uint32_t y = 0; y < height_; ++y) {
        for (std::uint32_t i = rowPtr_[y]; i < rowPtr_[y + 1]; ++i) {
            const std::uint32_t c = columns_[i];
            out.values_[cursor[c]] = values_[i];
            out.columns_[cursor[c]] = y;
            ++cursor[c];
        }
    }
    return out;
}

void
CsrMatrix::validate() const
{
    ANT_ASSERT(rowPtr_.size() == static_cast<std::size_t>(height_) + 1,
               "rowPtr size ", rowPtr_.size(), " != height+1 ", height_ + 1);
    ANT_ASSERT(rowPtr_.front() == 0, "rowPtr[0] must be 0");
    ANT_ASSERT(rowPtr_.back() == values_.size(),
               "rowPtr back ", rowPtr_.back(), " != values size ",
               values_.size());
    ANT_ASSERT(values_.size() == columns_.size(),
               "values/columns size mismatch");
    // Check the row-pointer structure completely before dereferencing
    // columns through it.
    for (std::uint32_t y = 0; y < height_; ++y) {
        ANT_ASSERT(rowPtr_[y] <= rowPtr_[y + 1],
                   "rowPtr must be non-decreasing at row ", y);
        ANT_ASSERT(rowPtr_[y + 1] <= values_.size(),
                   "rowPtr exceeds storage at row ", y);
    }
    for (std::uint32_t y = 0; y < height_; ++y) {
        for (std::uint32_t i = rowPtr_[y]; i < rowPtr_[y + 1]; ++i) {
            ANT_ASSERT(columns_[i] < width_, "column ", columns_[i],
                       " out of width ", width_);
            if (i > rowPtr_[y]) {
                ANT_ASSERT(columns_[i - 1] < columns_[i],
                           "columns must be strictly increasing in row ", y);
            }
        }
    }
}

bool
CsrMatrix::operator==(const CsrMatrix &o) const
{
    return height_ == o.height_ && width_ == o.width_ &&
        values_ == o.values_ && columns_ == o.columns_ &&
        rowPtr_ == o.rowPtr_;
}

CscMatrix
CscMatrix::fromDense(const Dense2d<float> &dense)
{
    CscMatrix csc(dense.height(), dense.width());
    for (std::uint32_t x = 0; x < dense.width(); ++x) {
        for (std::uint32_t y = 0; y < dense.height(); ++y) {
            const float v = dense.at(x, y);
            if (v != 0.0f) {
                csc.values_.push_back(v);
                csc.rows_.push_back(y);
            }
        }
        csc.colPtr_[x + 1] = static_cast<std::uint32_t>(csc.values_.size());
    }
    return csc;
}

CscMatrix
CscMatrix::fromCsr(const CsrMatrix &csr)
{
    const CsrMatrix t = csr.transposed();
    CscMatrix csc(csr.height(), csr.width());
    csc.values_ = t.values();
    csc.rows_ = t.columns();
    csc.colPtr_ = t.rowPtr();
    return csc;
}

std::uint32_t
CscMatrix::colOfPosition(std::uint32_t pos) const
{
    ANT_ASSERT(pos < nnz(), "position ", pos, " beyond nnz ", nnz());
    const auto it = std::upper_bound(colPtr_.begin(), colPtr_.end(), pos);
    return static_cast<std::uint32_t>(it - colPtr_.begin()) - 1;
}

SparseEntry
CscMatrix::entry(std::uint32_t pos) const
{
    return {values_[pos], colOfPosition(pos), rows_[pos]};
}

Dense2d<float>
CscMatrix::toDense() const
{
    Dense2d<float> dense(height_, width_);
    for (std::uint32_t x = 0; x < width_; ++x)
        for (std::uint32_t i = colPtr_[x]; i < colPtr_[x + 1]; ++i)
            dense.at(x, rows_[i]) = values_[i];
    return dense;
}

} // namespace antsim
