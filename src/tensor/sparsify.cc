#include "sparsify.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace antsim {

Dense2d<float>
randomDensePlane(std::uint32_t height, std::uint32_t width, Rng &rng)
{
    Dense2d<float> plane(height, width);
    for (auto &v : plane.data()) {
        float f = static_cast<float>(rng.normal());
        // Exact zeros would silently change nnz; nudge them.
        if (f == 0.0f)
            f = 1e-6f;
        v = f;
    }
    return plane;
}

Dense2d<float>
bernoulliPlane(std::uint32_t height, std::uint32_t width, double sparsity,
               Rng &rng)
{
    ANT_ASSERT(sparsity >= 0.0 && sparsity <= 1.0, "sparsity must be in ",
               "[0,1], got ", sparsity);
    Dense2d<float> plane(height, width);
    for (auto &v : plane.data()) {
        if (rng.bernoulli(1.0 - sparsity)) {
            float f = static_cast<float>(rng.normal());
            if (f == 0.0f)
                f = 1e-6f;
            v = f;
        }
    }
    return plane;
}

Dense2d<float>
topKSparsify(const Dense2d<float> &plane, double sparsity)
{
    ANT_ASSERT(sparsity >= 0.0 && sparsity <= 1.0, "sparsity must be in ",
               "[0,1], got ", sparsity);
    const std::size_t total = plane.size();
    const auto keep = static_cast<std::size_t>(
        std::llround(static_cast<double>(total) * (1.0 - sparsity)));
    if (keep >= total)
        return plane;

    std::vector<std::size_t> order(total);
    std::iota(order.begin(), order.end(), 0);
    const auto &data = plane.data();
    std::nth_element(order.begin(), order.begin() + keep, order.end(),
                     [&](std::size_t a, std::size_t b) {
                         const float ma = std::fabs(data[a]);
                         const float mb = std::fabs(data[b]);
                         // Deterministic tie-break by position.
                         return ma != mb ? ma > mb : a < b;
                     });

    Dense2d<float> out(plane.height(), plane.width());
    for (std::size_t i = 0; i < keep; ++i)
        out.data()[order[i]] = data[order[i]];
    return out;
}

std::pair<Dense2d<float>, Dense2d<float>>
reluCorrelatedPair(std::uint32_t height, std::uint32_t width,
                   double relu_sparsity, double act_sparsity,
                   double grad_sparsity, Rng &rng)
{
    ANT_ASSERT(act_sparsity >= relu_sparsity &&
               grad_sparsity >= relu_sparsity,
               "final sparsities must be at least the shared ReLU sparsity");

    Dense2d<float> act = randomDensePlane(height, width, rng);
    Dense2d<float> grad = randomDensePlane(height, width, rng);

    // Shared ReLU mask: where the activation is clipped, the local
    // gradient is zero too.
    for (std::size_t i = 0; i < act.size(); ++i) {
        if (rng.bernoulli(relu_sparsity)) {
            act.data()[i] = 0.0f;
            grad.data()[i] = 0.0f;
        }
    }

    return {topKSparsify(act, act_sparsity),
            topKSparsify(grad, grad_sparsity)};
}

} // namespace antsim
