/**
 * @file
 * Dense 2-D matrix used as the functional reference representation.
 *
 * The simulator's functional checks accumulate into Dense2d<double> and
 * compare against a dense reference convolution; trace generation fills
 * Dense2d<float> planes before compressing them to CSR/CSC.
 *
 * Index convention (matches the paper, Sec. 3): a plane has height H
 * (rows, index y or r) and width W (columns, index x or s). Element
 * (x, y) is at column x of row y.
 */

#ifndef ANTSIM_TENSOR_MATRIX_HH
#define ANTSIM_TENSOR_MATRIX_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace antsim {

/** Row-major dense matrix. */
template <typename T>
class Dense2d
{
  public:
    /** Construct an empty 0x0 matrix. */
    Dense2d() : height_(0), width_(0) {}

    /** Construct an H x W matrix filled with @p fill. */
    Dense2d(std::uint32_t height, std::uint32_t width, T fill = T())
        : height_(height), width_(width),
          data_(static_cast<std::size_t>(height) * width, fill)
    {}

    /** Number of rows (H dimension). */
    std::uint32_t height() const { return height_; }

    /** Number of columns (W dimension). */
    std::uint32_t width() const { return width_; }

    /** Total number of elements. */
    std::size_t size() const { return data_.size(); }

    /** Mutable element access at column @p x, row @p y. */
    T &
    at(std::uint32_t x, std::uint32_t y)
    {
        ANT_ASSERT(x < width_ && y < height_, "index (", x, ",", y,
                   ") out of ", width_, "x", height_, " bounds");
        return data_[static_cast<std::size_t>(y) * width_ + x];
    }

    /** Const element access at column @p x, row @p y. */
    const T &
    at(std::uint32_t x, std::uint32_t y) const
    {
        ANT_ASSERT(x < width_ && y < height_, "index (", x, ",", y,
                   ") out of ", width_, "x", height_, " bounds");
        return data_[static_cast<std::size_t>(y) * width_ + x];
    }

    /** Count of non-zero elements. */
    std::size_t
    nnz() const
    {
        std::size_t count = 0;
        for (const T &v : data_)
            if (v != T())
                ++count;
        return count;
    }

    /** Fraction of elements equal to zero (1.0 for an empty matrix). */
    double
    sparsity() const
    {
        if (data_.empty())
            return 1.0;
        return 1.0 -
            static_cast<double>(nnz()) / static_cast<double>(data_.size());
    }

    /** Raw row-major storage. */
    const std::vector<T> &data() const { return data_; }

    /** Raw row-major storage (mutable). */
    std::vector<T> &data() { return data_; }

    bool
    operator==(const Dense2d &o) const
    {
        return height_ == o.height_ && width_ == o.width_ &&
            data_ == o.data_;
    }

  private:
    std::uint32_t height_;
    std::uint32_t width_;
    std::vector<T> data_;
};

} // namespace antsim

#endif // ANTSIM_TENSOR_MATRIX_HH
