/**
 * @file
 * Synthetic sparsification of dense planes for trace generation.
 *
 * The paper collects traces from ReSprop- and SWAT-sparsified training
 * runs, and synthetically sparsifies ResNet50/transformer/RNN tensors
 * by keeping the top-K magnitudes (Sec. 6.2). We reproduce the
 * synthetic path and add a Bernoulli sparsifier plus a ReLU-correlated
 * generator (A and G_A sharing a zero mask, as ReLU induces) so the
 * simulators see index distributions with the right statistics.
 */

#ifndef ANTSIM_TENSOR_SPARSIFY_HH
#define ANTSIM_TENSOR_SPARSIFY_HH

#include <cstdint>
#include <utility>

#include "tensor/matrix.hh"
#include "util/rng.hh"

namespace antsim {

/** Fill a plane with i.i.d. standard-normal values. */
Dense2d<float> randomDensePlane(std::uint32_t height, std::uint32_t width,
                                Rng &rng);

/**
 * Generate a plane where each element is non-zero with probability
 * 1 - sparsity; non-zero values are standard normal (re-drawn if they
 * round to exactly zero so nnz is exact w.r.t. the mask).
 */
Dense2d<float> bernoulliPlane(std::uint32_t height, std::uint32_t width,
                              double sparsity, Rng &rng);

/**
 * Keep the top-K magnitudes of @p plane so that the kept fraction is
 * 1 - sparsity (ties broken by position for determinism); zero the
 * rest. This mirrors the paper's synthetic top-K sparsification.
 */
Dense2d<float> topKSparsify(const Dense2d<float> &plane, double sparsity);

/**
 * Generate an (activation, activation-gradient) pair sharing a ReLU
 * zero mask. Elements zeroed by ReLU are zero in *both* planes; each
 * plane is then further sparsified to its own target by top-K on the
 * survivors. This reproduces the A/G_A sparsity correlation that makes
 * the zero-A and zero-G_A product sets overlap in Fig. 1c.
 *
 * @param relu_sparsity   Fraction zeroed by the shared ReLU mask.
 * @param act_sparsity    Final target sparsity of A (>= relu_sparsity).
 * @param grad_sparsity   Final target sparsity of G_A (>= relu_sparsity).
 */
std::pair<Dense2d<float>, Dense2d<float>>
reluCorrelatedPair(std::uint32_t height, std::uint32_t width,
                   double relu_sparsity, double act_sparsity,
                   double grad_sparsity, Rng &rng);

} // namespace antsim

#endif // ANTSIM_TENSOR_SPARSIFY_HH
