/**
 * @file
 * Compressed sparse matrix formats (CSR and CSC) per Sec. 4.1.
 *
 * CSR represents a matrix with three arrays: Values (the non-zero
 * elements in row-major order), Columns (the column index of each
 * stored value), and Row-pointers (the offset of each row's first
 * stored value). CSC is the dual, obtained as the CSR of the
 * transposed matrix; the accelerator's matmul mode (Sec. 5) holds the
 * image plane in CSC so that a group of n consecutive entries shares
 * one column.
 *
 * The accelerator models stream these arrays exactly as the hardware's
 * Image/Kernel Values and Indices Buffers would, so iteration order
 * here *is* the hardware's element order.
 *
 * Storage layout: the three arrays are a structure-of-arrays carved
 * out of one 64-byte-aligned Arena slab (util/arena.hh), sized exactly
 * from the nnz counted before filling. Accessors hand out read-only
 * spans; the SIMD construction kernels (docs/MODEL.md Sec. 11) rely on
 * the alignment, and the exact pre-sizing removes the push_back
 * reallocation churn of the old vector-backed layout.
 */

#ifndef ANTSIM_TENSOR_CSR_HH
#define ANTSIM_TENSOR_CSR_HH

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hh"
#include "util/arena.hh"

namespace antsim {

/** One stored non-zero: value plus its (x, y) plane coordinates. */
struct SparseEntry
{
    float value;
    std::uint32_t x; //!< column index (s for kernels)
    std::uint32_t y; //!< row index (r for kernels)
};

/**
 * Narrow a size_t non-zero count to the uint32 the CSR arrays store.
 * Panics instead of silently truncating: nnz >= 2^32 would corrupt
 * every row pointer downstream. Every narrowing site in the builders
 * goes through here.
 */
std::uint32_t narrowNnz(std::size_t nnz);

/**
 * Compressed Sparse Row matrix of float values.
 *
 * Invariants (checked by validate(); every construction path validates
 * when the ANTSIM_AUDIT runtime switch is on, fromRaw unconditionally):
 *  - rowPtr has height()+1 entries, rowPtr[0] == 0, non-decreasing;
 *  - columns within each row are strictly increasing and < width();
 *  - values.size() == columns.size() == rowPtr.back().
 */
class CsrMatrix
{
  public:
    /** Construct an empty matrix of the given shape. */
    CsrMatrix(std::uint32_t height, std::uint32_t width);

    /** Compress a dense plane (drops exact zeros). */
    static CsrMatrix fromDense(const Dense2d<float> &dense);

    /**
     * Build directly from raw arrays.
     * Panics if the arrays violate the CSR invariants.
     */
    static CsrMatrix fromRaw(std::uint32_t height, std::uint32_t width,
                             std::vector<float> values,
                             std::vector<std::uint32_t> columns,
                             std::vector<std::uint32_t> row_ptr);

    /**
     * Build from an unsorted coordinate list (duplicates are summed,
     * resulting zeros kept -- callers that need exact-zero dropping
     * should compress from dense).
     */
    static CsrMatrix fromCoo(std::uint32_t height, std::uint32_t width,
                             std::vector<SparseEntry> entries);

    /** Number of rows. */
    std::uint32_t height() const { return height_; }

    /** Number of columns. */
    std::uint32_t width() const { return width_; }

    /** Number of stored non-zeros. */
    std::uint32_t nnz() const { return nnz_; }

    /** Fraction of elements that are zero (1.0 for an empty shape). */
    double sparsity() const;

    /** Values array (non-zeros in row-major order). */
    std::span<const float>
    values() const
    {
        return {arena_.ptr<float>(valuesOff_), nnz_};
    }

    /** Columns array (column index per stored value). */
    std::span<const std::uint32_t>
    columns() const
    {
        return {arena_.ptr<std::uint32_t>(columnsOff_), nnz_};
    }

    /** Row-pointers array (height()+1 entries). */
    std::span<const std::uint32_t>
    rowPtr() const
    {
        return {arena_.ptr<std::uint32_t>(rowPtrOff_),
                static_cast<std::size_t>(height_) + 1};
    }

    /** Row index of the stored element at flat position @p pos. */
    std::uint32_t rowOfPosition(std::uint32_t pos) const;

    /** The stored entry at flat position @p pos as (value, x, y). */
    SparseEntry entry(std::uint32_t pos) const;

    /** Decompress back to a dense plane. */
    Dense2d<float> toDense() const;

    /** All stored entries in storage order. */
    std::vector<SparseEntry> entries() const;

    /**
     * Rotate the matrix by 180 degrees (Algorithm 3):
     * y' = H - y - 1, x' = W - x - 1. Values are unchanged; only the
     * index arrays are remapped, as in the ANT ROTATE-flag hardware
     * (Sec. 4.5).
     */
    CsrMatrix rotated180() const;

    /** Transpose (used to derive the CSC view). */
    CsrMatrix transposed() const;

    /** Panics if the structural invariants are violated. */
    void validate() const;

    bool operator==(const CsrMatrix &o) const;

  private:
    /**
     * Size the arena for exactly @p nnz stored entries (guarding the
     * uint32 narrowing) plus the row-pointer array, and carve the
     * three SoA blocks. Row pointers start zeroed.
     */
    void allocateStorage(std::size_t nnz);

    /** Validate when the ANTSIM_AUDIT runtime switch is on. */
    void maybeValidate() const;

    float *valuesData() { return arena_.ptr<float>(valuesOff_); }
    std::uint32_t *columnsData()
    {
        return arena_.ptr<std::uint32_t>(columnsOff_);
    }
    std::uint32_t *rowPtrData()
    {
        return arena_.ptr<std::uint32_t>(rowPtrOff_);
    }

    std::uint32_t height_;
    std::uint32_t width_;
    std::uint32_t nnz_ = 0;
    std::size_t valuesOff_ = 0;
    std::size_t columnsOff_ = 0;
    std::size_t rowPtrOff_ = 0;
    Arena arena_;
};

/**
 * Compressed Sparse Column view: the CSR of the transposed matrix,
 * re-labelled. rows() plays the role of the Columns array (it stores
 * row indices) and colPtr() the role of Row-pointers. Same SoA arena
 * layout as CsrMatrix.
 */
class CscMatrix
{
  public:
    /** Compress a dense plane column-major. */
    static CscMatrix fromDense(const Dense2d<float> &dense);

    /** Convert from CSR. */
    static CscMatrix fromCsr(const CsrMatrix &csr);

    /** Number of rows of the logical matrix. */
    std::uint32_t height() const { return height_; }

    /** Number of columns of the logical matrix. */
    std::uint32_t width() const { return width_; }

    /** Number of stored non-zeros. */
    std::uint32_t nnz() const { return nnz_; }

    /** Values in column-major order. */
    std::span<const float>
    values() const
    {
        return {arena_.ptr<float>(valuesOff_), nnz_};
    }

    /** Row index of each stored value. */
    std::span<const std::uint32_t>
    rows() const
    {
        return {arena_.ptr<std::uint32_t>(rowsOff_), nnz_};
    }

    /** Column-pointer array (width()+1 entries). */
    std::span<const std::uint32_t>
    colPtr() const
    {
        return {arena_.ptr<std::uint32_t>(colPtrOff_),
                static_cast<std::size_t>(width_) + 1};
    }

    /** Column index of the stored element at flat position @p pos. */
    std::uint32_t colOfPosition(std::uint32_t pos) const;

    /** The stored entry at flat position @p pos as (value, x, y). */
    SparseEntry entry(std::uint32_t pos) const;

    /** Decompress to dense. */
    Dense2d<float> toDense() const;

  private:
    CscMatrix(std::uint32_t height, std::uint32_t width)
        : height_(height), width_(width)
    {}

    /** Arena sizing, as CsrMatrix::allocateStorage. */
    void allocateStorage(std::size_t nnz);

    float *valuesData() { return arena_.ptr<float>(valuesOff_); }
    std::uint32_t *rowsData() { return arena_.ptr<std::uint32_t>(rowsOff_); }
    std::uint32_t *colPtrData()
    {
        return arena_.ptr<std::uint32_t>(colPtrOff_);
    }

    std::uint32_t height_;
    std::uint32_t width_;
    std::uint32_t nnz_ = 0;
    std::size_t valuesOff_ = 0;
    std::size_t rowsOff_ = 0;
    std::size_t colPtrOff_ = 0;
    Arena arena_;
};

} // namespace antsim

#endif // ANTSIM_TENSOR_CSR_HH
