/**
 * @file
 * Compressed sparse matrix formats (CSR and CSC) per Sec. 4.1.
 *
 * CSR represents a matrix with three arrays: Values (the non-zero
 * elements in row-major order), Columns (the column index of each
 * stored value), and Row-pointers (the offset of each row's first
 * stored value). CSC is the dual, obtained as the CSR of the
 * transposed matrix; the accelerator's matmul mode (Sec. 5) holds the
 * image plane in CSC so that a group of n consecutive entries shares
 * one column.
 *
 * The accelerator models stream these arrays exactly as the hardware's
 * Image/Kernel Values and Indices Buffers would, so iteration order
 * here *is* the hardware's element order.
 */

#ifndef ANTSIM_TENSOR_CSR_HH
#define ANTSIM_TENSOR_CSR_HH

#include <cstdint>
#include <vector>

#include "tensor/matrix.hh"

namespace antsim {

/** One stored non-zero: value plus its (x, y) plane coordinates. */
struct SparseEntry
{
    float value;
    std::uint32_t x; //!< column index (s for kernels)
    std::uint32_t y; //!< row index (r for kernels)
};

/**
 * Compressed Sparse Row matrix of float values.
 *
 * Invariants (checked by validate()):
 *  - rowPtr has height()+1 entries, rowPtr[0] == 0, non-decreasing;
 *  - columns within each row are strictly increasing and < width();
 *  - values.size() == columns.size() == rowPtr.back().
 */
class CsrMatrix
{
  public:
    /** Construct an empty matrix of the given shape. */
    CsrMatrix(std::uint32_t height, std::uint32_t width);

    /** Compress a dense plane (drops exact zeros). */
    static CsrMatrix fromDense(const Dense2d<float> &dense);

    /**
     * Build directly from raw arrays (takes ownership).
     * Panics if the arrays violate the CSR invariants.
     */
    static CsrMatrix fromRaw(std::uint32_t height, std::uint32_t width,
                             std::vector<float> values,
                             std::vector<std::uint32_t> columns,
                             std::vector<std::uint32_t> row_ptr);

    /**
     * Build from an unsorted coordinate list (duplicates are summed,
     * resulting zeros kept -- callers that need exact-zero dropping
     * should compress from dense).
     */
    static CsrMatrix fromCoo(std::uint32_t height, std::uint32_t width,
                             std::vector<SparseEntry> entries);

    /** Number of rows. */
    std::uint32_t height() const { return height_; }

    /** Number of columns. */
    std::uint32_t width() const { return width_; }

    /** Number of stored non-zeros. */
    std::uint32_t nnz() const
    {
        return static_cast<std::uint32_t>(values_.size());
    }

    /** Fraction of elements that are zero (1.0 for an empty shape). */
    double sparsity() const;

    /** Values array (non-zeros in row-major order). */
    const std::vector<float> &values() const { return values_; }

    /** Columns array (column index per stored value). */
    const std::vector<std::uint32_t> &columns() const { return columns_; }

    /** Row-pointers array (height()+1 entries). */
    const std::vector<std::uint32_t> &rowPtr() const { return rowPtr_; }

    /** Row index of the stored element at flat position @p pos. */
    std::uint32_t rowOfPosition(std::uint32_t pos) const;

    /** The stored entry at flat position @p pos as (value, x, y). */
    SparseEntry entry(std::uint32_t pos) const;

    /** Decompress back to a dense plane. */
    Dense2d<float> toDense() const;

    /** All stored entries in storage order. */
    std::vector<SparseEntry> entries() const;

    /**
     * Rotate the matrix by 180 degrees (Algorithm 3):
     * y' = H - y - 1, x' = W - x - 1. Values are unchanged; only the
     * index arrays are remapped, as in the ANT ROTATE-flag hardware
     * (Sec. 4.5).
     */
    CsrMatrix rotated180() const;

    /** Transpose (used to derive the CSC view). */
    CsrMatrix transposed() const;

    /** Panics if the structural invariants are violated. */
    void validate() const;

    bool operator==(const CsrMatrix &o) const;

  private:
    std::uint32_t height_;
    std::uint32_t width_;
    std::vector<float> values_;
    std::vector<std::uint32_t> columns_;
    std::vector<std::uint32_t> rowPtr_;
};

/**
 * Compressed Sparse Column view: the CSR of the transposed matrix,
 * re-labelled. rows() plays the role of the Columns array (it stores
 * row indices) and colPtr() the role of Row-pointers.
 */
class CscMatrix
{
  public:
    /** Compress a dense plane column-major. */
    static CscMatrix fromDense(const Dense2d<float> &dense);

    /** Convert from CSR. */
    static CscMatrix fromCsr(const CsrMatrix &csr);

    /** Number of rows of the logical matrix. */
    std::uint32_t height() const { return height_; }

    /** Number of columns of the logical matrix. */
    std::uint32_t width() const { return width_; }

    /** Number of stored non-zeros. */
    std::uint32_t nnz() const
    {
        return static_cast<std::uint32_t>(values_.size());
    }

    /** Values in column-major order. */
    const std::vector<float> &values() const { return values_; }

    /** Row index of each stored value. */
    const std::vector<std::uint32_t> &rows() const { return rows_; }

    /** Column-pointer array (width()+1 entries). */
    const std::vector<std::uint32_t> &colPtr() const { return colPtr_; }

    /** Column index of the stored element at flat position @p pos. */
    std::uint32_t colOfPosition(std::uint32_t pos) const;

    /** The stored entry at flat position @p pos as (value, x, y). */
    SparseEntry entry(std::uint32_t pos) const;

    /** Decompress to dense. */
    Dense2d<float> toDense() const;

  private:
    CscMatrix(std::uint32_t height, std::uint32_t width)
        : height_(height), width_(width), colPtr_(width + 1, 0)
    {}

    std::uint32_t height_;
    std::uint32_t width_;
    std::vector<float> values_;
    std::vector<std::uint32_t> rows_;
    std::vector<std::uint32_t> colPtr_;
};

} // namespace antsim

#endif // ANTSIM_TENSOR_CSR_HH
