/**
 * @file
 * Geometry of an outer-product problem: convolution or matmul.
 *
 * A ProblemSpec captures everything the accelerator needs to know about
 * a (kernel, image) plane pair: shapes, stride, kernel dilation, and --
 * crucially -- the index algebra of Sec. 3:
 *
 *  - which (image element, kernel element) products are valid, i.e. map
 *    to an in-range output index (the complement are RCPs);
 *  - the anticipation ranges of Eqs. 9-12 that bound, for a *group* of
 *    image elements, the kernel rows (r) and columns (s) that can yield
 *    any valid product.
 *
 * We generalize the paper's stride-1 equations to
 *     out = (x - dilation*s) / stride      (valid iff divisible, in range)
 * which covers all three training phases exactly: the forward pass
 * (dilation=1), the update pass G_A * A where the original layer stride
 * becomes kernel dilation, and -- with a zero-dilated image materialized
 * by the trace generator -- the backward pass. At stride = dilation = 1
 * the range algebra reduces symbol-for-symbol to the paper's Eqs. 7-12.
 *
 * The matmul mode (Sec. 5) is the second kind: image (H x W) times
 * kernel (R x S) with W == R; a product is valid iff the image column
 * equals the kernel row (Eq. 14) and the output index is (out_x, out_y)
 * = (s, y) (Eq. 13).
 */

#ifndef ANTSIM_CONV_PROBLEM_SPEC_HH
#define ANTSIM_CONV_PROBLEM_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>

namespace antsim {

/** Inclusive integer interval; empty when lo > hi. */
struct IndexRange
{
    std::int64_t lo;
    std::int64_t hi;

    /** True when the interval contains no integers. */
    bool empty() const { return lo > hi; }

    /** True when @p v lies inside the (clamped) interval. */
    bool contains(std::int64_t v) const { return v >= lo && v <= hi; }

    /** Number of integers in the interval (0 if empty). */
    std::int64_t
    count() const
    {
        return empty() ? 0 : hi - lo + 1;
    }
};

/** Output coordinate of a valid product. */
struct OutCoord
{
    std::uint32_t x;
    std::uint32_t y;
};

/** Outer-product problem geometry. */
class ProblemSpec
{
  public:
    /** Problem flavour. */
    enum class Kind { Conv, Matmul };

    /**
     * Convolution of an R x S kernel (dilated by @p dilation) over an
     * H x W image with the given stride. Output dims are derived:
     * out = floor((in - dilation*(k-1) - 1) / stride) + 1.
     * Padding is not a parameter: images arrive pre-padded (the paper
     * notes padding only adds RCPs, Sec. 3).
     */
    static ProblemSpec conv(std::uint32_t kernel_h, std::uint32_t kernel_w,
                            std::uint32_t image_h, std::uint32_t image_w,
                            std::uint32_t stride = 1,
                            std::uint32_t dilation = 1);

    /**
     * Convolution with explicitly overridden (cropped) output dims.
     * Used by the update phase G_A * A, whose output is the R x S
     * weight-gradient even when the padded image admits a few more
     * kernel shifts -- products mapping beyond the override are RCPs,
     * exactly per the paper's definition. The override must not exceed
     * the natural output dims.
     */
    static ProblemSpec convWithOutDims(std::uint32_t kernel_h,
                                       std::uint32_t kernel_w,
                                       std::uint32_t image_h,
                                       std::uint32_t image_w,
                                       std::uint32_t out_h,
                                       std::uint32_t out_w,
                                       std::uint32_t stride = 1,
                                       std::uint32_t dilation = 1);

    /**
     * Matrix multiplication out[H x S] = image[H x W] * kernel[R x S]
     * with W == R (Sec. 5 convention).
     */
    static ProblemSpec matmul(std::uint32_t image_h, std::uint32_t image_w,
                              std::uint32_t kernel_r, std::uint32_t kernel_s);

    Kind kind() const { return kind_; }

    /** Kernel height R (rows, index r). */
    std::uint32_t kernelH() const { return kernelH_; }

    /** Kernel width S (columns, index s). */
    std::uint32_t kernelW() const { return kernelW_; }

    /** Image height H (rows, index y). */
    std::uint32_t imageH() const { return imageH_; }

    /** Image width W (columns, index x). */
    std::uint32_t imageW() const { return imageW_; }

    /** Output height. */
    std::uint32_t outH() const { return outH_; }

    /** Output width. */
    std::uint32_t outW() const { return outW_; }

    /** Convolution stride (1 for matmul). */
    std::uint32_t stride() const { return stride_; }

    /** Kernel dilation (1 for matmul). */
    std::uint32_t dilation() const { return dilation_; }

    /**
     * Output coordinate of the product image(x,y) * kernel(s,r), or
     * nullopt when the product is redundant (an RCP): the mapped output
     * index is negative, fractional (stride non-divisible), or beyond
     * the output dims.
     */
    std::optional<OutCoord> outputIndex(std::uint32_t x, std::uint32_t y,
                                        std::uint32_t s,
                                        std::uint32_t r) const;

    /** True when the product is useful (not an RCP). */
    bool
    isValid(std::uint32_t x, std::uint32_t y, std::uint32_t s,
            std::uint32_t r) const
    {
        return outputIndex(x, y, s, r).has_value();
    }

    /**
     * Kernel-column range [s_min, s_max] that can produce a valid
     * product with *some* image column in [x_min, x_max]
     * (generalization of Eqs. 10-11). For matmul this is the full
     * [0, S-1] range -- the s index needs no check (Sec. 5).
     */
    IndexRange sRange(std::uint32_t x_min, std::uint32_t x_max) const;

    /**
     * Kernel-row range [r_min, r_max] that can produce a valid product
     * with *some* image row in [y_min, y_max] (Eqs. 9, 12). For
     * matmul the constraint instead binds kernel rows to image
     * *columns* (Eq. 15); use matmulRowRange.
     */
    IndexRange rRange(std::uint32_t y_min, std::uint32_t y_max) const;

    /**
     * Matmul-mode kernel-row range from image-column extremes
     * (Eq. 15): r in [x_min, x_max], clamped to [0, R-1].
     */
    IndexRange matmulRowRange(std::uint32_t x_min,
                              std::uint32_t x_max) const;

    /**
     * Inverse of sRange, for the kernel-stationary dataflow
     * (Sec. 4.6): image columns x that can pair with *some* kernel
     * column in [s_min, s_max]: x in [dil*s_min,
     * dil*s_max + stride*(outW-1)], clamped to the image.
     */
    IndexRange xRange(std::uint32_t s_min, std::uint32_t s_max) const;

    /** Inverse of rRange: image rows pairing with r in [r_min, r_max]. */
    IndexRange yRange(std::uint32_t r_min, std::uint32_t r_max) const;

    /**
     * Ideal per-element kernel-column range for one image column x
     * (Eq. 8 generalized). Ignores stride divisibility, exactly as the
     * paper's Algorithm 1 conditions do at stride 1.
     */
    IndexRange sRangeIdeal(std::uint32_t x) const
    {
        return sRange(x, x);
    }

    /** Ideal per-element kernel-row range for one image row y (Eq. 7). */
    IndexRange rRangeIdeal(std::uint32_t y) const
    {
        return rRange(y, y);
    }

    /**
     * Dense outer-product efficiency (Eq. 6 for conv, 1/R for matmul):
     * the fraction of the dense cartesian products that a convolution /
     * matmul actually needs.
     */
    double outerProductEfficiency() const;

    /** Total dense cartesian products: (R*S) * (H*W). */
    std::uint64_t denseCartesianProducts() const;

    /**
     * Number of useful products in the dense problem:
     * conv: R*S*outH*outW (each output accumulates R*S products;
     * at stride/dilation 1 with exact image sizing every one of them
     * touches an in-range image element);
     * matmul: H*W*S.
     */
    std::uint64_t denseValidProducts() const;

    /** Short human-readable description for logs and tables. */
    std::string toString() const;

    bool operator==(const ProblemSpec &o) const = default;

  private:
    ProblemSpec() = default;

    Kind kind_ = Kind::Conv;
    std::uint32_t kernelH_ = 0;
    std::uint32_t kernelW_ = 0;
    std::uint32_t imageH_ = 0;
    std::uint32_t imageW_ = 0;
    std::uint32_t outH_ = 0;
    std::uint32_t outW_ = 0;
    std::uint32_t stride_ = 1;
    std::uint32_t dilation_ = 1;
};

} // namespace antsim

#endif // ANTSIM_CONV_PROBLEM_SPEC_HH
