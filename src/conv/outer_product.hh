/**
 * @file
 * Functional sparse outer-product execution with RCP accounting.
 *
 * This is the un-anticipated baseline semantics (Fig. 2d): every
 * non-zero kernel value is multiplied with every non-zero image value;
 * products that map to a valid output index are accumulated, the rest
 * are Redundant Cartesian Products. The cycle-level SCNN/ANT models in
 * src/scnn and src/ant execute the same product sets; this module gives
 * the reference outputs and the product-census used by Fig. 1.
 */

#ifndef ANTSIM_CONV_OUTER_PRODUCT_HH
#define ANTSIM_CONV_OUTER_PRODUCT_HH

#include <cstdint>

#include "conv/problem_spec.hh"
#include "tensor/csr.hh"
#include "tensor/matrix.hh"

namespace antsim {

/** Census of the products in one sparse outer-product execution. */
struct ProductCensus
{
    /** All cartesian products of non-zeros: nnz(kernel) * nnz(image). */
    std::uint64_t nonzeroProducts = 0;
    /** Non-zero products that map to a valid output (useful work). */
    std::uint64_t validProducts = 0;
    /** Non-zero products with no valid output index (RCPs). */
    std::uint64_t rcpProducts = 0;
    /** Dense cartesian products (including zero operands). */
    std::uint64_t denseProducts = 0;

    /** Fraction of non-zero products that are RCPs (0 if none). */
    double
    rcpFraction() const
    {
        return nonzeroProducts == 0
            ? 0.0
            : static_cast<double>(rcpProducts) /
                static_cast<double>(nonzeroProducts);
    }

    /** Element-wise accumulate. */
    ProductCensus &operator+=(const ProductCensus &o);
};

/** Result of a functional sparse outer-product execution. */
struct OuterProductResult
{
    Dense2d<double> output;
    ProductCensus census;
};

/**
 * Execute @p spec as a full sparse outer product (no anticipation).
 * Every nnzK x nnzI product is formed; valid products accumulate into
 * the output plane, RCPs are counted and discarded.
 */
OuterProductResult sparseOuterProduct(const ProblemSpec &spec,
                                      const CsrMatrix &kernel,
                                      const CsrMatrix &image);

/**
 * Census only (no value math): used for the Fig. 1 partial-product
 * breakdown where only counts matter. Much cheaper than
 * sparseOuterProduct for large planes.
 */
ProductCensus countProducts(const ProblemSpec &spec, const CsrMatrix &kernel,
                            const CsrMatrix &image);

} // namespace antsim

#endif // ANTSIM_CONV_OUTER_PRODUCT_HH
