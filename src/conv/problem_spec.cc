#include "problem_spec.hh"

#include <sstream>

#include "util/logging.hh"

namespace antsim {

namespace {

/** floor division for possibly-negative numerators. */
std::int64_t
floorDiv(std::int64_t a, std::int64_t b)
{
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

/** ceiling division for possibly-negative numerators. */
std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return -floorDiv(-a, b);
}

} // namespace

ProblemSpec
ProblemSpec::conv(std::uint32_t kernel_h, std::uint32_t kernel_w,
                  std::uint32_t image_h, std::uint32_t image_w,
                  std::uint32_t stride, std::uint32_t dilation)
{
    ANT_ASSERT(kernel_h > 0 && kernel_w > 0 && image_h > 0 && image_w > 0,
               "conv dimensions must be positive");
    ANT_ASSERT(stride > 0 && dilation > 0,
               "stride and dilation must be positive");

    const std::int64_t eff_h =
        static_cast<std::int64_t>(dilation) * (kernel_h - 1) + 1;
    const std::int64_t eff_w =
        static_cast<std::int64_t>(dilation) * (kernel_w - 1) + 1;
    ANT_ASSERT(eff_h <= image_h && eff_w <= image_w,
               "effective kernel ", eff_h, "x", eff_w,
               " exceeds image ", image_h, "x", image_w);

    ProblemSpec spec;
    spec.kind_ = Kind::Conv;
    spec.kernelH_ = kernel_h;
    spec.kernelW_ = kernel_w;
    spec.imageH_ = image_h;
    spec.imageW_ = image_w;
    spec.stride_ = stride;
    spec.dilation_ = dilation;
    spec.outH_ = static_cast<std::uint32_t>((image_h - eff_h) / stride + 1);
    spec.outW_ = static_cast<std::uint32_t>((image_w - eff_w) / stride + 1);
    return spec;
}

ProblemSpec
ProblemSpec::convWithOutDims(std::uint32_t kernel_h, std::uint32_t kernel_w,
                             std::uint32_t image_h, std::uint32_t image_w,
                             std::uint32_t out_h, std::uint32_t out_w,
                             std::uint32_t stride, std::uint32_t dilation)
{
    ProblemSpec spec =
        conv(kernel_h, kernel_w, image_h, image_w, stride, dilation);
    ANT_ASSERT(out_h > 0 && out_w > 0 && out_h <= spec.outH_ &&
               out_w <= spec.outW_,
               "output override ", out_h, "x", out_w,
               " exceeds natural output ", spec.outH_, "x", spec.outW_);
    spec.outH_ = out_h;
    spec.outW_ = out_w;
    return spec;
}

ProblemSpec
ProblemSpec::matmul(std::uint32_t image_h, std::uint32_t image_w,
                    std::uint32_t kernel_r, std::uint32_t kernel_s)
{
    ANT_ASSERT(image_w == kernel_r, "matmul inner dims must agree: image W ",
               image_w, " vs kernel R ", kernel_r);
    ProblemSpec spec;
    spec.kind_ = Kind::Matmul;
    spec.kernelH_ = kernel_r;
    spec.kernelW_ = kernel_s;
    spec.imageH_ = image_h;
    spec.imageW_ = image_w;
    spec.stride_ = 1;
    spec.dilation_ = 1;
    spec.outH_ = image_h;
    spec.outW_ = kernel_s;
    return spec;
}

std::optional<OutCoord>
ProblemSpec::outputIndex(std::uint32_t x, std::uint32_t y, std::uint32_t s,
                         std::uint32_t r) const
{
    if (kind_ == Kind::Matmul) {
        // Eq. 14: valid iff kernel row equals image column.
        if (r != x)
            return std::nullopt;
        // Eq. 13: out = (s, y).
        return OutCoord{s, y};
    }

    // Generalized Eqs. 4-5: out = (img - dilation*k) / stride.
    const std::int64_t dx = static_cast<std::int64_t>(x) -
        static_cast<std::int64_t>(dilation_) * s;
    const std::int64_t dy = static_cast<std::int64_t>(y) -
        static_cast<std::int64_t>(dilation_) * r;
    if (dx < 0 || dy < 0)
        return std::nullopt;
    if (dx % stride_ != 0 || dy % stride_ != 0)
        return std::nullopt;
    const std::int64_t ox = dx / stride_;
    const std::int64_t oy = dy / stride_;
    if (ox >= outW_ || oy >= outH_)
        return std::nullopt;
    return OutCoord{static_cast<std::uint32_t>(ox),
                    static_cast<std::uint32_t>(oy)};
}

IndexRange
ProblemSpec::sRange(std::uint32_t x_min, std::uint32_t x_max) const
{
    if (kind_ == Kind::Matmul) {
        // The s index needs no check in matmul mode (Sec. 5).
        return {0, static_cast<std::int64_t>(kernelW_) - 1};
    }
    // Solve 0 <= (x - dilation*s)/stride <= outW-1 for s:
    //   s >= (x - stride*(outW-1)) / dilation   (ceil)
    //   s <= x / dilation                        (floor)
    // At stride = dilation = 1 this is Eq. 11:
    //   s_min = x_min - outW + 1, s_max = x_max.
    const std::int64_t lo = ceilDiv(static_cast<std::int64_t>(x_min) -
                                        static_cast<std::int64_t>(stride_) *
                                            (outW_ - 1),
                                    dilation_);
    const std::int64_t hi = floorDiv(x_max, dilation_);
    return {std::max<std::int64_t>(lo, 0),
            std::min<std::int64_t>(hi,
                                   static_cast<std::int64_t>(kernelW_) - 1)};
}

IndexRange
ProblemSpec::rRange(std::uint32_t y_min, std::uint32_t y_max) const
{
    if (kind_ == Kind::Matmul) {
        return {0, static_cast<std::int64_t>(kernelH_) - 1};
    }
    // Eq. 12 generalized, as sRange above.
    const std::int64_t lo = ceilDiv(static_cast<std::int64_t>(y_min) -
                                        static_cast<std::int64_t>(stride_) *
                                            (outH_ - 1),
                                    dilation_);
    const std::int64_t hi = floorDiv(y_max, dilation_);
    return {std::max<std::int64_t>(lo, 0),
            std::min<std::int64_t>(hi,
                                   static_cast<std::int64_t>(kernelH_) - 1)};
}

IndexRange
ProblemSpec::matmulRowRange(std::uint32_t x_min, std::uint32_t x_max) const
{
    ANT_ASSERT(kind_ == Kind::Matmul,
               "matmulRowRange is only defined for matmul problems");
    // Eq. 15: r_min = x_0, r_max = x_{n-1}.
    return {std::max<std::int64_t>(x_min, 0),
            std::min<std::int64_t>(x_max,
                                   static_cast<std::int64_t>(kernelH_) - 1)};
}

IndexRange
ProblemSpec::xRange(std::uint32_t s_min, std::uint32_t s_max) const
{
    ANT_ASSERT(kind_ == Kind::Conv,
               "xRange is only defined for convolutions");
    // Solve x = stride*out + dil*s for out in [0, outW-1]:
    //   x_min' = dil*s_min, x_max' = dil*s_max + stride*(outW-1).
    const std::int64_t lo = static_cast<std::int64_t>(dilation_) * s_min;
    const std::int64_t hi = static_cast<std::int64_t>(dilation_) * s_max +
        static_cast<std::int64_t>(stride_) * (outW_ - 1);
    return {std::max<std::int64_t>(lo, 0),
            std::min<std::int64_t>(hi,
                                   static_cast<std::int64_t>(imageW_) - 1)};
}

IndexRange
ProblemSpec::yRange(std::uint32_t r_min, std::uint32_t r_max) const
{
    ANT_ASSERT(kind_ == Kind::Conv,
               "yRange is only defined for convolutions");
    const std::int64_t lo = static_cast<std::int64_t>(dilation_) * r_min;
    const std::int64_t hi = static_cast<std::int64_t>(dilation_) * r_max +
        static_cast<std::int64_t>(stride_) * (outH_ - 1);
    return {std::max<std::int64_t>(lo, 0),
            std::min<std::int64_t>(hi,
                                   static_cast<std::int64_t>(imageH_) - 1)};
}

double
ProblemSpec::outerProductEfficiency() const
{
    return static_cast<double>(denseValidProducts()) /
        static_cast<double>(denseCartesianProducts());
}

std::uint64_t
ProblemSpec::denseCartesianProducts() const
{
    return static_cast<std::uint64_t>(kernelH_) * kernelW_ *
        static_cast<std::uint64_t>(imageH_) * imageW_;
}

std::uint64_t
ProblemSpec::denseValidProducts() const
{
    if (kind_ == Kind::Matmul) {
        // Each of the H*S outputs accumulates W (== R) products.
        return static_cast<std::uint64_t>(imageH_) * imageW_ * kernelW_;
    }
    // Each of the outH*outW outputs accumulates R*S products.
    return static_cast<std::uint64_t>(kernelH_) * kernelW_ *
        static_cast<std::uint64_t>(outH_) * outW_;
}

std::string
ProblemSpec::toString() const
{
    std::ostringstream oss;
    if (kind_ == Kind::Matmul) {
        oss << "matmul image " << imageH_ << "x" << imageW_ << " * kernel "
            << kernelH_ << "x" << kernelW_;
    } else {
        oss << "conv kernel " << kernelH_ << "x" << kernelW_ << " image "
            << imageH_ << "x" << imageW_ << " out " << outH_ << "x" << outW_
            << " stride " << stride_ << " dil " << dilation_;
    }
    return oss.str();
}

} // namespace antsim
