#include "census.hh"

#include <atomic>

#include "util/logging.hh"
#include "util/simd.hh"

#if defined(__x86_64__)
#define ANTSIM_X86_SIMD 1
#include <immintrin.h>
#endif

namespace antsim {

namespace {

/**
 * One summed-area-table integration row: out[u] = prev[u] + prefix(u)
 * where prefix is the running sum of the row itself. Scalar ground
 * truth; the AVX2 form computes the identical uint32 (mod 2^32) sums.
 */
void
satIntegrateRowScalar(std::uint32_t *row, const std::uint32_t *prev,
                      std::size_t n)
{
    std::uint32_t row_sum = 0;
    for (std::size_t u = 0; u < n; ++u) {
        row_sum += row[u];
        row[u] = prev[u] + row_sum;
    }
}

/** Ground-truth gather-accumulate: sum of table[idx[i]]. */
std::uint64_t
gatherSumScalar(const std::uint64_t *table, const std::uint32_t *idx,
                std::size_t n)
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i)
        sum += table[idx[i]];
    return sum;
}

#ifdef ANTSIM_X86_SIMD

/**
 * Inclusive 8-wide prefix sum: shift-add within each 128-bit lane,
 * then propagate the low lane's total into the high lane.
 */
__attribute__((target("avx2"))) inline __m256i
prefix8Avx2(__m256i x)
{
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
    const __m256i low_total = _mm256_blend_epi32(
        _mm256_setzero_si256(),
        _mm256_permutevar8x32_epi32(x, _mm256_set1_epi32(3)), 0xF0);
    return _mm256_add_epi32(x, low_total);
}

__attribute__((target("avx2"))) void
satIntegrateRowAvx2(std::uint32_t *row, const std::uint32_t *prev,
                    std::size_t n)
{
    // The running sum is the loop-carried critical path, so the carry
    // never leaves the vector domain: the only chain per iteration is
    // one add plus one lane-7 broadcast (~4 cycles per 8 elements,
    // vs 8 serial adds scalar). The local 8-wide prefix sum is
    // computed off-chain. uint32 addition is associative mod 2^32, so
    // the result is bit-identical to the scalar running sum.
    const __m256i lane7 = _mm256_set1_epi32(7);
    __m256i carry = _mm256_setzero_si256(); // lane-broadcast running sum

    std::size_t u = 0;
    // Two vectors per iteration: both local prefixes and the a-to-b
    // join are off the carry chain, so the chain costs one add plus
    // one lane-7 broadcast per 16 elements.
    for (; u + 16 <= n; u += 16) {
        __m256i a = prefix8Avx2(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row + u)));
        __m256i b = prefix8Avx2(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row + u + 8)));
        b = _mm256_add_epi32(b, _mm256_permutevar8x32_epi32(a, lane7));
        a = _mm256_add_epi32(a, carry);
        b = _mm256_add_epi32(b, carry);
        carry = _mm256_permutevar8x32_epi32(b, lane7);
        const __m256i pa = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(prev + u));
        const __m256i pb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(prev + u + 8));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(row + u),
                            _mm256_add_epi32(a, pa));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(row + u + 8),
                            _mm256_add_epi32(b, pb));
    }
    for (; u + 8 <= n; u += 8) {
        __m256i x = prefix8Avx2(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row + u)));
        x = _mm256_add_epi32(x, carry);
        carry = _mm256_permutevar8x32_epi32(x, lane7);
        const __m256i p = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(prev + u));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(row + u),
                            _mm256_add_epi32(x, p));
    }
    std::uint32_t tail_carry =
        static_cast<std::uint32_t>(_mm256_extract_epi32(carry, 0));
    for (; u < n; ++u) {
        tail_carry += row[u];
        row[u] = prev[u] + tail_carry;
    }
}

__attribute__((target("avx2"))) std::uint64_t
gatherSumAvx2(const std::uint64_t *table, const std::uint32_t *idx,
              std::size_t n)
{
    // Four independent gather/accumulate streams keep several gathers
    // in flight at once; u64 addition wraps associatively, so any
    // accumulation order is exact.
    const auto *tbl = reinterpret_cast<const long long *>(table);
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i lanes0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(idx + i));
        const __m128i lanes1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(idx + i + 4));
        const __m128i lanes2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(idx + i + 8));
        const __m128i lanes3 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(idx + i + 12));
        acc0 = _mm256_add_epi64(acc0,
                                _mm256_i32gather_epi64(tbl, lanes0, 8));
        acc1 = _mm256_add_epi64(acc1,
                                _mm256_i32gather_epi64(tbl, lanes1, 8));
        acc2 = _mm256_add_epi64(acc2,
                                _mm256_i32gather_epi64(tbl, lanes2, 8));
        acc3 = _mm256_add_epi64(acc3,
                                _mm256_i32gather_epi64(tbl, lanes3, 8));
    }
    __m256i acc = _mm256_add_epi64(_mm256_add_epi64(acc0, acc1),
                                   _mm256_add_epi64(acc2, acc3));
    for (; i + 4 <= n; i += 4) {
        const __m128i lanes = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(idx + i));
        acc = _mm256_add_epi64(
            acc, _mm256_i32gather_epi64(
                     reinterpret_cast<const long long *>(table), lanes,
                     8));
    }
    alignas(32) std::uint64_t parts[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(parts), acc);
    std::uint64_t sum = parts[0] + parts[1] + parts[2] + parts[3];
    for (; i < n; ++i)
        sum += table[idx[i]];
    return sum;
}

#endif // ANTSIM_X86_SIMD

void
satIntegrateRow(std::uint32_t *row, const std::uint32_t *prev,
                std::size_t n)
{
#ifdef ANTSIM_X86_SIMD
    if (simd::avx2Enabled()) {
        satIntegrateRowAvx2(row, prev, n);
        return;
    }
#endif
    satIntegrateRowScalar(row, prev, n);
}

std::uint64_t
gatherSum(const std::uint64_t *table, const std::uint32_t *idx,
          std::size_t n)
{
#ifdef ANTSIM_X86_SIMD
    if (simd::avx2Enabled())
        return gatherSumAvx2(table, idx, n);
#endif
    return gatherSumScalar(table, idx, n);
}

} // namespace

namespace census_kernels {

// Qualified calls so lookup finds the file-local dispatch wrappers,
// not these same-named exported shims.

void
satIntegrateRow(std::uint32_t *row, const std::uint32_t *prev, std::size_t n)
{
    antsim::satIntegrateRow(row, prev, n);
}

std::uint64_t
gatherSum(const std::uint64_t *table, const std::uint32_t *idx,
          std::size_t n)
{
    return antsim::gatherSum(table, idx, n);
}

} // namespace census_kernels

namespace census_stats {

namespace {

std::atomic<std::uint64_t> g_tables_built{0};
std::atomic<std::uint64_t> g_rect_queries{0};

} // namespace

void
recordTablesBuilt(std::uint64_t count)
{
    g_tables_built.fetch_add(count, std::memory_order_relaxed);
}

void
recordRectQueries(std::uint64_t count)
{
    g_rect_queries.fetch_add(count, std::memory_order_relaxed);
}

std::uint64_t
tablesBuilt()
{
    return g_tables_built.load(std::memory_order_relaxed);
}

std::uint64_t
rectQueries()
{
    return g_rect_queries.load(std::memory_order_relaxed);
}

void
reset()
{
    g_tables_built.store(0, std::memory_order_relaxed);
    g_rect_queries.store(0, std::memory_order_relaxed);
}

} // namespace census_stats

CensusContext::CensusContext(const ProblemSpec &spec, const CsrMatrix &image)
    : spec_(spec), kernelW_(spec.kernelW()), imageNnz_(image.nnz())
{
    ANT_ASSERT(image.height() == spec.imageH() &&
                   image.width() == spec.imageW(),
               "census image plane ", image.height(), "x", image.width(),
               " does not match spec ", spec.toString());

    if (spec.kind() == ProblemSpec::Kind::Matmul) {
        // Valid partners of kernel entry (s, r) are the image entries
        // of column r (Eq. 14): one histogram answers every kernel.
        entryCounts_.assign(spec.kernelH(), 0);
        for (std::uint32_t c : image.columns())
            ++entryCounts_[c];
        census_stats::recordTablesBuilt(1);
        return;
    }

    const std::uint32_t stride = spec.stride();
    const std::uint64_t dil = spec.dilation();
    const std::uint32_t img_w = spec.imageW();
    const std::uint32_t img_h = spec.imageH();

    // Residue-class grid geometry: class (p, q) holds the image cells
    // with x % stride == p, y % stride == q, downsampled to
    // (u, v) = (x / stride, y / stride). nu[p] / nv[q] count the grid
    // columns / rows of each class.
    std::vector<std::uint32_t> nu(stride), nv(stride);
    for (std::uint32_t p = 0; p < stride; ++p)
        nu[p] = p < img_w ? (img_w - p + stride - 1) / stride : 0;
    for (std::uint32_t q = 0; q < stride; ++q)
        nv[q] = q < img_h ? (img_h - q + stride - 1) / stride : 0;

    // One flat buffer holds the stride^2 summed-area tables, each with
    // a zero border row/column so rectangle queries need no branches:
    // sat[(v+1) * (nu+1) + (u+1)] = non-zeros with coords <= (u, v).
    std::vector<std::size_t> offset(static_cast<std::size_t>(stride) *
                                        stride +
                                    1);
    for (std::uint32_t q = 0; q < stride; ++q) {
        for (std::uint32_t p = 0; p < stride; ++p) {
            const std::size_t cells =
                static_cast<std::size_t>(nv[q] + 1) * (nu[p] + 1);
            offset[static_cast<std::size_t>(q) * stride + p + 1] =
                offset[static_cast<std::size_t>(q) * stride + p] + cells;
        }
    }
    std::vector<std::uint32_t> sat(offset.back(), 0);

    // Scatter the image occupancy into the class grids...
    const auto row_ptr = image.rowPtr();
    const auto columns = image.columns();
    for (std::uint32_t y = 0; y < img_h; ++y) {
        const std::uint32_t q = y % stride;
        const std::uint32_t v = y / stride;
        for (std::uint32_t i = row_ptr[y]; i < row_ptr[y + 1]; ++i) {
            const std::uint32_t x = columns[i];
            const std::uint32_t p = x % stride;
            const std::uint32_t u = x / stride;
            sat[offset[static_cast<std::size_t>(q) * stride + p] +
                static_cast<std::size_t>(v + 1) * (nu[p] + 1) + (u + 1)] +=
                1;
        }
    }
    // ...and integrate each class into its summed-area table, one
    // vectorizable prefix-sum-and-add row at a time.
    for (std::uint32_t q = 0; q < stride; ++q) {
        for (std::uint32_t p = 0; p < stride; ++p) {
            std::uint32_t *t =
                sat.data() + offset[static_cast<std::size_t>(q) * stride + p];
            const std::size_t cols = nu[p] + 1;
            for (std::uint32_t v = 1; v <= nv[q]; ++v) {
                satIntegrateRow(t + v * cols + 1, t + (v - 1) * cols + 1,
                                nu[p]);
            }
        }
    }
    census_stats::recordTablesBuilt(static_cast<std::uint64_t>(stride) *
                                    stride);

    // Materialize the R*S per-entry counts: one rectangle query each,
    // shared by every kernel of the stack. Kernel entry (s, r) pairs
    // with image x iff x >= dil*s, x ≡ dil*s (mod stride), and
    // (x - dil*s) / stride < outW -- i.e. u in [u0, u0 + outW - 1] on
    // class column p = dil*s % stride -- and likewise along y.
    const std::uint32_t kernel_h = spec.kernelH();
    const std::uint32_t kernel_w = spec.kernelW();
    entryCounts_.assign(static_cast<std::size_t>(kernel_h) * kernel_w, 0);
    for (std::uint32_t r = 0; r < kernel_h; ++r) {
        const std::uint64_t ys = dil * r;
        const auto q = static_cast<std::uint32_t>(ys % stride);
        const auto v0 = static_cast<std::uint32_t>(ys / stride);
        if (v0 >= nv[q])
            continue;
        const std::uint32_t v1 =
            std::min<std::uint64_t>(v0 + spec.outH() - 1, nv[q] - 1);
        for (std::uint32_t s = 0; s < kernel_w; ++s) {
            const std::uint64_t xs = dil * s;
            const auto p = static_cast<std::uint32_t>(xs % stride);
            const auto u0 = static_cast<std::uint32_t>(xs / stride);
            if (u0 >= nu[p])
                continue;
            const std::uint32_t u1 =
                std::min<std::uint64_t>(u0 + spec.outW() - 1, nu[p] - 1);
            const std::uint32_t *t =
                sat.data() +
                offset[static_cast<std::size_t>(q) * stride + p];
            const std::size_t cols = nu[p] + 1;
            // Inclusive rectangle [u0..u1] x [v0..v1] via the four
            // border-padded corners.
            const std::uint64_t count =
                static_cast<std::uint64_t>(
                    t[static_cast<std::size_t>(v1 + 1) * cols + (u1 + 1)]) -
                t[static_cast<std::size_t>(v0) * cols + (u1 + 1)] -
                t[static_cast<std::size_t>(v1 + 1) * cols + u0] +
                t[static_cast<std::size_t>(v0) * cols + u0];
            entryCounts_[static_cast<std::size_t>(r) * kernel_w + s] = count;
        }
    }
    census_stats::recordRectQueries(static_cast<std::uint64_t>(kernel_h) *
                                    kernel_w);
}

ProductCensus
CensusContext::countProducts(const CsrMatrix &kernel) const
{
    ProductCensus census;
    census.denseProducts = spec_.denseCartesianProducts();
    census.nonzeroProducts =
        static_cast<std::uint64_t>(kernel.nnz()) * imageNnz_;

    const auto row_ptr = kernel.rowPtr();
    if (spec_.kind() == ProblemSpec::Kind::Matmul) {
        // Row r contributes rowNnz(r) * colNnz(r) valid products; s is
        // unconstrained (Sec. 5).
        for (std::uint32_t r = 0; r < kernel.height(); ++r) {
            census.validProducts +=
                static_cast<std::uint64_t>(row_ptr[r + 1] - row_ptr[r]) *
                entryCounts_[r];
        }
    } else {
        const auto columns = kernel.columns();
        for (std::uint32_t r = 0; r < kernel.height(); ++r) {
            const std::uint64_t *row_counts =
                entryCounts_.data() +
                static_cast<std::size_t>(r) * kernelW_;
            census.validProducts +=
                gatherSum(row_counts, columns.data() + row_ptr[r],
                          row_ptr[r + 1] - row_ptr[r]);
        }
    }
    census.rcpProducts = census.nonzeroProducts - census.validProducts;
    census_stats::recordRectQueries(kernel.nnz());
    return census;
}

ValidTable::ValidTable(const ProblemSpec &spec)
    : matmul_(spec.kind() == ProblemSpec::Kind::Matmul),
      kernelW_(spec.kernelW()), kernelH_(spec.kernelH())
{
    if (matmul_)
        return;
    const std::uint64_t dil = spec.dilation();
    const std::uint32_t stride = spec.stride();
    // The +3 tail slack keeps 4-byte gathers at the last (x, s) pair
    // inside the allocation (see xOkRow); the slack bytes stay zero
    // and never affect a verdict.
    xOk_.assign(static_cast<std::size_t>(spec.imageW()) * kernelW_ + 3, 0);
    for (std::uint32_t x = 0; x < spec.imageW(); ++x) {
        for (std::uint32_t s = 0; s < kernelW_; ++s) {
            const std::int64_t dx = static_cast<std::int64_t>(x) -
                static_cast<std::int64_t>(dil * s);
            xOk_[static_cast<std::size_t>(x) * kernelW_ + s] =
                dx >= 0 && dx % stride == 0 && dx / stride < spec.outW();
        }
    }
    yOk_.assign(static_cast<std::size_t>(spec.imageH()) * kernelH_ + 3, 0);
    for (std::uint32_t y = 0; y < spec.imageH(); ++y) {
        for (std::uint32_t r = 0; r < kernelH_; ++r) {
            const std::int64_t dy = static_cast<std::int64_t>(y) -
                static_cast<std::int64_t>(dil * r);
            yOk_[static_cast<std::size_t>(y) * kernelH_ + r] =
                dy >= 0 && dy % stride == 0 && dy / stride < spec.outH();
        }
    }
}

} // namespace antsim
