#include "census.hh"

#include <atomic>

#include "util/logging.hh"

namespace antsim {

namespace census_stats {

namespace {

std::atomic<std::uint64_t> g_tables_built{0};
std::atomic<std::uint64_t> g_rect_queries{0};

} // namespace

void
recordTablesBuilt(std::uint64_t count)
{
    g_tables_built.fetch_add(count, std::memory_order_relaxed);
}

void
recordRectQueries(std::uint64_t count)
{
    g_rect_queries.fetch_add(count, std::memory_order_relaxed);
}

std::uint64_t
tablesBuilt()
{
    return g_tables_built.load(std::memory_order_relaxed);
}

std::uint64_t
rectQueries()
{
    return g_rect_queries.load(std::memory_order_relaxed);
}

void
reset()
{
    g_tables_built.store(0, std::memory_order_relaxed);
    g_rect_queries.store(0, std::memory_order_relaxed);
}

} // namespace census_stats

CensusContext::CensusContext(const ProblemSpec &spec, const CsrMatrix &image)
    : spec_(spec), kernelW_(spec.kernelW()), imageNnz_(image.nnz())
{
    ANT_ASSERT(image.height() == spec.imageH() &&
                   image.width() == spec.imageW(),
               "census image plane ", image.height(), "x", image.width(),
               " does not match spec ", spec.toString());

    if (spec.kind() == ProblemSpec::Kind::Matmul) {
        // Valid partners of kernel entry (s, r) are the image entries
        // of column r (Eq. 14): one histogram answers every kernel.
        entryCounts_.assign(spec.kernelH(), 0);
        for (std::uint32_t c : image.columns())
            ++entryCounts_[c];
        census_stats::recordTablesBuilt(1);
        return;
    }

    const std::uint32_t stride = spec.stride();
    const std::uint64_t dil = spec.dilation();
    const std::uint32_t img_w = spec.imageW();
    const std::uint32_t img_h = spec.imageH();

    // Residue-class grid geometry: class (p, q) holds the image cells
    // with x % stride == p, y % stride == q, downsampled to
    // (u, v) = (x / stride, y / stride). nu[p] / nv[q] count the grid
    // columns / rows of each class.
    std::vector<std::uint32_t> nu(stride), nv(stride);
    for (std::uint32_t p = 0; p < stride; ++p)
        nu[p] = p < img_w ? (img_w - p + stride - 1) / stride : 0;
    for (std::uint32_t q = 0; q < stride; ++q)
        nv[q] = q < img_h ? (img_h - q + stride - 1) / stride : 0;

    // One flat buffer holds the stride^2 summed-area tables, each with
    // a zero border row/column so rectangle queries need no branches:
    // sat[(v+1) * (nu+1) + (u+1)] = non-zeros with coords <= (u, v).
    std::vector<std::size_t> offset(static_cast<std::size_t>(stride) *
                                        stride +
                                    1);
    for (std::uint32_t q = 0; q < stride; ++q) {
        for (std::uint32_t p = 0; p < stride; ++p) {
            const std::size_t cells =
                static_cast<std::size_t>(nv[q] + 1) * (nu[p] + 1);
            offset[static_cast<std::size_t>(q) * stride + p + 1] =
                offset[static_cast<std::size_t>(q) * stride + p] + cells;
        }
    }
    std::vector<std::uint32_t> sat(offset.back(), 0);

    // Scatter the image occupancy into the class grids...
    const auto &row_ptr = image.rowPtr();
    const auto &columns = image.columns();
    for (std::uint32_t y = 0; y < img_h; ++y) {
        const std::uint32_t q = y % stride;
        const std::uint32_t v = y / stride;
        for (std::uint32_t i = row_ptr[y]; i < row_ptr[y + 1]; ++i) {
            const std::uint32_t x = columns[i];
            const std::uint32_t p = x % stride;
            const std::uint32_t u = x / stride;
            sat[offset[static_cast<std::size_t>(q) * stride + p] +
                static_cast<std::size_t>(v + 1) * (nu[p] + 1) + (u + 1)] +=
                1;
        }
    }
    // ...and integrate each class into its summed-area table.
    for (std::uint32_t q = 0; q < stride; ++q) {
        for (std::uint32_t p = 0; p < stride; ++p) {
            std::uint32_t *t =
                sat.data() + offset[static_cast<std::size_t>(q) * stride + p];
            const std::size_t cols = nu[p] + 1;
            for (std::uint32_t v = 1; v <= nv[q]; ++v) {
                std::uint32_t row_sum = 0;
                for (std::uint32_t u = 1; u <= nu[p]; ++u) {
                    row_sum += t[v * cols + u];
                    t[v * cols + u] = t[(v - 1) * cols + u] + row_sum;
                }
            }
        }
    }
    census_stats::recordTablesBuilt(static_cast<std::uint64_t>(stride) *
                                    stride);

    // Materialize the R*S per-entry counts: one rectangle query each,
    // shared by every kernel of the stack. Kernel entry (s, r) pairs
    // with image x iff x >= dil*s, x ≡ dil*s (mod stride), and
    // (x - dil*s) / stride < outW -- i.e. u in [u0, u0 + outW - 1] on
    // class column p = dil*s % stride -- and likewise along y.
    const std::uint32_t kernel_h = spec.kernelH();
    const std::uint32_t kernel_w = spec.kernelW();
    entryCounts_.assign(static_cast<std::size_t>(kernel_h) * kernel_w, 0);
    for (std::uint32_t r = 0; r < kernel_h; ++r) {
        const std::uint64_t ys = dil * r;
        const auto q = static_cast<std::uint32_t>(ys % stride);
        const auto v0 = static_cast<std::uint32_t>(ys / stride);
        if (v0 >= nv[q])
            continue;
        const std::uint32_t v1 =
            std::min<std::uint64_t>(v0 + spec.outH() - 1, nv[q] - 1);
        for (std::uint32_t s = 0; s < kernel_w; ++s) {
            const std::uint64_t xs = dil * s;
            const auto p = static_cast<std::uint32_t>(xs % stride);
            const auto u0 = static_cast<std::uint32_t>(xs / stride);
            if (u0 >= nu[p])
                continue;
            const std::uint32_t u1 =
                std::min<std::uint64_t>(u0 + spec.outW() - 1, nu[p] - 1);
            const std::uint32_t *t =
                sat.data() +
                offset[static_cast<std::size_t>(q) * stride + p];
            const std::size_t cols = nu[p] + 1;
            // Inclusive rectangle [u0..u1] x [v0..v1] via the four
            // border-padded corners.
            const std::uint64_t count =
                static_cast<std::uint64_t>(
                    t[static_cast<std::size_t>(v1 + 1) * cols + (u1 + 1)]) -
                t[static_cast<std::size_t>(v0) * cols + (u1 + 1)] -
                t[static_cast<std::size_t>(v1 + 1) * cols + u0] +
                t[static_cast<std::size_t>(v0) * cols + u0];
            entryCounts_[static_cast<std::size_t>(r) * kernel_w + s] = count;
        }
    }
    census_stats::recordRectQueries(static_cast<std::uint64_t>(kernel_h) *
                                    kernel_w);
}

ProductCensus
CensusContext::countProducts(const CsrMatrix &kernel) const
{
    ProductCensus census;
    census.denseProducts = spec_.denseCartesianProducts();
    census.nonzeroProducts =
        static_cast<std::uint64_t>(kernel.nnz()) * imageNnz_;

    const auto &row_ptr = kernel.rowPtr();
    if (spec_.kind() == ProblemSpec::Kind::Matmul) {
        // Row r contributes rowNnz(r) * colNnz(r) valid products; s is
        // unconstrained (Sec. 5).
        for (std::uint32_t r = 0; r < kernel.height(); ++r) {
            census.validProducts +=
                static_cast<std::uint64_t>(row_ptr[r + 1] - row_ptr[r]) *
                entryCounts_[r];
        }
    } else {
        const auto &columns = kernel.columns();
        for (std::uint32_t r = 0; r < kernel.height(); ++r) {
            const std::uint64_t *row_counts =
                entryCounts_.data() +
                static_cast<std::size_t>(r) * kernelW_;
            for (std::uint32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i)
                census.validProducts += row_counts[columns[i]];
        }
    }
    census.rcpProducts = census.nonzeroProducts - census.validProducts;
    census_stats::recordRectQueries(kernel.nnz());
    return census;
}

ValidTable::ValidTable(const ProblemSpec &spec)
    : matmul_(spec.kind() == ProblemSpec::Kind::Matmul),
      kernelW_(spec.kernelW()), kernelH_(spec.kernelH())
{
    if (matmul_)
        return;
    const std::uint64_t dil = spec.dilation();
    const std::uint32_t stride = spec.stride();
    xOk_.assign(static_cast<std::size_t>(spec.imageW()) * kernelW_, 0);
    for (std::uint32_t x = 0; x < spec.imageW(); ++x) {
        for (std::uint32_t s = 0; s < kernelW_; ++s) {
            const std::int64_t dx = static_cast<std::int64_t>(x) -
                static_cast<std::int64_t>(dil * s);
            xOk_[static_cast<std::size_t>(x) * kernelW_ + s] =
                dx >= 0 && dx % stride == 0 && dx / stride < spec.outW();
        }
    }
    yOk_.assign(static_cast<std::size_t>(spec.imageH()) * kernelH_, 0);
    for (std::uint32_t y = 0; y < spec.imageH(); ++y) {
        for (std::uint32_t r = 0; r < kernelH_; ++r) {
            const std::int64_t dy = static_cast<std::int64_t>(y) -
                static_cast<std::int64_t>(dil * r);
            yOk_[static_cast<std::size_t>(y) * kernelH_ + r] =
                dy >= 0 && dy % stride == 0 && dy / stride < spec.outH();
        }
    }
}

} // namespace antsim
