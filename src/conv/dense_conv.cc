#include "dense_conv.hh"

#include <cmath>

#include "util/audit.hh"
#include "util/logging.hh"

namespace antsim {

namespace {

/**
 * Invariant audit of a reference output: every element finite. A NaN
 * or infinity here means an operand plane was corrupted upstream, and
 * the dense reference is the last place it can be caught before it
 * poisons a functional comparison.
 */
void
auditReferenceOutput(const Dense2d<double> &out)
{
    if (!audit::enabled())
        return;
    for (std::size_t i = 0; i < out.data().size(); ++i) {
        ANT_ASSERT(std::isfinite(out.data()[i]),
                   "reference output element ", i, " is non-finite: ",
                   out.data()[i]);
    }
}

} // namespace

Dense2d<double>
referenceExecute(const ProblemSpec &spec, const Dense2d<float> &kernel,
                 const Dense2d<float> &image)
{
    ANT_ASSERT(kernel.height() == spec.kernelH() &&
               kernel.width() == spec.kernelW(),
               "kernel plane shape does not match spec");
    ANT_ASSERT(image.height() == spec.imageH() &&
               image.width() == spec.imageW(),
               "image plane shape does not match spec");

    Dense2d<double> out(spec.outH(), spec.outW());

    if (spec.kind() == ProblemSpec::Kind::Matmul) {
        for (std::uint32_t y = 0; y < spec.imageH(); ++y) {
            for (std::uint32_t s = 0; s < spec.kernelW(); ++s) {
                double acc = 0.0;
                for (std::uint32_t x = 0; x < spec.imageW(); ++x) {
                    acc += static_cast<double>(image.at(x, y)) *
                        static_cast<double>(kernel.at(s, x));
                }
                out.at(s, y) = acc;
            }
        }
        auditReferenceOutput(out);
        return out;
    }

    const std::uint32_t stride = spec.stride();
    const std::uint32_t dil = spec.dilation();
    for (std::uint32_t oy = 0; oy < spec.outH(); ++oy) {
        for (std::uint32_t ox = 0; ox < spec.outW(); ++ox) {
            double acc = 0.0;
            for (std::uint32_t r = 0; r < spec.kernelH(); ++r) {
                const std::uint32_t y = stride * oy + dil * r;
                for (std::uint32_t s = 0; s < spec.kernelW(); ++s) {
                    const std::uint32_t x = stride * ox + dil * s;
                    acc += static_cast<double>(kernel.at(s, r)) *
                        static_cast<double>(image.at(x, y));
                }
            }
            out.at(ox, oy) = acc;
        }
    }
    auditReferenceOutput(out);
    return out;
}

double
maxAbsDiff(const Dense2d<double> &a, const Dense2d<double> &b)
{
    ANT_ASSERT(a.height() == b.height() && a.width() == b.width(),
               "shape mismatch in maxAbsDiff");
    double worst = 0.0;
    for (std::size_t i = 0; i < a.data().size(); ++i)
        worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
    return worst;
}

} // namespace antsim
