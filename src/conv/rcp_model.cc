#include "rcp_model.hh"

#include "util/logging.hh"

namespace antsim {

PhaseSpecs
trainingPhaseSpecs(std::uint32_t kernel_h, std::uint32_t kernel_w,
                   std::uint32_t image_h, std::uint32_t image_w,
                   std::uint32_t stride)
{
    // Callers pass the *padded* forward image dims; see
    // workload/layer.hh for padding bookkeeping.
    const ProblemSpec fwd =
        ProblemSpec::conv(kernel_h, kernel_w, image_h, image_w, stride, 1);

    // Backward: rotated W over the zero-dilated gradient. The dilated
    // gradient spans stride*(out-1)+1; full re-padding of (k-1) per
    // side is clipped so the backward image never exceeds the forward
    // one (the clipped rows/cols would only add RCPs).
    const std::uint32_t gh = stride * (fwd.outH() - 1) + 1;
    const std::uint32_t gw = stride * (fwd.outW() - 1) + 1;
    const std::uint32_t bh =
        std::min(gh + 2 * (kernel_h - 1), image_h);
    const std::uint32_t bw =
        std::min(gw + 2 * (kernel_w - 1), image_w);
    const ProblemSpec bwd =
        ProblemSpec::conv(kernel_h, kernel_w, bh, bw, 1, 1);

    // Update: the gradient acts as kernel (dilated by the forward
    // stride) over the activation image; output cropped to the weight
    // shape R x S (Fig. 5, Table 2).
    const ProblemSpec upd = ProblemSpec::convWithOutDims(
        fwd.outH(), fwd.outW(), image_h, image_w, kernel_h, kernel_w, 1,
        stride);

    return {fwd, bwd, upd};
}

std::vector<EfficiencyRow>
table2Rows()
{
    std::vector<EfficiencyRow> rows;
    auto add_pair = [&rows](std::uint32_t k, std::uint32_t img,
                            std::uint32_t stride) {
        const PhaseSpecs specs = trainingPhaseSpecs(k, k, img, img, stride);
        rows.push_back({"W*A, W*G_A", specs.forward,
                        specs.forward.outerProductEfficiency()});
        rows.push_back({"G_A*A", specs.update,
                        specs.update.outerProductEfficiency()});
    };
    // The four shape pairs of Table 2 (padded image dims).
    add_pair(3, 114, 1);   // ImageNet 3x3 stride 1: out 112x112
    add_pair(7, 230, 2);   // ImageNet stem 7x7 stride 2: out 112x112
    add_pair(1, 56, 1);    // ImageNet 1x1: out 56x56
    add_pair(3, 16, 1);    // CIFAR 3x3: out 14x14
    return rows;
}

std::vector<EfficiencyRow>
table3Rows()
{
    std::vector<EfficiencyRow> rows;
    auto add = [&rows](const char *phase, std::uint32_t h, std::uint32_t w,
                       std::uint32_t r, std::uint32_t s) {
        const ProblemSpec spec = ProblemSpec::matmul(h, w, r, s);
        rows.push_back({phase, spec, spec.outerProductEfficiency()});
    };
    // Transformer (text translation) projection layers.
    add("A x W, G_A x W", 512, 72, 72, 512);
    add("A x G_A", 72, 512, 512, 512);
    // Small classifier head.
    add("A x W", 64, 10, 10, 10);
    add("G_A x W", 10, 10, 10, 64);
    add("A x G_A", 10, 64, 64, 10);
    // Text-classification RNN (IMDB) layers.
    add("A x W", 300, 3, 3, 1200);
    add("G_A x W", 1200, 3, 3, 300);
    add("A x G_A", 3, 300, 300, 1200);
    add("A x W", 300, 8, 8, 1200);
    add("G_A x W", 1200, 8, 8, 300);
    add("A x G_A", 8, 300, 300, 1200);
    return rows;
}

} // namespace antsim
