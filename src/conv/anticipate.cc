#include "anticipate.hh"

#include <algorithm>

#include "util/logging.hh"

namespace antsim {

AnticipateResult
idealAnticipation(const ProblemSpec &spec, const CsrMatrix &kernel,
                  const CsrMatrix &image)
{
    AnticipateResult result{Dense2d<double>(spec.outH(), spec.outW()),
                            0, 0, 0, 0};

    const auto kernel_entries = kernel.entries();
    const auto image_entries = image.entries();
    const std::uint64_t all_products =
        static_cast<std::uint64_t>(kernel.nnz()) *
        static_cast<std::uint64_t>(image.nnz());

    for (const auto &img : image_entries) {
        for (const auto &ker : kernel_entries) {
            // Per-element conditions (Eqs. 7-8 generalized): the s/r
            // ideal ranges plus stride divisibility via outputIndex.
            const auto out = spec.outputIndex(img.x, img.y, ker.x, ker.y);
            if (out) {
                ++result.executedProducts;
                ++result.validProducts;
                result.output.at(out->x, out->y) +=
                    static_cast<double>(img.value) *
                    static_cast<double>(ker.value);
            }
        }
    }
    result.skippedRcps = all_products - result.executedProducts;
    return result;
}

AnticipateResult
blockAnticipation(const ProblemSpec &spec, const CsrMatrix &kernel,
                  const CsrMatrix &image, std::uint32_t n,
                  bool use_r_condition, bool use_s_condition)
{
    ANT_ASSERT(n > 0, "group width must be positive");
    AnticipateResult result{Dense2d<double>(spec.outH(), spec.outW()),
                            0, 0, 0, 0};

    const auto kernel_entries = kernel.entries();
    const auto image_entries = image.entries();
    const std::uint64_t all_products =
        static_cast<std::uint64_t>(kernel.nnz()) *
        static_cast<std::uint64_t>(image.nnz());

    for (std::size_t base = 0; base < image_entries.size(); base += n) {
        const std::size_t group_end =
            std::min(base + n, image_entries.size());

        // Group index extremes (Algorithm 2 lls. 2-5). CSR order makes
        // y monotonic, but x is not, so min/max over both.
        std::uint32_t x_min = image_entries[base].x;
        std::uint32_t x_max = x_min;
        std::uint32_t y_min = image_entries[base].y;
        std::uint32_t y_max = y_min;
        for (std::size_t i = base + 1; i < group_end; ++i) {
            x_min = std::min(x_min, image_entries[i].x);
            x_max = std::max(x_max, image_entries[i].x);
            y_min = std::min(y_min, image_entries[i].y);
            y_max = std::max(y_max, image_entries[i].y);
        }
        const IndexRange s_range = spec.sRange(x_min, x_max);
        const IndexRange r_range = spec.rRange(y_min, y_max);

        for (const auto &ker : kernel_entries) {
            const bool valid_r =
                !use_r_condition || r_range.contains(ker.y);
            const bool valid_s =
                !use_s_condition || s_range.contains(ker.x);
            if (!(valid_r && valid_s))
                continue;

            // Kernel element survives the screen: multiply it with the
            // whole image group (Algorithm 2 lls. 10-15).
            for (std::size_t i = base; i < group_end; ++i) {
                const auto &img = image_entries[i];
                const auto out =
                    spec.outputIndex(img.x, img.y, ker.x, ker.y);
                ++result.executedProducts;
                if (out) {
                    ++result.validProducts;
                    result.output.at(out->x, out->y) +=
                        static_cast<double>(img.value) *
                        static_cast<double>(ker.value);
                } else {
                    ++result.residualRcps;
                }
            }
        }
    }
    result.skippedRcps = all_products - result.executedProducts;
    return result;
}

} // namespace antsim
