/**
 * @file
 * Dense reference implementations of convolution and matmul.
 *
 * Every accelerator model in ANTSim is validated against these: the
 * accumulated output plane of any simulated PE must equal the dense
 * reference within floating-point tolerance.
 */

#ifndef ANTSIM_CONV_DENSE_CONV_HH
#define ANTSIM_CONV_DENSE_CONV_HH

#include "conv/problem_spec.hh"
#include "tensor/matrix.hh"

namespace antsim {

/**
 * Reference execution of @p spec on dense planes.
 *
 * For convs: out[oy][ox] = sum_{r,s} kernel(s,r) *
 * image(stride*ox + dilation*s, stride*oy + dilation*r).
 * For matmuls: out[y][s] = sum_x image(x,y) * kernel(s, r=x).
 *
 * Accumulates in double to give a tight reference for tolerance checks.
 */
Dense2d<double> referenceExecute(const ProblemSpec &spec,
                                 const Dense2d<float> &kernel,
                                 const Dense2d<float> &image);

/**
 * Maximum absolute elementwise difference between two planes.
 * Panics if the shapes differ.
 */
double maxAbsDiff(const Dense2d<double> &a, const Dense2d<double> &b);

} // namespace antsim

#endif // ANTSIM_CONV_DENSE_CONV_HH
