/**
 * @file
 * Analytic model of dense outer-product RCPs (Sec. 3.1, Sec. 5).
 *
 * Reproduces the closed-form outer-product efficiency (Eq. 6 for convs,
 * 1/R for matmuls) used by Tables 2 and 3, and the training-phase shape
 * relations of Fig. 5 / Table 2: for a forward conv of an RxS kernel
 * over an HxW (padded) image, the update phase convolves the
 * HoutxWout-shaped gradient (as kernel) over the same image, producing
 * an RxS output.
 */

#ifndef ANTSIM_CONV_RCP_MODEL_HH
#define ANTSIM_CONV_RCP_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "conv/problem_spec.hh"

namespace antsim {

/** One row of the Table 2 / Table 3 style efficiency listings. */
struct EfficiencyRow
{
    std::string phase;
    ProblemSpec spec;
    double efficiency;
};

/**
 * Build the three training-phase specs for a conv layer whose forward
 * pass convolves an RxS kernel (dilation 1) over an HxW padded image
 * with the given stride (Fig. 5 relations):
 *  - forward  W * A:    kernel RxS over image HxW, stride;
 *  - backward W * G_A:  kernel RxS (rotated W) over the zero-dilated,
 *                       re-padded gradient, stride 1 -- dims chosen so
 *                       the output is the forward image shape;
 *  - update   G_A * A:  kernel HoutxWout (the gradient) with dilation =
 *                       stride over image HxW, stride 1, output RxS.
 */
struct PhaseSpecs
{
    ProblemSpec forward;
    ProblemSpec backward;
    ProblemSpec update;
};

/** Derive the three phase specs for one conv layer. */
PhaseSpecs trainingPhaseSpecs(std::uint32_t kernel_h, std::uint32_t kernel_w,
                              std::uint32_t image_h, std::uint32_t image_w,
                              std::uint32_t stride);

/**
 * The Table 2 rows: typical ImageNet/ResNet50 and CIFAR/ResNet18
 * dimensions with their outer-product efficiencies. Matches the
 * paper's printed numbers (96.52%, 0.07%, 23.71%, 0.09%, 100.00%,
 * 0.03%, 76.58%, 3.53%).
 */
std::vector<EfficiencyRow> table2Rows();

/**
 * The Table 3 rows: transformer / RNN matmul dimensions with their
 * outer-product efficiencies (1.39%, 0.20%, 10.00%, ... 0.33%).
 */
std::vector<EfficiencyRow> table3Rows();

} // namespace antsim

#endif // ANTSIM_CONV_RCP_MODEL_HH
