/**
 * @file
 * Shared census engine: O(nnz_k) product counting per kernel plane.
 *
 * The brute-force countProducts (outer_product.hh) walks every image
 * non-zero against every kernel row in range -- O(nnz_i * R * S) per
 * kernel -- and the SCNN counting path repeats that walk for each of
 * the up to 512 kernels of a stack, rebuilding the same image-side
 * structure every time. The simulator thus performs exactly the kind
 * of redundant computation the paper's accelerator eliminates.
 *
 * A CensusContext precomputes the image side once per (spec, image):
 *
 *  - Convolution: the validity test of outputIndex factorizes per
 *    axis. A product image(x, y) * kernel(s, r) is valid iff
 *        x ≡ dil*s (mod stride)  and  dil*s <= x <= dil*s + stride*(outW-1)
 *    and the same along y. Partitioning the image into the stride^2
 *    residue classes (x mod stride, y mod stride) and building one 2-D
 *    prefix-sum (summed-area) table of non-zero occupancy per class
 *    turns each kernel entry's valid-partner count into a single O(1)
 *    rectangle query on the class (dil*s mod stride, dil*r mod stride).
 *    The R*S per-entry counts are materialized up front, so counting a
 *    kernel is one table lookup per stored entry: O(nnz_k).
 *
 *  - Matmul: valid partners of kernel entry (s, r) are the image
 *    entries of column r (Eq. 14); a per-column nnz histogram built
 *    once answers every kernel of the stack.
 *
 * countProducts(kernel) is bit-identical to the brute-force census
 * (tests/census_property_test.cc cross-checks randomized geometries).
 *
 * The header also hosts ValidTable, a per-axis validity lookup that
 * replaces the division-heavy ProblemSpec::isValid in the ANT PE's
 * per-product counting loops, and the process-wide census statistics
 * surfaced in the run report's profile section.
 */

#ifndef ANTSIM_CONV_CENSUS_HH
#define ANTSIM_CONV_CENSUS_HH

#include <cstdint>
#include <vector>

#include "conv/outer_product.hh"
#include "conv/problem_spec.hh"
#include "tensor/csr.hh"

namespace antsim {

/** Image-side census tables shared by every kernel of a stack. */
class CensusContext
{
  public:
    /** Build the tables for one (spec, image plane) pair. */
    CensusContext(const ProblemSpec &spec, const CsrMatrix &image);

    /**
     * Valid-partner count of kernel entry (s, r): the number of image
     * non-zeros whose product with the entry maps to a valid output.
     * O(1) table lookup.
     */
    std::uint64_t
    validCount(std::uint32_t s, std::uint32_t r) const
    {
        return entryCounts_[static_cast<std::size_t>(r) * kernelW_ + s];
    }

    /**
     * Census of kernel * image, counter-for-counter identical to the
     * brute-force countProducts(spec, kernel, image) but O(nnz_k).
     */
    ProductCensus countProducts(const CsrMatrix &kernel) const;

    /** The spec the tables were built for. */
    const ProblemSpec &spec() const { return spec_; }

  private:
    ProblemSpec spec_;
    std::uint32_t kernelW_ = 0;
    std::uint64_t imageNnz_ = 0;
    /** Valid-partner count per kernel coordinate, R*S row-major. */
    std::vector<std::uint64_t> entryCounts_;
};

/**
 * Per-axis validity lookup for one ProblemSpec: valid(x, y, s, r) ==
 * xOk(x, s) && yOk(y, r) for convolutions (outputIndex factorizes per
 * axis), and r == x for matmul. Replaces the div/mod chain of
 * ProblemSpec::isValid in per-product hot loops; identical results by
 * construction (built by evaluating spec.isValid-equivalent per-axis
 * conditions once per coordinate pair).
 */
class ValidTable
{
  public:
    explicit ValidTable(const ProblemSpec &spec);

    /** True when image(x, y) * kernel(s, r) maps to a valid output. */
    bool
    valid(std::uint32_t x, std::uint32_t y, std::uint32_t s,
          std::uint32_t r) const
    {
        if (matmul_)
            return r == x;
        return xOk_[static_cast<std::size_t>(x) * kernelW_ + s] &&
            yOk_[static_cast<std::size_t>(y) * kernelH_ + r];
    }

    /** True for matmul specs (valid() degenerates to r == x). */
    bool matmul() const { return matmul_; }

    /**
     * Row of x-axis verdicts for image column @p x, indexed by s in
     * [0, kernelW). The row carries at least 3 readable slack bytes
     * past its logical end so 4-byte-granularity SIMD gathers at any
     * valid s stay in bounds.
     */
    const std::uint8_t *
    xOkRow(std::uint32_t x) const
    {
        return xOk_.data() + static_cast<std::size_t>(x) * kernelW_;
    }

    /** Row of y-axis verdicts for image row @p y, indexed by r. */
    const std::uint8_t *
    yOkRow(std::uint32_t y) const
    {
        return yOk_.data() + static_cast<std::size_t>(y) * kernelH_;
    }

  private:
    bool matmul_ = false;
    std::uint32_t kernelW_ = 0;
    std::uint32_t kernelH_ = 0;
    /** xOk_[x*S + s]: the x-axis conditions hold for (x, s). */
    std::vector<std::uint8_t> xOk_;
    /** yOk_[y*R + r]: the y-axis conditions hold for (y, r). */
    std::vector<std::uint8_t> yOk_;
};

namespace census_kernels {

/**
 * The census engine's two SIMD-dispatched hot loops, exposed at kernel
 * granularity for the micro-benchmark perf gate (bench/micro_census +
 * scripts/check_perf.py "micro_speedups") and for equivalence tests.
 * Production code reaches them through CensusContext; these wrappers
 * add nothing but a name with external linkage.
 */

/**
 * One summed-area-table integration step: row[u] += row-prefix plus
 * prev[u] for u in [0, n). @p row and @p prev may not alias.
 */
void satIntegrateRow(std::uint32_t *row, const std::uint32_t *prev,
                     std::size_t n);

/** Sum table[idx[i]] for i in [0, n) (u64 wrap-around, exact). */
std::uint64_t gatherSum(const std::uint64_t *table,
                        const std::uint32_t *idx, std::size_t n);

} // namespace census_kernels

namespace census_stats {

/** CensusContext instances built (conv summed-area or matmul histogram). */
void recordTablesBuilt(std::uint64_t count);

/** O(1) rectangle/histogram queries answered. */
void recordRectQueries(std::uint64_t count);

/** Process-wide totals (relaxed atomics, profile-section reporting). */
std::uint64_t tablesBuilt();
std::uint64_t rectQueries();

/** Zero the totals (tests and multi-run binaries). */
void reset();

} // namespace census_stats

} // namespace antsim

#endif // ANTSIM_CONV_CENSUS_HH
