#include "outer_product.hh"

namespace antsim {

ProductCensus &
ProductCensus::operator+=(const ProductCensus &o)
{
    nonzeroProducts += o.nonzeroProducts;
    validProducts += o.validProducts;
    rcpProducts += o.rcpProducts;
    denseProducts += o.denseProducts;
    return *this;
}

OuterProductResult
sparseOuterProduct(const ProblemSpec &spec, const CsrMatrix &kernel,
                   const CsrMatrix &image)
{
    OuterProductResult result{Dense2d<double>(spec.outH(), spec.outW()), {}};
    auto &census = result.census;
    census.denseProducts = spec.denseCartesianProducts();

    const auto kernel_entries = kernel.entries();
    const auto image_entries = image.entries();
    census.nonzeroProducts = static_cast<std::uint64_t>(kernel.nnz()) *
        static_cast<std::uint64_t>(image.nnz());

    for (const auto &img : image_entries) {
        for (const auto &ker : kernel_entries) {
            const auto out = spec.outputIndex(img.x, img.y, ker.x, ker.y);
            if (out) {
                ++census.validProducts;
                result.output.at(out->x, out->y) +=
                    static_cast<double>(img.value) *
                    static_cast<double>(ker.value);
            } else {
                ++census.rcpProducts;
            }
        }
    }
    return result;
}

ProductCensus
countProducts(const ProblemSpec &spec, const CsrMatrix &kernel,
              const CsrMatrix &image)
{
    ProductCensus census;
    census.denseProducts = spec.denseCartesianProducts();
    census.nonzeroProducts = static_cast<std::uint64_t>(kernel.nnz()) *
        static_cast<std::uint64_t>(image.nnz());

    if (spec.kind() == ProblemSpec::Kind::Matmul) {
        // Valid products pair image column x with kernel row r == x:
        // count = sum_x nnz(image column x) * nnz(kernel row x).
        std::vector<std::uint64_t> img_col_nnz(spec.imageW(), 0);
        for (std::uint32_t c : image.columns())
            ++img_col_nnz[c];
        const auto &krp = kernel.rowPtr();
        for (std::uint32_t x = 0; x < spec.imageW(); ++x) {
            census.validProducts +=
                img_col_nnz[x] * (krp[x + 1] - krp[x]);
        }
        census.rcpProducts = census.nonzeroProducts - census.validProducts;
        return census;
    }

    // Convolution: a product (x,y,s,r) is valid iff both axes map to a
    // valid output independently, so the valid count factorizes into
    // per-axis histogram convolutions:
    //   valid = (sum over valid (y,r) pairs) * ... is NOT separable per
    // entry, but it IS separable as a sum over (dx, dy) displacement
    // classes. We count pairs by displacement per axis:
    //   axisPairs[d] = #{(img_idx, ker_idx) : img - dil*ker == d, valid d}
    // using index histograms, then valid = sum over valid dx of
    // colPairs[dx] * ... again not separable because entries couple x
    // and y. Fall back to the direct product loop, but with the kernel
    // entries bucketed per row so the inner loop only touches rows in
    // the per-entry ideal r-range.
    const auto &krp = kernel.rowPtr();
    const auto &kcols = kernel.columns();
    const auto image_entries = image.entries();
    for (const auto &img : image_entries) {
        const IndexRange rr = spec.rRangeIdeal(img.y);
        const IndexRange sr = spec.sRangeIdeal(img.x);
        if (rr.empty() || sr.empty())
            continue;
        for (std::int64_t r = rr.lo; r <= rr.hi; ++r) {
            const std::uint32_t begin = krp[static_cast<std::size_t>(r)];
            const std::uint32_t end = krp[static_cast<std::size_t>(r) + 1];
            for (std::uint32_t i = begin; i < end; ++i) {
                const std::uint32_t s = kcols[i];
                if (!sr.contains(s))
                    continue;
                if (spec.isValid(img.x, img.y, s,
                                 static_cast<std::uint32_t>(r))) {
                    ++census.validProducts;
                }
            }
        }
    }
    census.rcpProducts = census.nonzeroProducts - census.validProducts;
    return census;
}

} // namespace antsim
