/**
 * @file
 * Functional RCP anticipation: Algorithm 1 (ideal) and Algorithm 2
 * (outer-product block granularity).
 *
 * Algorithm 1 tests every (image element, kernel element) pair against
 * the per-element index conditions (Eqs. 7-8) and skips every RCP --
 * the upper bound on what any anticipator can eliminate.
 *
 * Algorithm 2 models the constraint of an n x n outer-product datapath:
 * a factor can only be skipped if the *whole* row/column of products it
 * feeds is redundant. It screens each kernel element against the
 * min/max image indices of the current n-element image group
 * (Eqs. 9-10), so some RCPs survive. This is the algorithm the ANT PE
 * realizes in hardware; the cycle model in src/ant must execute exactly
 * the product set Algorithm 2 admits (asserted by tests).
 */

#ifndef ANTSIM_CONV_ANTICIPATE_HH
#define ANTSIM_CONV_ANTICIPATE_HH

#include <cstdint>

#include "conv/outer_product.hh"
#include "conv/problem_spec.hh"
#include "tensor/csr.hh"
#include "tensor/matrix.hh"

namespace antsim {

/** Outcome of an anticipated execution. */
struct AnticipateResult
{
    Dense2d<double> output;
    /** Products actually multiplied (valid + residual RCPs). */
    std::uint64_t executedProducts = 0;
    /** Executed products that were valid. */
    std::uint64_t validProducts = 0;
    /** Executed products that were residual RCPs. */
    std::uint64_t residualRcps = 0;
    /** RCPs skipped by anticipation. */
    std::uint64_t skippedRcps = 0;

    /** Fraction of all RCPs that anticipation eliminated. */
    double
    rcpEliminationRate() const
    {
        const std::uint64_t total = residualRcps + skippedRcps;
        return total == 0
            ? 1.0
            : static_cast<double>(skippedRcps) / static_cast<double>(total);
    }
};

/**
 * Algorithm 1: ideal anticipation. Skips every RCP via the per-element
 * conditions; residualRcps is always zero.
 */
AnticipateResult idealAnticipation(const ProblemSpec &spec,
                                   const CsrMatrix &kernel,
                                   const CsrMatrix &image);

/**
 * Algorithm 2: anticipation at outer-product granularity.
 *
 * Iterates image non-zeros in CSR order @p n at a time; for each group,
 * screens every kernel element against the group's min/max x and y
 * (Eqs. 9-10) and multiplies the surviving kernel elements with all n
 * image elements.
 *
 * @param n Outer-product group width (the multiplier array dimension).
 * @param use_r_condition Apply the r/y screen (Eq. 9); Fig. 14 ablation.
 * @param use_s_condition Apply the s/x screen (Eq. 10); Fig. 14 ablation.
 */
AnticipateResult blockAnticipation(const ProblemSpec &spec,
                                   const CsrMatrix &kernel,
                                   const CsrMatrix &image, std::uint32_t n,
                                   bool use_r_condition = true,
                                   bool use_s_condition = true);

} // namespace antsim

#endif // ANTSIM_CONV_ANTICIPATE_HH
