#include "scnn_pe.hh"

#include <algorithm>

#include "conv/census.hh"
#include "conv/outer_product.hh"
#include "obs/trace.hh"
#include "sim/accumulator.hh"
#include "util/logging.hh"
#include "verify/audit_hooks.hh"

namespace antsim {

namespace {

/**
 * SRAM accesses needed to read @p elements in groups of @p n, where
 * each group is one read call (elementsPerAccess elements per word).
 */
std::uint64_t
groupedAccesses(std::uint64_t elements, std::uint32_t n, std::uint32_t per)
{
    const std::uint64_t full = elements / n;
    const std::uint64_t rem = elements % n;
    return full * ((n + per - 1) / per) + (rem + per - 1) / per;
}

/** Total non-zeros across a kernel stack. */
std::uint64_t
stackNnz(const std::vector<const CsrMatrix *> &kernels)
{
    std::uint64_t total = 0;
    for (const CsrMatrix *k : kernels)
        total += k->nnz();
    return total;
}

/**
 * Forward cursor over the merged kernel stream of a stack, yielding
 * entries in the same order as concatenating each plane's entries()
 * but without materializing the merged vector.
 */
class StackStream
{
  public:
    explicit StackStream(const std::vector<const CsrMatrix *> &kernels)
        : kernels_(kernels)
    {
        rewind();
    }

    void
    rewind()
    {
        plane_ = 0;
        pos_ = 0;
        row_ = 0;
        skipEmptyPlanes();
    }

    bool done() const { return plane_ == kernels_.size(); }

    SparseEntry
    next()
    {
        const CsrMatrix &k = *kernels_[plane_];
        while (pos_ >= k.rowPtr()[row_ + 1])
            ++row_;
        const SparseEntry e{k.values()[pos_], k.columns()[pos_], row_};
        if (++pos_ == k.nnz()) {
            ++plane_;
            pos_ = 0;
            row_ = 0;
            skipEmptyPlanes();
        }
        return e;
    }

  private:
    void
    skipEmptyPlanes()
    {
        while (plane_ < kernels_.size() && kernels_[plane_]->nnz() == 0)
            ++plane_;
    }

    const std::vector<const CsrMatrix *> &kernels_;
    std::size_t plane_ = 0;
    std::uint32_t pos_ = 0;
    std::uint32_t row_ = 0;
};

} // namespace

ScnnPe::ScnnPe(const ScnnPeConfig &config) : config_(config)
{
    ANT_ASSERT(config_.n > 0, "multiplier array dimension must be positive");
}

PeResult
ScnnPe::runPair(const ProblemSpec &spec, const CsrMatrix &kernel,
                const CsrMatrix &image, bool collect_output)
{
    return runStack(spec, {&kernel}, image, collect_output);
}

PeResult
ScnnPe::runStack(const ProblemSpec &spec,
                 const std::vector<const CsrMatrix *> &kernels,
                 const CsrMatrix &image, bool collect_output)
{
    ANT_ASSERT(!kernels.empty(), "kernel stack must not be empty");
    const PeResult result = collect_output
        ? runStackFunctional(spec, kernels, image)
        : runStackCounting(spec, kernels, image);
    verify::auditPeRunOrPanic("SCNN-like PE", spec, kernels, image, result,
                              ProductSpace::Cartesian);
    return result;
}

PeResult
ScnnPe::runStackFunctional(const ProblemSpec &spec,
                           const std::vector<const CsrMatrix *> &kernels,
                           const CsrMatrix &image)
{
    PeResult result;
    CounterSet &c = result.counters;

    SramConfig index_cfg = config_.buffer;
    index_cfg.elementBits = 8; // 8-bit indices (Table 4)
    SramBuffer image_values("image values", config_.buffer,
                            Counter::SramValueReads);
    SramBuffer image_indices("image indices", index_cfg,
                             Counter::SramIndexReads);
    SramBuffer kernel_values("kernel values", config_.buffer,
                             Counter::SramValueReads);
    SramBuffer kernel_indices("kernel indices", index_cfg,
                              Counter::SramIndexReads);
    image_values.fill(image.nnz());
    image_indices.fill(image.nnz());

    Accumulator accumulator(spec, config_.accumulatorBank);

    const std::uint32_t n = config_.n;
    const auto image_entries = image.entries();
    // The merged kernel stream is walked in place; groups may span
    // plane boundaries, so buffer one n-entry group at a time.
    StackStream kernel_stream(kernels);
    std::vector<SparseEntry> kernel_group(n);

    std::uint64_t cycles = config_.startupCycles;
    c.add(Counter::StartupCycles, config_.startupCycles);
    if (auto *rec = obs::recorder())
        rec->advance(obs::SpanKind::Startup, config_.startupCycles);

    for (std::size_t ib = 0; ib < image_entries.size(); ib += n) {
        const std::size_t ie = std::min(ib + n, image_entries.size());
        const auto igroup = static_cast<std::uint32_t>(ie - ib);

        // Image group is fetched once and held stationary.
        image_values.read(igroup, c);
        image_indices.read(igroup, c);

        // The kernel stream is re-fetched for every image group
        // (image-stationary dataflow).
        kernel_stream.rewind();
        while (!kernel_stream.done()) {
            std::uint32_t kgroup = 0;
            while (kgroup < n && !kernel_stream.done())
                kernel_group[kgroup++] = kernel_stream.next();

            kernel_values.read(kgroup, c);
            kernel_indices.read(kgroup, c);

            // One multiplier-array cycle forms the full cartesian
            // product of the two groups.
            ++cycles;
            c.add(Counter::ActiveCycles);
            c.add(Counter::MultsExecuted,
                  static_cast<std::uint64_t>(igroup) * kgroup);

            accumulator.newIssueGroup();
            for (std::size_t i = ib; i < ie; ++i) {
                const auto &img = image_entries[i];
                for (std::uint32_t k = 0; k < kgroup; ++k) {
                    const auto &ker = kernel_group[k];
                    accumulator.offer(img.value, img.x, img.y, ker.value,
                                      ker.x, ker.y, c);
                }
            }
        }
    }

    // One bulk advance; span coalescing makes this identical to a
    // per-cycle advance in the loop, matching the counting path.
    if (auto *rec = obs::recorder())
        rec->advance(obs::SpanKind::Active, cycles - config_.startupCycles);

    c.set(Counter::Cycles, cycles);
    result.output = accumulator.output();
    return result;
}

PeResult
ScnnPe::runStackCounting(const ProblemSpec &spec,
                         const std::vector<const CsrMatrix *> &kernels,
                         const CsrMatrix &image)
{
    // Closed-form counting path, equivalent to the functional loop but
    // without per-product work (asserted equivalent by tests). The
    // full cartesian product of the merged streams executes, so all
    // per-product counters follow from nnz alone; the valid/RCP split
    // comes from the per-kernel product census.
    PeResult result;
    CounterSet &c = result.counters;

    // Enforce the image-buffer capacity (the kernel stream is
    // double-buffered and not capacity-limited as a whole).
    SramBuffer image_values("image values", config_.buffer,
                            Counter::SramValueReads);
    image_values.fill(image.nnz());

    const std::uint32_t n = config_.n;
    const std::uint64_t nnz_i = image.nnz();
    const std::uint64_t nnz_k = stackNnz(kernels);
    const std::uint64_t igroups = (nnz_i + n - 1) / n;
    const std::uint64_t kgroups = (nnz_k + n - 1) / n;
    const std::uint32_t value_per = config_.buffer.elementsPerAccess();
    // 8-bit indices (Table 4) pack twice as densely as bf16 values.
    const std::uint32_t index_per = 2 * value_per;

    // Image-side census tables are built once for the whole stack;
    // counting each kernel is then O(nnz_k) (see conv/census.hh).
    const CensusContext context(spec, image);
    ProductCensus census;
    for (const CsrMatrix *k : kernels)
        census += context.countProducts(*k);

    c.add(Counter::MultsExecuted, census.nonzeroProducts);
    c.add(Counter::MultsValid, census.validProducts);
    c.add(Counter::MultsRcp, census.rcpProducts);
    c.add(Counter::OutputIndexCalcs, census.nonzeroProducts);
    c.add(Counter::AccumAdds, census.validProducts);
    c.add(Counter::SramWrites, census.validProducts);

    // Image groups fetched once each; the merged kernel stream is
    // re-fetched per image group. Values and indices are separate
    // arrays.
    c.add(Counter::SramValueReads, groupedAccesses(nnz_i, n, value_per));
    c.add(Counter::SramIndexReads, groupedAccesses(nnz_i, n, index_per));
    c.add(Counter::SramValueReads,
          igroups * groupedAccesses(nnz_k, n, value_per));
    c.add(Counter::SramIndexReads,
          igroups * groupedAccesses(nnz_k, n, index_per));

    const std::uint64_t mult_cycles = igroups * kgroups;
    c.add(Counter::StartupCycles, config_.startupCycles);
    c.add(Counter::ActiveCycles, mult_cycles);
    c.set(Counter::Cycles, config_.startupCycles + mult_cycles);
    if (auto *rec = obs::recorder()) {
        rec->advance(obs::SpanKind::Startup, config_.startupCycles);
        rec->advance(obs::SpanKind::Active, mult_cycles);
    }
    return result;
}

} // namespace antsim
