#include "scnn_pe.hh"

#include <algorithm>

#include "conv/census.hh"
#include "conv/outer_product.hh"
#include "obs/trace.hh"
#include "sim/accumulator.hh"
#include "util/arena.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "verify/audit_hooks.hh"

#if defined(__x86_64__)
#define ANTSIM_X86_SIMD 1
#include <immintrin.h>
#endif

namespace antsim {

namespace {

/**
 * SRAM accesses needed to read @p elements in groups of @p n, where
 * each group is one read call (elementsPerAccess elements per word).
 */
std::uint64_t
groupedAccesses(std::uint64_t elements, std::uint32_t n, std::uint32_t per)
{
    const std::uint64_t full = elements / n;
    const std::uint64_t rem = elements % n;
    return full * ((n + per - 1) / per) + (rem + per - 1) / per;
}

/** Total non-zeros across a kernel stack. */
std::uint64_t
stackNnz(const std::vector<const CsrMatrix *> &kernels)
{
    std::uint64_t total = 0;
    for (const CsrMatrix *k : kernels)
        total += k->nnz();
    return total;
}

/**
 * Expand a CSR row-pointer array into one row index per stored entry:
 * out[i] = row of entry i. Scalar ground truth for the AVX2 run-fill
 * kernel below.
 */
void
expandRowsScalar(const std::uint32_t *row_ptr, std::uint32_t rows,
                 std::uint32_t *out)
{
    for (std::uint32_t r = 0; r < rows; ++r) {
        for (std::uint32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i)
            out[i] = r;
    }
}

#ifdef ANTSIM_X86_SIMD

__attribute__((target("avx2"))) void
expandRowsAvx2(const std::uint32_t *row_ptr, std::uint32_t rows,
               std::uint32_t *out)
{
    for (std::uint32_t r = 0; r < rows; ++r) {
        const std::uint32_t begin = row_ptr[r];
        const std::uint32_t end = row_ptr[r + 1];
        const __m256i v = _mm256_set1_epi32(static_cast<int>(r));
        // Full-vector stores; the overshoot past `end` is overwritten
        // by the next row or lands in the stream buffer's tail slack.
        for (std::uint32_t i = begin; i < end; i += 8) {
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i), v);
        }
    }
}

#endif // ANTSIM_X86_SIMD

void
expandRows(const std::uint32_t *row_ptr, std::uint32_t rows,
           std::uint32_t *out)
{
#ifdef ANTSIM_X86_SIMD
    if (simd::avx2Enabled()) {
        expandRowsAvx2(row_ptr, rows, out);
        return;
    }
#endif
    expandRowsScalar(row_ptr, rows, out);
}

/**
 * The merged kernel stream of a stack in structure-of-arrays form:
 * entry order identical to concatenating each plane's entries(), but
 * built with two bulk copies plus one row expansion per plane instead
 * of a per-entry cursor walk -- the image-stationary dataflow re-reads
 * this stream once per image group, so it is built exactly once.
 */
struct MergedStack
{
    AlignedVec<float> value;
    AlignedVec<std::uint32_t> x;
    AlignedVec<std::uint32_t> y;

    explicit MergedStack(const std::vector<const CsrMatrix *> &kernels)
    {
        const std::uint64_t total = stackNnz(kernels);
        // +8 elements of tail slack for the row-expansion kernel's
        // full-vector stores.
        value.reserve(total + 8);
        x.reserve(total + 8);
        y.reserve(total + 8);
        for (const CsrMatrix *k : kernels) {
            value.append(k->values().data(), k->nnz());
            x.append(k->columns().data(), k->nnz());
            const std::size_t base = y.size();
            y.resize(base + k->nnz());
            expandRows(k->rowPtr().data(), k->height(), y.data() + base);
        }
    }

    std::size_t size() const { return value.size(); }
};

} // namespace

ScnnPe::ScnnPe(const ScnnPeConfig &config) : config_(config)
{
    ANT_ASSERT(config_.n > 0, "multiplier array dimension must be positive");
}

PeResult
ScnnPe::runPair(const ProblemSpec &spec, const CsrMatrix &kernel,
                const CsrMatrix &image, bool collect_output)
{
    return runStack(spec, {&kernel}, image, collect_output);
}

PeResult
ScnnPe::runStack(const ProblemSpec &spec,
                 const std::vector<const CsrMatrix *> &kernels,
                 const CsrMatrix &image, bool collect_output)
{
    ANT_ASSERT(!kernels.empty(), "kernel stack must not be empty");
    const PeResult result = collect_output
        ? runStackFunctional(spec, kernels, image)
        : runStackCounting(spec, kernels, image);
    verify::auditPeRunOrPanic("SCNN-like PE", spec, kernels, image, result,
                              ProductSpace::Cartesian);
    return result;
}

PeResult
ScnnPe::runStackFunctional(const ProblemSpec &spec,
                           const std::vector<const CsrMatrix *> &kernels,
                           const CsrMatrix &image)
{
    PeResult result;
    CounterSet &c = result.counters;

    SramConfig index_cfg = config_.buffer;
    index_cfg.elementBits = 8; // 8-bit indices (Table 4)
    SramBuffer image_values("image values", config_.buffer,
                            Counter::SramValueReads);
    SramBuffer image_indices("image indices", index_cfg,
                             Counter::SramIndexReads);
    SramBuffer kernel_values("kernel values", config_.buffer,
                             Counter::SramValueReads);
    SramBuffer kernel_indices("kernel indices", index_cfg,
                              Counter::SramIndexReads);
    image_values.fill(image.nnz());
    image_indices.fill(image.nnz());

    Accumulator accumulator(spec, config_.accumulatorBank);

    const std::uint32_t n = config_.n;
    const auto image_entries = image.entries();
    // The merged kernel stream is materialized once in SoA form;
    // groups may span plane boundaries, which flat iteration handles
    // for free.
    const MergedStack kernel_stream(kernels);

    std::uint64_t cycles = config_.startupCycles;
    c.add(Counter::StartupCycles, config_.startupCycles);
    if (auto *rec = obs::recorder())
        rec->advance(obs::SpanKind::Startup, config_.startupCycles);

    for (std::size_t ib = 0; ib < image_entries.size(); ib += n) {
        const std::size_t ie = std::min(ib + n, image_entries.size());
        const auto igroup = static_cast<std::uint32_t>(ie - ib);

        // Image group is fetched once and held stationary.
        image_values.read(igroup, c);
        image_indices.read(igroup, c);

        // The kernel stream is re-fetched for every image group
        // (image-stationary dataflow).
        for (std::size_t kb = 0; kb < kernel_stream.size(); kb += n) {
            const std::size_t ke = std::min<std::size_t>(
                kb + n, kernel_stream.size());
            const auto kgroup = static_cast<std::uint32_t>(ke - kb);

            kernel_values.read(kgroup, c);
            kernel_indices.read(kgroup, c);

            // One multiplier-array cycle forms the full cartesian
            // product of the two groups.
            ++cycles;
            c.add(Counter::ActiveCycles);
            c.add(Counter::MultsExecuted,
                  static_cast<std::uint64_t>(igroup) * kgroup);

            accumulator.newIssueGroup();
            for (std::size_t i = ib; i < ie; ++i) {
                const auto &img = image_entries[i];
                for (std::size_t k = kb; k < ke; ++k) {
                    accumulator.offer(img.value, img.x, img.y,
                                      kernel_stream.value[k],
                                      kernel_stream.x[k],
                                      kernel_stream.y[k], c);
                }
            }
        }
    }

    // One bulk advance; span coalescing makes this identical to a
    // per-cycle advance in the loop, matching the counting path.
    if (auto *rec = obs::recorder())
        rec->advance(obs::SpanKind::Active, cycles - config_.startupCycles);

    c.set(Counter::Cycles, cycles);
    result.output = accumulator.output();
    return result;
}

PeResult
ScnnPe::runStackCounting(const ProblemSpec &spec,
                         const std::vector<const CsrMatrix *> &kernels,
                         const CsrMatrix &image)
{
    // Closed-form counting path, equivalent to the functional loop but
    // without per-product work (asserted equivalent by tests). The
    // full cartesian product of the merged streams executes, so all
    // per-product counters follow from nnz alone; the valid/RCP split
    // comes from the per-kernel product census.
    PeResult result;
    CounterSet &c = result.counters;

    // Enforce the image-buffer capacity (the kernel stream is
    // double-buffered and not capacity-limited as a whole).
    SramBuffer image_values("image values", config_.buffer,
                            Counter::SramValueReads);
    image_values.fill(image.nnz());

    const std::uint32_t n = config_.n;
    const std::uint64_t nnz_i = image.nnz();
    const std::uint64_t nnz_k = stackNnz(kernels);
    const std::uint64_t igroups = (nnz_i + n - 1) / n;
    const std::uint64_t kgroups = (nnz_k + n - 1) / n;
    const std::uint32_t value_per = config_.buffer.elementsPerAccess();
    // 8-bit indices (Table 4) pack twice as densely as bf16 values.
    const std::uint32_t index_per = 2 * value_per;

    // Image-side census tables are built once for the whole stack;
    // counting each kernel is then O(nnz_k) (see conv/census.hh).
    const CensusContext context(spec, image);
    ProductCensus census;
    for (const CsrMatrix *k : kernels)
        census += context.countProducts(*k);

    c.add(Counter::MultsExecuted, census.nonzeroProducts);
    c.add(Counter::MultsValid, census.validProducts);
    c.add(Counter::MultsRcp, census.rcpProducts);
    c.add(Counter::OutputIndexCalcs, census.nonzeroProducts);
    c.add(Counter::AccumAdds, census.validProducts);
    c.add(Counter::SramWrites, census.validProducts);

    // Image groups fetched once each; the merged kernel stream is
    // re-fetched per image group. Values and indices are separate
    // arrays.
    c.add(Counter::SramValueReads, groupedAccesses(nnz_i, n, value_per));
    c.add(Counter::SramIndexReads, groupedAccesses(nnz_i, n, index_per));
    c.add(Counter::SramValueReads,
          igroups * groupedAccesses(nnz_k, n, value_per));
    c.add(Counter::SramIndexReads,
          igroups * groupedAccesses(nnz_k, n, index_per));

    const std::uint64_t mult_cycles = igroups * kgroups;
    c.add(Counter::StartupCycles, config_.startupCycles);
    c.add(Counter::ActiveCycles, mult_cycles);
    c.set(Counter::Cycles, config_.startupCycles + mult_cycles);
    if (auto *rec = obs::recorder()) {
        rec->advance(obs::SpanKind::Startup, config_.startupCycles);
        rec->advance(obs::SpanKind::Active, mult_cycles);
    }
    return result;
}

} // namespace antsim
