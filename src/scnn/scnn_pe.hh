/**
 * @file
 * SCNN-like processing-element cycle model (the paper's baseline).
 *
 * The PE (Fig. 3) holds n image non-zeros stationary and streams
 * kernel non-zeros n per cycle through an n x n multiplier array,
 * forming the full cartesian product of the two compressed operand
 * streams. Every product's output index is computed; valid products
 * are accumulated, the rest are Redundant Cartesian Products that
 * waste the multiply, the index computation, and the SRAM traffic that
 * fed them. No anticipation happens here -- this is exactly the
 * inefficiency ANT removes.
 *
 * Dataflow: input (image) stationary (Sec. 2.3). A *kernel stack* --
 * the kernel planes of all output channels -- streams through the PE
 * back to back as one merged non-zero stream (operand groups may span
 * kernel-plane boundaries, as SCNN's weight vectors spanning output
 * channels do), paying the 5-cycle pipeline start-up once per image
 * load (Sec. 6.1).
 *
 * Cycle accounting: startup + ceil(nnzI / n) * ceil(sum nnzK / n).
 */

#ifndef ANTSIM_SCNN_SCNN_PE_HH
#define ANTSIM_SCNN_SCNN_PE_HH

#include "sim/pe_model.hh"
#include "sim/sram.hh"

namespace antsim {

/** Static parameters of the SCNN-like PE. */
struct ScnnPeConfig
{
    /** Multiplier array dimension (n x n multipliers, Table 4). */
    std::uint32_t n = 4;
    /** Pipeline start-up cost per new image load (Sec. 6.1). */
    std::uint32_t startupCycles = 5;
    /** Value/index buffer geometry (8 KB, 16-bit elements). */
    SramConfig buffer = SramConfig{};
    /** Accumulator bank geometry (64 KB, 16-bit partial sums). */
    SramConfig accumulatorBank = SramConfig::accumulatorBank();
};

/** SCNN-like PE: full cartesian product, no RCP anticipation. */
class ScnnPe : public PeModel
{
  public:
    explicit ScnnPe(const ScnnPeConfig &config = ScnnPeConfig{});

    std::string name() const override { return "SCNN-like"; }

    std::uint32_t
    multiplierCount() const override
    {
        return config_.n * config_.n;
    }

    std::unique_ptr<PeModel>
    clone() const override
    {
        return std::make_unique<ScnnPe>(config_);
    }

    const ScnnPeConfig &config() const { return config_; }

    PeResult runPair(const ProblemSpec &spec, const CsrMatrix &kernel,
                     const CsrMatrix &image, bool collect_output) override;

    PeResult runStack(const ProblemSpec &spec,
                      const std::vector<const CsrMatrix *> &kernels,
                      const CsrMatrix &image, bool collect_output) override;

  private:
    /** Functional path: executes every product, accumulates outputs. */
    PeResult runStackFunctional(const ProblemSpec &spec,
                                const std::vector<const CsrMatrix *>
                                    &kernels,
                                const CsrMatrix &image);

    /**
     * Counting-only fast path (no functional output): closed-form
     * cycles/SRAM plus a product census for the valid/RCP split.
     * Tests assert it matches the functional path counter-for-counter.
     */
    PeResult runStackCounting(const ProblemSpec &spec,
                              const std::vector<const CsrMatrix *>
                                  &kernels,
                              const CsrMatrix &image);

    ScnnPeConfig config_;
};

} // namespace antsim

#endif // ANTSIM_SCNN_SCNN_PE_HH
