/**
 * @file
 * Structured run reporting: machine-readable JSON/CSV export of
 * everything a bench binary measures.
 *
 * Every paper claim the simulator reproduces used to exist only as a
 * pretty-printed terminal table; this subsystem gives each run a
 * structured document that CI, the BENCH_* perf trajectory, and
 * regression tooling can consume (see docs/report_schema.json for the
 * schema and scripts/bench_all.sh for the merger that builds the
 * repo-level BENCH_antsim.json).
 *
 * A RunReport collects four kinds of content:
 *  - metadata: binary name, seed, thread/PE/sample configuration,
 *    audit state, and the per-op energy table version;
 *  - metrics: named scalars (geomean speedup, RCP-avoided mean, ...);
 *  - networks: full NetworkStats serializations, counter-exact;
 *  - tables: the same rows the binary printed, verbatim.
 *
 * Everything above is deterministic: for a fixed configuration the
 * serialized document is byte-identical at every thread count (the
 * deterministic parallel engine, DESIGN.md). Wall-clock stage timings
 * from the profiler (profiler.hh) are the one exception, so they are
 * confined to a "profile" section that toJson can exclude -- the
 * golden-JSON regression tests serialize without it.
 */

#ifndef ANTSIM_REPORT_REPORT_HH
#define ANTSIM_REPORT_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hh"
#include "obs/metrics.hh"
#include "report/json.hh"
#include "util/table.hh"
#include "workload/runner.hh"

namespace antsim {

/** Run configuration recorded in every report. */
struct RunMetadata
{
    /** Bench binary name (argv[0] basename). */
    std::string binary;
    std::uint64_t seed = 42;
    /** Requested worker threads (0 = hardware concurrency). */
    std::uint32_t threads = 0;
    /**
     * Worker threads the run actually used (requested resolved and
     * clamped to the hardware, runner.hh effectiveWorkerCount). Keeps
     * a --threads 64 run on an 8-way machine distinguishable from
     * --threads 8 in the archived report.
     */
    std::uint32_t threadsEffective = 0;
    std::uint32_t pes = 64;
    std::uint32_t samples = 16;
    std::uint32_t chunk = 4096;
    /** Whether the invariant audits ran. */
    bool audit = false;
    /** Version tag of the per-op energy table (kEnergyTableVersion). */
    std::string energyTableVersion;
    /**
     * How the numbers were produced: "simulated" (cycle-level engine)
     * or "estimated" (analytical fast path, src/estimate). Downstream
     * tooling keys on this -- merge_reports.py refuses to fold
     * estimated rows into the headline geomeans.
     */
    std::string mode = "simulated";
};

/** Serialize a counter set: every counter by name, exact uint64. */
Json counterSetToJson(const CounterSet &counters);

/** Parse a counter set serialized by counterSetToJson. */
CounterSet counterSetFromJson(const Json &json);

/**
 * Serialize a network run: totals, derived fractions, accelerator
 * cycles at @p num_pes, and the full per-layer/per-phase breakdown.
 */
Json networkStatsToJson(const NetworkStats &stats, std::uint32_t num_pes);

/** Parse the output of networkStatsToJson back into NetworkStats. */
NetworkStats networkStatsFromJson(const Json &json);

/** Snapshot of the stage profiler as the report's profile section. */
Json profileToJson();

/**
 * Decomposition of Counter::Cycles into stall components. Built by
 * stallBreakdown as a *saturating* decomposition, so the components
 * sum to `cycles` exactly by construction (enforced per layer by
 * validate_report.py and stall_attribution_test).
 */
struct StallBreakdown
{
    std::uint64_t cycles = 0;
    /** Cycles the multiplier array issued at least one product. */
    std::uint64_t active = 0;
    /** Pipeline start-up cycles on new matrix pairs. */
    std::uint64_t startup = 0;
    /** Scan/controller cycles with the multipliers idle. */
    std::uint64_t idleScan = 0;
    /** Residual cycles none of the above explains; see stallBreakdown. */
    std::uint64_t imbalance = 0;
};

/**
 * Decompose @p counters.get(Cycles) into StallBreakdown components.
 *
 * Every PE model maintains Cycles == Startup + Active + IdleScan
 * exactly (the invariant auditor's cycle partition law), but rational
 * sample scaling (CounterSet::scale) rounds each counter
 * independently, leaving a residual of a few counts per scaled set.
 * The decomposition therefore saturates: active, then startup, then
 * idle-scan are capped to the cycles not yet attributed, and whatever
 * remains lands in `imbalance` -- the catch-all for cycles the PE-sum
 * view cannot attribute (scaling residue here; the real per-PE load
 * skew is visible in the trace lanes, see docs/OBSERVABILITY.md).
 */
StallBreakdown stallBreakdown(const CounterSet &counters);

/** Serialize a histogram registry (bins, count, sum, min, max). */
Json histogramsToJson(const obs::HistogramRegistry &hists);

/**
 * Serialize a host-metrics snapshot (obs/metrics.hh) as the report's
 * host_metrics section: counters, gauges with peaks, per-stage wall
 * nanoseconds, per-worker pool accounting, trace-cache shard
 * occupancy, and log2 histograms. Everything here is host-side
 * wall-clock accounting -- like the profile section it is never
 * byte-stable across runs, which is why RunReport only embeds it when
 * metrics collection was explicitly enabled.
 */
Json hostMetricsToJson(const obs::metrics::Snapshot &snap);

/** One run's structured report. */
class RunReport
{
  public:
    void setMetadata(RunMetadata metadata);
    const RunMetadata &metadata() const { return metadata_; }

    /** Record a named scalar result (insertion-ordered). */
    void addMetric(const std::string &name, double value);
    void addMetric(const std::string &name, std::uint64_t value);

    /** Record a full network run under @p name. */
    void addNetwork(const std::string &name, const NetworkStats &stats,
                    std::uint32_t num_pes);

    /**
     * Record the per-layer stall-attribution table of one network run
     * on one PE model: active / startup / idle-scan / imbalance
     * decomposition of every layer's cycles plus multiplier
     * utilization. Appears in the JSON `stall_attribution` section and
     * the CSV stream.
     */
    void addStallAttribution(const std::string &network_name,
                             const NetworkStats &stats,
                             const std::string &pe_model,
                             std::uint32_t multipliers);

    /**
     * Attach the merged simulated-time histograms (tracing runs only;
     * the section is omitted when never set, keeping reports identical
     * whether tracing is off or simply unused).
     */
    void setHistograms(const obs::HistogramRegistry &hists);

    /**
     * Attach the estimator detail section (estimation runs only --
     * grid sizes, Pareto frontier, wall-clock advantage, accuracy
     * spot-checks; see bench/sweep_dse.cc). Omitted when never set,
     * so simulation reports are unchanged.
     */
    void setEstimate(Json estimate);

    /**
     * Attach the host-metrics snapshot (metered runs only -- benches
     * call this from finish() when --metrics-out enabled collection).
     * Omitted when never set, so metrics-off reports are byte-identical
     * to reports from builds that never heard of metrics.
     */
    void setHostMetrics(const obs::metrics::Snapshot &snap);

    /** Record a printed table under @p name. */
    void addTable(const std::string &name, const Table &table);

    /**
     * Full document. @p include_profile controls the non-deterministic
     * wall-clock section; everything else is byte-stable across thread
     * counts for a fixed configuration.
     */
    Json toJson(bool include_profile = true) const;

    /** All recorded tables as one CSV stream ("# name" separators). */
    std::string toCsv() const;

    /** Write toJson(...).dump() to @p path (fatal on I/O failure). */
    void writeJson(const std::string &path, bool include_profile = true) const;

    /** Write toCsv() to @p path (fatal on I/O failure). */
    void writeCsv(const std::string &path) const;

  private:
    RunMetadata metadata_;
    Json metrics_ = Json::object();
    struct NamedStats
    {
        std::string name;
        Json stats;
    };
    std::vector<NamedStats> networks_;
    struct NamedTable
    {
        std::string name;
        Table table;
    };
    std::vector<NamedTable> tables_;
    struct StallEntry
    {
        std::string name;
        Json json;
    };
    std::vector<StallEntry> stalls_;
    Json histograms_ = Json::object();
    bool hasHistograms_ = false;
    Json estimate_ = Json::object();
    bool hasEstimate_ = false;
    Json hostMetrics_ = Json::object();
    bool hasHostMetrics_ = false;
};

} // namespace antsim

#endif // ANTSIM_REPORT_REPORT_HH
