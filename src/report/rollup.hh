/**
 * @file
 * Baseline-vs-contender rollups: the speedup / energy-reduction /
 * RCP-avoidance arithmetic every comparison bench needs, in one place.
 *
 * fig09, fig10, and fig11 all print the same three derived columns and
 * the same geomean footer; before this header each binary carried its
 * own copy of the ratio and aggregation code, and scripts/ grew a
 * fourth in merge_reports.py. A Rollup owns the comparison rows,
 * computes the aggregates, and records everything in the RunReport
 * under the *standard* metric names (speedup.LABEL,
 * energy_reduction.LABEL, rcp_avoided.LABEL, speedup_geomean,
 * energy_reduction_geomean, rcp_avoided_mean) that merge_reports.py
 * lifts into the suite summary and check_perf.py gates -- so a bench
 * that uses Rollup is automatically consumable by the whole perf
 * trajectory without bespoke lifting code.
 */

#ifndef ANTSIM_REPORT_ROLLUP_HH
#define ANTSIM_REPORT_ROLLUP_HH

#include <string>
#include <vector>

#include "report/report.hh"
#include "sim/energy.hh"
#include "workload/runner.hh"

namespace antsim {

/** One baseline-vs-contender measurement. */
struct NetworkComparison
{
    /** Row label: network name or operating-point description. */
    std::string label;
    /** Contender speedup over the baseline (summed PE cycles). */
    double speedup = 0.0;
    /** How many times less energy the contender uses. */
    double energyReduction = 0.0;
    /** Contender's fraction of RCPs avoided. */
    double rcpAvoidedFraction = 0.0;
};

/**
 * Compare @p contender against @p baseline: speedup, energy reduction
 * under @p energy, and the contender's RCP-avoidance fraction.
 */
NetworkComparison compareNetworks(const std::string &label,
                                  const NetworkStats &baseline,
                                  const NetworkStats &contender,
                                  const EnergyModel &energy);

/** Accumulates comparison rows and derives the suite aggregates. */
class Rollup
{
  public:
    void add(NetworkComparison row);

    const std::vector<NetworkComparison> &rows() const { return rows_; }
    bool empty() const { return rows_.empty(); }

    /** Geometric-mean speedup over all rows (fatal when empty). */
    double speedupGeomean() const;

    /** Geometric-mean energy reduction over all rows (fatal when empty). */
    double energyReductionGeomean() const;

    /** Arithmetic-mean RCP-avoided fraction over all rows. */
    double rcpAvoidedMean() const;

    /**
     * Record every row and the aggregates in @p report under the
     * standard metric names. @p with_rcp controls whether the
     * rcp_avoided.* / rcp_avoided_mean metrics are emitted (benches
     * whose baseline-relative table has no RCP column skip them).
     */
    void recordMetrics(RunReport &report, bool with_rcp = false) const;

  private:
    std::vector<NetworkComparison> rows_;
};

} // namespace antsim

#endif // ANTSIM_REPORT_ROLLUP_HH
