#include "report/rollup.hh"

#include "util/stats.hh"

namespace antsim {

NetworkComparison
compareNetworks(const std::string &label, const NetworkStats &baseline,
                const NetworkStats &contender, const EnergyModel &energy)
{
    NetworkComparison row;
    row.label = label;
    row.speedup = speedupOf(baseline, contender);
    row.energyReduction = energyRatioOf(baseline, contender, energy);
    row.rcpAvoidedFraction = contender.rcpAvoidedFraction();
    return row;
}

void
Rollup::add(NetworkComparison row)
{
    rows_.push_back(std::move(row));
}

namespace {

std::vector<double>
column(const std::vector<NetworkComparison> &rows,
       double NetworkComparison::*member)
{
    std::vector<double> values;
    values.reserve(rows.size());
    for (const NetworkComparison &row : rows)
        values.push_back(row.*member);
    return values;
}

} // namespace

double
Rollup::speedupGeomean() const
{
    return geomean(column(rows_, &NetworkComparison::speedup));
}

double
Rollup::energyReductionGeomean() const
{
    return geomean(column(rows_, &NetworkComparison::energyReduction));
}

double
Rollup::rcpAvoidedMean() const
{
    return mean(column(rows_, &NetworkComparison::rcpAvoidedFraction));
}

void
Rollup::recordMetrics(RunReport &report, bool with_rcp) const
{
    for (const NetworkComparison &row : rows_) {
        report.addMetric("speedup." + row.label, row.speedup);
        report.addMetric("energy_reduction." + row.label,
                         row.energyReduction);
        if (with_rcp)
            report.addMetric("rcp_avoided." + row.label,
                             row.rcpAvoidedFraction);
    }
    report.addMetric("speedup_geomean", speedupGeomean());
    report.addMetric("energy_reduction_geomean", energyReductionGeomean());
    if (with_rcp)
        report.addMetric("rcp_avoided_mean", rcpAvoidedMean());
}

} // namespace antsim
