/**
 * @file
 * Wall-clock stage profiler for simulation runs.
 *
 * Every run decomposes into four coarse stages -- trace generation,
 * plan construction, PE simulation, and reduction -- and the report
 * subsystem publishes how long each took so regressions in one stage
 * are visible without a profiler attached. Instrumentation sites wrap
 * the stage body in a ScopedTimer; the registry aggregates elapsed
 * nanoseconds and call counts in process-wide relaxed atomics, so
 * thread_pool workers record concurrently without synchronization on
 * the hot path (two fetch_adds per region, far below the cost of the
 * simulated work inside it).
 *
 * Stage times are wall-clock sums across workers: with N threads the
 * per-stage totals can exceed the run's elapsed time. They are the
 * only non-deterministic quantity a report carries, which is why they
 * live in their own "profile" section that the golden-JSON tests
 * exclude (see report.hh).
 */

#ifndef ANTSIM_REPORT_PROFILER_HH
#define ANTSIM_REPORT_PROFILER_HH

#include <chrono>
#include <cstdint>

#include "obs/host_trace.hh"

namespace antsim {

/** Coarse stages of one simulated run. */
enum class Stage : unsigned {
    /** Sparse-trace generation (makeConvPhaseTask / makeMatmulPair). */
    TraceGen = 0,
    /** Plan construction: chunking and pipeline group pre-resolution. */
    PlanBuild,
    /** PE model execution over generated operands. */
    PeSim,
    /** Ordered reduction of per-unit counters into NetworkStats. */
    Reduce,
    NumStages
};

/** Number of profiled stages. */
constexpr std::size_t kNumStages = static_cast<std::size_t>(Stage::NumStages);

/** Stable snake_case name of a stage (report schema key). */
const char *stageName(Stage stage);

namespace profiler {

/** Add one timed region to a stage's totals (thread-safe). */
void record(Stage stage, std::uint64_t nanos);

/** Nanoseconds accumulated by @p stage across all threads. */
std::uint64_t totalNanos(Stage stage);

/** Timed regions recorded for @p stage. */
std::uint64_t callCount(Stage stage);

/** Zero every stage (tests and multi-run binaries). */
void reset();

} // namespace profiler

/** Times one stage region; records on destruction. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Stage stage)
        : stage_(stage), start_(std::chrono::steady_clock::now())
    {}

    ~ScopedTimer()
    {
        const auto end = std::chrono::steady_clock::now();
        const auto nanos = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                 start_)
                .count());
        profiler::record(stage_, nanos);
        // Mirror the region into the host trace when one is being
        // collected (steady_clock epoch == obs::host::nowNs epoch).
        if (obs::host::buf() != nullptr) {
            const auto end_ns = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    end.time_since_epoch())
                    .count());
            obs::host::emitSpan("stage", stageName(stage_),
                                end_ns - nanos, end_ns);
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Stage stage_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace antsim

#endif // ANTSIM_REPORT_PROFILER_HH
