#include "json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/logging.hh"

namespace antsim {

namespace {

/** Shortest round-trip decimal form of a double (finite values only). */
std::string
formatDouble(double v)
{
    ANT_ASSERT(std::isfinite(v), "JSON cannot represent non-finite ", v);
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    ANT_ASSERT(res.ec == std::errc(), "double formatting failed");
    return std::string(buf, res.ptr);
}

void
appendQuoted(std::string &out, const std::string &s)
{
    out += '"';
    for (const char ch : s) {
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
}

/** Recursive-descent parser over a raw byte range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {}

    Json
    run()
    {
        Json value = parseValue();
        skipWs();
        if (!failed_ && pos_ != text_.size())
            fail("trailing characters after document");
        return failed_ ? Json() : value;
    }

    bool failed() const { return failed_; }

  private:
    void
    fail(const std::string &why)
    {
        if (failed_)
            return;
        failed_ = true;
        if (error_ != nullptr)
            *error_ = why + " at byte " + std::to_string(pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char ch)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ch) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of document");
            return Json();
        }
        const char ch = text_[pos_];
        if (ch == '{')
            return parseObject();
        if (ch == '[')
            return parseArray();
        if (ch == '"')
            return Json(parseString());
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json();
        if (ch == '-' || (ch >= '0' && ch <= '9'))
            return parseNumber();
        fail(std::string("unexpected character '") + ch + "'");
        return Json();
    }

    std::string
    parseString()
    {
        std::string out;
        if (!consume('"')) {
            fail("expected string");
            return out;
        }
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char ch = text_[pos_++];
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                unsigned code = 0;
                const auto res = std::from_chars(
                    text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
                if (res.ec != std::errc() ||
                    res.ptr != text_.data() + pos_ + 4) {
                    fail("bad \\u escape");
                    return out;
                }
                pos_ += 4;
                // The reports only emit control-range escapes; decode
                // BMP code points as UTF-8 for generality.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: fail("unknown escape"); return out;
            }
        }
        if (!consume('"'))
            fail("unterminated string");
        return out;
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        bool is_integral = true;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()) {
            const char ch = text_[pos_];
            if (ch >= '0' && ch <= '9') {
                ++pos_;
            } else if (ch == '.' || ch == 'e' || ch == 'E' || ch == '+' ||
                       ch == '-') {
                is_integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string token = text_.substr(start, pos_ - start);
        if (is_integral) {
            // Exact integer: negatives to Int, the rest to Uint so a
            // full-range counter survives.
            if (token[0] == '-') {
                std::int64_t v = 0;
                const auto res = std::from_chars(
                    token.data(), token.data() + token.size(), v);
                if (res.ec == std::errc() &&
                    res.ptr == token.data() + token.size())
                    return Json(v);
            } else {
                std::uint64_t v = 0;
                const auto res = std::from_chars(
                    token.data(), token.data() + token.size(), v);
                if (res.ec == std::errc() &&
                    res.ptr == token.data() + token.size())
                    return Json(v);
            }
        }
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            fail("malformed number '" + token + "'");
            return Json();
        }
        return Json(v);
    }

    Json
    parseArray()
    {
        Json arr = Json::array();
        consume('[');
        skipWs();
        if (consume(']'))
            return arr;
        while (!failed_) {
            arr.push(parseValue());
            if (consume(']'))
                return arr;
            if (!consume(',')) {
                fail("expected ',' or ']' in array");
                return arr;
            }
        }
        return arr;
    }

    Json
    parseObject()
    {
        Json obj = Json::object();
        consume('{');
        skipWs();
        if (consume('}'))
            return obj;
        while (!failed_) {
            skipWs();
            const std::string key = parseString();
            if (failed_)
                return obj;
            if (!consume(':')) {
                fail("expected ':' after object key");
                return obj;
            }
            obj.set(key, parseValue());
            if (consume('}'))
                return obj;
            if (!consume(',')) {
                fail("expected ',' or '}' in object");
                return obj;
            }
        }
        return obj;
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::isNumber() const
{
    return type_ == Type::Int || type_ == Type::Uint ||
        type_ == Type::Double;
}

bool
Json::asBool() const
{
    ANT_ASSERT(type_ == Type::Bool, "JSON value is not a bool");
    return bool_;
}

std::int64_t
Json::asInt() const
{
    if (type_ == Type::Uint) {
        ANT_ASSERT(uint_ <= static_cast<std::uint64_t>(
                                std::numeric_limits<std::int64_t>::max()),
                   "JSON integer ", uint_, " exceeds int64");
        return static_cast<std::int64_t>(uint_);
    }
    ANT_ASSERT(type_ == Type::Int, "JSON value is not an integer");
    return int_;
}

std::uint64_t
Json::asUint() const
{
    if (type_ == Type::Int) {
        ANT_ASSERT(int_ >= 0, "JSON integer ", int_, " is negative");
        return static_cast<std::uint64_t>(int_);
    }
    ANT_ASSERT(type_ == Type::Uint, "JSON value is not an integer");
    return uint_;
}

double
Json::asDouble() const
{
    switch (type_) {
    case Type::Int: return static_cast<double>(int_);
    case Type::Uint: return static_cast<double>(uint_);
    case Type::Double: return double_;
    default: ANT_PANIC("JSON value is not numeric");
    }
}

const std::string &
Json::asString() const
{
    ANT_ASSERT(type_ == Type::String, "JSON value is not a string");
    return string_;
}

Json &
Json::push(Json value)
{
    ANT_ASSERT(type_ == Type::Array, "push on a non-array JSON value");
    array_.push_back(std::move(value));
    return array_.back();
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    ANT_PANIC("size() on a scalar JSON value");
}

const Json &
Json::at(std::size_t index) const
{
    ANT_ASSERT(type_ == Type::Array, "indexing a non-array JSON value");
    ANT_ASSERT(index < array_.size(), "JSON array index ", index,
               " out of range ", array_.size());
    return array_[index];
}

Json &
Json::set(const std::string &key, Json value)
{
    ANT_ASSERT(type_ == Type::Object, "set on a non-object JSON value");
    for (auto &member : object_) {
        if (member.first == key) {
            member.second = std::move(value);
            return member.second;
        }
    }
    object_.emplace_back(key, std::move(value));
    return object_.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    ANT_ASSERT(type_ == Type::Object, "find on a non-object JSON value");
    for (const auto &member : object_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *value = find(key);
    ANT_ASSERT(value != nullptr, "JSON object has no member '", key, "'");
    return *value;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    ANT_ASSERT(type_ == Type::Object, "members on a non-object JSON value");
    return object_;
}

void
Json::dumpTo(std::string &out, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string inner_pad(static_cast<std::size_t>(indent + 1) * 2,
                                ' ');
    switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Int: out += std::to_string(int_); break;
    case Type::Uint: out += std::to_string(uint_); break;
    case Type::Double: out += formatDouble(double_); break;
    case Type::String: appendQuoted(out, string_); break;
    case Type::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < array_.size(); ++i) {
            out += inner_pad;
            array_[i].dumpTo(out, indent + 1);
            if (i + 1 < array_.size())
                out += ',';
            out += '\n';
        }
        out += pad;
        out += ']';
        break;
    case Type::Object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < object_.size(); ++i) {
            out += inner_pad;
            appendQuoted(out, object_[i].first);
            out += ": ";
            object_[i].second.dumpTo(out, indent + 1);
            if (i + 1 < object_.size())
                out += ',';
            out += '\n';
        }
        out += pad;
        out += '}';
        break;
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out, 0);
    return out;
}

Json
Json::parse(const std::string &text, std::string *error)
{
    if (error != nullptr)
        error->clear();
    Parser parser(text, error);
    return parser.run();
}

bool
Json::operator==(const Json &other) const
{
    if (isNumber() && other.isNumber()) {
        // Exact integers compare exactly; anything involving a double
        // compares by value (shortest-round-trip printing guarantees
        // the parsed double is bit-identical to the source).
        const bool lhs_integral = type_ != Type::Double;
        const bool rhs_integral = other.type_ != Type::Double;
        if (lhs_integral && rhs_integral) {
            const bool lhs_neg = type_ == Type::Int && int_ < 0;
            const bool rhs_neg = other.type_ == Type::Int && other.int_ < 0;
            if (lhs_neg != rhs_neg)
                return false;
            if (lhs_neg)
                return asInt() == other.asInt();
            return asUint() == other.asUint();
        }
        return asDouble() == other.asDouble();
    }
    if (type_ != other.type_)
        return false;
    switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::String: return string_ == other.string_;
    case Type::Array: return array_ == other.array_;
    case Type::Object: return object_ == other.object_;
    default: return false; // numbers handled above
    }
}

} // namespace antsim
