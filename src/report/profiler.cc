#include "profiler.hh"

#include <array>
#include <atomic>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace antsim {

// The metrics registry duplicates the stage name table (ant_obs cannot
// include report headers); keep the counts in lock step so its
// index-addressed stage cells line up with the Stage enum.
static_assert(kNumStages == obs::metrics::kNumStages,
              "obs/metrics.hh kNumStages is out of sync with Stage");

namespace {

struct StageTotals
{
    std::atomic<std::uint64_t> nanos{0};
    std::atomic<std::uint64_t> calls{0};
};

std::array<StageTotals, kNumStages> g_totals;

std::size_t
stageIndex(Stage stage)
{
    const auto index = static_cast<std::size_t>(stage);
    ANT_ASSERT(index < kNumStages, "unknown stage id ", index);
    return index;
}

} // namespace

const char *
stageName(Stage stage)
{
    static constexpr std::array<const char *, kNumStages> kNames = {
        "trace_generation", // TraceGen
        "plan_construction", // PlanBuild
        "pe_simulation", // PeSim
        "reduction", // Reduce
    };
    return kNames[stageIndex(stage)];
}

namespace profiler {

void
record(Stage stage, std::uint64_t nanos)
{
    const std::size_t index = stageIndex(stage);
    StageTotals &totals = g_totals[index];
    totals.nanos.fetch_add(nanos, std::memory_order_relaxed);
    totals.calls.fetch_add(1, std::memory_order_relaxed);
    obs::metrics::stageAdd(index, nanos);
}

std::uint64_t
totalNanos(Stage stage)
{
    return g_totals[stageIndex(stage)].nanos.load(std::memory_order_relaxed);
}

std::uint64_t
callCount(Stage stage)
{
    return g_totals[stageIndex(stage)].calls.load(std::memory_order_relaxed);
}

void
reset()
{
    for (StageTotals &totals : g_totals) {
        totals.nanos.store(0, std::memory_order_relaxed);
        totals.calls.store(0, std::memory_order_relaxed);
    }
}

} // namespace profiler
} // namespace antsim
