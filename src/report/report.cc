#include "report.hh"

#include <cstdio>

#include "conv/census.hh"
#include "report/profiler.hh"
#include "util/logging.hh"
#include "workload/trace_cache.hh"

namespace antsim {

namespace {

/** Phase keys in TrainingPhase order (layer.hh). */
constexpr const char *kPhaseNames[3] = {"forward", "backward", "update"};

constexpr std::uint64_t kSchemaVersion = 1;

Json
phaseStatsToJson(const PhaseStats &phase, const char *phase_name)
{
    Json json = Json::object();
    json.set("phase", phase_name);
    json.set("pairs_total", phase.pairsTotal);
    json.set("pairs_simulated", phase.pairsSimulated);
    json.set("counters", counterSetToJson(phase.counters));
    return json;
}

void
writeFileOrFatal(const std::string &path, const std::string &content)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr)
        ANT_FATAL("cannot open report file '", path, "' for writing");
    const std::size_t written =
        std::fwrite(content.data(), 1, content.size(), out);
    const bool flushed = std::fclose(out) == 0;
    if (written != content.size() || !flushed)
        ANT_FATAL("short write to report file '", path, "'");
}

} // namespace

Json
counterSetToJson(const CounterSet &counters)
{
    Json json = Json::object();
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        const auto counter = static_cast<Counter>(i);
        json.set(counterName(counter), counters.get(counter));
    }
    return json;
}

CounterSet
counterSetFromJson(const Json &json)
{
    CounterSet counters;
    ANT_ASSERT(json.size() == kNumCounters,
               "counter object has ", json.size(), " members, expected ",
               kNumCounters);
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        const auto counter = static_cast<Counter>(i);
        counters.set(counter, json.at(counterName(counter)).asUint());
    }
    return counters;
}

Json
networkStatsToJson(const NetworkStats &stats, std::uint32_t num_pes)
{
    Json json = Json::object();
    json.set("total", counterSetToJson(stats.total));
    json.set("accelerator_cycles", stats.acceleratorCycles(num_pes));
    json.set("rcp_avoided_fraction", stats.rcpAvoidedFraction());
    json.set("valid_mult_fraction", stats.validMultFraction());
    Json layers = Json::array();
    for (const LayerStats &layer : stats.layers) {
        Json layer_json = Json::object();
        layer_json.set("name", layer.name);
        Json phases = Json::array();
        for (std::size_t pi = 0; pi < layer.phases.size(); ++pi) {
            // Phases that were not simulated keep pairsTotal == 0 and
            // are omitted, so a forward-only report stays compact.
            if (layer.phases[pi].pairsTotal == 0)
                continue;
            phases.push(
                phaseStatsToJson(layer.phases[pi], kPhaseNames[pi]));
        }
        layer_json.set("phases", std::move(phases));
        layers.push(std::move(layer_json));
    }
    json.set("layers", std::move(layers));
    return json;
}

NetworkStats
networkStatsFromJson(const Json &json)
{
    NetworkStats stats;
    stats.total = counterSetFromJson(json.at("total"));
    const Json &layers = json.at("layers");
    for (std::size_t li = 0; li < layers.size(); ++li) {
        const Json &layer_json = layers.at(li);
        LayerStats layer;
        layer.name = layer_json.at("name").asString();
        const Json &phases = layer_json.at("phases");
        for (std::size_t i = 0; i < phases.size(); ++i) {
            const Json &phase_json = phases.at(i);
            const std::string &phase_name =
                phase_json.at("phase").asString();
            std::size_t pi = 3;
            for (std::size_t p = 0; p < 3; ++p) {
                if (phase_name == kPhaseNames[p])
                    pi = p;
            }
            ANT_ASSERT(pi < 3, "unknown phase name '", phase_name, "'");
            PhaseStats &phase = layer.phases[pi];
            phase.pairsTotal = phase_json.at("pairs_total").asUint();
            phase.pairsSimulated =
                phase_json.at("pairs_simulated").asUint();
            phase.counters = counterSetFromJson(phase_json.at("counters"));
        }
        stats.layers.push_back(std::move(layer));
    }
    return stats;
}

Json
profileToJson()
{
    Json json = Json::object();
    Json stages = Json::array();
    for (std::size_t i = 0; i < kNumStages; ++i) {
        const auto stage = static_cast<Stage>(i);
        Json entry = Json::object();
        entry.set("name", stageName(stage));
        entry.set("nanos", profiler::totalNanos(stage));
        entry.set("seconds",
                  static_cast<double>(profiler::totalNanos(stage)) * 1e-9);
        entry.set("calls", profiler::callCount(stage));
        stages.push(std::move(entry));
    }
    json.set("stages", std::move(stages));

    // Census-engine and trace-cache totals (process-wide; like the
    // stage timings they live in the profile section only, so the
    // deterministic report body stays byte-identical whether the cache
    // or the census fast paths ran).
    CounterSet census;
    census.set(Counter::CensusTablesBuilt, census_stats::tablesBuilt());
    census.set(Counter::CensusRectQueries, census_stats::rectQueries());
    census.set(Counter::TraceCacheHits, trace_cache::hits());
    census.set(Counter::TraceCacheMisses, trace_cache::misses());
    census.set(Counter::TracePlanesGenerated,
               trace_cache::planesGenerated());
    json.set("census", counterSetToJson(census));
    return json;
}

void
RunReport::setMetadata(RunMetadata metadata)
{
    metadata_ = std::move(metadata);
}

void
RunReport::addMetric(const std::string &name, double value)
{
    metrics_.set(name, value);
}

void
RunReport::addMetric(const std::string &name, std::uint64_t value)
{
    metrics_.set(name, value);
}

void
RunReport::addNetwork(const std::string &name, const NetworkStats &stats,
                      std::uint32_t num_pes)
{
    networks_.push_back({name, networkStatsToJson(stats, num_pes)});
}

void
RunReport::addTable(const std::string &name, const Table &table)
{
    tables_.push_back({name, table});
}

Json
RunReport::toJson(bool include_profile) const
{
    Json json = Json::object();
    json.set("schema_version", kSchemaVersion);
    json.set("generator", "antsim");

    Json metadata = Json::object();
    metadata.set("binary", metadata_.binary);
    metadata.set("seed", metadata_.seed);
    metadata.set("threads", static_cast<std::uint64_t>(metadata_.threads));
    metadata.set("pes", static_cast<std::uint64_t>(metadata_.pes));
    metadata.set("samples", static_cast<std::uint64_t>(metadata_.samples));
    metadata.set("chunk", static_cast<std::uint64_t>(metadata_.chunk));
    metadata.set("audit", metadata_.audit);
    metadata.set("energy_table_version", metadata_.energyTableVersion);
    json.set("metadata", std::move(metadata));

    json.set("metrics", metrics_);

    Json networks = Json::array();
    for (const NamedStats &network : networks_) {
        Json entry = Json::object();
        entry.set("name", network.name);
        entry.set("stats", network.stats);
        networks.push(std::move(entry));
    }
    json.set("networks", std::move(networks));

    Json tables = Json::array();
    for (const NamedTable &table : tables_) {
        Json entry = Json::object();
        entry.set("name", table.name);
        Json headers = Json::array();
        for (const std::string &header : table.table.headers())
            headers.push(header);
        entry.set("headers", std::move(headers));
        Json rows = Json::array();
        for (const auto &row : table.table.rows()) {
            Json cells = Json::array();
            for (const std::string &cell : row)
                cells.push(cell);
            rows.push(std::move(cells));
        }
        entry.set("rows", std::move(rows));
        tables.push(std::move(entry));
    }
    json.set("tables", std::move(tables));

    if (include_profile)
        json.set("profile", profileToJson());
    return json;
}

std::string
RunReport::toCsv() const
{
    std::string out;
    for (const NamedTable &table : tables_) {
        out += "# ";
        out += table.name;
        out += '\n';
        out += table.table.toCsv();
        out += '\n';
    }
    return out;
}

void
RunReport::writeJson(const std::string &path, bool include_profile) const
{
    writeFileOrFatal(path, toJson(include_profile).dump() + "\n");
}

void
RunReport::writeCsv(const std::string &path) const
{
    writeFileOrFatal(path, toCsv());
}

} // namespace antsim
