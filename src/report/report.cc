#include "report.hh"

#include <algorithm>
#include <cstdio>

#include "conv/census.hh"
#include "report/profiler.hh"
#include "util/logging.hh"
#include "workload/trace_cache.hh"

namespace antsim {

namespace {

/** Phase keys in TrainingPhase order (layer.hh). */
constexpr const char *kPhaseNames[3] = {"forward", "backward", "update"};

constexpr std::uint64_t kSchemaVersion = 1;

Json
phaseStatsToJson(const PhaseStats &phase, const char *phase_name)
{
    Json json = Json::object();
    json.set("phase", phase_name);
    json.set("pairs_total", phase.pairsTotal);
    json.set("pairs_simulated", phase.pairsSimulated);
    json.set("counters", counterSetToJson(phase.counters));
    return json;
}

void
writeFileOrFatal(const std::string &path, const std::string &content)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr)
        ANT_FATAL("cannot open report file '", path, "' for writing");
    const std::size_t written =
        std::fwrite(content.data(), 1, content.size(), out);
    const bool flushed = std::fclose(out) == 0;
    if (written != content.size() || !flushed)
        ANT_FATAL("short write to report file '", path, "'");
}

} // namespace

Json
counterSetToJson(const CounterSet &counters)
{
    Json json = Json::object();
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        const auto counter = static_cast<Counter>(i);
        json.set(counterName(counter), counters.get(counter));
    }
    return json;
}

CounterSet
counterSetFromJson(const Json &json)
{
    CounterSet counters;
    ANT_ASSERT(json.size() == kNumCounters,
               "counter object has ", json.size(), " members, expected ",
               kNumCounters);
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        const auto counter = static_cast<Counter>(i);
        counters.set(counter, json.at(counterName(counter)).asUint());
    }
    return counters;
}

Json
networkStatsToJson(const NetworkStats &stats, std::uint32_t num_pes)
{
    Json json = Json::object();
    json.set("total", counterSetToJson(stats.total));
    json.set("accelerator_cycles", stats.acceleratorCycles(num_pes));
    json.set("rcp_avoided_fraction", stats.rcpAvoidedFraction());
    json.set("valid_mult_fraction", stats.validMultFraction());
    Json layers = Json::array();
    for (const LayerStats &layer : stats.layers) {
        Json layer_json = Json::object();
        layer_json.set("name", layer.name);
        Json phases = Json::array();
        for (std::size_t pi = 0; pi < layer.phases.size(); ++pi) {
            // Phases that were not simulated keep pairsTotal == 0 and
            // are omitted, so a forward-only report stays compact.
            if (layer.phases[pi].pairsTotal == 0)
                continue;
            phases.push(
                phaseStatsToJson(layer.phases[pi], kPhaseNames[pi]));
        }
        layer_json.set("phases", std::move(phases));
        layers.push(std::move(layer_json));
    }
    json.set("layers", std::move(layers));
    return json;
}

NetworkStats
networkStatsFromJson(const Json &json)
{
    NetworkStats stats;
    stats.total = counterSetFromJson(json.at("total"));
    const Json &layers = json.at("layers");
    for (std::size_t li = 0; li < layers.size(); ++li) {
        const Json &layer_json = layers.at(li);
        LayerStats layer;
        layer.name = layer_json.at("name").asString();
        const Json &phases = layer_json.at("phases");
        for (std::size_t i = 0; i < phases.size(); ++i) {
            const Json &phase_json = phases.at(i);
            const std::string &phase_name =
                phase_json.at("phase").asString();
            std::size_t pi = 3;
            for (std::size_t p = 0; p < 3; ++p) {
                if (phase_name == kPhaseNames[p])
                    pi = p;
            }
            ANT_ASSERT(pi < 3, "unknown phase name '", phase_name, "'");
            PhaseStats &phase = layer.phases[pi];
            phase.pairsTotal = phase_json.at("pairs_total").asUint();
            phase.pairsSimulated =
                phase_json.at("pairs_simulated").asUint();
            phase.counters = counterSetFromJson(phase_json.at("counters"));
        }
        stats.layers.push_back(std::move(layer));
    }
    return stats;
}

StallBreakdown
stallBreakdown(const CounterSet &counters)
{
    StallBreakdown b;
    b.cycles = counters.get(Counter::Cycles);
    std::uint64_t left = b.cycles;
    b.active = std::min(counters.get(Counter::ActiveCycles), left);
    left -= b.active;
    b.startup = std::min(counters.get(Counter::StartupCycles), left);
    left -= b.startup;
    b.idleScan = std::min(counters.get(Counter::IdleScanCycles), left);
    left -= b.idleScan;
    b.imbalance = left;
    return b;
}

Json
histogramsToJson(const obs::HistogramRegistry &hists)
{
    Json json = Json::array();
    for (std::size_t i = 0; i < obs::kNumHists; ++i) {
        const auto id = static_cast<obs::HistId>(i);
        const obs::Histogram &hist = hists.get(id);
        Json entry = Json::object();
        entry.set("name", obs::histName(id));
        entry.set("kind",
                  hist.spec().kind == obs::HistogramSpec::Kind::Log2
                      ? "log2"
                      : "linear");
        entry.set("lo", hist.spec().lo);
        entry.set("bin_width", hist.spec().binWidth);
        Json bins = Json::array();
        for (std::uint64_t b : hist.bins())
            bins.push(b);
        entry.set("bins", std::move(bins));
        entry.set("count", hist.count());
        entry.set("sum", hist.sum());
        entry.set("min", hist.min());
        entry.set("max", hist.max());
        json.push(std::move(entry));
    }
    return json;
}

Json
hostMetricsToJson(const obs::metrics::Snapshot &snap)
{
    namespace m = obs::metrics;
    Json json = Json::object();

    Json counters = Json::object();
    for (std::size_t i = 0; i < m::kNumCounters; ++i)
        counters.set(m::counterName(static_cast<m::Counter>(i)),
                     snap.counters[i]);
    json.set("counters", std::move(counters));

    Json gauges = Json::object();
    for (std::size_t i = 0; i < m::kNumGauges; ++i) {
        const auto gauge = static_cast<m::Gauge>(i);
        Json entry = Json::object();
        // Gauges are signed (add/sub deltas) but every catalogued gauge
        // tracks a resource quantity, so negatives only arise from an
        // accounting bug; clamp rather than emit a negative byte count.
        entry.set("value", static_cast<std::uint64_t>(
                               std::max<std::int64_t>(0, snap.gaugeValue[i])));
        entry.set("peak", static_cast<std::uint64_t>(
                              std::max<std::int64_t>(0, snap.gaugePeak[i])));
        gauges.set(m::gaugeName(gauge), std::move(entry));
    }
    json.set("gauges", std::move(gauges));

    Json stages = Json::array();
    for (std::size_t i = 0; i < m::kNumStages; ++i) {
        Json entry = Json::object();
        entry.set("name", m::stageMetricName(i));
        entry.set("nanos", snap.stageNs[i]);
        entry.set("calls", snap.stageCalls[i]);
        stages.push(std::move(entry));
    }
    json.set("stages", std::move(stages));

    Json workers = Json::array();
    for (std::size_t w = 0; w < snap.workersUsed; ++w) {
        Json entry = Json::object();
        entry.set("worker", static_cast<std::uint64_t>(w));
        entry.set("busy_ns",
                  snap.workers[w][static_cast<std::size_t>(
                      m::WorkerCounter::BusyNs)]);
        entry.set("idle_ns",
                  snap.workers[w][static_cast<std::size_t>(
                      m::WorkerCounter::IdleNs)]);
        entry.set("chunks",
                  snap.workers[w][static_cast<std::size_t>(
                      m::WorkerCounter::Chunks)]);
        entry.set("items",
                  snap.workers[w][static_cast<std::size_t>(
                      m::WorkerCounter::Items)]);
        workers.push(std::move(entry));
    }
    json.set("workers", std::move(workers));

    Json cache_shards = Json::array();
    for (std::size_t s = 0; s < snap.cacheShardsUsed; ++s)
        cache_shards.push(snap.cacheShardEntries[s]);
    json.set("cache_shards", std::move(cache_shards));

    Json hists = Json::array();
    for (std::size_t i = 0; i < m::kNumHists; ++i) {
        const auto hist = static_cast<m::Hist>(i);
        const auto &data = snap.hists[i];
        Json entry = Json::object();
        entry.set("name", m::histName(hist));
        Json bins = Json::array();
        for (std::uint64_t b : data.bins)
            bins.push(b);
        entry.set("bins", std::move(bins));
        entry.set("count", data.count);
        entry.set("sum", data.sum);
        entry.set("min", data.min);
        entry.set("max", data.max);
        hists.push(std::move(entry));
    }
    json.set("histograms", std::move(hists));
    return json;
}

namespace {

/** Sum the simulated phases of one layer into a single counter set. */
CounterSet
layerTotals(const LayerStats &layer)
{
    CounterSet total;
    for (const PhaseStats &phase : layer.phases) {
        if (phase.pairsTotal > 0)
            total += phase.counters;
    }
    return total;
}

/** One stall-attribution row as JSON. */
Json
stallRowToJson(const std::string &name, const CounterSet &counters,
               std::uint32_t multipliers)
{
    const StallBreakdown b = stallBreakdown(counters);
    Json row = Json::object();
    row.set("layer", name);
    row.set("cycles", b.cycles);
    row.set("active", b.active);
    row.set("startup", b.startup);
    row.set("idle_scan", b.idleScan);
    row.set("imbalance", b.imbalance);
    const std::uint64_t slots =
        static_cast<std::uint64_t>(multipliers) * b.cycles;
    row.set("utilization_pct",
            slots == 0 ? 0.0
                       : 100.0 *
                    static_cast<double>(
                        counters.get(Counter::MultsExecuted)) /
                    static_cast<double>(slots));
    return row;
}

} // namespace

Json
profileToJson()
{
    Json json = Json::object();
    Json stages = Json::array();
    for (std::size_t i = 0; i < kNumStages; ++i) {
        const auto stage = static_cast<Stage>(i);
        Json entry = Json::object();
        entry.set("name", stageName(stage));
        entry.set("nanos", profiler::totalNanos(stage));
        entry.set("seconds",
                  static_cast<double>(profiler::totalNanos(stage)) * 1e-9);
        entry.set("calls", profiler::callCount(stage));
        stages.push(std::move(entry));
    }
    json.set("stages", std::move(stages));

    // Census-engine and trace-cache totals (process-wide; like the
    // stage timings they live in the profile section only, so the
    // deterministic report body stays byte-identical whether the cache
    // or the census fast paths ran).
    CounterSet census;
    census.set(Counter::CensusTablesBuilt, census_stats::tablesBuilt());
    census.set(Counter::CensusRectQueries, census_stats::rectQueries());
    census.set(Counter::TraceCacheHits, trace_cache::hits());
    census.set(Counter::TraceCacheMisses, trace_cache::misses());
    census.set(Counter::TracePlanesGenerated,
               trace_cache::planesGenerated());
    json.set("census", counterSetToJson(census));
    return json;
}

void
RunReport::setMetadata(RunMetadata metadata)
{
    metadata_ = std::move(metadata);
}

void
RunReport::addMetric(const std::string &name, double value)
{
    metrics_.set(name, value);
}

void
RunReport::addMetric(const std::string &name, std::uint64_t value)
{
    metrics_.set(name, value);
}

void
RunReport::addNetwork(const std::string &name, const NetworkStats &stats,
                      std::uint32_t num_pes)
{
    networks_.push_back({name, networkStatsToJson(stats, num_pes)});
}

void
RunReport::addTable(const std::string &name, const Table &table)
{
    tables_.push_back({name, table});
}

void
RunReport::addStallAttribution(const std::string &network_name,
                               const NetworkStats &stats,
                               const std::string &pe_model,
                               std::uint32_t multipliers)
{
    Json entry = Json::object();
    entry.set("network", network_name);
    entry.set("pe_model", pe_model);
    entry.set("multipliers", static_cast<std::uint64_t>(multipliers));
    Json layers = Json::array();
    for (const LayerStats &layer : stats.layers)
        layers.push(stallRowToJson(layer.name, layerTotals(layer),
                                   multipliers));
    entry.set("layers", std::move(layers));
    entry.set("total", stallRowToJson("total", stats.total, multipliers));
    stalls_.push_back({network_name, std::move(entry)});
}

void
RunReport::setHistograms(const obs::HistogramRegistry &hists)
{
    histograms_ = histogramsToJson(hists);
    hasHistograms_ = true;
}

void
RunReport::setEstimate(Json estimate)
{
    estimate_ = std::move(estimate);
    hasEstimate_ = true;
}

void
RunReport::setHostMetrics(const obs::metrics::Snapshot &snap)
{
    hostMetrics_ = hostMetricsToJson(snap);
    hasHostMetrics_ = true;
}

Json
RunReport::toJson(bool include_profile) const
{
    Json json = Json::object();
    json.set("schema_version", kSchemaVersion);
    json.set("generator", "antsim");

    Json metadata = Json::object();
    metadata.set("binary", metadata_.binary);
    metadata.set("seed", metadata_.seed);
    metadata.set("threads", static_cast<std::uint64_t>(metadata_.threads));
    metadata.set("threads_effective",
                 static_cast<std::uint64_t>(metadata_.threadsEffective));
    metadata.set("pes", static_cast<std::uint64_t>(metadata_.pes));
    metadata.set("samples", static_cast<std::uint64_t>(metadata_.samples));
    metadata.set("chunk", static_cast<std::uint64_t>(metadata_.chunk));
    metadata.set("audit", metadata_.audit);
    metadata.set("energy_table_version", metadata_.energyTableVersion);
    metadata.set("mode", metadata_.mode);
    json.set("metadata", std::move(metadata));

    json.set("metrics", metrics_);

    Json networks = Json::array();
    for (const NamedStats &network : networks_) {
        Json entry = Json::object();
        entry.set("name", network.name);
        entry.set("stats", network.stats);
        networks.push(std::move(entry));
    }
    json.set("networks", std::move(networks));

    Json stalls = Json::array();
    for (const StallEntry &stall : stalls_)
        stalls.push(stall.json);
    json.set("stall_attribution", std::move(stalls));

    Json tables = Json::array();
    for (const NamedTable &table : tables_) {
        Json entry = Json::object();
        entry.set("name", table.name);
        Json headers = Json::array();
        for (const std::string &header : table.table.headers())
            headers.push(header);
        entry.set("headers", std::move(headers));
        Json rows = Json::array();
        for (const auto &row : table.table.rows()) {
            Json cells = Json::array();
            for (const std::string &cell : row)
                cells.push(cell);
            rows.push(std::move(cells));
        }
        entry.set("rows", std::move(rows));
        tables.push(std::move(entry));
    }
    json.set("tables", std::move(tables));

    if (hasHistograms_)
        json.set("histograms", histograms_);

    if (hasEstimate_)
        json.set("estimate", estimate_);

    if (hasHostMetrics_)
        json.set("host_metrics", hostMetrics_);

    if (include_profile)
        json.set("profile", profileToJson());
    return json;
}

std::string
RunReport::toCsv() const
{
    std::string out;
    for (const NamedTable &table : tables_) {
        out += "# ";
        out += table.name;
        out += '\n';
        out += table.table.toCsv();
        out += '\n';
    }
    for (const StallEntry &stall : stalls_) {
        Table table({"layer", "pe_model", "cycles", "active", "startup",
                     "idle_scan", "imbalance", "utilization_pct"});
        const std::string &pe_model =
            stall.json.at("pe_model").asString();
        const auto add_row = [&](const Json &row) {
            table.addRow(
                {row.at("layer").asString(), pe_model,
                 std::to_string(row.at("cycles").asUint()),
                 std::to_string(row.at("active").asUint()),
                 std::to_string(row.at("startup").asUint()),
                 std::to_string(row.at("idle_scan").asUint()),
                 std::to_string(row.at("imbalance").asUint()),
                 Table::num(row.at("utilization_pct").asDouble())});
        };
        const Json &layers = stall.json.at("layers");
        for (std::size_t i = 0; i < layers.size(); ++i)
            add_row(layers.at(i));
        add_row(stall.json.at("total"));
        out += "# stall_attribution/";
        out += stall.name;
        out += '\n';
        out += table.toCsv();
        out += '\n';
    }
    return out;
}

void
RunReport::writeJson(const std::string &path, bool include_profile) const
{
    writeFileOrFatal(path, toJson(include_profile).dump() + "\n");
}

void
RunReport::writeCsv(const std::string &path) const
{
    writeFileOrFatal(path, toCsv());
}

} // namespace antsim
