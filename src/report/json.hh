/**
 * @file
 * Minimal self-contained JSON document model for run reporting.
 *
 * The report subsystem needs three things no external dependency is
 * available for: (1) deterministic serialization -- two identical runs
 * must produce byte-identical documents, so object members keep their
 * insertion order and doubles print as their shortest round-trip form;
 * (2) a parser, so tests can round-trip a report and diff it against
 * the live NetworkStats; (3) exact 64-bit integers, because counter
 * values must survive serialization bit for bit (a double mantissa
 * cannot hold a full uint64).
 *
 * The model is deliberately small: null, bool, signed/unsigned 64-bit
 * integers, double, string, array, object. That is the entire schema
 * of docs/report_schema.json.
 */

#ifndef ANTSIM_REPORT_JSON_HH
#define ANTSIM_REPORT_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace antsim {

/** One JSON value; objects preserve member insertion order. */
class Json
{
  public:
    enum class Type { Null, Bool, Int, Uint, Double, String, Array, Object };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(std::int64_t v) : type_(Type::Int), int_(v) {}
    Json(std::uint64_t v) : type_(Type::Uint), uint_(v) {}
    Json(double v) : type_(Type::Double), double_(v) {}
    Json(const char *s) : type_(Type::String), string_(s) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}

    /** An empty array value. */
    static Json array();
    /** An empty object value. */
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const;

    /** Typed accessors; panic if the value has a different type. */
    bool asBool() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    /** Numeric value widened to double (any numeric type). */
    double asDouble() const;
    const std::string &asString() const;

    /** Array: append an element. */
    Json &push(Json value);
    /** Array/object: number of elements or members. */
    std::size_t size() const;
    /** Array: element access; panics when out of range. */
    const Json &at(std::size_t index) const;

    /** Object: insert or overwrite a member, keeping first-seen order. */
    Json &set(const std::string &key, Json value);
    /** Object: member lookup; nullptr when absent. */
    const Json *find(const std::string &key) const;
    /** Object: member lookup; panics when absent. */
    const Json &at(const std::string &key) const;
    /** Object: the members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const;

    /**
     * Serialize deterministically: 2-space indentation, members in
     * insertion order, doubles in shortest round-trip form, integers
     * exact, trailing newline-free.
     */
    std::string dump() const;

    /**
     * Parse a document. On malformed input returns a Null value and
     * stores a diagnostic in @p error (when non-null); a valid "null"
     * document leaves @p error empty.
     */
    static Json parse(const std::string &text, std::string *error = nullptr);

    /**
     * Structural equality; numbers compare by value across Int, Uint
     * and Double so a parsed document equals its source model.
     */
    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const { return !(*this == other); }

  private:
    void dumpTo(std::string &out, int indent) const;

    Type type_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

} // namespace antsim

#endif // ANTSIM_REPORT_JSON_HH
