#include "ant_pipeline.hh"

#include <algorithm>
#include <limits>
#include <optional>

#include "ant/fnir.hh"
#include "obs/trace.hh"
#include "report/profiler.hh"
#include "sim/clock.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "verify/audit_hooks.hh"

namespace antsim {

namespace {

/** One kernel candidate with coordinates. */
struct Cand
{
    float value;
    std::uint32_t s;
    std::uint32_t r;
};

/** Work travelling down the pipe: selected candidates x image group. */
struct IssueBundle
{
    std::uint32_t group = 0;
    std::vector<Cand> selected;
};

/** Pre-resolved per-image-group scan state. */
struct GroupPlan
{
    std::size_t image_begin = 0;
    std::size_t image_end = 0;
    IndexRange sRange{0, -1};
    std::vector<Cand> candidates;
};

/**
 * Scanner stage: one FNIR window per cycle, n+1-st-index feedback,
 * seamless roll-over between image groups.
 */
class Scanner : public Module
{
  public:
    Scanner(const std::vector<GroupPlan> &plans, const Fnir &fnir,
            PipeReg<IssueBundle> &out, CounterSet &counters)
        : plans_(plans), fnir_(fnir), out_(out), counters_(counters)
    {}

    bool
    done() const
    {
        return group_ >= plans_.size();
    }

    std::uint64_t evaluations() const { return evaluations_; }

    void
    evaluate() override
    {
        if (done()) {
            out_.clearNext();
            return;
        }
        const GroupPlan &plan = plans_[group_];
        if (plan.candidates.empty() || plan.sRange.empty()) {
            // Empty group: consumes this cycle discovering the empty
            // window, issues nothing.
            out_.clearNext();
            advanceGroup();
            return;
        }

        const std::size_t wend =
            std::min(pos_ + fnir_.k(), plan.candidates.size());
        std::vector<std::int64_t> window;
        window.reserve(wend - pos_);
        for (std::size_t i = pos_; i < wend; ++i)
            window.push_back(plan.candidates[i].s);
        const FnirResult result = fnir_.evaluate(
            window, plan.sRange.lo, plan.sRange.hi, counters_);
        ++evaluations_;

        IssueBundle bundle;
        bundle.group = static_cast<std::uint32_t>(group_);
        for (std::uint32_t port = 0; port < result.selectedCount(); ++port)
            bundle.selected.push_back(
                plan.candidates[pos_ + result.ports[port].position]);
        if (!bundle.selected.empty())
            out_.setNext(bundle);
        else
            out_.clearNext();

        if (result.feedback().valid)
            pos_ += result.feedback().position;
        else
            pos_ = wend;
        if (pos_ >= plan.candidates.size())
            advanceGroup();
    }

    void commit() override { out_.latch(); }

  private:
    void
    advanceGroup()
    {
        ++group_;
        pos_ = 0;
    }

    const std::vector<GroupPlan> &plans_;
    const Fnir &fnir_;
    PipeReg<IssueBundle> &out_;
    CounterSet &counters_;
    std::size_t group_ = 0;
    std::size_t pos_ = 0;
    std::uint64_t evaluations_ = 0;
};

/** A pass-through pipeline stage with one cycle of latency. */
class LatencyStage : public Module
{
  public:
    LatencyStage(PipeReg<IssueBundle> &in, PipeReg<IssueBundle> &out)
        : in_(in), out_(out)
    {}

    void
    evaluate() override
    {
        if (in_.valid())
            out_.setNext(in_.value());
        else
            out_.clearNext();
    }

    void commit() override { out_.latch(); }

    bool busy() const { return in_.valid(); }

  private:
    PipeReg<IssueBundle> &in_;
    PipeReg<IssueBundle> &out_;
};

/** Retire stage: output-index computation and classification. */
class RetireStage : public Module
{
  public:
    RetireStage(PipeReg<IssueBundle> &in, const ProblemSpec &spec,
                const std::vector<SparseEntry> &image_entries,
                const std::vector<GroupPlan> &plans,
                PipelineRunResult &result)
        : in_(in), spec_(spec), imageEntries_(image_entries),
          plans_(plans), result_(result)
    {}

    void
    evaluate() override
    {
        if (!in_.valid())
            return;
        const IssueBundle &bundle = in_.value();
        const GroupPlan &plan = plans_[bundle.group];
        for (const Cand &cand : bundle.selected) {
            for (std::size_t i = plan.image_begin; i < plan.image_end;
                 ++i) {
                const SparseEntry &img = imageEntries_[i];
                ++result_.executed;
                if (spec_.isValid(img.x, img.y, cand.s, cand.r))
                    ++result_.valid;
                else
                    ++result_.residualRcps;
            }
        }
    }

    void commit() override {}

    bool busy() const { return in_.valid(); }

  private:
    PipeReg<IssueBundle> &in_;
    const ProblemSpec &spec_;
    const std::vector<SparseEntry> &imageEntries_;
    const std::vector<GroupPlan> &plans_;
    PipelineRunResult &result_;
};

} // namespace

AntPipelineModel::AntPipelineModel(const AntPeConfig &config)
    : config_(config)
{
    ANT_ASSERT(config_.dataflow == AntDataflow::ImageStationary,
               "the tick-accurate model covers the image-stationary "
               "dataflow");
}

PipelineRunResult
AntPipelineModel::run(const ProblemSpec &spec, const CsrMatrix &kernel,
                      const CsrMatrix &image,
                      std::uint32_t num_threads) const
{
    ANT_ASSERT(spec.kind() == ProblemSpec::Kind::Conv,
               "the tick-accurate model covers convolutions");

    const auto image_entries = image.entries();
    const std::uint32_t n = config_.n;

    // Pre-resolve the per-group plans (ranges + windowed candidates),
    // exactly the work stages 1-3 of the pipeline perform; the tick
    // simulation then exercises the scan/fetch/multiply/retire flow.
    // Plans are independent per group, so they are built in parallel;
    // each lands in its own slot and the serial tick loop below reads
    // them in group order, keeping the run bit-identical for every
    // thread count.
    const std::size_t group_count = (image_entries.size() + n - 1) / n;
    std::vector<GroupPlan> plans(group_count);
    std::optional<ScopedTimer> plan_timer(std::in_place, Stage::PlanBuild);
    ThreadPool plan_pool(num_threads);
    plan_pool.parallelFor(
        0, group_count, /*grain=*/8,
        // antsim-lint: allow(parallel-capture-discipline) -- per-slot
        // discipline: each task writes only plans[g] (its own
        // group-indexed slot); every other capture is read-only
        // (trace_determinism_test proves thread-count invariance).
        [&](std::uint64_t g, std::uint32_t) {
        const std::size_t ib = static_cast<std::size_t>(g) * n;
        GroupPlan plan;
        plan.image_begin = ib;
        plan.image_end = std::min(ib + n, image_entries.size());

        std::uint32_t x_min = image_entries[ib].x;
        std::uint32_t x_max = x_min;
        for (std::size_t i = ib + 1; i < plan.image_end; ++i) {
            x_min = std::min(x_min, image_entries[i].x);
            x_max = std::max(x_max, image_entries[i].x);
        }
        const std::uint32_t y_min = image_entries[ib].y;
        const std::uint32_t y_max = image_entries[plan.image_end - 1].y;

        plan.sRange = config_.useSCondition
            ? spec.sRange(x_min, x_max)
            : IndexRange{std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max()};
        const IndexRange r_range = config_.useRCondition
            ? spec.rRange(y_min, y_max)
            : IndexRange{0, static_cast<std::int64_t>(spec.kernelH()) - 1};

        if (!r_range.empty()) {
            const auto lo = static_cast<std::uint32_t>(r_range.lo);
            const auto hi = static_cast<std::uint32_t>(r_range.hi);
            for (std::uint32_t r = lo; r <= hi; ++r) {
                for (std::uint32_t i = kernel.rowPtr()[r];
                     i < kernel.rowPtr()[r + 1]; ++i) {
                    plan.candidates.push_back({kernel.values()[i],
                                               kernel.columns()[i], r});
                }
            }
        }
        plans[g] = std::move(plan);
    });
    plan_timer.reset();

    PipelineRunResult result;
    CounterSet scratch;
    const Fnir fnir(config_.n, config_.k);

    PipeReg<IssueBundle> p1;
    PipeReg<IssueBundle> p2;
    PipeReg<IssueBundle> p3;
    Scanner scanner(plans, fnir, p1, scratch);
    LatencyStage fetch(p1, p2);
    LatencyStage multiply(p2, p3);
    RetireStage retire(p3, spec, image_entries, plans, result);

    Simulator sim;
    sim.add(&scanner);
    sim.add(&fetch);
    sim.add(&multiply);
    sim.add(&retire);

    // Start-up: the paper's 5-cycle fill for a new matrix pair.
    std::uint64_t cycles = config_.startupCycles;
    obs::UnitRecorder *rec = obs::recorder();
    if (rec)
        rec->advance(obs::SpanKind::Startup, config_.startupCycles);

    // Advance until the scanner is done and the pipe has drained.
    const std::uint64_t safety_limit = 1ull << 40;
    while (!scanner.done() || p1.valid() || p2.valid() || p3.valid()) {
        // A tick retires work (multipliers busy) iff the last pipe
        // register holds a bundle when the tick starts.
        if (rec) {
            rec->advance(p3.valid() ? obs::SpanKind::Active
                                    : obs::SpanKind::IdleScan,
                         1);
        }
        sim.tick();
        ++cycles;
        ANT_ASSERT(cycles < safety_limit, "pipeline failed to drain");
    }

    result.cycles = cycles;
    result.fnirEvaluations = scanner.evaluations();
    verify::auditPipelineCountsOrPanic(
        "ANT pipeline model", result.executed, result.valid,
        result.residualRcps,
        static_cast<std::uint64_t>(kernel.nnz()) * image.nnz());
    return result;
}

} // namespace antsim
