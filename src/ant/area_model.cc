#include "area_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace antsim {

namespace {

/** Gate-equivalent count of the FNIR datapath for (n, k, index bits). */
std::uint64_t
fnirGates(std::uint32_t n, std::uint32_t k, std::uint32_t index_bits)
{
    // Comparator bank: two B-bit magnitude comparators per lane.
    const std::uint64_t comparator_gates =
        static_cast<std::uint64_t>(k) * 2 * 6 * index_bits;

    // Arbiter Select stages: n+1 of them. Each is a k-wide
    // fixed-priority arbiter (~4 GE/lane), a one-hot-to-binary encoder
    // (~log2(k) GE/lane), and a k-wide AND row to clear the grant.
    const auto log2k = static_cast<std::uint32_t>(
        std::ceil(std::log2(static_cast<double>(k))));
    const std::uint64_t stage_gates =
        static_cast<std::uint64_t>(k) * (4 + log2k + 1);
    const std::uint64_t arbiter_gates =
        static_cast<std::uint64_t>(n + 1) * stage_gates;

    // Output registers: n+1 ports of (log2 k position + valid) bits,
    // ~6 GE per flop.
    const std::uint64_t register_gates =
        static_cast<std::uint64_t>(n + 1) * (log2k + 1) * 6;

    return comparator_gates + arbiter_gates + register_gates;
}

} // namespace

AreaModelParams
AreaModelParams::calibrated()
{
    AreaModelParams params;
    // Calibrate mm2PerGate so the paper's default (n=4, k=16, 8-bit
    // indices) lands exactly at 0.0017 mm^2.
    const std::uint64_t default_gates = fnirGates(4, 16, params.indexBits);
    params.mm2PerGate = 0.0017 / static_cast<double>(default_gates);
    return params;
}

FnirAreaEstimate
estimateFnirArea(std::uint32_t n, std::uint32_t k,
                 const AreaModelParams &params)
{
    ANT_ASSERT(n > 0 && k > 0, "FNIR dimensions must be positive");

    FnirAreaEstimate est;
    est.gateEquivalents = fnirGates(n, k, params.indexBits);
    est.areaMm2 =
        static_cast<double>(est.gateEquivalents) * params.mm2PerGate;

    // Critical path: one comparator (~2 levels per bit-group, ~8
    // levels for 8-bit) followed by the n+1 *serial* arbiter stages
    // (Sec. 7.6: depth grows with n).
    const auto comparator_depth = params.indexBits;
    const auto arbiter_depth = 3u * (n + 1);
    est.criticalPathGates = comparator_depth + arbiter_depth;

    const double mult_array_gates =
        static_cast<double>(params.multiplierGates) * n * n;
    est.fractionOfMultiplierArray =
        static_cast<double>(est.gateEquivalents) / mult_array_gates;
    return est;
}

} // namespace antsim
