#include "fnir.hh"

#include <limits>

#include "util/logging.hh"
#include "util/simd.hh"

#if defined(__x86_64__)
#define ANTSIM_X86_SIMD 1
#include <immintrin.h>
#endif

namespace antsim {

namespace {

/**
 * Comparator bank, scalar ground truth: bit j of the result is set
 * when s_indices[j] (zero-extended) lies in [min, max].
 */
std::uint64_t
rangeMaskScalar(const std::uint32_t *s_indices, std::size_t count,
                std::int64_t min, std::int64_t max)
{
    std::uint64_t mask = 0;
    for (std::size_t lane = 0; lane < count; ++lane) {
        const auto s = static_cast<std::int64_t>(s_indices[lane]);
        if (s >= min && s <= max)
            mask |= 1ull << lane;
    }
    return mask;
}

#ifdef ANTSIM_X86_SIMD

__attribute__((target("avx2"))) std::uint64_t
rangeMaskAvx2(const std::uint32_t *s_indices, std::size_t count,
              std::int64_t min, std::int64_t max)
{
    // Clamp the int64 bounds into the uint32 index domain; an empty
    // clamped interval means no lane can match.
    constexpr std::int64_t u32_max =
        std::numeric_limits<std::uint32_t>::max();
    if (max < 0 || min > u32_max || min > max)
        return 0;
    const auto lo = static_cast<std::uint32_t>(min < 0 ? 0 : min);
    const auto hi = static_cast<std::uint32_t>(max > u32_max ? u32_max
                                                             : max);
    const __m256i lov = _mm256_set1_epi32(static_cast<int>(lo));
    const __m256i hiv = _mm256_set1_epi32(static_cast<int>(hi));
    std::uint64_t mask = 0;
    std::size_t lane = 0;
    for (; lane + 8 <= count; lane += 8) {
        const __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(s_indices + lane));
        // Unsigned compares via min/max: s >= lo iff max(s, lo) == s,
        // s <= hi iff min(s, hi) == s.
        const __m256i ge =
            _mm256_cmpeq_epi32(_mm256_max_epu32(s, lov), s);
        const __m256i le =
            _mm256_cmpeq_epi32(_mm256_min_epu32(s, hiv), s);
        const int bits = _mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_and_si256(ge, le)));
        mask |= static_cast<std::uint64_t>(static_cast<unsigned>(bits))
            << lane;
    }
    for (; lane < count; ++lane) {
        const std::uint32_t s = s_indices[lane];
        if (s >= lo && s <= hi)
            mask |= 1ull << lane;
    }
    return mask;
}

#endif // ANTSIM_X86_SIMD

std::uint64_t
rangeMask(const std::uint32_t *s_indices, std::size_t count,
          std::int64_t min, std::int64_t max)
{
#ifdef ANTSIM_X86_SIMD
    if (simd::avx2Enabled())
        return rangeMaskAvx2(s_indices, count, min, max);
#endif
    return rangeMaskScalar(s_indices, count, min, max);
}

} // namespace

Fnir::Fnir(std::uint32_t n, std::uint32_t k) : n_(n), k_(k)
{
    ANT_ASSERT(n_ > 0, "FNIR needs at least one multiplier port");
    ANT_ASSERT(k_ > 0 && k_ <= 64,
               "FNIR window width must be in [1, 64], got ", k_);
}

std::uint64_t
Fnir::arbiterSelect(std::uint64_t request, std::uint32_t &position,
                    bool &valid)
{
    if (request == 0) {
        position = 0;
        valid = false;
        return request;
    }
    // Fixed-priority arbiter: the one-hot grant vector is the lowest
    // set bit, g = request AND (-request).
    const std::uint64_t grant = request & (~request + 1);
    position = static_cast<std::uint32_t>(__builtin_ctzll(grant));
    valid = true;
    // Forward the input with the granted bit cleared.
    return request & ~grant;
}

FnirResult
Fnir::selectFromMask(std::uint64_t mask) const
{
    // First n+1 priority encoder: n+1 serial Arbiter Select stages.
    FnirResult result;
    result.ports.resize(n_ + 1);
    std::uint64_t remaining = mask;
    for (std::uint32_t stage = 0; stage <= n_; ++stage) {
        remaining = arbiterSelect(remaining, result.ports[stage].position,
                                  result.ports[stage].valid);
    }
    return result;
}

FnirResult
Fnir::evaluate(const std::vector<std::int64_t> &s_indices, std::int64_t min,
               std::int64_t max, CounterSet &counters) const
{
    ANT_ASSERT(s_indices.size() <= k_, "window of ", s_indices.size(),
               " exceeds FNIR width ", k_);

    // Comparator bank: 2 integer comparisons per lane per evaluation
    // (>= min and <= max); all k lanes switch every cycle.
    counters.add(Counter::IndexCompares, 2ull * k_);

    std::uint64_t mask = 0;
    for (std::size_t lane = 0; lane < s_indices.size(); ++lane) {
        if (s_indices[lane] >= min && s_indices[lane] <= max)
            mask |= 1ull << lane;
    }
    return selectFromMask(mask);
}

FnirResult
Fnir::evaluate(std::span<const std::uint32_t> s_indices, std::int64_t min,
               std::int64_t max, CounterSet &counters) const
{
    ANT_ASSERT(s_indices.size() <= k_, "window of ", s_indices.size(),
               " exceeds FNIR width ", k_);

    // Identical comparator charge to the int64 overload: the hardware
    // bank does not care how the model stores its indices.
    counters.add(Counter::IndexCompares, 2ull * k_);

    return selectFromMask(
        rangeMask(s_indices.data(), s_indices.size(), min, max));
}

} // namespace antsim
