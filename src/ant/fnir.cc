#include "fnir.hh"

#include "util/logging.hh"

namespace antsim {

Fnir::Fnir(std::uint32_t n, std::uint32_t k) : n_(n), k_(k)
{
    ANT_ASSERT(n_ > 0, "FNIR needs at least one multiplier port");
    ANT_ASSERT(k_ > 0 && k_ <= 64,
               "FNIR window width must be in [1, 64], got ", k_);
}

std::uint64_t
Fnir::arbiterSelect(std::uint64_t request, std::uint32_t &position,
                    bool &valid)
{
    if (request == 0) {
        position = 0;
        valid = false;
        return request;
    }
    // Fixed-priority arbiter: the one-hot grant vector is the lowest
    // set bit, g = request AND (-request).
    const std::uint64_t grant = request & (~request + 1);
    position = static_cast<std::uint32_t>(__builtin_ctzll(grant));
    valid = true;
    // Forward the input with the granted bit cleared.
    return request & ~grant;
}

FnirResult
Fnir::evaluate(const std::vector<std::int64_t> &s_indices, std::int64_t min,
               std::int64_t max, CounterSet &counters) const
{
    ANT_ASSERT(s_indices.size() <= k_, "window of ", s_indices.size(),
               " exceeds FNIR width ", k_);

    // Comparator bank: 2 integer comparisons per lane per evaluation
    // (>= min and <= max); all k lanes switch every cycle.
    counters.add(Counter::IndexCompares, 2ull * k_);

    std::uint64_t mask = 0;
    for (std::size_t lane = 0; lane < s_indices.size(); ++lane) {
        if (s_indices[lane] >= min && s_indices[lane] <= max)
            mask |= 1ull << lane;
    }

    // First n+1 priority encoder: n+1 serial Arbiter Select stages.
    FnirResult result;
    result.ports.resize(n_ + 1);
    std::uint64_t remaining = mask;
    for (std::uint32_t stage = 0; stage <= n_; ++stage) {
        remaining = arbiterSelect(remaining, result.ports[stage].position,
                                  result.ports[stage].valid);
    }
    return result;
}

} // namespace antsim
