/**
 * @file
 * ANT (ANTicipator) processing-element cycle model (Sec. 4, Fig. 6).
 *
 * The ANT PE extends the SCNN pipeline with RCP anticipation:
 *
 *  (1) n image non-zeros are fetched and held stationary;
 *  (2) the s-range block computes [s_min, s_max] from the group's
 *      min/max x indices (Eq. 11);
 *  (3) the r-range block computes [r_min, r_max] from the group's
 *      first/last y indices (CSR order makes y monotonic, Eq. 12);
 *      the Kernel Indices Buffer controller uses the r range to fetch
 *      only row pointers r_min..r_max -- kernel rows outside the range
 *      are never read from SRAM (Sec. 4.3);
 *  (4) each cycle, k sequential column indices from the windowed rows
 *      feed the FNIR block, which selects up to n indices inside
 *      [s_min, s_max] plus the n+1-st for feedback;
 *  (5) if the n+1-st is valid, the next window starts there; otherwise
 *      the scan advances by k (Sec. 4.2 step 5);
 *  (6) selected kernel values are fetched and multiplied against the
 *      n stationary image values; output indices are computed and
 *      valid products accumulate. Products that survive the group
 *      min/max screen but fail the exact per-element test are residual
 *      RCPs -- executed and counted, exactly as in the paper.
 *
 * Dataflow: image stationary. Like the SCNN baseline, the PE streams a
 * *kernel stack* (the kernel planes of all output channels) against
 * one resident image plane with a single pipeline start-up; for each
 * image group, the windowed candidate streams of the stacked kernels
 * are scanned back to back, and FNIR windows may span kernel-plane
 * boundaries.
 *
 * Matmul mode (Sec. 5): the image is traversed in CSC order so a group
 * shares (mostly) one column x; kernel rows r in [x_0, x_{n-1}] are
 * streamed directly n per cycle with the FNIR block bypassed, and
 * validity is r == x per element.
 *
 * The Fig. 14 ablations (r-condition only / s-condition only) are
 * supported: disabling the r condition streams all kernel rows,
 * disabling the s condition makes the FNIR accept everything.
 */

#ifndef ANTSIM_ANT_ANT_PE_HH
#define ANTSIM_ANT_ANT_PE_HH

#include "ant/fnir.hh"
#include "sim/pe_model.hh"
#include "sim/sram.hh"

namespace antsim {

/**
 * PE dataflow (Sec. 4.6). Image-stationary is the paper's primary
 * description; kernel-stationary swaps the roles of the operand
 * buffers, holding n kernel non-zeros resident while the image plane
 * streams through the anticipation logic (x/y range computation
 * instead of s/r).
 */
enum class AntDataflow { ImageStationary, KernelStationary };

/** Static parameters of the ANT PE (Table 4). */
struct AntPeConfig
{
    /** Multiplier array dimension n (default 4 -> 4x4 multipliers). */
    std::uint32_t n = 4;
    /** FNIR input window width k (default 16). */
    std::uint32_t k = 16;
    /** Pipeline start-up cost per new image load (Sec. 6.1). */
    std::uint32_t startupCycles = 5;
    /** Apply the r/y condition (Eq. 9); Fig. 14 ablation switch. */
    bool useRCondition = true;
    /** Apply the s/x condition (Eq. 10); Fig. 14 ablation switch. */
    bool useSCondition = true;
    /** Operand-stationarity choice (Sec. 4.6). */
    AntDataflow dataflow = AntDataflow::ImageStationary;
    /** Value/index buffer geometry (8 KB, 16-bit elements). */
    SramConfig buffer = SramConfig{};
    /** Accumulator bank geometry (64 KB, 16-bit partial sums). */
    SramConfig accumulatorBank = SramConfig::accumulatorBank();
};

/** The ANT PE: outer-product datapath with RCP anticipation. */
class AntPe : public PeModel
{
  public:
    explicit AntPe(const AntPeConfig &config = AntPeConfig{});

    std::string name() const override { return "ANT"; }

    std::uint32_t
    multiplierCount() const override
    {
        return config_.n * config_.n;
    }

    std::unique_ptr<PeModel>
    clone() const override
    {
        // Copy-construct so every data member (config_ AND fnir_, plus
        // anything added later) replicates; rebuilding from config_
        // alone would silently drop future stateful members and break
        // parallel determinism (the clone-completeness lint rule).
        return std::make_unique<AntPe>(*this);
    }

    const AntPeConfig &config() const { return config_; }

    PeResult runPair(const ProblemSpec &spec, const CsrMatrix &kernel,
                     const CsrMatrix &image, bool collect_output) override;

    PeResult runStack(const ProblemSpec &spec,
                      const std::vector<const CsrMatrix *> &kernels,
                      const CsrMatrix &image, bool collect_output) override;

  private:
    /** Convolution-mode execution (FNIR active, image stationary). */
    PeResult runConvStack(const ProblemSpec &spec,
                          const std::vector<const CsrMatrix *> &kernels,
                          const CsrMatrix &image, bool collect_output);

    /** Kernel-stationary convolution execution (Sec. 4.6). */
    PeResult runConvStackKernelStationary(
        const ProblemSpec &spec,
        const std::vector<const CsrMatrix *> &kernels,
        const CsrMatrix &image, bool collect_output);

    /** Matmul-mode execution (CSC image traversal, FNIR bypassed). */
    PeResult runMatmulPair(const ProblemSpec &spec, const CsrMatrix &kernel,
                           const CsrMatrix &image, bool collect_output);

    AntPeConfig config_;
    Fnir fnir_;
};

} // namespace antsim

#endif // ANTSIM_ANT_ANT_PE_HH
