/**
 * @file
 * Tick-accurate ANT PE pipeline model (Fig. 6).
 *
 * The throughput model in ant_pe.hh computes per-group cycle counts
 * with closed loops under the assumption that the six pipeline stages
 * overlap perfectly after the initial fill. This model *checks* that
 * assumption: it advances the PE cycle by cycle through the clocked
 * two-phase framework (sim/clock.hh) with explicit pipeline registers:
 *
 *   [scan/FNIR] -> P1 -> [kernel value fetch] -> P2 ->
 *   [multiplier array] -> P3 -> [output index + accumulate]
 *
 * The scanner holds the stationary image group, evaluates one FNIR
 * window per cycle with the n+1-st-index feedback, and rolls to the
 * next image group seamlessly. Start-up models the paper's 5-cycle
 * pipeline fill for a new matrix pair.
 *
 * Scope: single kernel plane, image-stationary, convolution mode,
 * full-row-window streaming (the controller-walk bound of stacked
 * small kernels is a throughput-model concern; see ant_pe.hh). Tests
 * assert the executed/valid/RCP product counts match the throughput
 * model exactly and total cycles match up to the pipeline drain.
 */

#ifndef ANTSIM_ANT_ANT_PIPELINE_HH
#define ANTSIM_ANT_ANT_PIPELINE_HH

#include <cstdint>

#include "ant/ant_pe.hh"
#include "conv/problem_spec.hh"
#include "tensor/csr.hh"
#include "util/counters.hh"

namespace antsim {

/** Result of a tick-accurate run. */
struct PipelineRunResult
{
    /** Total cycles from start-up until the last product retired. */
    std::uint64_t cycles = 0;
    /** Products issued to the multiplier array. */
    std::uint64_t executed = 0;
    /** Retired products with a valid output index. */
    std::uint64_t valid = 0;
    /** Retired residual RCPs. */
    std::uint64_t residualRcps = 0;
    /** FNIR evaluations performed (scan cycles). */
    std::uint64_t fnirEvaluations = 0;
};

/** Tick-accurate single-pair ANT PE. */
class AntPipelineModel
{
  public:
    explicit AntPipelineModel(const AntPeConfig &config = AntPeConfig{});

    /**
     * Run one (kernel, image) convolution pair to completion.
     * Requires an image-stationary config and a Conv spec.
     *
     * @param num_threads Workers for the per-group plan construction
     *        (stages 1-3 pre-resolution); 0 = hardware_concurrency.
     *        The tick loop itself is inherently serial. Results are
     *        bit-identical for every value: each group's plan is a
     *        pure function of the group, written to its own slot.
     */
    PipelineRunResult run(const ProblemSpec &spec, const CsrMatrix &kernel,
                          const CsrMatrix &image,
                          std::uint32_t num_threads = 1) const;

  private:
    AntPeConfig config_;
};

} // namespace antsim

#endif // ANTSIM_ANT_ANT_PIPELINE_HH
