/**
 * @file
 * First n+1 Indices within Range (FNIR) block -- bit-level model.
 *
 * The FNIR block (Sec. 4.4, Fig. 8) is combinational logic with two
 * parts:
 *
 *  1. k comparator blocks that, in parallel, test each candidate s
 *     index against [min, max], producing a k-bit request mask;
 *  2. a "first n+1" priority encoder built from n+1 serial
 *     Arbiter Select stages. Each stage is a fixed-priority arbiter:
 *     it grants the lowest set bit of its input (one-hot g), outputs
 *     the granted position in binary plus a valid bit, and forwards
 *     in AND NOT g to the next stage.
 *
 * The first n outputs select kernel values for the multiplier array;
 * the n+1-st output feeds back to the Kernel Indices Buffer controller
 * to set the next scan offset (Sec. 4.2, step 5).
 *
 * This model is bit-accurate: the arbiter-select chain is implemented
 * exactly as the hardware composition (tests check it against a naive
 * first-n+1 scan), and the same block drives both the ANT PE cycle
 * model and the area/delay estimator (Sec. 7.5).
 */

#ifndef ANTSIM_ANT_FNIR_HH
#define ANTSIM_ANT_FNIR_HH

#include <cstdint>
#include <span>
#include <vector>

#include "util/counters.hh"

namespace antsim {

/** One FNIR output port: a selected position and its valid bit. */
struct FnirOutput
{
    /** Binary-encoded position into the k-wide input window. */
    std::uint32_t position = 0;
    /** Whether this port selected anything. */
    bool valid = false;
};

/** Result of one combinational FNIR evaluation. */
struct FnirResult
{
    /** n+1 ports: first n feed the multiplier, last is the feedback. */
    std::vector<FnirOutput> ports;

    /** Number of valid multiplier-facing ports (first n). */
    std::uint32_t
    selectedCount() const
    {
        std::uint32_t count = 0;
        for (std::size_t i = 0; i + 1 < ports.size(); ++i)
            count += ports[i].valid ? 1 : 0;
        return count;
    }

    /** The n+1-st (feedback) port. */
    const FnirOutput &feedback() const { return ports.back(); }
};

/** Combinational FNIR block with parameters n and k. */
class Fnir
{
  public:
    /**
     * @param n Multiplier-array dimension: n+1 ports are produced.
     * @param k Input window width (Table 4 default 16).
     */
    Fnir(std::uint32_t n, std::uint32_t k);

    std::uint32_t n() const { return n_; }
    std::uint32_t k() const { return k_; }

    /**
     * Evaluate one window.
     *
     * @param s_indices Up to k candidate s indices; a short vector
     *        models a window clamped at the end of the buffer (the
     *        missing comparator lanes are treated as out of range).
     * @param min Inclusive lower bound (s_min).
     * @param max Inclusive upper bound (s_max).
     * @param counters Charged k comparator operations (2 integer
     *        compares per lane) per evaluation.
     */
    FnirResult evaluate(const std::vector<std::int64_t> &s_indices,
                        std::int64_t min, std::int64_t max,
                        CounterSet &counters) const;

    /**
     * Evaluate one window of uint32 candidate indices straight from a
     * CSR columns array (the ANT PE's SoA candidate stream). Identical
     * verdicts and counter charges to the int64 overload with each
     * index zero-extended; the partner-matching comparator bank is
     * where the AVX2 dispatch lives (8 lanes per vector vs 4 for the
     * int64 form).
     */
    FnirResult evaluate(std::span<const std::uint32_t> s_indices,
                        std::int64_t min, std::int64_t max,
                        CounterSet &counters) const;

    /**
     * The arbiter-select primitive: grant the lowest set bit of
     * @p request; returns the granted position via @p position /
     * @p valid and the request vector with that bit cleared.
     * Exposed for unit tests and the area model.
     */
    static std::uint64_t arbiterSelect(std::uint64_t request,
                                       std::uint32_t &position, bool &valid);

  private:
    /** Run the n+1 serial arbiter stages over a request mask. */
    FnirResult selectFromMask(std::uint64_t mask) const;

    std::uint32_t n_;
    std::uint32_t k_;
};

} // namespace antsim

#endif // ANTSIM_ANT_FNIR_HH
