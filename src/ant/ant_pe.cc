#include "ant_pe.hh"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <span>

#include "conv/census.hh"
#include "obs/trace.hh"
#include "sim/accumulator.hh"
#include "util/arena.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "verify/audit_hooks.hh"

#if defined(__x86_64__)
#define ANTSIM_X86_SIMD 1
#include <immintrin.h>
#endif

namespace antsim {

namespace {

/** A candidate kernel element with pre-resolved coordinates. */
struct Candidate
{
    float value;
    std::uint32_t s;
    std::uint32_t r;
};

/**
 * The windowed candidate stream in structure-of-arrays form: the FNIR
 * comparator bank reads s[] directly as one contiguous lane vector,
 * and the classify kernel gathers on s[]/r[] (64-byte-aligned via
 * AlignedVec).
 */
struct CandidateStream
{
    AlignedVec<float> value;
    AlignedVec<std::uint32_t> s;
    AlignedVec<std::uint32_t> r;

    std::size_t size() const { return s.size(); }
    bool empty() const { return s.empty(); }

    void
    clear()
    {
        value.clear();
        s.clear();
        r.clear();
    }
};

/**
 * Per-product validity classification of one image entry against a
 * group of selected candidates: returns how many of the first
 * @p count (s, r) pairs are valid partners of (x_row, y_row). Scalar
 * ground truth for the AVX2 gather kernel; the tables store strict
 * 0/1 bytes.
 */
std::uint32_t
classifyCountScalar(const std::uint8_t *x_row, const std::uint8_t *y_row,
                    const std::uint32_t *s, const std::uint32_t *r,
                    std::uint32_t count)
{
    std::uint32_t valid = 0;
    for (std::uint32_t j = 0; j < count; ++j)
        valid += (x_row[s[j]] && y_row[r[j]]) ? 1 : 0;
    return valid;
}

#ifdef ANTSIM_X86_SIMD

__attribute__((target("avx2"))) std::uint32_t
classifyCountAvx2(const std::uint8_t *x_row, const std::uint8_t *y_row,
                  const std::uint32_t *s, const std::uint32_t *r,
                  std::uint32_t count)
{
    const __m256i byte_mask = _mm256_set1_epi32(0xFF);
    const __m256i one = _mm256_set1_epi32(1);
    std::uint32_t valid = 0;
    std::uint32_t j = 0;
    for (; j + 8 <= count; j += 8) {
        // Byte-granularity gathers through 4-byte loads; the ValidTable
        // rows carry 3 slack bytes so the widest load stays in bounds.
        const __m256i sv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(s + j));
        const __m256i rv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(r + j));
        const __m256i xb = _mm256_and_si256(
            _mm256_i32gather_epi32(
                reinterpret_cast<const int *>(x_row), sv, 1),
            byte_mask);
        const __m256i yb = _mm256_and_si256(
            _mm256_i32gather_epi32(
                reinterpret_cast<const int *>(y_row), rv, 1),
            byte_mask);
        const __m256i both = _mm256_cmpeq_epi32(
            _mm256_and_si256(xb, yb), one);
        // antsim-lint: allow(counter-exactness) -- movemask_ps over an
        // integer compare bit-cast to float lanes: every lane is the
        // all-ones/all-zero epi32 mask, so the popcounted tally is
        // exact integer arithmetic, never a rounded float.
        valid += static_cast<unsigned>(__builtin_popcount(
            static_cast<unsigned>(_mm256_movemask_ps(
                _mm256_castsi256_ps(both)))));
    }
    for (; j < count; ++j)
        valid += (x_row[s[j]] && y_row[r[j]]) ? 1 : 0;
    return valid;
}

#endif // ANTSIM_X86_SIMD

std::uint32_t
classifyCount(const std::uint8_t *x_row, const std::uint8_t *y_row,
              const std::uint32_t *s, const std::uint32_t *r,
              std::uint32_t count)
{
#ifdef ANTSIM_X86_SIMD
    if (simd::avx2Enabled())
        return classifyCountAvx2(x_row, y_row, s, r, count);
#endif
    return classifyCountScalar(x_row, y_row, s, r, count);
}

/**
 * Row-pointer accesses the Kernel Indices Buffer controller needs to
 * delimit the row windows of a whole kernel stack: rows+1 boundary
 * pointers per kernel, packed contiguously four 16-bit pointers per
 * 64-bit access.
 */
std::uint64_t
rowPtrAccesses(std::uint64_t kernels, std::uint64_t rows)
{
    return (kernels * (rows + 1) + 3) / 4;
}

/**
 * Append the kernel rows inside [row_lo, row_hi] to the candidate
 * stream the Kernel Indices Buffer would deliver (row-pointer access
 * accounting is the caller's job via rowPtrAccesses).
 */
void
appendWindowedCandidates(const CsrMatrix &kernel, std::int64_t row_lo,
                         std::int64_t row_hi,
                         std::vector<Candidate> &candidates)
{
    if (row_lo > row_hi)
        return;
    const auto lo = static_cast<std::uint32_t>(row_lo);
    const auto hi = static_cast<std::uint32_t>(row_hi);

    const auto row_ptr = kernel.rowPtr();
    const auto columns = kernel.columns();
    const auto values = kernel.values();
    for (std::uint32_t r = lo; r <= hi; ++r) {
        for (std::uint32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i)
            candidates.push_back({values[i], columns[i], r});
    }
}

/**
 * SoA form of appendWindowedCandidates: the row window's values and
 * columns are contiguous CSR segments, so each plane contributes two
 * bulk copies plus a run-length row fill instead of per-entry pushes.
 * Same stream order, entry for entry.
 */
void
appendWindowedCandidatesSoA(const CsrMatrix &kernel, std::int64_t row_lo,
                            std::int64_t row_hi, CandidateStream &out)
{
    if (row_lo > row_hi)
        return;
    const auto lo = static_cast<std::uint32_t>(row_lo);
    const auto hi = static_cast<std::uint32_t>(row_hi);

    const auto row_ptr = kernel.rowPtr();
    const std::uint32_t begin = row_ptr[lo];
    const std::uint32_t end = row_ptr[hi + 1];
    out.value.append(kernel.values().data() + begin, end - begin);
    out.s.append(kernel.columns().data() + begin, end - begin);
    for (std::uint32_t r = lo; r <= hi; ++r)
        out.r.appendFill(r, row_ptr[r + 1] - row_ptr[r]);
}

/** Total non-zeros across a kernel stack. */
std::uint64_t
stackNnz(const std::vector<const CsrMatrix *> &kernels)
{
    std::uint64_t total = 0;
    for (const CsrMatrix *k : kernels)
        total += k->nnz();
    return total;
}

} // namespace

AntPe::AntPe(const AntPeConfig &config)
    : config_(config), fnir_(config.n, config.k)
{
    ANT_ASSERT(config_.n > 0, "multiplier array dimension must be positive");
    ANT_ASSERT(config_.k >= config_.n,
               "FNIR window k (", config_.k,
               ") should be at least the multiplier width n (", config_.n,
               ")");
}

PeResult
AntPe::runPair(const ProblemSpec &spec, const CsrMatrix &kernel,
               const CsrMatrix &image, bool collect_output)
{
    if (spec.kind() == ProblemSpec::Kind::Matmul) {
        const PeResult result =
            runMatmulPair(spec, kernel, image, collect_output);
        verify::auditPeRunOrPanic("ANT PE (matmul)", spec, {&kernel},
                                  image, result, ProductSpace::Cartesian);
        return result;
    }
    return runStack(spec, {&kernel}, image, collect_output);
}

PeResult
AntPe::runStack(const ProblemSpec &spec,
                const std::vector<const CsrMatrix *> &kernels,
                const CsrMatrix &image, bool collect_output)
{
    ANT_ASSERT(!kernels.empty(), "kernel stack must not be empty");
    ANT_ASSERT(spec.kind() == ProblemSpec::Kind::Conv,
               "kernel stacks are a convolution dataflow; use runPair "
               "for matmuls");
    const PeResult result = config_.dataflow == AntDataflow::KernelStationary
        ? runConvStackKernelStationary(spec, kernels, image, collect_output)
        : runConvStack(spec, kernels, image, collect_output);
    verify::auditPeRunOrPanic("ANT PE", spec, kernels, image, result,
                              ProductSpace::Cartesian);
    return result;
}

PeResult
AntPe::runConvStack(const ProblemSpec &spec,
                    const std::vector<const CsrMatrix *> &kernels,
                    const CsrMatrix &image, bool collect_output)
{
    PeResult result;
    CounterSet &c = result.counters;

    SramConfig index_cfg = config_.buffer;
    index_cfg.elementBits = 8; // 8-bit indices (Table 4)
    SramBuffer image_values("image values", config_.buffer,
                            Counter::SramValueReads);
    SramBuffer image_indices("image indices", index_cfg,
                             Counter::SramIndexReads);
    SramBuffer kernel_values("kernel values", config_.buffer,
                             Counter::SramValueReads);
    SramBuffer kernel_indices("kernel indices", index_cfg,
                              Counter::SramIndexReads);
    image_values.fill(image.nnz());
    image_indices.fill(image.nnz());

    std::unique_ptr<Accumulator> accumulator;
    if (collect_output)
        accumulator = std::make_unique<Accumulator>(spec,
                                                    config_.accumulatorBank);

    // Counting runs classify every issued product; the per-axis
    // validity tables replace the div/mod chain of spec.isValid in
    // that hot loop (identical verdicts, see conv/census.hh).
    std::optional<ValidTable> valid_table;
    if (!collect_output)
        valid_table.emplace(spec);

    const std::uint32_t n = config_.n;
    const std::uint32_t k = config_.k;
    const auto image_entries = image.entries();
    const std::uint64_t all_products =
        stackNnz(kernels) * static_cast<std::uint64_t>(image.nnz());

    obs::UnitRecorder *rec = obs::recorder();

    std::uint64_t cycles = config_.startupCycles;
    c.add(Counter::StartupCycles, config_.startupCycles);
    if (rec)
        rec->advance(obs::SpanKind::Startup, config_.startupCycles);

    std::uint64_t executed = 0;
    std::uint64_t valid = 0;
    std::uint64_t residual = 0;
    std::uint64_t index_elements_read = 0;
    std::uint64_t value_elements_read = 0;
    std::uint64_t groups = 0;
    CandidateStream candidates;
    // y is monotonic across image groups, so consecutive groups mostly
    // share one r window: memoize the last candidate stream instead of
    // re-walking the whole kernel stack per group. Counter-neutral --
    // the row-pointer walk is still charged per group below.
    std::int64_t cached_lo = 0;
    std::int64_t cached_hi = 0;
    bool cache_filled = false;
    // Selected (s, r) pairs of one window, compacted into lane arrays
    // for the classify kernel; the FNIR selects at most n <= 64 ports.
    alignas(32) std::uint32_t s_sel[64];
    alignas(32) std::uint32_t r_sel[64];

    for (std::size_t ib = 0; ib < image_entries.size(); ib += n) {
        const std::size_t ie = std::min(ib + n, image_entries.size());
        const auto igroup = static_cast<std::uint32_t>(ie - ib);
        ++groups;

        // Stage 1: fetch the image group (held stationary).
        image_values.read(igroup, c);
        image_indices.read(igroup, c);

        // Stages 2-3: range computation. y is monotonic in CSR order so
        // y_min/y_max are the first/last entries (Eq. 12); x needs a
        // min/max reduction tree over the group (Eq. 11).
        std::uint32_t x_min = image_entries[ib].x;
        std::uint32_t x_max = x_min;
        for (std::size_t i = ib + 1; i < ie; ++i) {
            x_min = std::min(x_min, image_entries[i].x);
            x_max = std::max(x_max, image_entries[i].x);
        }
        const std::uint32_t y_min = image_entries[ib].y;
        const std::uint32_t y_max = image_entries[ie - 1].y;
        // 2(n-1) compares for the x min/max tree, plus the four range
        // bound additions.
        c.add(Counter::IndexCompares, 2ull * (igroup - 1) + 4);

        const IndexRange s_range = config_.useSCondition
            ? spec.sRange(x_min, x_max)
            : IndexRange{std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max()};
        const IndexRange r_range = config_.useRCondition
            ? spec.rRange(y_min, y_max)
            : IndexRange{0, static_cast<std::int64_t>(spec.kernelH()) - 1};

        if (s_range.empty() || r_range.empty()) {
            // The ranges rule out the whole kernel stack; the group
            // still occupies the pipeline for one cycle.
            ++cycles;
            c.add(Counter::IdleScanCycles);
            if (rec)
                rec->advance(obs::SpanKind::IdleScan, 1);
            continue;
        }

        // The Kernel Indices Buffer controller streams only the rows
        // inside the r window (Sec. 4.3), across the whole kernel
        // stack back to back, at one row-pointer SRAM access per
        // cycle; for long stacks of small kernels this walk, not the
        // FNIR, bounds the group.
        if (!cache_filled || cached_lo != r_range.lo ||
            cached_hi != r_range.hi) {
            candidates.clear();
            for (const CsrMatrix *kernel : kernels) {
                appendWindowedCandidatesSoA(*kernel, r_range.lo,
                                            r_range.hi, candidates);
            }
            cached_lo = r_range.lo;
            cached_hi = r_range.hi;
            cache_filled = true;
        }
        // A *proper* row window (fewer rows than the kernel) requires
        // the pointer walk; a full window degenerates to sequential
        // streaming where the row structure arrives inline with the
        // index stream (as in the SCNN baseline), costing nothing
        // extra. This also covers the r-condition-off ablation.
        const bool proper_window =
            r_range.count() < static_cast<std::int64_t>(spec.kernelH());
        const std::uint64_t controller_cycles = proper_window
            ? rowPtrAccesses(kernels.size(),
                             static_cast<std::uint64_t>(
                                 r_range.hi - r_range.lo + 1))
            : 0;
        c.add(Counter::SramRowPtrReads, controller_cycles);

        if (candidates.empty()) {
            // The windowed rows hold no non-zeros: the group costs the
            // controller walk, with the FNIR idle throughout.
            cycles += std::max<std::uint64_t>(controller_cycles, 1);
            c.add(Counter::IdleScanCycles,
                  std::max<std::uint64_t>(controller_cycles, 1));
            if (rec) {
                rec->advance(obs::SpanKind::IdleScan,
                             std::max<std::uint64_t>(controller_cycles, 1));
            }
            continue;
        }

        std::uint64_t scan_cycles = 0;

        // Stages 4-5: FNIR scan with the n+1-st-index feedback. The
        // window is a contiguous slice of the SoA s[] array, handed to
        // the comparator bank without a per-entry copy.
        std::size_t pos = 0;
        while (pos < candidates.size()) {
            const std::size_t wend =
                std::min(pos + k, candidates.size());
            const auto wlen = static_cast<std::uint32_t>(wend - pos);

            // The buffer delivers k column indices per cycle.
            kernel_indices.read(wlen, c);
            index_elements_read += wlen;

            const FnirResult fnir = fnir_.evaluate(
                std::span<const std::uint32_t>(candidates.s.data() + pos,
                                               wlen),
                s_range.lo, s_range.hi, c);

            ++scan_cycles;
            const std::uint32_t selected = fnir.selectedCount();
            if (rec) {
                rec->hist(obs::HistId::FnirValidPartners, selected);
                rec->advance(selected == 0 ? obs::SpanKind::IdleScan
                                           : obs::SpanKind::Active,
                             1);
            }
            if (selected == 0) {
                c.add(Counter::IdleScanCycles);
            } else {
                c.add(Counter::ActiveCycles);
                // Stage 5-6: fetch the selected kernel values and issue
                // the outer product against the stationary image group.
                kernel_values.read(selected, c);
                value_elements_read += selected;
                executed += static_cast<std::uint64_t>(selected) * igroup;

                if (accumulator) {
                    accumulator->newIssueGroup();
                    for (std::uint32_t port = 0; port < selected;
                         ++port) {
                        const std::size_t cand =
                            pos + fnir.ports[port].position;
                        for (std::size_t i = ib; i < ie; ++i) {
                            const auto &img = image_entries[i];
                            accumulator->offer(img.value, img.x, img.y,
                                               candidates.value[cand],
                                               candidates.s[cand],
                                               candidates.r[cand], c);
                        }
                    }
                } else {
                    // Lean counting loop: compact the selected (s, r)
                    // pairs into lane arrays and classify each image
                    // entry against all of them at once. Same verdict
                    // per product as valid_table->valid in either
                    // iteration order; the totals are order-free.
                    for (std::uint32_t port = 0; port < selected;
                         ++port) {
                        const std::size_t cand =
                            pos + fnir.ports[port].position;
                        s_sel[port] = candidates.s[cand];
                        r_sel[port] = candidates.r[cand];
                    }
                    for (std::size_t i = ib; i < ie; ++i) {
                        const auto &img = image_entries[i];
                        const std::uint32_t ok = classifyCount(
                            valid_table->xOkRow(img.x),
                            valid_table->yOkRow(img.y), s_sel, r_sel,
                            selected);
                        valid += ok;
                        residual += selected - ok;
                    }
                }
            }

            // Feedback: resume at the n+1-st valid index when it
            // exists, otherwise skip the whole window.
            if (fnir.feedback().valid)
                pos += fnir.feedback().position;
            else
                pos = wend;
        }

        // The group takes whichever of the two serial streams is
        // longer; controller-bound groups idle the FNIR.
        const std::uint64_t group_cycles =
            std::max(scan_cycles, controller_cycles);
        cycles += group_cycles;
        if (group_cycles > scan_cycles) {
            c.add(Counter::IdleScanCycles, group_cycles - scan_cycles);
            if (rec) {
                rec->advance(obs::SpanKind::IdleScan,
                             group_cycles - scan_cycles);
            }
        }
    }

    c.add(Counter::MultsExecuted, executed);
    if (!accumulator) {
        // The functional path's accumulator recorded these itself.
        c.add(Counter::MultsValid, valid);
        c.add(Counter::MultsRcp, residual);
        c.add(Counter::OutputIndexCalcs, executed);
        c.add(Counter::AccumAdds, valid);
        c.add(Counter::SramWrites, valid);
    }

    // SRAM traffic avoided relative to streaming the full kernel
    // stack (values + indices) once per image group, as the SCNN PE
    // does.
    const std::uint64_t scnn_elements = 2ull * stackNnz(kernels) * groups;
    const std::uint64_t ant_elements =
        index_elements_read + value_elements_read;
    c.set(Counter::SramReadsAvoided,
          scnn_elements > ant_elements ? scnn_elements - ant_elements : 0);

    c.set(Counter::RcpsAvoided, all_products - executed);
    c.set(Counter::Cycles, cycles);
    if (accumulator)
        result.output = accumulator->output();
    return result;
}

PeResult
AntPe::runConvStackKernelStationary(
    const ProblemSpec &spec, const std::vector<const CsrMatrix *> &kernels,
    const CsrMatrix &image, bool collect_output)
{
    // Sec. 4.6: swap the Image and Kernel buffers and replace the s/r
    // range computations with x/y range computations. n kernel
    // non-zeros are held stationary; the image plane's rows inside the
    // y window stream through the FNIR, which screens x indices.
    PeResult result;
    CounterSet &c = result.counters;

    SramConfig index_cfg = config_.buffer;
    index_cfg.elementBits = 8; // 8-bit indices (Table 4)
    SramBuffer kernel_values("kernel values", config_.buffer,
                             Counter::SramValueReads);
    SramBuffer kernel_indices("kernel indices", index_cfg,
                              Counter::SramIndexReads);
    SramBuffer image_values("image values", config_.buffer,
                            Counter::SramValueReads);
    SramBuffer image_indices("image indices", index_cfg,
                             Counter::SramIndexReads);
    image_values.fill(image.nnz());
    image_indices.fill(image.nnz());

    std::unique_ptr<Accumulator> accumulator;
    if (collect_output)
        accumulator = std::make_unique<Accumulator>(spec,
                                                    config_.accumulatorBank);

    std::optional<ValidTable> valid_table;
    if (!collect_output)
        valid_table.emplace(spec);

    const std::uint32_t n = config_.n;
    const std::uint32_t k = config_.k;

    // The merged stationary stream: kernel entries of the whole stack.
    std::vector<Candidate> kernel_stream;
    kernel_stream.reserve(stackNnz(kernels));
    for (const CsrMatrix *kernel : kernels) {
        for (const SparseEntry &e : kernel->entries())
            kernel_stream.push_back({e.value, e.x, e.y});
    }
    const std::uint64_t all_products =
        static_cast<std::uint64_t>(kernel_stream.size()) * image.nnz();

    obs::UnitRecorder *rec = obs::recorder();

    std::uint64_t cycles = config_.startupCycles;
    c.add(Counter::StartupCycles, config_.startupCycles);
    if (rec)
        rec->advance(obs::SpanKind::Startup, config_.startupCycles);

    std::uint64_t executed = 0;
    std::uint64_t valid = 0;
    std::uint64_t residual = 0;
    std::uint64_t elements_read = 0;
    std::uint64_t groups = 0;
    std::vector<Candidate> candidates;
    // Consecutive kernel groups often share one y window: memoize the
    // windowed image stream (counter-neutral, as in runConvStack).
    std::int64_t cached_lo = 0;
    std::int64_t cached_hi = 0;
    bool cache_filled = false;
    std::vector<std::int64_t> window;
    window.reserve(k);

    for (std::size_t kb = 0; kb < kernel_stream.size(); kb += n) {
        const std::size_t ke = std::min(kb + n, kernel_stream.size());
        const auto kgroup = static_cast<std::uint32_t>(ke - kb);
        ++groups;

        kernel_values.read(kgroup, c);
        kernel_indices.read(kgroup, c);

        // x/y range computation from the stationary kernel group. The
        // merged stream's r is not monotonic across kernel-plane
        // boundaries, so both axes need min/max trees.
        std::uint32_t s_min = kernel_stream[kb].s;
        std::uint32_t s_max = s_min;
        std::uint32_t r_min = kernel_stream[kb].r;
        std::uint32_t r_max = r_min;
        for (std::size_t i = kb + 1; i < ke; ++i) {
            s_min = std::min(s_min, kernel_stream[i].s);
            s_max = std::max(s_max, kernel_stream[i].s);
            r_min = std::min(r_min, kernel_stream[i].r);
            r_max = std::max(r_max, kernel_stream[i].r);
        }
        c.add(Counter::IndexCompares, 4ull * (kgroup - 1) + 4);

        const IndexRange x_range = config_.useSCondition
            ? spec.xRange(s_min, s_max)
            : IndexRange{std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max()};
        const IndexRange y_window = config_.useRCondition
            ? spec.yRange(r_min, r_max)
            : IndexRange{0, static_cast<std::int64_t>(spec.imageH()) - 1};

        if (x_range.empty() || y_window.empty()) {
            ++cycles;
            c.add(Counter::IdleScanCycles);
            if (rec)
                rec->advance(obs::SpanKind::IdleScan, 1);
            continue;
        }

        // The controller walks the image's row pointers over the y
        // window (one matrix, so the walk is short).
        if (!cache_filled || cached_lo != y_window.lo ||
            cached_hi != y_window.hi) {
            candidates.clear();
            appendWindowedCandidates(image, y_window.lo, y_window.hi,
                                     candidates);
            cached_lo = y_window.lo;
            cached_hi = y_window.hi;
            cache_filled = true;
        }
        const bool proper_window =
            y_window.count() < static_cast<std::int64_t>(spec.imageH());
        const std::uint64_t controller_cycles = proper_window
            ? rowPtrAccesses(1, static_cast<std::uint64_t>(
                                    y_window.hi - y_window.lo + 1))
            : 0;
        c.add(Counter::SramRowPtrReads, controller_cycles);

        if (candidates.empty()) {
            cycles += std::max<std::uint64_t>(controller_cycles, 1);
            c.add(Counter::IdleScanCycles,
                  std::max<std::uint64_t>(controller_cycles, 1));
            if (rec) {
                rec->advance(obs::SpanKind::IdleScan,
                             std::max<std::uint64_t>(controller_cycles, 1));
            }
            continue;
        }

        std::uint64_t scan_cycles = 0;
        std::size_t pos = 0;
        while (pos < candidates.size()) {
            const std::size_t wend = std::min(pos + k, candidates.size());
            window.clear();
            for (std::size_t i = pos; i < wend; ++i)
                window.push_back(candidates[i].s); // image x index

            image_indices.read(static_cast<std::uint32_t>(window.size()),
                               c);
            const FnirResult fnir =
                fnir_.evaluate(window, x_range.lo, x_range.hi, c);

            ++scan_cycles;
            const std::uint32_t selected = fnir.selectedCount();
            if (rec) {
                rec->hist(obs::HistId::FnirValidPartners, selected);
                rec->advance(selected == 0 ? obs::SpanKind::IdleScan
                                           : obs::SpanKind::Active,
                             1);
            }
            if (selected == 0) {
                c.add(Counter::IdleScanCycles);
            } else {
                c.add(Counter::ActiveCycles);
                image_values.read(selected, c);
                elements_read += selected;
                executed += static_cast<std::uint64_t>(selected) * kgroup;

                if (accumulator)
                    accumulator->newIssueGroup();
                for (std::uint32_t port = 0; port < selected; ++port) {
                    // Candidate coordinates: s holds the image x, r the
                    // image y (appendWindowedCandidates reads a generic
                    // CSR, here the image plane).
                    const auto &img =
                        candidates[pos + fnir.ports[port].position];
                    for (std::size_t i = kb; i < ke; ++i) {
                        const auto &ker = kernel_stream[i];
                        if (accumulator) {
                            accumulator->offer(img.value, img.s, img.r,
                                               ker.value, ker.s, ker.r, c);
                        } else if (valid_table->valid(img.s, img.r, ker.s,
                                                      ker.r)) {
                            ++valid;
                        } else {
                            ++residual;
                        }
                    }
                }
            }

            if (fnir.feedback().valid)
                pos += fnir.feedback().position;
            else
                pos = wend;
        }

        const std::uint64_t group_cycles =
            std::max(scan_cycles, controller_cycles);
        cycles += group_cycles;
        if (group_cycles > scan_cycles) {
            c.add(Counter::IdleScanCycles, group_cycles - scan_cycles);
            if (rec) {
                rec->advance(obs::SpanKind::IdleScan,
                             group_cycles - scan_cycles);
            }
        }
    }

    c.add(Counter::MultsExecuted, executed);
    if (!accumulator) {
        c.add(Counter::MultsValid, valid);
        c.add(Counter::MultsRcp, residual);
        c.add(Counter::OutputIndexCalcs, executed);
        c.add(Counter::AccumAdds, valid);
        c.add(Counter::SramWrites, valid);
    }

    const std::uint64_t scnn_elements = 2ull * image.nnz() * groups;
    c.set(Counter::SramReadsAvoided,
          scnn_elements > elements_read ? scnn_elements - elements_read
                                        : 0);
    c.set(Counter::RcpsAvoided, all_products - executed);
    c.set(Counter::Cycles, cycles);
    if (accumulator)
        result.output = accumulator->output();
    return result;
}

PeResult
AntPe::runMatmulPair(const ProblemSpec &spec, const CsrMatrix &kernel,
                     const CsrMatrix &image, bool collect_output)
{
    PeResult result;
    CounterSet &c = result.counters;

    SramConfig index_cfg = config_.buffer;
    index_cfg.elementBits = 8; // 8-bit indices (Table 4)
    SramBuffer image_values("image values", config_.buffer,
                            Counter::SramValueReads);
    SramBuffer image_indices("image indices", index_cfg,
                             Counter::SramIndexReads);
    SramBuffer kernel_values("kernel values", config_.buffer,
                             Counter::SramValueReads);
    SramBuffer kernel_indices("kernel indices", index_cfg,
                              Counter::SramIndexReads);
    image_values.fill(image.nnz());
    image_indices.fill(image.nnz());

    Accumulator accumulator(spec, config_.accumulatorBank);

    const std::uint32_t n = config_.n;
    // CSC traversal: a group of n consecutive entries shares one (or a
    // few adjacent) column(s), so the kernel-row window [x_0, x_{n-1}]
    // is tight (Sec. 5, Eq. 15).
    const CscMatrix csc = CscMatrix::fromCsr(image);
    std::vector<SparseEntry> image_entries;
    image_entries.reserve(csc.nnz());
    for (std::uint32_t i = 0; i < csc.nnz(); ++i)
        image_entries.push_back(csc.entry(i));

    const std::uint64_t all_products =
        static_cast<std::uint64_t>(kernel.nnz()) *
        static_cast<std::uint64_t>(image.nnz());

    obs::UnitRecorder *rec = obs::recorder();

    std::uint64_t cycles = config_.startupCycles;
    c.add(Counter::StartupCycles, config_.startupCycles);
    if (rec)
        rec->advance(obs::SpanKind::Startup, config_.startupCycles);
    std::uint64_t executed = 0;
    std::uint64_t elements_read = 0;
    std::uint64_t groups = 0;
    std::vector<Candidate> candidates;
    // The CSC x sequence is monotonic, so consecutive groups mostly
    // share one row window: memoize the windowed kernel stream.
    std::int64_t cached_lo = 0;
    std::int64_t cached_hi = 0;
    bool cache_filled = false;

    for (std::size_t ib = 0; ib < image_entries.size(); ib += n) {
        const std::size_t ie = std::min(ib + n, image_entries.size());
        const auto igroup = static_cast<std::uint32_t>(ie - ib);
        ++groups;

        image_values.read(igroup, c);
        image_indices.read(igroup, c);

        // Row window from the group's column extremes (Eq. 15). The x
        // sequence is monotonic in CSC order.
        const IndexRange row_window = spec.matmulRowRange(
            image_entries[ib].x, image_entries[ie - 1].x);
        c.add(Counter::IndexCompares, 2);

        if (!cache_filled || cached_lo != row_window.lo ||
            cached_hi != row_window.hi) {
            candidates.clear();
            appendWindowedCandidates(kernel, row_window.lo, row_window.hi,
                                     candidates);
            cached_lo = row_window.lo;
            cached_hi = row_window.hi;
            cache_filled = true;
        }
        if (!row_window.empty()) {
            c.add(Counter::SramRowPtrReads,
                  rowPtrAccesses(1, static_cast<std::uint64_t>(
                                        row_window.hi - row_window.lo +
                                        1)));
        }
        if (candidates.empty()) {
            ++cycles;
            c.add(Counter::IdleScanCycles);
            if (rec)
                rec->advance(obs::SpanKind::IdleScan, 1);
            continue;
        }

        // FNIR bypassed: the buffer streams n kernel entries per cycle.
        for (std::size_t kb = 0; kb < candidates.size(); kb += n) {
            const std::size_t ke = std::min(kb + n, candidates.size());
            const auto kgroup = static_cast<std::uint32_t>(ke - kb);
            kernel_indices.read(kgroup, c);
            kernel_values.read(kgroup, c);
            elements_read += 2ull * kgroup;

            ++cycles;
            c.add(Counter::ActiveCycles);
            if (rec)
                rec->advance(obs::SpanKind::Active, 1);
            c.add(Counter::MultsExecuted,
                  static_cast<std::uint64_t>(kgroup) * igroup);
            executed += static_cast<std::uint64_t>(kgroup) * igroup;

            accumulator.newIssueGroup();
            for (std::size_t kk = kb; kk < ke; ++kk) {
                const auto &cand = candidates[kk];
                for (std::size_t i = ib; i < ie; ++i) {
                    const auto &img = image_entries[i];
                    accumulator.offer(img.value, img.x, img.y, cand.value,
                                      cand.s, cand.r, c);
                }
            }
        }
    }

    const std::uint64_t scnn_elements = 2ull * kernel.nnz() * groups;
    c.set(Counter::SramReadsAvoided,
          scnn_elements > elements_read ? scnn_elements - elements_read
                                        : 0);
    c.set(Counter::RcpsAvoided, all_products - executed);
    c.set(Counter::Cycles, cycles);
    if (collect_output)
        result.output = accumulator.output();
    return result;
}

} // namespace antsim
