/**
 * @file
 * Analytic area/delay model of the FNIR block (Sec. 7.5-7.6).
 *
 * The paper synthesizes the FNIR block in RTL with FreePDK45, scales to
 * 15 nm and adds 50% wire overhead, reporting 0.0017 mm^2 for the
 * default n=4, k=16 configuration -- 21.25% of the 4x4 multiplier
 * array's area. We reproduce that scale with a gate-count model:
 *
 *  - k comparator lanes, each two B-bit magnitude comparators
 *    (~6 gate-equivalents per bit per comparator);
 *  - n+1 serial Arbiter Select stages, each a k-wide fixed-priority
 *    arbiter (~4 GE per lane) plus a k-to-log2(k) one-hot encoder
 *    (~ceil(log2 k) GE per lane) and the mask-clear AND row;
 *  - output registers for the n+1 position/valid ports.
 *
 * Gate-equivalent area is calibrated so the default configuration
 * lands at the paper's 0.0017 mm^2 (including the 50% wire overhead),
 * making the model's value the *scaling trends*: area grows linearly
 * in k and n, and the critical path grows with the serial arbiter
 * depth (n+1 stages), which is the Sec. 7.6 argument for preferring
 * more PEs over bigger PEs.
 */

#ifndef ANTSIM_ANT_AREA_MODEL_HH
#define ANTSIM_ANT_AREA_MODEL_HH

#include <cstdint>

namespace antsim {

/** Area/delay estimate for one FNIR configuration. */
struct FnirAreaEstimate
{
    std::uint64_t gateEquivalents = 0;
    /** Area in mm^2 at the 15 nm node, incl. 50% wire overhead. */
    double areaMm2 = 0.0;
    /** Critical-path depth in gate levels (comparator + arbiters). */
    std::uint32_t criticalPathGates = 0;
    /** FNIR area as a fraction of an n x n bf16 multiplier array. */
    double fractionOfMultiplierArray = 0.0;
};

/** Parameters of the area model. */
struct AreaModelParams
{
    /** Index bit width (Table 4: 8-bit indices). */
    std::uint32_t indexBits = 8;
    /**
     * mm^2 per gate-equivalent at 15 nm including the 50% wire
     * overhead; calibrated so (n=4, k=16) = 0.0017 mm^2.
     */
    double mm2PerGate = 0.0;
    /** Gate-equivalents of one bf16 multiplier (for the ratio). */
    std::uint64_t multiplierGates = 1180;

    /** Default-calibrated parameters. */
    static AreaModelParams calibrated();
};

/** Estimate FNIR area/delay for a given (n, k). */
FnirAreaEstimate estimateFnirArea(std::uint32_t n, std::uint32_t k,
                                  const AreaModelParams &params =
                                      AreaModelParams::calibrated());

} // namespace antsim

#endif // ANTSIM_ANT_AREA_MODEL_HH
