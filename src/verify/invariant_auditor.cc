#include "invariant_auditor.hh"

#include <cmath>
#include <sstream>

namespace antsim {

namespace {

/** |a - b| for unsigned operands. */
std::uint64_t
absDiff(std::uint64_t a, std::uint64_t b)
{
    return a > b ? a - b : b - a;
}

/** Escape a string for embedding in a JSON literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += ch;
        }
    }
    return out;
}

/** Record a violation of @p law with a streamed detail message. */
template <typename... Args>
void
flag(AuditReport &report, const char *law, Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    report.violations.push_back({law, oss.str()});
}

/** Check lhs == rhs up to @p slack and record @p law otherwise. */
void
requireEqual(AuditReport &report, const char *law, const char *lhs_name,
             std::uint64_t lhs, const char *rhs_name, std::uint64_t rhs,
             std::uint64_t slack)
{
    if (absDiff(lhs, rhs) > slack) {
        flag(report, law, lhs_name, " = ", lhs, " but ", rhs_name, " = ",
             rhs, (slack > 0 ? " (slack exceeded)" : ""));
    }
}

} // namespace

AuditReport &
AuditReport::operator+=(const AuditReport &other)
{
    violations.insert(violations.end(), other.violations.begin(),
                      other.violations.end());
    return *this;
}

std::string
AuditReport::toString() const
{
    if (ok())
        return "all invariants hold";
    std::ostringstream oss;
    oss << violations.size() << " invariant violation"
        << (violations.size() == 1 ? "" : "s") << ":\n";
    for (const InvariantViolation &v : violations)
        oss << "  [" << v.law << "] " << v.detail << '\n';
    return oss.str();
}

std::string
AuditReport::toJson() const
{
    std::ostringstream oss;
    oss << '[';
    for (std::size_t i = 0; i < violations.size(); ++i) {
        if (i > 0)
            oss << ',';
        oss << "{\"law\":\"" << jsonEscape(violations[i].law)
            << "\",\"detail\":\"" << jsonEscape(violations[i].detail)
            << "\"}";
    }
    oss << ']';
    return oss.str();
}

AuditReport
InvariantAuditor::auditCounters(const CounterSet &counters,
                                const AuditScope &scope) const
{
    AuditReport report;

    const std::uint64_t executed = counters.get(Counter::MultsExecuted);
    const std::uint64_t valid = counters.get(Counter::MultsValid);
    const std::uint64_t rcp = counters.get(Counter::MultsRcp);
    const std::uint64_t avoided = counters.get(Counter::RcpsAvoided);

    // Sec. 6.1 counting rule: every executed multiply is either valid
    // or a (residual) RCP -- nothing may vanish from the census.
    requireEqual(report, "mults-split", "MultsExecuted", executed,
                 "MultsValid + MultsRcp", valid + rcp, scope.slack);

    // Each valid product accumulates exactly once (Sec. 6.1).
    requireEqual(report, "accum-valid", "AccumAdds",
                 counters.get(Counter::AccumAdds), "MultsValid", valid,
                 scope.slack);

    // Sec. 4 cycle model: a PE cycle is start-up, active issue, or an
    // idle scan advance -- the three phases partition the total.
    const std::uint64_t phase_sum = counters.get(Counter::StartupCycles) +
        counters.get(Counter::ActiveCycles) +
        counters.get(Counter::IdleScanCycles);
    requireEqual(report, "cycle-split",
                 "StartupCycles + ActiveCycles + IdleScanCycles",
                 phase_sum, "Cycles", counters.get(Counter::Cycles),
                 scope.slack);

    if (scope.space == ProductSpace::Cartesian) {
        // Outer-product machines compute one output index per executed
        // product (the accumulator is the final validity authority).
        requireEqual(report, "index-calcs", "OutputIndexCalcs",
                     counters.get(Counter::OutputIndexCalcs),
                     "MultsExecuted", executed, scope.slack);

        // Conservation of the trace's product space: executed plus
        // anticipated-away products reconstruct nnzK * nnzI exactly.
        if (scope.totalProducts) {
            requireEqual(report, "product-total",
                         "MultsExecuted + RcpsAvoided", executed + avoided,
                         "trace nonzero products", *scope.totalProducts,
                         scope.slack);
        }

        // RCPs (suffered or avoided) are a subset of the dense
        // cartesian product space.
        if (scope.denseProducts &&
            avoided + rcp > *scope.denseProducts + scope.slack) {
            flag(report, "rcp-bound", "RcpsAvoided + MultsRcp = ",
                 avoided + rcp, " exceeds dense cartesian products = ",
                 *scope.denseProducts);
        }
    } else if (scope.space == ProductSpace::InnerProduct) {
        // Inner-product machines map every MAC to its output: there is
        // no RCP to suffer or to avoid (Sec. 7.7).
        if (rcp != 0 || avoided != 0) {
            flag(report, "no-rcp-space", "inner-product model reports "
                 "MultsRcp = ", rcp, ", RcpsAvoided = ", avoided,
                 " (both must be zero)");
        }
    }

    // Energy attribution must be physical: finite and non-negative for
    // every component.
    const EnergyBreakdown energy = energy_.evaluate(counters);
    const double components[] = {energy.multiplyPj, energy.accumulatePj,
                                 energy.indexLogicPj, energy.sramPj};
    const char *component_names[] = {"multiply", "accumulate",
                                     "index-logic", "sram"};
    for (std::size_t i = 0; i < 4; ++i) {
        if (!std::isfinite(components[i]) || components[i] < 0.0) {
            flag(report, "energy", component_names[i],
                 " energy is non-physical: ", components[i], " pJ");
        }
    }

    return report;
}

AuditReport
InvariantAuditor::auditCsrArrays(std::uint32_t height, std::uint32_t width,
                                 std::span<const float> values,
                                 std::span<const std::uint32_t> columns,
                                 std::span<const std::uint32_t> row_ptr)
    const
{
    AuditReport report;

    if (row_ptr.size() != static_cast<std::size_t>(height) + 1) {
        flag(report, "csr-row-ptr", "row-pointer array has ",
             row_ptr.size(), " entries, want height + 1 = ", height + 1);
        return report; // The remaining checks index row_ptr.
    }
    if (row_ptr.front() != 0) {
        flag(report, "csr-row-ptr", "row_ptr[0] = ", row_ptr.front(),
             ", want 0");
    }
    for (std::uint32_t y = 0; y < height; ++y) {
        if (row_ptr[y + 1] < row_ptr[y]) {
            flag(report, "csr-row-ptr", "row_ptr decreases at row ", y,
                 ": ", row_ptr[y], " -> ", row_ptr[y + 1]);
        }
    }
    if (values.size() != columns.size()) {
        flag(report, "csr-nnz", "values has ", values.size(),
             " entries but columns has ", columns.size());
    }
    if (row_ptr.back() != values.size()) {
        flag(report, "csr-nnz", "row_ptr.back() = ", row_ptr.back(),
             " but values holds ", values.size(), " entries");
    }

    const std::size_t positions =
        std::min(values.size(),
                 static_cast<std::size_t>(row_ptr.back()));
    for (std::uint32_t y = 0; y < height; ++y) {
        const std::uint32_t begin = row_ptr[y];
        const std::uint32_t end =
            std::min<std::uint32_t>(row_ptr[y + 1],
                                    static_cast<std::uint32_t>(positions));
        for (std::uint32_t i = begin; i < end && i < columns.size(); ++i) {
            if (columns[i] >= width) {
                flag(report, "csr-columns", "row ", y, " stores column ",
                     columns[i], " outside width ", width);
            }
            if (i > begin && columns[i] <= columns[i - 1]) {
                flag(report, "csr-columns", "row ", y,
                     " columns not strictly increasing: ", columns[i - 1],
                     " then ", columns[i]);
            }
        }
    }
    return report;
}

AuditReport
InvariantAuditor::auditCsr(const CsrMatrix &matrix) const
{
    return auditCsrArrays(matrix.height(), matrix.width(), matrix.values(),
                          matrix.columns(), matrix.rowPtr());
}

AuditReport
InvariantAuditor::auditOutput(const ProblemSpec &spec,
                              const Dense2d<double> &output) const
{
    AuditReport report;
    if (output.height() != spec.outH() || output.width() != spec.outW()) {
        flag(report, "output-shape", "output plane is ", output.height(),
             "x", output.width(), ", spec wants ", spec.outH(), "x",
             spec.outW());
        return report;
    }
    for (std::size_t i = 0; i < output.data().size(); ++i) {
        if (!std::isfinite(output.data()[i])) {
            flag(report, "output-finite", "output element ", i, " is ",
                 output.data()[i]);
            return report; // One NaN implies many; report the first.
        }
    }
    return report;
}

AuditReport
InvariantAuditor::auditPeRun(const ProblemSpec &spec,
                             const std::vector<const CsrMatrix *> &kernels,
                             const CsrMatrix &image, const PeResult &result,
                             ProductSpace space) const
{
    AuditReport report;
    std::uint64_t kernel_nnz = 0;
    for (const CsrMatrix *kernel : kernels) {
        report += auditCsr(*kernel);
        kernel_nnz += kernel->nnz();
    }
    report += auditCsr(image);

    AuditScope scope;
    scope.space = space;
    if (space == ProductSpace::Cartesian) {
        scope.totalProducts = kernel_nnz * image.nnz();
        scope.denseProducts =
            spec.denseCartesianProducts() * kernels.size();
    }
    report += auditCounters(result.counters, scope);

    if (result.output.size() > 0)
        report += auditOutput(spec, result.output);
    return report;
}

} // namespace antsim
