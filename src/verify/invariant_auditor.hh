/**
 * @file
 * Machine-checked conservation laws over the simulator's counters.
 *
 * The paper's headline results (Tables 2/3/5, Figs 9-14) are counter
 * bookkeeping: every eliminated RCP must be provably *accounted for*,
 * not merely *not executed*. The InvariantAuditor encodes the counting
 * rules of Sec. 4 (cycle model) and Sec. 6.1 (counting methodology) as
 * explicit laws over a CounterSet + ProblemSpec pair:
 *
 *  - mults-split:     MultsExecuted == MultsValid + MultsRcp
 *  - rcp-bound:       RcpsAvoided + MultsRcp <= dense cartesian count
 *  - product-total:   MultsExecuted + RcpsAvoided == nnzK * nnzI
 *                     (cartesian-product machines only)
 *  - cycle-split:     StartupCycles + ActiveCycles + IdleScanCycles
 *                     == Cycles
 *  - accum-valid:     AccumAdds == MultsValid
 *  - index-calcs:     OutputIndexCalcs == MultsExecuted (outer-product
 *                     machines compute one output index per product)
 *  - no-rcp-space:    inner-product machines report zero MultsRcp and
 *                     zero RcpsAvoided (every MAC maps to its output)
 *  - energy:          every energy component is finite and >= 0
 *
 * plus structural CSR validity (monotone row pointers, sorted in-range
 * columns, nnz consistency) and output-plane finiteness. Violations
 * come back as a machine-readable AuditReport rather than a panic so
 * that tests can assert on them; the auditOrPanic() hooks used by the
 * models panic with the rendered report.
 *
 * Exact equalities only hold on un-scaled counter sets. Counter sets
 * that went through CounterSet::scale() carry per-counter rounding, so
 * the laws accept an absolute slack (AuditScope::slack) sized by the
 * caller from the number of scaled sets that were summed.
 */

#ifndef ANTSIM_VERIFY_INVARIANT_AUDITOR_HH
#define ANTSIM_VERIFY_INVARIANT_AUDITOR_HH

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "conv/problem_spec.hh"
#include "sim/energy.hh"
#include "sim/pe_model.hh"
#include "tensor/csr.hh"
#include "tensor/matrix.hh"
#include "util/counters.hh"

namespace antsim {

/** One violated conservation law. */
struct InvariantViolation
{
    /** Stable law identifier (e.g. "mults-split", "csr-row-ptr"). */
    std::string law;
    /** Human-readable explanation including the offending values. */
    std::string detail;
};

/** Outcome of one audit: empty means every law held. */
struct AuditReport
{
    std::vector<InvariantViolation> violations;

    /** True when no law was violated. */
    bool ok() const { return violations.empty(); }

    /** Merge another report's violations into this one. */
    AuditReport &operator+=(const AuditReport &other);

    /** Multi-line human-readable rendering ("all invariants hold"
     *  when ok()). */
    std::string toString() const;

    /** Machine-readable JSON array of {law, detail} objects. */
    std::string toJson() const;
};

/** How a model's executed-product space relates to its operands. */
enum class ProductSpace
{
    /** Outer-product machines: the nnzK x nnzI cartesian product. */
    Cartesian,
    /** Inner-product machines: MACs only, no RCPs by construction. */
    InnerProduct,
    /** Aggregates over heterogeneous models: universal laws only. */
    Mixed,
};

/** Context for auditing one counter set. */
struct AuditScope
{
    ProductSpace space = ProductSpace::Cartesian;
    /** Total non-zero cartesian products of the trace (nnzK * nnzI),
     *  when known; enables the product-total law. */
    std::optional<std::uint64_t> totalProducts;
    /** Dense cartesian product count (R*S*H*W summed over kernel
     *  planes), when known; enables the rcp-bound law. */
    std::optional<std::uint64_t> denseProducts;
    /** Absolute tolerance for the additive laws: 0 for raw counter
     *  sets, >0 for sets that went through rational scaling. */
    std::uint64_t slack = 0;
};

/** Checks conservation laws and structural invariants. */
class InvariantAuditor
{
  public:
    explicit InvariantAuditor(const EnergyModel &energy = EnergyModel{})
        : energy_(energy)
    {}

    /** Audit the counter laws of one counter set under @p scope. */
    AuditReport auditCounters(const CounterSet &counters,
                              const AuditScope &scope) const;

    /** Audit the structural invariants of a CSR matrix. */
    AuditReport auditCsr(const CsrMatrix &matrix) const;

    /**
     * Audit raw CSR arrays directly (the path tests use to feed
     * deliberately malformed structures, which CsrMatrix refuses to
     * construct).
     */
    AuditReport auditCsrArrays(std::uint32_t height, std::uint32_t width,
                               std::span<const float> values,
                               std::span<const std::uint32_t> columns,
                               std::span<const std::uint32_t> row_ptr)
        const;

    /** Audit an output plane: shape matches the spec, values finite. */
    AuditReport auditOutput(const ProblemSpec &spec,
                            const Dense2d<double> &output) const;

    /**
     * Full audit of one PE execution: operand CSR structure, counter
     * laws scoped by the trace's product counts, and (when collected)
     * the output plane.
     */
    AuditReport auditPeRun(const ProblemSpec &spec,
                           const std::vector<const CsrMatrix *> &kernels,
                           const CsrMatrix &image, const PeResult &result,
                           ProductSpace space) const;

  private:
    EnergyModel energy_;
};

} // namespace antsim

#endif // ANTSIM_VERIFY_INVARIANT_AUDITOR_HH
