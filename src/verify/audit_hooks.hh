/**
 * @file
 * Self-check entry points the accelerator models call after every run.
 *
 * Each hook is a no-op unless audit::enabled() (src/util/audit.hh) is
 * set -- one relaxed atomic load on the disabled path -- and panics
 * with the rendered AuditReport when a conservation law is violated,
 * so a broken refactor fails the offending test or bench run rather
 * than silently skewing a table.
 *
 * The hooks take plain data (counters, operands, raw product counts)
 * rather than model types so that verify stays below the model
 * libraries in the dependency order: scnn/ant/baselines/workload link
 * ant_verify, never the reverse.
 */

#ifndef ANTSIM_VERIFY_AUDIT_HOOKS_HH
#define ANTSIM_VERIFY_AUDIT_HOOKS_HH

#include <cstdint>
#include <vector>

#include "verify/invariant_auditor.hh"

namespace antsim {
namespace verify {

/**
 * Audit one PE execution (operand structure, counter laws, output
 * plane); panics with the report on violation. @p model names the
 * offender in the panic message.
 */
void auditPeRunOrPanic(const char *model, const ProblemSpec &spec,
                       const std::vector<const CsrMatrix *> &kernels,
                       const CsrMatrix &image, const PeResult &result,
                       ProductSpace space);

/**
 * Audit the product census of a tick-accurate pipeline run:
 * executed == valid + residual RCPs, and executed within the trace's
 * nnzK x nnzI product space.
 */
void auditPipelineCountsOrPanic(const char *model, std::uint64_t executed,
                                std::uint64_t valid,
                                std::uint64_t residual_rcps,
                                std::uint64_t total_products);

/**
 * Audit an aggregated counter set (universal laws only, since the sum
 * may span cartesian and inner-product models). @p slack absorbs the
 * per-counter rounding of CounterSet::scale(): pass 2 per scaled set
 * summed into @p counters, 0 for raw sums.
 */
void auditAggregateOrPanic(const char *what, const CounterSet &counters,
                           std::uint64_t slack);

} // namespace verify
} // namespace antsim

#endif // ANTSIM_VERIFY_AUDIT_HOOKS_HH
