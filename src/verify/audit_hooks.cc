#include "audit_hooks.hh"

#include "util/audit.hh"
#include "util/logging.hh"

namespace antsim {
namespace verify {

void
auditPeRunOrPanic(const char *model, const ProblemSpec &spec,
                  const std::vector<const CsrMatrix *> &kernels,
                  const CsrMatrix &image, const PeResult &result,
                  ProductSpace space)
{
    if (!audit::enabled())
        return;
    const InvariantAuditor auditor;
    const AuditReport report =
        auditor.auditPeRun(spec, kernels, image, result, space);
    if (!report.ok()) {
        ANT_PANIC("invariant audit failed for ", model, " on ",
                  spec.toString(), ":\n", report.toString(),
                  "counters:\n", result.counters.toString());
    }
}

void
auditPipelineCountsOrPanic(const char *model, std::uint64_t executed,
                           std::uint64_t valid,
                           std::uint64_t residual_rcps,
                           std::uint64_t total_products)
{
    if (!audit::enabled())
        return;
    AuditReport report;
    if (executed != valid + residual_rcps) {
        report.violations.push_back(
            {"mults-split",
             "executed = " + std::to_string(executed) +
                 " but valid + residual = " +
                 std::to_string(valid + residual_rcps)});
    }
    if (executed > total_products) {
        report.violations.push_back(
            {"product-total",
             "executed = " + std::to_string(executed) +
                 " exceeds trace nonzero products = " +
                 std::to_string(total_products)});
    }
    if (!report.ok()) {
        ANT_PANIC("invariant audit failed for ", model, ":\n",
                  report.toString());
    }
}

void
auditAggregateOrPanic(const char *what, const CounterSet &counters,
                      std::uint64_t slack)
{
    if (!audit::enabled())
        return;
    const InvariantAuditor auditor;
    AuditScope scope;
    scope.space = ProductSpace::Mixed;
    scope.slack = slack;
    const AuditReport report = auditor.auditCounters(counters, scope);
    if (!report.ok()) {
        ANT_PANIC("invariant audit failed for ", what, ":\n",
                  report.toString(), "counters:\n", counters.toString());
    }
}

} // namespace verify
} // namespace antsim
