#include "clock.hh"

namespace antsim {

void
Simulator::tick()
{
    for (Module *m : modules_)
        m->evaluate();
    for (Module *m : modules_)
        m->commit();
    ++cycle_;
}

void
Simulator::run(std::uint64_t cycles)
{
    for (std::uint64_t i = 0; i < cycles; ++i)
        tick();
}

} // namespace antsim
