#include "accumulator.hh"

#include "obs/trace.hh"

namespace antsim {

Accumulator::Accumulator(const ProblemSpec &spec,
                         const SramConfig &bank_config)
    : spec_(spec), output_(spec.outH(), spec.outW()),
      bank_("accumulator bank", bank_config, Counter::SramWrites)
{}

bool
Accumulator::offer(float image_value, std::uint32_t x, std::uint32_t y,
                   float kernel_value, std::uint32_t s, std::uint32_t r,
                   CounterSet &counters)
{
    counters.add(Counter::OutputIndexCalcs);
    const auto out = spec_.outputIndex(x, y, s, r);
    if (!out) {
        counters.add(Counter::MultsRcp);
        return false;
    }
    counters.add(Counter::MultsValid);
    counters.add(Counter::AccumAdds);
    if (auto *rec = obs::recorder()) {
        const std::uint32_t bank =
            (out->y * output_.width() + out->x) % kBanks;
        const std::uint32_t bit = 1u << bank;
        if (groupBanks_ & bit)
            rec->instant(obs::InstantKind::AccumBankConflict, bank);
        groupBanks_ |= bit;
    }
    bank_.write(1, counters);
    output_.at(out->x, out->y) +=
        static_cast<double>(image_value) * static_cast<double>(kernel_value);
    return true;
}

} // namespace antsim
