/**
 * @file
 * Minimal synchronous-simulation framework.
 *
 * The throughput-level accelerator models in src/scnn and src/ant
 * compute their cycle counts with closed loops, but the detailed ANT
 * pipeline model (src/ant/ant_pipeline.hh) advances stage-by-stage each
 * cycle. This framework provides the tick loop: modules register with a
 * Simulator; each cycle every module's evaluate() observes current
 * register state and every module's commit() latches next-state, giving
 * two-phase semantics so evaluation order cannot leak combinational
 * values across a pipeline register.
 */

#ifndef ANTSIM_SIM_CLOCK_HH
#define ANTSIM_SIM_CLOCK_HH

#include <cstdint>
#include <vector>

namespace antsim {

/** A synchronous hardware block. */
class Module
{
  public:
    virtual ~Module() = default;

    /** Combinational phase: read registered state, compute next state. */
    virtual void evaluate() = 0;

    /** Clock edge: latch next state into registered state. */
    virtual void commit() = 0;
};

/** A simple two-phase clocked simulator. */
class Simulator
{
  public:
    /** Register a module; modules are evaluated in registration order. */
    void add(Module *module) { modules_.push_back(module); }

    /** Advance one clock cycle (evaluate all, then commit all). */
    void tick();

    /** Advance @p cycles clock cycles. */
    void run(std::uint64_t cycles);

    /** Cycles elapsed since construction. */
    std::uint64_t cycle() const { return cycle_; }

  private:
    std::vector<Module *> modules_;
    std::uint64_t cycle_ = 0;
};

/**
 * A pipeline register holding a value of type T plus a valid bit.
 * evaluate() writes via setNext(); commit() makes it visible.
 */
template <typename T>
class PipeReg
{
  public:
    /** Registered (visible) value; meaningful only when valid(). */
    const T &value() const { return current_; }

    /** Registered valid bit. */
    bool valid() const { return currentValid_; }

    /** Schedule a value to be latched at the next clock edge. */
    void
    setNext(const T &v)
    {
        next_ = v;
        nextValid_ = true;
    }

    /** Schedule a bubble at the next clock edge. */
    void
    clearNext()
    {
        nextValid_ = false;
    }

    /** Latch (called from a Module::commit). */
    void
    latch()
    {
        current_ = next_;
        currentValid_ = nextValid_;
        nextValid_ = false;
    }

  private:
    T current_{};
    T next_{};
    bool currentValid_ = false;
    bool nextValid_ = false;
};

} // namespace antsim

#endif // ANTSIM_SIM_CLOCK_HH
