/**
 * @file
 * Output accumulator bank model.
 *
 * Valid products are routed by their computed output index to an
 * accumulator bank and added there. Per the paper's methodology the
 * accumulator is assumed to absorb the multiplier-array throughput
 * (Sec. 6.1), so this model is functional (it produces the output
 * plane) plus counting (adds and bank writes for the energy model).
 * It is also the final authority on validity: products whose output
 * index is out of range are dropped and reported, which is how the
 * residual RCPs that survive group-level anticipation are detected.
 */

#ifndef ANTSIM_SIM_ACCUMULATOR_HH
#define ANTSIM_SIM_ACCUMULATOR_HH

#include <cstdint>

#include "conv/problem_spec.hh"
#include "sim/sram.hh"
#include "tensor/matrix.hh"
#include "util/counters.hh"

namespace antsim {

/** Accumulator buffer: routes valid products to output elements. */
class Accumulator
{
  public:
    /**
     * Construct for one problem's output plane.
     * @param bank_config  Bank geometry, plumbed from the owning PE's
     *                     config so multiplier sweeps scale the bank.
     */
    explicit Accumulator(
        const ProblemSpec &spec,
        const SramConfig &bank_config = SramConfig::accumulatorBank());

    /**
     * Offer one executed product to the accumulator.
     *
     * Computes the output index (counted as an output-index
     * calculation), and either accumulates (valid: one bf16 add + one
     * bank write) or drops the product (residual RCP).
     *
     * @return true when the product was valid.
     */
    bool offer(float image_value, std::uint32_t x, std::uint32_t y,
               float kernel_value, std::uint32_t s, std::uint32_t r,
               CounterSet &counters);

    /** The accumulated output plane. */
    const Dense2d<double> &output() const { return output_; }

    /**
     * Mark the start of a new same-cycle issue group. Valid products
     * offered within one group that map to an already-claimed bank are
     * reported as accumulator-bank conflicts to the tracing layer
     * (observational only -- the cost model assumes the crossbar
     * absorbs multiplier throughput, Sec. 6.1, so no counter moves).
     */
    void newIssueGroup() { groupBanks_ = 0; }

    /** Modeled accumulator banks (2n for the n=16 array, Sec. 6.1). */
    static constexpr std::uint32_t kBanks = 32;

  private:
    ProblemSpec spec_;
    Dense2d<double> output_;
    SramBuffer bank_;
    std::uint32_t groupBanks_ = 0;
};

} // namespace antsim

#endif // ANTSIM_SIM_ACCUMULATOR_HH
