#include "accelerator.hh"

#include <algorithm>
#include <limits>

#include "obs/trace.hh"
#include "util/logging.hh"

namespace antsim {

Accelerator::Accelerator(PeModel &pe, const AcceleratorConfig &config)
    : pe_(pe), config_(config)
{
    ANT_ASSERT(config_.numPes > 0, "accelerator needs at least one PE");
    ANT_ASSERT(config_.chunkCapacity > 0, "chunk capacity must be positive");
}

AcceleratorResult
Accelerator::runProblem(const ProblemSpec &spec, const CsrMatrix &kernel,
                        const CsrMatrix &image, bool collect_output)
{
    // Dense-tiled PEs (inner-product baselines) are not subject to the
    // sparse buffer capacity.
    const std::uint32_t capacity = pe_.usesCompressedOperands()
        ? config_.chunkCapacity
        : std::numeric_limits<std::uint32_t>::max();
    const auto kernel_chunks = chunkByCapacity(kernel, capacity);
    const auto image_chunks = chunkByCapacity(image, capacity);

    AcceleratorResult result;
    if (collect_output)
        result.output = Dense2d<double>(spec.outH(), spec.outW());

    std::vector<std::uint64_t> task_cycles;
    obs::UnitRecorder *rec = obs::recorder();
    for (const auto &pair : allChunkPairs(kernel_chunks, image_chunks)) {
        if (rec)
            rec->beginTask();
        PeResult pe_result =
            pe_.runPair(spec, *pair.kernel, *pair.image, collect_output);
        if (rec)
            rec->endTask();
        task_cycles.push_back(pe_result.counters.get(Counter::Cycles));
        result.counters += pe_result.counters;
        result.counters.add(Counter::TasksProcessed);
        if (collect_output) {
            for (std::size_t i = 0; i < result.output.data().size(); ++i)
                result.output.data()[i] += pe_result.output.data()[i];
        }
    }
    result.counters.set(Counter::Cycles, schedule(task_cycles));
    return result;
}

AcceleratorResult
Accelerator::runTasks(
    const std::vector<std::pair<ProblemSpec, ChunkPair>> &tasks)
{
    AcceleratorResult result;
    std::vector<std::uint64_t> task_cycles;
    task_cycles.reserve(tasks.size());
    obs::UnitRecorder *rec = obs::recorder();
    for (const auto &[spec, pair] : tasks) {
        if (rec)
            rec->beginTask();
        PeResult pe_result = pe_.runPair(spec, *pair.kernel, *pair.image,
                                         /*collect_output=*/false);
        if (rec)
            rec->endTask();
        task_cycles.push_back(pe_result.counters.get(Counter::Cycles));
        result.counters += pe_result.counters;
        result.counters.add(Counter::TasksProcessed);
    }
    result.counters.set(Counter::Cycles, schedule(task_cycles));
    return result;
}

std::uint64_t
scheduleCycles(const std::vector<std::uint64_t> &task_cycles,
               std::uint32_t num_pes, LoadBalance policy)
{
    ANT_ASSERT(num_pes > 0, "need at least one PE");
    if (task_cycles.empty())
        return 0;

    if (policy == LoadBalance::Perfect) {
        std::uint64_t total = 0;
        for (std::uint64_t c : task_cycles)
            total += c;
        return (total + num_pes - 1) / num_pes;
    }

    // Greedy LPT: sort descending, place each task on the least-loaded
    // PE, report the makespan.
    std::vector<std::uint64_t> sorted = task_cycles;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    std::vector<std::uint64_t> load(num_pes, 0);
    for (std::uint64_t c : sorted) {
        auto it = std::min_element(load.begin(), load.end());
        *it += c;
    }
    return *std::max_element(load.begin(), load.end());
}

std::uint64_t
Accelerator::schedule(const std::vector<std::uint64_t> &task_cycles) const
{
    return scheduleCycles(task_cycles, config_.numPes,
                          config_.loadBalance);
}

} // namespace antsim
