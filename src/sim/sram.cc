#include "sram.hh"

#include "util/logging.hh"

namespace antsim {

SramBuffer::SramBuffer(std::string name, const SramConfig &config,
                       Counter counter)
    : name_(std::move(name)), config_(config), counter_(counter)
{
    ANT_ASSERT(config_.elementBits > 0 && config_.accessBits > 0 &&
               config_.accessBits % config_.elementBits == 0,
               "access width must be a multiple of the element width");
}

void
SramBuffer::fill(std::uint32_t elements)
{
    if (elements > config_.capacityElements()) {
        ANT_FATAL("SRAM buffer '", name_, "' over capacity: ", elements,
                  " elements > ", config_.capacityElements(),
                  " (callers must chunk the working set)");
    }
    occupancy_ = elements;
}

void
SramBuffer::read(std::uint32_t elements, CounterSet &counters) const
{
    if (elements == 0)
        return;
    const std::uint32_t per = config_.elementsPerAccess();
    counters.add(counter_, (elements + per - 1) / per);
}

void
SramBuffer::write(std::uint32_t elements, CounterSet &counters) const
{
    if (elements == 0)
        return;
    const std::uint32_t per = config_.elementsPerAccess();
    counters.add(Counter::SramWrites, (elements + per - 1) / per);
}

} // namespace antsim
