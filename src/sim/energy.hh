/**
 * @file
 * Operation-counter-based energy model (Sec. 6.3).
 *
 * Energy = sum over operation classes of (count x energy-per-op).
 * Multiplications and additions are Bfloat16; index comparisons are
 * modeled as 32-bit integer additions; sparse elements are 16-bit
 * value + 16-bit index so a 64-bit SRAM access delivers two elements.
 *
 * The per-op energies below are order-of-magnitude figures for a
 * ~7 nm-class process, in picojoules. The paper reports *relative*
 * energy (ANT / SCNN+), which depends only on the counting methodology
 * and the ratios between these constants, so the reproduction target is
 * insensitive to their absolute calibration.
 */

#ifndef ANTSIM_SIM_ENERGY_HH
#define ANTSIM_SIM_ENERGY_HH

#include <string>

#include "util/counters.hh"

namespace antsim {

/**
 * Version tag of the default per-op energy table below. Run reports
 * carry it so downstream tooling can tell whether two energy numbers
 * were produced under the same calibration (src/report).
 */
constexpr const char *kEnergyTableVersion = "pj-7nm-v1";

/** Per-operation energies in picojoules. */
struct EnergyParams
{
    /** Bfloat16 multiply. */
    double multBf16Pj = 0.21;
    /** Bfloat16 add (accumulator). */
    double addBf16Pj = 0.11;
    /** 32-bit integer add (index comparison / output index calc). */
    double addInt32Pj = 0.10;
    /** 64-bit read from an 8 KB single-cycle SRAM buffer (~7 nm). */
    double sramRead64Pj = 2.20;
    /** 64-bit row-pointer read (same SRAM class). */
    double sramRowPtrPj = 2.20;
    /** Partial-sum accumulator bank write (small banked regfile). */
    double accumWritePj = 1.20;
};

/** Breakdown of the energy attributed to one CounterSet. */
struct EnergyBreakdown
{
    double multiplyPj = 0.0;
    double accumulatePj = 0.0;
    double indexLogicPj = 0.0;
    double sramPj = 0.0;

    /** Total picojoules. */
    double
    totalPj() const
    {
        return multiplyPj + accumulatePj + indexLogicPj + sramPj;
    }

    /** Human-readable summary in microjoules. */
    std::string toString() const;
};

/** Maps operation counters to energy. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = EnergyParams{})
        : params_(params)
    {}

    /** The active per-op energies. */
    const EnergyParams &params() const { return params_; }

    /** Attribute the counters of @p counters to energy classes. */
    EnergyBreakdown evaluate(const CounterSet &counters) const;

    /** Convenience: total picojoules of @p counters. */
    double
    totalPj(const CounterSet &counters) const
    {
        return evaluate(counters).totalPj();
    }

  private:
    EnergyParams params_;
};

} // namespace antsim

#endif // ANTSIM_SIM_ENERGY_HH
