#include "energy.hh"

#include <sstream>

namespace antsim {

std::string
EnergyBreakdown::toString() const
{
    std::ostringstream oss;
    oss.precision(3);
    oss << "energy total " << totalPj() / 1e6 << " uJ (multiply "
        << multiplyPj / 1e6 << ", accumulate " << accumulatePj / 1e6
        << ", index " << indexLogicPj / 1e6 << ", sram " << sramPj / 1e6
        << ")";
    return oss.str();
}

EnergyBreakdown
EnergyModel::evaluate(const CounterSet &counters) const
{
    EnergyBreakdown out;
    const auto n = [&counters](Counter c) {
        return static_cast<double>(counters.get(c));
    };

    out.multiplyPj = n(Counter::MultsExecuted) * params_.multBf16Pj;
    out.accumulatePj = n(Counter::AccumAdds) * params_.addBf16Pj;
    // Output-index computations are two integer ops (x-s, y-r with the
    // stride divide folded into the same adder per Sec. 6.3's "index
    // comparison operations are modeled as 32-bit integer additions").
    out.indexLogicPj = (n(Counter::IndexCompares) +
                        2.0 * n(Counter::OutputIndexCalcs)) *
        params_.addInt32Pj;
    out.sramPj = (n(Counter::SramValueReads) + n(Counter::SramIndexReads)) *
            params_.sramRead64Pj +
        n(Counter::SramRowPtrReads) * params_.sramRowPtrPj +
        n(Counter::SramWrites) * params_.accumWritePj;
    return out;
}

} // namespace antsim
