/**
 * @file
 * Common interface for processing-element cycle models.
 *
 * A PE model consumes one (kernel chunk, image chunk) pair under a
 * ProblemSpec and reports its counters (cycles, multiplies, SRAM
 * accesses, ...) plus, optionally, the functionally accumulated output
 * plane. The SCNN-like baseline PE (src/scnn) and the ANT PE (src/ant)
 * implement this interface; the Accelerator (src/sim/accelerator.hh)
 * schedules chunk pairs across PEs.
 */

#ifndef ANTSIM_SIM_PE_MODEL_HH
#define ANTSIM_SIM_PE_MODEL_HH

#include <memory>
#include <string>
#include <vector>

#include "conv/problem_spec.hh"
#include "tensor/csr.hh"
#include "tensor/matrix.hh"
#include "util/counters.hh"

namespace antsim {

/** Outcome of one chunk-pair execution on a PE. */
struct PeResult
{
    /** All activity counters, including Counter::Cycles. */
    CounterSet counters;
    /** Accumulated output plane; empty (0x0) unless requested. */
    Dense2d<double> output;
};

/** Abstract PE cycle model. */
class PeModel
{
  public:
    PeModel() = default;
    virtual ~PeModel() = default;

  protected:
    // Copyable only by derived classes (their clone() implementations
    // delegate to copy construction); copying through a base pointer
    // would slice, and replication must go through clone().
    PeModel(const PeModel &) = default;
    PeModel &operator=(const PeModel &) = default;

  public:

    /** Human-readable model name for reports. */
    virtual std::string name() const = 0;

    /** Multipliers in this PE (for utilization metrics). */
    virtual std::uint32_t multiplierCount() const = 0;

    /**
     * Fresh replica of this PE with the same configuration and no
     * shared mutable state. The parallel runner (workload/runner.cc)
     * gives each worker thread its own replica; results must be
     * bit-identical to the original's on identical inputs, which the
     * determinism of the whole parallel engine rests on (clone_test
     * and parallel_determinism_test enforce both properties).
     */
    virtual std::unique_ptr<PeModel> clone() const = 0;

    /**
     * Whether the PE streams compressed (CSR) operands through the
     * capacity-limited sparse buffers. Dense inner-product baselines
     * return false: their operands are dense-tiled, so the sparse
     * chunk capacity must not split their work (it would double-count
     * the dense MAC stream).
     */
    virtual bool usesCompressedOperands() const { return true; }

    /**
     * Execute one (kernel chunk, image chunk) pair.
     *
     * Chunks carry global matrix dims with a subset of the non-zeros;
     * chunk results are additive because the outer product is linear in
     * its operand entries.
     *
     * @param collect_output Accumulate the functional output plane
     *        (costs memory proportional to the output; benchmarks that
     *        only need counters pass false).
     */
    virtual PeResult runPair(const ProblemSpec &spec,
                             const CsrMatrix &kernel, const CsrMatrix &image,
                             bool collect_output) = 0;

    /**
     * Execute a *kernel stack* against one stationary image: the
     * hardware dataflow keeps the image plane resident and streams the
     * kernel planes of every output channel through the PE back to
     * back, paying the pipeline start-up once (Sec. 2.3: SCNN's
     * input-stationary dataflow; the paper's 5-cycle start-up applies
     * "whenever a PE is given new image and kernel matrices").
     * Operand groups may span kernel-plane boundaries, exactly as a
     * merged weight stream does in SCNN.
     *
     * With collect_output, the returned plane is the SUM of the
     * per-kernel outputs (the outer product is linear, so this is a
     * meaningful functional check even though real hardware routes
     * each kernel's products to its own output plane).
     */
    virtual PeResult runStack(const ProblemSpec &spec,
                              const std::vector<const CsrMatrix *> &kernels,
                              const CsrMatrix &image,
                              bool collect_output) = 0;
};

} // namespace antsim

#endif // ANTSIM_SIM_PE_MODEL_HH
