/**
 * @file
 * Buffer-capacity chunking of sparse operand streams.
 *
 * A PE's value/index buffers hold at most capacityElements non-zeros
 * (8 KB at 16-bit values, Table 4). Larger operands are split into
 * chunks of at most that many entries; every (kernel chunk, image
 * chunk) combination becomes an independent task. Because the sparse
 * outer product is linear in the operand entries, executing the chunk
 * pairs independently and summing their outputs is functionally exact.
 * This realizes the paper's SCNN+ modification ("split up the kernel
 * matrix across the 8x8 PEs", Sec. 6.1) and equally applies to ANT.
 */

#ifndef ANTSIM_SIM_CHUNKING_HH
#define ANTSIM_SIM_CHUNKING_HH

#include <cstdint>
#include <vector>

#include "tensor/csr.hh"

namespace antsim {

/**
 * Slice a CSR matrix's entry stream into sub-matrices of at most
 * @p capacity entries each (same logical dims, disjoint entry subsets,
 * storage order preserved). An empty matrix yields one empty chunk so
 * pair enumeration stays uniform.
 */
std::vector<CsrMatrix> chunkByCapacity(const CsrMatrix &matrix,
                                       std::uint32_t capacity);

/** A kernel-chunk x image-chunk work unit. */
struct ChunkPair
{
    const CsrMatrix *kernel;
    const CsrMatrix *image;
};

/** Enumerate all chunk pairs (cartesian product of the chunk lists). */
std::vector<ChunkPair> allChunkPairs(const std::vector<CsrMatrix> &kernels,
                                     const std::vector<CsrMatrix> &images);

} // namespace antsim

#endif // ANTSIM_SIM_CHUNKING_HH
