/**
 * @file
 * Multi-PE accelerator scheduler.
 *
 * Distributes chunk-pair tasks across an array of identical PEs. Per
 * the paper's methodology (Sec. 6.1) the default is a *perfect* load
 * balancer -- accelerator cycles are the ceiling of total PE cycles
 * over the PE count -- which isolates the PE-level contribution of RCP
 * anticipation from dataflow/load-balance effects. A greedy
 * longest-processing-time balancer is also provided to quantify how
 * far reality can sit from the perfect-balance assumption.
 */

#ifndef ANTSIM_SIM_ACCELERATOR_HH
#define ANTSIM_SIM_ACCELERATOR_HH

#include <cstdint>
#include <vector>

#include "sim/chunking.hh"
#include "sim/pe_model.hh"

namespace antsim {

/** Task scheduling policy across PEs. */
enum class LoadBalance {
    /** cycles = ceil(sum of task cycles / numPes) (paper assumption). */
    Perfect,
    /** Greedy longest-processing-time assignment; cycles = max PE load. */
    GreedyLpt,
};

/** Accelerator-level configuration. */
struct AcceleratorConfig
{
    /** Number of processing elements (Table 4: 64). */
    std::uint32_t numPes = 64;
    /** Operand chunk capacity in non-zero elements (8 KB / 16-bit). */
    std::uint32_t chunkCapacity = 4096;
    /** Scheduling policy. */
    LoadBalance loadBalance = LoadBalance::Perfect;
};

/** Result of running a batch of tasks through the accelerator. */
struct AcceleratorResult
{
    /** Summed counters of all tasks; Cycles holds accelerator cycles. */
    CounterSet counters;
    /** Sum of per-task outputs (0x0 unless collection was requested). */
    Dense2d<double> output;
};

/**
 * Reduce per-task cycle counts to accelerator cycles under a policy:
 * perfect balance = ceil(sum / numPes); greedy LPT = the makespan of a
 * longest-processing-time-first assignment.
 */
std::uint64_t scheduleCycles(const std::vector<std::uint64_t> &task_cycles,
                             std::uint32_t num_pes, LoadBalance policy);

/** Schedules chunk pairs onto an array of PeModel instances. */
class Accelerator
{
  public:
    /**
     * @param pe     The PE cycle model (shared; PE models are
     *               stateless across runPair calls).
     * @param config Scheduling parameters.
     */
    Accelerator(PeModel &pe, const AcceleratorConfig &config);

    const AcceleratorConfig &config() const { return config_; }

    /**
     * Execute one full (kernel plane, image plane) problem: chunk both
     * operands to buffer capacity, run every chunk pair, and schedule.
     */
    AcceleratorResult runProblem(const ProblemSpec &spec,
                                 const CsrMatrix &kernel,
                                 const CsrMatrix &image,
                                 bool collect_output = false);

    /**
     * Execute a set of pre-formed tasks (e.g., the plane pairs of a
     * whole layer). Outputs are not collected (task output shapes may
     * differ).
     */
    AcceleratorResult runTasks(
        const std::vector<std::pair<ProblemSpec, ChunkPair>> &tasks);

  private:
    /** Reduce per-task cycles to accelerator cycles under the policy. */
    std::uint64_t schedule(const std::vector<std::uint64_t> &task_cycles)
        const;

    PeModel &pe_;
    AcceleratorConfig config_;
};

} // namespace antsim

#endif // ANTSIM_SIM_ACCELERATOR_HH
