/**
 * @file
 * SRAM buffer model for the PE's value/index storage.
 *
 * The paper caps each buffer at 8 KB to guarantee single-cycle access
 * (Table 4) and stores sparse elements as 16-bit values + 16-bit
 * indices, so one 64-bit SRAM access fetches 2 elements (Sec. 6.3).
 * This model enforces the capacity (the chunking in the accelerators
 * exists precisely to respect it) and counts accesses for the energy
 * model; it does not store data -- the functional arrays live in the
 * CSR structures.
 */

#ifndef ANTSIM_SIM_SRAM_HH
#define ANTSIM_SIM_SRAM_HH

#include <cstdint>
#include <string>

#include "util/counters.hh"

namespace antsim {

/** Static parameters of one SRAM buffer. */
struct SramConfig
{
    /** Capacity in bytes (Table 4: 8 KB max for single-cycle access). */
    std::uint32_t capacityBytes = 8 * 1024;
    /** Bits per stored element (16-bit value or 16-bit index). */
    std::uint32_t elementBits = 16;
    /** Access word width in bits (64-bit accesses, 2 elements each). */
    std::uint32_t accessBits = 64;

    /** Elements that fit in the buffer. */
    std::uint32_t
    capacityElements() const
    {
        return capacityBytes * 8 / elementBits;
    }

    /** Elements delivered per access word. */
    std::uint32_t
    elementsPerAccess() const
    {
        return accessBits / elementBits;
    }

    /** Geometry of a value buffer (16-bit bf16 elements, Table 4). */
    static SramConfig
    values()
    {
        return SramConfig{};
    }

    /** Geometry of an index buffer (8-bit indices, Table 4). */
    static SramConfig
    indices()
    {
        SramConfig cfg;
        cfg.elementBits = 8;
        return cfg;
    }

    /** Geometry of an accumulator bank (64 KB of 16-bit partial sums). */
    static SramConfig
    accumulatorBank()
    {
        SramConfig cfg;
        cfg.capacityBytes = 64 * 1024;
        return cfg;
    }
};

/** Access-counting SRAM buffer. */
class SramBuffer
{
  public:
    /**
     * @param name     Label for diagnostics ("kernel values", ...).
     * @param config   Geometry.
     * @param counter  Which CounterSet slot read accesses charge to.
     */
    SramBuffer(std::string name, const SramConfig &config, Counter counter);

    /** Buffer geometry. */
    const SramConfig &config() const { return config_; }

    /**
     * Declare the working set loaded into the buffer. Fatal if it
     * exceeds capacity -- callers must chunk (Sec. 6.1 / SCNN+).
     */
    void fill(std::uint32_t elements);

    /** Elements currently resident. */
    std::uint32_t occupancy() const { return occupancy_; }

    /**
     * Record a read of @p elements sequential elements, charging
     * ceil(elements / elementsPerAccess) word accesses to @p counters.
     */
    void read(std::uint32_t elements, CounterSet &counters) const;

    /** Record a write of @p elements elements (accumulator banks). */
    void write(std::uint32_t elements, CounterSet &counters) const;

  private:
    std::string name_;
    SramConfig config_;
    Counter counter_;
    std::uint32_t occupancy_ = 0;
};

} // namespace antsim

#endif // ANTSIM_SIM_SRAM_HH
