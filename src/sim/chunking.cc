#include "chunking.hh"

#include <algorithm>

#include "util/logging.hh"

namespace antsim {

std::vector<CsrMatrix>
chunkByCapacity(const CsrMatrix &matrix, std::uint32_t capacity)
{
    ANT_ASSERT(capacity > 0, "chunk capacity must be positive");

    std::vector<CsrMatrix> chunks;
    const auto entries = matrix.entries();
    if (entries.empty()) {
        chunks.push_back(CsrMatrix(matrix.height(), matrix.width()));
        return chunks;
    }

    for (std::size_t base = 0; base < entries.size(); base += capacity) {
        const std::size_t end =
            std::min(base + capacity, entries.size());
        std::vector<SparseEntry> slice(entries.begin() + base,
                                       entries.begin() + end);
        chunks.push_back(CsrMatrix::fromCoo(matrix.height(), matrix.width(),
                                            std::move(slice)));
    }
    return chunks;
}

std::vector<ChunkPair>
allChunkPairs(const std::vector<CsrMatrix> &kernels,
              const std::vector<CsrMatrix> &images)
{
    std::vector<ChunkPair> pairs;
    pairs.reserve(kernels.size() * images.size());
    for (const auto &k : kernels)
        for (const auto &i : images)
            pairs.push_back({&k, &i});
    return pairs;
}

} // namespace antsim
