#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace antsim {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    ANT_ASSERT(!xs.empty(), "geomean of empty set");
    double log_sum = 0.0;
    for (double x : xs) {
        ANT_ASSERT(x > 0.0, "geomean requires positive values, got ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double mu = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - mu) * (x - mu);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
minOf(const std::vector<double> &xs)
{
    ANT_ASSERT(!xs.empty(), "minOf of empty set");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    ANT_ASSERT(!xs.empty(), "maxOf of empty set");
    return *std::max_element(xs.begin(), xs.end());
}

void
RunningStats::push(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
}

double
RunningStats::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
RunningStats::min() const
{
    return min_;
}

double
RunningStats::max() const
{
    return max_;
}

} // namespace antsim
