#include "table.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <sstream>

#include "logging.hh"

namespace antsim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    ANT_ASSERT(!headers_.empty(), "a table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    ANT_ASSERT(cells.size() == headers_.size(), "row arity ", cells.size(),
               " does not match header arity ", headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
Table::times(double value, int precision)
{
    return num(value, precision) + "x";
}

std::string
Table::percent(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << row[c];
            if (c + 1 < row.size())
                oss << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        oss << '\n';
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    oss << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

std::string
Table::toCsv() const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << quote(row[c]);
            if (c + 1 < row.size())
                oss << ',';
        }
        oss << '\n';
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

void
Table::print(std::FILE *out) const
{
    const std::string text = toString();
    std::fwrite(text.data(), 1, text.size(), out);
    std::fflush(out);
}

} // namespace antsim
