/**
 * @file
 * Named operation counters used throughout the simulator.
 *
 * Every accelerator model records its activity (multiplies, SRAM
 * accesses, comparator operations, ...) in a CounterSet; the energy
 * model (src/sim/energy.hh) and the benchmark harnesses consume these.
 * Counter identity is a compile-time enum so that hot loops pay only an
 * array increment.
 */

#ifndef ANTSIM_UTIL_COUNTERS_HH
#define ANTSIM_UTIL_COUNTERS_HH

#include <array>
#include <cstdint>
#include <string>

namespace antsim {

/** Identity of each tracked operation class. */
enum class Counter : unsigned {
    /** Multiplies actually executed by the multiplier array. */
    MultsExecuted = 0,
    /** Executed multiplies whose product maps to a valid output. */
    MultsValid,
    /** Executed multiplies that were Redundant Cartesian Products. */
    MultsRcp,
    /** RCP multiplies avoided by anticipation (never executed). */
    RcpsAvoided,
    /** Accumulator additions (one per valid product). */
    AccumAdds,
    /** Output-index computations (one per executed product). */
    OutputIndexCalcs,
    /** Index comparisons (range tests, FNIR comparators). */
    IndexCompares,
    /** SRAM reads of value elements. */
    SramValueReads,
    /** SRAM reads of index elements (columns array). */
    SramIndexReads,
    /** SRAM reads of row-pointer entries. */
    SramRowPtrReads,
    /** SRAM writes (accumulator buffer bank writes). */
    SramWrites,
    /** Value/index SRAM reads avoided by CSR range skipping. */
    SramReadsAvoided,
    /** Pipeline start-up cycles spent (5 per new matrix pair). */
    StartupCycles,
    /** Cycles the multiplier array was issued at least one product. */
    ActiveCycles,
    /** Cycles the FNIR/scan logic advanced without issuing products. */
    IdleScanCycles,
    /** Total cycles of the processing element or accelerator. */
    Cycles,
    /** Number of (kernel, image) chunk pairs (tasks) processed. */
    TasksProcessed,
    /** Census summed-area/histogram tables built (conv/census.hh). */
    CensusTablesBuilt,
    /** O(1) census rectangle/histogram queries answered. */
    CensusRectQueries,
    /** Trace-cache lookups that reused an already-generated plane. */
    TraceCacheHits,
    /** Trace-cache lookups that had to generate the plane. */
    TraceCacheMisses,
    /** Sparse planes generated and CSR-compressed. */
    TracePlanesGenerated,
    NumCounters
};

/** Number of distinct counters. */
constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::NumCounters);

/** Human-readable name of a counter. */
const char *counterName(Counter c);

/** A fixed-size set of named 64-bit counters. */
class CounterSet
{
  public:
    CounterSet() { values_.fill(0); }

    /** Add @p delta to counter @p c. */
    void
    add(Counter c, std::uint64_t delta = 1)
    {
        values_[static_cast<std::size_t>(c)] += delta;
    }

    /** Current value of counter @p c. */
    std::uint64_t
    get(Counter c) const
    {
        return values_[static_cast<std::size_t>(c)];
    }

    /** Set counter @p c to an absolute value. */
    void
    set(Counter c, std::uint64_t value)
    {
        values_[static_cast<std::size_t>(c)] = value;
    }

    /** Reset every counter to zero. */
    void reset() { values_.fill(0); }

    /** Element-wise accumulate another counter set into this one. */
    CounterSet &operator+=(const CounterSet &other);

    /** Element-wise scale all counters by a rational factor. */
    void scale(std::uint64_t num, std::uint64_t den);

    /** Multi-line human-readable dump (non-zero counters only). */
    std::string toString() const;

  private:
    std::array<std::uint64_t, kNumCounters> values_;
};

} // namespace antsim

#endif // ANTSIM_UTIL_COUNTERS_HH
