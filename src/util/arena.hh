/**
 * @file
 * 64-byte-aligned arena (bump) allocator for SoA tensor storage.
 *
 * The CSR/CSC matrices and the census/plan structures keep their
 * values/columns/row-pointer arrays as separate structure-of-arrays
 * buffers carved out of one Arena slab. Every buffer starts on a
 * 64-byte boundary (one cache line, and the widest vector register
 * this simulator targets), so the SIMD kernels (util/simd.hh) can use
 * aligned loads and never straddle an allocation boundary.
 *
 * The arena is sized exactly once, up front, from the known element
 * counts -- construction paths count first and fill second, which is
 * also what removes the push_back reallocation churn the profile used
 * to show. Blocks are never freed individually; the whole slab goes
 * at once. Copying an Arena deep-copies the slab, so objects that
 * store byte offsets (never raw pointers) into their arena can use
 * defaulted copy/move semantics.
 */

#ifndef ANTSIM_UTIL_ARENA_HH
#define ANTSIM_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

// Allocation accounting (counts, high-water bytes). Header-inline
// producer API only: one thread-local pointer branch when metrics are
// off, no ant_obs link dependency.
#include "obs/metrics.hh"
#include "util/logging.hh"

namespace antsim {

/** Fixed-capacity bump allocator; every block is 64-byte aligned. */
class Arena
{
  public:
    /** Alignment of the slab and of every block carved from it. */
    static constexpr std::size_t kAlignment = 64;

    /** Round @p bytes up to the block alignment. */
    static constexpr std::size_t
    aligned(std::size_t bytes)
    {
        return (bytes + kAlignment - 1) & ~(kAlignment - 1);
    }

    /** An empty arena; alloc() panics until reset() gives it capacity. */
    Arena() = default;

    /** An arena with room for @p bytes (rounded up to the alignment). */
    explicit Arena(std::size_t bytes) { reset(bytes); }

    Arena(const Arena &o) { copyFrom(o); }

    Arena &
    operator=(const Arena &o)
    {
        if (this != &o) {
            release();
            copyFrom(o);
        }
        return *this;
    }

    Arena(Arena &&o) noexcept
        : slab_(o.slab_), capacity_(o.capacity_), used_(o.used_)
    {
        o.slab_ = nullptr;
        o.capacity_ = 0;
        o.used_ = 0;
    }

    Arena &
    operator=(Arena &&o) noexcept
    {
        if (this != &o) {
            release();
            slab_ = o.slab_;
            capacity_ = o.capacity_;
            used_ = o.used_;
            o.slab_ = nullptr;
            o.capacity_ = 0;
            o.used_ = 0;
        }
        return *this;
    }

    ~Arena() { release(); }

    /** Drop the slab and reallocate with room for @p bytes. */
    void
    reset(std::size_t bytes)
    {
        release();
        capacity_ = aligned(bytes);
        if (capacity_ > 0) {
            slab_ = static_cast<std::byte *>(::operator new(
                capacity_, std::align_val_t{kAlignment}));
            obs::metrics::count(obs::metrics::Counter::ArenaSlabs);
            obs::metrics::count(obs::metrics::Counter::ArenaSlabBytes,
                                capacity_);
        }
    }

    /**
     * Carve a 64-byte-aligned block of @p count objects of type T and
     * return its byte offset into the slab (offsets stay valid across
     * copies and moves; raw pointers do not). The block is
     * zero-initialized: the CSR builders rely on fresh row-pointer
     * arrays starting at zero.
     */
    template <typename T>
    std::size_t
    alloc(std::size_t count)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "arena blocks hold trivially copyable data only");
        static_assert(alignof(T) <= kAlignment);
        const std::size_t offset = used_;
        const std::size_t bytes = aligned(count * sizeof(T));
        ANT_ASSERT(bytes <= capacity_ - used_, "arena overflow: block of ",
                   bytes, " bytes does not fit in ", capacity_ - used_,
                   " remaining of ", capacity_);
        if (count > 0)
            std::memset(slab_ + offset, 0, count * sizeof(T));
        used_ += bytes;
        if (obs::metrics::shard() != nullptr) {
            obs::metrics::count(obs::metrics::Counter::ArenaAllocs);
            obs::metrics::count(obs::metrics::Counter::ArenaAllocBytes,
                                bytes);
            obs::metrics::gaugeMax(
                obs::metrics::Gauge::ArenaHighWaterBytes,
                static_cast<std::int64_t>(used_));
        }
        return offset;
    }

    /** Pointer to the block at byte offset @p offset. */
    template <typename T>
    T *
    ptr(std::size_t offset)
    {
        return reinterpret_cast<T *>(slab_ + offset);
    }

    template <typename T>
    const T *
    ptr(std::size_t offset) const
    {
        return reinterpret_cast<const T *>(slab_ + offset);
    }

    /** Bytes handed out so far (all blocks, with padding). */
    std::size_t used() const { return used_; }

    /** Slab capacity in bytes. */
    std::size_t capacity() const { return capacity_; }

  private:
    void
    release()
    {
        if (slab_ != nullptr) {
            ::operator delete(slab_, std::align_val_t{kAlignment});
            slab_ = nullptr;
        }
        capacity_ = 0;
        used_ = 0;
    }

    void
    copyFrom(const Arena &o)
    {
        capacity_ = o.capacity_;
        used_ = o.used_;
        if (capacity_ > 0) {
            slab_ = static_cast<std::byte *>(::operator new(
                capacity_, std::align_val_t{kAlignment}));
            if (used_ > 0)
                std::memcpy(slab_, o.slab_, used_);
        }
    }

    std::byte *slab_ = nullptr;
    std::size_t capacity_ = 0;
    std::size_t used_ = 0;
};

/**
 * Minimal growable array with 64-byte-aligned storage, for the PE
 * scratch buffers (candidate streams, merged kernel stacks) that the
 * SIMD kernels read. Holds trivially copyable types only; growth
 * copies with memcpy and never shrinks, matching how the PEs reuse one
 * scratch vector across thousands of groups.
 */
template <typename T>
class AlignedVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "AlignedVec holds trivially copyable data only");

  public:
    AlignedVec() = default;

    AlignedVec(const AlignedVec &) = delete;
    AlignedVec &operator=(const AlignedVec &) = delete;

    ~AlignedVec()
    {
        if (data_ != nullptr)
            ::operator delete(data_, std::align_val_t{Arena::kAlignment});
    }

    /** Grow to at least @p count elements (contents preserved). */
    void
    reserve(std::size_t count)
    {
        if (count <= capacity_)
            return;
        std::size_t want = capacity_ == 0 ? 64 : capacity_ * 2;
        if (want < count)
            want = count;
        T *grown = static_cast<T *>(::operator new(
            Arena::aligned(want * sizeof(T)),
            std::align_val_t{Arena::kAlignment}));
        if (size_ > 0)
            std::memcpy(grown, data_, size_ * sizeof(T));
        if (data_ != nullptr)
            ::operator delete(data_, std::align_val_t{Arena::kAlignment});
        data_ = grown;
        capacity_ = want;
        if (obs::metrics::shard() != nullptr) {
            const std::size_t bytes = Arena::aligned(want * sizeof(T));
            obs::metrics::count(obs::metrics::Counter::AlignedVecGrows);
            obs::metrics::count(
                obs::metrics::Counter::AlignedVecGrowBytes, bytes);
            obs::metrics::gaugeMax(
                obs::metrics::Gauge::AlignedVecHighWaterBytes,
                static_cast<std::int64_t>(bytes));
        }
    }

    /** Resize without initializing new elements beyond size(). */
    void
    resize(std::size_t count)
    {
        reserve(count);
        size_ = count;
    }

    void
    push_back(const T &v)
    {
        reserve(size_ + 1);
        data_[size_++] = v;
    }

    /** Append @p count elements copied from @p src (bulk vector copy). */
    void
    append(const T *src, std::size_t count)
    {
        reserve(size_ + count);
        if (count > 0)
            std::memcpy(data_ + size_, src, count * sizeof(T));
        size_ += count;
    }

    /** Append @p count copies of @p v (run-length fill). */
    void
    appendFill(const T &v, std::size_t count)
    {
        reserve(size_ + count);
        for (std::size_t i = 0; i < count; ++i)
            data_[size_ + i] = v;
        size_ += count;
    }

    void clear() { size_ = 0; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return capacity_; }

    T *data() { return data_; }
    const T *data() const { return data_; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

  private:
    T *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t capacity_ = 0;
};

} // namespace antsim

#endif // ANTSIM_UTIL_ARENA_HH
