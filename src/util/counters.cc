#include "counters.hh"

#include <limits>
#include <sstream>

#include "logging.hh"

namespace antsim {

namespace {

/**
 * Name table indexed by the Counter enum. The array size is pinned to
 * kNumCounters by the type, so adding an enumerator without a name (or
 * vice versa) fails to compile; the static_asserts below keep the
 * entries non-empty even if someone pads with nullptr or "".
 */
constexpr std::array<const char *, kNumCounters> kCounterNames = {
    "mults_executed",     // MultsExecuted
    "mults_valid",        // MultsValid
    "mults_rcp",          // MultsRcp
    "rcps_avoided",       // RcpsAvoided
    "accum_adds",         // AccumAdds
    "output_index_calcs", // OutputIndexCalcs
    "index_compares",     // IndexCompares
    "sram_value_reads",   // SramValueReads
    "sram_index_reads",   // SramIndexReads
    "sram_rowptr_reads",  // SramRowPtrReads
    "sram_writes",        // SramWrites
    "sram_reads_avoided", // SramReadsAvoided
    "startup_cycles",     // StartupCycles
    "active_cycles",      // ActiveCycles
    "idle_scan_cycles",   // IdleScanCycles
    "cycles",             // Cycles
    "tasks_processed",    // TasksProcessed
    "census_tables_built",    // CensusTablesBuilt
    "census_rect_queries",    // CensusRectQueries
    "trace_cache_hits",       // TraceCacheHits
    "trace_cache_misses",     // TraceCacheMisses
    "trace_planes_generated", // TracePlanesGenerated
};

static_assert(kCounterNames.size() == kNumCounters,
              "counter name table out of sync with the Counter enum");

constexpr bool
allNamesNonEmpty()
{
    for (const char *name : kCounterNames) {
        if (name == nullptr || name[0] == '\0')
            return false;
    }
    return true;
}

static_assert(allNamesNonEmpty(), "every counter needs a non-empty name");

} // namespace

const char *
counterName(Counter c)
{
    const auto index = static_cast<std::size_t>(c);
    ANT_ASSERT(index < kNumCounters, "unknown counter id ", index);
    return kCounterNames[index];
}

CounterSet &
CounterSet::operator+=(const CounterSet &other)
{
    for (std::size_t i = 0; i < kNumCounters; ++i)
        values_[i] += other.values_[i];
    return *this;
}

void
CounterSet::scale(std::uint64_t num, std::uint64_t den)
{
    ANT_ASSERT(den > 0, "scale denominator must be positive");
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    for (auto &v : values_) {
        // Exact rational scaling with round-half-up in 128-bit
        // intermediates: v * num cannot wrap, and a result that does
        // not fit 64 bits is a hard error rather than a silent wrap.
        const unsigned __int128 scaled =
            (static_cast<unsigned __int128>(v) * num + den / 2) / den;
        ANT_ASSERT(scaled <= kMax, "counter overflow scaling ", v, " by ",
                   num, "/", den);
        v = static_cast<std::uint64_t>(scaled);
    }
}

std::string
CounterSet::toString() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        if (values_[i] == 0)
            continue;
        oss << counterName(static_cast<Counter>(i)) << " = " << values_[i]
            << '\n';
    }
    return oss.str();
}

} // namespace antsim
