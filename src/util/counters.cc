#include "counters.hh"

#include <sstream>

#include "logging.hh"

namespace antsim {

const char *
counterName(Counter c)
{
    switch (c) {
      case Counter::MultsExecuted: return "mults_executed";
      case Counter::MultsValid: return "mults_valid";
      case Counter::MultsRcp: return "mults_rcp";
      case Counter::RcpsAvoided: return "rcps_avoided";
      case Counter::AccumAdds: return "accum_adds";
      case Counter::OutputIndexCalcs: return "output_index_calcs";
      case Counter::IndexCompares: return "index_compares";
      case Counter::SramValueReads: return "sram_value_reads";
      case Counter::SramIndexReads: return "sram_index_reads";
      case Counter::SramRowPtrReads: return "sram_rowptr_reads";
      case Counter::SramWrites: return "sram_writes";
      case Counter::SramReadsAvoided: return "sram_reads_avoided";
      case Counter::StartupCycles: return "startup_cycles";
      case Counter::ActiveCycles: return "active_cycles";
      case Counter::IdleScanCycles: return "idle_scan_cycles";
      case Counter::Cycles: return "cycles";
      case Counter::TasksProcessed: return "tasks_processed";
      case Counter::NumCounters: break;
    }
    ANT_PANIC("unknown counter id ", static_cast<unsigned>(c));
}

CounterSet &
CounterSet::operator+=(const CounterSet &other)
{
    for (std::size_t i = 0; i < kNumCounters; ++i)
        values_[i] += other.values_[i];
    return *this;
}

void
CounterSet::scale(std::uint64_t num, std::uint64_t den)
{
    ANT_ASSERT(den > 0, "scale denominator must be positive");
    for (auto &v : values_) {
        // Scale in floating point: counts here are statistical estimates
        // when channel-pair sampling is active, so exactness in the low
        // bits is not meaningful, but overflow safety is.
        const double scaled = static_cast<double>(v) *
            static_cast<double>(num) / static_cast<double>(den);
        v = static_cast<std::uint64_t>(scaled + 0.5);
    }
}

std::string
CounterSet::toString() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        if (values_[i] == 0)
            continue;
        oss << counterName(static_cast<Counter>(i)) << " = " << values_[i]
            << '\n';
    }
    return oss.str();
}

} // namespace antsim
