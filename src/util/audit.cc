#include "audit.hh"

#include <atomic>

namespace antsim {
namespace audit {

namespace {

#ifdef ANTSIM_AUDIT_DEFAULT_ON
constexpr bool kDefaultEnabled = true;
#else
constexpr bool kDefaultEnabled = false;
#endif

std::atomic<bool> g_enabled{kDefaultEnabled};

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

} // namespace audit
} // namespace antsim
