/**
 * @file
 * Deterministic pseudo-random number generation for trace synthesis.
 *
 * ANTSim experiments must be exactly reproducible across runs and
 * platforms, so we implement xoshiro256** ourselves rather than relying
 * on implementation-defined std::default_random_engine behaviour, and we
 * provide distribution helpers with fully specified algorithms.
 */

#ifndef ANTSIM_UTIL_RNG_HH
#define ANTSIM_UTIL_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace antsim {

/**
 * xoshiro256** generator (public-domain algorithm by Blackman & Vigna).
 *
 * Seeded through SplitMix64 so that any 64-bit seed produces a
 * well-mixed state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    double normal();

    /**
     * Deterministic Fisher-Yates shuffle of an index vector.
     * @param n Number of indices, shuffled result is a permutation of 0..n-1.
     */
    std::vector<std::uint32_t> permutation(std::uint32_t n);

    /**
     * Sample @p count distinct indices from [0, n) (Floyd's algorithm),
     * returned unsorted. Requires count <= n.
     */
    std::vector<std::uint32_t> sampleWithoutReplacement(std::uint32_t n,
                                                        std::uint32_t count);

    /** Derive an independent child generator (for per-plane streams). */
    Rng split();

    /**
     * The generator's full 256-bit state. Two Rng objects with equal
     * state produce identical streams forever; the trace cache
     * (src/workload/trace_cache) keys planes by the state a generation
     * would start from and restores the post-generation state on a hit.
     */
    std::array<std::uint64_t, 4> state() const;

    /** Restore a state captured by state(). */
    void setState(const std::array<std::uint64_t, 4> &state);

  private:
    std::uint64_t s_[4];
};

} // namespace antsim

#endif // ANTSIM_UTIL_RNG_HH
