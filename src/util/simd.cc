#include "simd.hh"

#include <atomic>
#include <cstdlib>

#include "util/logging.hh"

namespace antsim {
namespace simd {

namespace {

bool
detectAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

Mode
initialMode()
{
    const char *env = std::getenv("ANTSIM_SIMD");
    if (env == nullptr || env[0] == '\0')
        return Mode::Auto;
    Mode parsed;
    if (!parseMode(env, parsed))
        ANT_FATAL("ANTSIM_SIMD must be auto, scalar, or avx2; got '", env,
                  "'");
    if (parsed == Mode::Avx2 && !detectAvx2())
        ANT_FATAL("ANTSIM_SIMD=avx2 but this CPU does not support AVX2");
    return parsed;
}

std::atomic<Mode> g_mode{initialMode()};
/** Resolved per-mode answer; kept in lockstep with g_mode. */
std::atomic<bool> g_avx2{initialMode() == Mode::Scalar ? false
                                                       : detectAvx2()};

} // namespace

Mode
mode()
{
    return g_mode.load(std::memory_order_relaxed);
}

void
setMode(Mode mode)
{
    if (mode == Mode::Avx2 && !detectAvx2())
        ANT_FATAL("--simd=avx2 requested but this CPU does not support "
                  "AVX2; use auto or scalar");
    g_mode.store(mode, std::memory_order_relaxed);
    g_avx2.store(mode != Mode::Scalar && detectAvx2(),
                 std::memory_order_relaxed);
}

bool
avx2Enabled()
{
    return g_avx2.load(std::memory_order_relaxed);
}

bool
cpuHasAvx2()
{
    return detectAvx2();
}

bool
parseMode(const std::string &text, Mode &out)
{
    if (text == "auto") {
        out = Mode::Auto;
        return true;
    }
    if (text == "scalar") {
        out = Mode::Scalar;
        return true;
    }
    if (text == "avx2") {
        out = Mode::Avx2;
        return true;
    }
    return false;
}

const char *
modeName(Mode mode)
{
    switch (mode) {
    case Mode::Auto:
        return "auto";
    case Mode::Scalar:
        return "scalar";
    case Mode::Avx2:
        return "avx2";
    }
    return "unknown";
}

} // namespace simd
} // namespace antsim
