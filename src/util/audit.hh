/**
 * @file
 * Process-wide switch for the invariant-audit layer (src/verify).
 *
 * The audit hooks inside the accelerator models are compiled in
 * unconditionally but cost a single relaxed atomic load when disabled.
 * The compile-time default comes from the ANTSIM_AUDIT CMake option
 * (on by default in Debug builds); tests force it on, and bench/example
 * binaries expose it as the --audit flag.
 *
 * The switch lives in util (not verify) so that low-level libraries
 * such as ant_conv can gate their own self-checks on it without a
 * dependency cycle through the verify library.
 */

#ifndef ANTSIM_UTIL_AUDIT_HH
#define ANTSIM_UTIL_AUDIT_HH

namespace antsim {
namespace audit {

/** True when invariant audits should run. */
bool enabled();

/** Turn invariant audits on or off process-wide. */
void setEnabled(bool on);

} // namespace audit
} // namespace antsim

#endif // ANTSIM_UTIL_AUDIT_HH
