/**
 * @file
 * Bfloat16 storage type used by the accelerator value datapath.
 *
 * The paper's datapath performs all multiplies and adds in Bfloat16
 * (Table 4). We model bf16 as a 16-bit storage format: the top 16 bits
 * of an IEEE-754 binary32, with round-to-nearest-even conversion.
 * Arithmetic is performed by widening to float, which matches how a
 * bf16 FMA datapath with a float accumulator behaves.
 */

#ifndef ANTSIM_UTIL_BFLOAT16_HH
#define ANTSIM_UTIL_BFLOAT16_HH

#include <cstdint>
#include <cstring>

namespace antsim {

/** 16-bit brain floating-point value. */
class Bfloat16
{
  public:
    /** Default-construct as +0.0. */
    constexpr Bfloat16() : bits_(0) {}

    /** Convert from float with round-to-nearest-even. */
    explicit Bfloat16(float value) : bits_(fromFloatBits(value)) {}

    /** Reinterpret raw storage bits as a Bfloat16. */
    static constexpr Bfloat16
    fromBits(std::uint16_t bits)
    {
        Bfloat16 b;
        b.bits_ = bits;
        return b;
    }

    /** Raw 16-bit representation. */
    constexpr std::uint16_t bits() const { return bits_; }

    /** Widen to float (exact). */
    float
    toFloat() const
    {
        const std::uint32_t w = static_cast<std::uint32_t>(bits_) << 16;
        float f;
        std::memcpy(&f, &w, sizeof(f));
        return f;
    }

    /** Implicit widening conversion for arithmetic convenience. */
    operator float() const { return toFloat(); }

    bool operator==(const Bfloat16 &o) const { return bits_ == o.bits_; }
    bool operator!=(const Bfloat16 &o) const { return bits_ != o.bits_; }

  private:
    static std::uint16_t
    fromFloatBits(float value)
    {
        std::uint32_t w;
        std::memcpy(&w, &value, sizeof(w));
        // Preserve NaN payloads by forcing a quiet NaN.
        if ((w & 0x7f800000u) == 0x7f800000u && (w & 0x007fffffu) != 0)
            return static_cast<std::uint16_t>((w >> 16) | 0x0040u);
        // Round to nearest even on the truncated 16 bits.
        const std::uint32_t rounding = 0x7fffu + ((w >> 16) & 1u);
        return static_cast<std::uint16_t>((w + rounding) >> 16);
    }

    std::uint16_t bits_;
};

/** Round a float through bf16 precision (quantize-dequantize). */
inline float
bf16Round(float value)
{
    return Bfloat16(value).toFloat();
}

} // namespace antsim

#endif // ANTSIM_UTIL_BFLOAT16_HH
