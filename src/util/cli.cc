#include "cli.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "logging.hh"

namespace antsim {

Cli::Cli(int argc, const char *const *argv,
         const std::vector<std::string> &known)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            ANT_FATAL("unexpected positional argument '", arg, "'");
        arg = arg.substr(2);

        std::string name;
        std::string value;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            // "--flag value" form unless the next token is another flag.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }

        if (std::find(known.begin(), known.end(), name) == known.end())
            ANT_FATAL("unknown flag '--", name, "'");
        // Last-one-wins would silently drop half of a contradictory
        // invocation such as "--seed 1 --seed 2"; refuse instead.
        if (!values_.emplace(name, value).second)
            ANT_FATAL("duplicate flag '--", name, "'");
    }
}

bool
Cli::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Cli::get(const std::string &name, const std::string &fallback) const
{
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
Cli::getInt(const std::string &name, std::int64_t fallback) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    errno = 0;
    const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || end == nullptr || *end != '\0')
        ANT_FATAL("flag --", name, " expects an integer, got '", it->second,
                  "'");
    // strtoll saturates to INT64_MIN/MAX on overflow, which would
    // silently run a wildly different configuration than requested.
    if (errno == ERANGE)
        ANT_FATAL("flag --", name, " value '", it->second,
                  "' is out of the 64-bit integer range");
    return v;
}

double
Cli::getDouble(const std::string &name, double fallback) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || end == nullptr || *end != '\0')
        ANT_FATAL("flag --", name, " expects a number, got '", it->second,
                  "'");
    // Overflow saturates to +/-inf (and underflow to ~0) with ERANGE;
    // both mean the requested value cannot be represented.
    if (errno == ERANGE)
        ANT_FATAL("flag --", name, " value '", it->second,
                  "' is out of the representable double range");
    return v;
}

bool
Cli::getBool(const std::string &name, bool fallback) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    // Anything else ("--audit=ture", "--audit on") used to map to
    // false, silently disabling the very check the user asked for.
    ANT_FATAL("flag --", name, " expects a boolean "
              "(true/false, 1/0, yes/no), got '", v, "'");
}

} // namespace antsim
