#include "cli.hh"

#include <algorithm>
#include <cstdlib>

#include "logging.hh"

namespace antsim {

Cli::Cli(int argc, const char *const *argv,
         const std::vector<std::string> &known)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            ANT_FATAL("unexpected positional argument '", arg, "'");
        arg = arg.substr(2);

        std::string name;
        std::string value;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            // "--flag value" form unless the next token is another flag.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }

        if (std::find(known.begin(), known.end(), name) == known.end())
            ANT_FATAL("unknown flag '--", name, "'");
        values_[name] = value;
    }
}

bool
Cli::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Cli::get(const std::string &name, const std::string &fallback) const
{
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
Cli::getInt(const std::string &name, std::int64_t fallback) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        ANT_FATAL("flag --", name, " expects an integer, got '", it->second,
                  "'");
    return v;
}

double
Cli::getDouble(const std::string &name, double fallback) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0')
        ANT_FATAL("flag --", name, " expects a number, got '", it->second,
                  "'");
    return v;
}

bool
Cli::getBool(const std::string &name, bool fallback) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
}

} // namespace antsim
