/**
 * @file
 * Fixed-size worker pool with a deterministic parallel-for.
 *
 * The simulator's hot loops (runConvNetwork's (layer, phase, sample)
 * units, the pipeline model's per-group plan construction) are
 * embarrassingly parallel: every work item is a pure function of its
 * index. The pool therefore exposes exactly one primitive,
 * parallelFor(begin, end, grain, fn), which invokes fn(index, worker)
 * for every index in [begin, end) exactly once, with worker in
 * [0, threadCount()). Callers that need bit-identical results across
 * thread counts write each item's output to a slot keyed by its index
 * and reduce the slots in index order afterwards (see
 * workload/runner.cc and DESIGN.md "Parallel execution model").
 *
 * Scheduling is work-stealing-light: workers claim contiguous blocks
 * of @p grain indices from a shared atomic cursor, so the assignment
 * of indices to workers is racy and irrelevant -- correctness never
 * depends on it. The calling thread participates as worker 0, so a
 * pool constructed with 1 thread spawns nothing and runs inline.
 *
 * Exceptions thrown by fn are captured (first one wins), remaining
 * blocks are drained without executing fn, and the exception is
 * rethrown on the calling thread when parallelFor returns. A
 * parallelFor issued from inside a worker (nested parallelism) runs
 * inline on that worker -- the pool never deadlocks on itself.
 */

#ifndef ANTSIM_UTIL_THREAD_POOL_HH
#define ANTSIM_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace antsim {

/** Fixed pool of worker threads driving parallelFor calls. */
class ThreadPool
{
  public:
    /** Work item callback: fn(index, worker). */
    using IndexFn = std::function<void(std::uint64_t, std::uint32_t)>;

    /**
     * @param num_threads Total workers including the calling thread;
     *        0 selects std::thread::hardware_concurrency().
     */
    explicit ThreadPool(std::uint32_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Workers available to parallelFor (caller included), >= 1. */
    std::uint32_t threadCount() const { return thread_count_; }

    /** Map the 0-means-hardware-concurrency convention to a count. */
    static std::uint32_t resolveThreadCount(std::uint32_t requested);

    /**
     * Invoke fn(i, worker) for every i in [begin, end) exactly once.
     * Blocks until all indices are processed; rethrows the first
     * exception any invocation raised. @p grain is the block size
     * workers claim at a time (must be positive); it bounds scheduling
     * overhead, never visibility of indices.
     */
    void parallelFor(std::uint64_t begin, std::uint64_t end,
                     std::uint64_t grain, const IndexFn &fn);

  private:
    /** One parallelFor's shared state. */
    struct Job
    {
        std::uint64_t begin = 0;
        std::uint64_t end = 0;
        std::uint64_t grain = 1;
        const IndexFn *fn = nullptr;
        /** Next unclaimed index. */
        std::atomic<std::uint64_t> cursor{0};
        /** Indices claimed and retired (run or drained). */
        std::atomic<std::uint64_t> completed{0};
        /** Set once a worker captured an exception. */
        std::atomic<bool> failed{false};
        /** First captured exception (guarded by the pool mutex). */
        std::exception_ptr error;
        /**
         * Background workers currently executing this job (guarded by
         * the pool mutex). The caller waits for it to reach zero so
         * the stack-allocated Job cannot be destroyed while a
         * late-waking worker still holds a pointer to it.
         */
        std::uint32_t workersInside = 0;
    };

    void workerLoop(std::uint32_t worker_id);
    void runChunks(Job &job, std::uint32_t worker_id);

    std::uint32_t thread_count_;
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /** Job being executed, null when idle (guarded by mutex_). */
    Job *job_ = nullptr;
    /** Bumped per parallelFor so workers detect new jobs. */
    std::uint64_t generation_ = 0;
    bool shutdown_ = false;
};

} // namespace antsim

#endif // ANTSIM_UTIL_THREAD_POOL_HH
