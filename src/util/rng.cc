#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace antsim {

namespace {

/** SplitMix64 step used for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    ANT_ASSERT(bound > 0, "Rng::below requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    ANT_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::normal()
{
    // Box-Muller; draw until the radius is non-zero so log() is finite.
    double u1 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double two_pi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

std::vector<std::uint32_t>
Rng::permutation(std::uint32_t n)
{
    std::vector<std::uint32_t> idx(n);
    for (std::uint32_t i = 0; i < n; ++i)
        idx[i] = i;
    for (std::uint32_t i = n; i > 1; --i) {
        const auto j = static_cast<std::uint32_t>(below(i));
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

std::vector<std::uint32_t>
Rng::sampleWithoutReplacement(std::uint32_t n, std::uint32_t count)
{
    ANT_ASSERT(count <= n, "cannot sample ", count, " items from ", n);
    // Floyd's algorithm: O(count) expected work, deterministic given state.
    std::vector<std::uint32_t> result;
    result.reserve(count);
    for (std::uint32_t j = n - count; j < n; ++j) {
        const auto t = static_cast<std::uint32_t>(below(j + 1));
        bool seen = false;
        for (auto v : result) {
            if (v == t) {
                seen = true;
                break;
            }
        }
        result.push_back(seen ? j : t);
    }
    return result;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefull);
}

std::array<std::uint64_t, 4>
Rng::state() const
{
    return {s_[0], s_[1], s_[2], s_[3]};
}

void
Rng::setState(const std::array<std::uint64_t, 4> &state)
{
    for (std::size_t i = 0; i < 4; ++i)
        s_[i] = state[i];
}

} // namespace antsim
