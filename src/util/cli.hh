/**
 * @file
 * Minimal command-line flag parser for bench/example binaries.
 *
 * Supports "--name value" and "--name=value" forms plus boolean
 * switches. Unknown flags, duplicate flags, and malformed values
 * (non-numeric, out-of-range, or non-boolean where a boolean is
 * expected) are all fatal so typos do not silently run the default
 * experiment.
 */

#ifndef ANTSIM_UTIL_CLI_HH
#define ANTSIM_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace antsim {

/** Parsed command-line flags. */
class Cli
{
  public:
    /**
     * Parse argv.
     * @param known Names (without "--") that this binary accepts.
     */
    Cli(int argc, const char *const *argv,
        const std::vector<std::string> &known);

    /** True if the flag appeared at all. */
    bool has(const std::string &name) const;

    /** String value, or @p fallback if absent. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Integer value, or @p fallback if absent. */
    std::int64_t getInt(const std::string &name, std::int64_t fallback) const;

    /** Double value, or @p fallback if absent. */
    double getDouble(const std::string &name, double fallback) const;

    /**
     * Boolean switch: present without value, or true/false, 1/0,
     * yes/no; any other value is fatal.
     */
    bool getBool(const std::string &name, bool fallback = false) const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace antsim

#endif // ANTSIM_UTIL_CLI_HH
