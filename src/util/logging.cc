#include "logging.hh"

#include <atomic>
#include <stdexcept>

namespace antsim {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "error")
        return LogLevel::Silent;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "info")
        return LogLevel::Info;
    if (name == "debug")
        return LogLevel::Debug;
    detail::fatalImpl(__FILE__, __LINE__,
                      "unknown log level '" + name +
                          "' (expected error, warn, info, or debug)");
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Silent:
        return "error";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
    }
    return "warn";
}

void
initLogLevelFromEnv()
{
    const char *env = std::getenv("ANTSIM_LOG_LEVEL");
    if (env != nullptr && env[0] != '\0')
        setLogLevel(parseLogLevel(env));
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace antsim
