/**
 * @file
 * Plain-text table and CSV emission for benchmark harnesses.
 *
 * Every bench binary prints the rows of the paper table/figure it
 * reproduces; Table gives them a consistent aligned layout and an
 * optional machine-readable CSV dump.
 */

#ifndef ANTSIM_UTIL_TABLE_HH
#define ANTSIM_UTIL_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace antsim {

/** A simple column-aligned text table. */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double value, int precision = 2);

    /** Convenience: format as a multiplier, e.g. "3.71x". */
    static std::string times(double value, int precision = 2);

    /** Convenience: format as a percentage, e.g. "96.52%". */
    static std::string percent(double fraction, int precision = 2);

    /** Render as an aligned text table. */
    std::string toString() const;

    /** Render as CSV (RFC-4180-ish quoting for commas/quotes). */
    std::string toCsv() const;

    /** Print the aligned table to @p out (default stdout). */
    void print(std::FILE *out = stdout) const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Column headers (report serialization). */
    const std::vector<std::string> &headers() const { return headers_; }

    /** Data rows in insertion order (report serialization). */
    const std::vector<std::vector<std::string>> &
    rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace antsim

#endif // ANTSIM_UTIL_TABLE_HH
