/**
 * @file
 * Runtime SIMD dispatch policy for the vectorized hot-loop kernels.
 *
 * Every vector kernel in the simulator (census summed-area tables,
 * CSR construction, the SCNN merged kernel stream, FNIR partner
 * matching) exists in two forms: a scalar implementation that is the
 * semantic ground truth and is compiled unconditionally on every
 * platform, and an AVX2 implementation compiled behind a per-function
 * target attribute and selected only at runtime. The two are required
 * to be bit-identical -- tests/simd_equivalence_test.cc asserts
 * byte-equal NetworkStats and Chrome traces across modes -- so the
 * dispatch mode can never influence simulation results, only wall
 * time.
 *
 * Mode resolution: ANTSIM_SIMD=auto|scalar|avx2 is read once at
 * startup; the benches' --simd flag (and tests) override it via
 * setMode(). Auto uses AVX2 exactly when the CPU reports it; forcing
 * avx2 on a CPU without it dies with a clear error instead of
 * SIGILL-ing mid-run.
 */

#ifndef ANTSIM_UTIL_SIMD_HH
#define ANTSIM_UTIL_SIMD_HH

#include <string>

namespace antsim {
namespace simd {

enum class Mode {
    Auto,   //!< use AVX2 when the CPU supports it (default)
    Scalar, //!< force the scalar fallback everywhere
    Avx2,   //!< require AVX2 (fatal on CPUs without it)
};

/** The active mode (env-resolved at startup, setMode overrides). */
Mode mode();

/** Override the dispatch mode; fatal for Mode::Avx2 without CPU support. */
void setMode(Mode mode);

/** True when the vector kernels should take their AVX2 path. */
bool avx2Enabled();

/** Compile-time && runtime AVX2 availability of this build/CPU. */
bool cpuHasAvx2();

/** Parse "auto" / "scalar" / "avx2"; returns false on anything else. */
bool parseMode(const std::string &text, Mode &out);

/** Canonical spelling of @p mode. */
const char *modeName(Mode mode);

} // namespace simd
} // namespace antsim

#endif // ANTSIM_UTIL_SIMD_HH
