/**
 * @file
 * Small statistics helpers used by the benchmark harnesses.
 */

#ifndef ANTSIM_UTIL_STATS_HH
#define ANTSIM_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace antsim {

/** Arithmetic mean; returns 0 for an empty input. */
double mean(const std::vector<double> &xs);

/**
 * Geometric mean; requires all inputs strictly positive.
 * This is how the paper aggregates per-network speedups (Sec. 7.1).
 */
double geomean(const std::vector<double> &xs);

/** Population standard deviation; returns 0 for fewer than 2 items. */
double stddev(const std::vector<double> &xs);

/** Minimum; requires a non-empty input. */
double minOf(const std::vector<double> &xs);

/** Maximum; requires a non-empty input. */
double maxOf(const std::vector<double> &xs);

/** Online accumulator for mean/min/max over a stream of samples. */
class RunningStats
{
  public:
    /** Record one sample. */
    void push(double x);

    /** Number of samples recorded so far. */
    std::size_t count() const { return count_; }

    /** Mean of samples (0 if empty). */
    double mean() const;

    /** Smallest sample (0 if empty). */
    double min() const;

    /** Largest sample (0 if empty). */
    double max() const;

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace antsim

#endif // ANTSIM_UTIL_STATS_HH
