/**
 * @file
 * Status-message and error-handling helpers for ANTSim.
 *
 * Follows the gem5 convention: panic() is for internal simulator bugs
 * (aborts), fatal() is for user-caused conditions such as invalid
 * configurations (exits with an error code), warn()/inform() report
 * conditions without stopping the simulation.
 */

#ifndef ANTSIM_UTIL_LOGGING_HH
#define ANTSIM_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace antsim {

/** Verbosity levels for status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Get the process-wide log level (default Warn). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/**
 * Parse a log-level name: "error" (only panic/fatal output), "warn",
 * "info", or "debug". Fatal (user error) on anything else.
 */
LogLevel parseLogLevel(const std::string &name);

/** Stable name of a log level (inverse of parseLogLevel). */
const char *logLevelName(LogLevel level);

/**
 * Apply the ANTSIM_LOG_LEVEL environment variable when set (same
 * names as parseLogLevel). Called by bench_common before flag
 * parsing, so --log-level still wins over the environment.
 */
void initLogLevelFromEnv();

namespace detail {

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail

/**
 * Abort the simulation because of an internal invariant violation.
 * Use when something happens that should never happen regardless of
 * user input (i.e., an ANTSim bug).
 */
#define ANT_PANIC(...)                                                        \
    ::antsim::detail::panicImpl(__FILE__, __LINE__,                          \
                                ::antsim::detail::concat(__VA_ARGS__))

/**
 * Exit the simulation because of a user-caused error (bad configuration,
 * invalid argument values, over-capacity buffers, ...).
 */
#define ANT_FATAL(...)                                                        \
    ::antsim::detail::fatalImpl(__FILE__, __LINE__,                          \
                                ::antsim::detail::concat(__VA_ARGS__))

/** Warn about suspicious but survivable conditions. */
#define ANT_WARN(...)                                                         \
    ::antsim::detail::warnImpl(::antsim::detail::concat(__VA_ARGS__))

/** Normal operating status messages. */
#define ANT_INFORM(...)                                                       \
    ::antsim::detail::informImpl(::antsim::detail::concat(__VA_ARGS__))

/** Verbose debugging messages. */
#define ANT_DEBUG(...)                                                        \
    ::antsim::detail::debugImpl(::antsim::detail::concat(__VA_ARGS__))

/** Assertion that is kept in release builds; panics on failure. */
#define ANT_ASSERT(cond, ...)                                                 \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ANT_PANIC("assertion failed: " #cond " ",                        \
                      ::antsim::detail::concat(__VA_ARGS__));                 \
        }                                                                     \
    } while (0)

} // namespace antsim

#endif // ANTSIM_UTIL_LOGGING_HH
