#include "thread_pool.hh"

#include <algorithm>

// Header-inline producer APIs only: ant_util cannot link ant_obs
// (ant_obs links ant_util), and all recording below compiles to a
// thread-local pointer branch when observability is off.
#include "obs/host_trace.hh"
#include "obs/metrics.hh"
#include "util/logging.hh"

namespace antsim {

namespace {

/**
 * Worker identity of the current thread while it executes a job, so a
 * nested parallelFor can run inline under the caller's worker id
 * instead of deadlocking on the busy pool.
 */
thread_local const ThreadPool *t_active_pool = nullptr;
thread_local std::uint32_t t_worker_id = 0;

/** RAII scope marking this thread as worker @p id of @p pool. */
class WorkerScope
{
  public:
    WorkerScope(const ThreadPool *pool, std::uint32_t id)
        : prev_pool_(t_active_pool), prev_id_(t_worker_id)
    {
        t_active_pool = pool;
        t_worker_id = id;
    }

    ~WorkerScope()
    {
        t_active_pool = prev_pool_;
        t_worker_id = prev_id_;
    }

    WorkerScope(const WorkerScope &) = delete;
    WorkerScope &operator=(const WorkerScope &) = delete;

  private:
    const ThreadPool *prev_pool_;
    std::uint32_t prev_id_;
};

} // namespace

std::uint32_t
ThreadPool::resolveThreadCount(std::uint32_t requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::uint32_t>(hw);
}

ThreadPool::ThreadPool(std::uint32_t num_threads)
    : thread_count_(resolveThreadCount(num_threads))
{
    workers_.reserve(thread_count_ - 1);
    for (std::uint32_t w = 1; w < thread_count_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::runChunks(Job &job, std::uint32_t worker_id)
{
    const WorkerScope scope(this, worker_id);
    // Busy/chunk/item accounting per claimed block. The shard pointer
    // is resolved once: attachment happens at thread entry points, not
    // mid-job.
    obs::metrics::MetricShard *const metered = obs::metrics::shard();
    const std::uint64_t total = job.end - job.begin;
    for (;;) {
        const std::uint64_t start =
            job.cursor.fetch_add(job.grain, std::memory_order_relaxed);
        if (start >= job.end)
            break;
        const std::uint64_t stop = std::min(start + job.grain, job.end);
        const std::uint64_t busy_start =
            metered != nullptr ? obs::metrics::nowNs() : 0;
        // Once a worker failed, later blocks are claimed and retired
        // without running so `completed` still reaches `total` and the
        // caller wakes up to rethrow.
        if (!job.failed.load(std::memory_order_acquire)) {
            try {
                for (std::uint64_t i = start; i < stop; ++i)
                    (*job.fn)(i, worker_id);
            } catch (...) {
                {
                    const std::lock_guard<std::mutex> lock(mutex_);
                    if (!job.error)
                        job.error = std::current_exception();
                }
                job.failed.store(true, std::memory_order_release);
            }
        }
        if (metered != nullptr) {
            obs::metrics::workerCount(
                worker_id, obs::metrics::WorkerCounter::BusyNs,
                obs::metrics::nowNs() - busy_start);
            obs::metrics::workerCount(
                worker_id, obs::metrics::WorkerCounter::Chunks, 1);
            obs::metrics::workerCount(
                worker_id, obs::metrics::WorkerCounter::Items,
                stop - start);
        }
        const std::uint64_t done =
            job.completed.fetch_add(stop - start,
                                    std::memory_order_acq_rel) +
            (stop - start);
        if (done == total) {
            // Lock so the notify cannot slip between the caller's
            // predicate check and its wait.
            const std::lock_guard<std::mutex> lock(mutex_);
            done_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop(std::uint32_t worker_id)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        // Attach lazily every round: observability can be switched on
        // after the pool (and its workers) already exist.
        obs::metrics::threadAttach();
        obs::host::threadAttach("worker " + std::to_string(worker_id));
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            const std::uint64_t idle_start =
                obs::metrics::shard() != nullptr ? obs::metrics::nowNs()
                                                 : 0;
            wake_.wait(lock, [&] {
                return shutdown_ || generation_ != seen_generation;
            });
            if (obs::metrics::shard() != nullptr) {
                obs::metrics::workerCount(
                    worker_id, obs::metrics::WorkerCounter::IdleNs,
                    obs::metrics::nowNs() - idle_start);
            }
            if (shutdown_)
                return;
            seen_generation = generation_;
            // A late wake-up can observe the generation bump after
            // the caller already retired the job (job_ == nullptr).
            job = job_;
            if (job != nullptr)
                ++job->workersInside;
        }
        if (job != nullptr) {
            runChunks(*job, worker_id);
            const std::lock_guard<std::mutex> lock(mutex_);
            if (--job->workersInside == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::uint64_t begin, std::uint64_t end,
                        std::uint64_t grain, const IndexFn &fn)
{
    ANT_ASSERT(grain > 0, "parallelFor grain must be positive");
    if (begin >= end)
        return;

    // Nested call from one of this pool's workers: run inline under
    // the caller's worker id (the outer parallelFor owns the pool).
    if (t_active_pool == this) {
        for (std::uint64_t i = begin; i < end; ++i)
            fn(i, t_worker_id);
        return;
    }

    // Top-level job accounting (nested calls above are part of the
    // outer job). The caller attaches here so single-threaded pools
    // and test harnesses record without a bench entry point.
    obs::metrics::threadAttach();
    if (obs::metrics::shard() != nullptr) {
        obs::metrics::count(obs::metrics::Counter::PoolParallelFors);
        obs::metrics::count(obs::metrics::Counter::PoolItems,
                            end - begin);
        obs::metrics::histRecord(obs::metrics::Hist::PoolJobItems,
                                 end - begin);
        obs::metrics::gaugeMax(
            obs::metrics::Gauge::PoolMaxJobItems,
            static_cast<std::int64_t>(end - begin));
        obs::metrics::gaugeMax(obs::metrics::Gauge::PoolWorkers,
                               thread_count_);
    }

    if (thread_count_ == 1) {
        const WorkerScope scope(this, 0);
        for (std::uint64_t i = begin; i < end; ++i)
            fn(i, 0);
        return;
    }

    Job job;
    job.begin = begin;
    job.end = end;
    job.grain = grain;
    job.fn = &fn;
    job.cursor.store(begin, std::memory_order_relaxed);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        ++generation_;
    }
    wake_.notify_all();

    // The caller is worker 0.
    runChunks(job, 0);

    const std::uint64_t total = end - begin;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] {
            return job.completed.load(std::memory_order_acquire) ==
                total &&
                job.workersInside == 0;
        });
        job_ = nullptr;
    }
    if (job.error)
        std::rethrow_exception(job.error);
}

} // namespace antsim
