/**
 * @file
 * Layer tables of the evaluated networks (Sec. 6.1-6.2).
 *
 * CNNs: ResNet18, VGG16, DenseNet-121 and WRN-16-8 at CIFAR input
 * resolution (32x32), and ResNet50 at ImageNet resolution (224x224).
 * Only convolution layers are listed -- the paper omits the SGD weight
 * update and fully-connected heads from the CNN evaluation (Sec. 6.2).
 *
 * Matmul workloads: the text-translation transformer and the IMDB
 * text-classification RNN of Table 3 / Sec. 7.8.
 */

#ifndef ANTSIM_WORKLOAD_NETWORKS_HH
#define ANTSIM_WORKLOAD_NETWORKS_HH

#include <string>
#include <vector>

#include "workload/layer.hh"

namespace antsim {

/** ResNet18 for CIFAR (3x3 stem, four 2-block stages). */
std::vector<ConvLayer> resnet18Cifar();

/** ResNet18 for ImageNet (7x7 stem at 224x224; used by Fig. 1). */
std::vector<ConvLayer> resnet18Imagenet();

/** VGG16 for CIFAR (thirteen 3x3 convolutions). */
std::vector<ConvLayer> vgg16Cifar();

/** DenseNet-121 for CIFAR (growth 32, bottleneck blocks, transitions). */
std::vector<ConvLayer> densenet121Cifar();

/** Wide ResNet WRN-16-8 for CIFAR. */
std::vector<ConvLayer> wrn16x8Cifar();

/** ResNet50 for ImageNet (7x7 stem, bottleneck stages). */
std::vector<ConvLayer> resnet50Imagenet();

/** The five CNNs of Fig. 9 / Table 5, keyed by display name. */
struct NamedNetwork
{
    std::string name;
    std::vector<ConvLayer> layers;
    /** Sparsification used by the paper for this network. */
    bool syntheticTopK;
};

/** All Fig. 9 networks in paper order. */
std::vector<NamedNetwork> figure9Networks();

/** Text-translation transformer projection layers (Table 3). */
std::vector<MatmulLayer> transformerLayers();

/** IMDB text-classification RNN layers (Table 3). */
std::vector<MatmulLayer> rnnLayers();

} // namespace antsim

#endif // ANTSIM_WORKLOAD_NETWORKS_HH
