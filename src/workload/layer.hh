/**
 * @file
 * Network layer descriptors and training-phase geometry.
 *
 * A ConvLayer describes one convolution of a CNN in the usual NN terms
 * (channels, unpadded spatial dims, square kernel, stride, padding).
 * Training expands it into three outer-product problems (Eqs. 1-3):
 * the forward pass W * A, the backward pass R(W) * G_A, and the weight
 * update G_A * A, each decomposing into outChannels x inChannels
 * 2-D plane pairs. All five evaluated networks use same-padding
 * (pad = (k-1)/2) or 1x1/pad-0 convolutions, which is what the
 * backward-phase geometry in conv/rcp_model.hh assumes.
 *
 * A MatmulLayer describes one fully-connected/attention projection in
 * the Sec. 5 convention: out[H x S] = image[H x W] * kernel[R x S].
 */

#ifndef ANTSIM_WORKLOAD_LAYER_HH
#define ANTSIM_WORKLOAD_LAYER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "conv/problem_spec.hh"
#include "conv/rcp_model.hh"

namespace antsim {

/** The three convolution phases of Backprop (Sec. 2.1). */
enum class TrainingPhase : unsigned {
    /** A^{L+1} = W * A (Eq. 1). */
    Forward = 0,
    /** G_A^L = R(W) * G_A^{L+1} (Eq. 2). */
    Backward = 1,
    /** G_W = G_A^{L+1} * A (Eq. 3). */
    Update = 2,
};

/** Short name of a phase for tables ("W*A", "W*G_A", "G_A*A"). */
const char *phaseName(TrainingPhase phase);

/** One convolution layer of a CNN. */
struct ConvLayer
{
    std::string name;
    std::uint32_t inChannels;
    std::uint32_t outChannels;
    /** Unpadded input spatial dims. */
    std::uint32_t inH;
    std::uint32_t inW;
    /** Square kernel size (R = S = kernel). */
    std::uint32_t kernel;
    std::uint32_t stride;
    std::uint32_t pad;

    /** Padded image dims seen by the forward convolution. */
    std::uint32_t paddedH() const { return inH + 2 * pad; }
    std::uint32_t paddedW() const { return inW + 2 * pad; }

    /** The three phase geometries for one (k, c) plane pair. */
    PhaseSpecs
    phaseSpecs() const
    {
        return trainingPhaseSpecs(kernel, kernel, paddedH(), paddedW(),
                                  stride);
    }

    /** Spec of one phase. */
    ProblemSpec spec(TrainingPhase phase) const;

    /** Plane pairs per phase: outChannels * inChannels. */
    std::uint64_t
    planePairs() const
    {
        return static_cast<std::uint64_t>(outChannels) * inChannels;
    }

    /** Total dense MACs of the forward pass (for FLOP accounting). */
    std::uint64_t forwardMacs() const;
};

/** One matmul layer (Sec. 5 / Table 3 convention; W == R). */
struct MatmulLayer
{
    std::string name;
    std::uint32_t imageH;
    std::uint32_t imageW;
    std::uint32_t kernelR;
    std::uint32_t kernelS;

    ProblemSpec
    spec() const
    {
        return ProblemSpec::matmul(imageH, imageW, kernelR, kernelS);
    }
};

} // namespace antsim

#endif // ANTSIM_WORKLOAD_LAYER_HH
