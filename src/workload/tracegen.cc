#include "tracegen.hh"

#include "tensor/sparsify.hh"
#include "util/bfloat16.hh"
#include "util/logging.hh"
#include "workload/trace_cache.hh"

namespace antsim {

PlaneRecipe
convImageRecipe(const ConvLayer &layer, TrainingPhase phase,
                const SparsityProfile &profile, const PhaseSpecs &specs)
{
    const ProblemSpec &fwd = specs.forward;
    if (phase == TrainingPhase::Backward) {
        // Zero-dilate the gradient by the forward stride and center it
        // in the backward image (the re-padding).
        const ProblemSpec &bwd = specs.backward;
        const std::uint32_t gh = layer.stride * (fwd.outH() - 1) + 1;
        const std::uint32_t offset = (bwd.imageH() - gh) / 2;
        return {fwd.outH(), fwd.outW(), profile.grad, profile.method,
                bwd.imageH(), bwd.imageW(), offset, layer.stride, false};
    }
    return {layer.inH, layer.inW, profile.act, profile.method,
            layer.paddedH(), layer.paddedW(), layer.pad, 1, false};
}

PlaneRecipe
convKernelRecipe(const ConvLayer &layer, TrainingPhase phase,
                 const SparsityProfile &profile, const PhaseSpecs &specs)
{
    const ProblemSpec &fwd = specs.forward;
    if (phase == TrainingPhase::Update) {
        return PlaneRecipe::plain(fwd.outH(), fwd.outW(), profile.grad,
                                  profile.method);
    }
    PlaneRecipe recipe = PlaneRecipe::plain(
        layer.kernel, layer.kernel, profile.weight, profile.method);
    recipe.rotate = phase == TrainingPhase::Backward;
    return recipe;
}

std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
        std::uint64_t c_value)
{
    // SplitMix64-style avalanche over the concatenated stream.
    std::uint64_t x = seed;
    for (std::uint64_t v : {a, b, c_value}) {
        x += 0x9e3779b97f4a7c15ull + v;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        x = x ^ (x >> 31);
    }
    return x;
}

Dense2d<float>
generatePlane(std::uint32_t height, std::uint32_t width, double sparsity,
              SparsifyMethod method, Rng &rng)
{
    Dense2d<float> plane = method == SparsifyMethod::Bernoulli
        ? bernoulliPlane(height, width, sparsity, rng)
        : topKSparsify(randomDensePlane(height, width, rng), sparsity);
    // The datapath stores Bfloat16 values (Table 4); quantize here so
    // the whole simulation sees exactly what the hardware would.
    for (float &v : plane.data())
        v = bf16Round(v);
    return plane;
}

Dense2d<float>
embedPlane(const Dense2d<float> &inner, std::uint32_t out_height,
           std::uint32_t out_width, std::uint32_t offset,
           std::uint32_t dilation)
{
    ANT_ASSERT(dilation >= 1, "dilation must be at least 1");
    ANT_ASSERT(offset + dilation * (inner.height() - 1) < out_height &&
               offset + dilation * (inner.width() - 1) < out_width,
               "embedded plane does not fit: inner ", inner.height(), "x",
               inner.width(), " offset ", offset, " dilation ", dilation,
               " into ", out_height, "x", out_width);

    Dense2d<float> out(out_height, out_width);
    for (std::uint32_t y = 0; y < inner.height(); ++y)
        for (std::uint32_t x = 0; x < inner.width(); ++x)
            out.at(offset + dilation * x, offset + dilation * y) =
                inner.at(x, y);
    return out;
}

PlanePair
makeConvPhasePair(const ConvLayer &layer, TrainingPhase phase,
                  const SparsityProfile &profile, Rng &rng)
{
    const PhaseSpecs specs = layer.phaseSpecs();
    // Kernel plane first, then image: the draw order the per-pair API
    // has always used (the fused CSR generator consumes the identical
    // random stream as the legacy dense pipeline).
    CsrMatrix kernel = generateCsrPlane(
        convKernelRecipe(layer, phase, profile, specs), rng);
    CsrMatrix image = generateCsrPlane(
        convImageRecipe(layer, phase, profile, specs), rng);
    switch (phase) {
      case TrainingPhase::Forward:
        return {specs.forward, std::move(kernel), std::move(image)};
      case TrainingPhase::Backward:
        return {specs.backward, std::move(kernel), std::move(image)};
      case TrainingPhase::Update:
        return {specs.update, std::move(kernel), std::move(image)};
    }
    ANT_PANIC("unknown training phase");
}

std::uint64_t
stackTaskCount(const ConvLayer &layer, TrainingPhase phase)
{
    return phase == TrainingPhase::Backward ? layer.outChannels
                                            : layer.inChannels;
}

StackTask
makeConvPhaseTask(const ConvLayer &layer, TrainingPhase phase,
                  const SparsityProfile &profile, Rng &rng)
{
    // Image plane first, then the kernel stack -- the draw order this
    // API has always used. Planes go through the trace cache: a repeat
    // of the same (seed stream, recipe) reuses the shared plane and
    // fast-forwards rng as if it had generated.
    //
    //  - forward:  task per input channel c -- image = A[c], kernels =
    //    W[k][c] for every output channel k;
    //  - backward: task per output channel k -- image = dilated
    //    G_A[k], kernels = rotated W[k][c] for every input channel c;
    //  - update:   task per input channel c -- image = A[c], kernels =
    //    G_A[k] for every output channel k.
    const PhaseSpecs specs = layer.phaseSpecs();
    const PlaneRecipe image_recipe =
        convImageRecipe(layer, phase, profile, specs);
    const PlaneRecipe kernel_recipe =
        convKernelRecipe(layer, phase, profile, specs);

    std::shared_ptr<const CsrMatrix> image =
        cachedCsrPlane(image_recipe, rng);
    const std::uint32_t stack_size = phase == TrainingPhase::Backward
        ? layer.inChannels
        : layer.outChannels;
    std::vector<std::shared_ptr<const CsrMatrix>> kernels;
    kernels.reserve(stack_size);
    for (std::uint32_t i = 0; i < stack_size; ++i)
        kernels.push_back(cachedCsrPlane(kernel_recipe, rng));

    switch (phase) {
      case TrainingPhase::Forward:
        return {specs.forward, std::move(kernels), std::move(image)};
      case TrainingPhase::Backward:
        return {specs.backward, std::move(kernels), std::move(image)};
      case TrainingPhase::Update:
        return {specs.update, std::move(kernels), std::move(image)};
    }
    ANT_PANIC("unknown training phase");
}

PlanePair
makeMatmulPair(const MatmulLayer &layer, double sparsity,
               SparsifyMethod method, Rng &rng)
{
    // Image first, then kernel: the legacy draw order.
    CsrMatrix image = generateCsrPlane(
        PlaneRecipe::plain(layer.imageH, layer.imageW, sparsity, method),
        rng);
    CsrMatrix kernel = generateCsrPlane(
        PlaneRecipe::plain(layer.kernelR, layer.kernelS, sparsity, method),
        rng);
    return {layer.spec(), std::move(kernel), std::move(image)};
}

} // namespace antsim
