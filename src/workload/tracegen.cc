#include "tracegen.hh"

#include "tensor/sparsify.hh"
#include "util/bfloat16.hh"
#include "util/logging.hh"

namespace antsim {

std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
        std::uint64_t c_value)
{
    // SplitMix64-style avalanche over the concatenated stream.
    std::uint64_t x = seed;
    for (std::uint64_t v : {a, b, c_value}) {
        x += 0x9e3779b97f4a7c15ull + v;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        x = x ^ (x >> 31);
    }
    return x;
}

Dense2d<float>
generatePlane(std::uint32_t height, std::uint32_t width, double sparsity,
              SparsifyMethod method, Rng &rng)
{
    Dense2d<float> plane = method == SparsifyMethod::Bernoulli
        ? bernoulliPlane(height, width, sparsity, rng)
        : topKSparsify(randomDensePlane(height, width, rng), sparsity);
    // The datapath stores Bfloat16 values (Table 4); quantize here so
    // the whole simulation sees exactly what the hardware would.
    for (float &v : plane.data())
        v = bf16Round(v);
    return plane;
}

Dense2d<float>
embedPlane(const Dense2d<float> &inner, std::uint32_t out_height,
           std::uint32_t out_width, std::uint32_t offset,
           std::uint32_t dilation)
{
    ANT_ASSERT(dilation >= 1, "dilation must be at least 1");
    ANT_ASSERT(offset + dilation * (inner.height() - 1) < out_height &&
               offset + dilation * (inner.width() - 1) < out_width,
               "embedded plane does not fit: inner ", inner.height(), "x",
               inner.width(), " offset ", offset, " dilation ", dilation,
               " into ", out_height, "x", out_width);

    Dense2d<float> out(out_height, out_width);
    for (std::uint32_t y = 0; y < inner.height(); ++y)
        for (std::uint32_t x = 0; x < inner.width(); ++x)
            out.at(offset + dilation * x, offset + dilation * y) =
                inner.at(x, y);
    return out;
}

PlanePair
makeConvPhasePair(const ConvLayer &layer, TrainingPhase phase,
                  const SparsityProfile &profile, Rng &rng)
{
    const PhaseSpecs specs = layer.phaseSpecs();
    const ProblemSpec &fwd = specs.forward;

    switch (phase) {
      case TrainingPhase::Forward: {
        Dense2d<float> w = generatePlane(layer.kernel, layer.kernel,
                                         profile.weight, profile.method,
                                         rng);
        Dense2d<float> a = generatePlane(layer.inH, layer.inW, profile.act,
                                         profile.method, rng);
        return {fwd, CsrMatrix::fromDense(w),
                CsrMatrix::fromDense(embedPlane(a, layer.paddedH(),
                                                layer.paddedW(),
                                                layer.pad))};
      }
      case TrainingPhase::Backward: {
        Dense2d<float> w = generatePlane(layer.kernel, layer.kernel,
                                         profile.weight, profile.method,
                                         rng);
        Dense2d<float> ga = generatePlane(fwd.outH(), fwd.outW(),
                                          profile.grad, profile.method,
                                          rng);
        const ProblemSpec &bwd = specs.backward;
        // Zero-dilate the gradient by the forward stride and center it
        // in the backward image (the re-padding).
        const std::uint32_t gh = layer.stride * (fwd.outH() - 1) + 1;
        const std::uint32_t offset = (bwd.imageH() - gh) / 2;
        return {bwd, CsrMatrix::fromDense(w).rotated180(),
                CsrMatrix::fromDense(embedPlane(ga, bwd.imageH(),
                                                bwd.imageW(), offset,
                                                layer.stride))};
      }
      case TrainingPhase::Update: {
        Dense2d<float> ga = generatePlane(fwd.outH(), fwd.outW(),
                                          profile.grad, profile.method,
                                          rng);
        Dense2d<float> a = generatePlane(layer.inH, layer.inW, profile.act,
                                         profile.method, rng);
        return {specs.update, CsrMatrix::fromDense(ga),
                CsrMatrix::fromDense(embedPlane(a, layer.paddedH(),
                                                layer.paddedW(),
                                                layer.pad))};
      }
    }
    ANT_PANIC("unknown training phase");
}

std::uint64_t
stackTaskCount(const ConvLayer &layer, TrainingPhase phase)
{
    return phase == TrainingPhase::Backward ? layer.outChannels
                                            : layer.inChannels;
}

StackTask
makeConvPhaseTask(const ConvLayer &layer, TrainingPhase phase,
                  const SparsityProfile &profile, Rng &rng)
{
    const PhaseSpecs specs = layer.phaseSpecs();
    const ProblemSpec &fwd = specs.forward;

    switch (phase) {
      case TrainingPhase::Forward: {
        // Task per input channel c: image = A[c], kernels = W[k][c]
        // for every output channel k.
        Dense2d<float> a = generatePlane(layer.inH, layer.inW, profile.act,
                                         profile.method, rng);
        CsrMatrix image = CsrMatrix::fromDense(
            embedPlane(a, layer.paddedH(), layer.paddedW(), layer.pad));
        std::vector<CsrMatrix> kernels;
        kernels.reserve(layer.outChannels);
        for (std::uint32_t k = 0; k < layer.outChannels; ++k) {
            kernels.push_back(CsrMatrix::fromDense(
                generatePlane(layer.kernel, layer.kernel, profile.weight,
                              profile.method, rng)));
        }
        return {fwd, std::move(kernels), std::move(image)};
      }
      case TrainingPhase::Backward: {
        // Task per output channel k: image = dilated G_A[k], kernels =
        // rotated W[k][c] for every input channel c.
        const ProblemSpec &bwd = specs.backward;
        Dense2d<float> ga = generatePlane(fwd.outH(), fwd.outW(),
                                          profile.grad, profile.method,
                                          rng);
        const std::uint32_t gh = layer.stride * (fwd.outH() - 1) + 1;
        const std::uint32_t offset = (bwd.imageH() - gh) / 2;
        CsrMatrix image = CsrMatrix::fromDense(
            embedPlane(ga, bwd.imageH(), bwd.imageW(), offset,
                       layer.stride));
        std::vector<CsrMatrix> kernels;
        kernels.reserve(layer.inChannels);
        for (std::uint32_t c = 0; c < layer.inChannels; ++c) {
            kernels.push_back(
                CsrMatrix::fromDense(
                    generatePlane(layer.kernel, layer.kernel,
                                  profile.weight, profile.method, rng))
                    .rotated180());
        }
        return {bwd, std::move(kernels), std::move(image)};
      }
      case TrainingPhase::Update: {
        // Task per input channel c: image = A[c], kernels = G_A[k] for
        // every output channel k.
        Dense2d<float> a = generatePlane(layer.inH, layer.inW, profile.act,
                                         profile.method, rng);
        CsrMatrix image = CsrMatrix::fromDense(
            embedPlane(a, layer.paddedH(), layer.paddedW(), layer.pad));
        std::vector<CsrMatrix> kernels;
        kernels.reserve(layer.outChannels);
        for (std::uint32_t k = 0; k < layer.outChannels; ++k) {
            kernels.push_back(CsrMatrix::fromDense(
                generatePlane(fwd.outH(), fwd.outW(), profile.grad,
                              profile.method, rng)));
        }
        return {specs.update, std::move(kernels), std::move(image)};
      }
    }
    ANT_PANIC("unknown training phase");
}

PlanePair
makeMatmulPair(const MatmulLayer &layer, double sparsity,
               SparsifyMethod method, Rng &rng)
{
    Dense2d<float> image = generatePlane(layer.imageH, layer.imageW,
                                         sparsity, method, rng);
    Dense2d<float> kernel = generatePlane(layer.kernelR, layer.kernelS,
                                          sparsity, method, rng);
    return {layer.spec(), CsrMatrix::fromDense(kernel),
            CsrMatrix::fromDense(image)};
}

} // namespace antsim
