#include "trace_cache.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/bfloat16.hh"
#include "util/logging.hh"
#include "util/simd.hh"

#if defined(__x86_64__)
#define ANTSIM_X86_SIMD 1
#include <immintrin.h>
#endif

namespace antsim {

namespace {

/** dst[i] = |src[i]| (sign-bit clear, bit-identical to std::fabs). */
void
absArrayScalar(const float *src, float *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::fabs(src[i]);
}

/** Count of data[i] strictly greater than @p threshold. */
std::size_t
countGreaterScalar(const float *data, std::size_t n, float threshold)
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i)
        count += data[i] > threshold ? 1 : 0;
    return count;
}

#ifdef ANTSIM_X86_SIMD

__attribute__((target("avx2"))) void
absArrayAvx2(const float *src, float *dst, std::size_t n)
{
    const __m256 mask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(dst + i,
                         _mm256_and_ps(_mm256_loadu_ps(src + i), mask));
    }
    for (; i < n; ++i)
        dst[i] = std::fabs(src[i]);
}

__attribute__((target("avx2"))) std::size_t
countGreaterAvx2(const float *data, std::size_t n, float threshold)
{
    const __m256 t = _mm256_set1_ps(threshold);
    std::size_t count = 0;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // GT_OQ matches the scalar ordered > (the generated magnitudes
        // are never NaN either way).
        const int mask = _mm256_movemask_ps(
            _mm256_cmp_ps(_mm256_loadu_ps(data + i), t, _CMP_GT_OQ));
        count += static_cast<unsigned>(__builtin_popcount(
            static_cast<unsigned>(mask)));
    }
    for (; i < n; ++i)
        count += data[i] > threshold ? 1 : 0;
    return count;
}

#endif // ANTSIM_X86_SIMD

void
absArray(const float *src, float *dst, std::size_t n)
{
#ifdef ANTSIM_X86_SIMD
    if (simd::avx2Enabled()) {
        absArrayAvx2(src, dst, n);
        return;
    }
#endif
    absArrayScalar(src, dst, n);
}

std::size_t
countGreater(const float *data, std::size_t n, float threshold)
{
#ifdef ANTSIM_X86_SIMD
    if (simd::avx2Enabled())
        return countGreaterAvx2(data, n, threshold);
#endif
    return countGreaterScalar(data, n, threshold);
}

std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
std::atomic<std::uint64_t> g_generated{0};

bool
initialEnabled()
{
    const char *env = std::getenv("ANTSIM_TRACE_CACHE");
    if (env == nullptr)
        return true;
    return !(env[0] == '0' && env[1] == '\0');
}

std::atomic<bool> g_enabled{initialEnabled()};

/** Full identity of a cached plane: recipe plus pre-generation state. */
struct PlaneKey
{
    PlaneRecipe recipe;
    std::array<std::uint64_t, 4> state;

    bool operator==(const PlaneKey &o) const = default;
};

struct PlaneKeyHash
{
    std::size_t
    operator()(const PlaneKey &key) const
    {
        // SplitMix64-style avalanche over every field; the Rng state
        // words are already well mixed, the geometry words are not.
        std::uint64_t h = 0x9e3779b97f4a7c15ull;
        const auto mix = [&h](std::uint64_t v) {
            h += v + 0x9e3779b97f4a7c15ull;
            h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
            h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
            h ^= h >> 31;
        };
        const PlaneRecipe &r = key.recipe;
        mix((static_cast<std::uint64_t>(r.height) << 32) | r.width);
        std::uint64_t sparsity_bits = 0;
        static_assert(sizeof(sparsity_bits) == sizeof(r.sparsity));
        std::memcpy(&sparsity_bits, &r.sparsity, sizeof(sparsity_bits));
        mix(sparsity_bits);
        mix((static_cast<std::uint64_t>(r.outHeight) << 32) | r.outWidth);
        mix((static_cast<std::uint64_t>(r.offset) << 32) | r.dilation);
        mix((static_cast<std::uint64_t>(r.method) << 1) |
            (r.rotate ? 1 : 0));
        for (std::uint64_t word : key.state)
            mix(word);
        return static_cast<std::size_t>(h);
    }
};

struct PlaneEntry
{
    std::shared_ptr<const CsrMatrix> plane;
    /** Rng state after generation, replayed on every hit. */
    std::array<std::uint64_t, 4> postState;
};

/** Soft cap on cached payload bytes; inserts stop beyond it. */
constexpr std::size_t kMaxCachedBytes = 256ull * 1024 * 1024;

/**
 * The cache is sharded by key hash so concurrent workers (the parallel
 * runner generates planes from every thread) do not serialize on one
 * mutex; each shard carries its slice of the byte budget.
 */
constexpr std::size_t kShards = 16;

struct Shard
{
    std::mutex mutex;
    std::unordered_map<PlaneKey, PlaneEntry, PlaneKeyHash> planes;
    std::size_t cachedBytes = 0;
    /** Insertion order, front = oldest: FIFO eviction over budget.
     *  Safe for a pure memoization cache -- an evicted plane is simply
     *  regenerated (bit-identically) on its next lookup. */
    std::deque<PlaneKey> order;
};

static_assert(kShards <= obs::metrics::kMaxCacheShards,
              "per-shard occupancy gauge cannot hold every cache shard");

Shard &
shardFor(std::size_t hash)
{
    static std::array<Shard, kShards> shards;
    return shards[hash % kShards];
}

std::size_t
planeBytes(const CsrMatrix &m)
{
    return m.values().size() * sizeof(float) +
        m.columns().size() * sizeof(std::uint32_t) +
        m.rowPtr().size() * sizeof(std::uint32_t);
}

/**
 * Emit one surviving inner-plane value into the CSR arrays under
 * construction. Quantizes to bf16 exactly where the legacy pipeline
 * does (after sparsification, before compression) and drops values the
 * rounding flushed to zero, as fromDense would.
 */
inline void
emitValue(float value, std::uint32_t x, std::uint32_t y,
          const PlaneRecipe &recipe, std::vector<float> &values,
          std::vector<std::uint32_t> &columns,
          std::vector<std::uint32_t> &row_counts)
{
    const float quantized = bf16Round(value);
    if (quantized == 0.0f)
        return;
    values.push_back(quantized);
    columns.push_back(recipe.offset + recipe.dilation * x);
    ++row_counts[recipe.offset + recipe.dilation * y];
}

} // namespace

CsrMatrix
generateCsrPlane(const PlaneRecipe &recipe, Rng &rng)
{
    ANT_ASSERT(recipe.height > 0 && recipe.width > 0,
               "plane recipe needs positive inner dims");
    ANT_ASSERT(recipe.dilation >= 1, "dilation must be at least 1");
    ANT_ASSERT(recipe.offset +
                       recipe.dilation * (recipe.height - 1) <
                   recipe.outHeight &&
               recipe.offset + recipe.dilation * (recipe.width - 1) <
                   recipe.outWidth,
               "embedded plane does not fit: inner ", recipe.height, "x",
               recipe.width, " offset ", recipe.offset, " dilation ",
               recipe.dilation, " into ", recipe.outHeight, "x",
               recipe.outWidth);

    g_generated.fetch_add(1, std::memory_order_relaxed);

    std::vector<float> values;
    std::vector<std::uint32_t> columns;
    // Count entries per embedded row, prefix-summed into rowPtr below.
    // Thread-local scratch: benchmarks generate hundreds of thousands
    // of planes per run and the per-plane malloc shows up.
    static thread_local std::vector<std::uint32_t> row_counts;
    row_counts.assign(recipe.outHeight + 1, 0);

    if (recipe.method == SparsifyMethod::Bernoulli) {
        // Same draw sequence as bernoulliPlane: one Bernoulli trial per
        // cell in row-major order, one normal per surviving cell.
        const double keep_p = 1.0 - recipe.sparsity;
        const std::size_t expected = static_cast<std::size_t>(
            static_cast<double>(recipe.height) * recipe.width * keep_p);
        values.reserve(expected);
        columns.reserve(expected);
        for (std::uint32_t y = 0; y < recipe.height; ++y) {
            for (std::uint32_t x = 0; x < recipe.width; ++x) {
                if (!rng.bernoulli(keep_p))
                    continue;
                float f = static_cast<float>(rng.normal());
                if (f == 0.0f)
                    f = 1e-6f;
                emitValue(f, x, y, recipe, values, columns, row_counts);
            }
        }
    } else {
        // Same draw sequence as randomDensePlane: one normal per cell,
        // then the topKSparsify selection. The kept set is the first
        // `keep` cells under (magnitude desc, position asc) -- i.e.,
        // every cell whose magnitude beats the keep-th largest, plus
        // the earliest-position ties at exactly that threshold -- so a
        // scalar magnitude nth_element plus a tie budget reproduces the
        // legacy index-vector selection bit for bit at a fraction of
        // the memory traffic. Scratch buffers persist per thread: the
        // miss path runs once per distinct plane but across hundreds of
        // thousands of planes per benchmark.
        const std::size_t total =
            static_cast<std::size_t>(recipe.height) * recipe.width;
        static thread_local std::vector<float> data;
        static thread_local std::vector<float> mags;
        data.resize(total);
        for (auto &v : data) {
            float f = static_cast<float>(rng.normal());
            if (f == 0.0f)
                f = 1e-6f;
            v = f;
        }
        const auto keep = static_cast<std::size_t>(std::llround(
            static_cast<double>(total) * (1.0 - recipe.sparsity)));
        float threshold = 0.0f;
        std::size_t tie_budget = total;
        if (keep < total && keep > 0) {
            mags.resize(total);
            absArray(data.data(), mags.data(), total);
            std::nth_element(mags.begin(),
                             mags.begin() +
                                 static_cast<std::ptrdiff_t>(keep - 1),
                             mags.end(), std::greater<float>());
            threshold = mags[keep - 1];
            // The partition puts every magnitude above the threshold
            // into the first `keep` slots, so counting strict winners
            // only needs that prefix.
            const std::size_t above =
                countGreater(mags.data(), keep, threshold);
            tie_budget = keep - above;
        }
        values.reserve(keep);
        columns.reserve(keep);
        std::size_t idx = 0;
        for (std::uint32_t y = 0; y < recipe.height && keep > 0; ++y) {
            for (std::uint32_t x = 0; x < recipe.width; ++x, ++idx) {
                const float mag = std::fabs(data[idx]);
                if (mag < threshold)
                    continue;
                if (mag == threshold) {
                    if (tie_budget == 0)
                        continue;
                    --tie_budget;
                }
                emitValue(data[idx], x, y, recipe, values, columns,
                          row_counts);
            }
        }
    }

    // row_counts -> rowPtr (exclusive prefix): shift then accumulate.
    std::vector<std::uint32_t> row_ptr(recipe.outHeight + 1, 0);
    for (std::uint32_t y = 0; y < recipe.outHeight; ++y)
        row_ptr[y + 1] = row_ptr[y] + row_counts[y];

    CsrMatrix plane =
        CsrMatrix::fromRaw(recipe.outHeight, recipe.outWidth,
                           std::move(values), std::move(columns),
                           std::move(row_ptr));
    return recipe.rotate ? plane.rotated180() : plane;
}

std::shared_ptr<const CsrMatrix>
cachedCsrPlane(const PlaneRecipe &recipe, Rng &rng)
{
    if (!trace_cache::enabled()) {
        g_misses.fetch_add(1, std::memory_order_relaxed);
        obs::metrics::count(obs::metrics::Counter::TraceCacheMisses);
        return std::make_shared<const CsrMatrix>(
            generateCsrPlane(recipe, rng));
    }

    const PlaneKey key{recipe, rng.state()};
    const std::size_t hash = PlaneKeyHash{}(key);
    const std::size_t shard_index = hash % kShards;
    // The physical hit/miss outcome depends on worker interleaving, so
    // the trace records only the deterministic key hash; the exporter
    // classifies lookups logically (first occurrence in unit order =
    // miss), which matches what a single-threaded run observes.
    if (auto *rec = obs::recorder())
        rec->instant(obs::InstantKind::TraceCacheLookup, hash);
    Shard &shard = shardFor(hash);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.planes.find(key);
        if (it != shard.planes.end()) {
            g_hits.fetch_add(1, std::memory_order_relaxed);
            obs::metrics::count(obs::metrics::Counter::TraceCacheHits);
            rng.setState(it->second.postState);
            return it->second.plane;
        }
    }

    g_misses.fetch_add(1, std::memory_order_relaxed);
    obs::metrics::count(obs::metrics::Counter::TraceCacheMisses);
    auto plane =
        std::make_shared<const CsrMatrix>(generateCsrPlane(recipe, rng));

    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::size_t bytes = planeBytes(*plane);
    const std::size_t budget = kMaxCachedBytes / kShards;
    // Planes wider than the whole shard budget are never cached; for
    // everything else, FIFO-evict the oldest planes until the insert
    // fits, so long sweeps keep caching their working set instead of
    // freezing the first 256 MB they happened to generate.
    if (bytes <= budget) {
        // First insert wins: a racing generator produced the identical
        // plane, so keeping either is correct.
        const auto [it, inserted] =
            shard.planes.try_emplace(key, PlaneEntry{plane, rng.state()});
        if (inserted) {
            shard.cachedBytes += bytes;
            shard.order.push_back(key);
            while (shard.cachedBytes > budget) {
                const PlaneKey victim = shard.order.front();
                if (victim == key)
                    break;
                shard.order.pop_front();
                const auto vit = shard.planes.find(victim);
                ANT_ASSERT(vit != shard.planes.end(),
                           "trace-cache eviction order out of sync");
                const std::size_t victim_bytes =
                    planeBytes(*vit->second.plane);
                shard.cachedBytes -= victim_bytes;
                shard.planes.erase(vit);
                obs::metrics::count(
                    obs::metrics::Counter::TraceCacheEvictions);
                obs::metrics::count(
                    obs::metrics::Counter::TraceCacheEvictedBytes,
                    victim_bytes);
                obs::metrics::gaugeAdd(
                    obs::metrics::Gauge::TraceCacheResidentBytes,
                    -static_cast<std::int64_t>(victim_bytes));
                obs::metrics::gaugeAdd(
                    obs::metrics::Gauge::TraceCacheEntries, -1);
            }
            obs::metrics::count(obs::metrics::Counter::TraceCacheInserts);
            obs::metrics::histRecord(
                obs::metrics::Hist::TraceCachePlaneBytes, bytes);
            obs::metrics::gaugeAdd(
                obs::metrics::Gauge::TraceCacheResidentBytes,
                static_cast<std::int64_t>(bytes));
            obs::metrics::gaugeAdd(obs::metrics::Gauge::TraceCacheEntries,
                                   1);
            obs::metrics::cacheShardSet(
                shard_index,
                static_cast<std::int64_t>(shard.planes.size()), kShards);
        }
        return it->second.plane;
    }
    return plane;
}

namespace trace_cache {

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool enabled)
{
    g_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t
hits()
{
    return g_hits.load(std::memory_order_relaxed);
}

std::uint64_t
misses()
{
    return g_misses.load(std::memory_order_relaxed);
}

std::uint64_t
planesGenerated()
{
    return g_generated.load(std::memory_order_relaxed);
}

void
reset()
{
    for (std::size_t s = 0; s < kShards; ++s) {
        Shard &shard = shardFor(s);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.planes.clear();
        shard.order.clear();
        shard.cachedBytes = 0;
        obs::metrics::cacheShardSet(s, 0, kShards);
    }
    // The residency gauges track live content; dropping every shard
    // zeroes them (peaks persist by design).
    obs::metrics::gaugeSet(obs::metrics::Gauge::TraceCacheResidentBytes,
                           0);
    obs::metrics::gaugeSet(obs::metrics::Gauge::TraceCacheEntries, 0);
    g_hits.store(0, std::memory_order_relaxed);
    g_misses.store(0, std::memory_order_relaxed);
    g_generated.store(0, std::memory_order_relaxed);
}

} // namespace trace_cache

} // namespace antsim
