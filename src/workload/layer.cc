#include "layer.hh"

#include "util/logging.hh"

namespace antsim {

const char *
phaseName(TrainingPhase phase)
{
    switch (phase) {
      case TrainingPhase::Forward: return "W*A";
      case TrainingPhase::Backward: return "W*G_A";
      case TrainingPhase::Update: return "G_A*A";
    }
    ANT_PANIC("unknown training phase");
}

ProblemSpec
ConvLayer::spec(TrainingPhase phase) const
{
    const PhaseSpecs specs = phaseSpecs();
    switch (phase) {
      case TrainingPhase::Forward: return specs.forward;
      case TrainingPhase::Backward: return specs.backward;
      case TrainingPhase::Update: return specs.update;
    }
    ANT_PANIC("unknown training phase");
}

std::uint64_t
ConvLayer::forwardMacs() const
{
    const ProblemSpec fwd = spec(TrainingPhase::Forward);
    return planePairs() * fwd.denseValidProducts();
}

} // namespace antsim
