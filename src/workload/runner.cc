#include "runner.hh"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>

#include "obs/host_trace.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "report/profiler.hh"
#include "sim/chunking.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "verify/audit_hooks.hh"

namespace antsim {

namespace {

/** Short phase names for trace labels and the progress heartbeat. */
constexpr const char *kPhaseNames[3] = {"fwd", "bwd", "upd"};

/** Record the per-row non-zero distribution of a task's image plane. */
void
recordImageRowHist(obs::UnitRecorder &rec, const CsrMatrix &image)
{
    const auto &row_ptr = image.rowPtr();
    for (std::size_t y = 0; y + 1 < row_ptr.size(); ++y)
        rec.hist(obs::HistId::ImageRowNnz, row_ptr[y + 1] - row_ptr[y]);
}

/** Record the residual-RCP permille of one finished chunk task. */
void
recordRcpHist(obs::UnitRecorder &rec, const CounterSet &c)
{
    const std::uint64_t executed = c.get(Counter::MultsExecuted);
    if (executed > 0) {
        rec.hist(obs::HistId::RcpPermille,
                 c.get(Counter::MultsRcp) * 1000 / executed);
    }
}

/** Run one generated plane pair through the PE, chunked to capacity. */
CounterSet
runPlanePair(PeModel &pe, const PlanePair &pair, std::uint32_t capacity)
{
    CounterSet total;
    // Dense-tiled baselines must not have their MAC stream split by
    // the sparse buffer capacity.
    if (!pe.usesCompressedOperands())
        capacity = std::numeric_limits<std::uint32_t>::max();
    std::vector<ChunkPair> tasks;
    std::vector<CsrMatrix> kernel_chunks;
    std::vector<CsrMatrix> image_chunks;
    {
        const ScopedTimer timer(Stage::PlanBuild);
        kernel_chunks = chunkByCapacity(pair.kernel, capacity);
        image_chunks = chunkByCapacity(pair.image, capacity);
        tasks = allChunkPairs(kernel_chunks, image_chunks);
    }
    obs::UnitRecorder *rec = obs::recorder();
    if (rec)
        recordImageRowHist(*rec, pair.image);
    const ScopedTimer timer(Stage::PeSim);
    for (const auto &task : tasks) {
        if (rec)
            rec->beginTask();
        const PeResult r = pe.runPair(pair.spec, *task.kernel, *task.image,
                                      /*collect_output=*/false);
        if (rec) {
            rec->endTask();
            recordRcpHist(*rec, r.counters);
        }
        total += r.counters;
        total.add(Counter::TasksProcessed);
    }
    return total;
}

/**
 * Per-worker PE replicas for the parallel engine. Worker 0 is the
 * calling thread and keeps the caller's PE (so a 1-thread run
 * simulates on the exact object it was handed); every other worker
 * owns a clone() with no shared mutable state.
 */
class WorkerPes
{
  public:
    WorkerPes(PeModel &pe, std::uint32_t worker_count) : pes_(worker_count)
    {
        pes_[0] = &pe;
        clones_.reserve(worker_count - 1);
        for (std::uint32_t w = 1; w < worker_count; ++w) {
            clones_.push_back(pe.clone());
            pes_[w] = clones_.back().get();
        }
    }

    PeModel &operator[](std::uint32_t worker) const { return *pes_[worker]; }

  private:
    std::vector<PeModel *> pes_;
    std::vector<std::unique_ptr<PeModel>> clones_;
};

/** One simulated (layer, phase, sample) unit of a conv network run. */
struct ConvUnit
{
    std::uint32_t layer = 0;
    std::uint32_t phase = 0;
    /** Channel index the sample maps to (seeds the unit's trace). */
    std::uint64_t taskIndex = 0;
};

/**
 * Simulate one conv unit. Pure in (config, profile, layer, unit): all
 * randomness descends from mixSeed, so the result is independent of
 * which worker runs it and in what order.
 */
CounterSet
runConvUnit(PeModel &pe, const ConvLayer &layer,
            const SparsityProfile &profile, const RunConfig &config,
            const ConvUnit &unit)
{
    CounterSet counters;
    const auto phase = static_cast<TrainingPhase>(unit.phase);
    Rng rng(mixSeed(config.seed, unit.layer, unit.phase, unit.taskIndex));
    const StackTask task = [&] {
        const ScopedTimer timer(Stage::TraceGen);
        return makeConvPhaseTask(layer, phase, profile, rng);
    }();
    const auto kernel_ptrs = task.kernelPtrs();

    // Image chunking: the stationary image must fit the 8 KB buffer;
    // each image chunk reloads the PE (its own start-up) and
    // re-streams the kernel stack.
    std::uint32_t capacity = config.chunkCapacity;
    if (!pe.usesCompressedOperands())
        capacity = std::numeric_limits<std::uint32_t>::max();
    std::vector<CsrMatrix> image_chunks;
    {
        const ScopedTimer timer(Stage::PlanBuild);
        image_chunks = chunkByCapacity(*task.image, capacity);
    }
    obs::UnitRecorder *rec = obs::recorder();
    if (rec)
        recordImageRowHist(*rec, *task.image);
    const ScopedTimer timer(Stage::PeSim);
    for (const CsrMatrix &image_chunk : image_chunks) {
        if (rec)
            rec->beginTask();
        const PeResult r = pe.runStack(task.spec, kernel_ptrs, image_chunk,
                                       /*collect_output=*/false);
        if (rec) {
            rec->endTask();
            recordRcpHist(*rec, r.counters);
        }
        counters += r.counters;
        counters.add(Counter::TasksProcessed);
    }
    return counters;
}

} // namespace

std::uint32_t
effectiveWorkerCount(std::uint32_t requested)
{
    // The engine's results are thread-count-invariant by construction
    // (parallel_determinism_test), so oversubscribing the machine buys
    // nothing and costs context switches and cache churn in the
    // CPU-bound unit loop -- clamp the request to the hardware.
    const std::uint32_t resolved = ThreadPool::resolveThreadCount(requested);
    return std::min(resolved, ThreadPool::resolveThreadCount(0));
}

void
RunConfig::validate() const
{
    // A worker count beyond any plausible machine is almost always a
    // negative flag value wrapped by an unsigned conversion.
    constexpr std::uint32_t kMaxThreads = 4096;
    if (numThreads > kMaxThreads)
        ANT_FATAL("numThreads = ", numThreads, " is not a sane worker ",
                  "count (max ", kMaxThreads,
                  "); was a negative value converted to unsigned?");
    if (sampleCap == 0)
        ANT_FATAL("sampleCap must be positive");
    if (numPes == 0)
        ANT_FATAL("numPes must be positive");
    if (chunkCapacity == 0)
        ANT_FATAL("chunkCapacity must be positive");
}

double
NetworkStats::rcpAvoidedFraction() const
{
    const std::uint64_t avoided = total.get(Counter::RcpsAvoided);
    const std::uint64_t suffered = total.get(Counter::MultsRcp);
    const std::uint64_t all = avoided + suffered;
    return all == 0 ? 1.0
                    : static_cast<double>(avoided) /
            static_cast<double>(all);
}

double
NetworkStats::validMultFraction() const
{
    const std::uint64_t executed = total.get(Counter::MultsExecuted);
    return executed == 0 ? 1.0
                         : static_cast<double>(
                               total.get(Counter::MultsValid)) /
            static_cast<double>(executed);
}

NetworkStats
runConvNetwork(PeModel &pe, const std::vector<ConvLayer> &layers,
               const SparsityProfile &profile, const RunConfig &config)
{
    config.validate();
    NetworkStats stats;

    // Flatten the simulated units so the pool can schedule them freely;
    // the per-layer/phase skeleton is laid down up front.
    std::vector<ConvUnit> units;
    for (std::size_t li = 0; li < layers.size(); ++li) {
        const ConvLayer &layer = layers[li];
        LayerStats layer_stats;
        layer_stats.name = layer.name;
        for (unsigned pi = 0; pi < 3; ++pi) {
            if (!config.phases[pi])
                continue;
            const auto phase = static_cast<TrainingPhase>(pi);
            PhaseStats &ps = layer_stats.phases[pi];
            // One channel-batched task per image channel (forward,
            // update) or gradient channel (backward); the kernel stack
            // covers the other channel axis in full.
            ps.pairsTotal = stackTaskCount(layer, phase);
            ps.pairsSimulated = std::min<std::uint64_t>(
                ps.pairsTotal, config.sampleCap);
            for (std::uint64_t s = 0; s < ps.pairsSimulated; ++s) {
                // Spread samples evenly across the channel axis.
                units.push_back({static_cast<std::uint32_t>(li), pi,
                                 s * ps.pairsTotal / ps.pairsSimulated});
            }
        }
        stats.layers.push_back(std::move(layer_stats));
    }

    // Simulate every unit on a worker-private PE replica. Each unit's
    // counters land in the slot keyed by its task index, so nothing
    // downstream depends on scheduling.
    obs::TraceSink *const sink = obs::traceSink();
    const std::string run_label =
        config.runLabel.empty() ? "conv_network" : config.runLabel;
    std::size_t trace_run = 0;
    if (sink)
        trace_run = sink->beginRun(run_label, units.size());
    obs::metrics::threadAttach();
    obs::metrics::count(obs::metrics::Counter::RunnerRuns);
    const obs::host::ScopedSpan host_run_span("run", run_label);

    // Progress heartbeat: ~8 info-level lines per run, counted with a
    // relaxed atomic so it never perturbs simulation results.
    const std::uint64_t heartbeat_step =
        std::max<std::uint64_t>(1, units.size() / 8);
    std::atomic<std::uint64_t> units_done{0};

    std::vector<CounterSet> unit_counters(units.size());
    ThreadPool pool(effectiveWorkerCount(config.numThreads));
    const WorkerPes worker_pes(pe, pool.threadCount());
    pool.parallelFor(
        0, units.size(), /*grain=*/1,
        // antsim-lint: allow(parallel-capture-discipline) -- per-slot
        // discipline: each task writes only unit_counters[i] (its own
        // task-indexed slot) plus relaxed atomics; all other captures
        // are read-only, and each worker simulates on its private
        // worker_pes[worker] clone (parallel_determinism_test).
        [&](std::uint64_t i, std::uint32_t worker) {
            const ConvUnit &unit = units[i];
            const ConvLayer &layer = layers[unit.layer];
            // The label feeds both traces; host unit spans carry
            // {run, unit} args to cross-link with the simulated-time
            // trace's unit events.
            const bool host_on = obs::host::buf() != nullptr;
            std::string label;
            if (sink != nullptr || host_on) {
                label = layer.name + "/" + kPhaseNames[unit.phase] +
                    "#" + std::to_string(unit.taskIndex);
            }
            const obs::ScopedUnitTrace trace(
                sink, trace_run, i, sink ? label : std::string());
            const obs::host::ScopedSpan host_span(
                "unit", host_on ? label : std::string(),
                host_on ? "{\"run\":\"" + run_label + "\",\"unit\":" +
                        std::to_string(i) + "}"
                        : std::string());
            const std::uint64_t unit_start =
                obs::metrics::shard() != nullptr ? obs::metrics::nowNs()
                                                 : 0;
            unit_counters[i] =
                runConvUnit(worker_pes[worker], layer, profile, config,
                            unit);
            if (obs::metrics::shard() != nullptr) {
                obs::metrics::count(obs::metrics::Counter::RunnerUnits);
                obs::metrics::histRecord(
                    obs::metrics::Hist::UnitWallNs,
                    obs::metrics::nowNs() - unit_start);
            }
            const std::uint64_t done =
                units_done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (logLevel() >= LogLevel::Info &&
                (done % heartbeat_step == 0 || done == units.size())) {
                if (obs::metrics::shard() != nullptr) {
                    // Live metric snapshot alongside the progress line:
                    // cache effectiveness and residency while running.
                    ANT_INFORM(
                        run_label, ": ", done, "/", units.size(),
                        " units simulated (last: ", layer.name, "/",
                        kPhaseNames[unit.phase], "; cache ",
                        obs::metrics::counterTotal(
                            obs::metrics::Counter::TraceCacheHits),
                        " hits / ",
                        obs::metrics::counterTotal(
                            obs::metrics::Counter::TraceCacheMisses),
                        " misses, ",
                        obs::metrics::gaugeValue(
                            obs::metrics::Gauge::TraceCacheResidentBytes) /
                            (1024 * 1024),
                        " MiB resident)");
                } else {
                    ANT_INFORM(run_label, ": ", done, "/", units.size(),
                               " units simulated (last: ", layer.name,
                               "/", kPhaseNames[unit.phase], ")");
                }
            }
        });

    // Ordered reduction: fold the per-unit counters back into the
    // (layer, phase) skeleton in task-index order -- the exact order
    // the serial loop accumulated them -- then scale and audit each
    // phase as before. Bit-identical for every thread count.
    const ScopedTimer reduce_timer(Stage::Reduce);
    std::uint64_t scaled_sets = 0;
    std::size_t next_unit = 0;
    for (LayerStats &layer_stats : stats.layers) {
        for (unsigned pi = 0; pi < 3; ++pi) {
            if (!config.phases[pi])
                continue;
            PhaseStats &ps = layer_stats.phases[pi];
            for (std::uint64_t s = 0; s < ps.pairsSimulated; ++s)
                ps.counters += unit_counters[next_unit++];
            ps.counters.scale(ps.pairsTotal, ps.pairsSimulated);
            // Rational scaling rounds each counter independently, so
            // the additive laws hold only up to a couple of counts.
            verify::auditAggregateOrPanic("scaled phase counters",
                                          ps.counters, /*slack=*/2);
            ++scaled_sets;
            stats.total += ps.counters;
        }
    }
    ANT_ASSERT(next_unit == units.size(),
               "parallel reduction consumed every unit exactly once");
    verify::auditAggregateOrPanic("conv network totals", stats.total,
                                  2 * scaled_sets);
    return stats;
}

NetworkStats
runMatmulNetwork(PeModel &pe, const std::vector<MatmulLayer> &layers,
                 double sparsity, SparsifyMethod method,
                 const RunConfig &config)
{
    config.validate();
    NetworkStats stats;

    obs::TraceSink *const sink = obs::traceSink();
    const std::string run_label =
        config.runLabel.empty() ? "matmul_network" : config.runLabel;
    std::size_t trace_run = 0;
    if (sink)
        trace_run = sink->beginRun(run_label, layers.size());
    obs::metrics::threadAttach();
    obs::metrics::count(obs::metrics::Counter::RunnerRuns);
    const obs::host::ScopedSpan host_run_span("run", run_label);
    const std::uint64_t heartbeat_step =
        std::max<std::uint64_t>(1, layers.size() / 8);
    std::atomic<std::uint64_t> layers_done{0};

    std::vector<CounterSet> layer_counters(layers.size());
    ThreadPool pool(effectiveWorkerCount(config.numThreads));
    const WorkerPes worker_pes(pe, pool.threadCount());
    pool.parallelFor(
        0, layers.size(), /*grain=*/1,
        // antsim-lint: allow(parallel-capture-discipline) -- per-slot
        // discipline: each task writes only layer_counters[li] (its
        // own layer-indexed slot) plus relaxed atomics; other captures
        // are read-only, and each worker simulates on its private
        // worker_pes[worker] clone (parallel_determinism_test).
        [&](std::uint64_t li, std::uint32_t worker) {
            const bool host_on = obs::host::buf() != nullptr;
            const obs::ScopedUnitTrace trace(
                sink, trace_run, li,
                sink ? layers[li].name : std::string());
            const obs::host::ScopedSpan host_span(
                "unit", host_on ? layers[li].name : std::string(),
                host_on ? "{\"run\":\"" + run_label + "\",\"unit\":" +
                        std::to_string(li) + "}"
                        : std::string());
            const std::uint64_t unit_start =
                obs::metrics::shard() != nullptr ? obs::metrics::nowNs()
                                                 : 0;
            Rng rng(mixSeed(config.seed, li, 0, 0));
            const PlanePair pair = [&] {
                const ScopedTimer timer(Stage::TraceGen);
                return makeMatmulPair(layers[li], sparsity, method, rng);
            }();
            layer_counters[li] = runPlanePair(worker_pes[worker], pair,
                                              config.chunkCapacity);
            if (obs::metrics::shard() != nullptr) {
                obs::metrics::count(obs::metrics::Counter::RunnerUnits);
                obs::metrics::histRecord(
                    obs::metrics::Hist::UnitWallNs,
                    obs::metrics::nowNs() - unit_start);
            }
            const std::uint64_t done =
                layers_done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (logLevel() >= LogLevel::Info &&
                (done % heartbeat_step == 0 || done == layers.size())) {
                ANT_INFORM(run_label, ": ", done, "/", layers.size(),
                           " layers simulated (last: ", layers[li].name,
                           ")");
            }
        });

    const ScopedTimer reduce_timer(Stage::Reduce);
    for (std::size_t li = 0; li < layers.size(); ++li) {
        LayerStats layer_stats;
        layer_stats.name = layers[li].name;
        PhaseStats &ps = layer_stats.phases[0];
        ps.pairsTotal = 1;
        ps.pairsSimulated = 1;
        ps.counters += layer_counters[li];
        stats.total += ps.counters;
        stats.layers.push_back(std::move(layer_stats));
    }
    verify::auditAggregateOrPanic("matmul network totals", stats.total,
                                  /*slack=*/0);
    return stats;
}

double
speedupOf(const NetworkStats &slow, const NetworkStats &fast)
{
    const auto fast_cycles =
        static_cast<double>(fast.total.get(Counter::Cycles));
    const auto slow_cycles =
        static_cast<double>(slow.total.get(Counter::Cycles));
    ANT_ASSERT(fast_cycles > 0.0, "fast run has zero cycles");
    return slow_cycles / fast_cycles;
}

double
energyRatioOf(const NetworkStats &slow, const NetworkStats &fast,
              const EnergyModel &model)
{
    const double fast_pj = fast.energyPj(model);
    const double slow_pj = slow.energyPj(model);
    ANT_ASSERT(fast_pj > 0.0, "fast run has zero energy");
    return slow_pj / fast_pj;
}

} // namespace antsim
