#include "runner.hh"

#include <algorithm>
#include <limits>

#include "sim/chunking.hh"
#include "util/logging.hh"
#include "verify/audit_hooks.hh"

namespace antsim {

namespace {

/** Run one generated plane pair through the PE, chunked to capacity. */
CounterSet
runPlanePair(PeModel &pe, const PlanePair &pair, std::uint32_t capacity)
{
    CounterSet total;
    // Dense-tiled baselines must not have their MAC stream split by
    // the sparse buffer capacity.
    if (!pe.usesCompressedOperands())
        capacity = std::numeric_limits<std::uint32_t>::max();
    const auto kernel_chunks = chunkByCapacity(pair.kernel, capacity);
    const auto image_chunks = chunkByCapacity(pair.image, capacity);
    for (const auto &task : allChunkPairs(kernel_chunks, image_chunks)) {
        const PeResult r = pe.runPair(pair.spec, *task.kernel, *task.image,
                                      /*collect_output=*/false);
        total += r.counters;
        total.add(Counter::TasksProcessed);
    }
    return total;
}

} // namespace

double
NetworkStats::rcpAvoidedFraction() const
{
    const std::uint64_t avoided = total.get(Counter::RcpsAvoided);
    const std::uint64_t suffered = total.get(Counter::MultsRcp);
    const std::uint64_t all = avoided + suffered;
    return all == 0 ? 1.0
                    : static_cast<double>(avoided) /
            static_cast<double>(all);
}

double
NetworkStats::validMultFraction() const
{
    const std::uint64_t executed = total.get(Counter::MultsExecuted);
    return executed == 0 ? 1.0
                         : static_cast<double>(
                               total.get(Counter::MultsValid)) /
            static_cast<double>(executed);
}

NetworkStats
runConvNetwork(PeModel &pe, const std::vector<ConvLayer> &layers,
               const SparsityProfile &profile, const RunConfig &config)
{
    ANT_ASSERT(config.sampleCap > 0, "sampleCap must be positive");
    NetworkStats stats;
    std::uint64_t scaled_sets = 0;

    for (std::size_t li = 0; li < layers.size(); ++li) {
        const ConvLayer &layer = layers[li];
        LayerStats layer_stats;
        layer_stats.name = layer.name;

        for (unsigned pi = 0; pi < 3; ++pi) {
            if (!config.phases[pi])
                continue;
            const auto phase = static_cast<TrainingPhase>(pi);
            PhaseStats &ps = layer_stats.phases[pi];
            // One channel-batched task per image channel (forward,
            // update) or gradient channel (backward); the kernel stack
            // covers the other channel axis in full.
            ps.pairsTotal = stackTaskCount(layer, phase);
            ps.pairsSimulated = std::min<std::uint64_t>(
                ps.pairsTotal, config.sampleCap);

            for (std::uint64_t s = 0; s < ps.pairsSimulated; ++s) {
                // Spread samples evenly across the channel axis.
                const std::uint64_t task_index =
                    s * ps.pairsTotal / ps.pairsSimulated;
                Rng rng(mixSeed(config.seed, li, pi, task_index));
                const StackTask task =
                    makeConvPhaseTask(layer, phase, profile, rng);
                const auto kernel_ptrs = task.kernelPtrs();

                // Image chunking: the stationary image must fit the
                // 8 KB buffer; each image chunk reloads the PE (its
                // own start-up) and re-streams the kernel stack.
                std::uint32_t capacity = config.chunkCapacity;
                if (!pe.usesCompressedOperands())
                    capacity = std::numeric_limits<std::uint32_t>::max();
                for (const CsrMatrix &image_chunk :
                     chunkByCapacity(task.image, capacity)) {
                    const PeResult r =
                        pe.runStack(task.spec, kernel_ptrs, image_chunk,
                                    /*collect_output=*/false);
                    ps.counters += r.counters;
                    ps.counters.add(Counter::TasksProcessed);
                }
            }
            ps.counters.scale(ps.pairsTotal, ps.pairsSimulated);
            // Rational scaling rounds each counter independently, so
            // the additive laws hold only up to a couple of counts.
            verify::auditAggregateOrPanic("scaled phase counters",
                                          ps.counters, /*slack=*/2);
            ++scaled_sets;
            stats.total += ps.counters;
        }
        stats.layers.push_back(std::move(layer_stats));
    }
    verify::auditAggregateOrPanic("conv network totals", stats.total,
                                  2 * scaled_sets);
    return stats;
}

NetworkStats
runMatmulNetwork(PeModel &pe, const std::vector<MatmulLayer> &layers,
                 double sparsity, SparsifyMethod method,
                 const RunConfig &config)
{
    NetworkStats stats;
    for (std::size_t li = 0; li < layers.size(); ++li) {
        LayerStats layer_stats;
        layer_stats.name = layers[li].name;
        PhaseStats &ps = layer_stats.phases[0];
        ps.pairsTotal = 1;
        ps.pairsSimulated = 1;

        Rng rng(mixSeed(config.seed, li, 0, 0));
        const PlanePair pair =
            makeMatmulPair(layers[li], sparsity, method, rng);
        ps.counters += runPlanePair(pe, pair, config.chunkCapacity);
        stats.total += ps.counters;
        stats.layers.push_back(std::move(layer_stats));
    }
    verify::auditAggregateOrPanic("matmul network totals", stats.total,
                                  /*slack=*/0);
    return stats;
}

double
speedupOf(const NetworkStats &slow, const NetworkStats &fast)
{
    const auto fast_cycles =
        static_cast<double>(fast.total.get(Counter::Cycles));
    const auto slow_cycles =
        static_cast<double>(slow.total.get(Counter::Cycles));
    ANT_ASSERT(fast_cycles > 0.0, "fast run has zero cycles");
    return slow_cycles / fast_cycles;
}

double
energyRatioOf(const NetworkStats &slow, const NetworkStats &fast,
              const EnergyModel &model)
{
    const double fast_pj = fast.energyPj(model);
    const double slow_pj = slow.energyPj(model);
    ANT_ASSERT(fast_pj > 0.0, "fast run has zero energy");
    return slow_pj / fast_pj;
}

} // namespace antsim
