/**
 * @file
 * Experiment runner: simulate a network's training convolutions on an
 * accelerator model and aggregate counters.
 *
 * A conv layer expands into outChannels x inChannels plane pairs per
 * phase. The runner simulates a deterministic sample of those pairs
 * (counters are linear in the pair count, so scaling the sampled
 * counters by pairsTotal/pairsSampled is unbiased; see DESIGN.md) and
 * accumulates per-phase, per-layer, and network totals.
 *
 * Accelerator-level cycles follow the paper's perfect-load-balance
 * assumption (Sec. 6.1): accelCycles = ceil(sum of PE task cycles /
 * numPes). Speedup and relative energy between two runs are therefore
 * ratios of summed PE cycles / energies.
 *
 * Execution is parallel when RunConfig::numThreads != 1: the sampled
 * (layer, phase, sample) units are scheduled across a ThreadPool,
 * each worker simulates on its own PeModel::clone(), and the per-unit
 * CounterSets are reduced in task-index order -- so NetworkStats is
 * bit-identical for every thread count (parallel_determinism_test).
 */

#ifndef ANTSIM_WORKLOAD_RUNNER_HH
#define ANTSIM_WORKLOAD_RUNNER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/energy.hh"
#include "sim/pe_model.hh"
#include "workload/networks.hh"
#include "workload/tracegen.hh"

namespace antsim {

/** Runner parameters. */
struct RunConfig
{
    /** Max plane pairs sampled per (layer, phase). */
    std::uint32_t sampleCap = 24;
    /** Root seed of the deterministic trace hierarchy. */
    std::uint64_t seed = 42;
    /** PEs for accelerator-cycle reduction (Table 4: 64). */
    std::uint32_t numPes = 64;
    /** Operand chunk capacity in non-zeros (8 KB / 16-bit values). */
    std::uint32_t chunkCapacity = 4096;
    /** Which phases to simulate (Forward, Backward, Update). */
    std::array<bool, 3> phases = {true, true, true};
    /**
     * Worker threads for the parallel engine: 0 selects
     * hardware_concurrency, 1 (the default) runs inline on the calling
     * thread. Results are bit-identical for every value -- each
     * simulated (layer, phase, sample) unit is a pure function of the
     * seed hierarchy, each worker runs on a private PeModel::clone(),
     * and per-unit counters are reduced in task-index order (see
     * DESIGN.md "Parallel execution model").
     */
    std::uint32_t numThreads = 1;

    /**
     * Display label of this run in the simulated-time trace and the
     * progress heartbeat (e.g. "resnet18/ant"). Empty picks a generic
     * name; the label never influences simulation results.
     */
    std::string runLabel;

    /**
     * Fatal (user-error) check of the configuration. The runners call
     * it on entry so a nonsensical value -- e.g. a negative --threads
     * wrapped to four billion by an unsigned conversion -- fails with
     * a clear message instead of an allocation explosion.
     */
    void validate() const;
};

/** Aggregated statistics of one (layer, phase). */
struct PhaseStats
{
    CounterSet counters;
    std::uint64_t pairsTotal = 0;
    std::uint64_t pairsSimulated = 0;
};

/** Per-layer statistics. */
struct LayerStats
{
    std::string name;
    std::array<PhaseStats, 3> phases;
};

/** Whole-network run outcome. */
struct NetworkStats
{
    std::vector<LayerStats> layers;
    /** Scaled totals across layers and phases. */
    CounterSet total;

    /** Accelerator cycles under perfect load balance. */
    std::uint64_t
    acceleratorCycles(std::uint32_t num_pes) const
    {
        const std::uint64_t pe_cycles = total.get(Counter::Cycles);
        return (pe_cycles + num_pes - 1) / num_pes;
    }

    /** Total energy in picojoules under @p model. */
    double
    energyPj(const EnergyModel &model) const
    {
        return model.totalPj(total);
    }

    /** Fraction of all RCPs that were avoided (1.0 when no RCPs). */
    double rcpAvoidedFraction() const;

    /** Fraction of executed multiplies that were valid. */
    double validMultFraction() const;
};

/**
 * Worker count a run with RunConfig::numThreads = @p requested will
 * actually use: 0 resolves to hardware_concurrency, and any request is
 * clamped to the hardware (oversubscription buys nothing in the
 * CPU-bound unit loop). Exposed so reports can record the effective
 * count next to the requested one -- without it, a --threads 64 run on
 * an 8-way machine is indistinguishable from --threads 8.
 */
std::uint32_t effectiveWorkerCount(std::uint32_t requested);

/** Simulate a conv network's training step on a PE model. */
NetworkStats runConvNetwork(PeModel &pe,
                            const std::vector<ConvLayer> &layers,
                            const SparsityProfile &profile,
                            const RunConfig &config);

/** Simulate a matmul workload (all layers, single pairs) on a PE. */
NetworkStats runMatmulNetwork(PeModel &pe,
                              const std::vector<MatmulLayer> &layers,
                              double sparsity, SparsifyMethod method,
                              const RunConfig &config);

/** Speedup of @p fast over @p slow (ratio of summed PE cycles). */
double speedupOf(const NetworkStats &slow, const NetworkStats &fast);

/** Energy ratio slow/fast (how many times less energy fast uses). */
double energyRatioOf(const NetworkStats &slow, const NetworkStats &fast,
                     const EnergyModel &model = EnergyModel{});

} // namespace antsim

#endif // ANTSIM_WORKLOAD_RUNNER_HH
