#include "networks.hh"

#include <cstdio>

namespace antsim {

namespace {

/** Shorthand constructor with a printf-style layer name. */
ConvLayer
conv(const std::string &name, std::uint32_t in_ch, std::uint32_t out_ch,
     std::uint32_t spatial, std::uint32_t kernel, std::uint32_t stride,
     std::uint32_t pad)
{
    return ConvLayer{name, in_ch, out_ch, spatial, spatial, kernel, stride,
                     pad};
}

std::string
indexedName(const char *prefix, unsigned index)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s%u", prefix, index);
    return buf;
}

} // namespace

std::vector<ConvLayer>
resnet18Cifar()
{
    std::vector<ConvLayer> layers;
    layers.push_back(conv("conv1", 3, 64, 32, 3, 1, 1));

    struct Stage { std::uint32_t ch, spatial, stride; };
    const Stage stages[] = {{64, 32, 1}, {128, 32, 2}, {256, 16, 2},
                            {512, 8, 2}};
    std::uint32_t in_ch = 64;
    unsigned idx = 0;
    for (const Stage &st : stages) {
        // First block of the stage (may downsample).
        layers.push_back(conv(indexedName("b", idx) + "_conv1", in_ch,
                              st.ch, st.spatial, 3, st.stride, 1));
        const std::uint32_t out_spatial = st.spatial / st.stride;
        layers.push_back(conv(indexedName("b", idx) + "_conv2", st.ch,
                              st.ch, out_spatial, 3, 1, 1));
        if (st.stride != 1 || in_ch != st.ch) {
            layers.push_back(conv(indexedName("b", idx) + "_down", in_ch,
                                  st.ch, st.spatial, 1, st.stride, 0));
        }
        ++idx;
        // Second block.
        layers.push_back(conv(indexedName("b", idx) + "_conv1", st.ch,
                              st.ch, out_spatial, 3, 1, 1));
        layers.push_back(conv(indexedName("b", idx) + "_conv2", st.ch,
                              st.ch, out_spatial, 3, 1, 1));
        ++idx;
        in_ch = st.ch;
    }
    return layers;
}

std::vector<ConvLayer>
resnet18Imagenet()
{
    std::vector<ConvLayer> layers;
    layers.push_back(conv("conv1", 3, 64, 224, 7, 2, 3));

    struct Stage { std::uint32_t ch, spatial, stride; };
    // After the stem's maxpool, conv2_x sees 56x56.
    const Stage stages[] = {{64, 56, 1}, {128, 56, 2}, {256, 28, 2},
                            {512, 14, 2}};
    std::uint32_t in_ch = 64;
    unsigned idx = 0;
    for (const Stage &st : stages) {
        layers.push_back(conv(indexedName("b", idx) + "_conv1", in_ch,
                              st.ch, st.spatial, 3, st.stride, 1));
        const std::uint32_t out_spatial = st.spatial / st.stride;
        layers.push_back(conv(indexedName("b", idx) + "_conv2", st.ch,
                              st.ch, out_spatial, 3, 1, 1));
        if (st.stride != 1 || in_ch != st.ch) {
            layers.push_back(conv(indexedName("b", idx) + "_down", in_ch,
                                  st.ch, st.spatial, 1, st.stride, 0));
        }
        ++idx;
        layers.push_back(conv(indexedName("b", idx) + "_conv1", st.ch,
                              st.ch, out_spatial, 3, 1, 1));
        layers.push_back(conv(indexedName("b", idx) + "_conv2", st.ch,
                              st.ch, out_spatial, 3, 1, 1));
        ++idx;
        in_ch = st.ch;
    }
    return layers;
}

std::vector<ConvLayer>
vgg16Cifar()
{
    std::vector<ConvLayer> layers;
    struct Block { std::uint32_t ch, count, spatial; };
    const Block blocks[] = {{64, 2, 32}, {128, 2, 16}, {256, 3, 8},
                            {512, 3, 4}, {512, 3, 2}};
    std::uint32_t in_ch = 3;
    unsigned idx = 1;
    for (const Block &b : blocks) {
        for (std::uint32_t i = 0; i < b.count; ++i) {
            layers.push_back(conv(indexedName("conv", idx), in_ch, b.ch,
                                  b.spatial, 3, 1, 1));
            in_ch = b.ch;
            ++idx;
        }
    }
    return layers;
}

std::vector<ConvLayer>
densenet121Cifar()
{
    // Growth rate 32, bottleneck factor 4, compression 0.5,
    // block sizes 6/12/24/16, spatial 32/16/8/4.
    const std::uint32_t growth = 32;
    const std::uint32_t block_sizes[] = {6, 12, 24, 16};
    const std::uint32_t spatials[] = {32, 16, 8, 4};

    std::vector<ConvLayer> layers;
    std::uint32_t channels = 2 * growth;
    layers.push_back(conv("conv0", 3, channels, 32, 3, 1, 1));

    for (unsigned block = 0; block < 4; ++block) {
        const std::uint32_t spatial = spatials[block];
        for (std::uint32_t i = 0; i < block_sizes[block]; ++i) {
            const std::string base =
                indexedName("d", block) + "_" + indexedName("l", i);
            layers.push_back(conv(base + "_1x1", channels, 4 * growth,
                                  spatial, 1, 1, 0));
            layers.push_back(conv(base + "_3x3", 4 * growth, growth,
                                  spatial, 3, 1, 1));
            channels += growth;
        }
        if (block < 3) {
            // Transition: 1x1 compression then 2x2 average pool.
            const std::uint32_t out = channels / 2;
            layers.push_back(conv(indexedName("t", block) + "_1x1",
                                  channels, out, spatial, 1, 1, 0));
            channels = out;
        }
    }
    return layers;
}

std::vector<ConvLayer>
wrn16x8Cifar()
{
    // WRN-16-8: depth 16 => (16-4)/6 = 2 blocks per group, widen 8.
    const std::uint32_t widen = 8;
    const std::uint32_t widths[] = {16 * widen, 32 * widen, 64 * widen};
    const std::uint32_t spatials[] = {32, 32, 16};
    const std::uint32_t strides[] = {1, 2, 2};

    std::vector<ConvLayer> layers;
    layers.push_back(conv("conv1", 3, 16, 32, 3, 1, 1));
    std::uint32_t in_ch = 16;
    for (unsigned g = 0; g < 3; ++g) {
        const std::uint32_t out_spatial = spatials[g] / strides[g];
        const std::string base = indexedName("g", g);
        // Block 0 (downsampling / widening) with 1x1 shortcut.
        layers.push_back(conv(base + "_b0_conv1", in_ch, widths[g],
                              spatials[g], 3, strides[g], 1));
        layers.push_back(conv(base + "_b0_conv2", widths[g], widths[g],
                              out_spatial, 3, 1, 1));
        layers.push_back(conv(base + "_b0_down", in_ch, widths[g],
                              spatials[g], 1, strides[g], 0));
        // Block 1.
        layers.push_back(conv(base + "_b1_conv1", widths[g], widths[g],
                              out_spatial, 3, 1, 1));
        layers.push_back(conv(base + "_b1_conv2", widths[g], widths[g],
                              out_spatial, 3, 1, 1));
        in_ch = widths[g];
    }
    return layers;
}

std::vector<ConvLayer>
resnet50Imagenet()
{
    std::vector<ConvLayer> layers;
    layers.push_back(conv("conv1", 3, 64, 224, 7, 2, 3));

    struct Stage { std::uint32_t mid, out, blocks, spatial, stride; };
    // Spatial is the stage's input resolution (after the stem's
    // maxpool, conv2_x sees 56x56).
    const Stage stages[] = {{64, 256, 3, 56, 1},
                            {128, 512, 4, 56, 2},
                            {256, 1024, 6, 28, 2},
                            {512, 2048, 3, 14, 2}};
    std::uint32_t in_ch = 64;
    unsigned sidx = 2;
    for (const Stage &st : stages) {
        const std::uint32_t out_spatial = st.spatial / st.stride;
        for (std::uint32_t b = 0; b < st.blocks; ++b) {
            const std::string base =
                indexedName("conv", sidx) + "_" + indexedName("b", b);
            const std::uint32_t stride = b == 0 ? st.stride : 1;
            const std::uint32_t spatial = b == 0 ? st.spatial : out_spatial;
            layers.push_back(conv(base + "_1x1a", in_ch, st.mid, spatial, 1,
                                  1, 0));
            layers.push_back(conv(base + "_3x3", st.mid, st.mid, spatial, 3,
                                  stride, 1));
            layers.push_back(conv(base + "_1x1b", st.mid, st.out,
                                  out_spatial, 1, 1, 0));
            if (b == 0) {
                layers.push_back(conv(base + "_down", in_ch, st.out,
                                      spatial, 1, stride, 0));
            }
            in_ch = st.out;
        }
        ++sidx;
    }
    return layers;
}

std::vector<NamedNetwork>
figure9Networks()
{
    return {
        {"DenseNet-121", densenet121Cifar(), false},
        {"ResNet18", resnet18Cifar(), false},
        {"VGG16", vgg16Cifar(), false},
        {"WRN-16-8", wrn16x8Cifar(), false},
        {"ResNet50", resnet50Imagenet(), true},
    };
}

std::vector<MatmulLayer>
transformerLayers()
{
    // The Table 3 transformer rows: QKV/output projections at sequence
    // length 512, head dim 72, and the attention-context matmul.
    return {
        {"proj_fwd", 512, 72, 72, 512},
        {"proj_upd", 72, 512, 512, 512},
        {"head_fwd", 64, 10, 10, 10},
        {"head_bwd", 10, 10, 10, 64},
        {"head_upd", 10, 64, 64, 10},
    };
}

std::vector<MatmulLayer>
rnnLayers()
{
    // The Table 3 IMDB RNN rows (embedding 300, hidden 300, gates 4x).
    return {
        {"rnn3_fwd", 300, 3, 3, 1200},
        {"rnn3_bwd", 1200, 3, 3, 300},
        {"rnn3_upd", 3, 300, 300, 1200},
        {"rnn8_fwd", 300, 8, 8, 1200},
        {"rnn8_bwd", 1200, 8, 8, 300},
        {"rnn8_upd", 8, 300, 300, 1200},
    };
}

} // namespace antsim
