/**
 * @file
 * Synthetic sparse-training trace generation (substitutes the paper's
 * GPU-collected ReSprop/SWAT traces; see DESIGN.md).
 *
 * For a given layer, phase, and sparsity profile, produces the
 * (kernel plane, image plane) CSR pair one PE task group would see:
 *
 *  - forward  W * A:   kernel = sparsified W[k][c] (R x S);
 *                      image  = sparsified A[c] embedded in padding;
 *  - backward R(W) * G_A: kernel = rotated sparsified W[k][c];
 *                      image  = sparsified G_A[k] zero-dilated by the
 *                      layer stride and re-padded;
 *  - update   G_A * A: kernel = sparsified G_A[k] (used with kernel
 *                      dilation = stride); image = padded A[c].
 *
 * Values are drawn i.i.d. standard normal; sparsity is imposed by
 * Bernoulli masking (ReSprop/SWAT-style targets) or magnitude top-K
 * (the paper's synthetic ResNet50/transformer/RNN path). Everything is
 * keyed by a deterministic seed hierarchy so runs reproduce bit-for-bit.
 */

#ifndef ANTSIM_WORKLOAD_TRACEGEN_HH
#define ANTSIM_WORKLOAD_TRACEGEN_HH

#include <cstdint>
#include <memory>

#include "tensor/csr.hh"
#include "util/rng.hh"
#include "workload/layer.hh"

namespace antsim {

struct PlaneRecipe;

/** How a target sparsity is imposed on a plane. */
enum class SparsifyMethod {
    /** i.i.d. Bernoulli mask at the target rate. */
    Bernoulli,
    /** Keep the top (1 - sparsity) fraction by magnitude. */
    TopK,
};

/** Target sparsities of the three training tensors. */
struct SparsityProfile
{
    /** Weight sparsity (all phases). */
    double weight = 0.0;
    /** Activation sparsity. */
    double act = 0.0;
    /** Activation-gradient sparsity. */
    double grad = 0.0;
    /** Masking method. */
    SparsifyMethod method = SparsifyMethod::Bernoulli;

    /**
     * SWAT-style: weights and activations sparsified to the target;
     * the activation gradients inherit the activations' ReLU zero mask
     * (Sec. 2.1), so they reach (at least) the same sparsity.
     */
    static SparsityProfile
    swat(double target)
    {
        return {target, target, target, SparsifyMethod::Bernoulli};
    }

    /** ReSprop-style: sparse gradients, given activation sparsity. */
    static SparsityProfile
    resprop(double grad_sparsity, double act_sparsity)
    {
        return {0.0, act_sparsity, grad_sparsity,
                SparsifyMethod::Bernoulli};
    }

    /** Synthetic top-K sparsification of all tensors (ResNet50 path). */
    static SparsityProfile
    topK(double target)
    {
        return {target, target, target, SparsifyMethod::TopK};
    }

    /** Fully dense tensors (Fig. 10's dense baseline). */
    static SparsityProfile
    dense()
    {
        return {0.0, 0.0, 0.0, SparsifyMethod::Bernoulli};
    }
};

/** A generated (kernel, image) plane pair plus its geometry. */
struct PlanePair
{
    ProblemSpec spec;
    CsrMatrix kernel;
    CsrMatrix image;
};

/**
 * A channel-batched task: one stationary image plane with the kernel
 * stack that streams against it (Sec. 2.3's input-stationary dataflow;
 * see PeModel::runStack). For the forward and update phases the task
 * is per input channel c and the stack spans the K output channels;
 * for the backward phase the task is per output channel k and the
 * stack spans the C input channels (rotated weights).
 */
struct StackTask
{
    ProblemSpec spec;
    /**
     * Immutable shared planes: tasks from the trace cache alias the
     * cached planes instead of owning copies (src/workload/trace_cache).
     */
    std::vector<std::shared_ptr<const CsrMatrix>> kernels;
    std::shared_ptr<const CsrMatrix> image;

    /** Borrowed pointer view for PeModel::runStack. */
    std::vector<const CsrMatrix *>
    kernelPtrs() const
    {
        std::vector<const CsrMatrix *> ptrs;
        ptrs.reserve(kernels.size());
        for (const auto &k : kernels)
            ptrs.push_back(k.get());
        return ptrs;
    }
};

/** Deterministic seed mixing for the trace hierarchy. */
std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                      std::uint64_t c_value = 0);

/** Generate one plane at the given dims/sparsity/method. */
Dense2d<float> generatePlane(std::uint32_t height, std::uint32_t width,
                             double sparsity, SparsifyMethod method,
                             Rng &rng);

/**
 * Build the (kernel, image) pair for one sampled (k, c) plane pair of
 * a conv layer in the given phase. @p rng provides all randomness.
 */
PlanePair makeConvPhasePair(const ConvLayer &layer, TrainingPhase phase,
                            const SparsityProfile &profile, Rng &rng);

/** Build the pair for one matmul layer at a uniform sparsity. */
PlanePair makeMatmulPair(const MatmulLayer &layer, double sparsity,
                         SparsifyMethod method, Rng &rng);

/**
 * Number of stacked tasks a layer expands to in a phase: inChannels
 * for forward/update (task per image channel), outChannels for
 * backward (task per gradient channel).
 */
std::uint64_t stackTaskCount(const ConvLayer &layer, TrainingPhase phase);

/**
 * Build one channel-batched task of a conv layer phase. @p rng drives
 * all randomness (image plane plus the whole kernel stack).
 */
StackTask makeConvPhaseTask(const ConvLayer &layer, TrainingPhase phase,
                            const SparsityProfile &profile, Rng &rng);

/**
 * Recipe of a conv phase's image plane (padding/dilation included).
 * The single source of geometric truth for both the trace generator
 * and the analytical estimator (src/estimate), which models the plane
 * *ensemble* the recipe describes instead of sampling instances.
 */
PlaneRecipe convImageRecipe(const ConvLayer &layer, TrainingPhase phase,
                            const SparsityProfile &profile,
                            const PhaseSpecs &specs);

/** Recipe of one kernel-stack plane of a conv phase. */
PlaneRecipe convKernelRecipe(const ConvLayer &layer, TrainingPhase phase,
                             const SparsityProfile &profile,
                             const PhaseSpecs &specs);

/**
 * Embed an unpadded plane into a larger plane with the given border
 * offset (used for padding and, with @p dilation > 1, zero-dilation of
 * the backward-phase gradient).
 */
Dense2d<float> embedPlane(const Dense2d<float> &inner,
                          std::uint32_t out_height, std::uint32_t out_width,
                          std::uint32_t offset, std::uint32_t dilation = 1);

} // namespace antsim

#endif // ANTSIM_WORKLOAD_TRACEGEN_HH
