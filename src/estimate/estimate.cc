#include "estimate.hh"

#include <algorithm>
#include <cmath>

#include "conv/problem_spec.hh"
#include "util/logging.hh"
#include "verify/audit_hooks.hh"
#include "workload/trace_cache.hh"

namespace antsim {
namespace estimate {

namespace {

/**
 * Deterministic group-quantile sample size per operand chunk. The
 * AntPe scan model evaluates this many representative image (or
 * kernel) groups per chunk instead of every group, bounding the whole
 * estimate at O(layers * kGroupSamples) regardless of density.
 */
constexpr std::uint32_t kGroupSamples = 64;

/** Real-domain ceil with a tolerance so exact integers stay exact. */
double
rceil(double v)
{
    return std::ceil(v - 1e-9);
}

/**
 * The estimator's float -> counter rounding primitive. All
 * expectations are carried in the real domain and each independent
 * component is rounded exactly once, at a sanctioned declaration in
 * toCounters; dependent counters (MultsExecuted, Cycles) are then
 * derived by exact integer arithmetic so the aggregate conservation
 * laws hold by construction.
 */
std::uint64_t
roundCount(double v)
{
    if (v <= 0.0)
        return 0;
    return static_cast<std::uint64_t>(std::llround(v));
}

/** One plane ensemble: expected non-zeros plus embedded geometry. */
struct Ensemble
{
    /** Expected non-zeros (exact for top-K, mean for Bernoulli). */
    double nnz = 0.0;
    /** Unembedded (support) dims; entries live on the embedded grid. */
    std::uint32_t innerH = 0;
    std::uint32_t innerW = 0;
    /** Embedding border offset (both axes) and stride of support. */
    std::uint32_t offset = 0;
    std::uint32_t dilation = 1;

    /** Per-support-position inclusion probability. */
    double
    density() const
    {
        const double total =
            static_cast<double>(innerH) * static_cast<double>(innerW);
        return total > 0.0 ? nnz / total : 0.0;
    }
};

Ensemble
ensembleOf(const PlaneRecipe &recipe)
{
    Ensemble e;
    e.innerH = recipe.height;
    e.innerW = recipe.width;
    e.offset = recipe.offset;
    e.dilation = recipe.dilation;
    const double total = static_cast<double>(recipe.height) *
        static_cast<double>(recipe.width);
    const double kept = total * (1.0 - recipe.sparsity);
    // Top-K keeps exactly llround(total * (1 - sparsity)) entries
    // (tensor/sparsify.cc); Bernoulli keeps that many in expectation.
    e.nnz = recipe.method == SparsifyMethod::TopK
        ? static_cast<double>(std::llround(kept))
        : kept;
    return e;
}

/** Real-domain mirror of scnn_pe.cc's groupedAccesses. */
double
groupedAccessesReal(double elements, std::uint32_t n, std::uint32_t per)
{
    if (elements <= 0.0)
        return 0.0;
    const double full = std::floor(elements / n + 1e-9);
    const double rem = std::max(0.0, elements - full * n);
    return full * std::ceil(static_cast<double>(n) / per) +
        rceil(rem / per);
}

/** Real-domain mirror of ant_pe.cc's rowPtrAccesses. */
double
rowPtrWalk(double tables, double rows)
{
    return std::floor((tables * (rows + 1.0) + 3.0) / 4.0);
}

/** One operand chunk: entry-stream offset and expected size. */
struct Chunk
{
    double base;
    double entries;
};

/**
 * Mirror of sim/chunking.hh: slices of at most @p cap entries in
 * stream order; an empty operand still yields one (empty) chunk.
 */
std::vector<Chunk>
chunkSplit(double nnz, std::uint32_t cap)
{
    std::vector<Chunk> chunks;
    const double full = std::floor(std::max(0.0, nnz) / cap + 1e-9);
    for (double i = 0; i < full; i += 1.0)
        chunks.push_back({i * cap, static_cast<double>(cap)});
    const double rem = std::max(0.0, nnz - full * cap);
    if (rem > 1e-9 || chunks.empty())
        chunks.push_back({full * cap, rem});
    return chunks;
}

/**
 * Per-axis count of valid (image position, kernel position) pairs:
 * sum over embedded image coordinates i = off + emb_dil*u and kernel
 * coordinates c < kernel_dim of [ (i - dil*c) >= 0, divisible by
 * stride, quotient < out_dim ]. ProblemSpec validity is separable per
 * axis (problem_spec.cc), so the expected valid-product count of a
 * plane pair is density_i * density_k * X * Y with X/Y these sums.
 */
double
axisValidSum(std::uint32_t inner, std::uint32_t emb_off,
             std::uint32_t emb_dil, std::uint32_t kernel_dim,
             std::uint32_t spec_dil, std::uint32_t stride,
             std::uint32_t out_dim)
{
    double sum = 0.0;
    for (std::uint32_t u = 0; u < inner; ++u) {
        const std::int64_t i = static_cast<std::int64_t>(emb_off) +
            static_cast<std::int64_t>(emb_dil) * u;
        for (std::uint32_t c = 0; c < kernel_dim; ++c) {
            const std::int64_t d =
                i - static_cast<std::int64_t>(spec_dil) * c;
            if (d >= 0 && d % stride == 0 && d / stride < out_dim)
                sum += 1.0;
        }
    }
    return sum;
}

/** Expected valid products of one (kernel plane, image plane) pair. */
double
expectedValidPairs(const ProblemSpec &spec, const Ensemble &img,
                   const Ensemble &ker)
{
    if (spec.kind() == ProblemSpec::Kind::Matmul) {
        return img.density() * ker.density() *
            static_cast<double>(spec.denseValidProducts());
    }
    ANT_ASSERT(ker.innerH == spec.kernelH() && ker.innerW == spec.kernelW(),
               "kernel ensemble dims must match the problem spec");
    const double x_sum =
        axisValidSum(img.innerW, img.offset, img.dilation, ker.innerW,
                     spec.dilation(), spec.stride(), spec.outW());
    const double y_sum =
        axisValidSum(img.innerH, img.offset, img.dilation, ker.innerH,
                     spec.dilation(), spec.stride(), spec.outH());
    return img.density() * ker.density() * x_sum * y_sum;
}

/**
 * Real-valued expected counters of ONE stacked task (or matmul layer).
 * toCounters rounds once and derives the dependent counters exactly.
 */
struct TaskCost
{
    double startup = 0.0;
    double active = 0.0;
    double idleScan = 0.0;
    double executed = 0.0;
    double valid = 0.0;
    double compares = 0.0;
    double sramValue = 0.0;
    double sramIndex = 0.0;
    double sramRowPtr = 0.0;
    double sramWrites = 0.0;
    double rcpsAvoided = 0.0;
    double sramReadsAvoided = 0.0;
    double tasks = 0.0;
    /** Cartesian PEs compute one output index per executed product. */
    bool outputIndexPerExecuted = false;
    /** Cartesian PEs write the accumulator bank once per valid. */
    bool writesPerValid = false;
};

/**
 * Round a task expectation (scaled to all pairsTotal tasks) into a
 * CounterSet whose aggregate conservation laws hold exactly:
 * independent components are rounded once each, dependent ones are
 * derived in integer arithmetic (mults split, accumulate-valid, cycle
 * partition; see verify/invariant_auditor.cc).
 */
CounterSet
toCounters(const TaskCost &t, double scale)
{
    CounterSet c;
    // Each independent component is rounded exactly once below, and
    // every dependent counter (MultsExecuted, Cycles) is then derived
    // in exact integer arithmetic, so the aggregate conservation laws
    // hold by construction. Each rounding carries its own sanction.
    // antsim-lint: allow(counter-exactness) -- independent rounding
    const std::uint64_t nValid = roundCount(t.valid * scale);
    // antsim-lint: allow(counter-exactness) -- independent rounding
    const std::uint64_t nRcp =
        roundCount(std::max(0.0, t.executed - t.valid) * scale);
    const std::uint64_t nExecuted = nValid + nRcp;
    // antsim-lint: allow(counter-exactness) -- independent rounding
    const std::uint64_t nStartup = roundCount(t.startup * scale);
    // antsim-lint: allow(counter-exactness) -- independent rounding
    const std::uint64_t nActive = roundCount(t.active * scale);
    // antsim-lint: allow(counter-exactness) -- independent rounding
    const std::uint64_t nIdle = roundCount(t.idleScan * scale);
    // antsim-lint: allow(counter-exactness) -- independent rounding
    const std::uint64_t nSramWrites = roundCount(t.sramWrites * scale);
    // antsim-lint: allow(counter-exactness) -- independent rounding
    const std::uint64_t nCompares = roundCount(t.compares * scale);
    // antsim-lint: allow(counter-exactness) -- independent rounding
    const std::uint64_t nSramValue = roundCount(t.sramValue * scale);
    // antsim-lint: allow(counter-exactness) -- independent rounding
    const std::uint64_t nSramIndex = roundCount(t.sramIndex * scale);
    // antsim-lint: allow(counter-exactness) -- independent rounding
    const std::uint64_t nSramRowPtr = roundCount(t.sramRowPtr * scale);
    // antsim-lint: allow(counter-exactness) -- independent rounding
    const std::uint64_t nRcpsAvoided = roundCount(t.rcpsAvoided * scale);
    // antsim-lint: allow(counter-exactness) -- independent rounding
    const std::uint64_t nReadsAvoided =
        roundCount(t.sramReadsAvoided * scale);
    // antsim-lint: allow(counter-exactness) -- independent rounding
    const std::uint64_t nTasks = roundCount(t.tasks * scale);

    c.set(Counter::MultsExecuted, nExecuted);
    c.set(Counter::MultsValid, nValid);
    c.set(Counter::MultsRcp, nRcp);
    c.set(Counter::AccumAdds, nValid);
    c.set(Counter::OutputIndexCalcs,
          t.outputIndexPerExecuted ? nExecuted : 0);
    c.set(Counter::SramWrites, t.writesPerValid ? nValid : nSramWrites);
    c.set(Counter::StartupCycles, nStartup);
    c.set(Counter::ActiveCycles, nActive);
    c.set(Counter::IdleScanCycles, nIdle);
    c.set(Counter::Cycles, nStartup + nActive + nIdle);
    c.set(Counter::IndexCompares, nCompares);
    c.set(Counter::SramValueReads, nSramValue);
    c.set(Counter::SramIndexReads, nSramIndex);
    c.set(Counter::SramRowPtrReads, nSramRowPtr);
    c.set(Counter::RcpsAvoided, nRcpsAvoided);
    c.set(Counter::SramReadsAvoided, nReadsAvoided);
    c.set(Counter::TasksProcessed, nTasks);
    return c;
}

double
clampD(double v, double lo, double hi)
{
    return std::min(std::max(v, lo), hi);
}

/**
 * SCNN-like stacked conv task: the closed-form counting path of
 * scnn_pe.cc evaluated on expectations, chunk by image chunk.
 */
void
scnnConvTask(const ScnnPeConfig &cfg, const ProblemSpec &spec,
             const Ensemble &img, const Ensemble &ker, double stack_size,
             std::uint32_t chunk_cap, TaskCost &t)
{
    const std::uint32_t n = cfg.n;
    const std::uint32_t value_per = cfg.buffer.elementsPerAccess();
    const std::uint32_t index_per = 2 * value_per;
    const double stack_nnz = stack_size * ker.nnz;
    const double kgroups = rceil(stack_nnz / n);
    for (const Chunk &chunk : chunkSplit(img.nnz, chunk_cap)) {
        const double igroups = rceil(chunk.entries / n);
        t.startup += cfg.startupCycles;
        t.active += igroups * kgroups;
        t.sramValue += groupedAccessesReal(chunk.entries, n, value_per) +
            igroups * groupedAccessesReal(stack_nnz, n, value_per);
        t.sramIndex += groupedAccessesReal(chunk.entries, n, index_per) +
            igroups * groupedAccessesReal(stack_nnz, n, index_per);
        t.tasks += 1.0;
    }
    t.executed = img.nnz * stack_nnz;
    t.valid =
        std::min(stack_size * expectedValidPairs(spec, img, ker),
                 t.executed);
    t.outputIndexPerExecuted = true;
    t.writesPerValid = true;
}

/** Embedded coordinate extremes of one operand group. */
struct GroupExtent
{
    std::uint32_t yMin;
    std::uint32_t yMax;
    std::uint32_t xMin;
    std::uint32_t xMax;
};

/**
 * Expected coordinate extremes of a CSR-order group of @p count
 * entries starting at stream position @p e0 of the plane ensemble.
 * Each entry is placed at its order-statistic quantile: entry i of m
 * uniform placements sits at stream position (i+1)*H/(m+1) in row
 * units, its integer part is the row and its fractional part, taken
 * as a uniform quantile of the full row width, the column.
 * The whole group is rigidly shifted by the tau-quantile of the
 * first entry's placement spread, so integrating tau across the
 * sample loop reproduces the per-group window mixture of a random
 * plane -- full here, clamped there. Placing entries individually
 * (O(group size), a config constant -- never per-nonzero work) makes
 * row-crossing groups span near-full columns automatically: the first
 * row contributes its suffix, the last row its prefix. Getting these
 * extremes right is what makes the anticipation windows -- and hence
 * RCPs avoided -- match the cycle-level engine.
 */
GroupExtent
groupExtent(const Ensemble &ens, double e0, double count, double tau)
{
    const double h = ens.innerH;
    const double w = ens.innerW;
    const double nnz = std::max(ens.nnz, 1e-9);
    const double u0 = (e0 + 1.0) / (nnz + 1.0);
    const auto entries = static_cast<std::uint32_t>(
        clampD(std::floor(count + 0.5), 1.0, 64.0));
    // Clamp the rigid shift once so edge groups slide inside the plane
    // keeping their span, instead of collapsing entry by entry onto
    // the border (which would fabricate degenerate one-cell windows).
    const double base_lo = (e0 + 1.0) * h / (nnz + 1.0);
    const double base_hi = (e0 + entries) * h / (nnz + 1.0);
    double spread = h *
        std::sqrt(12.0 * u0 * (1.0 - u0) / (nnz + 2.0)) *
        (tau - 0.5);
    const double shift_lo = -base_lo;
    const double shift_hi = (h - 1e-6) - base_hi;
    spread = shift_hi < shift_lo ? 0.5 * (shift_lo + shift_hi)
                                 : clampD(spread, shift_lo, shift_hi);
    double row_min = h;
    double row_max = 0.0;
    double col_min = w;
    double col_max = 0.0;
    for (std::uint32_t i = 0; i < entries; ++i) {
        const double v = clampD(
            (e0 + i + 1.0) * h / (nnz + 1.0) + spread, 0.0, h - 1e-6);
        const double row = std::floor(v);
        const double col =
            clampD(std::floor((v - row) * w), 0.0, w - 1.0);
        row_min = std::min(row_min, row);
        row_max = std::max(row_max, row);
        col_min = std::min(col_min, col);
        col_max = std::max(col_max, col);
    }
    GroupExtent ext;
    ext.yMin = ens.offset +
        ens.dilation * static_cast<std::uint32_t>(row_min);
    ext.yMax = ens.offset +
        ens.dilation * static_cast<std::uint32_t>(row_max);
    ext.xMin =
        ens.offset + ens.dilation * static_cast<std::uint32_t>(col_min);
    ext.xMax =
        ens.offset + ens.dilation * static_cast<std::uint32_t>(col_max);
    return ext;
}

/**
 * ANT image-stationary stacked conv task (ant_pe.cc runConvStack).
 * Image groups are modeled at deterministic quantile positions over
 * the entry stream; groupExtent maps each sampled group to expected
 * row/column extremes, the real sRange/rRange of the spec then give
 * the anticipation window the group sees, and the FNIR scan is a rate
 * model (n selections or k scans per cycle, whichever binds;
 * docs/MODEL.md Sec. 12).
 */
void
antConvImageStationaryTask(const AntPeConfig &cfg, const ProblemSpec &spec,
                           const Ensemble &img, const Ensemble &ker,
                           double stack_size, std::uint32_t chunk_cap,
                           TaskCost &t)
{
    const std::uint32_t n = cfg.n;
    const std::uint32_t k = cfg.k;
    const std::uint32_t value_per = cfg.buffer.elementsPerAccess();
    const std::uint32_t index_per = 2 * value_per;
    const double kh = spec.kernelH();
    const double kw = spec.kernelW();
    const double stack_nnz = stack_size * ker.nnz;
    const double rho =
        img.innerH > 0 ? img.nnz / img.innerH : 0.0;

    double executed = 0.0;
    double index_elements = 0.0;
    double value_elements = 0.0;
    double groups_total = 0.0;

    for (const Chunk &chunk : chunkSplit(img.nnz, chunk_cap)) {
        t.startup += cfg.startupCycles;
        t.tasks += 1.0;
        if (chunk.entries < 0.5 || rho <= 0.0)
            continue;
        const double groups = rceil(chunk.entries / n);
        groups_total += groups;
        // Always spend the full sample budget: with fewer groups than
        // samples the fractional part of g sweeps each group's
        // positional-spread quantile (see groupExtent).
        const std::uint32_t samples = kGroupSamples;
        const double weight = groups / samples;

        // Average group size; the tail group's deficit is spread so
        // the per-group products sum to the chunk totals.
        const double igroup = chunk.entries / groups;
        for (std::uint32_t j = 0; j < samples; ++j) {
            // Integer part indexes the group, fractional part doubles
            // as the positional-spread quantile (when samples exceed
            // groups it sweeps each group's placement distribution).
            const double g = (j + 0.5) * groups / samples;
            const double gi = std::floor(g);
            const double tau = g - gi;
            const double e0 = chunk.base + gi * igroup;

            // Stage 1: image group fetch + range-tree compares.
            t.sramValue += weight * rceil(igroup / value_per);
            t.sramIndex += weight * rceil(igroup / index_per);
            t.compares += weight * (2.0 * (igroup - 1.0) + 4.0);

            const GroupExtent ext = groupExtent(img, e0, igroup, tau);
            const IndexRange s_range = cfg.useSCondition
                ? spec.sRange(ext.xMin, ext.xMax)
                : IndexRange{0, static_cast<std::int64_t>(kw) - 1};
            const IndexRange r_range = cfg.useRCondition
                ? spec.rRange(ext.yMin, ext.yMax)
                : IndexRange{0, static_cast<std::int64_t>(kh) - 1};
            if (s_range.empty() || r_range.empty()) {
                t.idleScan += weight;
                continue;
            }

            const double win = static_cast<double>(r_range.count());
            const bool proper = win < kh;
            const double controller =
                proper ? rowPtrWalk(stack_size, win) : 0.0;
            t.sramRowPtr += weight * controller;

            // Expected candidates: the stack's entries are uniform
            // over the kernel rows, so a win-row window holds
            // win/kernelH of them.
            const double cand = stack_nnz * win / kh;
            if (cand < 1e-9) {
                t.idleScan += weight * std::max(controller, 1.0);
                continue;
            }

            const double p = cfg.useSCondition
                ? clampD(static_cast<double>(s_range.count()) / kw, 0.0,
                         1.0)
                : 1.0;
            const double selected = p * cand;
            // FNIR rate model: the scan consumes at most k candidates
            // per cycle (comparator width) and selects at most n per
            // cycle (ports); the feedback guarantees every in-range
            // candidate is selected exactly once. Scan cycles are an
            // integer per group in the engine, so each bound rounds
            // up before they compete.
            const double scan = std::max(
                {rceil(cand / k), rceil(selected / n), 1.0});
            double active = p * k >= n
                ? scan
                : scan * (1.0 - std::pow(1.0 - p, static_cast<int>(k)));
            active = clampD(active, selected > 0.0 ? selected / n : 0.0,
                            scan);

            t.active += weight * active;
            t.idleScan += weight * (scan - active);
            if (controller > scan)
                t.idleScan += weight * (controller - scan);
            t.compares += weight * scan * 2.0 * k;

            // Buffer traffic tracks the candidates actually streamed,
            // not the rounded-up scan slots.
            const double wlen = std::min<double>(k, cand);
            const double scan_flow =
                std::max({cand / k, selected / n, 1.0});
            t.sramIndex += weight * scan_flow * rceil(wlen / index_per);
            index_elements += weight * scan_flow * wlen;
            value_elements += weight * selected;
            const double sel_per_active =
                active > 1e-12 ? selected / active : 0.0;
            t.sramValue +=
                weight * active * rceil(sel_per_active / value_per);
            executed += weight * selected * igroup;
        }
    }

    const double all_products = img.nnz * stack_nnz;
    t.valid = std::min(stack_size * expectedValidPairs(spec, img, ker),
                       all_products);
    t.executed = clampD(executed, t.valid, all_products);
    t.rcpsAvoided = all_products - t.executed;
    t.sramReadsAvoided = std::max(
        0.0,
        2.0 * stack_nnz * groups_total - (index_elements + value_elements));
    t.outputIndexPerExecuted = true;
    t.writesPerValid = true;
}

/**
 * ANT kernel-stationary conv task (runConvStackKernelStationary):
 * the mirrored dataflow -- kernel groups stationary, the image chunk's
 * y-window rows stream through the FNIR screening x indices.
 */
void
antConvKernelStationaryTask(const AntPeConfig &cfg, const ProblemSpec &spec,
                            const Ensemble &img, const Ensemble &ker,
                            double stack_size, std::uint32_t chunk_cap,
                            TaskCost &t)
{
    const std::uint32_t n = cfg.n;
    const std::uint32_t k = cfg.k;
    const std::uint32_t value_per = cfg.buffer.elementsPerAccess();
    const std::uint32_t index_per = 2 * value_per;
    const double kh = spec.kernelH();
    const double kw = spec.kernelW();
    const double stack_nnz = stack_size * ker.nnz;
    const double rho = img.innerH > 0 ? img.nnz / img.innerH : 0.0;
    const double rho_k = ker.innerH > 0 ? ker.nnz / ker.innerH : 0.0;

    double executed = 0.0;
    double value_elements = 0.0;
    double image_elements_streamed = 0.0;

    for (const Chunk &chunk : chunkSplit(img.nnz, chunk_cap)) {
        t.startup += cfg.startupCycles;
        t.tasks += 1.0;
        if (stack_nnz < 0.5)
            continue;
        // Inner-row band this image chunk covers (CSR stream order).
        // The upper bound comes from the stream-end quantile: flooring
        // (entries-1)/rho would chop the plane's last row off whenever
        // nnz is not a row multiple.
        const double band_lo = rho > 0.0
            ? clampD(std::floor(chunk.base / rho), 0.0, img.innerH - 1.0)
            : 0.0;
        const double band_hi = rho > 0.0
            ? clampD(rceil((chunk.base + chunk.entries) / rho) - 1.0, 0.0,
                     img.innerH - 1.0)
            : -1.0;

        const double kgroups = rceil(stack_nnz / n);
        // Full budget even for few groups: frac(g) sweeps the
        // positional-spread quantile (see groupExtent).
        const std::uint32_t samples = kGroupSamples;
        const double weight = kgroups / samples;

        const double kgroup = stack_nnz / kgroups;
        for (std::uint32_t j = 0; j < samples; ++j) {
            const double g = (j + 0.5) * kgroups / samples;
            const double gi = std::floor(g);
            const double tau = g - gi;
            const double e0 = gi * kgroup;

            t.sramValue += weight * rceil(kgroup / value_per);
            t.sramIndex += weight * rceil(kgroup / index_per);
            t.compares += weight * (4.0 * (kgroup - 1.0) + 4.0);

            // Stationary group's (s, r) extremes: a group smaller than
            // one kernel plane sits inside it at order-statistic rows;
            // a group straddling the boundary between two planes of the
            // merged stream is the union of one plane's tail and the
            // next plane's head (near-full support, as in the engine);
            // a group spanning whole planes behaves as independent
            // uniform placements in a single plane, which the same
            // order-statistic machinery models with nnz set to the
            // group size. Getting the proper-window fraction of each
            // case right is what RCP avoidance and the controller
            // row-pointer traffic both hinge on.
            std::uint32_t r_min = 0;
            auto r_max = static_cast<std::uint32_t>(kh - 1.0);
            std::uint32_t s_min = 0;
            auto s_max = static_cast<std::uint32_t>(kw - 1.0);
            if (rho_k > 0.0 && kgroup < ker.nnz) {
                // Plane phase of the group start. Deriving it from e0
                // would alias with the sample stride (and the real
                // stream's per-plane nnz variance decorrelates phases
                // anyway), so sweep it as its own low-discrepancy
                // quantile.
                const double local = ker.nnz *
                    std::fmod((j + 0.5) * 0.3819660112501051, 1.0);
                if (local > ker.nnz - kgroup + 1.0) {
                    const double tail = ker.nnz - local;
                    const GroupExtent a =
                        groupExtent(ker, local, tail, tau);
                    const GroupExtent b = groupExtent(
                        ker, 0.0, kgroup - tail,
                        std::fmod(tau + 0.6180339887498949, 1.0));
                    r_min = std::min(a.yMin, b.yMin);
                    r_max = std::max(a.yMax, b.yMax);
                    s_min = std::min(a.xMin, b.xMin);
                    s_max = std::max(a.xMax, b.xMax);
                } else {
                    const GroupExtent ext = groupExtent(
                        ker, clampD(local, 0.0, ker.nnz - kgroup),
                        kgroup, tau);
                    r_min = ext.yMin;
                    r_max = ext.yMax;
                    s_min = ext.xMin;
                    s_max = ext.xMax;
                }
            } else if (rho_k > 0.0) {
                const double m = clampD(std::floor(kgroup + 0.5), 1.0, 64.0);
                Ensemble flat = ker;
                flat.nnz = m;
                const GroupExtent ext = groupExtent(flat, 0.0, m, tau);
                r_min = ext.yMin;
                r_max = ext.yMax;
                s_min = ext.xMin;
                s_max = ext.xMax;
            }

            const IndexRange x_range = cfg.useSCondition
                ? spec.xRange(s_min, s_max)
                : IndexRange{0,
                             static_cast<std::int64_t>(spec.imageW()) - 1};
            const IndexRange y_window = cfg.useRCondition
                ? spec.yRange(r_min, r_max)
                : IndexRange{0,
                             static_cast<std::int64_t>(spec.imageH()) - 1};
            if (x_range.empty() || y_window.empty()) {
                t.idleScan += weight;
                continue;
            }

            const double ywin = static_cast<double>(y_window.count());
            const bool proper = ywin < spec.imageH();
            const double controller =
                proper ? rowPtrWalk(1.0, ywin) : 0.0;
            t.sramRowPtr += weight * controller;

            // Candidates: the chunk's entries on support rows whose
            // embedded y falls inside the window.
            const double v_lo = std::max(
                band_lo,
                rceil((y_window.lo - static_cast<double>(img.offset)) /
                      img.dilation));
            const double v_hi = std::min(
                band_hi,
                std::floor((y_window.hi -
                            static_cast<double>(img.offset)) /
                           img.dilation));
            const double rows_in = std::max(0.0, v_hi - v_lo + 1.0);
            const double cand = rho * rows_in;
            if (cand < 1e-9) {
                t.idleScan += weight * std::max(controller, 1.0);
                continue;
            }

            // In-x-window probability over the embedded support cols.
            double p = 1.0;
            if (cfg.useSCondition) {
                const double u_lo = rceil(
                    (x_range.lo - static_cast<double>(img.offset)) /
                    img.dilation);
                const double u_hi = std::floor(
                    (x_range.hi - static_cast<double>(img.offset)) /
                    img.dilation);
                const double cols_in = clampD(
                    std::min<double>(u_hi, img.innerW - 1.0) -
                        std::max(0.0, u_lo) + 1.0,
                    0.0, img.innerW);
                p = img.innerW > 0 ? cols_in / img.innerW : 0.0;
            }
            const double selected = p * cand;
            // Continuous scan rate: unlike the image-stationary loop
            // the per-group candidate count here swings between the
            // plane-crossing and interior cases (both modeled above),
            // so the integer rounding averages out across the mixture.
            const double scan = std::max(
                {cand / k, selected / n, 1.0});
            double active = p * k >= n
                ? scan
                : scan * (1.0 - std::pow(1.0 - p, static_cast<int>(k)));
            active = clampD(active, selected > 0.0 ? selected / n : 0.0,
                            scan);

            t.active += weight * active;
            t.idleScan += weight * (scan - active);
            if (controller > scan)
                t.idleScan += weight * (controller - scan);
            t.compares += weight * scan * 2.0 * k;

            const double wlen = std::min<double>(k, cand);
            const double scan_flow =
                std::max({cand / k, selected / n, 1.0});
            t.sramIndex += weight * scan_flow * rceil(wlen / index_per);
            value_elements += weight * selected;
            const double sel_per_active =
                active > 1e-12 ? selected / active : 0.0;
            t.sramValue +=
                weight * active * rceil(sel_per_active / value_per);
            executed += weight * selected * kgroup;
            image_elements_streamed += weight * 2.0 * chunk.entries;
        }
    }

    const double all_products = img.nnz * stack_nnz;
    t.valid = std::min(stack_size * expectedValidPairs(spec, img, ker),
                       all_products);
    t.executed = clampD(executed, t.valid, all_products);
    t.rcpsAvoided = all_products - t.executed;
    t.sramReadsAvoided =
        std::max(0.0, image_elements_streamed - value_elements);
    t.outputIndexPerExecuted = true;
    t.writesPerValid = true;
}

/**
 * Dense inner-product (DaDianNao-like) task: exact closed form --
 * every counter of inner_product.cc is already density-free.
 */
void
denseInnerProductTask(const InnerProductConfig &cfg, const ProblemSpec &spec,
                      double stack_size, TaskCost &t)
{
    const double macs =
        static_cast<double>(spec.denseValidProducts()) * stack_size;
    const double m = cfg.multipliers;
    t.executed = macs;
    t.valid = macs;
    t.startup = cfg.startupCycles;
    t.active = rceil(macs / m);
    t.sramValue = std::floor((2.0 * macs + 3.0) / 4.0);
    const double out_elems =
        static_cast<double>(spec.outH()) * spec.outW();
    t.sramWrites = stack_size * std::floor((out_elems + 3.0) / 4.0);
    t.tasks = 1.0;
}

/** TensorDash-like task (inner_product.cc's packing model). */
void
tensorDashTask(const InnerProductConfig &cfg, const ProblemSpec &spec,
               const Ensemble &img, const Ensemble &ker, double stack_size,
               TaskCost &t)
{
    ANT_ASSERT(spec.kind() == ProblemSpec::Kind::Conv,
               "inner-product baselines model convolutions only");
    (void)ker; // the kernel side is dense in the TensorDash model
    const double dense_macs =
        static_cast<double>(spec.denseValidProducts()) * stack_size;
    // E[nonzeroImageMacs]: the per-axis position-count sums factorize
    // over the embedded support exactly like the valid-pair count.
    const double x_sum =
        axisValidSum(img.innerW, img.offset, img.dilation, spec.kernelW(),
                     spec.dilation(), spec.stride(), spec.outW());
    const double y_sum =
        axisValidSum(img.innerH, img.offset, img.dilation, spec.kernelH(),
                     spec.dilation(), spec.stride(), spec.outH());
    const double nz_macs = img.density() * x_sum * y_sum * stack_size;

    const double m = cfg.multipliers;
    const double window_bound = dense_macs / (m * cfg.packWindow);
    const double work_bound = nz_macs / m;
    const double compute_cycles =
        rceil(std::max(window_bound, work_bound) / cfg.packEfficiency);

    t.executed = nz_macs;
    t.valid = nz_macs;
    t.startup = cfg.startupCycles;
    t.active = compute_cycles;
    t.sramValue = std::floor((nz_macs + 1.0) / 2.0) +
        std::floor((compute_cycles * m + 3.0) / 4.0);
    t.sramIndex = std::floor((nz_macs + 1.0) / 2.0);
    const double out_elems =
        static_cast<double>(spec.outH()) * spec.outW();
    t.sramWrites = stack_size * std::floor((out_elems + 3.0) / 4.0);
    t.tasks = 1.0;
}

/** SCNN matmul pair, chunked on both operands (runner's allChunkPairs). */
void
scnnMatmulTask(const ScnnPeConfig &cfg, const ProblemSpec &spec,
               const Ensemble &img, const Ensemble &ker,
               std::uint32_t chunk_cap, TaskCost &t)
{
    const std::uint32_t n = cfg.n;
    const std::uint32_t value_per = cfg.buffer.elementsPerAccess();
    const std::uint32_t index_per = 2 * value_per;
    const std::vector<Chunk> ichunks = chunkSplit(img.nnz, chunk_cap);
    const std::vector<Chunk> kchunks = chunkSplit(ker.nnz, chunk_cap);
    for (const Chunk &kc : kchunks) {
        for (const Chunk &ic : ichunks) {
            const double igroups = rceil(ic.entries / n);
            const double kgroups = rceil(kc.entries / n);
            t.startup += cfg.startupCycles;
            t.active += igroups * kgroups;
            t.sramValue +=
                groupedAccessesReal(ic.entries, n, value_per) +
                igroups * groupedAccessesReal(kc.entries, n, value_per);
            t.sramIndex +=
                groupedAccessesReal(ic.entries, n, index_per) +
                igroups * groupedAccessesReal(kc.entries, n, index_per);
            t.tasks += 1.0;
        }
    }
    t.executed = img.nnz * ker.nnz;
    t.valid =
        std::min(expectedValidPairs(spec, img, ker), t.executed);
    t.outputIndexPerExecuted = true;
    t.writesPerValid = true;
}

/**
 * ANT matmul pair (runMatmulPair): CSC image traversal, per-group
 * kernel-row window r in [x_0, x_{n-1}], candidates streamed n per
 * cycle with the FNIR bypassed. Both operands chunk; a kernel chunk
 * only holds candidates where the group's column window overlaps the
 * chunk's row band.
 */
void
antMatmulTask(const AntPeConfig &cfg, const ProblemSpec &spec,
              const Ensemble &img, const Ensemble &ker,
              std::uint32_t chunk_cap, TaskCost &t)
{
    const std::uint32_t n = cfg.n;
    const std::uint32_t value_per = cfg.buffer.elementsPerAccess();
    const std::uint32_t index_per = 2 * value_per;
    const double w_cols = spec.imageW();
    const double r_rows = spec.kernelH();
    const double rho_kr = r_rows > 0.0 ? ker.nnz / r_rows : 0.0;

    double executed = 0.0;

    const std::vector<Chunk> ichunks = chunkSplit(img.nnz, chunk_cap);
    const std::vector<Chunk> kchunks = chunkSplit(ker.nnz, chunk_cap);
    for (const Chunk &kc : kchunks) {
        const double kr_lo = rho_kr > 0.0
            ? clampD(std::floor(kc.base / rho_kr), 0.0, r_rows - 1.0)
            : 0.0;
        const double kr_hi = rho_kr > 0.0
            ? clampD(std::floor((kc.base + kc.entries - 1.0) / rho_kr),
                     0.0, r_rows - 1.0)
            : -1.0;
        const double kc_row_density = kr_hi >= kr_lo
            ? kc.entries / (kr_hi - kr_lo + 1.0)
            : 0.0;
        for (const Chunk &ic : ichunks) {
            t.startup += cfg.startupCycles;
            t.tasks += 1.0;
            if (ic.entries < 0.5)
                continue;
            const double groups = rceil(ic.entries / n);
            const double rho_col = ic.entries / w_cols;
            const auto samples = static_cast<std::uint32_t>(
                std::min<double>(kGroupSamples, std::max(1.0, groups)));
            const double weight = groups / samples;
            double elements_read = 0.0;

            for (std::uint32_t j = 0; j < samples; ++j) {
                const double g = (j + 0.5) * groups / samples;
                const double e0 = g * n;
                const double igroup = clampD(ic.entries - e0, 1.0, n);
                t.sramValue += weight * rceil(igroup / value_per);
                t.sramIndex += weight * rceil(igroup / index_per);
                t.compares += weight * 2.0;

                // Column window of the group in CSC order.
                const double x0 = rho_col > 0.0
                    ? clampD(std::floor(e0 / rho_col), 0.0, w_cols - 1.0)
                    : 0.0;
                const double x1 = rho_col > 0.0
                    ? clampD(std::floor((e0 + igroup - 1.0) / rho_col),
                             0.0, w_cols - 1.0)
                    : 0.0;
                const double win_lo = x0;
                const double win_hi = std::min(x1, r_rows - 1.0);
                if (win_hi >= win_lo) {
                    t.sramRowPtr +=
                        weight * rowPtrWalk(1.0, win_hi - win_lo + 1.0);
                }
                // Candidates: this kernel chunk's entries in the
                // window rows.
                const double o_lo = std::max(win_lo, kr_lo);
                const double o_hi = std::min(win_hi, kr_hi);
                const double cand = o_hi >= o_lo
                    ? kc_row_density * (o_hi - o_lo + 1.0)
                    : 0.0;
                if (cand < 1e-9) {
                    t.idleScan += weight;
                    continue;
                }
                const double kgroups = rceil(cand / n);
                t.active += weight * kgroups;
                t.sramValue +=
                    weight * groupedAccessesReal(cand, n, value_per);
                t.sramIndex +=
                    weight * groupedAccessesReal(cand, n, index_per);
                elements_read += weight * 2.0 * cand;
                executed += weight * cand * igroup;
            }
            t.sramReadsAvoided += std::max(
                0.0, 2.0 * kc.entries * groups - elements_read);
        }
    }

    const double all_products = img.nnz * ker.nnz;
    t.valid = std::min(expectedValidPairs(spec, img, ker), all_products);
    t.executed = clampD(executed, t.valid, all_products);
    t.rcpsAvoided = all_products - t.executed;
    t.outputIndexPerExecuted = true;
    t.writesPerValid = true;
}

/** Dispatch one conv stacked task to the model for @p pe. */
TaskCost
convTask(const PeDescriptor &pe, const ProblemSpec &spec,
         const Ensemble &img, const Ensemble &ker, double stack_size,
         std::uint32_t chunk_cap)
{
    TaskCost t;
    switch (pe.kind) {
      case PeKind::Scnn:
        scnnConvTask(pe.scnn, spec, img, ker, stack_size, chunk_cap, t);
        break;
      case PeKind::Ant:
        if (pe.ant.dataflow == AntDataflow::KernelStationary) {
            antConvKernelStationaryTask(pe.ant, spec, img, ker,
                                        stack_size, chunk_cap, t);
        } else {
            antConvImageStationaryTask(pe.ant, spec, img, ker, stack_size,
                                       chunk_cap, t);
        }
        break;
      case PeKind::DenseInnerProduct:
        denseInnerProductTask(pe.inner, spec, stack_size, t);
        break;
      case PeKind::TensorDash:
        tensorDashTask(pe.inner, spec, img, ker, stack_size, t);
        break;
    }
    return t;
}

} // namespace

const char *
PeDescriptor::name() const
{
    switch (kind) {
      case PeKind::Scnn:
        return "SCNN-like";
      case PeKind::Ant:
        return "ANT";
      case PeKind::DenseInnerProduct:
        return "DaDianNao-like";
      case PeKind::TensorDash:
        return "TensorDash-like";
    }
    ANT_PANIC("unknown PE kind");
}

std::uint32_t
PeDescriptor::multiplierCount() const
{
    switch (kind) {
      case PeKind::Scnn:
        return scnn.n * scnn.n;
      case PeKind::Ant:
        return ant.n * ant.n;
      case PeKind::DenseInnerProduct:
      case PeKind::TensorDash:
        return inner.multipliers;
    }
    ANT_PANIC("unknown PE kind");
}

std::optional<PeDescriptor>
describePe(const PeModel &pe)
{
    if (const auto *p = dynamic_cast<const ScnnPe *>(&pe))
        return PeDescriptor::of(p->config());
    if (const auto *p = dynamic_cast<const AntPe *>(&pe))
        return PeDescriptor::of(p->config());
    if (const auto *p = dynamic_cast<const DenseInnerProductPe *>(&pe))
        return PeDescriptor::ofDense(p->config());
    if (const auto *p = dynamic_cast<const TensorDashPe *>(&pe))
        return PeDescriptor::ofTensorDash(p->config());
    return std::nullopt;
}

NetworkStats
estimateConvNetwork(const PeDescriptor &pe,
                    const std::vector<ConvLayer> &layers,
                    const SparsityProfile &profile, const RunConfig &config)
{
    config.validate();
    NetworkStats stats;
    stats.layers.reserve(layers.size());

    for (const ConvLayer &layer : layers) {
        LayerStats ls;
        ls.name = layer.name;
        const PhaseSpecs specs = layer.phaseSpecs();
        for (std::uint32_t p = 0; p < 3; ++p) {
            if (!config.phases[p])
                continue;
            const auto phase = static_cast<TrainingPhase>(p);
            const ProblemSpec &spec = phase == TrainingPhase::Forward
                ? specs.forward
                : (phase == TrainingPhase::Backward ? specs.backward
                                                    : specs.update);
            const Ensemble img = ensembleOf(
                convImageRecipe(layer, phase, profile, specs));
            const Ensemble ker = ensembleOf(
                convKernelRecipe(layer, phase, profile, specs));
            const double stack_size = phase == TrainingPhase::Backward
                ? layer.inChannels
                : layer.outChannels;
            const std::uint64_t pairs_total = stackTaskCount(layer, phase);

            const TaskCost task = convTask(pe, spec, img, ker, stack_size,
                                           config.chunkCapacity);
            PhaseStats &ps = ls.phases[p];
            ps.counters =
                toCounters(task, static_cast<double>(pairs_total));
            ps.pairsTotal = pairs_total;
            ps.pairsSimulated = pairs_total;
            verify::auditAggregateOrPanic("estimated phase counters",
                                          ps.counters, 0);
            stats.total += ps.counters;
        }
        stats.layers.push_back(std::move(ls));
    }
    verify::auditAggregateOrPanic("estimated conv network totals",
                                  stats.total, 0);
    return stats;
}

NetworkStats
estimateMatmulNetwork(const PeDescriptor &pe,
                      const std::vector<MatmulLayer> &layers,
                      double sparsity, SparsifyMethod method,
                      const RunConfig &config)
{
    config.validate();
    NetworkStats stats;
    stats.layers.reserve(layers.size());

    for (const MatmulLayer &layer : layers) {
        LayerStats ls;
        ls.name = layer.name;
        const ProblemSpec spec = layer.spec();
        const Ensemble img = ensembleOf(PlaneRecipe::plain(
            layer.imageH, layer.imageW, sparsity, method));
        const Ensemble ker = ensembleOf(PlaneRecipe::plain(
            layer.kernelR, layer.kernelS, sparsity, method));

        TaskCost task;
        switch (pe.kind) {
          case PeKind::Scnn:
            scnnMatmulTask(pe.scnn, spec, img, ker, config.chunkCapacity,
                           task);
            break;
          case PeKind::Ant:
            antMatmulTask(pe.ant, spec, img, ker, config.chunkCapacity,
                          task);
            break;
          case PeKind::DenseInnerProduct:
            denseInnerProductTask(pe.inner, spec, 1.0, task);
            break;
          case PeKind::TensorDash:
            ANT_FATAL("the TensorDash baseline models convolutions only; "
                      "no matmul estimate exists (the cycle-level model "
                      "rejects matmuls too)");
        }

        PhaseStats &ps = ls.phases[0];
        ps.counters = toCounters(task, 1.0);
        ps.pairsTotal = 1;
        ps.pairsSimulated = 1;
        verify::auditAggregateOrPanic("estimated matmul layer counters",
                                      ps.counters, 0);
        stats.total += ps.counters;
        stats.layers.push_back(std::move(ls));
    }
    verify::auditAggregateOrPanic("estimated matmul network totals",
                                  stats.total, 0);
    return stats;
}

} // namespace estimate
} // namespace antsim
