/**
 * @file
 * Analytical estimation fast path (`--estimate`): predict, in
 * O(layers) with no per-nonzero work, the quantities the cycle-level
 * engine measures -- cycles, energy inputs, RCPs avoided, multiplier
 * utilization, and the per-layer stall split -- for all four PE models.
 *
 * The estimator models the plane *ensemble* a PlaneRecipe describes
 * (src/workload/tracegen.hh) instead of sampling instances: top-K
 * sparsification fixes the non-zero count exactly
 * (llround(h*w*(1-s)), tensor/sparsify.cc), Bernoulli masking gives
 * its expectation, and expected valid-product counts factorize per
 * axis because ProblemSpec validity is separable in x/s and y/r
 * (conv/problem_spec.cc). Each PE's counter charges are mirrored in
 * closed form from the counting paths in scnn_pe.cc / ant_pe.cc /
 * inner_product.cc; the AntPe scan loop is modeled on a bounded,
 * deterministic sample of image groups (quantile positions), keeping
 * the whole estimate O(layers * constants).
 *
 * Conservation laws hold *by construction*: real-valued expectations
 * are rounded once, at the end, with dependent counters derived by
 * exact integer arithmetic (MultsExecuted = MultsValid + MultsRcp,
 * AccumAdds = MultsValid, Cycles = Startup + Active + IdleScan), so
 * the estimated NetworkStats pass verify::auditAggregateOrPanic with
 * zero slack. Accuracy against the cycle-level engine is gated by
 * tests/estimate_accuracy_test.cc; docs/MODEL.md Sec. 12 derives the
 * per-PE closed forms.
 */

#ifndef ANTSIM_ESTIMATE_ESTIMATE_HH
#define ANTSIM_ESTIMATE_ESTIMATE_HH

#include <optional>
#include <vector>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "scnn/scnn_pe.hh"
#include "workload/runner.hh"

namespace antsim {
namespace estimate {

/** Which analytical model to apply. */
enum class PeKind {
    Scnn,
    Ant,
    DenseInnerProduct,
    TensorDash,
};

/**
 * Analytical description of a PE: its kind plus the configuration the
 * matching model reads. Exactly one of the config members is
 * meaningful, selected by `kind`.
 */
struct PeDescriptor
{
    PeKind kind = PeKind::Scnn;
    ScnnPeConfig scnn;
    AntPeConfig ant;
    InnerProductConfig inner;

    static PeDescriptor
    of(const ScnnPeConfig &config)
    {
        PeDescriptor d;
        d.kind = PeKind::Scnn;
        d.scnn = config;
        return d;
    }

    static PeDescriptor
    of(const AntPeConfig &config)
    {
        PeDescriptor d;
        d.kind = PeKind::Ant;
        d.ant = config;
        return d;
    }

    static PeDescriptor
    ofDense(const InnerProductConfig &config)
    {
        PeDescriptor d;
        d.kind = PeKind::DenseInnerProduct;
        d.inner = config;
        return d;
    }

    static PeDescriptor
    ofTensorDash(const InnerProductConfig &config)
    {
        PeDescriptor d;
        d.kind = PeKind::TensorDash;
        d.inner = config;
        return d;
    }

    /** Display name matching the simulated PE (PeModel::name). */
    const char *name() const;

    /** Multipliers, matching PeModel::multiplierCount. */
    std::uint32_t multiplierCount() const;
};

/**
 * Describe a concrete PE model for estimation, or nullopt when no
 * analytical model exists for its dynamic type.
 */
std::optional<PeDescriptor> describePe(const PeModel &pe);

/**
 * Analytically estimate a conv network's training step: the estimated
 * counterpart of runConvNetwork, same RunConfig semantics (sampleCap
 * is irrelevant -- the estimate covers every plane pair exactly, so
 * pairsSimulated == pairsTotal), same NetworkStats shape, audited
 * under the aggregate conservation laws.
 */
NetworkStats estimateConvNetwork(const PeDescriptor &pe,
                                 const std::vector<ConvLayer> &layers,
                                 const SparsityProfile &profile,
                                 const RunConfig &config);

/** Estimated counterpart of runMatmulNetwork. */
NetworkStats estimateMatmulNetwork(const PeDescriptor &pe,
                                   const std::vector<MatmulLayer> &layers,
                                   double sparsity, SparsifyMethod method,
                                   const RunConfig &config);

} // namespace estimate
} // namespace antsim

#endif // ANTSIM_ESTIMATE_ESTIMATE_HH
