/**
 * @file
 * Tests for the output accumulator bank (validity authority + counting).
 */

#include <gtest/gtest.h>

#include "sim/accumulator.hh"

namespace antsim {
namespace {

TEST(Accumulator, ValidProductAccumulates)
{
    const auto spec = ProblemSpec::conv(2, 2, 4, 4);
    Accumulator acc(spec);
    CounterSet c;
    // image (1,1) with kernel (0,0) -> out (1,1).
    EXPECT_TRUE(acc.offer(2.0f, 1, 1, 3.0f, 0, 0, c));
    EXPECT_DOUBLE_EQ(acc.output().at(1, 1), 6.0);
    EXPECT_EQ(c.get(Counter::MultsValid), 1u);
    EXPECT_EQ(c.get(Counter::AccumAdds), 1u);
    EXPECT_EQ(c.get(Counter::OutputIndexCalcs), 1u);
    EXPECT_EQ(c.get(Counter::SramWrites), 1u);
    EXPECT_EQ(c.get(Counter::MultsRcp), 0u);
}

TEST(Accumulator, RcpIsDroppedAndCounted)
{
    const auto spec = ProblemSpec::conv(2, 2, 4, 4);
    Accumulator acc(spec);
    CounterSet c;
    // image (0,0) with kernel (1,1) -> negative out index -> RCP.
    EXPECT_FALSE(acc.offer(2.0f, 0, 0, 3.0f, 1, 1, c));
    EXPECT_EQ(c.get(Counter::MultsRcp), 1u);
    EXPECT_EQ(c.get(Counter::MultsValid), 0u);
    EXPECT_EQ(c.get(Counter::AccumAdds), 0u);
    // Output untouched.
    for (const double v : acc.output().data())
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Accumulator, RepeatedOffersSum)
{
    const auto spec = ProblemSpec::conv(1, 1, 2, 2);
    Accumulator acc(spec);
    CounterSet c;
    acc.offer(1.0f, 0, 0, 2.0f, 0, 0, c);
    acc.offer(3.0f, 0, 0, 4.0f, 0, 0, c);
    EXPECT_DOUBLE_EQ(acc.output().at(0, 0), 14.0);
}

TEST(Accumulator, MatmulRouting)
{
    const auto spec = ProblemSpec::matmul(3, 4, 4, 2);
    Accumulator acc(spec);
    CounterSet c;
    // r == x -> valid, routed to (s, y).
    EXPECT_TRUE(acc.offer(2.0f, 3, 1, 5.0f, 1, 3, c));
    EXPECT_DOUBLE_EQ(acc.output().at(1, 1), 10.0);
    // r != x -> RCP.
    EXPECT_FALSE(acc.offer(2.0f, 3, 1, 5.0f, 1, 2, c));
}

TEST(Accumulator, OutputShapeFollowsSpec)
{
    const auto spec = ProblemSpec::convWithOutDims(3, 3, 10, 10, 2, 2);
    Accumulator acc(spec);
    EXPECT_EQ(acc.output().height(), 2u);
    EXPECT_EQ(acc.output().width(), 2u);
    CounterSet c;
    // Product mapping to out (5,5) of the natural 8x8 grid is an RCP
    // under the 2x2 override.
    EXPECT_FALSE(acc.offer(1.0f, 5, 5, 1.0f, 0, 0, c));
}

} // namespace
} // namespace antsim
