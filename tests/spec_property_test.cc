/**
 * @file
 * Randomized property sweep over ProblemSpec geometries: the range
 * algebra (forward and inverse) must be sound for arbitrary
 * stride/dilation/shape combinations, and the efficiency model must
 * equal brute-force counting.
 */

#include <gtest/gtest.h>

#include "conv/problem_spec.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

struct RandomSpec
{
    ProblemSpec spec;
};

ProblemSpec
randomConvSpec(Rng &rng)
{
    for (;;) {
        const auto stride = static_cast<std::uint32_t>(rng.range(1, 3));
        const auto dil = static_cast<std::uint32_t>(rng.range(1, 3));
        const auto kh = static_cast<std::uint32_t>(rng.range(1, 6));
        const auto kw = static_cast<std::uint32_t>(rng.range(1, 6));
        const auto ih = static_cast<std::uint32_t>(rng.range(4, 24));
        const auto iw = static_cast<std::uint32_t>(rng.range(4, 24));
        if (dil * (kh - 1) + 1 <= ih && dil * (kw - 1) + 1 <= iw)
            return ProblemSpec::conv(kh, kw, ih, iw, stride, dil);
    }
}

TEST(SpecProperty, RangesAreSoundForRandomGeometries)
{
    Rng rng(2024);
    for (int trial = 0; trial < 60; ++trial) {
        const ProblemSpec spec = randomConvSpec(rng);
        for (int probe = 0; probe < 200; ++probe) {
            const auto x = static_cast<std::uint32_t>(
                rng.below(spec.imageW()));
            const auto y = static_cast<std::uint32_t>(
                rng.below(spec.imageH()));
            const auto s = static_cast<std::uint32_t>(
                rng.below(spec.kernelW()));
            const auto r = static_cast<std::uint32_t>(
                rng.below(spec.kernelH()));
            if (!spec.isValid(x, y, s, r))
                continue;
            // Forward ranges (Eqs. 7-12 generalized).
            EXPECT_TRUE(spec.sRangeIdeal(x).contains(s))
                << spec.toString();
            EXPECT_TRUE(spec.rRangeIdeal(y).contains(r))
                << spec.toString();
            // Inverse ranges (Sec. 4.6 kernel-stationary).
            EXPECT_TRUE(spec.xRange(s, s).contains(x)) << spec.toString();
            EXPECT_TRUE(spec.yRange(r, r).contains(y)) << spec.toString();
        }
    }
}

TEST(SpecProperty, GroupRangesContainElementRanges)
{
    // Widening the group extremes can only widen the admitted range
    // (monotonicity of the screen).
    Rng rng(7);
    for (int trial = 0; trial < 40; ++trial) {
        const ProblemSpec spec = randomConvSpec(rng);
        const auto x1 = static_cast<std::uint32_t>(
            rng.below(spec.imageW()));
        const auto x2 = static_cast<std::uint32_t>(
            rng.below(spec.imageW()));
        const auto lo = std::min(x1, x2);
        const auto hi = std::max(x1, x2);
        const IndexRange wide = spec.sRange(lo, hi);
        for (std::uint32_t x : {lo, hi}) {
            const IndexRange narrow = spec.sRange(x, x);
            if (narrow.empty())
                continue;
            EXPECT_LE(wide.lo, narrow.lo) << spec.toString();
            EXPECT_GE(wide.hi, narrow.hi) << spec.toString();
        }
    }
}

TEST(SpecProperty, EfficiencyEqualsBruteForceCount)
{
    Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        const ProblemSpec spec = randomConvSpec(rng);
        // Brute-force count of valid (x, y, s, r) quadruples.
        std::uint64_t valid = 0;
        for (std::uint32_t x = 0; x < spec.imageW(); ++x)
            for (std::uint32_t y = 0; y < spec.imageH(); ++y)
                for (std::uint32_t s = 0; s < spec.kernelW(); ++s)
                    for (std::uint32_t r = 0; r < spec.kernelH(); ++r)
                        valid += spec.isValid(x, y, s, r) ? 1 : 0;
        EXPECT_EQ(valid, spec.denseValidProducts()) << spec.toString();
    }
}

TEST(SpecProperty, OutputIndexBijectiveOverValidProducts)
{
    // For each output cell, the number of valid products mapping to it
    // is exactly kernelH * kernelW (every tap lands in the image for
    // the geometries ProblemSpec::conv admits).
    Rng rng(11);
    for (int trial = 0; trial < 10; ++trial) {
        const ProblemSpec spec = randomConvSpec(rng);
        std::vector<std::uint32_t> hits(
            static_cast<std::size_t>(spec.outH()) * spec.outW(), 0);
        for (std::uint32_t x = 0; x < spec.imageW(); ++x)
            for (std::uint32_t y = 0; y < spec.imageH(); ++y)
                for (std::uint32_t s = 0; s < spec.kernelW(); ++s)
                    for (std::uint32_t r = 0; r < spec.kernelH(); ++r) {
                        const auto out = spec.outputIndex(x, y, s, r);
                        if (out)
                            ++hits[static_cast<std::size_t>(out->y) *
                                       spec.outW() +
                                   out->x];
                    }
        for (std::uint32_t h : hits)
            EXPECT_EQ(h, spec.kernelH() * spec.kernelW())
                << spec.toString();
    }
}

} // namespace
} // namespace antsim
