// antsim-lint fixture: no-wall-clock-in-sim must FIRE here.
// Wall-clock reads and platform randomness inside simulation code.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <random>

std::uint64_t
nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count());
}

std::uint64_t
seedFromEntropy()
{
    std::random_device entropy;
    return entropy();
}

int
diceRoll()
{
    std::srand(static_cast<unsigned>(time(nullptr)));
    return std::rand() % 6;
}

double
engineDraw()
{
    std::mt19937_64 engine(42);
    return static_cast<double>(engine()) / 1e19;
}
