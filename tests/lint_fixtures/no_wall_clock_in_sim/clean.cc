// antsim-lint fixture: no-wall-clock-in-sim must stay QUIET here.
// Simulated time comes from a cycle counter and member functions named
// time()/clock() are simulated state, not the C library.
#include <cstdint>

class SimClock
{
  public:
    void tick() { ++cycle_; }
    std::uint64_t cycle() const { return cycle_; }

    // Member functions named like the banned C calls are fine: the
    // rule only matches free or std-qualified calls.
    std::uint64_t time() const { return cycle_; }
    std::uint64_t clock() const { return cycle_; }

  private:
    std::uint64_t cycle_ = 0;
};

std::uint64_t
elapsed(const SimClock &clk)
{
    return clk.time() + clk.clock();
}

// A user type's static member shadows nothing: qualified by a
// non-std class name, so not the C library either.
struct Scheduler
{
    static std::uint64_t time() { return 7; }
};

std::uint64_t
scheduled()
{
    return Scheduler::time();
}
