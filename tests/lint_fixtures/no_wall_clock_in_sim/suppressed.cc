// antsim-lint fixture: no-wall-clock-in-sim SUPPRESSED here.
// A diagnostics-only wall-clock read with a justification, plus a
// file-wide style suppression exercised on a second site.
#include <chrono>
#include <cstdint>

std::uint64_t
hostProfileNanos()
{
    // antsim-lint: allow(no-wall-clock-in-sim) -- host-side profiling
    // only; the value never reaches simulated statistics.
    const auto t = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(t.time_since_epoch().count());
}
