// antsim-lint fixture: parallel-capture-discipline must FIRE here.
// A default by-reference capture and a named by-reference capture in
// lambdas handed to parallelFor -- unproven shared mutable state.
#include <cstdint>
#include <vector>

struct Pool
{
    template <typename Fn>
    void
    parallelFor(std::uint64_t begin, std::uint64_t end, std::uint64_t,
                Fn &&fn)
    {
        for (std::uint64_t i = begin; i < end; ++i)
            fn(i, 0u);
    }
};

std::uint64_t
racyTotal(Pool &pool, const std::vector<std::uint64_t> &values)
{
    std::uint64_t total = 0;
    pool.parallelFor(0, values.size(), 1,
                     [&](std::uint64_t i, std::uint32_t) {
                         total += values[i]; // racy shared accumulator
                     });
    return total;
}

std::uint64_t
racyNamedCapture(Pool &pool, const std::vector<std::uint64_t> &values)
{
    std::uint64_t total = 0;
    pool.parallelFor(0, values.size(), 1,
                     [&total, &values](std::uint64_t i, std::uint32_t) {
                         total += values[i];
                     });
    return total;
}
