// antsim-lint fixture: parallel-capture-discipline SUPPRESSED here.
// The sanctioned pattern: by-reference capture whose only writes go to
// a task-indexed private slot, justified inline.
#include <cstdint>
#include <vector>

struct Pool
{
    template <typename Fn>
    void
    parallelFor(std::uint64_t begin, std::uint64_t end, std::uint64_t,
                Fn &&fn)
    {
        for (std::uint64_t i = begin; i < end; ++i)
            fn(i, 0u);
    }
};

std::vector<std::uint64_t>
perSlotSquares(Pool &pool, std::uint64_t n)
{
    std::vector<std::uint64_t> out(n);
    pool.parallelFor(0, n, 1,
                     // antsim-lint: allow(parallel-capture-discipline) -- per-slot
                     // discipline: each task writes only out[i], its
                     // own task-indexed slot.
                     [&](std::uint64_t i, std::uint32_t) {
                         out[i] = i * i;
                     });
    return out;
}
