// antsim-lint fixture: parallel-capture-discipline must stay QUIET.
// Value captures only; by-reference lambdas not passed to parallelFor
// (plain algorithms, serial helpers) are out of the rule's scope.
#include <algorithm>
#include <cstdint>
#include <vector>

struct Pool
{
    template <typename Fn>
    void
    parallelFor(std::uint64_t begin, std::uint64_t end, std::uint64_t,
                Fn &&fn)
    {
        for (std::uint64_t i = begin; i < end; ++i)
            fn(i, 0u);
    }
};

void
scaled(Pool &pool, std::uint64_t n)
{
    const std::uint64_t factor = 3;
    pool.parallelFor(0, n, 1, [factor](std::uint64_t i, std::uint32_t) {
        (void)(i * factor);
    });
}

std::uint64_t
serialSum(const std::vector<std::uint64_t> &values)
{
    std::uint64_t total = 0;
    // By-reference capture in a serial algorithm: fine.
    std::for_each(values.begin(), values.end(),
                  [&total](std::uint64_t v) { total += v; });
    return total;
}
