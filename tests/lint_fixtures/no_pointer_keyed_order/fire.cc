// antsim-lint fixture: no-pointer-keyed-order must FIRE here.
// std::map and std::set keyed on raw pointers order elements by
// address, which differs run to run.
#include <cstdint>
#include <map>
#include <set>
#include <string>

struct Module
{
    std::string name;
};

std::map<Module *, std::uint64_t> g_module_cycles;

struct Registry
{
    std::set<const Module *> live;

    void track(const Module *m) { live.insert(m); }
};
