// antsim-lint fixture: no-pointer-keyed-order must stay QUIET here.
// Ordered containers keyed on stable identities (names, indices), and
// pointer *values* (not keys) are fine.
#include <cstdint>
#include <map>
#include <set>
#include <string>

struct Module
{
    std::string name;
};

std::map<std::string, Module *> g_modules_by_name;
std::map<std::uint64_t, std::uint64_t> g_cycles_by_index;
std::set<std::string> g_seen_names;
