// antsim-lint fixture: no-pointer-keyed-order SUPPRESSED here.
// A pointer-keyed set used purely for membership tests (never
// iterated), with the justification inline.
#include <set>

struct Module;

struct DedupFilter
{
    // antsim-lint: allow(no-pointer-keyed-order) -- membership-only
    // set (insert/count); nothing ever iterates it, so address order
    // cannot leak into results.
    std::set<const Module *> seen;

    bool
    firstVisit(const Module *m)
    {
        return seen.insert(m).second;
    }
};
