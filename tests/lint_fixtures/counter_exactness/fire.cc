// antsim-lint fixture: counter-exactness must FIRE here, three ways:
// a float literal at the insertion point, a double variable flowing
// in through a cast, and a tainted integer (rounded from a double)
// reaching a counter two statements later.
#include <cmath>
#include <cstdint>

enum class Counter : unsigned { Cycles, MultsExecuted };

class CounterSet
{
  public:
    void add(Counter, std::uint64_t) {}
    void set(Counter, std::uint64_t) {}
};

void
directLiteral(CounterSet &c)
{
    c.add(Counter::MultsExecuted,
          static_cast<std::uint64_t>(1.5 * 100));
}

void
castDouble(CounterSet &c, double utilization)
{
    c.set(Counter::Cycles, static_cast<std::uint64_t>(utilization));
}

void
taintedIntermediate(CounterSet &c, double efficiency)
{
    const std::uint64_t cycles =
        static_cast<std::uint64_t>(std::ceil(100.0 / efficiency));
    c.add(Counter::Cycles, cycles);
}
