// antsim-lint fixture: counter-exactness must FIRE here, three ways:
// a float literal at the insertion point, a double variable flowing
// in through a cast, and a tainted integer (rounded from a double)
// reaching a counter two statements later.
#include <cmath>
#include <cstdint>

enum class Counter : unsigned { Cycles, MultsExecuted };

class CounterSet
{
  public:
    void add(Counter, std::uint64_t) {}
    void set(Counter, std::uint64_t) {}
};

void
directLiteral(CounterSet &c)
{
    c.add(Counter::MultsExecuted,
          static_cast<std::uint64_t>(1.5 * 100));
}

void
castDouble(CounterSet &c, double utilization)
{
    c.set(Counter::Cycles, static_cast<std::uint64_t>(utilization));
}

void
taintedIntermediate(CounterSet &c, double efficiency)
{
    const std::uint64_t cycles =
        static_cast<std::uint64_t>(std::ceil(100.0 / efficiency));
    c.add(Counter::Cycles, cycles);
}

// Fake SIMD surface; the linter is lexical, so prototypes suffice.
struct __m256 {};
int _mm256_movemask_ps(__m256);
__m256 _mm256_loadu_ps(const float *);

void
directIntrinsic(CounterSet &c, const float *lanes)
{
    c.add(Counter::MultsExecuted,
          static_cast<std::uint64_t>(
              _mm256_movemask_ps(_mm256_loadu_ps(lanes))));
}

void
intrinsicAccumulation(CounterSet &c, const float *lanes)
{
    std::uint64_t valid = 0;
    valid += static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_loadu_ps(lanes)));
    c.add(Counter::MultsExecuted, valid);
}
