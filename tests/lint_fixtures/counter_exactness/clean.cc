// antsim-lint fixture: counter-exactness must stay QUIET here.
// Pure integer arithmetic into counters (ceil-div included), and
// doubles that flow only into non-counter sinks.
#include <cstdint>

enum class Counter : unsigned { Cycles, MultsExecuted };

class CounterSet
{
  public:
    void add(Counter, std::uint64_t) {}
    void set(Counter, std::uint64_t) {}
};

void
integerAccounting(CounterSet &c, std::uint64_t macs,
                  std::uint64_t multipliers)
{
    const std::uint64_t cycles = (macs + multipliers - 1) / multipliers;
    c.set(Counter::Cycles, cycles);
    c.add(Counter::MultsExecuted, macs);
}

double
energyEstimate(std::uint64_t cycles)
{
    // Doubles *derived from* counters are fine; only the reverse
    // direction breaks the conservation laws.
    return static_cast<double>(cycles) * 0.35;
}

// Integer-lane SIMD intrinsics (_epi32 and friends) are not float
// domain; a tally built from them flows into counters freely.
struct __m256i {};
int _mm256_movemask_epi8(__m256i);
__m256i _mm256_loadu_si256(const void *);

void
integerIntrinsicTally(CounterSet &c, const void *lanes)
{
    std::uint64_t hits = 0;
    hits += static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_loadu_si256(lanes)));
    c.add(Counter::MultsExecuted, hits);
}
