// antsim-lint fixture: counter-exactness SUPPRESSED here, two ways:
// at the insertion point, and at the taint source (the sanctioned
// single-rounding-site discipline: the suppression on the declaration
// sanctions the variable, so downstream insertions stay quiet).
#include <cmath>
#include <cstdint>

enum class Counter : unsigned { Cycles, MultsExecuted };

class CounterSet
{
  public:
    void add(Counter, std::uint64_t) {}
    void set(Counter, std::uint64_t) {}
};

void
atInsertion(CounterSet &c, double derate)
{
    // antsim-lint: allow(counter-exactness) -- fractional derating
    // model; rounded once, documented in the model notes.
    c.set(Counter::Cycles, static_cast<std::uint64_t>(derate * 8.0));
}

void
atTaintSource(CounterSet &c, double efficiency)
{
    // antsim-lint: allow(counter-exactness) -- single rounding site;
    // every counter below derives from this integer exactly.
    const std::uint64_t cycles =
        static_cast<std::uint64_t>(std::ceil(100.0 / efficiency));
    c.set(Counter::Cycles, cycles);
    c.add(Counter::MultsExecuted, cycles * 16);
}

// Sanctioned intrinsic kernel: the movemask-over-bit-cast idiom is
// exact integer arithmetic despite the _ps suffix; the suppression on
// the accumulation whitelists the tally for every counter below.
struct __m256 {};
int _mm256_movemask_ps(__m256);
__m256 _mm256_loadu_ps(const float *);

void
sanctionedIntrinsicKernel(CounterSet &c, const float *lanes)
{
    std::uint64_t valid = 0;
    // antsim-lint: allow(counter-exactness) -- movemask over 0/-1
    // integer lanes bit-cast to float; the popcounted tally is exact.
    valid += static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_loadu_ps(lanes)));
    c.add(Counter::MultsExecuted, valid);
}
