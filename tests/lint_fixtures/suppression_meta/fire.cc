// antsim-lint fixture: the suppression meta rules must FIRE here.
// A suppression with no justification (bad-suppression), one naming an
// unknown rule (bad-suppression), and -- under --strict -- a
// well-formed suppression matching no finding (unused-suppression).
#include <cstdint>

// antsim-lint: allow(no-wall-clock-in-sim)
std::uint64_t
unjustified()
{
    return 1;
}

// antsim-lint: allow(made-up-rule) -- the rule does not exist
std::uint64_t
unknownRule()
{
    return 2;
}

// antsim-lint: allow(no-pointer-keyed-order) -- nothing here triggers
// this rule, so strict mode reports the suppression as stale.
std::uint64_t
stale()
{
    return 3;
}
