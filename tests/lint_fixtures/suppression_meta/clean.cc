// antsim-lint fixture: suppression meta rules must stay QUIET here,
// even under --strict: the only suppression is well-formed, justified,
// and actually used.
#include <chrono>
#include <cstdint>

std::uint64_t
profiled()
{
    // antsim-lint: allow(no-wall-clock-in-sim) -- host profiling only;
    // the value never reaches simulated statistics.
    const auto now = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        now.time_since_epoch().count());
}
