// antsim-lint fixture: no-unordered-iteration SUPPRESSED here.
// The loop result is a commutative reduction (order-independent), so
// the iteration is provably safe and carries a justification.
#include <cstdint>
#include <unordered_map>

std::uint64_t
totalCount(const std::unordered_map<std::uint64_t, std::uint64_t> &bins)
{
    std::uint64_t sum = 0;
    // antsim-lint: allow(no-unordered-iteration) -- commutative sum
    // over values; the result is independent of hash order.
    for (const auto &entry : bins)
        sum += entry.second;
    return sum;
}
