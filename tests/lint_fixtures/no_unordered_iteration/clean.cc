// antsim-lint fixture: no-unordered-iteration must stay QUIET here.
// Unordered containers used only for order-independent operations
// (find/count/insert/clear), and iteration only over ordered
// containers.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

struct Cache
{
    std::unordered_map<std::uint64_t, std::uint64_t> table;

    bool
    lookup(std::uint64_t key, std::uint64_t &value) const
    {
        const auto it = table.find(key);
        if (it == table.end())
            return false;
        value = it->second;
        return true;
    }

    void insert(std::uint64_t k, std::uint64_t v) { table[k] = v; }
    void reset() { table.clear(); }
};

std::uint64_t
sumOrdered(const std::map<std::uint64_t, std::uint64_t> &bins,
           const std::vector<std::uint64_t> &extras)
{
    std::uint64_t sum = 0;
    for (const auto &entry : bins)
        sum += entry.second;
    for (std::uint64_t e : extras)
        sum += e;
    return sum;
}
