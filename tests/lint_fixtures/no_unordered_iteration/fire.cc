// antsim-lint fixture: no-unordered-iteration must FIRE here.
// Three nondeterministic iteration shapes: a range-for over an
// unordered_map member, a range-for over a local unordered_set, and an
// explicit iterator loop via .begin().
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct Histogram
{
    std::unordered_map<std::uint64_t, std::uint64_t> bins;

    std::uint64_t
    firstKeySeen() const
    {
        for (const auto &entry : bins)
            return entry.first;
        return 0;
    }
};

std::uint64_t
sumKeys(const std::unordered_set<std::uint64_t> &keys)
{
    std::uint64_t sum = 0;
    for (std::uint64_t k : keys)
        sum += k;
    return sum;
}

std::uint64_t
firstViaIterator(const std::unordered_map<int, int> &table)
{
    auto it = table.begin();
    return it == table.end() ? 0 : it->second;
}
