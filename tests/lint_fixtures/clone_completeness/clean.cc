// antsim-lint fixture: clone-completeness must stay QUIET here.
// One clone mentions every member explicitly; the other delegates to
// the copy constructor via *this (always complete).
#include <cstdint>
#include <memory>

class PeModel
{
  public:
    virtual ~PeModel() = default;
    virtual std::unique_ptr<PeModel> clone() const = 0;
};

struct Config
{
    std::uint32_t n = 4;
};

class ExplicitPe : public PeModel
{
  public:
    explicit ExplicitPe(const Config &config) : config_(config) {}

    std::unique_ptr<PeModel>
    clone() const override
    {
        auto copy = std::make_unique<ExplicitPe>(config_);
        copy->scratch_ = scratch_;
        return copy;
    }

  private:
    Config config_;
    std::uint64_t scratch_ = 0;
};

class CopyCtorPe : public PeModel
{
  public:
    std::unique_ptr<PeModel>
    clone() const override
    {
        return std::make_unique<CopyCtorPe>(*this);
    }

  private:
    Config config_;
    std::uint64_t scratch_ = 0;
};
