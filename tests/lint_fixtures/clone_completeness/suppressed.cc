// antsim-lint fixture: clone-completeness SUPPRESSED here.
// The omitted member is a pure function of config_, rebuilt by the
// constructor; the suppression records that proof.
#include <cstdint>
#include <memory>

class PeModel
{
  public:
    virtual ~PeModel() = default;
    virtual std::unique_ptr<PeModel> clone() const = 0;
};

struct Config
{
    std::uint32_t n = 4;
};

// antsim-lint: allow(clone-completeness) -- derived_ is a pure
// function of config_ recomputed by the constructor, so rebuilding
// from config_ replicates it exactly.
class DerivedStatePe : public PeModel
{
  public:
    explicit DerivedStatePe(const Config &config)
        : config_(config), derived_(config.n * config.n)
    {}

    std::unique_ptr<PeModel>
    clone() const override
    {
        return std::make_unique<DerivedStatePe>(config_);
    }

  private:
    Config config_;
    std::uint64_t derived_;
};
