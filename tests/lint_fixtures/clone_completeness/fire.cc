// antsim-lint fixture: clone-completeness must FIRE here, twice:
// one PeModel subclass whose clone() drops a data member, and one that
// does not override clone() at all.
#include <cstdint>
#include <memory>

class PeModel
{
  public:
    virtual ~PeModel() = default;
    virtual std::unique_ptr<PeModel> clone() const = 0;
};

struct Config
{
    std::uint32_t n = 4;
};

class ForgetfulPe : public PeModel
{
  public:
    explicit ForgetfulPe(const Config &config) : config_(config) {}

    std::unique_ptr<PeModel>
    clone() const override
    {
        // BUG: scratch_ is not replicated; worker replicas diverge.
        return std::make_unique<ForgetfulPe>(config_);
    }

  private:
    Config config_;
    std::uint64_t scratch_ = 0;
};

class CloneLessPe : public PeModel
{
  private:
    Config config_;
};
