/**
 * @file
 * Tests for the structured run-reporting subsystem (src/report): the
 * JSON document model, the CounterSet/NetworkStats serializers (full
 * round trips against live runner output), the stage profiler, and
 * the golden-JSON guarantee that the deterministic part of a report
 * is byte-identical at every thread count.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ant/ant_pe.hh"
#include "report/json.hh"
#include "report/profiler.hh"
#include "report/report.hh"
#include "report/rollup.hh"
#include "scnn/scnn_pe.hh"
#include "workload/runner.hh"

namespace antsim {
namespace {

RunConfig
fastConfig()
{
    RunConfig config;
    config.sampleCap = 2;
    config.seed = 42;
    config.numThreads = 1;
    return config;
}

TEST(Json, ScalarsDumpAndParse)
{
    EXPECT_EQ(Json(std::uint64_t{18446744073709551615ull}).dump(),
              "18446744073709551615");
    EXPECT_EQ(Json(std::int64_t{-42}).dump(), "-42");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(0.5).dump(), "0.5");
    EXPECT_EQ(Json("a \"b\"\n").dump(), "\"a \\\"b\\\"\\n\"");

    std::string error;
    const Json big = Json::parse("18446744073709551615", &error);
    EXPECT_TRUE(error.empty());
    EXPECT_EQ(big.asUint(), 18446744073709551615ull);
    EXPECT_EQ(Json::parse("-7").asInt(), -7);
    EXPECT_DOUBLE_EQ(Json::parse("2.5e3").asDouble(), 2500.0);
    EXPECT_EQ(Json::parse("\"x\\u0041y\"").asString(), "xAy");
}

TEST(Json, ObjectsPreserveInsertionOrder)
{
    Json obj = Json::object();
    obj.set("zebra", std::uint64_t{1});
    obj.set("alpha", std::uint64_t{2});
    obj.set("zebra", std::uint64_t{3}); // overwrite keeps position
    const std::string text = obj.dump();
    EXPECT_LT(text.find("zebra"), text.find("alpha"));
    EXPECT_EQ(obj.at("zebra").asUint(), 3u);
    EXPECT_EQ(obj.size(), 2u);
}

TEST(Json, RoundTripEquality)
{
    Json doc = Json::object();
    doc.set("counters", Json::object()).set("cycles",
                                            std::uint64_t{123456789});
    doc.set("fraction", 0.9290713678140187);
    doc.set("name", "ResNet18");
    doc.set("flags", Json::array()).push(true);
    Json &nested = doc.set("nested", Json::array());
    nested.push(Json::object());

    std::string error;
    const Json parsed = Json::parse(doc.dump(), &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(parsed, doc);
    // And the dump of the parse is byte-identical: full fixpoint.
    EXPECT_EQ(parsed.dump(), doc.dump());
}

TEST(Json, ParseErrorsAreReported)
{
    std::string error;
    Json::parse("{\"a\": }", &error);
    EXPECT_FALSE(error.empty());
    Json::parse("[1, 2", &error);
    EXPECT_FALSE(error.empty());
    Json::parse("12 34", &error);
    EXPECT_FALSE(error.empty());
    Json::parse("", &error);
    EXPECT_FALSE(error.empty());
}

TEST(Report, CounterSetRoundTrip)
{
    CounterSet counters;
    counters.add(Counter::MultsExecuted, 1000000000000000003ull);
    counters.add(Counter::Cycles, 7);
    const Json json = counterSetToJson(counters);
    // Every counter is present by name, exactly.
    EXPECT_EQ(json.size(), kNumCounters);
    const CounterSet back = counterSetFromJson(Json::parse(json.dump()));
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        const auto counter = static_cast<Counter>(i);
        EXPECT_EQ(back.get(counter), counters.get(counter))
            << counterName(counter);
    }
}

TEST(Report, NetworkStatsRoundTripAgainstLiveRun)
{
    AntPe ant;
    const auto stats = runConvNetwork(ant, resnet18Cifar(),
                                      SparsityProfile::swat(0.9),
                                      fastConfig());
    const Json json = networkStatsToJson(stats, /*num_pes=*/64);
    const NetworkStats back =
        networkStatsFromJson(Json::parse(json.dump()));

    for (std::size_t c = 0; c < kNumCounters; ++c) {
        const auto counter = static_cast<Counter>(c);
        EXPECT_EQ(back.total.get(counter), stats.total.get(counter))
            << counterName(counter);
    }
    ASSERT_EQ(back.layers.size(), stats.layers.size());
    for (std::size_t li = 0; li < stats.layers.size(); ++li) {
        EXPECT_EQ(back.layers[li].name, stats.layers[li].name);
        for (std::size_t pi = 0; pi < 3; ++pi) {
            const PhaseStats &expected = stats.layers[li].phases[pi];
            const PhaseStats &got = back.layers[li].phases[pi];
            EXPECT_EQ(got.pairsTotal, expected.pairsTotal);
            EXPECT_EQ(got.pairsSimulated, expected.pairsSimulated);
            for (std::size_t c = 0; c < kNumCounters; ++c) {
                const auto counter = static_cast<Counter>(c);
                EXPECT_EQ(got.counters.get(counter),
                          expected.counters.get(counter));
            }
        }
    }
    // Derived quantities serialize from the same stats object.
    EXPECT_DOUBLE_EQ(json.at("rcp_avoided_fraction").asDouble(),
                     stats.rcpAvoidedFraction());
    EXPECT_EQ(json.at("accelerator_cycles").asUint(),
              stats.acceleratorCycles(64));
}

TEST(Report, GoldenJsonByteIdenticalAcrossThreadCounts)
{
    // The deterministic-engine guarantee at the serialization layer:
    // the 1-thread ResNet18 report (counters, layers, fractions) must
    // be byte-identical when re-run at any thread count. Only the
    // profile section (wall-clock) and the thread count itself may
    // differ, and neither is part of this document.
    AntPe serial_pe;
    RunConfig config = fastConfig();
    const auto serial = runConvNetwork(serial_pe, resnet18Cifar(),
                                       SparsityProfile::swat(0.9), config);
    const std::string golden = networkStatsToJson(serial, 64).dump();
    for (const std::uint32_t threads : {2u, 8u}) {
        AntPe pe;
        config.numThreads = threads;
        const auto stats = runConvNetwork(
            pe, resnet18Cifar(), SparsityProfile::swat(0.9), config);
        EXPECT_EQ(networkStatsToJson(stats, 64).dump(), golden)
            << threads << " threads";
    }
}

TEST(Report, RunReportDocumentShape)
{
    RunReport report;
    RunMetadata metadata;
    metadata.binary = "report_test";
    metadata.seed = 7;
    metadata.threads = 2;
    metadata.energyTableVersion = "pj-test";
    report.setMetadata(metadata);
    report.addMetric("speedup_geomean", 3.71);
    report.addMetric("tasks", std::uint64_t{12});
    Table table({"Network", "Speedup"});
    table.addRow({"ResNet18", "3.71x"});
    report.addTable("fig09", table);

    ScnnPe pe;
    const auto stats = runConvNetwork(pe, resnet18Cifar(),
                                      SparsityProfile::swat(0.9),
                                      fastConfig());
    report.addNetwork("scnn/ResNet18", stats, 64);

    const Json doc = report.toJson();
    EXPECT_EQ(doc.at("schema_version").asUint(), 1u);
    EXPECT_EQ(doc.at("metadata").at("binary").asString(), "report_test");
    EXPECT_EQ(doc.at("metadata").at("energy_table_version").asString(),
              "pj-test");
    EXPECT_DOUBLE_EQ(doc.at("metrics").at("speedup_geomean").asDouble(),
                     3.71);
    EXPECT_EQ(doc.at("networks").size(), 1u);
    EXPECT_EQ(doc.at("networks").at(0u).at("name").asString(),
              "scnn/ResNet18");
    EXPECT_EQ(doc.at("tables").at(0u).at("rows").at(0u).at(0u).asString(),
              "ResNet18");
    // Profile present by default, absent when excluded (the golden
    // documents never carry wall-clock noise).
    EXPECT_NE(doc.find("profile"), nullptr);
    EXPECT_EQ(report.toJson(/*include_profile=*/false).find("profile"),
              nullptr);

    // The CSV mirror carries the table rows.
    const std::string csv = report.toCsv();
    EXPECT_NE(csv.find("# fig09"), std::string::npos);
    EXPECT_NE(csv.find("ResNet18,3.71x"), std::string::npos);
}

TEST(Report, MatmulStallAttributionReachesCsvAndJson)
{
    // Regression: sec78 never called reportNetwork, so matmul runs had
    // no stall_attribution section and --csv-path dropped their stall
    // columns entirely. Matmul stats must flow through the same
    // attribution path as conv stats.
    AntPe ant;
    const std::vector<MatmulLayer> layers = {{"mm", 16, 8, 8, 4}};
    const auto stats = runMatmulNetwork(ant, layers, 0.5,
                                        SparsifyMethod::TopK,
                                        fastConfig());

    RunReport report;
    report.addStallAttribution("ant/transformer@50%", stats, "ant",
                               ant.multiplierCount());

    const Json doc = report.toJson();
    const Json *section = doc.find("stall_attribution");
    ASSERT_NE(section, nullptr);
    ASSERT_EQ(section->size(), 1u);
    const Json &entry = section->at(0u);
    EXPECT_EQ(entry.at("network").asString(), "ant/transformer@50%");
    // Partition law holds on the total row (saturating decomposition).
    const Json &total = entry.at("total");
    EXPECT_EQ(total.at("active").asUint() + total.at("startup").asUint() +
                  total.at("idle_scan").asUint() +
                  total.at("imbalance").asUint(),
              total.at("cycles").asUint());

    const std::string csv = report.toCsv();
    EXPECT_NE(csv.find("# stall_attribution/ant/transformer@50%"),
              std::string::npos);
}

TEST(Report, ModeAndEstimateSection)
{
    // Reports default to mode "simulated" with no estimate section;
    // the section and the "estimated" tag only appear when set, so
    // simulation documents are byte-identical to the pre-estimator
    // format except for the mode key.
    RunReport report;
    EXPECT_EQ(report.toJson().at("metadata").at("mode").asString(),
              "simulated");
    EXPECT_EQ(report.toJson().find("estimate"), nullptr);

    RunMetadata metadata;
    metadata.mode = "estimated";
    report.setMetadata(metadata);
    Json detail = Json::object();
    detail.set("design_points", std::uint64_t{108});
    report.setEstimate(std::move(detail));

    const Json doc = report.toJson();
    EXPECT_EQ(doc.at("metadata").at("mode").asString(), "estimated");
    const Json *estimate = doc.find("estimate");
    ASSERT_NE(estimate, nullptr);
    EXPECT_EQ(estimate->at("design_points").asUint(), 108u);
}

TEST(Report, RollupStandardMetricNames)
{
    // The rollup must emit the exact metric names merge_reports.py
    // lifts into the suite summary and check_perf.py gates.
    Rollup rollup;
    rollup.add({"A", 2.0, 4.0, 0.9});
    rollup.add({"B", 8.0, 1.0, 0.7});
    EXPECT_DOUBLE_EQ(rollup.speedupGeomean(), 4.0);
    EXPECT_DOUBLE_EQ(rollup.energyReductionGeomean(), 2.0);
    EXPECT_DOUBLE_EQ(rollup.rcpAvoidedMean(), 0.8);

    RunReport report;
    rollup.recordMetrics(report, /*with_rcp=*/true);
    const Json metrics = report.toJson().at("metrics");
    EXPECT_DOUBLE_EQ(metrics.at("speedup.A").asDouble(), 2.0);
    EXPECT_DOUBLE_EQ(metrics.at("energy_reduction.B").asDouble(), 1.0);
    EXPECT_DOUBLE_EQ(metrics.at("speedup_geomean").asDouble(), 4.0);
    EXPECT_DOUBLE_EQ(metrics.at("energy_reduction_geomean").asDouble(),
                     2.0);
    EXPECT_DOUBLE_EQ(metrics.at("rcp_avoided_mean").asDouble(), 0.8);
}

TEST(Report, WriteJsonFileParsesBack)
{
    RunReport report;
    report.addMetric("alpha", 1.5);
    const std::string path = ::testing::TempDir() + "report_test_out.json";
    report.writeJson(path);
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const Json parsed = Json::parse(buffer.str(), &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_DOUBLE_EQ(parsed.at("metrics").at("alpha").asDouble(), 1.5);
    std::remove(path.c_str());
}

TEST(Profiler, ScopedTimerAccumulates)
{
    profiler::reset();
    EXPECT_EQ(profiler::callCount(Stage::PeSim), 0u);
    {
        const ScopedTimer timer(Stage::PeSim);
    }
    {
        const ScopedTimer timer(Stage::PeSim);
    }
    EXPECT_EQ(profiler::callCount(Stage::PeSim), 2u);
    EXPECT_EQ(profiler::callCount(Stage::TraceGen), 0u);
    profiler::reset();
    EXPECT_EQ(profiler::callCount(Stage::PeSim), 0u);
}

TEST(Profiler, RunnerPopulatesAllStages)
{
    profiler::reset();
    ScnnPe pe;
    runConvNetwork(pe, resnet18Cifar(), SparsityProfile::swat(0.9),
                   fastConfig());
    EXPECT_GT(profiler::callCount(Stage::TraceGen), 0u);
    EXPECT_GT(profiler::callCount(Stage::PlanBuild), 0u);
    EXPECT_GT(profiler::callCount(Stage::PeSim), 0u);
    EXPECT_GT(profiler::callCount(Stage::Reduce), 0u);
    const Json profile = profileToJson();
    EXPECT_EQ(profile.at("stages").size(), kNumStages);
    EXPECT_EQ(profile.at("stages").at(0u).at("name").asString(),
              "trace_generation");
    profiler::reset();
}

TEST(Profiler, StageNamesAreStableSchemaKeys)
{
    EXPECT_STREQ(stageName(Stage::TraceGen), "trace_generation");
    EXPECT_STREQ(stageName(Stage::PlanBuild), "plan_construction");
    EXPECT_STREQ(stageName(Stage::PeSim), "pe_simulation");
    EXPECT_STREQ(stageName(Stage::Reduce), "reduction");
}

} // namespace
} // namespace antsim
