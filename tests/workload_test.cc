/**
 * @file
 * Tests for layer descriptors, phase expansion, and trace generation.
 */

#include <gtest/gtest.h>

#include "conv/dense_conv.hh"
#include "workload/layer.hh"
#include "workload/tracegen.hh"

namespace antsim {
namespace {

ConvLayer
sampleLayer()
{
    return {"test", 8, 16, 14, 14, 3, 1, 1};
}

TEST(Layer, PaddedDims)
{
    const ConvLayer layer = sampleLayer();
    EXPECT_EQ(layer.paddedH(), 16u);
    EXPECT_EQ(layer.paddedW(), 16u);
    EXPECT_EQ(layer.planePairs(), 128u);
}

TEST(Layer, PhaseSpecShapes)
{
    const ConvLayer layer = sampleLayer();
    const auto fwd = layer.spec(TrainingPhase::Forward);
    EXPECT_EQ(fwd.outH(), 14u);
    const auto upd = layer.spec(TrainingPhase::Update);
    EXPECT_EQ(upd.kernelH(), 14u);
    EXPECT_EQ(upd.outH(), 3u);
    const auto bwd = layer.spec(TrainingPhase::Backward);
    EXPECT_EQ(bwd.outH(), 14u);
}

TEST(Layer, StridedPhaseSpecs)
{
    const ConvLayer layer{"s2", 4, 8, 28, 28, 3, 2, 1};
    const auto fwd = layer.spec(TrainingPhase::Forward);
    EXPECT_EQ(fwd.outH(), 14u);
    const auto upd = layer.spec(TrainingPhase::Update);
    EXPECT_EQ(upd.dilation(), 2u);
    EXPECT_EQ(upd.outH(), 3u);
}

TEST(Layer, ForwardMacs)
{
    const ConvLayer layer = sampleLayer();
    // 128 pairs x 9 x 14 x 14.
    EXPECT_EQ(layer.forwardMacs(), 128ull * 9 * 14 * 14);
}

TEST(Layer, PhaseNames)
{
    EXPECT_STREQ(phaseName(TrainingPhase::Forward), "W*A");
    EXPECT_STREQ(phaseName(TrainingPhase::Backward), "W*G_A");
    EXPECT_STREQ(phaseName(TrainingPhase::Update), "G_A*A");
}

TEST(Tracegen, MixSeedDeterministicAndSensitive)
{
    EXPECT_EQ(mixSeed(1, 2, 3, 4), mixSeed(1, 2, 3, 4));
    EXPECT_NE(mixSeed(1, 2, 3, 4), mixSeed(1, 2, 3, 5));
    EXPECT_NE(mixSeed(1, 2, 3, 4), mixSeed(2, 2, 3, 4));
}

TEST(Tracegen, EmbedPlaneCentersWithPadding)
{
    Dense2d<float> inner(2, 2);
    inner.at(0, 0) = 1.0f;
    inner.at(1, 1) = 2.0f;
    const auto out = embedPlane(inner, 4, 4, 1);
    EXPECT_EQ(out.at(1, 1), 1.0f);
    EXPECT_EQ(out.at(2, 2), 2.0f);
    EXPECT_EQ(out.nnz(), 2u);
}

TEST(Tracegen, EmbedPlaneDilates)
{
    Dense2d<float> inner(2, 2);
    inner.at(0, 0) = 1.0f;
    inner.at(1, 0) = 2.0f;
    inner.at(1, 1) = 3.0f;
    const auto out = embedPlane(inner, 5, 5, 0, 2);
    EXPECT_EQ(out.at(0, 0), 1.0f);
    EXPECT_EQ(out.at(2, 0), 2.0f);
    EXPECT_EQ(out.at(2, 2), 3.0f);
    EXPECT_EQ(out.nnz(), 3u);
}

TEST(TracegenDeathTest, EmbedMustFit)
{
    Dense2d<float> inner(3, 3, 1.0f);
    EXPECT_DEATH(embedPlane(inner, 4, 4, 2), "does not fit");
}

TEST(Tracegen, ForwardPairShapes)
{
    const ConvLayer layer = sampleLayer();
    Rng rng(1);
    const PlanePair pair = makeConvPhasePair(
        layer, TrainingPhase::Forward, SparsityProfile::swat(0.9), rng);
    EXPECT_EQ(pair.kernel.height(), 3u);
    EXPECT_EQ(pair.image.height(), 16u);
    EXPECT_EQ(pair.spec.outH(), 14u);
    // Padding border is zero: no image non-zeros in row 0.
    EXPECT_EQ(pair.image.rowPtr()[1], pair.image.rowPtr()[0]);
}

TEST(Tracegen, UpdatePairShapes)
{
    const ConvLayer layer = sampleLayer();
    Rng rng(2);
    const PlanePair pair = makeConvPhasePair(
        layer, TrainingPhase::Update, SparsityProfile::swat(0.9), rng);
    EXPECT_EQ(pair.kernel.height(), 14u);
    EXPECT_EQ(pair.spec.outH(), 3u);
    EXPECT_EQ(pair.spec.outW(), 3u);
}

TEST(Tracegen, BackwardPairUsesRotatedKernelAndDilatedImage)
{
    const ConvLayer layer{"s2", 4, 8, 28, 28, 3, 2, 1};
    Rng rng(3);
    const PlanePair pair = makeConvPhasePair(
        layer, TrainingPhase::Backward, SparsityProfile::swat(0.5), rng);
    EXPECT_EQ(pair.kernel.height(), 3u);
    // Dilated gradient: non-zeros only on even-offset positions
    // relative to the embed offset.
    const std::uint32_t offset = (pair.spec.imageH() -
                                  (2 * (14 - 1) + 1)) / 2;
    for (const auto &entry : pair.image.entries()) {
        EXPECT_EQ((entry.x - offset) % 2, 0u);
        EXPECT_EQ((entry.y - offset) % 2, 0u);
    }
}

TEST(Tracegen, SparsityTargetsRespected)
{
    const ConvLayer layer{"big", 1, 1, 64, 64, 3, 1, 1};
    Rng rng(4);
    const PlanePair pair = makeConvPhasePair(
        layer, TrainingPhase::Update, SparsityProfile::resprop(0.9, 0.8),
        rng);
    // Kernel = gradient at 90%, image = activation at 80% (relative to
    // the unpadded plane).
    EXPECT_NEAR(pair.kernel.sparsity(), 0.9, 0.03);
    const double act_nnz = pair.image.nnz();
    EXPECT_NEAR(act_nnz / (64.0 * 64.0), 0.2, 0.03);
}

TEST(Tracegen, DeterministicGivenSameRngSeed)
{
    const ConvLayer layer = sampleLayer();
    Rng a(7);
    Rng b(7);
    const PlanePair p1 = makeConvPhasePair(
        layer, TrainingPhase::Forward, SparsityProfile::swat(0.9), a);
    const PlanePair p2 = makeConvPhasePair(
        layer, TrainingPhase::Forward, SparsityProfile::swat(0.9), b);
    EXPECT_EQ(p1.kernel, p2.kernel);
    EXPECT_EQ(p1.image, p2.image);
}

TEST(Tracegen, MatmulPairShapes)
{
    const MatmulLayer layer{"mm", 300, 8, 8, 1200};
    Rng rng(5);
    const PlanePair pair =
        makeMatmulPair(layer, 0.5, SparsifyMethod::Bernoulli, rng);
    EXPECT_EQ(pair.image.height(), 300u);
    EXPECT_EQ(pair.kernel.height(), 8u);
    EXPECT_EQ(pair.spec.outW(), 1200u);
    EXPECT_NEAR(pair.kernel.sparsity(), 0.5, 0.1);
}

TEST(Tracegen, TopKMethodHitsExactTarget)
{
    const MatmulLayer layer{"mm", 100, 10, 10, 100};
    Rng rng(6);
    const PlanePair pair =
        makeMatmulPair(layer, 0.9, SparsifyMethod::TopK, rng);
    EXPECT_EQ(pair.image.nnz(), 100u); // 1000 * 0.1
}

TEST(SparsityProfile, Presets)
{
    const auto swat = SparsityProfile::swat(0.9);
    EXPECT_DOUBLE_EQ(swat.weight, 0.9);
    EXPECT_DOUBLE_EQ(swat.act, 0.9);
    EXPECT_DOUBLE_EQ(swat.grad, 0.9);
    const auto rs = SparsityProfile::resprop(0.8, 0.6);
    EXPECT_DOUBLE_EQ(rs.grad, 0.8);
    EXPECT_DOUBLE_EQ(rs.act, 0.6);
    EXPECT_DOUBLE_EQ(rs.weight, 0.0);
    const auto topk = SparsityProfile::topK(0.9);
    EXPECT_TRUE(topk.method == SparsifyMethod::TopK);
    const auto dense = SparsityProfile::dense();
    EXPECT_DOUBLE_EQ(dense.weight, 0.0);
}

} // namespace
} // namespace antsim
