/**
 * @file
 * Tests for the network layer tables (Sec. 6.1-6.2 workloads).
 */

#include <gtest/gtest.h>

#include "workload/networks.hh"

namespace antsim {
namespace {

void
checkChannelChaining(const std::vector<ConvLayer> &layers)
{
    // Spatial dims must be consistent with each layer's own geometry
    // (output fits), and channel counts must be positive.
    for (const auto &layer : layers) {
        EXPECT_GT(layer.inChannels, 0u) << layer.name;
        EXPECT_GT(layer.outChannels, 0u) << layer.name;
        const auto fwd = layer.spec(TrainingPhase::Forward);
        EXPECT_GE(fwd.outH(), 1u) << layer.name;
        EXPECT_EQ(fwd.outH(), (layer.paddedH() - layer.kernel) /
                      layer.stride + 1)
            << layer.name;
    }
}

TEST(Networks, ResNet18CifarStructure)
{
    const auto layers = resnet18Cifar();
    // 1 stem + 4 stages x (2 blocks x 2 convs) + 3 downsample 1x1s.
    EXPECT_EQ(layers.size(), 20u);
    EXPECT_EQ(layers.front().inChannels, 3u);
    EXPECT_EQ(layers.front().inH, 32u);
    // Last conv operates at 4x4 with 512 channels.
    EXPECT_EQ(layers.back().outChannels, 512u);
    EXPECT_EQ(layers.back().inH, 4u);
    checkChannelChaining(layers);
}

TEST(Networks, ResNet18HasDownsampleConvs)
{
    const auto layers = resnet18Cifar();
    int downsamples = 0;
    for (const auto &layer : layers)
        if (layer.kernel == 1)
            ++downsamples;
    EXPECT_EQ(downsamples, 3);
}

TEST(Networks, Vgg16CifarStructure)
{
    const auto layers = vgg16Cifar();
    EXPECT_EQ(layers.size(), 13u);
    for (const auto &layer : layers) {
        EXPECT_EQ(layer.kernel, 3u);
        EXPECT_EQ(layer.stride, 1u);
        EXPECT_EQ(layer.pad, 1u);
    }
    EXPECT_EQ(layers.back().outChannels, 512u);
    checkChannelChaining(layers);
}

TEST(Networks, Densenet121CifarStructure)
{
    const auto layers = densenet121Cifar();
    // 1 stem + 2*(6+12+24+16) dense-layer convs + 3 transitions = 120.
    EXPECT_EQ(layers.size(), 120u);
    // The last dense layer's 3x3 conv maps the 4*growth bottleneck to
    // growth channels at 4x4 resolution.
    const auto &last = layers.back();
    EXPECT_EQ(last.inChannels, 128u);
    EXPECT_EQ(last.outChannels, 32u);
    EXPECT_EQ(last.inH, 4u);
    // The third transition compresses 512+24*32 = 1280... DenseNet-121
    // reaches 1024 channels before the classifier; the transition
    // inputs are 256, 512, 1024 halved to 128, 256, 512.
    int transitions = 0;
    for (const auto &layer : layers) {
        if (layer.name.find("t") == 0) {
            ++transitions;
            EXPECT_EQ(layer.outChannels * 2, layer.inChannels)
                << layer.name;
        }
    }
    EXPECT_EQ(transitions, 3);
    checkChannelChaining(layers);
}

TEST(Networks, Wrn16x8CifarStructure)
{
    const auto layers = wrn16x8Cifar();
    // 1 stem + 3 groups x (2 blocks x 2 convs + 1 shortcut) = 16.
    EXPECT_EQ(layers.size(), 16u);
    EXPECT_EQ(layers[1].outChannels, 128u);
    EXPECT_EQ(layers.back().outChannels, 512u);
    checkChannelChaining(layers);
}

TEST(Networks, ResNet50ImagenetStructure)
{
    const auto layers = resnet50Imagenet();
    // 1 stem + (3+4+6+3) blocks x 3 convs + 4 downsamples = 53.
    EXPECT_EQ(layers.size(), 53u);
    EXPECT_EQ(layers.front().kernel, 7u);
    EXPECT_EQ(layers.front().stride, 2u);
    EXPECT_EQ(layers.front().inH, 224u);
    EXPECT_EQ(layers.back().outChannels, 2048u);
    checkChannelChaining(layers);
}

TEST(Networks, ResNet50StemOutputIs112)
{
    const auto stem = resnet50Imagenet().front();
    EXPECT_EQ(stem.spec(TrainingPhase::Forward).outH(), 112u);
    // The stem's padded image is the Table 2 row: 230x230.
    EXPECT_EQ(stem.paddedH(), 230u);
}

TEST(Networks, Figure9ListMatchesPaperOrder)
{
    const auto networks = figure9Networks();
    ASSERT_EQ(networks.size(), 5u);
    EXPECT_EQ(networks[0].name, "DenseNet-121");
    EXPECT_EQ(networks[1].name, "ResNet18");
    EXPECT_EQ(networks[2].name, "VGG16");
    EXPECT_EQ(networks[3].name, "WRN-16-8");
    EXPECT_EQ(networks[4].name, "ResNet50");
    // Only ResNet50 uses synthetic top-K (Sec. 6.2).
    for (const auto &net : networks)
        EXPECT_EQ(net.syntheticTopK, net.name == "ResNet50");
}

TEST(Networks, TransformerLayersMatchTable3Dims)
{
    const auto layers = transformerLayers();
    ASSERT_GE(layers.size(), 2u);
    EXPECT_EQ(layers[0].imageH, 512u);
    EXPECT_EQ(layers[0].imageW, 72u);
    EXPECT_EQ(layers[0].kernelS, 512u);
    for (const auto &layer : layers)
        EXPECT_EQ(layer.imageW, layer.kernelR) << layer.name;
}

TEST(Networks, RnnLayersMatchTable3Dims)
{
    const auto layers = rnnLayers();
    ASSERT_EQ(layers.size(), 6u);
    EXPECT_EQ(layers[0].imageH, 300u);
    EXPECT_EQ(layers[0].kernelS, 1200u);
    for (const auto &layer : layers)
        EXPECT_EQ(layer.imageW, layer.kernelR) << layer.name;
}

TEST(Networks, AllSamePaddingOrPointwise)
{
    // The phase-spec geometry assumes same-padding or pad-0 1x1/pool
    // convs; verify every layer satisfies pad == (k-1)/2 or pad == 0
    // with k <= stride+... (1x1 downsamples).
    for (const auto &net : figure9Networks()) {
        for (const auto &layer : net.layers) {
            const bool same_padding = layer.pad == (layer.kernel - 1) / 2;
            EXPECT_TRUE(same_padding) << net.name << " " << layer.name;
        }
    }
}

} // namespace
} // namespace antsim
