/**
 * @file
 * Tests validating the tick-accurate ANT pipeline model against the
 * throughput model (ant_pe.hh) -- the perfect-overlap assumption.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "ant/ant_pe.hh"
#include "ant/ant_pipeline.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

struct Planes
{
    CsrMatrix kernel;
    CsrMatrix image;
    ProblemSpec spec;
};

Planes
makePlanes(std::uint32_t kdim, std::uint32_t idim, double sparsity,
           std::uint64_t seed)
{
    Rng rng(seed);
    return {CsrMatrix::fromDense(bernoulliPlane(kdim, kdim, sparsity, rng)),
            CsrMatrix::fromDense(bernoulliPlane(idim, idim, sparsity, rng)),
            ProblemSpec::conv(kdim, kdim, idim, idim)};
}

TEST(AntPipeline, ProductCountsMatchThroughputModel)
{
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const Planes p = makePlanes(3, 14, 0.5, seed);
        AntPe batch;
        AntPipelineModel ticks;
        const PeResult b = batch.runPair(p.spec, p.kernel, p.image, false);
        const PipelineRunResult t = ticks.run(p.spec, p.kernel, p.image);
        EXPECT_EQ(t.executed, b.counters.get(Counter::MultsExecuted))
            << seed;
        EXPECT_EQ(t.valid, b.counters.get(Counter::MultsValid)) << seed;
        EXPECT_EQ(t.residualRcps, b.counters.get(Counter::MultsRcp))
            << seed;
    }
}

TEST(AntPipeline, CyclesMatchThroughputModelUpToDrain)
{
    // The throughput model assumes perfect stage overlap; the tick
    // model should agree to within the pipeline drain (the three
    // registers behind the scanner) on problems with no controller
    // walk (full-row-window kernels).
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const Planes p = makePlanes(3, 16, 0.6, 100 + seed);
        AntPe batch;
        AntPipelineModel ticks;
        const std::uint64_t b =
            batch.runPair(p.spec, p.kernel, p.image, false)
                .counters.get(Counter::Cycles);
        const std::uint64_t t = ticks.run(p.spec, p.kernel, p.image).cycles;
        EXPECT_GE(t, b) << seed;
        EXPECT_LE(t - b, 4u) << seed;
    }
}

TEST(AntPipeline, FnirEvaluationsMatchScanCycles)
{
    const Planes p = makePlanes(3, 14, 0.5, 7);
    AntPe batch;
    AntPipelineModel ticks;
    const PeResult b = batch.runPair(p.spec, p.kernel, p.image, false);
    const PipelineRunResult t = ticks.run(p.spec, p.kernel, p.image);
    // Scan cycles (active + idle FNIR evaluations) agree. The batch
    // model also charges one idle cycle per *empty* group, which the
    // tick scanner spends without an FNIR evaluation, so compare
    // against active+idle minus empty-group cycles conservatively.
    EXPECT_LE(t.fnirEvaluations,
              b.counters.get(Counter::ActiveCycles) +
                  b.counters.get(Counter::IdleScanCycles));
    EXPECT_GE(t.fnirEvaluations, b.counters.get(Counter::ActiveCycles));
}

TEST(AntPipeline, EmptyOperands)
{
    const auto spec = ProblemSpec::conv(3, 3, 8, 8);
    AntPipelineModel ticks;
    const PipelineRunResult t =
        ticks.run(spec, CsrMatrix(3, 3), CsrMatrix(8, 8));
    EXPECT_EQ(t.executed, 0u);
    EXPECT_EQ(t.cycles, 5u);
}

TEST(AntPipeline, DrainAccountsForTailBundles)
{
    // A single small group: the last issue must still traverse fetch,
    // multiply and retire before the model reports completion.
    Rng rng(9);
    const auto spec = ProblemSpec::conv(2, 2, 4, 4);
    const CsrMatrix kernel =
        CsrMatrix::fromDense(bernoulliPlane(2, 2, 0.0, rng));
    Dense2d<float> image_plane(4, 4);
    image_plane.at(1, 1) = 2.0f;
    const CsrMatrix image = CsrMatrix::fromDense(image_plane);
    AntPipelineModel ticks;
    const PipelineRunResult t = ticks.run(spec, kernel, image);
    EXPECT_EQ(t.executed, kernel.nnz());
    // startup + 1 scan + 3 drain stages.
    EXPECT_GE(t.cycles, 5u + 1u + 2u);
}

TEST(AntPipelineDeathTest, RejectsUnsupportedModes)
{
    AntPeConfig cfg;
    cfg.dataflow = AntDataflow::KernelStationary;
    EXPECT_DEATH(AntPipelineModel{cfg}, "image-stationary");
    AntPipelineModel ticks;
    EXPECT_DEATH(ticks.run(ProblemSpec::matmul(4, 4, 4, 4),
                           CsrMatrix(4, 4), CsrMatrix(4, 4)),
                 "convolutions");
}

/** Parameterized agreement sweep. */
class PipelineSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, double>>
{};

TEST_P(PipelineSweep, CountsAgree)
{
    const auto [n, k, sparsity] = GetParam();
    AntPeConfig cfg;
    cfg.n = n;
    cfg.k = k;
    const Planes p = makePlanes(4, 15, sparsity, n * 17 + k);
    AntPe batch(cfg);
    AntPipelineModel ticks(cfg);
    const PeResult b = batch.runPair(p.spec, p.kernel, p.image, false);
    const PipelineRunResult t = ticks.run(p.spec, p.kernel, p.image);
    EXPECT_EQ(t.executed, b.counters.get(Counter::MultsExecuted));
    EXPECT_EQ(t.valid, b.counters.get(Counter::MultsValid));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineSweep,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(8u, 16u, 32u),
                       ::testing::Values(0.3, 0.9)));

} // namespace
} // namespace antsim
