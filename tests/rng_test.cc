/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hh"

namespace antsim {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Rng, BelowStaysInBound)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo = saw_lo || v == -2;
        saw_hi = saw_hi || v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(21);
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        hits += rng.bernoulli(0.1) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.1, 0.01);
}

TEST(Rng, NormalMomentsRoughlyStandard)
{
    Rng rng(33);
    double sum = 0.0;
    double sumsq = 0.0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i) {
        const double x = rng.normal();
        sum += x;
        sumsq += x * x;
    }
    EXPECT_NEAR(sum / trials, 0.0, 0.02);
    EXPECT_NEAR(sumsq / trials, 1.0, 0.03);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(17);
    const auto perm = rng.permutation(50);
    std::set<std::uint32_t> seen(perm.begin(), perm.end());
    EXPECT_EQ(seen.size(), 50u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(19);
    const auto sample = rng.sampleWithoutReplacement(100, 30);
    EXPECT_EQ(sample.size(), 30u);
    std::set<std::uint32_t> seen(sample.begin(), sample.end());
    EXPECT_EQ(seen.size(), 30u);
    for (auto v : seen)
        EXPECT_LT(v, 100u);
}

TEST(Rng, SampleFullRange)
{
    Rng rng(23);
    const auto sample = rng.sampleWithoutReplacement(8, 8);
    std::set<std::uint32_t> seen(sample.begin(), sample.end());
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(77);
    Rng child = parent.split();
    // The child should not replay the parent's stream.
    Rng parent_copy(77);
    parent_copy.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += child.next() == parent.next() ? 1 : 0;
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace antsim
