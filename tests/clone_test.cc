/**
 * @file
 * PeModel::clone() contract tests: a replica carries the same
 * configuration, reports identical counters on identical inputs, and
 * shares no mutable state with the original -- the properties the
 * parallel runner's clone-per-worker scheme depends on. Audits are
 * forced on (audit_env.cc), so the concurrent runs also exercise the
 * audit hooks on every replica.
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "scnn/scnn_pe.hh"
#include "workload/runner.hh"
#include "workload/tracegen.hh"

namespace antsim {
namespace {

std::vector<std::unique_ptr<PeModel>>
allPeModels()
{
    std::vector<std::unique_ptr<PeModel>> pes;
    pes.push_back(std::make_unique<ScnnPe>());
    pes.push_back(std::make_unique<AntPe>());
    pes.push_back(std::make_unique<DenseInnerProductPe>());
    pes.push_back(std::make_unique<TensorDashPe>());
    return pes;
}

/** A representative update-phase pair (the RCP-heavy regime). */
PlanePair
testPair(std::uint64_t seed)
{
    Rng rng(seed);
    return makeConvPhasePair(ConvLayer{"c", 8, 8, 24, 24, 3, 1, 1},
                             TrainingPhase::Update,
                             SparsityProfile::swat(0.9), rng);
}

void
expectIdenticalCounters(const CounterSet &expected, const CounterSet &got,
                        const std::string &context)
{
    for (std::size_t c = 0; c < kNumCounters; ++c) {
        const auto counter = static_cast<Counter>(c);
        EXPECT_EQ(expected.get(counter), got.get(counter))
            << context << ": " << counterName(counter);
    }
}

TEST(Clone, PreservesIdentity)
{
    for (const auto &pe : allPeModels()) {
        const auto replica = pe->clone();
        ASSERT_NE(replica, nullptr);
        EXPECT_NE(replica.get(), pe.get());
        EXPECT_EQ(replica->name(), pe->name());
        EXPECT_EQ(replica->multiplierCount(), pe->multiplierCount());
        EXPECT_EQ(replica->usesCompressedOperands(),
                  pe->usesCompressedOperands());
    }
}

TEST(Clone, RunPairCountersMatchOriginal)
{
    const PlanePair pair = testPair(11);
    for (const auto &pe : allPeModels()) {
        const auto replica = pe->clone();
        const PeResult original =
            pe->runPair(pair.spec, pair.kernel, pair.image, false);
        const PeResult cloned =
            replica->runPair(pair.spec, pair.kernel, pair.image, false);
        expectIdenticalCounters(original.counters, cloned.counters,
                                pe->name());
    }
}

TEST(Clone, RunStackCountersMatchOriginal)
{
    Rng rng(23);
    const StackTask task = makeConvPhaseTask(
        ConvLayer{"s", 4, 8, 16, 16, 3, 1, 1}, TrainingPhase::Forward,
        SparsityProfile::swat(0.9), rng);
    const auto kernels = task.kernelPtrs();
    for (const auto &pe : allPeModels()) {
        const auto replica = pe->clone();
        const PeResult original =
            pe->runStack(task.spec, kernels, *task.image, false);
        const PeResult cloned =
            replica->runStack(task.spec, kernels, *task.image, false);
        expectIdenticalCounters(original.counters, cloned.counters,
                                pe->name());
    }
}

TEST(Clone, PreservesNonDefaultConfig)
{
    AntPeConfig config;
    config.n = 2;
    config.k = 8;
    config.useSCondition = false;
    const AntPe ant(config);
    const auto replica = ant.clone();
    const auto *replica_ant = dynamic_cast<const AntPe *>(replica.get());
    ASSERT_NE(replica_ant, nullptr);
    EXPECT_EQ(replica_ant->config().n, config.n);
    EXPECT_EQ(replica_ant->config().k, config.k);
    EXPECT_EQ(replica_ant->config().useRCondition, config.useRCondition);
    EXPECT_EQ(replica_ant->config().useSCondition, config.useSCondition);

    const PlanePair pair = testPair(31);
    const PeResult a = AntPe(config).runPair(pair.spec, pair.kernel,
                                             pair.image, false);
    auto replica_mut = ant.clone();
    const PeResult b =
        replica_mut->runPair(pair.spec, pair.kernel, pair.image, false);
    expectIdenticalCounters(a.counters, b.counters, "configured ANT");
}

TEST(Clone, CloneOfCloneStillMatches)
{
    const PlanePair pair = testPair(47);
    for (const auto &pe : allPeModels()) {
        const auto second = pe->clone()->clone();
        const PeResult original =
            pe->runPair(pair.spec, pair.kernel, pair.image, false);
        const PeResult twice =
            second->runPair(pair.spec, pair.kernel, pair.image, false);
        expectIdenticalCounters(original.counters, twice.counters,
                                pe->name());
    }
}

TEST(Clone, NoSharedMutableState)
{
    // Original and replica execute concurrently, audits on; each must
    // still report the single-threaded reference counters. Run under
    // TSan (ANTSIM_SANITIZE=thread, CI tsan job) this also proves the
    // absence of data races between replicas.
    const PlanePair pair_a = testPair(53);
    const PlanePair pair_b = testPair(59);
    for (const auto &pe : allPeModels()) {
        const PeResult ref_a =
            pe->runPair(pair_a.spec, pair_a.kernel, pair_a.image, false);
        const PeResult ref_b =
            pe->runPair(pair_b.spec, pair_b.kernel, pair_b.image, false);

        const auto replica = pe->clone();
        PeResult got_a;
        PeResult got_b;
        std::thread original_thread([&] {
            for (int i = 0; i < 5; ++i)
                got_a = pe->runPair(pair_a.spec, pair_a.kernel,
                                    pair_a.image, false);
        });
        std::thread replica_thread([&] {
            for (int i = 0; i < 5; ++i)
                got_b = replica->runPair(pair_b.spec, pair_b.kernel,
                                         pair_b.image, false);
        });
        original_thread.join();
        replica_thread.join();
        expectIdenticalCounters(ref_a.counters, got_a.counters,
                                pe->name() + " original");
        expectIdenticalCounters(ref_b.counters, got_b.counters,
                                pe->name() + " replica");
    }
}

TEST(Clone, ParallelRunnerUsesReplicas)
{
    // End-to-end: the parallel runner must give byte-identical network
    // stats whether workers share nothing (clones) or the serial path
    // reuses the original -- the contract that lets it parallelize.
    ScnnPe pe;
    RunConfig config;
    config.sampleCap = 2;
    const std::vector<ConvLayer> net = {{"l0", 4, 8, 16, 16, 3, 1, 1}};
    config.numThreads = 1;
    const auto serial =
        runConvNetwork(pe, net, SparsityProfile::swat(0.9), config);
    config.numThreads = 4;
    const auto parallel =
        runConvNetwork(pe, net, SparsityProfile::swat(0.9), config);
    expectIdenticalCounters(serial.total, parallel.total, "runner");
}

} // namespace
} // namespace antsim
