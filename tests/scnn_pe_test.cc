/**
 * @file
 * Tests for the SCNN-like baseline PE cycle model.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "conv/dense_conv.hh"
#include "scnn/scnn_pe.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

struct Planes
{
    Dense2d<float> kernel;
    Dense2d<float> image;
    ProblemSpec spec;
};

Planes
makePlanes(std::uint32_t kdim, std::uint32_t idim, double sparsity,
           std::uint64_t seed, std::uint32_t stride = 1)
{
    Rng rng(seed);
    return {bernoulliPlane(kdim, kdim, sparsity, rng),
            bernoulliPlane(idim, idim, sparsity, rng),
            ProblemSpec::conv(kdim, kdim, idim, idim, stride)};
}

TEST(ScnnPe, OutputMatchesDenseReference)
{
    const Planes p = makePlanes(3, 10, 0.5, 1);
    ScnnPe pe;
    const PeResult r = pe.runPair(p.spec, CsrMatrix::fromDense(p.kernel),
                                  CsrMatrix::fromDense(p.image), true);
    const auto ref = referenceExecute(p.spec, p.kernel, p.image);
    EXPECT_LT(maxAbsDiff(r.output, ref), 1e-9);
}

TEST(ScnnPe, ExecutesFullCartesianProduct)
{
    const Planes p = makePlanes(4, 9, 0.5, 2);
    const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
    const CsrMatrix image = CsrMatrix::fromDense(p.image);
    ScnnPe pe;
    const PeResult r = pe.runPair(p.spec, kernel, image, true);
    EXPECT_EQ(r.counters.get(Counter::MultsExecuted),
              static_cast<std::uint64_t>(kernel.nnz()) * image.nnz());
    // No anticipation: nothing avoided.
    EXPECT_EQ(r.counters.get(Counter::RcpsAvoided), 0u);
}

TEST(ScnnPe, CycleFormula)
{
    const Planes p = makePlanes(5, 12, 0.4, 3);
    const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
    const CsrMatrix image = CsrMatrix::fromDense(p.image);
    ScnnPeConfig cfg;
    cfg.n = 4;
    ScnnPe pe(cfg);
    const PeResult r = pe.runPair(p.spec, kernel, image, true);
    const std::uint64_t igroups = (image.nnz() + 3) / 4;
    const std::uint64_t kgroups = (kernel.nnz() + 3) / 4;
    EXPECT_EQ(r.counters.get(Counter::Cycles),
              cfg.startupCycles + igroups * kgroups);
    EXPECT_EQ(r.counters.get(Counter::ActiveCycles), igroups * kgroups);
}

TEST(ScnnPe, ValidPlusRcpEqualsExecuted)
{
    const Planes p = makePlanes(6, 11, 0.5, 4);
    ScnnPe pe;
    const PeResult r = pe.runPair(p.spec, CsrMatrix::fromDense(p.kernel),
                                  CsrMatrix::fromDense(p.image), true);
    EXPECT_EQ(r.counters.get(Counter::MultsValid) +
                  r.counters.get(Counter::MultsRcp),
              r.counters.get(Counter::MultsExecuted));
}

TEST(ScnnPe, CountingPathMatchesFunctionalPath)
{
    // The fast counting path must agree with the functional path on
    // every counter, across shapes and sparsities.
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const Planes p =
            makePlanes(3 + seed % 3, 9 + seed, 0.3 + 0.1 * seed, 50 + seed);
        const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
        const CsrMatrix image = CsrMatrix::fromDense(p.image);
        ScnnPe pe;
        const PeResult slow = pe.runPair(p.spec, kernel, image, true);
        const PeResult fast = pe.runPair(p.spec, kernel, image, false);
        for (std::size_t i = 0; i < kNumCounters; ++i) {
            const auto counter = static_cast<Counter>(i);
            EXPECT_EQ(fast.counters.get(counter),
                      slow.counters.get(counter))
                << counterName(counter) << " seed " << seed;
        }
    }
}

TEST(ScnnPe, CountingPathMatchesFunctionalPathMatmul)
{
    Rng rng(77);
    const auto image_plane = bernoulliPlane(12, 10, 0.5, rng);
    const auto kernel_plane = bernoulliPlane(10, 8, 0.5, rng);
    const auto spec = ProblemSpec::matmul(12, 10, 10, 8);
    const CsrMatrix kernel = CsrMatrix::fromDense(kernel_plane);
    const CsrMatrix image = CsrMatrix::fromDense(image_plane);
    ScnnPe pe;
    const PeResult slow = pe.runPair(spec, kernel, image, true);
    const PeResult fast = pe.runPair(spec, kernel, image, false);
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        const auto counter = static_cast<Counter>(i);
        EXPECT_EQ(fast.counters.get(counter), slow.counters.get(counter))
            << counterName(counter);
    }
}

TEST(ScnnPe, EmptyOperands)
{
    const auto spec = ProblemSpec::conv(3, 3, 8, 8);
    ScnnPe pe;
    const CsrMatrix kernel(3, 3);
    const CsrMatrix image(8, 8);
    const PeResult r = pe.runPair(spec, kernel, image, true);
    EXPECT_EQ(r.counters.get(Counter::MultsExecuted), 0u);
    EXPECT_EQ(r.counters.get(Counter::Cycles), 5u); // startup only
}

TEST(ScnnPe, UpdatePhaseShapeIsRcpDominated)
{
    // The Fig. 1c phenomenon: on a G_A*A-shaped pair, most executed
    // products are RCPs.
    Rng rng(9);
    const auto kernel_plane = bernoulliPlane(14, 14, 0.9, rng);
    const auto image_plane = bernoulliPlane(16, 16, 0.9, rng);
    const auto spec = ProblemSpec::conv(14, 14, 16, 16);
    ScnnPe pe;
    const PeResult r =
        pe.runPair(spec, CsrMatrix::fromDense(kernel_plane),
                   CsrMatrix::fromDense(image_plane), false);
    const double rcp_fraction =
        static_cast<double>(r.counters.get(Counter::MultsRcp)) /
        static_cast<double>(r.counters.get(Counter::MultsExecuted));
    EXPECT_GT(rcp_fraction, 0.8);
}

TEST(ScnnPe, MultiplierCount)
{
    ScnnPeConfig cfg;
    cfg.n = 6;
    ScnnPe pe(cfg);
    EXPECT_EQ(pe.multiplierCount(), 36u);
    EXPECT_EQ(pe.name(), "SCNN-like");
}

/** Parameterized: functional correctness across multiplier widths. */
class ScnnSweep : public ::testing::TestWithParam<
                      std::tuple<std::uint32_t, std::uint32_t, double>>
{};

TEST_P(ScnnSweep, OutputMatchesReference)
{
    const auto [n, stride, sparsity] = GetParam();
    const Planes p = makePlanes(3, 12, sparsity, n * 7 + stride, stride);
    ScnnPeConfig cfg;
    cfg.n = n;
    ScnnPe pe(cfg);
    const PeResult r = pe.runPair(p.spec, CsrMatrix::fromDense(p.kernel),
                                  CsrMatrix::fromDense(p.image), true);
    EXPECT_LT(maxAbsDiff(r.output,
                         referenceExecute(p.spec, p.kernel, p.image)),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ScnnSweep,
    ::testing::Combine(::testing::Values(1u, 4u, 8u),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(0.2, 0.9)));

} // namespace
} // namespace antsim
