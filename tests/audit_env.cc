/**
 * @file
 * Compiled into every test binary: force the invariant audits on so
 * each existing PE/runner/bench-path test self-checks its counter
 * conservation laws regardless of build type (see src/verify).
 */

#include "util/audit.hh"

namespace {

[[maybe_unused]] const bool g_audit_forced =
    (antsim::audit::setEnabled(true), true);

} // namespace
