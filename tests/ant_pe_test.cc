/**
 * @file
 * Tests for the ANT PE cycle model: functional correctness, counter
 * invariants, equivalence of its executed product set to Algorithm 2,
 * and the matmul mode of Sec. 5.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "ant/ant_pe.hh"
#include "conv/anticipate.hh"
#include "conv/dense_conv.hh"
#include "scnn/scnn_pe.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

struct Planes
{
    Dense2d<float> kernel;
    Dense2d<float> image;
    ProblemSpec spec;
};

Planes
makePlanes(std::uint32_t kdim, std::uint32_t idim, double sparsity,
           std::uint64_t seed, std::uint32_t stride = 1)
{
    Rng rng(seed);
    return {bernoulliPlane(kdim, kdim, sparsity, rng),
            bernoulliPlane(idim, idim, sparsity, rng),
            ProblemSpec::conv(kdim, kdim, idim, idim, stride)};
}

TEST(AntPe, OutputMatchesDenseReference)
{
    const Planes p = makePlanes(3, 10, 0.5, 1);
    AntPe pe;
    const PeResult r = pe.runPair(p.spec, CsrMatrix::fromDense(p.kernel),
                                  CsrMatrix::fromDense(p.image), true);
    EXPECT_LT(maxAbsDiff(r.output,
                         referenceExecute(p.spec, p.kernel, p.image)),
              1e-9);
}

TEST(AntPe, ExecutedProductSetMatchesAlgorithm2)
{
    // The hardware realizes Algorithm 2: same executed multiplies,
    // same valid products, same residual RCPs.
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const Planes p = makePlanes(5, 12, 0.6, 10 + seed);
        const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
        const CsrMatrix image = CsrMatrix::fromDense(p.image);
        AntPeConfig cfg;
        AntPe pe(cfg);
        const PeResult r = pe.runPair(p.spec, kernel, image, false);
        const AnticipateResult alg2 =
            blockAnticipation(p.spec, kernel, image, cfg.n);
        EXPECT_EQ(r.counters.get(Counter::MultsExecuted),
                  alg2.executedProducts)
            << "seed " << seed;
        EXPECT_EQ(r.counters.get(Counter::MultsValid), alg2.validProducts);
        EXPECT_EQ(r.counters.get(Counter::MultsRcp), alg2.residualRcps);
        EXPECT_EQ(r.counters.get(Counter::RcpsAvoided), alg2.skippedRcps);
    }
}

TEST(AntPe, NeverExecutesMoreThanScnn)
{
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const Planes p = makePlanes(8, 14, 0.7, 20 + seed);
        const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
        const CsrMatrix image = CsrMatrix::fromDense(p.image);
        AntPe ant;
        ScnnPe scnn;
        const auto ant_r = ant.runPair(p.spec, kernel, image, false);
        const auto scnn_r = scnn.runPair(p.spec, kernel, image, false);
        EXPECT_LE(ant_r.counters.get(Counter::MultsExecuted),
                  scnn_r.counters.get(Counter::MultsExecuted));
        // Both execute all valid products.
        EXPECT_EQ(ant_r.counters.get(Counter::MultsValid),
                  scnn_r.counters.get(Counter::MultsValid));
    }
}

TEST(AntPe, FasterThanScnnOnUpdateShape)
{
    // On the RCP-dominated update-phase shape ANT should win cycles.
    Rng rng(30);
    const auto kernel_plane = bernoulliPlane(14, 14, 0.9, rng);
    const auto image_plane = bernoulliPlane(16, 16, 0.9, rng);
    const auto spec = ProblemSpec::conv(14, 14, 16, 16);
    const CsrMatrix kernel = CsrMatrix::fromDense(kernel_plane);
    const CsrMatrix image = CsrMatrix::fromDense(image_plane);
    AntPe ant;
    ScnnPe scnn;
    const auto ant_r = ant.runPair(spec, kernel, image, false);
    const auto scnn_r = scnn.runPair(spec, kernel, image, false);
    EXPECT_LT(ant_r.counters.get(Counter::Cycles),
              scnn_r.counters.get(Counter::Cycles));
}

TEST(AntPe, CyclesLowerBoundedByIssueRate)
{
    const Planes p = makePlanes(6, 12, 0.5, 40);
    AntPeConfig cfg;
    AntPe pe(cfg);
    const PeResult r = pe.runPair(p.spec, CsrMatrix::fromDense(p.kernel),
                                  CsrMatrix::fromDense(p.image), false);
    // Each active cycle issues at most n*n multiplies.
    EXPECT_GE(r.counters.get(Counter::ActiveCycles) * cfg.n * cfg.n,
              r.counters.get(Counter::MultsExecuted));
    // Total cycles include startup and scan cycles.
    EXPECT_GE(r.counters.get(Counter::Cycles),
              cfg.startupCycles + r.counters.get(Counter::ActiveCycles));
}

TEST(AntPe, SramSkippingReducesTraffic)
{
    // On the update shape, the r-window should cut kernel index/value
    // reads versus SCNN's full re-streaming.
    Rng rng(50);
    const auto kernel_plane = bernoulliPlane(14, 14, 0.9, rng);
    const auto image_plane = bernoulliPlane(16, 16, 0.9, rng);
    const auto spec = ProblemSpec::conv(14, 14, 16, 16);
    const CsrMatrix kernel = CsrMatrix::fromDense(kernel_plane);
    const CsrMatrix image = CsrMatrix::fromDense(image_plane);
    AntPe ant;
    ScnnPe scnn;
    const auto ant_r = ant.runPair(spec, kernel, image, false);
    const auto scnn_r = scnn.runPair(spec, kernel, image, false);
    const auto traffic = [](const CounterSet &c) {
        return c.get(Counter::SramValueReads) +
            c.get(Counter::SramIndexReads);
    };
    EXPECT_LT(traffic(ant_r.counters), traffic(scnn_r.counters));
    EXPECT_GT(ant_r.counters.get(Counter::SramReadsAvoided), 0u);
}

TEST(AntPe, EmptyOperands)
{
    const auto spec = ProblemSpec::conv(3, 3, 8, 8);
    AntPe pe;
    const PeResult r =
        pe.runPair(spec, CsrMatrix(3, 3), CsrMatrix(8, 8), true);
    EXPECT_EQ(r.counters.get(Counter::MultsExecuted), 0u);
    EXPECT_EQ(r.counters.get(Counter::Cycles), 5u);
}

TEST(AntPe, EmptyKernelWithImage)
{
    Rng rng(60);
    const auto spec = ProblemSpec::conv(3, 3, 8, 8);
    const CsrMatrix image =
        CsrMatrix::fromDense(bernoulliPlane(8, 8, 0.5, rng));
    AntPe pe;
    const PeResult r = pe.runPair(spec, CsrMatrix(3, 3), image, true);
    EXPECT_EQ(r.counters.get(Counter::MultsExecuted), 0u);
    // One idle scan cycle per image group.
    EXPECT_GT(r.counters.get(Counter::IdleScanCycles), 0u);
}

TEST(AntPe, AblationSwitchesMatchAlgorithm2)
{
    const Planes p = makePlanes(8, 16, 0.7, 70);
    const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
    const CsrMatrix image = CsrMatrix::fromDense(p.image);
    for (const auto &[use_r, use_s] :
         {std::pair{true, false}, std::pair{false, true},
          std::pair{false, false}}) {
        AntPeConfig cfg;
        cfg.useRCondition = use_r;
        cfg.useSCondition = use_s;
        AntPe pe(cfg);
        const PeResult r = pe.runPair(p.spec, kernel, image, true);
        const AnticipateResult alg2 = blockAnticipation(
            p.spec, kernel, image, cfg.n, use_r, use_s);
        EXPECT_EQ(r.counters.get(Counter::MultsExecuted),
                  alg2.executedProducts)
            << "r=" << use_r << " s=" << use_s;
        EXPECT_LT(maxAbsDiff(r.output,
                             referenceExecute(p.spec, p.kernel, p.image)),
                  1e-9);
    }
}

TEST(AntPe, RotatedKernelBackwardPass)
{
    // Backward-phase usage: rotated kernel over a dilated gradient.
    Rng rng(80);
    const auto w = bernoulliPlane(3, 3, 0.3, rng);
    const auto ga = bernoulliPlane(12, 12, 0.6, rng);
    const auto spec = ProblemSpec::conv(3, 3, 12, 12);
    const CsrMatrix rotated = CsrMatrix::fromDense(w).rotated180();
    AntPe pe;
    const PeResult r = pe.runPair(spec, rotated, CsrMatrix::fromDense(ga),
                                  true);
    const auto ref = referenceExecute(spec, rotated.toDense(), ga);
    EXPECT_LT(maxAbsDiff(r.output, ref), 1e-9);
}

TEST(AntPeMatmul, OutputMatchesDenseReference)
{
    Rng rng(90);
    const auto image_plane = bernoulliPlane(12, 10, 0.5, rng);
    const auto kernel_plane = bernoulliPlane(10, 9, 0.5, rng);
    const auto spec = ProblemSpec::matmul(12, 10, 10, 9);
    AntPe pe;
    const PeResult r =
        pe.runPair(spec, CsrMatrix::fromDense(kernel_plane),
                   CsrMatrix::fromDense(image_plane), true);
    EXPECT_LT(maxAbsDiff(r.output, referenceExecute(spec, kernel_plane,
                                                    image_plane)),
              1e-9);
}

TEST(AntPeMatmul, EliminatesAlmostAllRcps)
{
    // Sec. 7.8: >99% of matmul RCPs anticipated. CSC grouping keeps
    // the kernel-row window tight.
    Rng rng(91);
    const auto image_plane = bernoulliPlane(300, 64, 0.9, rng);
    const auto kernel_plane = bernoulliPlane(64, 128, 0.9, rng);
    const auto spec = ProblemSpec::matmul(300, 64, 64, 128);
    AntPe pe;
    const PeResult r =
        pe.runPair(spec, CsrMatrix::fromDense(kernel_plane),
                   CsrMatrix::fromDense(image_plane), false);
    const auto avoided = r.counters.get(Counter::RcpsAvoided);
    const auto suffered = r.counters.get(Counter::MultsRcp);
    EXPECT_GT(static_cast<double>(avoided) /
                  static_cast<double>(avoided + suffered),
              0.99);
}

TEST(AntPeMatmul, ValidCountMatchesReferenceCensus)
{
    Rng rng(92);
    const auto image_plane = bernoulliPlane(20, 16, 0.6, rng);
    const auto kernel_plane = bernoulliPlane(16, 12, 0.6, rng);
    const auto spec = ProblemSpec::matmul(20, 16, 16, 12);
    const CsrMatrix kernel = CsrMatrix::fromDense(kernel_plane);
    const CsrMatrix image = CsrMatrix::fromDense(image_plane);
    AntPe pe;
    const PeResult r = pe.runPair(spec, kernel, image, false);
    // Valid products of the matmul = sum over columns x of
    // nnz(image col x) * nnz(kernel row x).
    std::uint64_t want_valid = 0;
    const CscMatrix csc = CscMatrix::fromCsr(image);
    for (std::uint32_t x = 0; x < image.width(); ++x) {
        want_valid += static_cast<std::uint64_t>(csc.colPtr()[x + 1] -
                                                 csc.colPtr()[x]) *
            (kernel.rowPtr()[x + 1] - kernel.rowPtr()[x]);
    }
    EXPECT_EQ(r.counters.get(Counter::MultsValid), want_valid);
}

TEST(AntPeDeathTest, KSmallerThanNRejected)
{
    AntPeConfig cfg;
    cfg.n = 8;
    cfg.k = 4;
    EXPECT_DEATH(AntPe{cfg}, "at least the multiplier width");
}

/** Parameterized functional sweep across (n, k, stride, sparsity). */
class AntSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t, double>>
{};

TEST_P(AntSweep, OutputMatchesReferenceAndInvariantsHold)
{
    const auto [n, k, stride, sparsity] = GetParam();
    const Planes p =
        makePlanes(4, 13, sparsity, n * 31 + k * 7 + stride, stride);
    const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
    const CsrMatrix image = CsrMatrix::fromDense(p.image);
    AntPeConfig cfg;
    cfg.n = n;
    cfg.k = k;
    AntPe pe(cfg);
    const PeResult r = pe.runPair(p.spec, kernel, image, true);
    EXPECT_LT(maxAbsDiff(r.output,
                         referenceExecute(p.spec, p.kernel, p.image)),
              1e-9);
    EXPECT_EQ(r.counters.get(Counter::MultsValid) +
                  r.counters.get(Counter::MultsRcp),
              r.counters.get(Counter::MultsExecuted));
    EXPECT_EQ(r.counters.get(Counter::MultsExecuted) +
                  r.counters.get(Counter::RcpsAvoided),
              static_cast<std::uint64_t>(kernel.nnz()) * image.nnz());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, AntSweep,
    ::testing::Combine(::testing::Values(1u, 4u, 6u),
                       ::testing::Values(8u, 16u),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(0.3, 0.9)));

} // namespace
} // namespace antsim
