/**
 * @file
 * End-to-end integration tests: all four accelerator models on shared
 * workloads, checking the paper's qualitative orderings.
 */

#include <gtest/gtest.h>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "conv/dense_conv.hh"
#include "scnn/scnn_pe.hh"
#include "sim/accelerator.hh"
#include "workload/runner.hh"

namespace antsim {
namespace {

// Spatial dims large enough to amortize ANT's range/FNIR overhead --
// the paper notes ANT can lose up to 30% on very small layers
// (Sec. 7.6); CIFAR-scale layers are the intended regime.
std::vector<ConvLayer>
smallNetwork()
{
    return {
        {"conv1", 3, 8, 28, 28, 3, 1, 1},
        {"conv2", 8, 8, 28, 28, 3, 1, 1},
        {"conv3", 8, 16, 28, 28, 3, 2, 1},
        {"down", 8, 16, 28, 28, 1, 2, 0},
        {"conv4", 16, 16, 14, 14, 3, 1, 1},
    };
}

RunConfig
runCfg()
{
    RunConfig cfg;
    cfg.sampleCap = 6;
    cfg.seed = 11;
    return cfg;
}

TEST(Integration, FunctionalAgreementAcrossAllModels)
{
    // Every accelerator model computes the same convolution.
    Rng rng(1);
    const ConvLayer layer{"x", 1, 1, 12, 12, 3, 1, 1};
    const PlanePair pair = makeConvPhasePair(
        layer, TrainingPhase::Forward, SparsityProfile::swat(0.5), rng);
    const auto ref =
        referenceExecute(pair.spec, pair.kernel.toDense(),
                         pair.image.toDense());

    ScnnPe scnn;
    AntPe ant;
    DenseInnerProductPe dense;
    AcceleratorConfig acfg;
    acfg.chunkCapacity = 32;
    for (PeModel *pe :
         std::initializer_list<PeModel *>{&scnn, &ant, &dense}) {
        Accelerator accel(*pe, acfg);
        const auto result =
            accel.runProblem(pair.spec, pair.kernel, pair.image, true);
        EXPECT_LT(maxAbsDiff(result.output, ref), 1e-9) << pe->name();
    }
}

TEST(Integration, SpeedupOrderingAt90PercentSparsity)
{
    // Sec. 7.7 ordering at 90% two-sided sparsity:
    // DaDianNao (dense) < TensorDash (one-sided) < SCNN+ < ANT
    // in performance, i.e. descending cycle counts.
    const auto profile = SparsityProfile::swat(0.9);
    const auto net = smallNetwork();
    const auto cfg = runCfg();

    DenseInnerProductPe dense;
    TensorDashPe td;
    ScnnPe scnn;
    AntPe ant;
    const auto dense_s = runConvNetwork(dense, net, profile, cfg);
    const auto td_s = runConvNetwork(td, net, profile, cfg);
    const auto scnn_s = runConvNetwork(scnn, net, profile, cfg);
    const auto ant_s = runConvNetwork(ant, net, profile, cfg);

    const auto cycles = [](const NetworkStats &s) {
        return s.total.get(Counter::Cycles);
    };
    EXPECT_GT(cycles(dense_s), cycles(td_s));
    EXPECT_GT(cycles(td_s), cycles(ant_s));
    EXPECT_GT(cycles(scnn_s), cycles(ant_s));
}

TEST(Integration, AntSpeedupGrowsWithSparsity)
{
    // Against a *fixed dense* SCNN+ baseline, ANT's speedup must grow
    // with sparsity (Fig. 10's monotone trend).
    const auto net = smallNetwork();
    const auto cfg = runCfg();
    ScnnPe scnn;
    AntPe ant;
    const auto dense_scnn =
        runConvNetwork(scnn, net, SparsityProfile::dense(), cfg);
    double prev = 0.0;
    for (double sparsity : {0.5, 0.9}) {
        const auto ant_s = runConvNetwork(
            ant, net, SparsityProfile::resprop(sparsity, sparsity), cfg);
        const double speedup = speedupOf(dense_scnn, ant_s);
        EXPECT_GT(speedup, prev);
        prev = speedup;
    }
    EXPECT_GT(prev, 3.0);
}

TEST(Integration, AntVsScnnSameSparsityBand)
{
    // Fig. 11: at matched sparsity ANT wins on both cycles and energy.
    const auto net = smallNetwork();
    const auto cfg = runCfg();
    ScnnPe scnn;
    AntPe ant;
    for (double sparsity : {0.3, 0.7, 0.9}) {
        const auto profile = SparsityProfile::resprop(sparsity, sparsity);
        const auto scnn_s = runConvNetwork(scnn, net, profile, cfg);
        const auto ant_s = runConvNetwork(ant, net, profile, cfg);
        EXPECT_GT(speedupOf(scnn_s, ant_s), 1.0) << sparsity;
        EXPECT_GT(energyRatioOf(scnn_s, ant_s), 1.0) << sparsity;
    }
}

TEST(Integration, MultiplierArraySweepKeepsAntAhead)
{
    // Fig. 12: ANT outperforms SCNN+ at n = 4, 6, 8.
    const auto net = smallNetwork();
    const auto cfg = runCfg();
    const auto profile = SparsityProfile::swat(0.9);
    for (std::uint32_t n : {4u, 6u, 8u}) {
        ScnnPeConfig scfg;
        scfg.n = n;
        AntPeConfig acfg;
        acfg.n = n;
        acfg.k = 4 * n;
        ScnnPe scnn(scfg);
        AntPe ant(acfg);
        const auto scnn_s = runConvNetwork(scnn, net, profile, cfg);
        const auto ant_s = runConvNetwork(ant, net, profile, cfg);
        EXPECT_GT(speedupOf(scnn_s, ant_s), 1.0) << "n=" << n;
    }
}

TEST(Integration, AblationOrdering)
{
    // Fig. 14: both conditions together beat either alone; either
    // alone beats SCNN+.
    const auto net = smallNetwork();
    const auto cfg = runCfg();
    const auto profile = SparsityProfile::swat(0.9);
    ScnnPe scnn;
    const auto scnn_s = runConvNetwork(scnn, net, profile, cfg);

    auto run_ant = [&](bool use_r, bool use_s) {
        AntPeConfig acfg;
        acfg.useRCondition = use_r;
        acfg.useSCondition = use_s;
        AntPe ant(acfg);
        return runConvNetwork(ant, net, profile, cfg);
    };
    const auto both = run_ant(true, true);
    const auto r_only = run_ant(true, false);
    const auto s_only = run_ant(false, true);

    const auto cycles = [](const NetworkStats &s) {
        return s.total.get(Counter::Cycles);
    };
    EXPECT_LE(cycles(both), cycles(r_only));
    EXPECT_LE(cycles(both), cycles(s_only));
    EXPECT_LT(cycles(r_only), cycles(scnn_s));
    EXPECT_LT(cycles(s_only), cycles(scnn_s));
}

TEST(Integration, MatmulRcpEliminationAcrossSparsities)
{
    // Sec. 7.8: >99% RCP elimination at 0%, 50%, 90% sparsity.
    AntPe ant;
    RunConfig cfg = runCfg();
    const std::vector<MatmulLayer> layers = {{"mm", 128, 32, 32, 64}};
    for (double sparsity : {0.0, 0.5, 0.9}) {
        const auto stats = runMatmulNetwork(
            ant, layers, sparsity, SparsifyMethod::Bernoulli, cfg);
        EXPECT_GT(stats.rcpAvoidedFraction(), 0.97) << sparsity;
    }
}

TEST(Integration, ChunkedLargePairStillCorrect)
{
    // A pair big enough to force chunking through the 8 KB buffers.
    Rng rng(3);
    const ConvLayer layer{"big", 1, 1, 80, 80, 3, 1, 1};
    const PlanePair pair = makeConvPhasePair(
        layer, TrainingPhase::Update, SparsityProfile::dense(), rng);
    ASSERT_GT(pair.image.nnz(), 4096u);

    AntPe ant;
    AcceleratorConfig acfg; // default 4096 capacity
    Accelerator accel(ant, acfg);
    const auto result =
        accel.runProblem(pair.spec, pair.kernel, pair.image, true);
    EXPECT_GT(result.counters.get(Counter::TasksProcessed), 1u);
    const auto ref = referenceExecute(pair.spec, pair.kernel.toDense(),
                                      pair.image.toDense());
    EXPECT_LT(maxAbsDiff(result.output, ref), 1e-7);
}

} // namespace
} // namespace antsim
