/**
 * @file
 * Tests for the DaDianNao-like and TensorDash-like inner-product
 * baselines (Sec. 6.1, 7.7).
 */

#include <gtest/gtest.h>

#include "baselines/inner_product.hh"
#include "conv/dense_conv.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

TEST(DenseIp, ExecutesExactlyTheConvMacs)
{
    Rng rng(1);
    const auto spec = ProblemSpec::conv(3, 3, 12, 12);
    const CsrMatrix kernel =
        CsrMatrix::fromDense(bernoulliPlane(3, 3, 0.5, rng));
    const CsrMatrix image =
        CsrMatrix::fromDense(bernoulliPlane(12, 12, 0.5, rng));
    DenseInnerProductPe pe;
    const PeResult r = pe.runPair(spec, kernel, image, false);
    EXPECT_EQ(r.counters.get(Counter::MultsExecuted),
              spec.denseValidProducts());
    // Inner products have no RCPs.
    EXPECT_EQ(r.counters.get(Counter::MultsRcp), 0u);
}

TEST(DenseIp, CycleFormula)
{
    const auto spec = ProblemSpec::conv(3, 3, 12, 12);
    InnerProductConfig cfg;
    DenseInnerProductPe pe(cfg);
    const PeResult r =
        pe.runPair(spec, CsrMatrix(3, 3), CsrMatrix(12, 12), false);
    const std::uint64_t macs = spec.denseValidProducts();
    EXPECT_EQ(r.counters.get(Counter::Cycles),
              cfg.startupCycles + (macs + 15) / 16);
}

TEST(DenseIp, InsensitiveToSparsity)
{
    Rng rng(2);
    const auto spec = ProblemSpec::conv(3, 3, 10, 10);
    DenseInnerProductPe pe;
    const auto dense_r = pe.runPair(
        spec, CsrMatrix::fromDense(randomDensePlane(3, 3, rng)),
        CsrMatrix::fromDense(randomDensePlane(10, 10, rng)), false);
    const auto sparse_r = pe.runPair(
        spec, CsrMatrix::fromDense(bernoulliPlane(3, 3, 0.9, rng)),
        CsrMatrix::fromDense(bernoulliPlane(10, 10, 0.9, rng)), false);
    EXPECT_EQ(dense_r.counters.get(Counter::Cycles),
              sparse_r.counters.get(Counter::Cycles));
}

TEST(DenseIp, FunctionalOutputMatchesReference)
{
    Rng rng(3);
    const auto kernel_plane = bernoulliPlane(3, 3, 0.4, rng);
    const auto image_plane = bernoulliPlane(9, 9, 0.4, rng);
    const auto spec = ProblemSpec::conv(3, 3, 9, 9);
    DenseInnerProductPe pe;
    const PeResult r =
        pe.runPair(spec, CsrMatrix::fromDense(kernel_plane),
                   CsrMatrix::fromDense(image_plane), true);
    EXPECT_LT(maxAbsDiff(r.output,
                         referenceExecute(spec, kernel_plane, image_plane)),
              1e-12);
}

TEST(NonzeroImageMacs, DenseImageEqualsAllMacs)
{
    Rng rng(4);
    const auto spec = ProblemSpec::conv(3, 3, 10, 10);
    const CsrMatrix image =
        CsrMatrix::fromDense(randomDensePlane(10, 10, rng));
    EXPECT_EQ(nonzeroImageMacs(spec, image), spec.denseValidProducts());
}

TEST(NonzeroImageMacs, EmptyImageIsZero)
{
    const auto spec = ProblemSpec::conv(3, 3, 10, 10);
    EXPECT_EQ(nonzeroImageMacs(spec, CsrMatrix(10, 10)), 0u);
}

TEST(NonzeroImageMacs, MatchesBruteForce)
{
    Rng rng(5);
    for (std::uint32_t stride : {1u, 2u}) {
        const auto spec = ProblemSpec::conv(3, 3, 11, 11, stride);
        const auto plane = bernoulliPlane(11, 11, 0.6, rng);
        const CsrMatrix image = CsrMatrix::fromDense(plane);
        // Brute force: for each output and kernel position, check the
        // image operand.
        std::uint64_t want = 0;
        for (std::uint32_t oy = 0; oy < spec.outH(); ++oy)
            for (std::uint32_t ox = 0; ox < spec.outW(); ++ox)
                for (std::uint32_t r = 0; r < 3; ++r)
                    for (std::uint32_t s = 0; s < 3; ++s)
                        if (plane.at(stride * ox + s, stride * oy + r) !=
                            0.0f)
                            ++want;
        EXPECT_EQ(nonzeroImageMacs(spec, image), want) << stride;
    }
}

TEST(TensorDash, SkipsOnlyImageZeros)
{
    Rng rng(6);
    const auto spec = ProblemSpec::conv(3, 3, 12, 12);
    const CsrMatrix kernel =
        CsrMatrix::fromDense(bernoulliPlane(3, 3, 0.9, rng));
    const CsrMatrix image =
        CsrMatrix::fromDense(bernoulliPlane(12, 12, 0.9, rng));
    TensorDashPe pe;
    const PeResult r = pe.runPair(spec, kernel, image, false);
    EXPECT_EQ(r.counters.get(Counter::MultsExecuted),
              nonzeroImageMacs(spec, image));
}

TEST(TensorDash, SpeedupOverDenseIsPackingLimited)
{
    // At 90% one-sided sparsity the paper observes ~2.25x over dense;
    // our packing model should land in that band, far below the 10x an
    // ideal skip would give.
    Rng rng(7);
    const auto spec = ProblemSpec::conv(3, 3, 34, 34);
    const CsrMatrix kernel =
        CsrMatrix::fromDense(bernoulliPlane(3, 3, 0.0, rng));
    const CsrMatrix image =
        CsrMatrix::fromDense(bernoulliPlane(34, 34, 0.9, rng));
    DenseInnerProductPe dense;
    TensorDashPe td;
    const auto dense_r = dense.runPair(spec, kernel, image, false);
    const auto td_r = td.runPair(spec, kernel, image, false);
    const double speedup =
        static_cast<double>(dense_r.counters.get(Counter::Cycles)) /
        static_cast<double>(td_r.counters.get(Counter::Cycles));
    EXPECT_GT(speedup, 1.7);
    EXPECT_LT(speedup, 2.6);
}

TEST(TensorDash, NoSlowerThanDenseWhenDense)
{
    Rng rng(8);
    const auto spec = ProblemSpec::conv(3, 3, 16, 16);
    const CsrMatrix kernel =
        CsrMatrix::fromDense(randomDensePlane(3, 3, rng));
    const CsrMatrix image =
        CsrMatrix::fromDense(randomDensePlane(16, 16, rng));
    DenseInnerProductPe dense;
    TensorDashPe td;
    const auto dense_r = dense.runPair(spec, kernel, image, false);
    const auto td_r = td.runPair(spec, kernel, image, false);
    // A dense stream cannot be compressed, and the scheduler derate
    // may cost a little -- but not more than the derate factor.
    EXPECT_LE(td_r.counters.get(Counter::Cycles),
              static_cast<std::uint64_t>(
                  static_cast<double>(
                      dense_r.counters.get(Counter::Cycles)) /
                  0.7) +
                  5);
}

TEST(TensorDashDeathTest, MatmulUnsupported)
{
    const auto spec = ProblemSpec::matmul(4, 4, 4, 4);
    TensorDashPe pe;
    EXPECT_DEATH(pe.runPair(spec, CsrMatrix(4, 4), CsrMatrix(4, 4), false),
                 "convolutions only");
}

} // namespace
} // namespace antsim
