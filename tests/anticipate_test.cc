/**
 * @file
 * Tests for Algorithm 1 (ideal anticipation) and Algorithm 2 (block
 * anticipation at outer-product granularity).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "conv/anticipate.hh"
#include "conv/dense_conv.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

struct Pair
{
    Dense2d<float> kernel;
    Dense2d<float> image;
    ProblemSpec spec;
};

Pair
makePair(std::uint32_t kdim, std::uint32_t idim, double sparsity,
         std::uint32_t stride, std::uint64_t seed)
{
    Rng rng(seed);
    return {bernoulliPlane(kdim, kdim, sparsity, rng),
            bernoulliPlane(idim, idim, sparsity, rng),
            ProblemSpec::conv(kdim, kdim, idim, idim, stride)};
}

TEST(IdealAnticipation, EliminatesAllRcps)
{
    const Pair p = makePair(4, 12, 0.5, 1, 1);
    const auto result =
        idealAnticipation(p.spec, CsrMatrix::fromDense(p.kernel),
                          CsrMatrix::fromDense(p.image));
    EXPECT_EQ(result.residualRcps, 0u);
    EXPECT_EQ(result.executedProducts, result.validProducts);
    EXPECT_DOUBLE_EQ(result.rcpEliminationRate(), 1.0);
}

TEST(IdealAnticipation, OutputMatchesReference)
{
    const Pair p = makePair(3, 10, 0.4, 1, 2);
    const auto result =
        idealAnticipation(p.spec, CsrMatrix::fromDense(p.kernel),
                          CsrMatrix::fromDense(p.image));
    const auto ref = referenceExecute(p.spec, p.kernel, p.image);
    EXPECT_LT(maxAbsDiff(result.output, ref), 1e-9);
}

TEST(IdealAnticipation, SkipCountIsComplement)
{
    const Pair p = makePair(5, 9, 0.5, 1, 3);
    const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
    const CsrMatrix image = CsrMatrix::fromDense(p.image);
    const auto result = idealAnticipation(p.spec, kernel, image);
    EXPECT_EQ(result.skippedRcps + result.executedProducts,
              static_cast<std::uint64_t>(kernel.nnz()) * image.nnz());
}

TEST(BlockAnticipation, OutputMatchesReference)
{
    const Pair p = makePair(4, 11, 0.5, 1, 4);
    const auto result =
        blockAnticipation(p.spec, CsrMatrix::fromDense(p.kernel),
                          CsrMatrix::fromDense(p.image), 4);
    const auto ref = referenceExecute(p.spec, p.kernel, p.image);
    EXPECT_LT(maxAbsDiff(result.output, ref), 1e-9);
}

TEST(BlockAnticipation, NeverSkipsValidProducts)
{
    // All valid products must still execute (the row/column-granular
    // screen can only remove whole-kernel-element RCP rows).
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const Pair p = makePair(3, 9, 0.6, 1, 100 + seed);
        const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
        const CsrMatrix image = CsrMatrix::fromDense(p.image);
        const auto ideal = idealAnticipation(p.spec, kernel, image);
        const auto block =
            blockAnticipation(p.spec, kernel, image, 4);
        EXPECT_EQ(block.validProducts, ideal.validProducts);
    }
}

TEST(BlockAnticipation, BoundedBetweenIdealAndNone)
{
    const Pair p = makePair(6, 12, 0.5, 1, 5);
    const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
    const CsrMatrix image = CsrMatrix::fromDense(p.image);
    const auto ideal = idealAnticipation(p.spec, kernel, image);
    const auto block = blockAnticipation(p.spec, kernel, image, 4);
    const std::uint64_t all =
        static_cast<std::uint64_t>(kernel.nnz()) * image.nnz();
    EXPECT_GE(block.executedProducts, ideal.executedProducts);
    EXPECT_LE(block.executedProducts, all);
}

TEST(BlockAnticipation, GroupOfOneIsNearIdeal)
{
    // With n = 1 the group min/max equal the element indices, so the
    // screen reduces to the per-element conditions; at stride 1 these
    // are exact (no divisibility concerns), i.e. zero residual RCPs.
    const Pair p = makePair(5, 10, 0.5, 1, 6);
    const auto block =
        blockAnticipation(p.spec, CsrMatrix::fromDense(p.kernel),
                          CsrMatrix::fromDense(p.image), 1);
    EXPECT_EQ(block.residualRcps, 0u);
}

TEST(BlockAnticipation, LargerGroupsAdmitMoreResiduals)
{
    const Pair p = makePair(8, 16, 0.7, 1, 7);
    const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
    const CsrMatrix image = CsrMatrix::fromDense(p.image);
    std::uint64_t prev = 0;
    for (std::uint32_t n : {1u, 4u, 16u}) {
        const auto block = blockAnticipation(p.spec, kernel, image, n);
        EXPECT_GE(block.residualRcps, prev);
        prev = block.residualRcps;
    }
}

TEST(BlockAnticipation, AblationConditionsAreMonotone)
{
    // Fig. 14: either condition alone eliminates fewer RCPs than both.
    const Pair p = makePair(8, 14, 0.6, 1, 8);
    const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
    const CsrMatrix image = CsrMatrix::fromDense(p.image);
    const auto both = blockAnticipation(p.spec, kernel, image, 4);
    const auto r_only =
        blockAnticipation(p.spec, kernel, image, 4, true, false);
    const auto s_only =
        blockAnticipation(p.spec, kernel, image, 4, false, true);
    const auto none =
        blockAnticipation(p.spec, kernel, image, 4, false, false);
    EXPECT_LE(both.executedProducts, r_only.executedProducts);
    EXPECT_LE(both.executedProducts, s_only.executedProducts);
    EXPECT_LE(r_only.executedProducts, none.executedProducts);
    EXPECT_LE(s_only.executedProducts, none.executedProducts);
    // With no conditions, nothing is anticipated.
    EXPECT_EQ(none.skippedRcps, 0u);
    // Outputs identical in all cases.
    const auto ref = referenceExecute(p.spec, p.kernel, p.image);
    EXPECT_LT(maxAbsDiff(both.output, ref), 1e-9);
    EXPECT_LT(maxAbsDiff(r_only.output, ref), 1e-9);
    EXPECT_LT(maxAbsDiff(s_only.output, ref), 1e-9);
    EXPECT_LT(maxAbsDiff(none.output, ref), 1e-9);
}

TEST(BlockAnticipation, UpdatePhaseShapeEliminatesMostRcps)
{
    // G_A*A-like shape: large kernel, small output -- RCP-dominated
    // (Table 2); the block screen should remove the vast majority.
    Rng rng(9);
    const auto kernel_plane = bernoulliPlane(14, 14, 0.9, rng);
    const auto image_plane = bernoulliPlane(16, 16, 0.9, rng);
    const auto spec = ProblemSpec::conv(14, 14, 16, 16);
    const auto block =
        blockAnticipation(spec, CsrMatrix::fromDense(kernel_plane),
                          CsrMatrix::fromDense(image_plane), 4);
    EXPECT_GT(block.rcpEliminationRate(), 0.5);
}

/** Parameterized sweep: anticipation preserves outputs. */
class AnticipateSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                     std::uint32_t>>
{};

TEST_P(AnticipateSweep, BothAlgorithmsMatchReference)
{
    const auto [kdim, idim, stride, n] = GetParam();
    const Pair p = makePair(kdim, idim, 0.5, stride,
                            kdim * 1000 + idim * 10 + stride);
    const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
    const CsrMatrix image = CsrMatrix::fromDense(p.image);
    const auto ref = referenceExecute(p.spec, p.kernel, p.image);
    EXPECT_LT(maxAbsDiff(idealAnticipation(p.spec, kernel, image).output,
                         ref),
              1e-9);
    EXPECT_LT(
        maxAbsDiff(blockAnticipation(p.spec, kernel, image, n).output, ref),
        1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AnticipateSweep,
    ::testing::Combine(::testing::Values(2u, 3u, 6u),
                       ::testing::Values(8u, 13u),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(1u, 4u, 8u)));

} // namespace
} // namespace antsim
