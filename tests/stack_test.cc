/**
 * @file
 * Tests for the kernel-stack dataflow (PeModel::runStack): the
 * channel-batched, image-stationary streaming of Sec. 2.3 that both
 * the SCNN baseline and ANT use.
 */

#include <gtest/gtest.h>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "conv/dense_conv.hh"
#include "scnn/scnn_pe.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"
#include "workload/tracegen.hh"

namespace antsim {
namespace {

struct StackFixture
{
    ProblemSpec spec = ProblemSpec::conv(3, 3, 14, 14);
    std::vector<CsrMatrix> kernels;
    CsrMatrix image = CsrMatrix(14, 14);
    Dense2d<float> image_plane;

    explicit StackFixture(std::uint32_t count, double sparsity,
                          std::uint64_t seed)
    {
        Rng rng(seed);
        for (std::uint32_t i = 0; i < count; ++i) {
            kernels.push_back(
                CsrMatrix::fromDense(bernoulliPlane(3, 3, sparsity, rng)));
        }
        image_plane = bernoulliPlane(14, 14, sparsity, rng);
        image = CsrMatrix::fromDense(image_plane);
    }

    std::vector<const CsrMatrix *>
    ptrs() const
    {
        std::vector<const CsrMatrix *> out;
        for (const auto &k : kernels)
            out.push_back(&k);
        return out;
    }

    /** Sum of the per-kernel reference convolutions. */
    Dense2d<double>
    summedReference() const
    {
        Dense2d<double> sum(spec.outH(), spec.outW());
        for (const auto &k : kernels) {
            const auto ref =
                referenceExecute(spec, k.toDense(), image_plane);
            for (std::size_t i = 0; i < sum.data().size(); ++i)
                sum.data()[i] += ref.data()[i];
        }
        return sum;
    }

    std::uint64_t
    stackNnz() const
    {
        std::uint64_t total = 0;
        for (const auto &k : kernels)
            total += k.nnz();
        return total;
    }
};

TEST(ScnnStack, FunctionalOutputIsSummedReference)
{
    const StackFixture fx(5, 0.5, 1);
    ScnnPe pe;
    const PeResult r = pe.runStack(fx.spec, fx.ptrs(), fx.image, true);
    EXPECT_LT(maxAbsDiff(r.output, fx.summedReference()), 1e-9);
}

TEST(ScnnStack, CycleFormulaOverMergedStream)
{
    const StackFixture fx(7, 0.4, 2);
    ScnnPeConfig cfg;
    ScnnPe pe(cfg);
    const PeResult r = pe.runStack(fx.spec, fx.ptrs(), fx.image, false);
    const std::uint64_t igroups = (fx.image.nnz() + 3) / 4;
    const std::uint64_t kgroups = (fx.stackNnz() + 3) / 4;
    EXPECT_EQ(r.counters.get(Counter::Cycles),
              cfg.startupCycles + igroups * kgroups);
    // One startup for the whole stack.
    EXPECT_EQ(r.counters.get(Counter::StartupCycles), cfg.startupCycles);
}

TEST(ScnnStack, CountingMatchesFunctional)
{
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const StackFixture fx(4 + seed, 0.5, 10 + seed);
        ScnnPe pe;
        const PeResult slow =
            pe.runStack(fx.spec, fx.ptrs(), fx.image, true);
        const PeResult fast =
            pe.runStack(fx.spec, fx.ptrs(), fx.image, false);
        for (std::size_t i = 0; i < kNumCounters; ++i) {
            const auto counter = static_cast<Counter>(i);
            EXPECT_EQ(fast.counters.get(counter),
                      slow.counters.get(counter))
                << counterName(counter) << " seed " << seed;
        }
    }
}

TEST(ScnnStack, SingleKernelStackEqualsRunPair)
{
    const StackFixture fx(1, 0.5, 3);
    ScnnPe pe;
    const PeResult stack =
        pe.runStack(fx.spec, fx.ptrs(), fx.image, false);
    const PeResult pair =
        pe.runPair(fx.spec, fx.kernels[0], fx.image, false);
    EXPECT_EQ(stack.counters.get(Counter::Cycles),
              pair.counters.get(Counter::Cycles));
    EXPECT_EQ(stack.counters.get(Counter::MultsExecuted),
              pair.counters.get(Counter::MultsExecuted));
}

TEST(AntStack, FunctionalOutputIsSummedReference)
{
    const StackFixture fx(5, 0.5, 4);
    AntPe pe;
    const PeResult r = pe.runStack(fx.spec, fx.ptrs(), fx.image, true);
    EXPECT_LT(maxAbsDiff(r.output, fx.summedReference()), 1e-9);
}

TEST(AntStack, CountingMatchesFunctionalCounters)
{
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const StackFixture fx(6, 0.6, 20 + seed);
        AntPe pe;
        const PeResult slow =
            pe.runStack(fx.spec, fx.ptrs(), fx.image, true);
        const PeResult fast =
            pe.runStack(fx.spec, fx.ptrs(), fx.image, false);
        for (Counter counter :
             {Counter::MultsExecuted, Counter::MultsValid,
              Counter::MultsRcp, Counter::RcpsAvoided, Counter::Cycles,
              Counter::AccumAdds, Counter::OutputIndexCalcs}) {
            EXPECT_EQ(fast.counters.get(counter),
                      slow.counters.get(counter))
                << counterName(counter) << " seed " << seed;
        }
    }
}

TEST(AntStack, ExecutedProductSetMatchesPerPairSum)
{
    // Screening decisions are per (kernel element, image group), so
    // the stacked execution admits exactly the union of the per-pair
    // executions.
    const StackFixture fx(6, 0.5, 5);
    AntPe pe;
    const PeResult stack =
        pe.runStack(fx.spec, fx.ptrs(), fx.image, false);
    std::uint64_t pair_executed = 0;
    std::uint64_t pair_valid = 0;
    for (const auto &kernel : fx.kernels) {
        const PeResult r = pe.runPair(fx.spec, kernel, fx.image, false);
        pair_executed += r.counters.get(Counter::MultsExecuted);
        pair_valid += r.counters.get(Counter::MultsValid);
    }
    EXPECT_EQ(stack.counters.get(Counter::MultsExecuted), pair_executed);
    EXPECT_EQ(stack.counters.get(Counter::MultsValid), pair_valid);
}

TEST(AntStack, ValidProductsEqualScnn)
{
    const StackFixture fx(8, 0.7, 6);
    AntPe ant;
    ScnnPe scnn;
    const PeResult a = ant.runStack(fx.spec, fx.ptrs(), fx.image, false);
    const PeResult s = scnn.runStack(fx.spec, fx.ptrs(), fx.image, false);
    EXPECT_EQ(a.counters.get(Counter::MultsValid),
              s.counters.get(Counter::MultsValid));
    EXPECT_LE(a.counters.get(Counter::MultsExecuted),
              s.counters.get(Counter::MultsExecuted));
}

TEST(AntStack, ControllerWalkBoundsSmallKernelStacks)
{
    // An update-phase-shaped problem whose windows are proper: the
    // controller's pointer walk sets a floor on ANT's group time.
    Rng rng(7);
    const auto spec = ProblemSpec::conv(12, 12, 14, 14);
    std::vector<CsrMatrix> kernels;
    for (int i = 0; i < 64; ++i) {
        kernels.push_back(
            CsrMatrix::fromDense(bernoulliPlane(12, 12, 0.95, rng)));
    }
    std::vector<const CsrMatrix *> ptrs;
    for (const auto &k : kernels)
        ptrs.push_back(&k);
    const CsrMatrix image =
        CsrMatrix::fromDense(bernoulliPlane(14, 14, 0.9, rng));

    AntPeConfig cfg;
    AntPe pe(cfg);
    const PeResult r = pe.runStack(spec, ptrs, image, false);
    // Row pointers were actually walked.
    EXPECT_GT(r.counters.get(Counter::SramRowPtrReads), 0u);
    // Cycles at least the walk floor for the non-empty groups.
    const std::uint64_t groups = (image.nnz() + cfg.n - 1) / cfg.n;
    EXPECT_GE(r.counters.get(Counter::Cycles), groups);
}

TEST(AntStack, FullWindowStreamsWithoutWalk)
{
    // Forward-phase shape: tiny kernel, window covers all rows -> the
    // degenerate stream charges no pointer walk.
    const StackFixture fx(16, 0.9, 8);
    AntPe pe;
    const PeResult r = pe.runStack(fx.spec, fx.ptrs(), fx.image, false);
    EXPECT_EQ(r.counters.get(Counter::SramRowPtrReads), 0u);
}

TEST(AntStackDeathTest, RejectsMatmulStacks)
{
    const auto spec = ProblemSpec::matmul(4, 4, 4, 4);
    const CsrMatrix kernel(4, 4);
    const CsrMatrix image(4, 4);
    AntPe pe;
    EXPECT_DEATH(pe.runStack(spec, {&kernel}, image, false),
                 "convolution dataflow");
}

TEST(StackDeathTest, EmptyStackRejected)
{
    const auto spec = ProblemSpec::conv(3, 3, 8, 8);
    const CsrMatrix image(8, 8);
    ScnnPe scnn;
    AntPe ant;
    EXPECT_DEATH(scnn.runStack(spec, {}, image, false), "must not be");
    EXPECT_DEATH(ant.runStack(spec, {}, image, false), "must not be");
}

TEST(BaselineStack, DenseScalesWithStackSize)
{
    const StackFixture fx(6, 0.5, 9);
    DenseInnerProductPe pe;
    const PeResult stack =
        pe.runStack(fx.spec, fx.ptrs(), fx.image, false);
    const PeResult one =
        pe.runPair(fx.spec, fx.kernels[0], fx.image, false);
    EXPECT_EQ(stack.counters.get(Counter::MultsExecuted),
              6 * one.counters.get(Counter::MultsExecuted));
    // Startup paid once.
    EXPECT_EQ(stack.counters.get(Counter::StartupCycles),
              one.counters.get(Counter::StartupCycles));
}

TEST(BaselineStack, TensorDashScalesWithStackSize)
{
    const StackFixture fx(4, 0.9, 10);
    TensorDashPe pe;
    const PeResult stack =
        pe.runStack(fx.spec, fx.ptrs(), fx.image, false);
    EXPECT_EQ(stack.counters.get(Counter::MultsExecuted),
              4 * nonzeroImageMacs(fx.spec, fx.image));
}

TEST(BaselineStack, FunctionalOutputIsSummedReference)
{
    const StackFixture fx(3, 0.4, 11);
    DenseInnerProductPe pe;
    const PeResult r = pe.runStack(fx.spec, fx.ptrs(), fx.image, true);
    // The dense model sums the kernel stack in float before the
    // reference conv, so allow float rounding.
    EXPECT_LT(maxAbsDiff(r.output, fx.summedReference()), 1e-5);
}

TEST(StackTask, TaskCountsFollowPhase)
{
    const ConvLayer layer{"t", 8, 16, 14, 14, 3, 1, 1};
    EXPECT_EQ(stackTaskCount(layer, TrainingPhase::Forward), 8u);
    EXPECT_EQ(stackTaskCount(layer, TrainingPhase::Backward), 16u);
    EXPECT_EQ(stackTaskCount(layer, TrainingPhase::Update), 8u);
}

TEST(StackTask, ForwardTaskShape)
{
    const ConvLayer layer{"t", 8, 16, 14, 14, 3, 1, 1};
    Rng rng(12);
    const StackTask task = makeConvPhaseTask(
        layer, TrainingPhase::Forward, SparsityProfile::swat(0.9), rng);
    EXPECT_EQ(task.kernels.size(), 16u);
    EXPECT_EQ(task.image->height(), 16u);
    EXPECT_EQ(task.kernelPtrs().size(), 16u);
    for (const auto &k : task.kernels)
        EXPECT_EQ(k->height(), 3u);
}

TEST(StackTask, UpdateTaskShape)
{
    const ConvLayer layer{"t", 8, 16, 14, 14, 3, 1, 1};
    Rng rng(13);
    const StackTask task = makeConvPhaseTask(
        layer, TrainingPhase::Update, SparsityProfile::swat(0.9), rng);
    EXPECT_EQ(task.kernels.size(), 16u);
    EXPECT_EQ(task.kernels[0]->height(), 14u);
    EXPECT_EQ(task.spec.outH(), 3u);
}

TEST(StackTask, BackwardTaskShape)
{
    const ConvLayer layer{"t", 8, 16, 14, 14, 3, 1, 1};
    Rng rng(14);
    const StackTask task = makeConvPhaseTask(
        layer, TrainingPhase::Backward, SparsityProfile::swat(0.9), rng);
    // One gradient image, a rotated-weight kernel per input channel.
    EXPECT_EQ(task.kernels.size(), 8u);
    EXPECT_EQ(task.image->height(), 16u);
}

} // namespace
} // namespace antsim
