/**
 * @file
 * Property tests of the shared census engine (conv/census.hh) and the
 * fused CSR plane generator (workload/trace_cache.hh):
 *
 *  - CensusContext::countProducts must be counter-for-counter
 *    identical to the brute-force countProducts over randomized
 *    strides, dilations, paddings, cropped output dims, and matmul;
 *  - ValidTable must agree with ProblemSpec::isValid on every
 *    (x, y, s, r) coordinate;
 *  - generateCsrPlane must consume the identical random stream and
 *    emit the bit-identical CsrMatrix as the legacy dense pipeline
 *    generatePlane -> embedPlane -> fromDense -> rotated180.
 */

#include <gtest/gtest.h>

#include "conv/census.hh"
#include "conv/outer_product.hh"
#include "tensor/sparsify.hh"
#include "workload/trace_cache.hh"
#include "workload/tracegen.hh"

namespace antsim {
namespace {

/** A sparsified, bf16-quantized CSR plane (the simulators' diet). */
CsrMatrix
randomCsr(std::uint32_t height, std::uint32_t width, double sparsity,
          Rng &rng)
{
    return CsrMatrix::fromDense(
        generatePlane(height, width, sparsity, SparsifyMethod::Bernoulli,
                      rng));
}

void
expectCensusEqual(const ProductCensus &expected, const ProductCensus &got,
                  const std::string &context)
{
    EXPECT_EQ(expected.denseProducts, got.denseProducts) << context;
    EXPECT_EQ(expected.nonzeroProducts, got.nonzeroProducts) << context;
    EXPECT_EQ(expected.validProducts, got.validProducts) << context;
    EXPECT_EQ(expected.rcpProducts, got.rcpProducts) << context;
}

/** Compare census vs brute force and ValidTable vs isValid for a spec. */
void
checkSpec(const ProblemSpec &spec, Rng &rng, const std::string &context)
{
    const CsrMatrix image =
        randomCsr(spec.imageH(), spec.imageW(), 0.7, rng);
    const CensusContext census(spec, image);
    const ValidTable table(spec);

    // Several kernels against one context: the sharing the stack
    // counting path depends on.
    for (int k = 0; k < 3; ++k) {
        const CsrMatrix kernel =
            randomCsr(spec.kernelH(), spec.kernelW(), 0.4, rng);
        expectCensusEqual(countProducts(spec, kernel, image),
                          census.countProducts(kernel), context);
    }

    for (std::uint32_t y = 0; y < spec.imageH(); ++y)
        for (std::uint32_t x = 0; x < spec.imageW(); ++x)
            for (std::uint32_t r = 0; r < spec.kernelH(); ++r)
                for (std::uint32_t s = 0; s < spec.kernelW(); ++s)
                    ASSERT_EQ(spec.isValid(x, y, s, r),
                              table.valid(x, y, s, r))
                        << context << " at x=" << x << " y=" << y
                        << " s=" << s << " r=" << r;
}

TEST(CensusProperty, MatchesBruteForceOnRandomConvGeometries)
{
    Rng rng(2022);
    for (int trial = 0; trial < 40; ++trial) {
        const auto stride =
            static_cast<std::uint32_t>(rng.range(1, 3));
        const auto dilation =
            static_cast<std::uint32_t>(rng.range(1, 3));
        const auto kernel = static_cast<std::uint32_t>(rng.range(1, 5));
        // Image large enough for at least one kernel placement, plus
        // random padding slack that only adds RCPs.
        const std::uint32_t reach = dilation * (kernel - 1) + 1;
        const auto slack = static_cast<std::uint32_t>(rng.range(0, 9));
        const std::uint32_t image = reach + slack;
        const ProblemSpec spec = ProblemSpec::conv(
            kernel, kernel, image, image, stride, dilation);
        checkSpec(spec, rng, "conv " + spec.toString());
    }
}

TEST(CensusProperty, MatchesBruteForceOnCroppedOutputDims)
{
    // The update phase G_A * A overrides (crops) the natural output
    // dims; products mapping past the crop are RCPs.
    Rng rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        const auto stride =
            static_cast<std::uint32_t>(rng.range(1, 2));
        const auto kernel = static_cast<std::uint32_t>(rng.range(2, 4));
        const std::uint32_t image =
            kernel + static_cast<std::uint32_t>(rng.range(2, 8));
        const std::uint32_t natural_out = (image - kernel) / stride + 1;
        const auto out = static_cast<std::uint32_t>(
            rng.range(1, static_cast<std::int64_t>(natural_out)));
        const ProblemSpec spec = ProblemSpec::convWithOutDims(
            kernel, kernel, image, image, out, out, stride);
        checkSpec(spec, rng, "cropped " + spec.toString());
    }
}

TEST(CensusProperty, MatchesBruteForceOnMatmul)
{
    Rng rng(31);
    for (int trial = 0; trial < 20; ++trial) {
        const auto h = static_cast<std::uint32_t>(rng.range(1, 12));
        const auto w = static_cast<std::uint32_t>(rng.range(1, 12));
        const auto s = static_cast<std::uint32_t>(rng.range(1, 12));
        const ProblemSpec spec = ProblemSpec::matmul(h, w, w, s);
        checkSpec(spec, rng, "matmul " + spec.toString());
    }
}

TEST(CensusProperty, EmptyPlanesCountZero)
{
    const ProblemSpec spec = ProblemSpec::conv(3, 3, 8, 8, 2);
    const CsrMatrix empty =
        CsrMatrix::fromDense(Dense2d<float>(8, 8));
    const CensusContext census(spec, empty);
    Rng rng(5);
    const CsrMatrix kernel = randomCsr(3, 3, 0.3, rng);
    const ProductCensus got = census.countProducts(kernel);
    EXPECT_EQ(got.nonzeroProducts, 0u);
    EXPECT_EQ(got.validProducts, 0u);
    EXPECT_EQ(got.rcpProducts, 0u);
    EXPECT_EQ(got.denseProducts, spec.denseCartesianProducts());
}

/** Legacy dense pipeline the fused generator must reproduce exactly. */
CsrMatrix
legacyPlane(const PlaneRecipe &recipe, Rng &rng)
{
    const Dense2d<float> inner = generatePlane(
        recipe.height, recipe.width, recipe.sparsity, recipe.method, rng);
    const Dense2d<float> embedded =
        recipe.outHeight == recipe.height &&
            recipe.outWidth == recipe.width && recipe.offset == 0 &&
            recipe.dilation == 1
        ? inner
        : embedPlane(inner, recipe.outHeight, recipe.outWidth,
                     recipe.offset, recipe.dilation);
    CsrMatrix csr = CsrMatrix::fromDense(embedded);
    return recipe.rotate ? csr.rotated180() : csr;
}

void
expectFusedMatchesLegacy(const PlaneRecipe &recipe, std::uint64_t seed)
{
    Rng legacy_rng(seed);
    Rng fused_rng(seed);
    const CsrMatrix expected = legacyPlane(recipe, legacy_rng);
    const CsrMatrix got = generateCsrPlane(recipe, fused_rng);
    EXPECT_TRUE(expected == got)
        << "plane mismatch for " << recipe.height << "x" << recipe.width
        << " sparsity " << recipe.sparsity << " offset " << recipe.offset
        << " dilation " << recipe.dilation << " rotate " << recipe.rotate;
    // Identical random stream consumed: downstream draws stay aligned.
    EXPECT_EQ(legacy_rng.state(), fused_rng.state());
}

TEST(CensusProperty, FusedGeneratorMatchesLegacyPipeline)
{
    Rng rng(404);
    for (const SparsifyMethod method :
         {SparsifyMethod::Bernoulli, SparsifyMethod::TopK}) {
        for (int trial = 0; trial < 25; ++trial) {
            PlaneRecipe recipe;
            recipe.height = static_cast<std::uint32_t>(rng.range(1, 16));
            recipe.width = static_cast<std::uint32_t>(rng.range(1, 16));
            recipe.sparsity = rng.uniform();
            recipe.method = method;
            recipe.offset = static_cast<std::uint32_t>(rng.range(0, 3));
            recipe.dilation =
                static_cast<std::uint32_t>(rng.range(1, 3));
            recipe.outHeight = recipe.offset +
                recipe.dilation * (recipe.height - 1) + 1 +
                static_cast<std::uint32_t>(rng.range(0, 3));
            recipe.outWidth = recipe.offset +
                recipe.dilation * (recipe.width - 1) + 1 +
                static_cast<std::uint32_t>(rng.range(0, 3));
            recipe.rotate = rng.bernoulli(0.5);
            expectFusedMatchesLegacy(recipe, rng.next());
        }
    }
}

TEST(CensusProperty, FusedGeneratorSparsityExtremes)
{
    for (const SparsifyMethod method :
         {SparsifyMethod::Bernoulli, SparsifyMethod::TopK}) {
        for (const double sparsity : {0.0, 1.0}) {
            PlaneRecipe recipe =
                PlaneRecipe::plain(6, 9, sparsity, method);
            expectFusedMatchesLegacy(recipe, 99);
        }
    }
}

} // namespace
} // namespace antsim
