/**
 * @file
 * Tests for the functional sparse outer-product executor and product
 * census (the un-anticipated baseline semantics of Fig. 2d).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "conv/dense_conv.hh"
#include "conv/outer_product.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

TEST(OuterProduct, MatchesDenseReference)
{
    Rng rng(11);
    const auto kernel = bernoulliPlane(3, 3, 0.4, rng);
    const auto image = bernoulliPlane(8, 8, 0.6, rng);
    const auto spec = ProblemSpec::conv(3, 3, 8, 8);

    const auto result = sparseOuterProduct(
        spec, CsrMatrix::fromDense(kernel), CsrMatrix::fromDense(image));
    const auto ref = referenceExecute(spec, kernel, image);
    EXPECT_LT(maxAbsDiff(result.output, ref), 1e-9);
}

TEST(OuterProduct, ProductCountsAddUp)
{
    Rng rng(13);
    const auto kernel = CsrMatrix::fromDense(bernoulliPlane(4, 4, 0.5, rng));
    const auto image = CsrMatrix::fromDense(bernoulliPlane(9, 9, 0.5, rng));
    const auto spec = ProblemSpec::conv(4, 4, 9, 9);

    const auto result = sparseOuterProduct(spec, kernel, image);
    const ProductCensus &c = result.census;
    EXPECT_EQ(c.nonzeroProducts,
              static_cast<std::uint64_t>(kernel.nnz()) * image.nnz());
    EXPECT_EQ(c.validProducts + c.rcpProducts, c.nonzeroProducts);
    EXPECT_EQ(c.denseProducts, spec.denseCartesianProducts());
}

TEST(OuterProduct, DenseOperandsHitAnalyticEfficiency)
{
    // With fully dense operands the valid fraction equals Eq. 6.
    Rng rng(17);
    const auto kernel = CsrMatrix::fromDense(randomDensePlane(3, 3, rng));
    const auto image = CsrMatrix::fromDense(randomDensePlane(10, 10, rng));
    const auto spec = ProblemSpec::conv(3, 3, 10, 10);

    const auto census = countProducts(spec, kernel, image);
    const double measured = static_cast<double>(census.validProducts) /
        static_cast<double>(census.nonzeroProducts);
    EXPECT_NEAR(measured, spec.outerProductEfficiency(), 1e-12);
}

TEST(OuterProduct, CountMatchesExecution)
{
    Rng rng(19);
    for (int trial = 0; trial < 10; ++trial) {
        const std::uint32_t k = 2 + trial % 3;
        const std::uint32_t img = 6 + trial;
        const auto kernel =
            CsrMatrix::fromDense(bernoulliPlane(k, k, 0.5, rng));
        const auto image =
            CsrMatrix::fromDense(bernoulliPlane(img, img, 0.6, rng));
        const auto spec = ProblemSpec::conv(k, k, img, img);

        const auto executed = sparseOuterProduct(spec, kernel, image);
        const auto counted = countProducts(spec, kernel, image);
        EXPECT_EQ(executed.census.validProducts, counted.validProducts);
        EXPECT_EQ(executed.census.rcpProducts, counted.rcpProducts);
    }
}

TEST(OuterProduct, CountMatchesExecutionStridedDilated)
{
    Rng rng(23);
    for (std::uint32_t stride : {1u, 2u}) {
        for (std::uint32_t dil : {1u, 2u}) {
            const auto kernel =
                CsrMatrix::fromDense(bernoulliPlane(3, 3, 0.4, rng));
            const auto image =
                CsrMatrix::fromDense(bernoulliPlane(12, 12, 0.5, rng));
            const auto spec = ProblemSpec::conv(3, 3, 12, 12, stride, dil);
            const auto executed = sparseOuterProduct(spec, kernel, image);
            const auto counted = countProducts(spec, kernel, image);
            EXPECT_EQ(executed.census.validProducts,
                      counted.validProducts);
        }
    }
}

TEST(OuterProduct, MatmulCensusHistogramPath)
{
    Rng rng(29);
    const auto image = CsrMatrix::fromDense(bernoulliPlane(6, 8, 0.5, rng));
    const auto kernel =
        CsrMatrix::fromDense(bernoulliPlane(8, 5, 0.5, rng));
    const auto spec = ProblemSpec::matmul(6, 8, 8, 5);

    const auto executed = sparseOuterProduct(spec, kernel, image);
    const auto counted = countProducts(spec, kernel, image);
    EXPECT_EQ(executed.census.validProducts, counted.validProducts);
    EXPECT_EQ(executed.census.rcpProducts, counted.rcpProducts);
}

TEST(OuterProduct, MatmulMatchesDense)
{
    Rng rng(31);
    const auto image_plane = bernoulliPlane(7, 9, 0.4, rng);
    const auto kernel_plane = bernoulliPlane(9, 6, 0.4, rng);
    const auto spec = ProblemSpec::matmul(7, 9, 9, 6);
    const auto result =
        sparseOuterProduct(spec, CsrMatrix::fromDense(kernel_plane),
                           CsrMatrix::fromDense(image_plane));
    const auto ref = referenceExecute(spec, kernel_plane, image_plane);
    EXPECT_LT(maxAbsDiff(result.output, ref), 1e-9);
}

TEST(OuterProduct, EmptyOperandsProduceNothing)
{
    const CsrMatrix kernel(3, 3);
    const CsrMatrix image(8, 8);
    const auto spec = ProblemSpec::conv(3, 3, 8, 8);
    const auto result = sparseOuterProduct(spec, kernel, image);
    EXPECT_EQ(result.census.nonzeroProducts, 0u);
    EXPECT_EQ(result.census.validProducts, 0u);
    EXPECT_DOUBLE_EQ(result.census.rcpFraction(), 0.0);
}

TEST(OuterProduct, RcpFractionGrowsWithKernelSize)
{
    // Sec. 3.1: as the kernel approaches the image size, the RCP
    // fraction of the dense outer product increases.
    Rng rng(37);
    const auto image_plane = randomDensePlane(16, 16, rng);
    double prev_fraction = -1.0;
    for (std::uint32_t k : {3u, 8u, 14u}) {
        const auto kernel_plane = randomDensePlane(k, k, rng);
        const auto spec = ProblemSpec::conv(k, k, 16, 16);
        const auto census =
            countProducts(spec, CsrMatrix::fromDense(kernel_plane),
                          CsrMatrix::fromDense(image_plane));
        EXPECT_GT(census.rcpFraction(), prev_fraction);
        prev_fraction = census.rcpFraction();
    }
    // The update-phase-like 14x14-over-16x16 case is RCP-dominated.
    EXPECT_GT(prev_fraction, 0.9);
}

/** Parameterized sweep: outer product == dense reference. */
class OuterProductSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t, double>>
{};

TEST_P(OuterProductSweep, MatchesDenseReference)
{
    const auto [kernel_dim, image_dim, stride, sparsity] = GetParam();
    Rng rng(kernel_dim * 1000 + image_dim * 10 + stride);
    const auto kernel_plane =
        bernoulliPlane(kernel_dim, kernel_dim, sparsity, rng);
    const auto image_plane =
        bernoulliPlane(image_dim, image_dim, sparsity, rng);
    const auto spec =
        ProblemSpec::conv(kernel_dim, kernel_dim, image_dim, image_dim,
                          stride);
    const auto result =
        sparseOuterProduct(spec, CsrMatrix::fromDense(kernel_plane),
                           CsrMatrix::fromDense(image_plane));
    const auto ref = referenceExecute(spec, kernel_plane, image_plane);
    EXPECT_LT(maxAbsDiff(result.output, ref), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OuterProductSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),
                       ::testing::Values(6u, 11u, 16u),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(0.0, 0.5, 0.9)));

} // namespace
} // namespace antsim
