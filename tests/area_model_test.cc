/**
 * @file
 * Tests for the FNIR area/delay model (Sec. 7.5-7.6).
 */

#include <gtest/gtest.h>

#include "ant/area_model.hh"

namespace antsim {
namespace {

TEST(AreaModel, DefaultConfigMatchesPaperArea)
{
    const auto est = estimateFnirArea(4, 16);
    EXPECT_NEAR(est.areaMm2, 0.0017, 1e-6);
}

TEST(AreaModel, DefaultConfigFractionOfMultiplierArray)
{
    // Paper: FNIR is 21.25% of the 4x4 multiplier array's area. Our
    // gate-level ratio should land in the same regime (tens of
    // percent, not 2% or 200%).
    const auto est = estimateFnirArea(4, 16);
    EXPECT_GT(est.fractionOfMultiplierArray, 0.05);
    EXPECT_LT(est.fractionOfMultiplierArray, 0.60);
}

TEST(AreaModel, AreaGrowsWithK)
{
    double prev = 0.0;
    for (std::uint32_t k : {4u, 8u, 16u, 32u}) {
        const auto est = estimateFnirArea(4, k);
        EXPECT_GT(est.areaMm2, prev);
        prev = est.areaMm2;
    }
}

TEST(AreaModel, AreaGrowsWithN)
{
    double prev = 0.0;
    for (std::uint32_t n : {2u, 4u, 6u, 8u}) {
        const auto est = estimateFnirArea(n, 16);
        EXPECT_GT(est.areaMm2, prev);
        prev = est.areaMm2;
    }
}

TEST(AreaModel, CriticalPathGrowsWithN)
{
    // Sec. 7.6: the serial Arbiter Select depth grows with n, which is
    // why scaling up the PE eventually loses to more PEs.
    std::uint32_t prev = 0;
    for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
        const auto est = estimateFnirArea(n, 16);
        EXPECT_GT(est.criticalPathGates, prev);
        prev = est.criticalPathGates;
    }
}

TEST(AreaModel, AreaRemainsTinyAcrossSweep)
{
    // Even at the largest swept configuration the FNIR stays well
    // under a hundredth of a mm^2 -- the paper's "negligible area"
    // claim.
    const auto est = estimateFnirArea(8, 32);
    EXPECT_LT(est.areaMm2, 0.01);
}

TEST(AreaModelDeathTest, RejectsZeroDims)
{
    EXPECT_DEATH(estimateFnirArea(0, 16), "positive");
}

} // namespace
} // namespace antsim
