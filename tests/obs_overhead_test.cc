/**
 * @file
 * Tracing must observe, never perturb: with the sink attached, every
 * PE model produces bit-identical NetworkStats to the untraced run
 * (same counters, layers, phases). The instrumentation only mirrors
 * cycle accounting that already happened -- a divergence here means a
 * site advanced state instead of recording it. Also pins the
 * no-tracing fast path (recorder() stays null, so sites reduce to one
 * branch) and that reports omit the histograms section unless tracing
 * supplied one.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "obs/trace.hh"
#include "report/report.hh"
#include "scnn/scnn_pe.hh"
#include "workload/runner.hh"

namespace antsim {
namespace {

std::vector<ConvLayer>
tinyNetwork()
{
    return {
        {"l0", 2, 16, 24, 24, 3, 1, 1},
        {"l1", 16, 16, 24, 24, 3, 2, 1},
        {"l2", 16, 8, 12, 12, 1, 1, 0},
    };
}

std::vector<std::unique_ptr<PeModel>>
allPeModels()
{
    std::vector<std::unique_ptr<PeModel>> pes;
    pes.push_back(std::make_unique<ScnnPe>());
    pes.push_back(std::make_unique<AntPe>());
    pes.push_back(std::make_unique<DenseInnerProductPe>());
    pes.push_back(std::make_unique<TensorDashPe>());
    return pes;
}

void
expectIdenticalStats(const NetworkStats &expected, const NetworkStats &got,
                     const std::string &context)
{
    for (std::size_t c = 0; c < kNumCounters; ++c) {
        const auto counter = static_cast<Counter>(c);
        EXPECT_EQ(expected.total.get(counter), got.total.get(counter))
            << context << ": total " << counterName(counter);
    }
    ASSERT_EQ(expected.layers.size(), got.layers.size()) << context;
    for (std::size_t li = 0; li < expected.layers.size(); ++li) {
        for (std::size_t pi = 0; pi < expected.layers[li].phases.size();
             ++pi) {
            const PhaseStats &ep = expected.layers[li].phases[pi];
            const PhaseStats &gp = got.layers[li].phases[pi];
            for (std::size_t c = 0; c < kNumCounters; ++c) {
                const auto counter = static_cast<Counter>(c);
                EXPECT_EQ(ep.counters.get(counter),
                          gp.counters.get(counter))
                    << context << ": layer "
                    << expected.layers[li].name << " phase " << pi
                    << " " << counterName(counter);
            }
        }
    }
}

TEST(ObsOverhead, TracingDoesNotPerturbNetworkStats)
{
    for (const auto &pe : allPeModels()) {
        RunConfig config;
        config.sampleCap = 2;
        config.numThreads = 2;

        obs::setEnabled(false);
        const auto untraced = runConvNetwork(
            *pe, tinyNetwork(), SparsityProfile::swat(0.9), config);

        obs::setEnabled(true);
        obs::globalSink().clear();
        const auto traced = runConvNetwork(
            *pe, tinyNetwork(), SparsityProfile::swat(0.9), config);
        obs::globalSink().clear();
        obs::setEnabled(false);

        expectIdenticalStats(untraced, traced, pe->name());
    }
}

TEST(ObsOverhead, TracingDoesNotPerturbMatmulStats)
{
    std::vector<std::unique_ptr<PeModel>> pes;
    pes.push_back(std::make_unique<ScnnPe>());
    pes.push_back(std::make_unique<AntPe>());
    for (const auto &pe : pes) {
        RunConfig config;
        config.numThreads = 2;

        obs::setEnabled(false);
        const auto untraced = runMatmulNetwork(
            *pe, rnnLayers(), 0.9, SparsifyMethod::TopK, config);

        obs::setEnabled(true);
        obs::globalSink().clear();
        const auto traced = runMatmulNetwork(
            *pe, rnnLayers(), 0.9, SparsifyMethod::TopK, config);
        obs::globalSink().clear();
        obs::setEnabled(false);

        expectIdenticalStats(untraced, traced,
                             pe->name() + "/matmul");
    }
}

TEST(ObsOverhead, DisabledTracingLeavesNoRecorder)
{
    obs::setEnabled(false);
    EXPECT_EQ(obs::traceSink(), nullptr);
    RunConfig config;
    config.sampleCap = 1;
    ScnnPe pe;
    runConvNetwork(pe, tinyNetwork(), SparsityProfile::swat(0.9), config);
    // The fast path never installs a thread-local recorder.
    EXPECT_EQ(obs::recorder(), nullptr);
}

TEST(ObsOverhead, ReportOmitsHistogramsUnlessProvided)
{
    RunReport plain;
    const std::string without = plain.toJson(false).dump();
    EXPECT_EQ(without.find("histograms"), std::string::npos);

    RunReport with;
    with.setHistograms(obs::HistogramRegistry{});
    EXPECT_NE(with.toJson(false).dump().find("histograms"),
              std::string::npos);
}

} // namespace
} // namespace antsim
