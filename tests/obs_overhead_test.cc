/**
 * @file
 * Tracing must observe, never perturb: with the sink attached, every
 * PE model produces bit-identical NetworkStats to the untraced run
 * (same counters, layers, phases). The instrumentation only mirrors
 * cycle accounting that already happened -- a divergence here means a
 * site advanced state instead of recording it. Also pins the
 * no-tracing fast path (recorder() stays null, so sites reduce to one
 * branch) and that reports omit the histograms section unless tracing
 * supplied one.
 *
 * The same observe-don't-perturb law covers the host-side metrics
 * registry and host tracer (src/obs/metrics.hh, host_trace.hh): with
 * both off no thread-local shard or buffer is ever installed, and
 * turning both on leaves NetworkStats, the deterministic report JSON,
 * and the simulated-time trace bytes identical -- host observability
 * reads wall-clock but never writes simulation state.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "obs/host_trace.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "report/report.hh"
#include "scnn/scnn_pe.hh"
#include "workload/runner.hh"

namespace antsim {
namespace {

std::vector<ConvLayer>
tinyNetwork()
{
    return {
        {"l0", 2, 16, 24, 24, 3, 1, 1},
        {"l1", 16, 16, 24, 24, 3, 2, 1},
        {"l2", 16, 8, 12, 12, 1, 1, 0},
    };
}

std::vector<std::unique_ptr<PeModel>>
allPeModels()
{
    std::vector<std::unique_ptr<PeModel>> pes;
    pes.push_back(std::make_unique<ScnnPe>());
    pes.push_back(std::make_unique<AntPe>());
    pes.push_back(std::make_unique<DenseInnerProductPe>());
    pes.push_back(std::make_unique<TensorDashPe>());
    return pes;
}

void
expectIdenticalStats(const NetworkStats &expected, const NetworkStats &got,
                     const std::string &context)
{
    for (std::size_t c = 0; c < kNumCounters; ++c) {
        const auto counter = static_cast<Counter>(c);
        EXPECT_EQ(expected.total.get(counter), got.total.get(counter))
            << context << ": total " << counterName(counter);
    }
    ASSERT_EQ(expected.layers.size(), got.layers.size()) << context;
    for (std::size_t li = 0; li < expected.layers.size(); ++li) {
        for (std::size_t pi = 0; pi < expected.layers[li].phases.size();
             ++pi) {
            const PhaseStats &ep = expected.layers[li].phases[pi];
            const PhaseStats &gp = got.layers[li].phases[pi];
            for (std::size_t c = 0; c < kNumCounters; ++c) {
                const auto counter = static_cast<Counter>(c);
                EXPECT_EQ(ep.counters.get(counter),
                          gp.counters.get(counter))
                    << context << ": layer "
                    << expected.layers[li].name << " phase " << pi
                    << " " << counterName(counter);
            }
        }
    }
}

TEST(ObsOverhead, TracingDoesNotPerturbNetworkStats)
{
    for (const auto &pe : allPeModels()) {
        RunConfig config;
        config.sampleCap = 2;
        config.numThreads = 2;

        obs::setEnabled(false);
        const auto untraced = runConvNetwork(
            *pe, tinyNetwork(), SparsityProfile::swat(0.9), config);

        obs::setEnabled(true);
        obs::globalSink().clear();
        const auto traced = runConvNetwork(
            *pe, tinyNetwork(), SparsityProfile::swat(0.9), config);
        obs::globalSink().clear();
        obs::setEnabled(false);

        expectIdenticalStats(untraced, traced, pe->name());
    }
}

TEST(ObsOverhead, TracingDoesNotPerturbMatmulStats)
{
    std::vector<std::unique_ptr<PeModel>> pes;
    pes.push_back(std::make_unique<ScnnPe>());
    pes.push_back(std::make_unique<AntPe>());
    for (const auto &pe : pes) {
        RunConfig config;
        config.numThreads = 2;

        obs::setEnabled(false);
        const auto untraced = runMatmulNetwork(
            *pe, rnnLayers(), 0.9, SparsifyMethod::TopK, config);

        obs::setEnabled(true);
        obs::globalSink().clear();
        const auto traced = runMatmulNetwork(
            *pe, rnnLayers(), 0.9, SparsifyMethod::TopK, config);
        obs::globalSink().clear();
        obs::setEnabled(false);

        expectIdenticalStats(untraced, traced,
                             pe->name() + "/matmul");
    }
}

TEST(ObsOverhead, DisabledTracingLeavesNoRecorder)
{
    obs::setEnabled(false);
    EXPECT_EQ(obs::traceSink(), nullptr);
    RunConfig config;
    config.sampleCap = 1;
    ScnnPe pe;
    runConvNetwork(pe, tinyNetwork(), SparsityProfile::swat(0.9), config);
    // The fast path never installs a thread-local recorder.
    EXPECT_EQ(obs::recorder(), nullptr);
}

TEST(ObsOverhead, ReportOmitsHistogramsUnlessProvided)
{
    RunReport plain;
    const std::string without = plain.toJson(false).dump();
    EXPECT_EQ(without.find("histograms"), std::string::npos);

    RunReport with;
    with.setHistograms(obs::HistogramRegistry{});
    EXPECT_NE(with.toJson(false).dump().find("histograms"),
              std::string::npos);
}

/** Deterministic report JSON of one conv run (no profile section). */
std::string
reportBytes(const NetworkStats &stats)
{
    RunReport report;
    RunMetadata metadata;
    metadata.binary = "obs_overhead_test";
    metadata.threadsEffective = effectiveWorkerCount(2);
    report.setMetadata(metadata);
    report.addNetwork("tiny", stats, 64);
    return report.toJson(false).dump();
}

// Declaration order matters: this test must run before anything in
// this binary enables metrics or host tracing, so it can observe that
// plain runs never install the thread-local shard or span buffer.
TEST(ObsOverhead, MetricsOffInstallsNothing)
{
    EXPECT_FALSE(obs::metrics::enabled());
    EXPECT_FALSE(obs::host::enabled());
    RunConfig config;
    config.sampleCap = 1;
    config.numThreads = 2;
    ScnnPe pe;
    runConvNetwork(pe, tinyNetwork(), SparsityProfile::swat(0.9), config);
    EXPECT_EQ(obs::metrics::shard(), nullptr);
    EXPECT_EQ(obs::host::buf(), nullptr);
}

TEST(ObsOverhead, MetricsDoNotPerturbStatsReportOrSimTrace)
{
    RunConfig config;
    config.sampleCap = 2;
    config.numThreads = 2;
    config.runLabel = "tiny/ant";

    // Baseline: simulated-time tracing on (so there are sim-trace
    // bytes to compare), host metrics and host tracing off.
    AntPe pe;
    obs::setEnabled(true);
    obs::globalSink().clear();
    const auto plain = runConvNetwork(
        pe, tinyNetwork(), SparsityProfile::swat(0.9), config);
    const std::string plain_trace = obs::globalSink().toChromeJson(64);
    obs::globalSink().clear();

    // Metered: identical configuration with the host metrics registry
    // and the host span tracer both collecting.
    obs::metrics::setEnabled(true);
    obs::metrics::threadAttach();
    obs::host::setEnabled(true);
    obs::host::threadAttach("main");
    const auto metered = runConvNetwork(
        pe, tinyNetwork(), SparsityProfile::swat(0.9), config);
    const std::string metered_trace = obs::globalSink().toChromeJson(64);
    obs::globalSink().clear();
    obs::setEnabled(false);
    obs::metrics::setEnabled(false);
    obs::host::setEnabled(false);

    // Host observability recorded something...
    const obs::metrics::Snapshot snap = obs::metrics::snapshot();
    EXPECT_GT(snap.counters[static_cast<std::size_t>(
                  obs::metrics::Counter::RunnerUnits)],
              0u);
    // ...without perturbing stats, report bytes, or sim-trace bytes.
    expectIdenticalStats(plain, metered, "metered/ant");
    EXPECT_EQ(reportBytes(plain), reportBytes(metered));
    EXPECT_EQ(plain_trace, metered_trace);
    obs::metrics::reset();
    obs::host::clear();
}

TEST(ObsOverhead, ReportOmitsHostMetricsUnlessProvided)
{
    RunReport plain;
    const std::string without = plain.toJson(false).dump();
    EXPECT_EQ(without.find("host_metrics"), std::string::npos);

    RunReport with;
    with.setHostMetrics(obs::metrics::Snapshot{});
    EXPECT_NE(with.toJson(false).dump().find("host_metrics"),
              std::string::npos);
}

} // namespace
} // namespace antsim
