/**
 * @file
 * Tests for the analytic RCP model: Table 2 / Table 3 efficiencies and
 * the training-phase shape relations (Fig. 5).
 */

#include <gtest/gtest.h>

#include "conv/rcp_model.hh"

namespace antsim {
namespace {

TEST(RcpModel, Table2RowCount)
{
    EXPECT_EQ(table2Rows().size(), 8u);
}

TEST(RcpModel, Table2MatchesPaperNumbers)
{
    const auto rows = table2Rows();
    // Paper prints: 96.52, 0.07, 23.71, 0.09, 100.00, 0.03, 76.58(*),
    // 3.53(*). (*) the last pair prints as 76.56/3.52 under exact
    // arithmetic (196/256, 9/256); the paper's figures appear to carry
    // a rounding artifact. We assert the exact values.
    EXPECT_NEAR(rows[0].efficiency, 0.9652, 5e-5);
    EXPECT_NEAR(rows[1].efficiency, 0.0007, 5e-5);
    EXPECT_NEAR(rows[2].efficiency, 0.2371, 5e-5);
    EXPECT_NEAR(rows[3].efficiency, 0.0009, 5e-5);
    EXPECT_NEAR(rows[4].efficiency, 1.0000, 1e-9);
    EXPECT_NEAR(rows[5].efficiency, 0.0003, 5e-5);
    EXPECT_NEAR(rows[6].efficiency, 0.765625, 1e-9);
    EXPECT_NEAR(rows[7].efficiency, 9.0 / 256.0, 1e-9);
}

TEST(RcpModel, Table2ShapesMatchPaper)
{
    const auto rows = table2Rows();
    // Row 0: forward 3x3 over 114x114 -> 112x112.
    EXPECT_EQ(rows[0].spec.kernelH(), 3u);
    EXPECT_EQ(rows[0].spec.outH(), 112u);
    // Row 1: update 112x112 over 114x114 -> 3x3.
    EXPECT_EQ(rows[1].spec.kernelH(), 112u);
    EXPECT_EQ(rows[1].spec.outH(), 3u);
    // Row 3: strided update has dilation = 2 and cropped 7x7 output.
    EXPECT_EQ(rows[3].spec.dilation(), 2u);
    EXPECT_EQ(rows[3].spec.outH(), 7u);
    // Row 4: 1x1 conv is 100% efficient.
    EXPECT_EQ(rows[4].spec.kernelH(), 1u);
    EXPECT_EQ(rows[4].spec.outH(), 56u);
}

TEST(RcpModel, Table3MatchesPaperNumbers)
{
    const auto rows = table3Rows();
    ASSERT_EQ(rows.size(), 11u);
    const double want[] = {1.0 / 72, 1.0 / 512, 0.10, 0.10, 1.0 / 64,
                           1.0 / 3,  1.0 / 3,   1.0 / 300, 0.125, 0.125,
                           1.0 / 300};
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_NEAR(rows[i].efficiency, want[i], 1e-9) << "row " << i;
}

TEST(RcpModel, PhaseSpecsForwardBackwardShapesAgree)
{
    // Fig. 5: G_A^{L+1} has the dims of A^{L+1}; for same-padding
    // stride-1 convs the backward image matches the forward image.
    const PhaseSpecs specs = trainingPhaseSpecs(3, 3, 114, 114, 1);
    EXPECT_EQ(specs.forward.outH(), 112u);
    EXPECT_EQ(specs.backward.imageH(), 114u);
    EXPECT_EQ(specs.backward.outH(), 112u);
    EXPECT_EQ(specs.update.kernelH(), 112u);
    EXPECT_EQ(specs.update.outH(), 3u);
}

TEST(RcpModel, PhaseSpecsStridedLayer)
{
    // 3x3 stride-2 pad-1 layer at 28x28 input (padded 30x30).
    const PhaseSpecs specs = trainingPhaseSpecs(3, 3, 30, 30, 2);
    EXPECT_EQ(specs.forward.outH(), 14u);
    // Backward: dilated gradient spans 2*13+1 = 27, re-padded to 29,
    // clipped at the forward image 30 -> output 28 = the layer input.
    EXPECT_EQ(specs.backward.outH(), 28u);
    // Update: gradient kernel dilated by the stride, output 3x3.
    EXPECT_EQ(specs.update.dilation(), 2u);
    EXPECT_EQ(specs.update.outH(), 3u);
}

TEST(RcpModel, UpdateEfficiencyCollapsesVsForward)
{
    // The central claim of Sec. 3.1: the update phase's outer-product
    // efficiency is orders of magnitude below the forward phase's.
    const PhaseSpecs specs = trainingPhaseSpecs(3, 3, 114, 114, 1);
    EXPECT_GT(specs.forward.outerProductEfficiency(), 0.9);
    EXPECT_LT(specs.update.outerProductEfficiency(), 0.001);
    EXPECT_GT(specs.forward.outerProductEfficiency() /
                  specs.update.outerProductEfficiency(),
              1000.0);
}

TEST(RcpModel, OneByOneConvPhases)
{
    const PhaseSpecs specs = trainingPhaseSpecs(1, 1, 56, 56, 1);
    EXPECT_DOUBLE_EQ(specs.forward.outerProductEfficiency(), 1.0);
    EXPECT_EQ(specs.update.outH(), 1u);
    EXPECT_EQ(specs.backward.imageH(), 56u);
}

} // namespace
} // namespace antsim
