/**
 * @file
 * Tests for counters, stats, tables, and the CLI parser.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/counters.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/cli.hh"

namespace antsim {
namespace {

TEST(Counters, StartAtZero)
{
    CounterSet counters;
    for (std::size_t i = 0; i < kNumCounters; ++i)
        EXPECT_EQ(counters.get(static_cast<Counter>(i)), 0u);
}

TEST(Counters, AddAndGet)
{
    CounterSet counters;
    counters.add(Counter::MultsExecuted, 5);
    counters.add(Counter::MultsExecuted);
    EXPECT_EQ(counters.get(Counter::MultsExecuted), 6u);
    EXPECT_EQ(counters.get(Counter::MultsValid), 0u);
}

TEST(Counters, SetOverwrites)
{
    CounterSet counters;
    counters.add(Counter::Cycles, 100);
    counters.set(Counter::Cycles, 7);
    EXPECT_EQ(counters.get(Counter::Cycles), 7u);
}

TEST(Counters, AccumulateElementwise)
{
    CounterSet a;
    CounterSet b;
    a.add(Counter::Cycles, 10);
    b.add(Counter::Cycles, 5);
    b.add(Counter::MultsRcp, 3);
    a += b;
    EXPECT_EQ(a.get(Counter::Cycles), 15u);
    EXPECT_EQ(a.get(Counter::MultsRcp), 3u);
}

TEST(Counters, ScaleByRational)
{
    CounterSet counters;
    counters.add(Counter::MultsExecuted, 10);
    counters.scale(3, 2);
    EXPECT_EQ(counters.get(Counter::MultsExecuted), 15u);
}

TEST(Counters, ScaleRoundsToNearest)
{
    CounterSet counters;
    counters.add(Counter::MultsExecuted, 5);
    counters.scale(1, 2); // 2.5 -> 3
    EXPECT_EQ(counters.get(Counter::MultsExecuted), 3u);
}

TEST(Counters, ScaleIsExactForLargeValues)
{
    // The old floating-point path lost the low bits of counts beyond
    // 2^53; the 128-bit rational path must be exact.
    CounterSet counters;
    const std::uint64_t big = 1000000000000000003ull; // > 2^53, odd
    counters.set(Counter::MultsExecuted, big);
    counters.scale(1, 1);
    EXPECT_EQ(counters.get(Counter::MultsExecuted), big);
    counters.scale(3, 1);
    EXPECT_EQ(counters.get(Counter::MultsExecuted), 3 * big);
}

TEST(Counters, ScaleIntermediateProductDoesNotWrap)
{
    // v * num would wrap 64-bit arithmetic; the result still fits.
    CounterSet counters;
    counters.set(Counter::Cycles, 1ull << 62);
    counters.scale(6, 3);
    EXPECT_EQ(counters.get(Counter::Cycles), 1ull << 63);
}

TEST(CountersDeathTest, ScalePanicsOnOverflowInsteadOfWrapping)
{
    CounterSet counters;
    counters.set(Counter::Cycles, 1ull << 63);
    EXPECT_DEATH(counters.scale(4, 2), "counter overflow scaling");
}

TEST(CountersDeathTest, ScalePanicsOnZeroDenominator)
{
    CounterSet counters;
    EXPECT_DEATH(counters.scale(1, 0),
                 "scale denominator must be positive");
}

TEST(Counters, ResetClearsAll)
{
    CounterSet counters;
    counters.add(Counter::Cycles, 42);
    counters.reset();
    EXPECT_EQ(counters.get(Counter::Cycles), 0u);
}

TEST(Counters, NamesAreUniqueAndNonEmpty)
{
    // The name table in counters.cc is static_assert-sized against the
    // enum; this guards the run-time properties the asserts cannot see.
    std::set<std::string> names;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        const char *name = counterName(static_cast<Counter>(i));
        ASSERT_NE(name, nullptr);
        EXPECT_NE(std::string(name), "");
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate counter name " << name;
    }
    EXPECT_EQ(names.size(), kNumCounters);
}

TEST(CountersDeathTest, NameOfOutOfRangeIdPanics)
{
    EXPECT_DEATH(counterName(Counter::NumCounters), "unknown counter id");
}

TEST(Counters, ToStringListsNonZeroOnly)
{
    CounterSet counters;
    counters.add(Counter::MultsValid, 2);
    const std::string dump = counters.toString();
    EXPECT_NE(dump.find("mults_valid = 2"), std::string::npos);
    EXPECT_EQ(dump.find("mults_rcp"), std::string::npos);
}

TEST(Stats, MeanOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, GeomeanBasic)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Stats, GeomeanSingle)
{
    EXPECT_NEAR(geomean({3.71}), 3.71, 1e-12);
}

TEST(Stats, GeomeanMatchesPaperStyleAggregation)
{
    // Five per-network speedups whose geomean should sit between
    // min and max and below the arithmetic mean.
    const std::vector<double> xs = {2.1, 3.0, 4.5, 5.2, 4.0};
    const double g = geomean(xs);
    EXPECT_GT(g, minOf(xs));
    EXPECT_LT(g, maxOf(xs));
    EXPECT_LT(g, mean(xs));
}

TEST(StatsDeath, GeomeanOfEmptyDies)
{
    // A bench that filters every network out of its selection must not
    // aggregate a phantom geomean; the guard makes that path loud.
    EXPECT_DEATH(geomean({}), "panic: .*geomean of empty set");
}

TEST(StatsDeath, GeomeanOfNonPositiveDies)
{
    EXPECT_DEATH(geomean({2.0, 0.0}),
                 "panic: .*geomean requires positive values");
    EXPECT_DEATH(geomean({-1.0}),
                 "panic: .*geomean requires positive values");
}

TEST(StatsDeath, MinMaxOfEmptyDie)
{
    EXPECT_DEATH(minOf({}), "panic: .*minOf of empty set");
    EXPECT_DEATH(maxOf({}), "panic: .*maxOf of empty set");
}

TEST(Stats, StdDev)
{
    EXPECT_NEAR(stddev({2.0, 4.0}), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(Stats, RunningStats)
{
    RunningStats rs;
    rs.push(2.0);
    rs.push(6.0);
    rs.push(4.0);
    EXPECT_EQ(rs.count(), 3u);
    EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 6.0);
    EXPECT_DOUBLE_EQ(rs.sum(), 12.0);
}

TEST(Table, AlignedOutputContainsCells)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"bb", "22"});
    const std::string text = t.toString();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("22"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, CsvQuotesSpecials)
{
    Table t({"a"});
    t.addRow({"x,y"});
    EXPECT_NE(t.toCsv().find("\"x,y\""), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::times(3.705, 2), "3.71x"); // rounds
    EXPECT_EQ(Table::percent(0.9652, 2), "96.52%");
}

TEST(Cli, ParsesBothFlagForms)
{
    const char *argv[] = {"prog", "--alpha", "3", "--beta=hello",
                          "--flag"};
    Cli cli(5, argv, {"alpha", "beta", "flag"});
    EXPECT_EQ(cli.getInt("alpha", 0), 3);
    EXPECT_EQ(cli.get("beta"), "hello");
    EXPECT_TRUE(cli.getBool("flag"));
    EXPECT_FALSE(cli.getBool("absent"));
    EXPECT_EQ(cli.getInt("absent", 9), 9);
    EXPECT_DOUBLE_EQ(cli.getDouble("absent", 1.5), 1.5);
}

TEST(Cli, HasReportsPresence)
{
    const char *argv[] = {"prog", "--alpha", "1"};
    Cli cli(3, argv, {"alpha", "beta"});
    EXPECT_TRUE(cli.has("alpha"));
    EXPECT_FALSE(cli.has("beta"));
}

} // namespace
} // namespace antsim
