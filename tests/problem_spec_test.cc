/**
 * @file
 * Tests for the ProblemSpec index algebra (Sec. 3 Eqs. 4-12, Sec. 5
 * Eqs. 13-15).
 */

#include <gtest/gtest.h>

#include "conv/problem_spec.hh"

namespace antsim {
namespace {

TEST(ProblemSpec, ConvOutputDims)
{
    const auto s = ProblemSpec::conv(2, 2, 3, 3);
    EXPECT_EQ(s.outH(), 2u);
    EXPECT_EQ(s.outW(), 2u);
    const auto s2 = ProblemSpec::conv(3, 3, 114, 114);
    EXPECT_EQ(s2.outH(), 112u);
    const auto s3 = ProblemSpec::conv(7, 7, 230, 230, 2);
    EXPECT_EQ(s3.outH(), 112u);
    const auto s4 = ProblemSpec::conv(3, 3, 30, 30, 2);
    EXPECT_EQ(s4.outH(), 14u);
}

TEST(ProblemSpec, DilatedConvOutputDims)
{
    // Effective kernel extent = dil*(k-1)+1.
    const auto s = ProblemSpec::conv(14, 14, 30, 30, 1, 2);
    EXPECT_EQ(s.outH(), 4u);
}

TEST(ProblemSpec, OutDimsOverride)
{
    const auto s = ProblemSpec::convWithOutDims(14, 14, 30, 30, 3, 3, 1, 2);
    EXPECT_EQ(s.outH(), 3u);
    EXPECT_EQ(s.outW(), 3u);
}

TEST(ProblemSpecDeathTest, OverrideCannotExceedNatural)
{
    EXPECT_DEATH(ProblemSpec::convWithOutDims(3, 3, 8, 8, 7, 7), "exceeds");
}

TEST(ProblemSpecDeathTest, KernelLargerThanImage)
{
    EXPECT_DEATH(ProblemSpec::conv(5, 5, 4, 4), "exceeds image");
}

TEST(ProblemSpec, Figure2aProductValidity)
{
    // The 2x2 kernel over 3x3 image example of Fig. 2a/2d.
    const auto s = ProblemSpec::conv(2, 2, 3, 3);
    // Kernel element (s=1, r=1) with image element (x=0, y=0): shift
    // would be negative -> RCP (case a/b of Fig. 4).
    EXPECT_FALSE(s.isValid(0, 0, 1, 1));
    // Kernel (0,0) with image (2,2): out index (2,2) exceeds 2x2 -> RCP.
    EXPECT_FALSE(s.isValid(2, 2, 0, 0));
    // Kernel (1,1) with image (2,2): out (1,1) valid.
    const auto out = s.outputIndex(2, 2, 1, 1);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->x, 1u);
    EXPECT_EQ(out->y, 1u);
}

TEST(ProblemSpec, OutputIndexMatchesEquations4And5)
{
    const auto s = ProblemSpec::conv(3, 3, 10, 10, 1);
    // out = (img - ker) / stride.
    const auto out = s.outputIndex(5, 7, 2, 1);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->x, 3u);
    EXPECT_EQ(out->y, 6u);
}

TEST(ProblemSpec, StrideDivisibilityMakesRcp)
{
    const auto s = ProblemSpec::conv(3, 3, 11, 11, 2);
    // (x=1, s=0) -> dx = 1, odd under stride 2 -> no output index.
    EXPECT_FALSE(s.outputIndex(1, 0, 0, 0).has_value());
    // (x=2, s=0) -> out 1, valid (y=0, r=0 -> out row 0).
    EXPECT_TRUE(s.outputIndex(2, 0, 0, 0).has_value());
}

TEST(ProblemSpec, SRangeMatchesEq11AtStride1)
{
    const auto s = ProblemSpec::conv(5, 5, 12, 12);
    // Eq. 11: s_min = x_min - W_out + 1, s_max = x_max, clamped.
    const IndexRange r = s.sRange(9, 11);
    EXPECT_EQ(r.lo, 9 - 8 + 1);
    EXPECT_EQ(r.hi, 4); // clamped to S-1
}

TEST(ProblemSpec, SRangeClampsToZero)
{
    const auto s = ProblemSpec::conv(5, 5, 12, 12);
    const IndexRange r = s.sRange(0, 3);
    EXPECT_EQ(r.lo, 0);
    EXPECT_EQ(r.hi, 3);
}

TEST(ProblemSpec, RRangeMatchesEq12AtStride1)
{
    const auto s = ProblemSpec::conv(4, 4, 10, 10);
    const IndexRange r = s.rRange(8, 9);
    // r_min = y_0 - H_out + 1 = 8 - 7 + 1 = 2; r_max = min(9, 3) = 3.
    EXPECT_EQ(r.lo, 2);
    EXPECT_EQ(r.hi, 3);
}

TEST(ProblemSpec, RangeSoundness)
{
    // Property: every valid product's s lies in sRange of its x (and
    // r in rRange of its y) -- the ranges are necessary conditions.
    for (std::uint32_t stride : {1u, 2u}) {
        for (std::uint32_t dil : {1u, 2u}) {
            const auto s = ProblemSpec::conv(4, 4, 16, 16, stride, dil);
            for (std::uint32_t x = 0; x < 16; ++x) {
                for (std::uint32_t y = 0; y < 16; ++y) {
                    for (std::uint32_t ks = 0; ks < 4; ++ks) {
                        for (std::uint32_t kr = 0; kr < 4; ++kr) {
                            if (!s.isValid(x, y, ks, kr))
                                continue;
                            EXPECT_TRUE(s.sRangeIdeal(x).contains(ks));
                            EXPECT_TRUE(s.rRangeIdeal(y).contains(kr));
                        }
                    }
                }
            }
        }
    }
}

TEST(ProblemSpec, IdealRangeTightAtStride1)
{
    // At stride = dilation = 1 the per-element range test is also
    // sufficient: everything in range is a valid product (this is why
    // Algorithm 1 eliminates all RCPs).
    const auto s = ProblemSpec::conv(3, 3, 9, 9);
    for (std::uint32_t x = 0; x < 9; ++x) {
        for (std::uint32_t y = 0; y < 9; ++y) {
            for (std::uint32_t ks = 0; ks < 3; ++ks) {
                for (std::uint32_t kr = 0; kr < 3; ++kr) {
                    const bool in_range =
                        s.sRangeIdeal(x).contains(ks) &&
                        s.rRangeIdeal(y).contains(kr);
                    EXPECT_EQ(in_range, s.isValid(x, y, ks, kr));
                }
            }
        }
    }
}

TEST(ProblemSpec, Efficiency96Point52)
{
    const auto s = ProblemSpec::conv(3, 3, 114, 114);
    EXPECT_NEAR(s.outerProductEfficiency(), 0.9652, 1e-4);
}

TEST(ProblemSpec, DenseProductCounts)
{
    const auto s = ProblemSpec::conv(2, 2, 3, 3);
    EXPECT_EQ(s.denseCartesianProducts(), 4ull * 9);
    EXPECT_EQ(s.denseValidProducts(), 4ull * 4);
}

TEST(ProblemSpec, MatmulDims)
{
    const auto s = ProblemSpec::matmul(512, 72, 72, 512);
    EXPECT_EQ(s.outH(), 512u);
    EXPECT_EQ(s.outW(), 512u);
    EXPECT_NEAR(s.outerProductEfficiency(), 1.0 / 72.0, 1e-9);
}

TEST(ProblemSpecDeathTest, MatmulInnerDimsMustAgree)
{
    EXPECT_DEATH(ProblemSpec::matmul(4, 5, 6, 7), "inner dims");
}

TEST(ProblemSpec, MatmulValidityIsEq14)
{
    const auto s = ProblemSpec::matmul(4, 5, 5, 6);
    EXPECT_TRUE(s.isValid(3, 2, 4, 3));  // r == x
    EXPECT_FALSE(s.isValid(3, 2, 4, 2)); // r != x
    const auto out = s.outputIndex(3, 2, 4, 3);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->x, 4u); // out_x = s
    EXPECT_EQ(out->y, 2u); // out_y = y
}

TEST(ProblemSpec, MatmulRowRangeIsEq15)
{
    const auto s = ProblemSpec::matmul(4, 9, 9, 3);
    const IndexRange r = s.matmulRowRange(2, 7);
    EXPECT_EQ(r.lo, 2);
    EXPECT_EQ(r.hi, 7);
}

TEST(ProblemSpec, MatmulSRangeIsUnconstrained)
{
    const auto s = ProblemSpec::matmul(4, 9, 9, 3);
    const IndexRange r = s.sRange(0, 8);
    EXPECT_EQ(r.lo, 0);
    EXPECT_EQ(r.hi, 2);
}

TEST(IndexRange, Basics)
{
    const IndexRange r{2, 5};
    EXPECT_FALSE(r.empty());
    EXPECT_EQ(r.count(), 4);
    EXPECT_TRUE(r.contains(2));
    EXPECT_TRUE(r.contains(5));
    EXPECT_FALSE(r.contains(6));
    const IndexRange e{3, 1};
    EXPECT_TRUE(e.empty());
    EXPECT_EQ(e.count(), 0);
}

TEST(ProblemSpec, ToStringMentionsShape)
{
    const auto s = ProblemSpec::conv(3, 3, 8, 8);
    EXPECT_NE(s.toString().find("3x3"), std::string::npos);
    const auto m = ProblemSpec::matmul(4, 5, 5, 6);
    EXPECT_NE(m.toString().find("matmul"), std::string::npos);
}

} // namespace
} // namespace antsim
