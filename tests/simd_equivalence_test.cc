/**
 * @file
 * The SIMD dispatch layer's central guarantee (docs/MODEL.md Sec. 11):
 * the AVX2 kernels are bit-identical to their scalar ground truths.
 * Simulated counters are integers and the float kernels only reorder
 * exact operations (sign-mask fabs, ordered compares, u32/u64
 * wrap-around sums), so forcing --simd=scalar vs --simd=avx2 must
 * produce byte-identical NetworkStats -- every counter, every layer,
 * every phase -- and byte-identical Chrome trace JSON, at every thread
 * count. Skipped (not silently passed) on hardware without AVX2.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "obs/trace.hh"
#include "scnn/scnn_pe.hh"
#include "util/simd.hh"
#include "workload/runner.hh"
#include "workload/tracegen.hh"

namespace antsim {
namespace {

/** Force a SIMD mode for one scope; restore on exit however it ends. */
class SimdScope
{
  public:
    explicit SimdScope(simd::Mode mode) : saved_(simd::mode())
    {
        simd::setMode(mode);
    }

    ~SimdScope() { simd::setMode(saved_); }

  private:
    simd::Mode saved_;
};

/** Restore the global tracing state however a test exits. */
class TracingScope
{
  public:
    TracingScope()
    {
        obs::setEnabled(true);
        obs::globalSink().clear();
    }

    ~TracingScope()
    {
        obs::globalSink().clear();
        obs::setEnabled(false);
    }
};

/** First layers of ResNet18: covers conv shapes, strides, padding. */
std::vector<ConvLayer>
resnet18Slice()
{
    std::vector<ConvLayer> layers = resnet18Cifar();
    layers.resize(4);
    return layers;
}

/** Byte-identical NetworkStats: all counters, all layers, all phases. */
void
expectIdenticalStats(const NetworkStats &expected, const NetworkStats &got,
                     const std::string &context)
{
    for (std::size_t c = 0; c < kNumCounters; ++c) {
        const auto counter = static_cast<Counter>(c);
        EXPECT_EQ(expected.total.get(counter), got.total.get(counter))
            << context << ": total " << counterName(counter);
    }
    ASSERT_EQ(expected.layers.size(), got.layers.size()) << context;
    for (std::size_t li = 0; li < expected.layers.size(); ++li) {
        const LayerStats &el = expected.layers[li];
        const LayerStats &gl = got.layers[li];
        for (std::size_t pi = 0; pi < el.phases.size(); ++pi) {
            const PhaseStats &ep = el.phases[pi];
            const PhaseStats &gp = gl.phases[pi];
            for (std::size_t c = 0; c < kNumCounters; ++c) {
                const auto counter = static_cast<Counter>(c);
                EXPECT_EQ(ep.counters.get(counter),
                          gp.counters.get(counter))
                    << context << ": layer " << el.name << " phase "
                    << pi << " " << counterName(counter);
            }
        }
    }
}

/** One conv run of @p pe with the given SIMD mode forced. */
NetworkStats
convRun(PeModel &pe, simd::Mode mode, std::uint32_t threads)
{
    SimdScope simd(mode);
    RunConfig config;
    config.sampleCap = 2;
    config.numThreads = threads;
    return runConvNetwork(pe, resnet18Slice(), SparsityProfile::swat(0.9),
                          config);
}

/** Run both evaluated PE models and export the combined trace. */
std::string
tracedRun(simd::Mode mode, std::uint32_t threads)
{
    SimdScope simd(mode);
    TracingScope tracing;
    RunConfig config;
    config.sampleCap = 2;
    config.numThreads = threads;

    ScnnPe scnn;
    config.runLabel = "scnn/resnet18-slice";
    runConvNetwork(scnn, resnet18Slice(), SparsityProfile::swat(0.9),
                   config);
    AntPe ant;
    config.runLabel = "ant/resnet18-slice";
    runConvNetwork(ant, resnet18Slice(), SparsityProfile::swat(0.9),
                   config);
    return obs::globalSink().toChromeJson(config.numPes);
}

#define ANTSIM_REQUIRE_AVX2()                                             \
    do {                                                                  \
        if (!simd::cpuHasAvx2())                                          \
            GTEST_SKIP() << "CPU lacks AVX2; scalar path is the only "    \
                            "path and is covered by the rest of the "     \
                            "suite";                                      \
    } while (0)

TEST(SimdEquivalence, ConvStatsBitIdenticalScalarVsAvx2)
{
    ANTSIM_REQUIRE_AVX2();
    std::vector<std::unique_ptr<PeModel>> pes;
    pes.push_back(std::make_unique<ScnnPe>());
    pes.push_back(std::make_unique<AntPe>());
    pes.push_back(std::make_unique<DenseInnerProductPe>());
    pes.push_back(std::make_unique<TensorDashPe>());
    for (const auto &pe : pes) {
        const NetworkStats scalar = convRun(*pe, simd::Mode::Scalar, 1);
        const NetworkStats avx2 = convRun(*pe, simd::Mode::Avx2, 1);
        expectIdenticalStats(scalar, avx2, pe->name() + "/scalar-vs-avx2");
    }
}

TEST(SimdEquivalence, MatmulStatsBitIdenticalScalarVsAvx2)
{
    ANTSIM_REQUIRE_AVX2();
    // Matmul exercises the CSC image path and the AntPe matmul window
    // walk on top of the shared CSR/census/trace-cache kernels.
    std::vector<std::unique_ptr<PeModel>> pes;
    pes.push_back(std::make_unique<ScnnPe>());
    pes.push_back(std::make_unique<AntPe>());
    for (const auto &pe : pes) {
        RunConfig config;
        NetworkStats scalar, avx2;
        {
            SimdScope simd(simd::Mode::Scalar);
            scalar = runMatmulNetwork(*pe, rnnLayers(), 0.9,
                                      SparsifyMethod::TopK, config);
        }
        {
            SimdScope simd(simd::Mode::Avx2);
            avx2 = runMatmulNetwork(*pe, rnnLayers(), 0.9,
                                    SparsifyMethod::TopK, config);
        }
        expectIdenticalStats(scalar, avx2,
                             pe->name() + "/matmul/scalar-vs-avx2");
    }
}

TEST(SimdEquivalence, ChromeTraceByteIdenticalScalarVsAvx2)
{
    ANTSIM_REQUIRE_AVX2();
    // The trace is the most sensitive artifact: any cycle-count or
    // span drift between the two code paths shows up as a byte diff.
    // Cross thread counts too, so SIMD x parallelism compose.
    const std::string scalar = tracedRun(simd::Mode::Scalar, 1);
    ASSERT_FALSE(scalar.empty());
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
        const std::string avx2 = tracedRun(simd::Mode::Avx2, threads);
        if (avx2 == scalar)
            continue;
        std::size_t at = 0;
        while (at < scalar.size() && at < avx2.size() &&
               scalar[at] == avx2[at])
            ++at;
        FAIL() << "avx2 trace at " << threads
               << " threads diverges from scalar at byte " << at << ": "
               << scalar.substr(at > 40 ? at - 40 : 0, 80) << " vs "
               << avx2.substr(at > 40 ? at - 40 : 0, 80);
    }
}

TEST(SimdEquivalence, ModeParsingAndNames)
{
    simd::Mode mode = simd::Mode::Auto;
    EXPECT_TRUE(simd::parseMode("scalar", mode));
    EXPECT_EQ(mode, simd::Mode::Scalar);
    EXPECT_TRUE(simd::parseMode("avx2", mode));
    EXPECT_EQ(mode, simd::Mode::Avx2);
    EXPECT_TRUE(simd::parseMode("auto", mode));
    EXPECT_EQ(mode, simd::Mode::Auto);
    EXPECT_FALSE(simd::parseMode("sse9", mode));
    EXPECT_STREQ(simd::modeName(simd::Mode::Scalar), "scalar");
    EXPECT_STREQ(simd::modeName(simd::Mode::Avx2), "avx2");
    EXPECT_STREQ(simd::modeName(simd::Mode::Auto), "auto");
}

TEST(SimdEquivalence, ScalarModeDisablesAvx2Dispatch)
{
    SimdScope scope(simd::Mode::Scalar);
    EXPECT_FALSE(simd::avx2Enabled());
}

} // namespace
} // namespace antsim
