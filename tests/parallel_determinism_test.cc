/**
 * @file
 * The parallel engine's central guarantee: for every PE model,
 * runConvNetwork produces byte-identical NetworkStats -- every
 * counter, every layer, every phase -- at every thread count (the
 * clone-per-worker + ordered-reduction design, DESIGN.md "Parallel
 * execution model"). Checked across 3 seeds and 2 networks for thread
 * counts {1, 2, 8}, plus the matmul runner and the tick-accurate
 * pipeline model's parallel plan construction.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ant/ant_pe.hh"
#include "ant/ant_pipeline.hh"
#include "baselines/inner_product.hh"
#include "scnn/scnn_pe.hh"
#include "workload/runner.hh"
#include "workload/tracegen.hh"

namespace antsim {
namespace {

/** The 1-thread (serial-path) run everything must reproduce. */
constexpr std::uint32_t kSerial = 1;
constexpr std::uint32_t kThreadCounts[] = {2, 8};
constexpr std::uint64_t kSeeds[] = {7, 42, 1234};

std::vector<ConvLayer>
tinyNetwork()
{
    return {
        {"l0", 2, 16, 24, 24, 3, 1, 1},
        {"l1", 16, 16, 24, 24, 3, 2, 1},
        {"l2", 16, 8, 12, 12, 1, 1, 0},
    };
}

/** The two evaluated networks: a paper network and a miniature one. */
std::vector<std::pair<const char *, std::vector<ConvLayer>>>
testNetworks()
{
    return {{"resnet18", resnet18Cifar()}, {"tiny", tinyNetwork()}};
}

std::vector<std::unique_ptr<PeModel>>
allPeModels()
{
    std::vector<std::unique_ptr<PeModel>> pes;
    pes.push_back(std::make_unique<ScnnPe>());
    pes.push_back(std::make_unique<AntPe>());
    pes.push_back(std::make_unique<DenseInnerProductPe>());
    pes.push_back(std::make_unique<TensorDashPe>());
    return pes;
}

/** Byte-identical NetworkStats: all counters, all layers, all phases. */
void
expectIdenticalStats(const NetworkStats &expected, const NetworkStats &got,
                     const std::string &context)
{
    for (std::size_t c = 0; c < kNumCounters; ++c) {
        const auto counter = static_cast<Counter>(c);
        EXPECT_EQ(expected.total.get(counter), got.total.get(counter))
            << context << ": total " << counterName(counter);
    }
    ASSERT_EQ(expected.layers.size(), got.layers.size()) << context;
    for (std::size_t li = 0; li < expected.layers.size(); ++li) {
        const LayerStats &el = expected.layers[li];
        const LayerStats &gl = got.layers[li];
        EXPECT_EQ(el.name, gl.name) << context;
        for (std::size_t pi = 0; pi < el.phases.size(); ++pi) {
            const PhaseStats &ep = el.phases[pi];
            const PhaseStats &gp = gl.phases[pi];
            EXPECT_EQ(ep.pairsTotal, gp.pairsTotal)
                << context << ": layer " << el.name << " phase " << pi;
            EXPECT_EQ(ep.pairsSimulated, gp.pairsSimulated)
                << context << ": layer " << el.name << " phase " << pi;
            for (std::size_t c = 0; c < kNumCounters; ++c) {
                const auto counter = static_cast<Counter>(c);
                EXPECT_EQ(ep.counters.get(counter),
                          gp.counters.get(counter))
                    << context << ": layer " << el.name << " phase "
                    << pi << " " << counterName(counter);
            }
        }
    }
}

TEST(ParallelDeterminism, ConvNetworkBitIdenticalAcrossThreadCounts)
{
    for (const auto &pe : allPeModels()) {
        for (const auto &[net_name, layers] : testNetworks()) {
            for (const std::uint64_t seed : kSeeds) {
                RunConfig config;
                config.sampleCap = 2;
                config.seed = seed;
                config.numThreads = kSerial;
                const auto serial = runConvNetwork(
                    *pe, layers, SparsityProfile::swat(0.9), config);
                for (const std::uint32_t threads : kThreadCounts) {
                    config.numThreads = threads;
                    const auto parallel = runConvNetwork(
                        *pe, layers, SparsityProfile::swat(0.9), config);
                    expectIdenticalStats(
                        serial, parallel,
                        pe->name() + "/" + net_name + "/seed " +
                            std::to_string(seed) + "/" +
                            std::to_string(threads) + " threads");
                }
            }
        }
    }
}

TEST(ParallelDeterminism, HardwareConcurrencyMatchesSerial)
{
    // numThreads = 0 (all hardware threads) is the bench default; it
    // must reproduce the serial run too.
    ScnnPe pe;
    RunConfig config;
    config.sampleCap = 2;
    config.numThreads = kSerial;
    const auto serial = runConvNetwork(pe, tinyNetwork(),
                                       SparsityProfile::swat(0.9), config);
    config.numThreads = 0;
    const auto parallel = runConvNetwork(
        pe, tinyNetwork(), SparsityProfile::swat(0.9), config);
    expectIdenticalStats(serial, parallel, "hardware concurrency");
}

TEST(ParallelDeterminism, MatmulNetworkBitIdenticalAcrossThreadCounts)
{
    // Matmul specs are cartesian-machine territory: the inner-product
    // baselines model convolutions only (see Sec. 7.7), so only the
    // SCNN-like and ANT PEs run here.
    std::vector<std::unique_ptr<PeModel>> pes;
    pes.push_back(std::make_unique<ScnnPe>());
    pes.push_back(std::make_unique<AntPe>());
    for (const auto &pe : pes) {
        for (const std::uint64_t seed : kSeeds) {
            RunConfig config;
            config.seed = seed;
            config.numThreads = kSerial;
            const auto serial = runMatmulNetwork(
                *pe, rnnLayers(), 0.9, SparsifyMethod::TopK, config);
            for (const std::uint32_t threads : kThreadCounts) {
                config.numThreads = threads;
                const auto parallel = runMatmulNetwork(
                    *pe, rnnLayers(), 0.9, SparsifyMethod::TopK, config);
                expectIdenticalStats(serial, parallel,
                                     pe->name() + "/matmul/seed " +
                                         std::to_string(seed));
            }
        }
    }
}

TEST(ParallelDeterminism, PipelineModelPlanConstruction)
{
    // The tick-accurate model's parallel per-group plan construction
    // must not perturb the simulated outcome.
    Rng rng(99);
    const PlanePair pair = makeConvPhasePair(
        ConvLayer{"p", 8, 8, 24, 24, 3, 1, 1}, TrainingPhase::Update,
        SparsityProfile::swat(0.9), rng);
    const AntPipelineModel ticks;
    const auto serial = ticks.run(pair.spec, pair.kernel, pair.image, 1);
    for (const std::uint32_t threads : kThreadCounts) {
        const auto parallel =
            ticks.run(pair.spec, pair.kernel, pair.image, threads);
        EXPECT_EQ(serial.cycles, parallel.cycles);
        EXPECT_EQ(serial.executed, parallel.executed);
        EXPECT_EQ(serial.valid, parallel.valid);
        EXPECT_EQ(serial.residualRcps, parallel.residualRcps);
        EXPECT_EQ(serial.fnirEvaluations, parallel.fnirEvaluations);
    }
}

} // namespace
} // namespace antsim
