/**
 * @file
 * Tests for the 64-byte-aligned arena allocator (util/arena.hh) that
 * backs the SoA CSR/CSC storage, and for the alignment guarantee the
 * SIMD kernels (docs/MODEL.md Sec. 11) rely on: every values/columns/
 * row-pointer buffer of every construction path starts on a 64-byte
 * boundary.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/csr.hh"
#include "tensor/sparsify.hh"
#include "util/arena.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

bool
aligned64(const void *p)
{
    return reinterpret_cast<std::uintptr_t>(p) % Arena::kAlignment == 0;
}

TEST(Arena, AlignedRoundsUpToBlockAlignment)
{
    EXPECT_EQ(Arena::aligned(0), 0u);
    EXPECT_EQ(Arena::aligned(1), 64u);
    EXPECT_EQ(Arena::aligned(64), 64u);
    EXPECT_EQ(Arena::aligned(65), 128u);
}

TEST(Arena, EveryBlockIs64ByteAligned)
{
    Arena arena(1024);
    // Odd-sized blocks so misalignment would show immediately.
    const std::size_t a = arena.alloc<float>(3);
    const std::size_t b = arena.alloc<std::uint32_t>(7);
    const std::size_t c = arena.alloc<std::uint8_t>(1);
    EXPECT_TRUE(aligned64(arena.ptr<float>(a)));
    EXPECT_TRUE(aligned64(arena.ptr<std::uint32_t>(b)));
    EXPECT_TRUE(aligned64(arena.ptr<std::uint8_t>(c)));
    EXPECT_EQ(arena.used() % Arena::kAlignment, 0u);
}

TEST(Arena, BlocksAreZeroInitialized)
{
    Arena arena(256);
    const std::size_t off = arena.alloc<std::uint32_t>(16);
    const std::uint32_t *p = arena.ptr<std::uint32_t>(off);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(p[i], 0u);
}

TEST(Arena, CopyIsDeepAndOffsetsStayValid)
{
    Arena a(256);
    const std::size_t off = a.alloc<std::uint32_t>(4);
    a.ptr<std::uint32_t>(off)[0] = 7;

    Arena b(a);
    EXPECT_EQ(b.ptr<std::uint32_t>(off)[0], 7u);
    // Mutating the original must not show through the copy.
    a.ptr<std::uint32_t>(off)[0] = 99;
    EXPECT_EQ(b.ptr<std::uint32_t>(off)[0], 7u);
    EXPECT_TRUE(aligned64(b.ptr<std::uint32_t>(off)));
}

TEST(Arena, MoveTransfersTheSlab)
{
    Arena a(256);
    const std::size_t off = a.alloc<float>(2);
    a.ptr<float>(off)[1] = 2.5f;
    const Arena b(std::move(a));
    EXPECT_EQ(b.ptr<float>(off)[1], 2.5f);
    EXPECT_EQ(a.capacity(), 0u); // NOLINT: moved-from state is defined
}

TEST(ArenaDeathTest, OverflowPanicsInsteadOfCorrupting)
{
    Arena arena(64);
    arena.alloc<std::uint32_t>(16); // fills the slab exactly
    EXPECT_DEATH(arena.alloc<std::uint32_t>(1), "arena overflow");
}

TEST(AlignedVec, StorageStays64ByteAlignedAcrossGrowth)
{
    AlignedVec<std::uint32_t> v;
    for (std::uint32_t i = 0; i < 1000; ++i) {
        v.push_back(i);
        ASSERT_TRUE(aligned64(v.data()));
    }
    for (std::uint32_t i = 0; i < 1000; ++i)
        ASSERT_EQ(v[i], i);
}

TEST(AlignedVec, AppendAndFillMatchPushBack)
{
    const std::vector<std::uint32_t> src = {5, 4, 3, 2, 1};
    AlignedVec<std::uint32_t> v;
    v.append(src.data(), src.size());
    v.appendFill(9u, 3);
    ASSERT_EQ(v.size(), 8u);
    for (std::size_t i = 0; i < src.size(); ++i)
        EXPECT_EQ(v[i], src[i]);
    for (std::size_t i = src.size(); i < 8; ++i)
        EXPECT_EQ(v[i], 9u);
    v.clear();
    EXPECT_TRUE(v.empty());
    EXPECT_GE(v.capacity(), 8u); // clear keeps the allocation
}

/** Every CSR/CSC construction path must hand out 64-byte-aligned SoA
 * buffers -- this is what lets the SIMD kernels use full-width loads
 * without a peeling prologue. */
TEST(ArenaLayout, AllCsrConstructionPathsAre64ByteAligned)
{
    Rng rng(11);
    const Dense2d<float> plane = bernoulliPlane(13, 9, 0.5, rng);

    const auto check_csr = [](const CsrMatrix &m, const char *what) {
        EXPECT_TRUE(aligned64(m.values().data())) << what;
        EXPECT_TRUE(aligned64(m.columns().data())) << what;
        EXPECT_TRUE(aligned64(m.rowPtr().data())) << what;
    };

    const CsrMatrix from_dense = CsrMatrix::fromDense(plane);
    check_csr(from_dense, "fromDense");
    check_csr(from_dense.rotated180(), "rotated180");
    check_csr(from_dense.transposed(), "transposed");
    check_csr(CsrMatrix(4, 4), "empty");
    check_csr(CsrMatrix::fromRaw(2, 3, {1.0f, 2.0f}, {0, 2}, {0, 1, 2}),
              "fromRaw");
    check_csr(CsrMatrix::fromCoo(3, 3, {{1.0f, 2, 1}, {3.0f, 0, 0}}),
              "fromCoo");

    const CsrMatrix copy = from_dense; // offsets survive the deep copy
    check_csr(copy, "copy");
    EXPECT_TRUE(copy == from_dense);

    const auto check_csc = [](const CscMatrix &m, const char *what) {
        EXPECT_TRUE(aligned64(m.values().data())) << what;
        EXPECT_TRUE(aligned64(m.rows().data())) << what;
        EXPECT_TRUE(aligned64(m.colPtr().data())) << what;
    };
    check_csc(CscMatrix::fromDense(plane), "csc fromDense");
    check_csc(CscMatrix::fromCsr(from_dense), "csc fromCsr");
}

} // namespace
} // namespace antsim
