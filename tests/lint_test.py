#!/usr/bin/env python3
"""ctest suite for scripts/antsim_lint.py.

Per-rule fixture triples under tests/lint_fixtures/<rule>/ prove each
rule fires on a violating example, stays quiet on clean code, and
honors justified inline suppressions (including under --strict, which
additionally demands every suppression be *used*). On top of the
fixtures: the suppression meta rules, SARIF emission, the result
cache, and the regression gate that the whole repository lints clean.

Only the Python standard library is used (the CI runner deliberately
has no third-party packages installed); run directly or via ctest:

    python3 tests/lint_test.py -v
"""

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINTER = os.path.join(REPO_ROOT, "scripts", "antsim_lint.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")

# rule id -> (fixture dir, expected finding count in fire.cc)
RULE_FIXTURES = {
    "no-unordered-iteration": ("no_unordered_iteration", 3),
    "no-wall-clock-in-sim": ("no_wall_clock_in_sim", 6),
    "parallel-capture-discipline": ("parallel_capture_discipline", 2),
    "no-pointer-keyed-order": ("no_pointer_keyed_order", 2),
    "clone-completeness": ("clone_completeness", 2),
    "counter-exactness": ("counter_exactness", 5),
}


def run_lint(*args, strict=True):
    """Run the linter (cache disabled, strict by default) and return
    (exit code, stdout lines)."""
    cmd = [sys.executable, LINTER, "--no-cache", "--quiet"]
    if strict:
        cmd.append("--strict")
    cmd.extend(args)
    proc = subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True,
                          text=True)
    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    return proc.returncode, lines


def rules_of(lines):
    """Extract the rule id from each 'path:line:col: rule: msg' line."""
    out = []
    for line in lines:
        m = re.match(r"[^:]+:\d+:\d+:\s*([a-z-]+):", line)
        if m:
            out.append(m.group(1))
    return out


class PerRuleFixtures(unittest.TestCase):
    """fire / clean / suppressed triple for every contract rule."""

    def fixture(self, rule, name):
        return os.path.join(FIXTURES, RULE_FIXTURES[rule][0], name)

    def test_fire(self):
        for rule, (_, expected) in RULE_FIXTURES.items():
            with self.subTest(rule=rule):
                code, lines = run_lint(self.fixture(rule, "fire.cc"),
                                       strict=False)
                self.assertEqual(code, 1,
                                 f"{rule}/fire.cc should fail:\n" +
                                 "\n".join(lines))
                fired = rules_of(lines)
                self.assertEqual(fired, [rule] * expected,
                                 f"{rule}/fire.cc findings: {lines}")

    def test_clean(self):
        for rule in RULE_FIXTURES:
            with self.subTest(rule=rule):
                code, lines = run_lint(self.fixture(rule, "clean.cc"))
                self.assertEqual(
                    code, 0,
                    f"{rule}/clean.cc should pass (strict):\n" +
                    "\n".join(lines))

    def test_suppressed(self):
        # Strict mode also proves each suppression is used (no
        # unused-suppression finding) and justified (no
        # bad-suppression finding).
        for rule in RULE_FIXTURES:
            with self.subTest(rule=rule):
                code, lines = run_lint(
                    self.fixture(rule, "suppressed.cc"))
                self.assertEqual(
                    code, 0,
                    f"{rule}/suppressed.cc should pass (strict):\n" +
                    "\n".join(lines))


class SuppressionMetaRules(unittest.TestCase):
    FIRE = os.path.join(FIXTURES, "suppression_meta", "fire.cc")
    CLEAN = os.path.join(FIXTURES, "suppression_meta", "clean.cc")

    def test_bad_suppressions_fire_by_default(self):
        code, lines = run_lint(self.FIRE, strict=False)
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(lines),
                         ["bad-suppression", "bad-suppression"])

    def test_strict_adds_unused_suppression(self):
        code, lines = run_lint(self.FIRE)
        self.assertEqual(code, 1)
        self.assertEqual(
            sorted(rules_of(lines)),
            ["bad-suppression", "bad-suppression", "unused-suppression"])

    def test_used_justified_suppression_is_clean_under_strict(self):
        code, lines = run_lint(self.CLEAN)
        self.assertEqual(code, 0, "\n".join(lines))


class SarifOutput(unittest.TestCase):
    def test_sarif_document(self):
        fire = os.path.join(FIXTURES, "no_unordered_iteration",
                            "fire.cc")
        with tempfile.TemporaryDirectory() as tmp:
            sarif_path = os.path.join(tmp, "out.sarif")
            code, lines = run_lint(fire, "--sarif", sarif_path,
                                   strict=False)
            self.assertEqual(code, 1)
            with open(sarif_path, encoding="utf-8") as f:
                doc = json.load(f)
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "antsim-lint")
        results = run["results"]
        self.assertEqual(len(results), len(lines))
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for result in results:
            self.assertEqual(result["ruleId"], "no-unordered-iteration")
            self.assertEqual(
                rule_ids[result["ruleIndex"]], result["ruleId"])
            region = result["locations"][0]["physicalLocation"]["region"]
            self.assertGreaterEqual(region["startLine"], 1)
            self.assertGreaterEqual(region["startColumn"], 1)

    def test_sarif_empty_on_clean(self):
        clean = os.path.join(FIXTURES, "no_unordered_iteration",
                             "clean.cc")
        with tempfile.TemporaryDirectory() as tmp:
            sarif_path = os.path.join(tmp, "out.sarif")
            code, _ = run_lint(clean, "--sarif", sarif_path)
            self.assertEqual(code, 0)
            with open(sarif_path, encoding="utf-8") as f:
                doc = json.load(f)
        self.assertEqual(doc["runs"][0]["results"], [])


class ResultCache(unittest.TestCase):
    def test_cache_reuse_and_invalidation(self):
        fire_src = os.path.join(FIXTURES, "no_pointer_keyed_order",
                                "fire.cc")
        with tempfile.TemporaryDirectory() as tmp:
            work = os.path.join(tmp, "work.cc")
            cache = os.path.join(tmp, "cache")
            shutil.copyfile(fire_src, work)

            def lint_cached():
                proc = subprocess.run(
                    [sys.executable, LINTER, "--quiet",
                     "--cache-dir", cache, work],
                    cwd=REPO_ROOT, capture_output=True, text=True)
                return proc.returncode, [
                    l for l in proc.stdout.splitlines() if l.strip()]

            code1, lines1 = lint_cached()
            code2, lines2 = lint_cached()  # served from cache
            self.assertEqual((code1, lines1), (code2, lines2))
            self.assertEqual(code1, 1)
            self.assertTrue(os.listdir(cache), "cache should be populated")

            # Editing the file must invalidate its cache entry.
            clean_src = os.path.join(FIXTURES, "no_pointer_keyed_order",
                                     "clean.cc")
            shutil.copyfile(clean_src, work)
            code3, lines3 = lint_cached()
            self.assertEqual(code3, 0, "\n".join(lines3))


class FullRepoRegression(unittest.TestCase):
    """The admission gate: the repository itself lints clean."""

    def test_repo_is_clean_under_strict(self):
        code, lines = run_lint()  # default scan dirs, strict
        self.assertEqual(
            code, 0,
            "unsuppressed antsim-lint findings in the repo:\n" +
            "\n".join(lines))

    def test_list_rules_names_every_rule(self):
        proc = subprocess.run(
            [sys.executable, LINTER, "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0)
        for rule in list(RULE_FIXTURES) + ["bad-suppression",
                                           "unused-suppression"]:
            self.assertIn(rule, proc.stdout)


if __name__ == "__main__":
    unittest.main()
