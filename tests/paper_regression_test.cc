/**
 * @file
 * Paper-regression tests: pin the headline claims of the reproduction
 * at reduced sampling scale so refactors cannot silently change the
 * story. Bands are deliberately loose (sampling noise, small caps) --
 * the full-scale numbers live in EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "conv/rcp_model.hh"
#include "scnn/scnn_pe.hh"
#include "workload/runner.hh"

namespace antsim {
namespace {

RunConfig
fastConfig()
{
    RunConfig cfg;
    cfg.sampleCap = 3;
    cfg.seed = 42;
    return cfg;
}

TEST(PaperRegression, Table2EfficienciesExact)
{
    // The closed-form rows must match the paper bit-for-bit (they are
    // pure arithmetic).
    const auto rows = table2Rows();
    EXPECT_NEAR(rows[0].efficiency, 0.9652, 5e-5);
    EXPECT_NEAR(rows[1].efficiency, 0.0007, 5e-5);
    EXPECT_NEAR(rows[2].efficiency, 0.2371, 5e-5);
}

TEST(PaperRegression, Figure9ShapeResNet18)
{
    // ANT vs SCNN+ at 90% on ResNet18: the paper's geomean is 3.71x
    // speedup / 4.40x energy; per-network values spread around it.
    ScnnPe scnn;
    AntPe ant;
    const auto profile = SparsityProfile::swat(0.9);
    const auto layers = resnet18Cifar();
    const auto s = runConvNetwork(scnn, layers, profile, fastConfig());
    const auto a = runConvNetwork(ant, layers, profile, fastConfig());

    const double speedup = speedupOf(s, a);
    EXPECT_GT(speedup, 2.0);
    EXPECT_LT(speedup, 12.0);
    const double energy = energyRatioOf(s, a);
    EXPECT_GT(energy, 1.5);
    EXPECT_LT(energy, 10.0);
}

TEST(PaperRegression, Table5RcpAvoidanceBand)
{
    // Paper: 74.9-98.0% of RCPs avoided.
    AntPe ant;
    const auto stats = runConvNetwork(ant, resnet18Cifar(),
                                      SparsityProfile::swat(0.9),
                                      fastConfig());
    EXPECT_GT(stats.rcpAvoidedFraction(), 0.74);
    EXPECT_LT(stats.rcpAvoidedFraction(), 0.99);
}

TEST(PaperRegression, Figure1UpdatePhaseRcpShare)
{
    // Paper: up to 96% of the non-zero computation in G_A*A is RCPs.
    ScnnPe scnn;
    RunConfig cfg = fastConfig();
    cfg.phases = {false, false, true};
    const auto stats = runConvNetwork(scnn, resnet18Cifar(),
                                      SparsityProfile::swat(0.9), cfg);
    EXPECT_LT(stats.validMultFraction(), 0.10);
}

TEST(PaperRegression, Section77TensorDashBand)
{
    // Paper: TensorDash ~2.25x over dense at 90% one-sided sparsity.
    DenseInnerProductPe dense;
    TensorDashPe td;
    const auto profile = SparsityProfile::swat(0.9);
    const auto layers = resnet18Cifar();
    const auto d = runConvNetwork(dense, layers, profile, fastConfig());
    const auto t = runConvNetwork(td, layers, profile, fastConfig());
    const double speedup = speedupOf(d, t);
    EXPECT_GT(speedup, 1.8);
    EXPECT_LT(speedup, 2.6);
}

TEST(PaperRegression, Section78MatmulElimination)
{
    // Paper: >= 99% of matmul RCPs eliminated (transformer).
    AntPe ant;
    const auto stats =
        runMatmulNetwork(ant, transformerLayers(), 0.9,
                         SparsifyMethod::TopK, fastConfig());
    EXPECT_GT(stats.rcpAvoidedFraction(), 0.99);
}

TEST(PaperRegression, Figure14AblationOrdering)
{
    // Paper: both conditions ~1.06x over r-only; each condition alone
    // still avoids a nontrivial share of RCPs.
    const auto profile = SparsityProfile::swat(0.9);
    const auto layers = resnet18Cifar();
    const auto cfg = fastConfig();

    auto run = [&](bool use_r, bool use_s) {
        AntPeConfig acfg;
        acfg.useRCondition = use_r;
        acfg.useSCondition = use_s;
        AntPe ant(acfg);
        return runConvNetwork(ant, layers, profile, cfg);
    };
    const auto both = run(true, true);
    const auto r_only = run(true, false);
    const double gain =
        static_cast<double>(r_only.total.get(Counter::Cycles)) /
        static_cast<double>(both.total.get(Counter::Cycles));
    EXPECT_GT(gain, 1.0);
    EXPECT_LT(gain, 1.5);
}

TEST(PaperRegression, GoldenParallelResNet18DensityPoints)
{
    // Golden-value lock on the *parallel* path (numThreads = 4): ANT
    // vs SCNN+ speedup and RCP-avoided fraction on ResNet18 at the
    // paper's density points (10/20/50% density). The engine is
    // deterministic, so these reproduce to double precision on any
    // machine and any thread count; if they move, either the model or
    // the parallel reduction changed.
    struct GoldenPoint
    {
        double sparsity;
        double speedup;
        double rcpAvoided;
    };
    const GoldenPoint golden[] = {
        {0.9, 3.86631132721166, 0.889537046896049},
        {0.8, 6.29557219450641, 0.90622396381939},
        {0.5, 8.57919770078069, 0.936087528738366},
    };
    RunConfig cfg = fastConfig();
    cfg.numThreads = 4;
    const auto layers = resnet18Cifar();
    for (const GoldenPoint &point : golden) {
        ScnnPe scnn;
        AntPe ant;
        const auto profile = SparsityProfile::swat(point.sparsity);
        const auto s = runConvNetwork(scnn, layers, profile, cfg);
        const auto a = runConvNetwork(ant, layers, profile, cfg);
        EXPECT_NEAR(speedupOf(s, a), point.speedup, 1e-9)
            << "sparsity " << point.sparsity;
        EXPECT_NEAR(a.rcpAvoidedFraction(), point.rcpAvoided, 1e-9)
            << "sparsity " << point.sparsity;
    }
}

TEST(PaperRegression, SmallLayerOverheadExists)
{
    // Paper Sec. 7.6: on very small layers ANT can slow down (up to
    // 30%) because the per-group overheads stop amortizing. Verify the
    // model reproduces the *existence* of this regime on a miniature
    // layer with a long stack of tiny sparse kernels.
    ScnnPe scnn;
    AntPe ant;
    const std::vector<ConvLayer> tiny = {{"t", 4, 256, 4, 4, 3, 1, 1}};
    const auto profile = SparsityProfile::swat(0.9);
    const auto s = runConvNetwork(scnn, tiny, profile, fastConfig());
    const auto a = runConvNetwork(ant, tiny, profile, fastConfig());
    // ANT gains little or loses here -- well below its large-layer
    // speedups.
    EXPECT_LT(speedupOf(s, a), 2.0);
}

} // namespace
} // namespace antsim
