/**
 * @file
 * Regression tests for the CLI/RunConfig correctness fixes: each of
 * these used to fail silently (wrong value, saturated value, dropped
 * flag, or a 4-billion-thread pool) and must now die with a clear
 * fatal diagnostic.
 */

#include <gtest/gtest.h>

#include <vector>

#include "util/cli.hh"
#include "workload/runner.hh"

namespace antsim {
namespace {

const std::vector<std::string> kKnown = {"audit", "seed",    "threads",
                                        "ratio", "samples", "verbose"};

Cli
makeCli(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv = {"cli_test"};
    argv.insert(argv.end(), args.begin(), args.end());
    return Cli(static_cast<int>(argv.size()), argv.data(), kKnown);
}

TEST(CliDeath, NonBooleanValueIsFatal)
{
    // Used to parse as false: a typo like "--audit=ture" silently
    // disabled the audits the user explicitly asked for.
    const Cli cli = makeCli({"--audit=ture"});
    EXPECT_EXIT(cli.getBool("audit", false),
                ::testing::ExitedWithCode(1),
                "fatal: flag --audit expects a boolean");
    const Cli cli_on = makeCli({"--audit", "on"});
    EXPECT_EXIT(cli_on.getBool("audit", false),
                ::testing::ExitedWithCode(1),
                "fatal: flag --audit expects a boolean");
}

TEST(Cli, BooleanSpellingsStillAccepted)
{
    EXPECT_TRUE(makeCli({"--audit"}).getBool("audit", false));
    EXPECT_TRUE(makeCli({"--audit=1"}).getBool("audit", false));
    EXPECT_TRUE(makeCli({"--audit", "yes"}).getBool("audit", false));
    EXPECT_FALSE(makeCli({"--audit=false"}).getBool("audit", true));
    EXPECT_FALSE(makeCli({"--audit", "0"}).getBool("audit", true));
    EXPECT_FALSE(makeCli({"--audit=no"}).getBool("audit", true));
    EXPECT_TRUE(makeCli({}).getBool("audit", true));
}

TEST(CliDeath, IntegerOverflowIsFatal)
{
    // strtoll saturates to INT64_MAX with errno=ERANGE; the old code
    // ignored errno and happily returned the saturated value.
    const Cli cli = makeCli({"--seed", "99999999999999999999999"});
    EXPECT_EXIT(cli.getInt("seed", 0), ::testing::ExitedWithCode(1),
                "fatal: flag --seed value .* is out of the 64-bit "
                "integer range");
    const Cli negative = makeCli({"--seed=-99999999999999999999999"});
    EXPECT_EXIT(negative.getInt("seed", 0), ::testing::ExitedWithCode(1),
                "out of the 64-bit integer range");
}

TEST(CliDeath, MalformedIntegerIsFatal)
{
    const Cli cli = makeCli({"--seed", "12abc"});
    EXPECT_EXIT(cli.getInt("seed", 0), ::testing::ExitedWithCode(1),
                "fatal: flag --seed expects an integer");
    const Cli empty = makeCli({"--seed="});
    EXPECT_EXIT(empty.getInt("seed", 0), ::testing::ExitedWithCode(1),
                "fatal: flag --seed expects an integer");
}

TEST(CliDeath, DoubleOverflowIsFatal)
{
    const Cli cli = makeCli({"--ratio", "1e999"});
    EXPECT_EXIT(cli.getDouble("ratio", 0.0), ::testing::ExitedWithCode(1),
                "out of the representable double range");
}

TEST(CliDeath, DuplicateFlagIsFatal)
{
    // Last-one-wins used to silently drop half of a contradictory
    // command line like "--seed 1 --seed 2".
    EXPECT_EXIT(makeCli({"--seed", "1", "--seed", "2"}),
                ::testing::ExitedWithCode(1),
                "fatal: duplicate flag '--seed'");
    EXPECT_EXIT(makeCli({"--audit", "--audit=false"}),
                ::testing::ExitedWithCode(1),
                "fatal: duplicate flag '--audit'");
}

TEST(CliDeath, UnknownFlagIsFatal)
{
    EXPECT_EXIT(makeCli({"--thread", "4"}), ::testing::ExitedWithCode(1),
                "fatal: unknown flag '--thread'");
}

TEST(RunConfigDeath, NegativeThreadsWrappedToUnsignedIsFatal)
{
    // "--threads -1" cast to uint32 yields 4294967295 workers; the old
    // code would try to spawn them. validate() rejects anything past a
    // sane cap with a message pointing at the likely negative input.
    RunConfig config;
    config.numThreads = static_cast<std::uint32_t>(-1);
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "fatal: numThreads = 4294967295 is not a sane worker "
                "count");
}

TEST(RunConfigDeath, ZeroSampleCapIsFatal)
{
    RunConfig config;
    config.sampleCap = 0;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "fatal: sampleCap must be positive");
}

TEST(RunConfigDeath, ZeroPesIsFatal)
{
    RunConfig config;
    config.numPes = 0;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "fatal: numPes must be positive");
}

TEST(RunConfig, DefaultsValidate)
{
    // The stock configuration must pass its own validation.
    RunConfig config;
    config.validate();
    config.numThreads = 0; // 0 = all hardware threads, explicitly legal
    config.validate();
    SUCCEED();
}

} // namespace
} // namespace antsim
