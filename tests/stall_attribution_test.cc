/**
 * @file
 * The stall-attribution law the report layer promises downstream
 * tooling (docs/report_schema.json, scripts/validate_report.py): for
 * every PE model and every layer,
 *     active + startup + idle_scan + imbalance == cycles
 * holds *exactly*. stallBreakdown builds the decomposition saturating
 * so the law is true by construction even on sample-scaled counter
 * sets, whose independent rounding (CounterSet::scale) breaks the
 * additive cycle-partition identity by a few counts; on unscaled runs
 * the residual must vanish entirely.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "report/report.hh"
#include "scnn/scnn_pe.hh"
#include "workload/runner.hh"

namespace antsim {
namespace {

std::vector<ConvLayer>
tinyNetwork()
{
    return {
        {"l0", 2, 16, 24, 24, 3, 1, 1},
        {"l1", 16, 16, 24, 24, 3, 2, 1},
        {"l2", 16, 8, 12, 12, 1, 1, 0},
    };
}

std::vector<std::unique_ptr<PeModel>>
allPeModels()
{
    std::vector<std::unique_ptr<PeModel>> pes;
    pes.push_back(std::make_unique<ScnnPe>());
    pes.push_back(std::make_unique<AntPe>());
    pes.push_back(std::make_unique<DenseInnerProductPe>());
    pes.push_back(std::make_unique<TensorDashPe>());
    return pes;
}

void
expectExactSum(const CounterSet &counters, const std::string &context)
{
    const StallBreakdown b = stallBreakdown(counters);
    EXPECT_EQ(b.active + b.startup + b.idleScan + b.imbalance, b.cycles)
        << context;
    EXPECT_EQ(b.cycles, counters.get(Counter::Cycles)) << context;
}

TEST(StallAttribution, ComponentsSumExactlyForEveryPeModel)
{
    for (const auto &pe : allPeModels()) {
        RunConfig config;
        config.sampleCap = 2; // force sample scaling: the hard case
        const NetworkStats stats = runConvNetwork(
            *pe, tinyNetwork(), SparsityProfile::swat(0.9), config);
        expectExactSum(stats.total, pe->name() + "/total");
        for (const LayerStats &layer : stats.layers) {
            CounterSet totals;
            for (const PhaseStats &phase : layer.phases)
                if (phase.pairsTotal > 0)
                    totals += phase.counters;
            expectExactSum(totals, pe->name() + "/" + layer.name);
            for (const PhaseStats &phase : layer.phases)
                expectExactSum(phase.counters,
                               pe->name() + "/" + layer.name + "/phase");
        }
    }
}

TEST(StallAttribution, UnscaledRunsHaveNoResidual)
{
    // With every pair simulated there is no scale rounding, so the
    // cycle-partition identity holds additively and the catch-all
    // component must be exactly zero.
    for (const auto &pe : allPeModels()) {
        RunConfig config;
        config.sampleCap = 1u << 30;
        const NetworkStats stats = runConvNetwork(
            *pe, tinyNetwork(), SparsityProfile::swat(0.9), config);
        const StallBreakdown b = stallBreakdown(stats.total);
        EXPECT_EQ(b.imbalance, 0u) << pe->name();
        EXPECT_EQ(b.active + b.startup + b.idleScan, b.cycles)
            << pe->name();
    }
}

TEST(StallAttribution, SaturatesPathologicalCounterSets)
{
    // Hand-built sets that violate the partition law badly must still
    // decompose to an exact sum (never underflow or overshoot).
    CounterSet overshoot;
    overshoot.set(Counter::Cycles, 10);
    overshoot.set(Counter::ActiveCycles, 25); // > Cycles
    overshoot.set(Counter::StartupCycles, 5);
    overshoot.set(Counter::IdleScanCycles, 5);
    StallBreakdown b = stallBreakdown(overshoot);
    EXPECT_EQ(b.active, 10u);
    EXPECT_EQ(b.startup, 0u);
    EXPECT_EQ(b.idleScan, 0u);
    EXPECT_EQ(b.imbalance, 0u);
    EXPECT_EQ(b.active + b.startup + b.idleScan + b.imbalance, b.cycles);

    CounterSet undershoot;
    undershoot.set(Counter::Cycles, 100);
    undershoot.set(Counter::ActiveCycles, 40);
    b = stallBreakdown(undershoot);
    EXPECT_EQ(b.active, 40u);
    EXPECT_EQ(b.imbalance, 60u);
    EXPECT_EQ(b.active + b.startup + b.idleScan + b.imbalance, b.cycles);

    b = stallBreakdown(CounterSet{});
    EXPECT_EQ(b.cycles, 0u);
    EXPECT_EQ(b.imbalance, 0u);
}

TEST(StallAttribution, ReportRowsSatisfyTheLaw)
{
    // The serialized stall_attribution section must obey the same law
    // row by row -- this is exactly what validate_report.py rejects
    // reports over.
    AntPe ant;
    RunConfig config;
    config.sampleCap = 2;
    const NetworkStats stats = runConvNetwork(
        ant, tinyNetwork(), SparsityProfile::swat(0.9), config);

    RunReport report;
    report.addStallAttribution("ant/tiny", stats, ant.name(),
                               ant.multiplierCount());
    const Json doc = report.toJson(false);
    const Json &section = doc.at("stall_attribution");
    ASSERT_EQ(section.size(), 1u);
    const Json &entry = section.at(std::size_t{0});
    EXPECT_EQ(entry.at("network").asString(), "ant/tiny");
    EXPECT_EQ(entry.at("pe_model").asString(), ant.name());

    auto check_row = [](const Json &row) {
        EXPECT_EQ(row.at("active").asUint() + row.at("startup").asUint() +
                      row.at("idle_scan").asUint() +
                      row.at("imbalance").asUint(),
                  row.at("cycles").asUint())
            << row.at("layer").asString();
    };
    const Json &layers = entry.at("layers");
    ASSERT_EQ(layers.size(), tinyNetwork().size());
    for (std::size_t i = 0; i < layers.size(); ++i)
        check_row(layers.at(i));
    check_row(entry.at("total"));
}

} // namespace
} // namespace antsim
