/**
 * @file
 * Tests for the kernel-stationary dataflow (Sec. 4.6) and the inverse
 * x/y range algebra it relies on.
 */

#include <gtest/gtest.h>

#include "ant/ant_pe.hh"
#include "conv/dense_conv.hh"
#include "scnn/scnn_pe.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

TEST(InverseRanges, XRangeSoundness)
{
    // Every valid product's image x lies in xRange of its kernel s.
    for (std::uint32_t stride : {1u, 2u}) {
        for (std::uint32_t dil : {1u, 2u}) {
            const auto spec =
                ProblemSpec::conv(4, 4, 16, 16, stride, dil);
            for (std::uint32_t x = 0; x < 16; ++x) {
                for (std::uint32_t y = 0; y < 16; ++y) {
                    for (std::uint32_t s = 0; s < 4; ++s) {
                        for (std::uint32_t r = 0; r < 4; ++r) {
                            if (!spec.isValid(x, y, s, r))
                                continue;
                            EXPECT_TRUE(spec.xRange(s, s).contains(x));
                            EXPECT_TRUE(spec.yRange(r, r).contains(y));
                        }
                    }
                }
            }
        }
    }
}

TEST(InverseRanges, XRangeTightAtStride1)
{
    // At stride = dilation = 1 everything inside the inverse range is
    // a valid pairing, mirroring the forward-range tightness.
    const auto spec = ProblemSpec::conv(3, 3, 9, 9);
    for (std::uint32_t s = 0; s < 3; ++s) {
        const IndexRange range = spec.xRange(s, s);
        for (std::int64_t x = range.lo; x <= range.hi; ++x) {
            EXPECT_TRUE(spec.sRangeIdeal(static_cast<std::uint32_t>(x))
                            .contains(s));
        }
    }
}

TEST(InverseRanges, ClampToImage)
{
    const auto spec = ProblemSpec::conv(3, 3, 9, 9);
    const IndexRange range = spec.xRange(0, 2);
    EXPECT_EQ(range.lo, 0);
    EXPECT_EQ(range.hi, 8);
}

struct Planes
{
    Dense2d<float> kernel;
    Dense2d<float> image;
    ProblemSpec spec;
};

Planes
makePlanes(std::uint32_t kdim, std::uint32_t idim, double sparsity,
           std::uint64_t seed, std::uint32_t stride = 1)
{
    Rng rng(seed);
    return {bernoulliPlane(kdim, kdim, sparsity, rng),
            bernoulliPlane(idim, idim, sparsity, rng),
            ProblemSpec::conv(kdim, kdim, idim, idim, stride)};
}

AntPe
kernelStationaryPe()
{
    AntPeConfig cfg;
    cfg.dataflow = AntDataflow::KernelStationary;
    return AntPe(cfg);
}

TEST(KernelStationary, OutputMatchesDenseReference)
{
    const Planes p = makePlanes(5, 12, 0.5, 1);
    const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
    const CsrMatrix image = CsrMatrix::fromDense(p.image);
    AntPe pe = kernelStationaryPe();
    const PeResult r = pe.runStack(p.spec, {&kernel}, image, true);
    EXPECT_LT(maxAbsDiff(r.output,
                         referenceExecute(p.spec, p.kernel, p.image)),
              1e-9);
}

TEST(KernelStationary, ValidProductsMatchImageStationary)
{
    // Both dataflows execute every valid product exactly once.
    const Planes p = makePlanes(8, 14, 0.6, 2);
    const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
    const CsrMatrix image = CsrMatrix::fromDense(p.image);

    AntPe img_pe;
    AntPe ker_pe = kernelStationaryPe();
    const PeResult a = img_pe.runStack(p.spec, {&kernel}, image, false);
    const PeResult b = ker_pe.runStack(p.spec, {&kernel}, image, false);
    EXPECT_EQ(a.counters.get(Counter::MultsValid),
              b.counters.get(Counter::MultsValid));
    // Both satisfy the conservation invariant.
    for (const PeResult *r : {&a, &b}) {
        EXPECT_EQ(r->counters.get(Counter::MultsExecuted) +
                      r->counters.get(Counter::RcpsAvoided),
                  static_cast<std::uint64_t>(kernel.nnz()) * image.nnz());
    }
}

TEST(KernelStationary, CountingMatchesFunctional)
{
    const Planes p = makePlanes(6, 12, 0.5, 3);
    const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
    const CsrMatrix image = CsrMatrix::fromDense(p.image);
    AntPe pe = kernelStationaryPe();
    const PeResult slow = pe.runStack(p.spec, {&kernel}, image, true);
    const PeResult fast = pe.runStack(p.spec, {&kernel}, image, false);
    for (Counter counter :
         {Counter::MultsExecuted, Counter::MultsValid, Counter::MultsRcp,
          Counter::RcpsAvoided, Counter::Cycles}) {
        EXPECT_EQ(fast.counters.get(counter), slow.counters.get(counter))
            << counterName(counter);
    }
}

TEST(KernelStationary, StackOutputIsSummedReference)
{
    Rng rng(4);
    const auto spec = ProblemSpec::conv(3, 3, 12, 12);
    std::vector<CsrMatrix> kernels;
    std::vector<const CsrMatrix *> ptrs;
    for (int i = 0; i < 4; ++i) {
        kernels.push_back(
            CsrMatrix::fromDense(bernoulliPlane(3, 3, 0.4, rng)));
    }
    for (const auto &k : kernels)
        ptrs.push_back(&k);
    const Dense2d<float> image_plane = bernoulliPlane(12, 12, 0.5, rng);
    const CsrMatrix image = CsrMatrix::fromDense(image_plane);

    AntPe pe = kernelStationaryPe();
    const PeResult r = pe.runStack(spec, ptrs, image, true);
    Dense2d<double> want(spec.outH(), spec.outW());
    for (const auto &k : kernels) {
        const auto ref = referenceExecute(spec, k.toDense(), image_plane);
        for (std::size_t i = 0; i < want.data().size(); ++i)
            want.data()[i] += ref.data()[i];
    }
    EXPECT_LT(maxAbsDiff(r.output, want), 1e-9);
}

TEST(KernelStationary, BeatsScnnOnUpdateShape)
{
    Rng rng(5);
    const auto spec = ProblemSpec::conv(14, 14, 16, 16);
    const CsrMatrix kernel =
        CsrMatrix::fromDense(bernoulliPlane(14, 14, 0.9, rng));
    const CsrMatrix image =
        CsrMatrix::fromDense(bernoulliPlane(16, 16, 0.9, rng));
    AntPe ant = kernelStationaryPe();
    ScnnPe scnn;
    const auto ant_r = ant.runStack(spec, {&kernel}, image, false);
    const auto scnn_r = scnn.runStack(spec, {&kernel}, image, false);
    EXPECT_LT(ant_r.counters.get(Counter::Cycles),
              scnn_r.counters.get(Counter::Cycles));
}

TEST(KernelStationary, StridedAndDilatedStillExact)
{
    for (std::uint32_t stride : {1u, 2u}) {
        const Planes p = makePlanes(3, 13, 0.5, 10 + stride, stride);
        const CsrMatrix kernel = CsrMatrix::fromDense(p.kernel);
        const CsrMatrix image = CsrMatrix::fromDense(p.image);
        AntPe pe = kernelStationaryPe();
        const PeResult r = pe.runStack(p.spec, {&kernel}, image, true);
        EXPECT_LT(maxAbsDiff(r.output,
                             referenceExecute(p.spec, p.kernel, p.image)),
                  1e-9)
            << "stride " << stride;
    }
}

} // namespace
} // namespace antsim
