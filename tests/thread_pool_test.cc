/**
 * @file
 * Tests for the fixed worker pool (src/util/thread_pool.hh): index
 * coverage, worker-id bounds, grain edge cases, nesting, and exception
 * propagation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hh"

namespace antsim {
namespace {

/** Every index in [begin, end) is visited exactly once. */
void
expectExactCoverage(ThreadPool &pool, std::uint64_t begin,
                    std::uint64_t end, std::uint64_t grain)
{
    std::vector<std::atomic<std::uint32_t>> visits(
        static_cast<std::size_t>(end));
    for (auto &v : visits)
        v.store(0);
    pool.parallelFor(begin, end, grain,
                     [&](std::uint64_t i, std::uint32_t worker) {
                         EXPECT_LT(worker, pool.threadCount());
                         visits[static_cast<std::size_t>(i)].fetch_add(1);
                     });
    for (std::uint64_t i = 0; i < end; ++i)
        EXPECT_EQ(visits[static_cast<std::size_t>(i)].load(),
                  i >= begin ? 1u : 0u)
            << "index " << i;
}

TEST(ThreadPool, ConstructionAndTeardown)
{
    // Pools of every flavor come up and tear down without being used.
    { ThreadPool pool(1); EXPECT_EQ(pool.threadCount(), 1u); }
    { ThreadPool pool(4); EXPECT_EQ(pool.threadCount(), 4u); }
    { ThreadPool pool(0); EXPECT_GE(pool.threadCount(), 1u); }
}

TEST(ThreadPool, ResolveThreadCount)
{
    EXPECT_EQ(ThreadPool::resolveThreadCount(3), 3u);
    EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u);
}

TEST(ThreadPool, CoversAllIndicesExactlyOnce)
{
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        for (const std::uint64_t grain : {1ull, 3ull, 16ull}) {
            expectExactCoverage(pool, 0, 100, grain);
            expectExactCoverage(pool, 7, 100, grain);
        }
    }
}

TEST(ThreadPool, EmptyRange)
{
    ThreadPool pool(4);
    std::atomic<std::uint32_t> calls{0};
    pool.parallelFor(5, 5, 1,
                     [&](std::uint64_t, std::uint32_t) { ++calls; });
    pool.parallelFor(9, 5, 1,
                     [&](std::uint64_t, std::uint32_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPool, SingleElement)
{
    ThreadPool pool(4);
    expectExactCoverage(pool, 3, 4, 1);
}

TEST(ThreadPool, GrainLargerThanRange)
{
    ThreadPool pool(4);
    expectExactCoverage(pool, 0, 5, 1000);
}

TEST(ThreadPool, ZeroGrainPanics)
{
    // A 1-thread pool spawns no workers, keeping the death test clean.
    ThreadPool pool(1);
    EXPECT_DEATH(pool.parallelFor(0, 4, 0,
                                  [](std::uint64_t, std::uint32_t) {}),
                 "grain must be positive");
}

TEST(ThreadPool, MoreThreadsThanWork)
{
    ThreadPool pool(8);
    expectExactCoverage(pool, 0, 3, 1);
}

TEST(ThreadPool, SumReduction)
{
    // Accumulate into per-index slots and reduce in order: the model
    // the deterministic runner relies on.
    ThreadPool pool(8);
    const std::uint64_t count = 1000;
    std::vector<std::uint64_t> slots(count, 0);
    pool.parallelFor(0, count, 7,
                     [&](std::uint64_t i, std::uint32_t) { slots[i] = i; });
    std::uint64_t sum = 0;
    for (const std::uint64_t v : slots)
        sum += v;
    EXPECT_EQ(sum, count * (count - 1) / 2);
}

TEST(ThreadPool, ExceptionPropagatesFromWorkers)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 100, 1,
                         [](std::uint64_t i, std::uint32_t) {
                             if (i == 37)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
}

TEST(ThreadPool, ExceptionMessageIsTheFirstThrown)
{
    ThreadPool pool(1);
    try {
        pool.parallelFor(0, 10, 1, [](std::uint64_t i, std::uint32_t) {
            if (i >= 4)
                throw std::runtime_error("index " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "index 4");
    }
}

TEST(ThreadPool, UsableAfterException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(0, 10, 1,
                                  [](std::uint64_t, std::uint32_t) {
                                      throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    expectExactCoverage(pool, 0, 50, 1);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<std::uint32_t>> visits(64);
    for (auto &v : visits)
        v.store(0);
    pool.parallelFor(0, 8, 1, [&](std::uint64_t i, std::uint32_t outer) {
        pool.parallelFor(0, 8, 1,
                         [&](std::uint64_t j, std::uint32_t inner) {
                             // The nested call must stay on the
                             // caller's worker.
                             EXPECT_EQ(inner, outer);
                             visits[i * 8 + j].fetch_add(1);
                         });
    });
    for (const auto &v : visits)
        EXPECT_EQ(v.load(), 1u);
}

TEST(ThreadPool, ManySmallJobsReuseWorkers)
{
    // Back-to-back jobs on one pool: generation handoff must not lose
    // or duplicate work.
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round)
        expectExactCoverage(pool, 0, 17, 2);
}

} // namespace
} // namespace antsim
