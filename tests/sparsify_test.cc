/**
 * @file
 * Tests for the synthetic sparsifiers used in trace generation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/sparsify.hh"

namespace antsim {
namespace {

TEST(Sparsify, RandomDensePlaneHasNoZeros)
{
    Rng rng(1);
    const auto plane = randomDensePlane(20, 20, rng);
    EXPECT_EQ(plane.nnz(), plane.size());
}

TEST(Sparsify, BernoulliHitsTargetApproximately)
{
    Rng rng(2);
    const auto plane = bernoulliPlane(100, 100, 0.9, rng);
    EXPECT_NEAR(plane.sparsity(), 0.9, 0.02);
}

TEST(Sparsify, BernoulliZeroSparsityIsDense)
{
    Rng rng(3);
    const auto plane = bernoulliPlane(10, 10, 0.0, rng);
    EXPECT_EQ(plane.nnz(), plane.size());
}

TEST(Sparsify, BernoulliFullSparsityIsEmpty)
{
    Rng rng(4);
    const auto plane = bernoulliPlane(10, 10, 1.0, rng);
    EXPECT_EQ(plane.nnz(), 0u);
}

TEST(Sparsify, TopKExactCount)
{
    Rng rng(5);
    const auto dense = randomDensePlane(32, 32, rng);
    const auto sparse = topKSparsify(dense, 0.9);
    const auto keep = static_cast<std::size_t>(
        std::llround(32 * 32 * 0.1));
    EXPECT_EQ(sparse.nnz(), keep);
}

TEST(Sparsify, TopKKeepsLargestMagnitudes)
{
    Dense2d<float> d(1, 4);
    d.at(0, 0) = 0.1f;
    d.at(1, 0) = -5.0f;
    d.at(2, 0) = 2.0f;
    d.at(3, 0) = -0.3f;
    const auto sparse = topKSparsify(d, 0.5);
    EXPECT_EQ(sparse.at(1, 0), -5.0f);
    EXPECT_EQ(sparse.at(2, 0), 2.0f);
    EXPECT_EQ(sparse.at(0, 0), 0.0f);
    EXPECT_EQ(sparse.at(3, 0), 0.0f);
}

TEST(Sparsify, TopKZeroSparsityIsIdentity)
{
    Rng rng(6);
    const auto dense = randomDensePlane(8, 8, rng);
    EXPECT_EQ(topKSparsify(dense, 0.0), dense);
}

TEST(Sparsify, TopKDeterministicTieBreak)
{
    Dense2d<float> d(1, 4, 1.0f); // all equal magnitudes
    const auto sparse = topKSparsify(d, 0.5);
    // Positional tie-break keeps the first two.
    EXPECT_EQ(sparse.at(0, 0), 1.0f);
    EXPECT_EQ(sparse.at(1, 0), 1.0f);
    EXPECT_EQ(sparse.at(2, 0), 0.0f);
    EXPECT_EQ(sparse.at(3, 0), 0.0f);
}

TEST(Sparsify, ReluCorrelatedSharedMask)
{
    Rng rng(7);
    const auto [act, grad] =
        reluCorrelatedPair(64, 64, 0.5, 0.5, 0.5, rng);
    // With final sparsity == relu sparsity, the zero masks coincide
    // except for top-K rounding.
    std::size_t both_zero = 0;
    std::size_t act_zero = 0;
    for (std::size_t i = 0; i < act.size(); ++i) {
        const bool az = act.data()[i] == 0.0f;
        const bool gz = grad.data()[i] == 0.0f;
        act_zero += az;
        both_zero += (az && gz);
    }
    // Strong overlap: at least 90% of act zeros are also grad zeros.
    EXPECT_GT(static_cast<double>(both_zero),
              0.9 * static_cast<double>(act_zero));
}

TEST(Sparsify, ReluCorrelatedFinalTargets)
{
    Rng rng(8);
    const auto [act, grad] =
        reluCorrelatedPair(100, 100, 0.4, 0.8, 0.9, rng);
    EXPECT_NEAR(act.sparsity(), 0.8, 0.02);
    EXPECT_NEAR(grad.sparsity(), 0.9, 0.02);
}

TEST(SparsifyDeathTest, ReluCorrelatedRequiresConsistentTargets)
{
    Rng rng(9);
    EXPECT_DEATH(reluCorrelatedPair(10, 10, 0.8, 0.5, 0.9, rng),
                 "at least the shared");
}

TEST(SparsifyDeathTest, SparsityOutOfRange)
{
    Rng rng(10);
    EXPECT_DEATH(bernoulliPlane(4, 4, 1.5, rng), "sparsity");
}

} // namespace
} // namespace antsim
