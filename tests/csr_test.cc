/**
 * @file
 * Tests for CSR/CSC compression, rotation (Algorithm 3), and the
 * structural invariants of Sec. 4.1.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "tensor/csr.hh"
#include "tensor/sparsify.hh"
#include "util/audit.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

/** Materialize a read-only span accessor as a vector for EXPECT_EQ. */
template <typename T>
std::vector<T>
vec(std::span<const T> s)
{
    return {s.begin(), s.end()};
}

Dense2d<float>
samplePlane()
{
    // 3x4 plane:  . 2 . 0? -> zeros dropped
    Dense2d<float> d(3, 4);
    d.at(1, 0) = 2.0f;
    d.at(3, 0) = -1.0f;
    d.at(0, 1) = 5.0f;
    d.at(2, 2) = 7.0f;
    d.at(3, 2) = 4.0f;
    return d;
}

TEST(Csr, FromDenseRoundTrip)
{
    const Dense2d<float> d = samplePlane();
    const CsrMatrix csr = CsrMatrix::fromDense(d);
    EXPECT_EQ(csr.nnz(), 5u);
    EXPECT_EQ(csr.toDense(), d);
    csr.validate();
}

TEST(Csr, ArraysMatchSection41Layout)
{
    const CsrMatrix csr = CsrMatrix::fromDense(samplePlane());
    // Values in row-major order.
    const std::vector<float> want_values = {2.0f, -1.0f, 5.0f, 7.0f, 4.0f};
    EXPECT_EQ(vec(csr.values()), want_values);
    const std::vector<std::uint32_t> want_cols = {1, 3, 0, 2, 3};
    EXPECT_EQ(vec(csr.columns()), want_cols);
    const std::vector<std::uint32_t> want_rowptr = {0, 2, 3, 5};
    EXPECT_EQ(vec(csr.rowPtr()), want_rowptr);
}

TEST(Csr, EmptyMatrix)
{
    const CsrMatrix csr(4, 4);
    EXPECT_EQ(csr.nnz(), 0u);
    EXPECT_DOUBLE_EQ(csr.sparsity(), 1.0);
    EXPECT_EQ(csr.rowPtr().size(), 5u);
    csr.validate();
}

TEST(Csr, FullyDenseMatrix)
{
    Dense2d<float> d(2, 2, 1.0f);
    const CsrMatrix csr = CsrMatrix::fromDense(d);
    EXPECT_EQ(csr.nnz(), 4u);
    EXPECT_DOUBLE_EQ(csr.sparsity(), 0.0);
}

TEST(Csr, EntryLookup)
{
    const CsrMatrix csr = CsrMatrix::fromDense(samplePlane());
    const SparseEntry e = csr.entry(3);
    EXPECT_EQ(e.value, 7.0f);
    EXPECT_EQ(e.x, 2u);
    EXPECT_EQ(e.y, 2u);
    EXPECT_EQ(csr.rowOfPosition(0), 0u);
    EXPECT_EQ(csr.rowOfPosition(2), 1u);
    EXPECT_EQ(csr.rowOfPosition(4), 2u);
}

TEST(Csr, EntriesEnumerateInStorageOrder)
{
    const CsrMatrix csr = CsrMatrix::fromDense(samplePlane());
    const auto entries = csr.entries();
    ASSERT_EQ(entries.size(), 5u);
    // y must be non-decreasing (row-major).
    for (std::size_t i = 1; i < entries.size(); ++i)
        EXPECT_LE(entries[i - 1].y, entries[i].y);
}

TEST(Csr, FromCooSortsAndSumsDuplicates)
{
    std::vector<SparseEntry> coo = {
        {1.0f, 2, 1}, {3.0f, 0, 0}, {2.0f, 2, 1}, {4.0f, 1, 2}};
    const CsrMatrix csr = CsrMatrix::fromCoo(3, 3, coo);
    csr.validate();
    EXPECT_EQ(csr.nnz(), 3u);
    const Dense2d<float> d = csr.toDense();
    EXPECT_EQ(d.at(2, 1), 3.0f); // 1 + 2 summed
    EXPECT_EQ(d.at(0, 0), 3.0f);
    EXPECT_EQ(d.at(1, 2), 4.0f);
}

TEST(Csr, FromRawValidates)
{
    const CsrMatrix csr = CsrMatrix::fromRaw(2, 3, {1.0f, 2.0f}, {0, 2},
                                             {0, 1, 2});
    EXPECT_EQ(csr.nnz(), 2u);
}

TEST(CsrDeathTest, FromRawRejectsBadRowPtr)
{
    EXPECT_DEATH(CsrMatrix::fromRaw(2, 3, {1.0f}, {0}, {0, 2, 1}),
                 "rowPtr");
}

TEST(CsrDeathTest, FromRawRejectsUnsortedColumns)
{
    EXPECT_DEATH(CsrMatrix::fromRaw(1, 4, {1.0f, 2.0f}, {2, 1}, {0, 2}),
                 "strictly increasing");
}

TEST(CsrDeathTest, FromRawRejectsWideColumn)
{
    EXPECT_DEATH(CsrMatrix::fromRaw(1, 2, {1.0f}, {2}, {0, 1}),
                 "out of width");
}

TEST(CsrDeathTest, NnzNarrowingOverflowPanics)
{
    // 2^32 stored entries would wrap the uint32 index arrays; the
    // narrowing guard must panic instead of silently truncating.
    EXPECT_DEATH(narrowNnz(std::size_t{1} << 32), "overflow");
    EXPECT_EQ(narrowNnz((std::size_t{1} << 32) - 1), 0xffffffffu);
}

TEST(CsrDeathTest, CooEntryOutsidePlanePanics)
{
    // A COO entry with coordinates outside the plane must be caught at
    // build time, not when a PE later walks off the index arrays.
    std::vector<SparseEntry> bad = {{1.0f, 7, 0}}; // x=7 in a 3-wide plane
    EXPECT_DEATH(CsrMatrix::fromCoo(3, 3, bad), "outside");
}

TEST(Csr, AuditForcedOnValidatesEveryConstructor)
{
    // audit_env.cc forces ANTSIM_AUDIT on in test binaries, so every
    // construction path in this whole suite (not just fromRaw) runs
    // validate() -- this assertion is what makes that coverage real.
    ASSERT_TRUE(audit::enabled());
}

TEST(Csr, Rotation180MatchesAlgorithm3OnDense)
{
    const Dense2d<float> d = samplePlane();
    const CsrMatrix rotated = CsrMatrix::fromDense(d).rotated180();
    rotated.validate();
    const Dense2d<float> rd = rotated.toDense();
    for (std::uint32_t y = 0; y < d.height(); ++y)
        for (std::uint32_t x = 0; x < d.width(); ++x)
            EXPECT_EQ(rd.at(d.width() - 1 - x, d.height() - 1 - y),
                      d.at(x, y));
}

TEST(Csr, RotationIsInvolution)
{
    Rng rng(99);
    const Dense2d<float> plane = bernoulliPlane(7, 5, 0.6, rng);
    const CsrMatrix csr = CsrMatrix::fromDense(plane);
    EXPECT_EQ(csr.rotated180().rotated180(), csr);
}

TEST(Csr, RotationPreservesValueMultiset)
{
    Rng rng(7);
    const CsrMatrix csr =
        CsrMatrix::fromDense(bernoulliPlane(6, 6, 0.5, rng));
    auto a = vec(csr.values());
    auto b = vec(csr.rotated180().values());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
}

TEST(Csr, TransposeMatchesDense)
{
    const Dense2d<float> d = samplePlane();
    const CsrMatrix t = CsrMatrix::fromDense(d).transposed();
    t.validate();
    EXPECT_EQ(t.height(), d.width());
    EXPECT_EQ(t.width(), d.height());
    const Dense2d<float> td = t.toDense();
    for (std::uint32_t y = 0; y < d.height(); ++y)
        for (std::uint32_t x = 0; x < d.width(); ++x)
            EXPECT_EQ(td.at(y, x), d.at(x, y));
}

TEST(Csc, FromDenseMatchesCsrView)
{
    const Dense2d<float> d = samplePlane();
    const CscMatrix csc = CscMatrix::fromDense(d);
    EXPECT_EQ(csc.nnz(), 5u);
    EXPECT_EQ(csc.toDense(), d);
}

TEST(Csc, FromCsrEquivalent)
{
    Rng rng(5);
    const Dense2d<float> d = bernoulliPlane(8, 9, 0.7, rng);
    const CscMatrix a = CscMatrix::fromDense(d);
    const CscMatrix b = CscMatrix::fromCsr(CsrMatrix::fromDense(d));
    EXPECT_EQ(vec(a.values()), vec(b.values()));
    EXPECT_EQ(vec(a.rows()), vec(b.rows()));
    EXPECT_EQ(vec(a.colPtr()), vec(b.colPtr()));
}

TEST(Csc, EntriesAreColumnMajor)
{
    const CscMatrix csc = CscMatrix::fromDense(samplePlane());
    std::uint32_t prev_col = 0;
    for (std::uint32_t i = 0; i < csc.nnz(); ++i) {
        const SparseEntry e = csc.entry(i);
        EXPECT_GE(e.x, prev_col);
        prev_col = e.x;
    }
}

TEST(Csc, ColOfPosition)
{
    const CscMatrix csc = CscMatrix::fromDense(samplePlane());
    // Dense columns: col0 {5}, col1 {2}, col2 {7}, col3 {-1, 4}.
    EXPECT_EQ(csc.colOfPosition(0), 0u);
    EXPECT_EQ(csc.colOfPosition(1), 1u);
    EXPECT_EQ(csc.colOfPosition(2), 2u);
    EXPECT_EQ(csc.colOfPosition(3), 3u);
    EXPECT_EQ(csc.colOfPosition(4), 3u);
}

} // namespace
} // namespace antsim
