/**
 * @file
 * Tests for the runner's image-chunking path (8 KB buffer enforcement,
 * Sec. 6.1 / SCNN+) and the dense-baseline exemption.
 */

#include <gtest/gtest.h>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "scnn/scnn_pe.hh"
#include "workload/runner.hh"

namespace antsim {
namespace {

/** A layer whose dense image plane exceeds the 4096-element buffer. */
std::vector<ConvLayer>
bigImageNetwork()
{
    return {{"big", 2, 4, 80, 80, 3, 1, 1}};
}

RunConfig
cfg()
{
    RunConfig config;
    config.sampleCap = 2;
    config.seed = 5;
    return config;
}

TEST(RunnerChunking, DenseImagePlaneIsChunked)
{
    // At zero sparsity the 82x82 padded image has 6400 non-zeros >
    // 4096, so each sampled task must split into multiple image
    // chunks, each with its own start-up.
    ScnnPe scnn;
    const auto stats = runConvNetwork(scnn, bigImageNetwork(),
                                      SparsityProfile::dense(), cfg());
    for (const auto &layer : stats.layers) {
        for (const auto &phase : layer.phases) {
            // TasksProcessed is scaled to the full layer; without
            // chunking it would equal pairsTotal.
            EXPECT_GT(phase.counters.get(Counter::TasksProcessed),
                      phase.pairsTotal)
                << "image chunking should create extra tasks";
        }
    }
    // Start-up cycles: 5 per chunk, more chunks than tasks.
    EXPECT_GT(stats.total.get(Counter::StartupCycles),
              5ull * 3 * 2 /* phases x samples */);
}

TEST(RunnerChunking, SparseImageFitsWithoutChunking)
{
    ScnnPe scnn;
    const auto stats = runConvNetwork(scnn, bigImageNetwork(),
                                      SparsityProfile::swat(0.9), cfg());
    for (const auto &layer : stats.layers) {
        for (const auto &phase : layer.phases) {
            EXPECT_EQ(phase.counters.get(Counter::TasksProcessed),
                      phase.pairsTotal);
        }
    }
}

TEST(RunnerChunking, ChunkingPreservesProductCounts)
{
    // Executed multiplies must be invariant to the chunk capacity
    // (every cartesian product happens exactly once either way).
    ScnnPe scnn;
    RunConfig small = cfg();
    small.chunkCapacity = 512;
    RunConfig big = cfg();
    big.chunkCapacity = 1u << 20;
    const auto profile = SparsityProfile::resprop(0.5, 0.5);
    const auto a =
        runConvNetwork(scnn, bigImageNetwork(), profile, small);
    const auto b = runConvNetwork(scnn, bigImageNetwork(), profile, big);
    EXPECT_EQ(a.total.get(Counter::MultsExecuted),
              b.total.get(Counter::MultsExecuted));
    EXPECT_EQ(a.total.get(Counter::MultsValid),
              b.total.get(Counter::MultsValid));
    // But the split costs extra start-ups (and hence cycles).
    EXPECT_GT(a.total.get(Counter::StartupCycles),
              b.total.get(Counter::StartupCycles));
}

TEST(RunnerChunking, DenseBaselineExemptFromChunking)
{
    // The dense inner-product tile streams dense tiles; the sparse
    // buffer capacity must not split (and double-count) its MACs.
    DenseInnerProductPe dense;
    const auto stats = runConvNetwork(dense, bigImageNetwork(),
                                      SparsityProfile::dense(), cfg());
    for (const auto &layer : stats.layers) {
        for (const auto &phase : layer.phases) {
            EXPECT_EQ(phase.counters.get(Counter::TasksProcessed),
                      phase.pairsTotal);
        }
    }
}

TEST(RunnerChunking, AntHandlesChunkedImages)
{
    AntPe ant;
    const auto stats = runConvNetwork(ant, bigImageNetwork(),
                                      SparsityProfile::dense(), cfg());
    EXPECT_GT(stats.total.get(Counter::MultsExecuted), 0u);
    // Conservation holds across chunks.
    EXPECT_EQ(stats.total.get(Counter::MultsValid) +
                  stats.total.get(Counter::MultsRcp),
              stats.total.get(Counter::MultsExecuted));
}

} // namespace
} // namespace antsim
