/**
 * @file
 * Host-metrics registry contracts (src/obs/metrics.hh): attachment is
 * refused while collection is disabled (the metrics-off fast path is a
 * single thread-local branch), per-thread shards merge by summation so
 * workload-determined totals are identical at every worker count, the
 * Prometheus exposition is deterministic and internally consistent
 * (cumulative buckets, +Inf == count), log2 bucket boundaries follow
 * the documented layout, gauges track peaks, and reset() restores a
 * zero registry without detaching shards.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/metrics.hh"
#include "util/thread_pool.hh"

namespace antsim {
namespace {

namespace m = obs::metrics;

/** Value of the single exposition sample line starting @p series. */
std::uint64_t
sampleValue(const std::string &text, const std::string &series)
{
    const std::string line_start = series + " ";
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t end = text.find('\n', pos);
        const std::string line = text.substr(pos, end - pos);
        if (line.rfind(line_start, 0) == 0)
            return std::stoull(line.substr(line_start.size()));
        if (end == std::string::npos)
            break;
        pos = end + 1;
    }
    ADD_FAILURE() << "exposition has no sample for " << series;
    return ~0ull;
}

// Declaration order matters: this test must observe the main thread
// before any other test in this binary attaches it.
TEST(MetricsTest, AttachRefusedWhileDisabled)
{
    m::setEnabled(false);
    EXPECT_EQ(m::shard(), nullptr);
    m::threadAttach();
    EXPECT_EQ(m::shard(), nullptr) << "threadAttach installed a shard "
                                      "while collection was disabled";
    // Recording without a shard must be a harmless no-op.
    m::count(m::Counter::RunnerUnits);
    m::histRecord(m::Hist::UnitWallNs, 7);
    m::gaugeAdd(m::Gauge::TraceCacheResidentBytes, 100);
}

TEST(MetricsTest, HistBucketBoundaries)
{
    // Bucket 0 = {0}, bucket i >= 1 = [2^(i-1), 2^i), last absorbs
    // overflow -- compile-time checks, the layout is constexpr.
    static_assert(m::histBucket(0) == 0);
    static_assert(m::histBucket(1) == 1);
    static_assert(m::histBucket(2) == 2);
    static_assert(m::histBucket(3) == 2);
    static_assert(m::histBucket(4) == 3);
    static_assert(m::histBucket(7) == 3);
    static_assert(m::histBucket(8) == 4);
    static_assert(m::histBucket(~0ull) == m::kHistBins - 1);
    // Every bucket's exposition upper bound 2^b - 1 is the largest
    // value the bucket holds.
    for (std::uint32_t b = 1; b + 1 < m::kHistBins; ++b) {
        const std::uint64_t le = (1ull << b) - 1;
        EXPECT_EQ(m::histBucket(le), b) << "le of bucket " << b;
        EXPECT_EQ(m::histBucket(le + 1), b + 1)
            << "first value past bucket " << b;
    }
}

TEST(MetricsTest, MergeIsDeterministicAcrossThreadCounts)
{
    m::setEnabled(true);
    m::threadAttach();

    m::Snapshot reference;
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
        m::reset();
        {
            // Explicit thread counts (not effectiveWorkerCount): the
            // point is recording from genuinely concurrent shards even
            // on a single-core CI machine.
            ThreadPool pool(threads);
            pool.parallelFor(0, 1000, 16,
                             [](std::uint64_t i, std::uint32_t) {
                                 m::count(m::Counter::RunnerUnits);
                                 m::histRecord(m::Hist::UnitWallNs,
                                               i % 97);
                             });
        }
        const m::Snapshot snap = m::snapshot();
        EXPECT_EQ(snap.counters[static_cast<std::size_t>(
                      m::Counter::RunnerUnits)],
                  1000u)
            << threads << " threads";
        EXPECT_EQ(snap.counters[static_cast<std::size_t>(
                      m::Counter::PoolItems)],
                  1000u)
            << threads << " threads";
        const m::Snapshot::HistData &hist =
            snap.hists[static_cast<std::size_t>(m::Hist::UnitWallNs)];
        EXPECT_EQ(hist.count, 1000u) << threads << " threads";
        EXPECT_EQ(hist.min, 0u) << threads << " threads";
        EXPECT_EQ(hist.max, 96u) << threads << " threads";
        if (threads == 1) {
            reference = snap;
            continue;
        }
        // The shard merge is a sum, so the workload-determined totals
        // are independent of which worker recorded what.
        EXPECT_EQ(hist.sum, reference
                                .hists[static_cast<std::size_t>(
                                    m::Hist::UnitWallNs)]
                                .sum)
            << threads << " threads";
        for (std::size_t b = 0; b < m::kHistBins; ++b) {
            EXPECT_EQ(hist.bins[b],
                      reference
                          .hists[static_cast<std::size_t>(
                              m::Hist::UnitWallNs)]
                          .bins[b])
                << threads << " threads, bin " << b;
        }
    }
    m::reset();
    m::setEnabled(false);
}

TEST(MetricsTest, PrometheusExpositionIsConsistent)
{
    // Hand-built snapshot: toPrometheus is a pure function of it.
    m::Snapshot snap;
    snap.counters[static_cast<std::size_t>(m::Counter::TraceCacheHits)] =
        42;
    snap.workersUsed = 2;
    snap.workers[0][static_cast<std::size_t>(m::WorkerCounter::Items)] =
        30;
    snap.workers[1][static_cast<std::size_t>(m::WorkerCounter::Items)] =
        12;
    snap.gaugeValue[static_cast<std::size_t>(
        m::Gauge::TraceCacheResidentBytes)] = 100;
    snap.gaugePeak[static_cast<std::size_t>(
        m::Gauge::TraceCacheResidentBytes)] = 250;
    snap.stageNs[0] = 5000;
    snap.stageCalls[0] = 2;
    m::Snapshot::HistData &hist =
        snap.hists[static_cast<std::size_t>(m::Hist::UnitWallNs)];
    hist.bins[0] = 1; // value 0
    hist.bins[1] = 2; // value 1
    hist.bins[2] = 3; // values 2..3
    hist.count = 6;
    hist.sum = 10;
    hist.min = 0;
    hist.max = 3;

    const std::string text = m::toPrometheus(snap);
    // Dump fixpoint: serialization is deterministic byte for byte.
    EXPECT_EQ(text, m::toPrometheus(snap));

    EXPECT_EQ(sampleValue(text, "antsim_trace_cache_hits_total"), 42u);
    EXPECT_EQ(sampleValue(
                  text, "antsim_pool_worker_items_total{worker=\"0\"}"),
              30u);
    EXPECT_EQ(sampleValue(
                  text, "antsim_pool_worker_items_total{worker=\"1\"}"),
              12u);
    EXPECT_EQ(sampleValue(text, "antsim_trace_cache_resident_bytes"),
              100u);
    EXPECT_EQ(sampleValue(text, "antsim_trace_cache_resident_bytes_peak"),
              250u);
    EXPECT_EQ(
        sampleValue(
            text, "antsim_stage_ns_total{stage=\"trace_generation\"}"),
        5000u);

    // Cumulative histogram buckets with exact-integer upper bounds.
    EXPECT_EQ(sampleValue(text, "antsim_unit_wall_ns_bucket{le=\"0\"}"),
              1u);
    EXPECT_EQ(sampleValue(text, "antsim_unit_wall_ns_bucket{le=\"1\"}"),
              3u);
    EXPECT_EQ(sampleValue(text, "antsim_unit_wall_ns_bucket{le=\"3\"}"),
              6u);
    EXPECT_EQ(
        sampleValue(text, "antsim_unit_wall_ns_bucket{le=\"+Inf\"}"), 6u);
    EXPECT_EQ(sampleValue(text, "antsim_unit_wall_ns_sum"), 10u);
    EXPECT_EQ(sampleValue(text, "antsim_unit_wall_ns_count"), 6u);
}

TEST(MetricsTest, GaugesTrackPeaks)
{
    m::setEnabled(true);
    m::threadAttach();
    m::reset();

    m::gaugeAdd(m::Gauge::TraceCacheResidentBytes, 100);
    m::gaugeAdd(m::Gauge::TraceCacheResidentBytes, 50);
    m::gaugeAdd(m::Gauge::TraceCacheResidentBytes, -120);
    m::gaugeMax(m::Gauge::PoolWorkers, 5);
    m::gaugeMax(m::Gauge::PoolWorkers, 3);

    const m::Snapshot snap = m::snapshot();
    const auto resident =
        static_cast<std::size_t>(m::Gauge::TraceCacheResidentBytes);
    EXPECT_EQ(snap.gaugeValue[resident], 30);
    EXPECT_EQ(snap.gaugePeak[resident], 150);
    const auto workers = static_cast<std::size_t>(m::Gauge::PoolWorkers);
    EXPECT_EQ(snap.gaugeValue[workers], 5);
    EXPECT_EQ(snap.gaugePeak[workers], 5);

    m::reset();
    m::setEnabled(false);
}

TEST(MetricsTest, ResetRestoresZeroRegistryWithoutDetaching)
{
    m::setEnabled(true);
    m::threadAttach();
    m::count(m::Counter::ArenaAllocs, 7);
    m::histRecord(m::Hist::PoolJobItems, 123);
    m::gaugeMax(m::Gauge::ArenaHighWaterBytes, 999);
    m::cacheShardSet(0, 4, 16);

    m::reset();
    EXPECT_NE(m::shard(), nullptr) << "reset must not detach shards";

    const m::Snapshot snap = m::snapshot();
    for (std::size_t c = 0; c < m::kNumCounters; ++c)
        EXPECT_EQ(snap.counters[c], 0u) << "counter " << c;
    for (std::size_t g = 0; g < m::kNumGauges; ++g) {
        EXPECT_EQ(snap.gaugeValue[g], 0) << "gauge " << g;
        EXPECT_EQ(snap.gaugePeak[g], 0) << "gauge peak " << g;
    }
    EXPECT_EQ(snap.cacheShardsUsed, 0u);
    for (std::size_t h = 0; h < m::kNumHists; ++h) {
        EXPECT_EQ(snap.hists[h].count, 0u) << "hist " << h;
        EXPECT_EQ(snap.hists[h].sum, 0u) << "hist " << h;
        EXPECT_EQ(snap.hists[h].min, 0u) << "hist " << h;
        EXPECT_EQ(snap.hists[h].max, 0u) << "hist " << h;
    }
    m::setEnabled(false);
}

} // namespace
} // namespace antsim
