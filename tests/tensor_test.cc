/**
 * @file
 * Tests for the dense matrix type.
 */

#include <gtest/gtest.h>

#include "tensor/matrix.hh"

namespace antsim {
namespace {

TEST(Dense2d, ConstructionAndFill)
{
    Dense2d<float> m(3, 4, 1.5f);
    EXPECT_EQ(m.height(), 3u);
    EXPECT_EQ(m.width(), 4u);
    EXPECT_EQ(m.size(), 12u);
    EXPECT_EQ(m.at(3, 2), 1.5f);
}

TEST(Dense2d, EmptyMatrix)
{
    Dense2d<float> m;
    EXPECT_EQ(m.height(), 0u);
    EXPECT_EQ(m.width(), 0u);
    EXPECT_EQ(m.size(), 0u);
    EXPECT_DOUBLE_EQ(m.sparsity(), 1.0);
}

TEST(Dense2d, RowMajorLayout)
{
    Dense2d<int> m(2, 3);
    m.at(0, 0) = 1;
    m.at(1, 0) = 2;
    m.at(2, 0) = 3;
    m.at(0, 1) = 4;
    EXPECT_EQ(m.data()[0], 1);
    EXPECT_EQ(m.data()[1], 2);
    EXPECT_EQ(m.data()[2], 3);
    EXPECT_EQ(m.data()[3], 4);
}

TEST(Dense2d, XIsColumnYIsRow)
{
    // Index convention check: at(x, y) with x in [0, W), y in [0, H).
    Dense2d<int> m(2, 5); // H=2 rows, W=5 columns
    m.at(4, 1) = 9;       // last column, last row
    EXPECT_EQ(m.data()[1 * 5 + 4], 9);
}

TEST(Dense2d, NnzAndSparsity)
{
    Dense2d<float> m(2, 2);
    EXPECT_EQ(m.nnz(), 0u);
    EXPECT_DOUBLE_EQ(m.sparsity(), 1.0);
    m.at(0, 0) = 3.0f;
    m.at(1, 1) = -1.0f;
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_DOUBLE_EQ(m.sparsity(), 0.5);
}

TEST(Dense2d, Equality)
{
    Dense2d<float> a(2, 2, 1.0f);
    Dense2d<float> b(2, 2, 1.0f);
    EXPECT_EQ(a, b);
    b.at(0, 1) = 2.0f;
    EXPECT_FALSE(a == b);
}

TEST(Dense2dDeathTest, OutOfBoundsPanics)
{
    Dense2d<float> m(2, 3);
    EXPECT_DEATH((void)m.at(3, 0), "out of");
    EXPECT_DEATH((void)m.at(0, 2), "out of");
}

} // namespace
} // namespace antsim
