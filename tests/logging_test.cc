/**
 * @file
 * Tests for the logging layer: panic/fatal/assert termination
 * semantics (message content, file:line prefix, exit status) and
 * log-level gating of warn/inform/debug.
 */

#include <gtest/gtest.h>

#include <string>

#include "util/logging.hh"

namespace antsim {
namespace {

using LoggingDeathTest = ::testing::Test;

TEST(LoggingDeathTest, PanicAbortsWithMessageAndFileLine)
{
    EXPECT_DEATH(ANT_PANIC("boom ", 42),
                 "panic: boom 42 \\(.*logging_test\\.cc:[0-9]+\\)");
}

TEST(LoggingDeathTest, FatalExitsWithCodeOneAndFileLine)
{
    EXPECT_EXIT(ANT_FATAL("bad config value ", 7),
                ::testing::ExitedWithCode(1),
                "fatal: bad config value 7 "
                "\\(.*logging_test\\.cc:[0-9]+\\)");
}

TEST(LoggingDeathTest, AssertPanicsWithConditionAndMessage)
{
    const int lhs = 1;
    EXPECT_DEATH(ANT_ASSERT(lhs == 2, "lhs was ", lhs),
                 "panic: assertion failed: lhs == 2 .*lhs was 1");
}

TEST(LoggingDeathTest, AssertPassesSilently)
{
    ANT_ASSERT(1 + 1 == 2, "arithmetic is broken");
    SUCCEED();
}

/** Capture what one logging statement writes to stderr. */
template <typename Fn>
std::string
stderrOf(Fn &&fn)
{
    ::testing::internal::CaptureStderr();
    fn();
    return ::testing::internal::GetCapturedStderr();
}

class LogLevelTest : public ::testing::Test
{
  protected:
    void TearDown() override { setLogLevel(LogLevel::Warn); }
};

TEST_F(LogLevelTest, SilentSuppressesEverything)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(stderrOf([] { ANT_WARN("w"); }), "");
    EXPECT_EQ(stderrOf([] { ANT_INFORM("i"); }), "");
    EXPECT_EQ(stderrOf([] { ANT_DEBUG("d"); }), "");
}

TEST_F(LogLevelTest, WarnLevelPassesWarnOnly)
{
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(stderrOf([] { ANT_WARN("careful"); }), "warn: careful\n");
    EXPECT_EQ(stderrOf([] { ANT_INFORM("i"); }), "");
    EXPECT_EQ(stderrOf([] { ANT_DEBUG("d"); }), "");
}

TEST_F(LogLevelTest, InfoLevelAddsInform)
{
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(stderrOf([] { ANT_WARN("careful"); }), "warn: careful\n");
    EXPECT_EQ(stderrOf([] { ANT_INFORM("status"); }), "info: status\n");
    EXPECT_EQ(stderrOf([] { ANT_DEBUG("d"); }), "");
}

TEST_F(LogLevelTest, DebugLevelPassesEverything)
{
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(stderrOf([] { ANT_WARN("careful"); }), "warn: careful\n");
    EXPECT_EQ(stderrOf([] { ANT_INFORM("status"); }), "info: status\n");
    EXPECT_EQ(stderrOf([] { ANT_DEBUG("trace"); }), "debug: trace\n");
}

TEST_F(LogLevelTest, MessagesConcatenateMixedTypes)
{
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(stderrOf([] { ANT_WARN("x = ", 3, ", y = ", 1.5); }),
              "warn: x = 3, y = 1.5\n");
}

} // namespace
} // namespace antsim
