/**
 * @file
 * Parameterized property tests for the compressed-format substrate:
 * round trips, involutions, and cross-format consistency over a grid
 * of shapes (including degenerate single-row/column planes) and
 * sparsities.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "tensor/csr.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

class CsrShapeSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, double>>
{
  protected:
    Dense2d<float>
    plane() const
    {
        const auto [h, w, sparsity] = GetParam();
        Rng rng(h * 131 + w * 17 + static_cast<std::uint64_t>(
                                       sparsity * 100));
        return bernoulliPlane(h, w, sparsity, rng);
    }
};

TEST_P(CsrShapeSweep, DenseRoundTrip)
{
    const auto d = plane();
    const CsrMatrix csr = CsrMatrix::fromDense(d);
    csr.validate();
    EXPECT_EQ(csr.toDense(), d);
    EXPECT_EQ(csr.nnz(), d.nnz());
}

TEST_P(CsrShapeSweep, CscRoundTrip)
{
    const auto d = plane();
    EXPECT_EQ(CscMatrix::fromDense(d).toDense(), d);
}

TEST_P(CsrShapeSweep, CsrCscAgree)
{
    const auto d = plane();
    const CsrMatrix csr = CsrMatrix::fromDense(d);
    const CscMatrix csc = CscMatrix::fromCsr(csr);
    EXPECT_EQ(csc.toDense(), d);
    EXPECT_EQ(csc.nnz(), csr.nnz());
}

TEST_P(CsrShapeSweep, RotationInvolution)
{
    const CsrMatrix csr = CsrMatrix::fromDense(plane());
    EXPECT_EQ(csr.rotated180().rotated180(), csr);
}

TEST_P(CsrShapeSweep, TransposeInvolution)
{
    const CsrMatrix csr = CsrMatrix::fromDense(plane());
    EXPECT_EQ(csr.transposed().transposed(), csr);
}

TEST_P(CsrShapeSweep, RotationEqualsDoubleTransposeFlip)
{
    // rot180 == flip rows then flip columns; verify via dense.
    const auto d = plane();
    const auto rotated = CsrMatrix::fromDense(d).rotated180().toDense();
    for (std::uint32_t y = 0; y < d.height(); ++y)
        for (std::uint32_t x = 0; x < d.width(); ++x)
            EXPECT_EQ(rotated.at(x, y),
                      d.at(d.width() - 1 - x, d.height() - 1 - y));
}

TEST_P(CsrShapeSweep, EntriesMatchFormat)
{
    const CsrMatrix csr = CsrMatrix::fromDense(plane());
    const auto entries = csr.entries();
    ASSERT_EQ(entries.size(), csr.nnz());
    for (std::uint32_t i = 0; i < csr.nnz(); ++i) {
        const SparseEntry via_pos = csr.entry(i);
        EXPECT_EQ(entries[i].x, via_pos.x);
        EXPECT_EQ(entries[i].y, via_pos.y);
        EXPECT_EQ(entries[i].value, via_pos.value);
    }
}

TEST_P(CsrShapeSweep, CooReconstruction)
{
    const auto d = plane();
    const CsrMatrix direct = CsrMatrix::fromDense(d);
    const CsrMatrix via_coo =
        CsrMatrix::fromCoo(d.height(), d.width(), direct.entries());
    EXPECT_EQ(via_coo, direct);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CsrShapeSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 7u, 16u, 33u),
                       ::testing::Values(1u, 3u, 16u, 31u),
                       ::testing::Values(0.0, 0.5, 0.95, 1.0)));

} // namespace
} // namespace antsim
